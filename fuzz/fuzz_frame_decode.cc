// libFuzzer harness: arbitrary bytes into the frame decode path.
//
// Build with -DSTRATO_FUZZ=ON (requires Clang); run e.g.
//   ./build/fuzz/fuzz_frame_decode -max_len=65536 -runs=1000000
//
// Property: the assembler either cleanly throws CodecError or asks for
// more input — any crash, hang or sanitizer report is a finding. This is
// the coverage-guided sibling of verify::run_frame_minifuzz.
#include <cstddef>
#include <cstdint>

#include "compress/framing.h"
#include "compress/registry.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace strato;
  const auto& registry = compress::CodecRegistry::extended();
  compress::FrameAssembler assembler(registry);
  assembler.feed(common::ByteSpan(data, size));
  try {
    int blocks = 0;
    while (blocks < 1024 && assembler.next_block()) ++blocks;
  } catch (const compress::CodecError&) {
    // clean rejection — the expected outcome for almost every input
  }
  return 0;
}
