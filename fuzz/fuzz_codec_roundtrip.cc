// libFuzzer harness: the input is an application payload; every codec on
// the extended ladder must round-trip it byte-identically through the
// framed path. A mismatch aborts (fuzzer finding).
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "compress/framing.h"
#include "compress/registry.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  using namespace strato;
  if (size > (1u << 20)) return 0;  // keep iterations fast
  const auto& registry = compress::CodecRegistry::extended();
  const common::ByteSpan payload(data, size);
  for (std::size_t l = 0; l < registry.level_count(); ++l) {
    const auto& rung = registry.level(l);
    const common::Bytes frame = compress::encode_block(
        *rung.codec, static_cast<std::uint8_t>(rung.level), payload);
    const common::Bytes back = compress::decode_block(frame, registry);
    if (back.size() != size ||
        (size > 0 && std::memcmp(back.data(), data, size) != 0)) {
      std::fprintf(stderr, "round-trip mismatch at level %s (input %zu B)\n",
                   rung.label.c_str(), size);
      std::abort();
    }
  }
  return 0;
}
