// stratoz — a command-line file compressor built on the library.
//
//   stratoz c <input> <output> [level|adaptive [MB/s]]   compress
//   stratoz d <input> <output>                           decompress
//
// Compression writes the library's self-contained framed blocks (128 KB,
// magic/level/codec/sizes/XXH64), so any corrupted region is detected on
// decompression and blocks may even be decoded independently. In
// "adaptive" mode the output path is rate-limited to the given budget and
// the paper's controller picks the level per block — a file-level demo of
// the exact pipeline the channels use.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/policy.h"
#include "core/stream.h"
#include "core/throttled_pipe.h"
#include "corpus/generator.h"

using namespace strato;

namespace {

class FileByteSink final : public core::ByteSink {
 public:
  explicit FileByteSink(const std::string& path)
      : out_(path, std::ios::binary) {}
  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }
  void write(common::ByteSpan data) override {
    out_.write(reinterpret_cast<const char*>(data.data()),
               static_cast<std::streamsize>(data.size()));
    written_ += data.size();
  }
  void flush() override { out_.flush(); }
  [[nodiscard]] std::uint64_t written() const { return written_; }

 private:
  std::ofstream out_;
  std::uint64_t written_ = 0;
};

/// Sink that throttles before writing (the "slow uplink" of adaptive mode).
class ThrottledFileSink final : public core::ByteSink {
 public:
  ThrottledFileSink(const std::string& path, double bytes_per_s)
      : file_(path), link_(bytes_per_s) {}
  [[nodiscard]] bool ok() const { return file_.ok(); }
  void write(common::ByteSpan data) override {
    link_.acquire(data.size());
    file_.write(data);
  }
  void flush() override { file_.flush(); }
  [[nodiscard]] std::uint64_t written() const { return file_.written(); }

 private:
  FileByteSink file_;
  core::LinkShare link_;
};

int do_compress(const std::string& in_path, const std::string& out_path,
                const std::string& mode, double budget_mb_s) {
  std::ifstream in(in_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", in_path.c_str());
    return 1;
  }

  const auto& registry = compress::CodecRegistry::standard();
  std::unique_ptr<core::CompressionPolicy> policy;
  std::unique_ptr<core::ByteSink> sink;
  if (mode == "adaptive") {
    core::AdaptiveConfig cfg;
    cfg.num_levels = static_cast<int>(registry.level_count());
    policy = std::make_unique<core::AdaptivePolicy>(cfg,
                                                    common::SimTime::ms(250));
    auto throttled =
        std::make_unique<ThrottledFileSink>(out_path, budget_mb_s * 1e6);
    if (!throttled->ok()) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    sink = std::move(throttled);
  } else {
    const int level = std::atoi(mode.c_str());
    if (level < 0 || level >= static_cast<int>(registry.level_count())) {
      std::fprintf(stderr, "bad level %s (0..3 or 'adaptive')\n",
                   mode.c_str());
      return 1;
    }
    policy = std::make_unique<core::StaticPolicy>(
        level, registry.level(static_cast<std::size_t>(level)).label);
    auto plain = std::make_unique<FileByteSink>(out_path);
    if (!plain->ok()) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    sink = std::move(plain);
  }

  common::SteadyClock clock;
  core::CompressingWriter writer(*sink, registry, *policy, clock);
  common::Bytes buf(256 * 1024);
  const auto t0 = clock.now();
  while (in) {
    in.read(reinterpret_cast<char*>(buf.data()),
            static_cast<std::streamsize>(buf.size()));
    const auto n = static_cast<std::size_t>(in.gcount());
    if (n == 0) break;
    writer.write(common::ByteSpan(buf.data(), n));
  }
  writer.flush();
  const double secs = (clock.now() - t0).to_seconds();

  std::printf("%llu -> %llu bytes (ratio %.3f) in %.2f s",
              static_cast<unsigned long long>(writer.raw_bytes()),
              static_cast<unsigned long long>(writer.framed_bytes()),
              writer.raw_bytes()
                  ? static_cast<double>(writer.framed_bytes()) /
                        static_cast<double>(writer.raw_bytes())
                  : 1.0,
              secs);
  std::printf("  blocks per level:");
  for (std::size_t l = 0; l < registry.level_count(); ++l) {
    std::printf(" %s=%llu", registry.level(l).label.c_str(),
                static_cast<unsigned long long>(
                    writer.blocks_per_level()[l]));
  }
  std::printf("\n");
  return 0;
}

int do_decompress(const std::string& in_path, const std::string& out_path) {
  std::ifstream in(in_path, std::ios::binary);
  std::ofstream out(out_path, std::ios::binary);
  if (!in || !out) {
    std::fprintf(stderr, "cannot open input/output\n");
    return 1;
  }
  core::DecompressingReader reader(compress::CodecRegistry::standard());
  common::Bytes buf(256 * 1024);
  try {
    for (;;) {
      in.read(reinterpret_cast<char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
      const auto n = static_cast<std::size_t>(in.gcount());
      if (n == 0) break;
      reader.feed(common::ByteSpan(buf.data(), n));
      while (auto block = reader.next_block()) {
        out.write(reinterpret_cast<const char*>(block->data()),
                  static_cast<std::streamsize>(block->size()));
      }
    }
  } catch (const compress::CodecError& e) {
    std::fprintf(stderr, "corrupt archive: %s\n", e.what());
    return 2;
  }
  std::printf("%llu bytes restored\n",
              static_cast<unsigned long long>(reader.raw_bytes()));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 4 && std::strcmp(argv[1], "c") == 0) {
    const std::string mode = argc >= 5 ? argv[4] : "adaptive";
    const double budget = argc >= 6 ? std::atof(argv[5]) : 25.0;
    return do_compress(argv[2], argv[3], mode, budget);
  }
  if (argc == 4 && std::strcmp(argv[1], "d") == 0) {
    return do_decompress(argv[2], argv[3]);
  }
  std::printf(
      "usage:\n"
      "  %s c <input> <output> [level|adaptive [MB/s]]\n"
      "  %s d <input> <output>\n"
      "Without a demo file handy, try:\n"
      "  head -c 8000000 /dev/urandom > /tmp/low.bin && %s c /tmp/low.bin "
      "/tmp/low.z 1\n",
      argv[0], argv[0], argv[0]);
  return argc == 1 ? 0 : 1;
}
