// Log shipper: a realistic adaptive-compression client.
//
// A service ships its (text) log stream to a collector over a congested
// link whose available bandwidth changes mid-run — the shared-I/O
// situation the paper targets. We ship the same volume three ways:
//
//   NO       never compress
//   HEAVY    always use the strongest codec
//   DYNAMIC  the paper's rate-based adaptive scheme
//
// and report wall-clock shipping time and bytes on the wire. DYNAMIC
// should track whichever static choice the current bandwidth favours
// without being told the bandwidth.
#include <cstdio>
#include <thread>

#include "core/policy.h"
#include "core/stream.h"
#include "core/throttled_pipe.h"
#include "corpus/generator.h"

using namespace strato;

namespace {

struct Shipment {
  double seconds = 0.0;
  std::uint64_t wire_bytes = 0;
};

Shipment ship(core::CompressionPolicy& policy, std::size_t total_bytes) {
  const auto& registry = compress::CodecRegistry::standard();
  // 8 MB/s for the first half of the volume, then the neighbours go
  // quiet and we get 40 MB/s.
  auto link = std::make_shared<core::LinkShare>(8e6);
  core::ThrottledPipe pipe(link);

  std::thread drainer([&] {
    while (!pipe.read(256 * 1024).empty()) {
    }
  });

  common::SteadyClock clock;
  core::CompressingWriter writer(pipe, registry, policy, clock);
  auto logs = corpus::make_generator(corpus::Compressibility::kModerate, 7);

  common::Bytes chunk(128 * 1024);
  const auto t0 = clock.now();
  for (std::size_t sent = 0; sent < total_bytes; sent += chunk.size()) {
    if (sent >= total_bytes / 2) {
      link->set_rate(40e6);  // congestion clears mid-run
    }
    logs->generate(chunk);
    writer.write(chunk);
  }
  writer.flush();
  pipe.close();
  drainer.join();
  return {(clock.now() - t0).to_seconds(), writer.framed_bytes()};
}

}  // namespace

int main() {
  constexpr std::size_t kTotal = 48 << 20;  // 48 MB of logs
  const auto& registry = compress::CodecRegistry::standard();

  std::printf("shipping %zu MB of logs over a link that starts at 8 MB/s "
              "and jumps to 40 MB/s halfway\n\n",
              kTotal >> 20);
  std::printf("%-8s  %10s  %12s\n", "policy", "time [s]", "wire [MB]");

  {
    core::StaticPolicy no(0, "NO");
    const auto r = ship(no, kTotal);
    std::printf("%-8s  %10.1f  %12.1f\n", "NO", r.seconds,
                static_cast<double>(r.wire_bytes) / 1e6);
  }
  {
    core::StaticPolicy heavy(3, "HEAVY");
    const auto r = ship(heavy, kTotal);
    std::printf("%-8s  %10.1f  %12.1f\n", "HEAVY", r.seconds,
                static_cast<double>(r.wire_bytes) / 1e6);
  }
  {
    core::AdaptiveConfig cfg;
    cfg.num_levels = static_cast<int>(registry.level_count());
    core::AdaptivePolicy dynamic(cfg, common::SimTime::ms(250));
    const auto r = ship(dynamic, kTotal);
    std::printf("%-8s  %10.1f  %12.1f\n", "DYNAMIC", r.seconds,
                static_cast<double>(r.wire_bytes) / 1e6);
  }

  std::printf(
      "\nexpected: NO pays full price on the slow half; HEAVY wastes CPU\n"
      "on the fast half; DYNAMIC compresses hard while starved and backs\n"
      "off once the link clears — without ever reading a bandwidth\n"
      "metric.\n");
  return 0;
}
