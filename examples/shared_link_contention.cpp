// Shared-link contention: a Nephele-style dataflow job whose network
// channel competes with a co-located bulk flow — the exact situation the
// paper's Section IV experiments create with co-located VMs.
//
// Two jobs run concurrently over ONE shared link:
//   * the measured job: sender -> receiver over a network channel,
//     compressible records, policy configurable;
//   * the noisy neighbour: an uncompressed bulk transfer hammering the
//     same link for its whole lifetime.
//
// We execute the measured job once with compression off and once with the
// paper's adaptive scheme and compare completion times.
#include <atomic>
#include <cstdio>

#include "corpus/generator.h"
#include "dataflow/executor.h"

using namespace strato;

namespace {

using dataflow::ChannelType;
using dataflow::CompressionSpec;

class CorpusSender final : public dataflow::Task {
 public:
  CorpusSender(corpus::Compressibility data, std::size_t total)
      : data_(data), total_(total) {}
  void run(dataflow::TaskContext& ctx) override {
    auto gen = corpus::make_generator(data_, 3);
    common::Bytes rec(16 * 1024);
    for (std::size_t sent = 0; sent < total_; sent += rec.size()) {
      gen->generate(rec);
      ctx.output(0).emit(rec);
    }
  }

 private:
  corpus::Compressibility data_;
  std::size_t total_;
};

class CountingReceiver final : public dataflow::Task {
 public:
  explicit CountingReceiver(std::atomic<std::uint64_t>& bytes)
      : bytes_(bytes) {}
  void run(dataflow::TaskContext& ctx) override {
    while (auto rec = ctx.input(0).next()) bytes_ += rec->size();
  }

 private:
  std::atomic<std::uint64_t>& bytes_;
};

constexpr std::size_t kJobBytes = 24 << 20;
constexpr std::size_t kNeighbourBytes = 24 << 20;

double run_with_neighbour(const CompressionSpec& spec) {
  std::atomic<std::uint64_t> job_bytes{0}, neighbour_bytes{0};

  dataflow::JobGraph g;
  const int src = g.add_vertex("sender", [] {
    return std::make_unique<CorpusSender>(corpus::Compressibility::kHigh,
                                          kJobBytes);
  });
  const int dst = g.add_vertex("receiver", [&] {
    return std::make_unique<CountingReceiver>(job_bytes);
  });
  // The co-located VM's flow: incompressible bulk data, never compressed.
  const int noisy_src = g.add_vertex("neighbour-sender", [] {
    return std::make_unique<CorpusSender>(corpus::Compressibility::kLow,
                                          kNeighbourBytes);
  });
  const int noisy_dst = g.add_vertex("neighbour-receiver", [&] {
    return std::make_unique<CountingReceiver>(neighbour_bytes);
  });
  g.connect(src, dst, ChannelType::kNetwork, spec);
  g.connect(noisy_src, noisy_dst, ChannelType::kNetwork,
            CompressionSpec::none());

  dataflow::ExecutorConfig cfg;
  cfg.shared_link_bytes_s = 25e6;  // one congested NIC for both flows
  dataflow::Executor exec(cfg);
  const auto stats = exec.execute(g);
  if (!stats.ok()) {
    std::fprintf(stderr, "job failed: %s\n", stats.error.c_str());
    return -1.0;
  }
  std::printf("  job raw %.0f MB / wire %.0f MB; neighbour moved %.0f MB\n",
              static_cast<double>(stats.channels[0].raw_bytes) / 1e6,
              static_cast<double>(stats.channels[0].wire_bytes) / 1e6,
              static_cast<double>(neighbour_bytes.load()) / 1e6);
  return stats.wall_seconds;
}

}  // namespace

int main() {
  std::printf(
      "Dataflow job vs a noisy neighbour on one 25 MB/s link.\n\n");
  std::printf("without compression:\n");
  const double plain = run_with_neighbour(CompressionSpec::none());
  std::printf("  completion: %.1f s\n\n", plain);

  std::printf("with the paper's adaptive compression:\n");
  const double adaptive = run_with_neighbour(
      CompressionSpec::adaptive_default(common::SimTime::ms(250)));
  std::printf("  completion: %.1f s\n\n", adaptive);

  if (plain > 0 && adaptive > 0) {
    std::printf("speedup under shared I/O: %.1fx (the paper reports up to "
                "4x on its testbed)\n",
                plain / adaptive);
  }
  return 0;
}
