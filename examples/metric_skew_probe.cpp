// Metric skew probe: why the paper distrusts guest-displayed metrics.
//
// Part 1 replays the Section II measurement study in the simulator: for
// each virtualization technique it contrasts the CPU utilization a guest
// would display against the host-side truth during saturated network
// sends, and shows what a metric-driven compression model would conclude
// from each view.
//
// Part 2 samples the *live* /proc/stat of this machine twice (the exact
// interface the paper polls at 1 Hz) and prints the interval breakdown —
// run it inside a VM under I/O load to see your own steal/visibility
// situation.
#include <chrono>
#include <cstdio>
#include <thread>

#include "metrics/proc_stat.h"
#include "vsim/iobench.h"

using namespace strato;

int main() {
  std::printf("Part 1: simulated guest vs host view, saturated net send\n\n");
  std::printf("%-20s %12s %12s %14s\n", "technique", "VM busy", "host busy",
              "a metric model");
  for (const auto tech : vsim::kAllTechs) {
    const auto res = vsim::run_cpu_accuracy(tech, vsim::IoOp::kNetSend,
                                            120, 1);
    const double vm = res.vm_mean.busy();
    const char* verdict =
        vm < 0.3 ? "\"CPU is idle -> compress!\""
                 : "\"CPU is busy -> don't\"";
    if (res.host_observable) {
      std::printf("%-20s %11.0f%% %11.0f%%  %s\n", vsim::to_string(tech),
                  vm * 100, res.host_mean.busy() * 100, verdict);
    } else {
      std::printf("%-20s %11.0f%% %12s  %s\n", vsim::to_string(tech),
                  vm * 100, "(hidden)", verdict);
    }
  }
  std::printf(
      "\nSame physical situation, opposite conclusions depending on the\n"
      "hypervisor's accounting — the paper's case for deciding on the\n"
      "application data rate instead.\n\n");

  std::printf("Part 2: live /proc/stat on this machine (1 s interval)\n");
  const auto before = metrics::read_proc_stat();
  if (!before) {
    std::printf("  /proc/stat not available on this system.\n");
    return 0;
  }
  std::this_thread::sleep_for(std::chrono::seconds(1));
  const auto after = metrics::read_proc_stat();
  if (!after) return 0;
  const auto b = metrics::diff(*before, *after);
  std::printf("  %s\n", metrics::to_string(b).c_str());
  if (b.steal > 0.01) {
    std::printf(
        "  nonzero STEAL: you are on a shared host right now — co-located\n"
        "  load is eating this machine's CPU budget.\n");
  }
  return 0;
}
