// Quickstart: adaptive compression between an application and a
// bandwidth-limited sink, in ~60 lines.
//
// The application writes a compressible stream through a
// CompressingWriter whose level is chosen by the paper's rate-based
// AdaptivePolicy (Algorithm 1). The sink is an in-process pipe throttled
// to 12 MB/s — the "shared cloud link". A reader thread decompresses and
// verifies. No training phase, no CPU or bandwidth metrics: the policy
// only ever sees the application data rate.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>
#include <thread>

#include "common/checksum.h"
#include "core/policy.h"
#include "core/stream.h"
#include "core/throttled_pipe.h"
#include "corpus/generator.h"

using namespace strato;

int main() {
  constexpr std::size_t kTotal = 96 << 20;  // 96 MB demo stream
  const auto& registry = compress::CodecRegistry::standard();

  // A 12 MB/s link, like a congested share of a 1 GBit/s NIC.
  auto link = std::make_shared<core::LinkShare>(12e6);
  core::ThrottledPipe pipe(link);

  // Receiver: reassemble, decompress, checksum.
  std::uint64_t received_digest = 0;
  std::thread receiver([&] {
    core::DecompressingReader reader(registry);
    common::Xxh64State hash;
    for (;;) {
      const auto chunk = pipe.read(64 * 1024);
      if (chunk.empty()) break;
      reader.feed(chunk);
      while (auto block = reader.next_block()) hash.update(*block);
    }
    received_digest = hash.digest();
  });

  // Sender: the paper's DYNAMIC policy, t = 250 ms at demo scale.
  core::AdaptiveConfig cfg;
  cfg.num_levels = static_cast<int>(registry.level_count());
  cfg.alpha = 0.2;
  core::AdaptivePolicy policy(cfg, common::SimTime::ms(250));
  policy.set_trace([](common::SimTime now, double rate,
                      const core::Decision& d) {
    std::printf("t=%5.1fs  app rate %6.1f MB/s  -> level %d%s\n",
                now.to_seconds(), rate / 1e6, d.level,
                d.probed ? " (probe)" : d.reverted ? " (revert)" : "");
  });

  common::SteadyClock clock;
  core::CompressingWriter writer(pipe, registry, policy, clock);

  auto gen = corpus::make_generator(corpus::Compressibility::kHigh, 1);
  common::Xxh64State sent_hash;
  common::Bytes buf(256 * 1024);
  const auto t0 = clock.now();
  for (std::size_t sent = 0; sent < kTotal; sent += buf.size()) {
    gen->generate(buf);
    sent_hash.update(buf);
    writer.write(buf);
  }
  writer.flush();
  pipe.close();
  receiver.join();
  const double secs = (clock.now() - t0).to_seconds();

  std::printf("\nmoved %zu MB of application data in %.1f s (%.1f MB/s over "
              "a 12 MB/s link)\n",
              kTotal >> 20, secs, static_cast<double>(kTotal) / 1e6 / secs);
  std::printf("wire bytes: %.1f MB (ratio %.2f)\n",
              static_cast<double>(writer.framed_bytes()) / 1e6,
              static_cast<double>(writer.framed_bytes()) /
                  static_cast<double>(writer.raw_bytes()));
  std::printf("data integrity: %s\n",
              sent_hash.digest() == received_digest ? "OK" : "CORRUPTED");
  return sent_hash.digest() == received_digest ? 0 : 1;
}
