// iomonitor — the paper's measurement methodology as a live tool.
//
// Section II builds its study from small auxiliary programs that generate
// I/O load while sampling /proc/stat once per second. This example does
// the same on the machine it runs on: it writes file I/O load (to a temp
// file) and prints, per second, the achieved throughput next to the CPU
// breakdown the OS displays — including STEAL, the column that exposes
// co-located load when run inside a VM.
//
//   iomonitor [seconds] [path]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "common/bytes.h"
#include "common/rng.h"
#include "metrics/proc_stat.h"

using namespace strato;

int main(int argc, char** argv) {
  const int seconds = argc > 1 ? std::atoi(argv[1]) : 5;
  const std::string path =
      argc > 2 ? argv[2] : "/tmp/strato_iomonitor.bin";

  std::printf(
      "Writing file I/O load to %s for %d s, sampling /proc/stat at 1 Hz\n"
      "(the paper's Section II methodology).\n\n",
      path.c_str(), seconds);
  std::printf("%8s %12s   %s\n", "t[s]", "write MB/s", "displayed CPU");

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }

  // Incompressible buffer so page-cache dedup games cannot flatter us.
  common::Bytes buf(1 << 20);
  common::Xoshiro256 rng(1);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng());

  auto prev_stat = metrics::read_proc_stat();
  const auto start = std::chrono::steady_clock::now();
  for (int s = 1; s <= seconds; ++s) {
    const auto deadline = start + std::chrono::seconds(s);
    std::uint64_t written = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      out.write(reinterpret_cast<const char*>(buf.data()),
                static_cast<std::streamsize>(buf.size()));
      out.flush();
      written += buf.size();
    }
    const auto cur_stat = metrics::read_proc_stat();
    std::string cpu = "(no /proc/stat)";
    if (prev_stat && cur_stat) {
      cpu = metrics::to_string(metrics::diff(*prev_stat, *cur_stat));
    }
    prev_stat = cur_stat;
    std::printf("%8d %12.1f   %s\n", s,
                static_cast<double>(written) / 1e6, cpu.c_str());
  }
  out.close();
  std::remove(path.c_str());

  std::printf(
      "\nInterpretation (paper Section II): on bare metal the busy\n"
      "fractions above account for the I/O you see. Inside a VM they\n"
      "routinely do not — the host-side cost of these writes is invisible\n"
      "here, and nonzero STEAL means co-located neighbours are taking\n"
      "cycles right now. That display is what metric-driven compression\n"
      "schemes trust, and why this library's controller does not.\n");
  return 0;
}
