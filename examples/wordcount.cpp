// Wordcount: a classic dataflow job with typed records over compressed
// channels.
//
// Pipeline: a text source emits line records; a tokenizer maps lines to
// serialized (word, 1) records (dataflow/serdes.h); an aggregator reduces
// them to counts. Both hops run over network channels sharing one
// throttled link, with the paper's adaptive compression on the heavy
// edge — demonstrating the Nephele-style integration: task code never
// mentions compression.
#include <cstdio>
#include <map>

#include "dataflow/executor.h"
#include "dataflow/serdes.h"
#include "dataflow/stdtasks.h"

using namespace strato;

namespace {

using dataflow::ChannelType;
using dataflow::CompressionSpec;

/// Splits text records into (word, count=1) typed records.
class Tokenizer final : public dataflow::Task {
 public:
  void run(dataflow::TaskContext& ctx) override {
    while (auto rec = ctx.input(0).next()) {
      const std::string text = common::to_string(*rec);
      std::size_t start = 0;
      while (start < text.size()) {
        const std::size_t end = text.find_first_of(" \n.,!", start);
        const std::size_t len =
            (end == std::string::npos ? text.size() : end) - start;
        if (len > 0) {
          dataflow::RecordWriterCursor w;
          w.put_string(text.substr(start, len));
          w.put_varint(1);
          ctx.output(0).emit(w.bytes());
        }
        if (end == std::string::npos) break;
        start = end + 1;
      }
    }
  }
};

/// Reduces (word, count) records to final counts.
class Aggregator final : public dataflow::Task {
 public:
  explicit Aggregator(std::map<std::string, std::uint64_t>& counts)
      : counts_(counts) {}

  void run(dataflow::TaskContext& ctx) override {
    while (auto rec = ctx.input(0).next()) {
      dataflow::RecordReaderCursor r(*rec);
      const std::string word = r.get_string();
      counts_[word] += r.get_varint();
    }
  }

 private:
  std::map<std::string, std::uint64_t>& counts_;
};

}  // namespace

constexpr std::size_t kTextBytes = 8 << 20;

int main() {
  std::map<std::string, std::uint64_t> counts;

  dataflow::JobGraph g;
  const int source = g.add_vertex("text-source", [] {
    return std::make_unique<dataflow::CorpusSource>(
        corpus::Compressibility::kModerate, kTextBytes, 4096, 42);
  });
  const int tokenizer = g.add_vertex("tokenizer", [] {
    return std::make_unique<Tokenizer>();
  });
  const int aggregator = g.add_vertex("aggregator", [&] {
    return std::make_unique<Aggregator>(counts);
  });
  // Lines travel uncompressed (cheap edge); the word-record stream is the
  // fat edge and gets the paper's adaptive compression, transparently.
  g.connect(source, tokenizer, ChannelType::kNetwork,
            CompressionSpec::none());
  g.connect(tokenizer, aggregator, ChannelType::kNetwork,
            CompressionSpec::adaptive_default(common::SimTime::ms(100)));

  dataflow::ExecutorConfig cfg;
  cfg.shared_link_bytes_s = 30e6;
  dataflow::Executor exec(cfg);
  const auto stats = exec.execute(g);
  if (!stats.ok()) {
    std::fprintf(stderr, "job failed: %s\n", stats.error.c_str());
    return 1;
  }

  std::uint64_t total = 0;
  for (const auto& [w, c] : counts) total += c;
  std::printf("job done in %.1f s: %zu distinct words, %llu occurrences\n",
              stats.wall_seconds, counts.size(),
              static_cast<unsigned long long>(total));

  // Top five words.
  std::vector<std::pair<std::uint64_t, std::string>> top;
  for (const auto& [w, c] : counts) top.emplace_back(c, w);
  std::sort(top.rbegin(), top.rend());
  std::printf("top words:");
  for (std::size_t i = 0; i < 5 && i < top.size(); ++i) {
    std::printf(" %s(%llu)", top[i].second.c_str(),
                static_cast<unsigned long long>(top[i].first));
  }
  std::printf("\n");

  const auto& edge = stats.channels[1];
  std::printf(
      "fat edge: %llu records, raw %.1f MB -> wire %.1f MB (ratio %.2f) — "
      "compressed transparently by the adaptive channel\n",
      static_cast<unsigned long long>(edge.records),
      static_cast<double>(edge.raw_bytes) / 1e6,
      static_cast<double>(edge.wire_bytes) / 1e6,
      static_cast<double>(edge.wire_bytes) /
          static_cast<double>(edge.raw_bytes));
  return 0;
}
