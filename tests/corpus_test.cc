// Corpus generators: determinism, compressibility bands (the Canterbury
// substitution contract), entropy probes, segmented switching.
#include <gtest/gtest.h>

#include "compress/registry.h"
#include "corpus/entropy.h"
#include "corpus/generator.h"

namespace strato::corpus {
namespace {

using compress::CodecRegistry;

double ratio_of(const compress::Codec& codec, Generator& gen,
                std::size_t bytes) {
  const auto data = take(gen, bytes);
  return static_cast<double>(codec.compress(data).size()) /
         static_cast<double>(data.size());
}

class AllClasses : public ::testing::TestWithParam<Compressibility> {};

TEST_P(AllClasses, DeterministicForSameSeed) {
  auto g1 = make_generator(GetParam(), 42);
  auto g2 = make_generator(GetParam(), 42);
  EXPECT_EQ(take(*g1, 100000), take(*g2, 100000));
}

TEST_P(AllClasses, DifferentSeedsDiffer) {
  auto g1 = make_generator(GetParam(), 1);
  auto g2 = make_generator(GetParam(), 2);
  EXPECT_NE(take(*g1, 100000), take(*g2, 100000));
}

TEST_P(AllClasses, ResetRestartsStream) {
  auto g = make_generator(GetParam(), 9);
  const auto first = take(*g, 50000);
  g->reset(9);
  EXPECT_EQ(take(*g, 50000), first);
}

TEST_P(AllClasses, ChunkingInvariance) {
  auto g1 = make_generator(GetParam(), 3);
  auto g2 = make_generator(GetParam(), 3);
  const auto whole = take(*g1, 60000);
  common::Bytes pieces;
  while (pieces.size() < whole.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + pieces.size() % 977,
                              whole.size() - pieces.size());
    const auto chunk = take(*g2, n);
    pieces.insert(pieces.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(pieces, whole);
}

INSTANTIATE_TEST_SUITE_P(Classes, AllClasses,
                         ::testing::Values(Compressibility::kHigh,
                                           Compressibility::kModerate,
                                           Compressibility::kLow));

// --- the ratio-band contract (paper Section IV-A) --------------------------

TEST(RatioBands, HighCorpusMatchesPtt5Band) {
  // ptt5 compresses to 10-15 % with common libraries; we accept a band
  // around it for our LIGHT codec and require the stronger codecs to do
  // strictly better.
  const auto& reg = CodecRegistry::standard();
  auto gen = make_generator(Compressibility::kHigh, 7);
  const double light = ratio_of(*reg.level(1).codec, *gen, 2 << 20);
  gen->reset(7);
  const double medium = ratio_of(*reg.level(2).codec, *gen, 2 << 20);
  gen->reset(7);
  const double heavy = ratio_of(*reg.level(3).codec, *gen, 2 << 20);
  EXPECT_GT(light, 0.07);
  EXPECT_LT(light, 0.22);
  EXPECT_LT(medium, light);
  EXPECT_LT(heavy, medium);
  EXPECT_GT(heavy, 0.02);
}

TEST(RatioBands, ModerateCorpusMatchesAlice29Band) {
  // alice29.txt: "30-50 % depending on the algorithm used".
  const auto& reg = CodecRegistry::standard();
  auto gen = make_generator(Compressibility::kModerate, 7);
  const double light = ratio_of(*reg.level(1).codec, *gen, 2 << 20);
  gen->reset(7);
  const double heavy = ratio_of(*reg.level(3).codec, *gen, 2 << 20);
  EXPECT_GT(light, 0.30);
  EXPECT_LT(light, 0.55);
  EXPECT_GT(heavy, 0.20);
  EXPECT_LT(heavy, 0.40);
  EXPECT_LT(heavy, light);
}

TEST(RatioBands, LowCorpusMatchesJpegBand) {
  // image.jpg: "compression ratio ranged between 90-95 %".
  const auto& reg = CodecRegistry::standard();
  for (std::size_t level = 1; level < reg.level_count(); ++level) {
    auto gen = make_generator(Compressibility::kLow, 7);
    const double r = ratio_of(*reg.level(level).codec, *gen, 2 << 20);
    EXPECT_GT(r, 0.85) << reg.level(level).label;
    EXPECT_LT(r, 1.00) << reg.level(level).label;
  }
}

// --- entropy probes ---------------------------------------------------------

TEST(Entropy, OrdersTheClasses) {
  auto hi = make_generator(Compressibility::kHigh, 5);
  auto mo = make_generator(Compressibility::kModerate, 5);
  auto lo = make_generator(Compressibility::kLow, 5);
  const double eh = shannon_entropy(take(*hi, 1 << 20));
  const double em = shannon_entropy(take(*mo, 1 << 20));
  const double el = shannon_entropy(take(*lo, 1 << 20));
  EXPECT_LT(eh, em);
  EXPECT_LT(em, el);
  EXPECT_GT(el, 7.9);  // near uniform
  EXPECT_LT(eh, 2.0);
}

TEST(Entropy, KnownDistributions) {
  common::Bytes zeros(4096, 0);
  EXPECT_DOUBLE_EQ(shannon_entropy(zeros), 0.0);
  common::Bytes uniform(256 * 16);
  for (std::size_t i = 0; i < uniform.size(); ++i) {
    uniform[i] = static_cast<std::uint8_t>(i);
  }
  EXPECT_NEAR(shannon_entropy(uniform), 8.0, 1e-9);
  EXPECT_EQ(shannon_entropy({}), 0.0);
}

TEST(Entropy, RepetitivenessProbe) {
  auto hi = make_generator(Compressibility::kHigh, 5);
  auto lo = make_generator(Compressibility::kLow, 5);
  const double rh = lz_repetitiveness(take(*hi, 1 << 20));
  const double rl = lz_repetitiveness(take(*lo, 1 << 20));
  EXPECT_GT(rh, 0.9);
  EXPECT_LT(rl, 0.2);
  EXPECT_EQ(lz_repetitiveness(common::Bytes(4)), 0.0);  // too short
}

// --- segmented generator (Fig. 6 workload) ----------------------------------

TEST(Segmented, AlternatesEverySegment) {
  SegmentedGenerator gen(make_generator(Compressibility::kHigh, 1),
                         make_generator(Compressibility::kLow, 1),
                         100000);
  const auto seg_a = take(gen, 100000);
  EXPECT_EQ(gen.active(), 0);  // about to switch on next byte
  const auto seg_b = take(gen, 100000);
  EXPECT_EQ(gen.active(), 1);
  EXPECT_LT(shannon_entropy(seg_a), 2.5);
  EXPECT_GT(shannon_entropy(seg_b), 7.5);
}

TEST(Segmented, CrossSegmentReads) {
  SegmentedGenerator a(make_generator(Compressibility::kHigh, 1),
                       make_generator(Compressibility::kLow, 1), 1000);
  SegmentedGenerator b(make_generator(Compressibility::kHigh, 1),
                       make_generator(Compressibility::kLow, 1), 1000);
  // One big read spanning many segments == many small reads.
  const auto big = take(a, 10000);
  common::Bytes small;
  for (int i = 0; i < 100; ++i) {
    const auto c = take(b, 100);
    small.insert(small.end(), c.begin(), c.end());
  }
  EXPECT_EQ(big, small);
}

TEST(Segmented, ResetRestoresFirstSegment) {
  SegmentedGenerator gen(make_generator(Compressibility::kHigh, 1),
                         make_generator(Compressibility::kLow, 1), 500);
  (void)take(gen, 750);
  EXPECT_EQ(gen.active(), 1);
  gen.reset(1);
  EXPECT_EQ(gen.active(), 0);
}

TEST(Factory, NamesAndLabels) {
  EXPECT_STREQ(to_string(Compressibility::kHigh), "HIGH");
  EXPECT_STREQ(to_string(Compressibility::kModerate), "MODERATE");
  EXPECT_STREQ(to_string(Compressibility::kLow), "LOW");
  EXPECT_NE(make_generator(Compressibility::kHigh)->name().find("HIGH"),
            std::string::npos);
}

}  // namespace
}  // namespace strato::corpus
