// Golden wire-format vectors.
//
// The frame layout (magic, level, codec id, sizes, XXH64) and the encoded
// bytes of every ladder rung are locked against checked-in hex files under
// tests/data/. Three guarantees, strongest first:
//
//   1. decoder compatibility — every golden frame still decodes to the
//      expected payload (old wire data must stay readable forever);
//   2. header layout — field offsets and values re-derived by hand match
//      parse_header();
//   3. encoder determinism — encoding the reference payload today yields
//      the golden bytes exactly.
//
// A deliberate encoder change invalidates only (3): regenerate with
//   STRATO_REGEN_GOLDEN=1 ./build/tests/compress_golden_test
// and commit the diff — which makes the wire-format change reviewable.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/bytes.h"
#include "common/checksum.h"
#include "common/rng.h"
#include "compress/framing.h"
#include "compress/registry.h"

namespace strato::compress {
namespace {

#ifndef STRATO_TEST_DATA_DIR
#error "STRATO_TEST_DATA_DIR must point at tests/data (set by CMake)"
#endif

std::string data_path(const std::string& name) {
  return std::string(STRATO_TEST_DATA_DIR) + "/" + name;
}

bool regen() { return std::getenv("STRATO_REGEN_GOLDEN") != nullptr; }

/// Reference payload: pure arithmetic (platform- and library-independent),
/// mixing compressible structure (repeats, ramps) with irregular bytes so
/// every codec exercises literals and matches.
common::Bytes reference_payload() {
  common::Bytes data;
  data.reserve(6000);
  for (int i = 0; i < 2000; ++i) {
    data.push_back(static_cast<std::uint8_t>((i * i + 7 * i) >> 3));
  }
  for (int rep = 0; rep < 4; ++rep) {
    for (int i = 0; i < 500; ++i) {
      data.push_back(static_cast<std::uint8_t>(i % 97));
    }
  }
  for (int i = 0; i < 2000; ++i) {
    data.push_back(static_cast<std::uint8_t>((i * 2654435761u) >> 13));
  }
  return data;
}

/// Incompressible payload (seeded PRNG): forces the stored fallback.
common::Bytes incompressible_payload() {
  common::Xoshiro256 rng(0x901D);
  common::Bytes data(4096);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  return data;
}

std::string to_hex(const common::Bytes& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2 + bytes.size() / 16);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    out.push_back(digits[bytes[i] >> 4]);
    out.push_back(digits[bytes[i] & 0xF]);
    if (i % 32 == 31) out.push_back('\n');
  }
  if (!out.empty() && out.back() != '\n') out.push_back('\n');
  return out;
}

common::Bytes from_hex(const std::string& text) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  common::Bytes out;
  int hi = -1;
  for (const char c : text) {
    const int v = nibble(c);
    if (v < 0) continue;  // whitespace
    if (hi < 0) {
      hi = v;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | v));
      hi = -1;
    }
  }
  return out;
}

/// Load a golden file, or (re)write it when STRATO_REGEN_GOLDEN is set.
common::Bytes golden(const std::string& name, const common::Bytes& current) {
  const std::string path = data_path(name);
  if (regen()) {
    std::ofstream out(path, std::ios::trunc);
    out << to_hex(current);
    EXPECT_TRUE(out.good()) << "failed to write " << path;
    std::fprintf(stderr, "[golden] regenerated %s (%zu bytes)\n", path.c_str(),
                 current.size());
    return current;
  }
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with STRATO_REGEN_GOLDEN=1 to create it";
  std::ostringstream text;
  text << in.rdbuf();
  return from_hex(text.str());
}

std::string lower(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

TEST(Golden, EveryExtendedLadderRung) {
  const auto& registry = CodecRegistry::extended();
  const common::Bytes payload = reference_payload();
  for (std::size_t l = 0; l < registry.level_count(); ++l) {
    const auto& rung = registry.level(l);
    SCOPED_TRACE("level=" + rung.label);
    const common::Bytes frame = encode_block(
        *rung.codec, static_cast<std::uint8_t>(rung.level), payload);
    const common::Bytes gold =
        golden("frame_" + lower(rung.label) + ".hex", frame);

    // 1. Decoder compatibility: the stored bytes decode to the payload.
    EXPECT_EQ(decode_block(gold, registry), payload);
    // 2. Layout lock on the stored bytes (see the header test below for
    //    the hand re-derivation).
    const FrameHeader hdr = parse_header(gold);
    EXPECT_EQ(hdr.level, rung.level);
    EXPECT_EQ(hdr.raw_size, payload.size());
    EXPECT_EQ(hdr.checksum, common::xxh64(payload));
    EXPECT_EQ(gold.size(), kFrameHeaderSize + hdr.comp_size);
    // 3. Encoder determinism: today's encoder reproduces the golden bytes.
    EXPECT_EQ(frame, gold)
        << "wire bytes changed — if intentional, regenerate goldens with "
           "STRATO_REGEN_GOLDEN=1 and commit the diff";
  }
}

TEST(Golden, StoredFallbackFrame) {
  const auto& registry = CodecRegistry::extended();
  const common::Bytes payload = incompressible_payload();
  // HEAVY on random bytes must fall back to stored: codec id NULL, comp
  // size == raw size, level byte preserved.
  const auto& heavy = registry.level(registry.level_count() - 1);
  const common::Bytes frame = encode_block(
      *heavy.codec, static_cast<std::uint8_t>(heavy.level), payload);
  const common::Bytes gold = golden("frame_stored_fallback.hex", frame);

  EXPECT_EQ(decode_block(gold, registry), payload);
  const FrameHeader hdr = parse_header(gold);
  EXPECT_EQ(hdr.codec_id, kCodecNull);
  EXPECT_EQ(hdr.level, heavy.level);
  EXPECT_EQ(hdr.comp_size, hdr.raw_size);
  EXPECT_EQ(frame, gold);
}

TEST(Golden, EmptyPayloadFrame) {
  const auto& registry = CodecRegistry::extended();
  const common::Bytes frame = encode_block(*registry.level(2).codec, 2, {});
  const common::Bytes gold = golden("frame_empty.hex", frame);
  EXPECT_EQ(decode_block(gold, registry).size(), 0u);
  EXPECT_EQ(gold.size(), kFrameHeaderSize);
  EXPECT_EQ(frame, gold);
}

TEST(Golden, HeaderLayoutRederivedByHand) {
  // Independent re-derivation of the layout documented in framing.h: any
  // accidental change to offsets, endianness or the magic constant fails
  // here even if encoder and parser drift together.
  const common::Bytes payload = reference_payload();
  const auto& registry = CodecRegistry::extended();
  const auto& rung = registry.level(1);  // LIGHT
  const common::Bytes frame = encode_block(
      *rung.codec, static_cast<std::uint8_t>(rung.level), payload);

  ASSERT_GE(frame.size(), kFrameHeaderSize);
  EXPECT_EQ(kFrameHeaderSize, 24u);
  // magic "SBK1", little-endian at offset 0
  EXPECT_EQ(frame[0], 'S');
  EXPECT_EQ(frame[1], 'B');
  EXPECT_EQ(frame[2], 'K');
  EXPECT_EQ(frame[3], '1');
  EXPECT_EQ(common::load_le32(frame.data()), kFrameMagic);
  // level at 4, codec id at 5, reserved zeros at 6..7
  EXPECT_EQ(frame[4], rung.level);
  EXPECT_EQ(frame[5], rung.codec->id());
  EXPECT_EQ(frame[6], 0);
  EXPECT_EQ(frame[7], 0);
  // raw size LE at 8, comp size LE at 12, XXH64(raw payload) LE at 16
  EXPECT_EQ(common::load_le32(frame.data() + 8), payload.size());
  EXPECT_EQ(common::load_le32(frame.data() + 12),
            frame.size() - kFrameHeaderSize);
  EXPECT_EQ(common::load_le64(frame.data() + 16), common::xxh64(payload));

  // The hand-derived fields agree with the parser.
  const FrameHeader hdr = parse_header(frame);
  EXPECT_EQ(hdr.level, frame[4]);
  EXPECT_EQ(hdr.codec_id, frame[5]);
  EXPECT_EQ(hdr.raw_size, common::load_le32(frame.data() + 8));
  EXPECT_EQ(hdr.comp_size, common::load_le32(frame.data() + 12));
  EXPECT_EQ(hdr.checksum, common::load_le64(frame.data() + 16));
}

}  // namespace
}  // namespace strato::compress
