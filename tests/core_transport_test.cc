// AsyncTransport: the epoll event loop, async sender/receiver endpoints
// over real loopback sockets, chaos injection at the socket level, wire
// identity against the serial oracle, backpressure and error stickiness.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <utility>
#include <vector>

#include "common/checksum.h"
#include "compress/codec.h"
#include "compress/framing.h"
#include "compress/registry.h"
#include "core/epoll_loop.h"
#include "core/tcp.h"
#include "core/transport.h"
#include "corpus/generator.h"
#include "metrics/registry.h"
#include "verify/oracle.h"

namespace strato::core {
namespace {

// ---------------------------------------------------------------------------
// EpollLoop

TEST(EpollLoop, DispatchModifyRemove) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  EpollLoop loop;
  std::uint32_t seen = 0;
  loop.add(fds[0], EpollLoop::kRead, [&](std::uint32_t ev) { seen = ev; });
  EXPECT_TRUE(loop.watching(fds[0]));
  EXPECT_EQ(loop.size(), 1u);
  EXPECT_EQ(loop.poll(0), 0u);  // nothing readable yet

  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  EXPECT_EQ(loop.poll(100), 1u);
  EXPECT_NE(seen & EpollLoop::kRead, 0u);
  EXPECT_EQ(loop.poll(0), 1u);  // level-triggered: still ready

  loop.modify(fds[0], 0);  // registered but silent — the pause primitive
  EXPECT_EQ(loop.poll(0), 0u);
  loop.modify(fds[0], EpollLoop::kRead);
  EXPECT_EQ(loop.poll(0), 1u);

  char c;
  ASSERT_EQ(::read(fds[0], &c, 1), 1);
  EXPECT_EQ(loop.poll(0), 0u);  // drained

  loop.remove(fds[0]);
  EXPECT_FALSE(loop.watching(fds[0]));
  EXPECT_THROW(loop.modify(fds[0], EpollLoop::kRead), std::runtime_error);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EpollLoop, DoubleAddThrows) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  EpollLoop loop;
  loop.add(fds[0], EpollLoop::kRead, [](std::uint32_t) {});
  EXPECT_THROW(loop.add(fds[0], EpollLoop::kRead, [](std::uint32_t) {}),
               std::runtime_error);
  loop.remove(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EpollLoop, RemoveInsideCallbackDiscardsPendingReadiness) {
  // Both pipes are ready in the same batch; the first callback removes
  // the other fd — its queued readiness must be discarded, not dispatched
  // into a dead registration.
  int a[2], b[2];
  ASSERT_EQ(::pipe(a), 0);
  ASSERT_EQ(::pipe(b), 0);
  EpollLoop loop;
  int fired_a = 0, fired_b = 0;
  loop.add(a[0], EpollLoop::kRead, [&](std::uint32_t) {
    ++fired_a;
    if (loop.watching(b[0])) loop.remove(b[0]);
  });
  loop.add(b[0], EpollLoop::kRead, [&](std::uint32_t) {
    ++fired_b;
    if (loop.watching(a[0])) loop.remove(a[0]);
  });
  ASSERT_EQ(::write(a[1], "x", 1), 1);
  ASSERT_EQ(::write(b[1], "x", 1), 1);
  loop.poll(100);
  EXPECT_EQ(fired_a + fired_b, 1);  // exactly one ran; the other was culled
  EXPECT_EQ(loop.size(), 1u);      // the survivor is still registered
  if (loop.watching(a[0])) loop.remove(a[0]);
  if (loop.watching(b[0])) loop.remove(b[0]);
  EXPECT_EQ(loop.size(), 0u);
  ::close(a[0]);
  ::close(a[1]);
  ::close(b[0]);
  ::close(b[1]);
}

TEST(EpollLoop, RunUntilStopsOnPredicate) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  EpollLoop loop;
  int fires = 0;
  loop.add(fds[0], EpollLoop::kRead, [&](std::uint32_t) { ++fires; });
  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  loop.run_until([&] { return fires >= 3; }, 1);  // level-triggered re-fires
  EXPECT_GE(fires, 3);
  loop.remove(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------------------
// AsyncSender / AsyncReceiver helpers

struct LoopbackPair {
  TcpListener listener;
  TcpConnection client;
  TcpConnection server;
  LoopbackPair()
      : client(TcpConnection::connect("127.0.0.1", listener.port())),
        server(listener.accept()) {}
};

struct Collected {
  std::vector<common::Bytes> blocks;
  std::vector<compress::FrameHeader> headers;
};

AsyncReceiver::BlockSink collect_into(Collected& out) {
  return [&out](common::ByteSpan block, const compress::FrameHeader& hdr) {
    out.blocks.emplace_back(block.begin(), block.end());
    out.headers.push_back(hdr);
  };
}

std::vector<common::Bytes> make_payloads(std::size_t count, std::size_t size,
                                         std::uint64_t seed) {
  auto gen = corpus::make_generator(corpus::Compressibility::kModerate, seed);
  std::vector<common::Bytes> payloads;
  payloads.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    payloads.push_back(corpus::take(*gen, size));
  }
  return payloads;
}

// ---------------------------------------------------------------------------
// Round trips

TEST(AsyncTransport, RoundTripAllLevelsIncludingClamp) {
  const auto& registry = compress::CodecRegistry::standard();
  AsyncTransport transport(registry);
  LoopbackPair pair;

  Collected got;
  transport.add_receiver(std::move(pair.server), {}, collect_into(got));
  AsyncSender& tx = transport.add_sender(std::move(pair.client), {});

  const auto payloads =
      make_payloads(registry.level_count() + 1, 20000, 101);
  for (std::size_t i = 0; i < registry.level_count(); ++i) {
    tx.send(static_cast<int>(i), payloads[i]);
  }
  tx.send(99, payloads.back());  // clamped to the top rung
  tx.finish();
  EXPECT_TRUE(tx.drained());
  transport.run_receivers();

  const AsyncReceiver& rx = transport.receiver(0);
  EXPECT_TRUE(rx.clean_eof());
  ASSERT_EQ(got.blocks.size(), payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(got.blocks[i], payloads[i]) << "block " << i;
  }
  for (std::size_t i = 0; i < registry.level_count(); ++i) {
    EXPECT_EQ(got.headers[i].level, i);
  }
  EXPECT_EQ(got.headers.back().level, registry.level_count() - 1);
  EXPECT_EQ(tx.frames(), payloads.size());
  EXPECT_EQ(rx.blocks(), payloads.size());
  EXPECT_EQ(tx.wire_bytes(), rx.wire_bytes());
}

TEST(AsyncTransport, WireIdenticalToSerialOracle) {
  // The acceptance contract: whatever the worker count, the bytes on the
  // wire are exactly the serial reference encoder's output.
  const auto& registry = compress::CodecRegistry::standard();
  const auto payloads = make_payloads(24, 16000, 202);
  std::vector<int> levels;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    levels.push_back(static_cast<int>(i % registry.level_count()));
  }
  const verify::Oracle oracle(registry);
  const common::Bytes reference = oracle.serial_wire(payloads, levels);

  for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    AsyncTransport transport(registry);
    LoopbackPair pair;

    common::Bytes wire;
    AsyncReceiver::Config rx_cfg;
    rx_cfg.wire_tap = [&wire](common::ByteSpan chunk) {
      wire.insert(wire.end(), chunk.begin(), chunk.end());
    };
    Collected got;
    transport.add_receiver(std::move(pair.server), rx_cfg,
                           collect_into(got));
    AsyncSender::Config tx_cfg;
    tx_cfg.workers = workers;
    AsyncSender& tx = transport.add_sender(std::move(pair.client), tx_cfg);

    for (std::size_t i = 0; i < payloads.size(); ++i) {
      tx.send(levels[i], payloads[i]);
    }
    tx.finish();
    transport.run_receivers();

    EXPECT_TRUE(transport.receiver(0).clean_eof());
    EXPECT_EQ(wire, reference);
    ASSERT_EQ(got.blocks.size(), payloads.size());
    EXPECT_EQ(got.blocks, payloads);
  }
}

TEST(AsyncTransport, ManyConnectionsOneLoop) {
  const auto& registry = compress::CodecRegistry::standard();
  constexpr std::size_t kConns = 6;
  constexpr std::size_t kBlocksPer = 8;
  AsyncTransport transport(registry);

  std::vector<LoopbackPair> pairs(kConns);
  std::vector<Collected> got(kConns);
  for (std::size_t c = 0; c < kConns; ++c) {
    transport.add_receiver(std::move(pairs[c].server), {},
                           collect_into(got[c]));
  }
  std::vector<std::vector<common::Bytes>> sent(kConns);
  for (std::size_t c = 0; c < kConns; ++c) {
    transport.add_sender(std::move(pairs[c].client), {});
    sent[c] = make_payloads(kBlocksPer, 12000, 300 + c);
  }
  // Interleave: one block per connection per round.
  for (std::size_t b = 0; b < kBlocksPer; ++b) {
    for (std::size_t c = 0; c < kConns; ++c) {
      transport.sender(c).send(static_cast<int>(c % 4), sent[c][b]);
    }
  }
  for (std::size_t c = 0; c < kConns; ++c) transport.sender(c).finish();
  transport.run_receivers();

  for (std::size_t c = 0; c < kConns; ++c) {
    SCOPED_TRACE("conn=" + std::to_string(c));
    EXPECT_TRUE(transport.receiver(c).clean_eof());
    EXPECT_EQ(got[c].blocks, sent[c]);
  }
}

// ---------------------------------------------------------------------------
// Chaos

TEST(AsyncTransport, StallChaosDelaysButPreservesWire) {
  const auto& registry = compress::CodecRegistry::standard();
  const auto payloads = make_payloads(12, 16000, 404);
  std::vector<int> levels(payloads.size(), 1);
  const verify::Oracle oracle(registry);
  const common::Bytes reference = oracle.serial_wire(payloads, levels);

  std::vector<common::ChaosEvent> events;
  for (std::uint64_t at = 1000; at < reference.size(); at += 20000) {
    common::ChaosEvent ev;
    ev.kind = common::ChaosKind::kStall;
    ev.at = at;
    ev.stall_ns = 2'000'000;  // 2 ms
    events.push_back(ev);
  }

  AsyncTransport transport(registry);
  LoopbackPair pair;
  common::Bytes wire;
  AsyncReceiver::Config rx_cfg;
  rx_cfg.wire_tap = [&wire](common::ByteSpan chunk) {
    wire.insert(wire.end(), chunk.begin(), chunk.end());
  };
  Collected got;
  transport.add_receiver(std::move(pair.server), rx_cfg, collect_into(got));
  AsyncSender::Config tx_cfg;
  tx_cfg.chaos = common::ChaosSchedule::scripted(events);
  AsyncSender& tx = transport.add_sender(std::move(pair.client), tx_cfg);

  for (std::size_t i = 0; i < payloads.size(); ++i) {
    tx.send(levels[i], payloads[i]);
  }
  tx.finish();
  transport.run_receivers();

  EXPECT_GT(tx.stalls(), 0u);
  EXPECT_TRUE(transport.receiver(0).clean_eof());
  EXPECT_EQ(wire, reference);  // stalls delay, never mutate
  EXPECT_EQ(got.blocks, payloads);
}

TEST(AsyncTransport, CorruptChaosSurfacesSerialEquivalentError) {
  // Flip one byte inside frame k's payload: the receiver must deliver
  // exactly k good blocks and then the sticky CodecError — the same
  // observable as the serial FrameAssembler.
  const auto& registry = compress::CodecRegistry::standard();
  const auto payloads = make_payloads(6, 16000, 505);
  const std::vector<int> levels(payloads.size(), 2);
  const verify::Oracle oracle(registry);
  const common::Bytes reference = oracle.serial_wire(payloads, levels);

  // Locate frame boundaries on the reference wire.
  std::vector<std::size_t> frame_starts;
  std::size_t off = 0;
  while (off < reference.size()) {
    frame_starts.push_back(off);
    const auto hdr = compress::parse_header(
        common::ByteSpan(reference).subspan(off));
    off += compress::kFrameHeaderSize + hdr.comp_size;
  }
  ASSERT_EQ(frame_starts.size(), payloads.size());
  constexpr std::size_t kVictim = 3;

  common::ChaosEvent ev;
  ev.kind = common::ChaosKind::kCorrupt;
  ev.at = frame_starts[kVictim] + compress::kFrameHeaderSize + 7;
  ev.xor_mask = 0x5A;

  AsyncTransport transport(registry);
  LoopbackPair pair;
  Collected got;
  transport.add_receiver(std::move(pair.server), {}, collect_into(got));
  AsyncSender::Config tx_cfg;
  tx_cfg.chaos = common::ChaosSchedule::scripted({ev});
  AsyncSender& tx = transport.add_sender(std::move(pair.client), tx_cfg);

  for (std::size_t i = 0; i < payloads.size(); ++i) {
    tx.send(levels[i], payloads[i]);
  }
  tx.finish();
  transport.run_receivers();

  const AsyncReceiver& rx = transport.receiver(0);
  EXPECT_TRUE(rx.done());
  EXPECT_FALSE(rx.clean_eof());
  ASSERT_NE(rx.error(), nullptr);
  EXPECT_THROW(rx.check(), compress::CodecError);
  EXPECT_EQ(rx.blocks(), kVictim);  // serial position of the failure
  ASSERT_EQ(got.blocks.size(), kVictim);
  for (std::size_t i = 0; i < kVictim; ++i) {
    EXPECT_EQ(got.blocks[i], payloads[i]);
  }
}

TEST(AsyncTransport, DropChaosNeverPassesForCleanEof) {
  const auto& registry = compress::CodecRegistry::standard();
  const auto payloads = make_payloads(8, 16000, 606);

  common::ChaosEvent ev;
  ev.kind = common::ChaosKind::kDrop;
  ev.at = 40000;
  ev.span = 13;

  AsyncTransport transport(registry);
  LoopbackPair pair;
  Collected got;
  transport.add_receiver(std::move(pair.server), {}, collect_into(got));
  AsyncSender::Config tx_cfg;
  tx_cfg.chaos = common::ChaosSchedule::scripted({ev});
  AsyncSender& tx = transport.add_sender(std::move(pair.client), tx_cfg);

  for (const auto& p : payloads) tx.send(1, p);
  tx.finish();
  transport.run_receivers();

  const AsyncReceiver& rx = transport.receiver(0);
  EXPECT_TRUE(rx.done());
  // A 13-byte hole must be detected: either a CodecError once the
  // stream desynchronizes, or a partial frame pending at EOF.
  EXPECT_FALSE(rx.clean_eof());
}

// ---------------------------------------------------------------------------
// Backpressure

TEST(AsyncTransport, SenderWatermarkBackpressureEngages) {
  const auto& registry = compress::CodecRegistry::standard();
  AsyncTransport transport(registry);
  LoopbackPair pair;

  // A tiny send buffer forces EAGAIN so the user-space queue actually
  // grows past the watermark instead of draining into the kernel. The
  // receive side keeps its default buffer: shrinking it too would clamp
  // the TCP window and stall the whole drain on delayed ACKs.
  const int small = 8 * 1024;
  ASSERT_EQ(::setsockopt(pair.client.fd(), SOL_SOCKET, SO_SNDBUF, &small,
                         sizeof small),
            0);

  common::Xxh64State rx_hash;
  std::uint64_t rx_bytes = 0;
  transport.add_receiver(
      std::move(pair.server), {},
      [&](common::ByteSpan block, const compress::FrameHeader&) {
        rx_hash.update(block);
        rx_bytes += block.size();
      });

  AsyncSender::Config tx_cfg;
  tx_cfg.high_watermark = 64 * 1024;
  tx_cfg.low_watermark = 16 * 1024;
  AsyncSender& tx = transport.add_sender(std::move(pair.client), tx_cfg);

  constexpr std::size_t kBlocks = 16;
  auto gen = corpus::make_generator(corpus::Compressibility::kLow, 707);
  common::Xxh64State tx_hash;
  common::Bytes block(128 * 1024);
  for (std::size_t i = 0; i < kBlocks; ++i) {
    gen->generate(block);
    tx_hash.update(block);
    tx.send(0, block);  // stored: maximal wire pressure
  }
  tx.finish();
  transport.run_receivers();

  EXPECT_GT(tx.backpressure_events(), 0u);
  EXPECT_TRUE(transport.receiver(0).clean_eof());
  EXPECT_EQ(rx_bytes, kBlocks * block.size());
  EXPECT_EQ(rx_hash.digest(), tx_hash.digest());
}

TEST(AsyncTransport, ReceiverPauseHoldsDeliveryUntilResume) {
  const auto& registry = compress::CodecRegistry::standard();
  AsyncTransport transport(registry);
  LoopbackPair pair;

  Collected got;
  AsyncReceiver& rx =
      transport.add_receiver(std::move(pair.server), {}, collect_into(got));
  AsyncSender& tx = transport.add_sender(std::move(pair.client), {});

  rx.pause();
  EXPECT_TRUE(rx.paused());
  const auto payloads = make_payloads(3, 8000, 808);
  for (const auto& p : payloads) tx.send(2, p);  // compressed: fits kernel buf
  tx.finish();

  for (int i = 0; i < 20; ++i) transport.poll(1);
  EXPECT_EQ(got.blocks.size(), 0u);  // paused = nothing read, nothing decoded
  EXPECT_EQ(rx.wire_bytes(), 0u);

  rx.resume();
  transport.run_receivers();
  EXPECT_TRUE(rx.clean_eof());
  EXPECT_EQ(got.blocks, payloads);
}

// ---------------------------------------------------------------------------
// Error propagation

TEST(AsyncTransport, PeerResetIsStickyOnSender) {
  const auto& registry = compress::CodecRegistry::standard();
  AsyncTransport transport(registry);
  LoopbackPair pair;
  {
    TcpConnection victim = std::move(pair.server);
    struct linger lg{};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ASSERT_EQ(::setsockopt(victim.fd(), SOL_SOCKET, SO_LINGER, &lg,
                           sizeof lg),
              0);
  }  // closed with RST

  AsyncSender& tx = transport.add_sender(std::move(pair.client), {});
  common::Bytes block(64 * 1024, 0x42);
  EXPECT_THROW(
      {
        for (int i = 0; i < 1000; ++i) tx.send(0, block);
        tx.finish();
      },
      std::runtime_error);
  // Sticky: the connection stays broken.
  EXPECT_THROW(tx.send(0, block), std::runtime_error);
  EXPECT_THROW(tx.finish(), std::runtime_error);
}

TEST(AsyncTransport, PeerAbortMidFrameFailsReceiver) {
  const auto& registry = compress::CodecRegistry::standard();
  AsyncTransport transport(registry);
  LoopbackPair pair;

  Collected got;
  transport.add_receiver(std::move(pair.server), {}, collect_into(got));

  const auto payload = make_payloads(1, 50000, 909)[0];
  const auto frame = compress::encode_block(*registry.level(1).codec, 1,
                                            payload);
  pair.client.write(common::ByteSpan(frame).first(frame.size() / 2));
  {
    struct linger lg{};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ASSERT_EQ(::setsockopt(pair.client.fd(), SOL_SOCKET, SO_LINGER, &lg,
                           sizeof lg),
              0);
    pair.client.close();  // RST mid-frame
  }

  transport.run_receivers();
  const AsyncReceiver& rx = transport.receiver(0);
  EXPECT_TRUE(rx.done());
  EXPECT_FALSE(rx.clean_eof());
  EXPECT_EQ(got.blocks.size(), 0u);
  // Either the RST surfaced as a socket error, or (if the kernel had
  // buffered the bytes before the RST) the half frame is pending at EOF.
  EXPECT_TRUE(rx.error() != nullptr || rx.pending_at_eof() > 0);
}

TEST(AsyncTransport, SinkExceptionFailsStreamSticky) {
  const auto& registry = compress::CodecRegistry::standard();
  AsyncTransport transport(registry);
  LoopbackPair pair;

  int delivered = 0;
  AsyncReceiver& rx = transport.add_receiver(
      std::move(pair.server), {},
      [&](common::ByteSpan, const compress::FrameHeader&) {
        if (++delivered == 2) throw std::runtime_error("sink rejected block");
      });
  AsyncSender& tx = transport.add_sender(std::move(pair.client), {});

  const auto payloads = make_payloads(4, 8000, 111);
  for (const auto& p : payloads) tx.send(1, p);
  tx.finish();
  transport.run_receivers();

  EXPECT_TRUE(rx.done());
  ASSERT_NE(rx.error(), nullptr);
  EXPECT_THROW(rx.check(), std::runtime_error);
  EXPECT_EQ(delivered, 2);
}

// ---------------------------------------------------------------------------
// Metrics surface

TEST(AsyncTransport, MetricsCoverBothEndpoints) {
  const auto& registry = compress::CodecRegistry::standard();
  metrics::MetricRegistry reg;
  AsyncTransport transport(registry, &reg);
  LoopbackPair pair;

  Collected got;
  transport.add_receiver(std::move(pair.server), {}, collect_into(got));
  AsyncSender& tx = transport.add_sender(std::move(pair.client), {});

  const auto payloads = make_payloads(10, 12000, 222);
  for (const auto& p : payloads) tx.send(2, p);
  tx.finish();
  transport.run_receivers();
  ASSERT_TRUE(transport.receiver(0).clean_eof());

  EXPECT_EQ(reg.counter("tx.frames").value(), payloads.size());
  EXPECT_EQ(reg.counter("rx.blocks").value(), payloads.size());
  EXPECT_EQ(reg.counter("tx.blocks.level2").value(), payloads.size());
  EXPECT_EQ(reg.counter("rx.blocks.level2").value(), payloads.size());
  EXPECT_EQ(reg.counter("tx.wire_bytes").value(),
            reg.counter("rx.wire_bytes").value());
  EXPECT_GT(reg.counter("tx.sendmsg_calls").value(), 0u);
  EXPECT_EQ(reg.counter("rx.eofs").value(), 1u);
  EXPECT_EQ(reg.counter("rx.errors").value(), 0u);
  EXPECT_EQ(reg.gauge("tx.queued_bytes").value(), 0);
  // The snapshot names both directions.
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"tx.wire_bytes\""), std::string::npos);
  EXPECT_NE(json.find("\"rx.wire_bytes\""), std::string::npos);
}

}  // namespace
}  // namespace strato::core
