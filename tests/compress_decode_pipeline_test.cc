// ParallelBlockDecodePipeline behaviour: serial-identical delivery across
// worker counts and feed chunkings, in-order delivery under out-of-order
// completion, deterministic error positions (sticky), zero-copy receive
// accounting, and the DecompressingReader wiring.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "compress/decode_pipeline.h"
#include "compress/framing.h"
#include "compress/lz77.h"
#include "compress/registry.h"
#include "core/stream.h"
#include "corpus/generator.h"

namespace strato::compress {
namespace {

std::vector<common::Bytes> make_blocks(corpus::Compressibility c,
                                       std::size_t count, std::size_t size,
                                       std::uint64_t seed = 42) {
  auto gen = corpus::make_generator(c, seed);
  std::vector<common::Bytes> blocks;
  blocks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    blocks.push_back(corpus::take(*gen, size));
  }
  return blocks;
}

/// Serial wire: blocks framed at cycling levels, concatenated.
common::Bytes make_wire(const CodecRegistry& registry,
                        const std::vector<common::Bytes>& blocks) {
  common::Bytes wire;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const auto level = i % registry.level_count();
    const common::Bytes frame =
        encode_block(*registry.level(level).codec,
                     static_cast<std::uint8_t>(level), blocks[i]);
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  return wire;
}

/// Drive one pipeline over `wire` in `chunk`-sized feeds, draining after
/// every feed. Returns delivered blocks; error (if any) in *error.
std::vector<common::Bytes> run_pipeline(const CodecRegistry& registry,
                                        DecodePipelineConfig cfg,
                                        common::ByteSpan wire,
                                        std::size_t chunk,
                                        std::string* error = nullptr) {
  ParallelBlockDecodePipeline pipeline(registry, cfg);
  std::vector<common::Bytes> out;
  try {
    std::size_t off = 0;
    while (off < wire.size()) {
      const std::size_t n = std::min(chunk, wire.size() - off);
      pipeline.feed(wire.subspan(off, n));
      off += n;
      while (auto block = pipeline.next_block()) {
        out.emplace_back(block->data.begin(), block->data.end());
      }
    }
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Serial identity
// ---------------------------------------------------------------------------

TEST(ParallelBlockDecodePipeline, MatchesSerialAcrossWorkersAndChunkings) {
  const CodecRegistry& registry = CodecRegistry::standard();
  const corpus::Compressibility corpora[] = {
      corpus::Compressibility::kHigh, corpus::Compressibility::kModerate,
      corpus::Compressibility::kLow};
  for (const auto c : corpora) {
    const auto blocks = make_blocks(c, 10, 16 * 1024);
    const common::Bytes wire = make_wire(registry, blocks);
    for (const std::size_t workers :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      for (const std::size_t chunk :
           {std::size_t{7}, std::size_t{4096}, wire.size()}) {
        std::string error;
        const auto got = run_pipeline(registry, {workers, 0, 0}, wire, chunk,
                                      &error);
        EXPECT_EQ(error, "") << "workers=" << workers << " chunk=" << chunk;
        ASSERT_EQ(got.size(), blocks.size())
            << "workers=" << workers << " chunk=" << chunk;
        for (std::size_t i = 0; i < blocks.size(); ++i) {
          EXPECT_EQ(got[i], blocks[i])
              << "corpus=" << corpus::to_string(c) << " workers=" << workers
              << " chunk=" << chunk << " block=" << i;
        }
      }
    }
  }
}

TEST(ParallelBlockDecodePipeline, ReportsHeadersAndCounters) {
  const CodecRegistry& registry = CodecRegistry::standard();
  const auto blocks = make_blocks(corpus::Compressibility::kModerate, 6, 8192);
  const common::Bytes wire = make_wire(registry, blocks);
  ParallelBlockDecodePipeline pipeline(registry, {2, 0, 0});
  EXPECT_EQ(pipeline.worker_count(), 2u);
  EXPECT_EQ(pipeline.depth(), 4u);  // default 2 * workers
  pipeline.feed(wire);
  std::size_t i = 0;
  while (auto block = pipeline.next_block()) {
    EXPECT_EQ(block->header.level, i % registry.level_count());
    EXPECT_EQ(pipeline.last_header().level, block->header.level);
    EXPECT_EQ(block->header.raw_size, blocks[i].size());
    ++i;
  }
  EXPECT_EQ(i, blocks.size());
  EXPECT_EQ(pipeline.blocks_parsed(), blocks.size());
  EXPECT_EQ(pipeline.blocks_delivered(), blocks.size());
  EXPECT_EQ(pipeline.pending(), 0u);
}

TEST(ParallelBlockDecodePipeline, InlineModeRunsNoThreads) {
  const CodecRegistry& registry = CodecRegistry::standard();
  ParallelBlockDecodePipeline pipeline(registry, {1, 0, 0});
  EXPECT_EQ(pipeline.worker_count(), 0u);  // inline: no ThreadPool at all
  const auto blocks = make_blocks(corpus::Compressibility::kHigh, 3, 4096);
  pipeline.feed(make_wire(registry, blocks));
  for (const auto& expected : blocks) {
    auto block = pipeline.next_block();
    ASSERT_TRUE(block.has_value());
    EXPECT_EQ(common::Bytes(block->data.begin(), block->data.end()), expected);
  }
  EXPECT_FALSE(pipeline.next_block().has_value());
}

// ---------------------------------------------------------------------------
// Out-of-order completion
// ---------------------------------------------------------------------------

/// FastLz whose decompress stalls when the compressed payload's first byte
/// is odd: later even frames finish first, so delivery order is only
/// correct if the reorder window re-sequences.
class DelayDecodeCodec final : public Codec {
 public:
  [[nodiscard]] std::uint8_t id() const override { return inner_.id(); }
  [[nodiscard]] std::string name() const override { return "delaydec"; }
  [[nodiscard]] std::size_t max_compressed_size(std::size_t n) const override {
    return inner_.max_compressed_size(n);
  }
  std::size_t compress(common::ByteSpan src,
                       common::MutableByteSpan dst) const override {
    return inner_.compress(src, dst);
  }
  std::size_t decompress(common::ByteSpan src,
                         common::MutableByteSpan dst) const override {
    if (!src.empty() && (src[0] & 1) != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
    }
    return inner_.decompress(src, dst);
  }

 private:
  FastLz inner_;
};

TEST(ParallelBlockDecodePipeline, DeliversInOrderUnderOutOfOrderCompletion) {
  CodecRegistry registry;
  registry.add_level("NO", std::make_unique<NullCodec>());
  registry.add_level("DELAYDEC", std::make_unique<DelayDecodeCodec>());

  std::vector<common::Bytes> blocks;
  for (int i = 0; i < 10; ++i) {
    common::Bytes b(2048, static_cast<std::uint8_t>(i * 3));
    for (std::size_t j = 0; j < b.size(); j += 5) {
      b[j] = static_cast<std::uint8_t>(j + static_cast<std::size_t>(i));
    }
    blocks.push_back(std::move(b));
  }
  // Frames written with plain FastLz (same codec id); decoded with the
  // delaying registry so some workers stall.
  common::Bytes wire;
  for (const auto& b : blocks) {
    const common::Bytes frame =
        encode_block(*CodecRegistry::standard().level(1).codec, 1, b);
    wire.insert(wire.end(), frame.begin(), frame.end());
  }

  std::string error;
  const auto got = run_pipeline(registry, {4, 8, 0}, wire, wire.size(),
                                &error);
  EXPECT_EQ(error, "");
  ASSERT_EQ(got.size(), blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(got[i], blocks[i]) << "block " << i;
  }
}

// ---------------------------------------------------------------------------
// Error determinism
// ---------------------------------------------------------------------------

TEST(ParallelBlockDecodePipeline, ChecksumErrorSurfacesAtExactBlockSticky) {
  const CodecRegistry& registry = CodecRegistry::standard();
  const auto blocks = make_blocks(corpus::Compressibility::kModerate, 6, 4096);
  common::Bytes wire;
  std::vector<std::size_t> frame_starts;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    frame_starts.push_back(wire.size());
    const common::Bytes frame =
        encode_block(*registry.level(1).codec, 1, blocks[i]);
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  // Corrupt the stored checksum of frame 3: frames 0..2 deliver, then the
  // mismatch must throw — at every worker count, repeatably.
  wire[frame_starts[3] + 16] ^= 0xFF;

  for (const std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    ParallelBlockDecodePipeline pipeline(registry, {workers, 0, 0});
    pipeline.feed(wire);
    for (std::size_t i = 0; i < 3; ++i) {
      auto block = pipeline.next_block();
      ASSERT_TRUE(block.has_value()) << "workers=" << workers << " i=" << i;
      EXPECT_EQ(common::Bytes(block->data.begin(), block->data.end()),
                blocks[i]);
    }
    for (int attempt = 0; attempt < 3; ++attempt) {  // sticky
      try {
        (void)pipeline.next_block();
        FAIL() << "workers=" << workers << ": expected checksum error";
      } catch (const CodecError& e) {
        EXPECT_STREQ(e.what(), "frame: checksum mismatch")
            << "workers=" << workers;
      }
    }
  }
}

TEST(ParallelBlockDecodePipeline, MalformedHeaderPoisonsAfterGoodBlocks) {
  const CodecRegistry& registry = CodecRegistry::standard();
  const auto blocks = make_blocks(corpus::Compressibility::kHigh, 4, 2048);
  common::Bytes wire = make_wire(registry, blocks);
  const std::size_t good_size = wire.size();
  // Garbage where frame 4's header should be.
  for (int i = 0; i < 40; ++i) {
    wire.push_back(static_cast<std::uint8_t>(0xC3 + i));
  }
  (void)good_size;

  for (const std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t chunk : {std::size_t{13}, wire.size()}) {
      std::string error;
      const auto got =
          run_pipeline(registry, {workers, 0, 0}, wire, chunk, &error);
      EXPECT_EQ(got.size(), blocks.size())
          << "workers=" << workers << " chunk=" << chunk;
      EXPECT_EQ(error, "frame: bad magic")
          << "workers=" << workers << " chunk=" << chunk;
    }
  }
}

TEST(ParallelBlockDecodePipeline, TruncatedWireIsJustStarvation) {
  const CodecRegistry& registry = CodecRegistry::standard();
  const auto blocks = make_blocks(corpus::Compressibility::kModerate, 3, 4096);
  common::Bytes wire = make_wire(registry, blocks);
  wire.resize(wire.size() - 10);  // last frame incomplete

  ParallelBlockDecodePipeline pipeline(registry, {2, 0, 0});
  pipeline.feed(wire);
  std::size_t delivered = 0;
  while (auto block = pipeline.next_block()) ++delivered;
  EXPECT_EQ(delivered, blocks.size() - 1);
  EXPECT_GT(pipeline.pending(), 0u);  // the partial frame stays buffered
}

// ---------------------------------------------------------------------------
// Zero-copy receive accounting
// ---------------------------------------------------------------------------

TEST(ParallelBlockDecodePipeline, WraparoundCopiesOnlyPartialFrameTails) {
  const CodecRegistry& registry = CodecRegistry::standard();
  const auto blocks = make_blocks(corpus::Compressibility::kLow, 24, 8 * 1024);
  const common::Bytes wire = make_wire(registry, blocks);

  // Tiny segments force frequent wraparound; feeds deliberately misalign
  // with frame boundaries.
  DecodePipelineConfig cfg;
  cfg.worker_count = 2;
  cfg.segment_size = 20 * 1024;
  ParallelBlockDecodePipeline pipeline(registry, cfg);
  std::size_t off = 0;
  std::size_t delivered = 0;
  while (off < wire.size()) {
    const std::size_t n = std::min<std::size_t>(3000, wire.size() - off);
    pipeline.feed(common::ByteSpan(wire.data() + off, n));
    off += n;
    while (auto block = pipeline.next_block()) {
      EXPECT_EQ(common::Bytes(block->data.begin(), block->data.end()),
                blocks[delivered]);
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, blocks.size());
  EXPECT_GT(pipeline.segments_sealed(), 0u);
  // The zero-copy contract: only partial-frame tails ever move twice — a
  // small fraction of the wire, bounded by one frame per sealed segment.
  const std::uint64_t max_frame =
      kFrameHeaderSize + 8 * 1024;  // stored fallback bounds comp <= raw
  EXPECT_LT(pipeline.tail_bytes_copied(),
            pipeline.segments_sealed() * max_frame);
  EXPECT_LT(pipeline.tail_bytes_copied(), wire.size() / 2);
  // Segments and output buffers recycle through the private pool.
  const auto stats = pipeline.pool_stats();
  EXPECT_GT(stats.reuses, 0u);
}

TEST(ParallelBlockDecodePipeline, LeaseIsInvalidatedByNextCall) {
  const CodecRegistry& registry = CodecRegistry::standard();
  const auto blocks = make_blocks(corpus::Compressibility::kHigh, 2, 1024);
  ParallelBlockDecodePipeline pipeline(registry, {1, 0, 0});
  pipeline.feed(make_wire(registry, blocks));
  auto first = pipeline.next_block();
  ASSERT_TRUE(first.has_value());
  const common::Bytes copy(first->data.begin(), first->data.end());
  EXPECT_EQ(copy, blocks[0]);
  auto second = pipeline.next_block();  // invalidates `first`
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(common::Bytes(second->data.begin(), second->data.end()),
            blocks[1]);
}

// ---------------------------------------------------------------------------
// DecompressingReader wiring
// ---------------------------------------------------------------------------

TEST(DecompressingReaderParallel, StatsMatchSerialReader) {
  const CodecRegistry& registry = CodecRegistry::standard();
  const auto blocks = make_blocks(corpus::Compressibility::kModerate, 8, 4096);
  const common::Bytes wire = make_wire(registry, blocks);

  core::DecompressingReader serial(registry);
  serial.feed(wire);
  common::Bytes serial_out;
  while (auto b = serial.next_block()) {
    serial_out.insert(serial_out.end(), b->begin(), b->end());
  }

  core::DecompressingReader parallel(registry, {4, 0});
  EXPECT_EQ(parallel.worker_count(), 4u);
  parallel.feed(wire);
  common::Bytes parallel_out;
  while (auto view = parallel.next_block_view()) {
    parallel_out.insert(parallel_out.end(), view->data.begin(),
                        view->data.end());
  }

  EXPECT_EQ(parallel_out, serial_out);
  EXPECT_EQ(parallel.raw_bytes(), serial.raw_bytes());
  EXPECT_EQ(parallel.blocks_per_level(), serial.blocks_per_level());
}

}  // namespace
}  // namespace strato::compress
