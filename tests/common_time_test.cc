// SimTime arithmetic, clocks and the token bucket.
#include <gtest/gtest.h>

#include "common/sim_time.h"
#include "common/token_bucket.h"

namespace strato::common {
namespace {

TEST(SimTime, ConstructionAndConversion) {
  EXPECT_EQ(SimTime::ns(1500).nanos(), 1500);
  EXPECT_EQ(SimTime::us(2).nanos(), 2000);
  EXPECT_EQ(SimTime::ms(3).nanos(), 3000000);
  EXPECT_DOUBLE_EQ(SimTime::seconds(1.5).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::ms(250).to_millis(), 250.0);
}

TEST(SimTime, Arithmetic) {
  const auto a = SimTime::seconds(2.0);
  const auto b = SimTime::seconds(0.5);
  EXPECT_DOUBLE_EQ((a + b).to_seconds(), 2.5);
  EXPECT_DOUBLE_EQ((a - b).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ((a * 3.0).to_seconds(), 6.0);
  auto c = a;
  c += b;
  EXPECT_EQ(c, SimTime::seconds(2.5));
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime::ms(1), SimTime::ms(2));
  EXPECT_GE(SimTime::seconds(1), SimTime::ms(1000));
  EXPECT_EQ(SimTime(), SimTime::ns(0));
  EXPECT_LT(SimTime::seconds(1e6), SimTime::max());
}

TEST(ManualClock, AdvanceAndSet) {
  ManualClock clk;
  EXPECT_EQ(clk.now(), SimTime());
  clk.advance(SimTime::seconds(2));
  EXPECT_EQ(clk.now(), SimTime::seconds(2));
  clk.set(SimTime::seconds(10));
  EXPECT_EQ(clk.now(), SimTime::seconds(10));
}

TEST(SteadyClock, MovesForward) {
  SteadyClock clk;
  const auto t0 = clk.now();
  const auto t1 = clk.now();
  EXPECT_GE(t1, t0);
}

TEST(TokenBucket, StartsFullAndConsumes) {
  TokenBucket tb(1000.0, 500.0);  // 1000 B/s, 500 B burst
  EXPECT_TRUE(tb.try_consume(500, SimTime()));
  EXPECT_FALSE(tb.try_consume(1, SimTime()));
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket tb(1000.0, 500.0);
  ASSERT_TRUE(tb.try_consume(500, SimTime()));
  // After 0.25 s, 250 tokens are back.
  EXPECT_TRUE(tb.try_consume(250, SimTime::seconds(0.25)));
  EXPECT_FALSE(tb.try_consume(100, SimTime::seconds(0.25)));
}

TEST(TokenBucket, BurstCapsAccumulation) {
  TokenBucket tb(1000.0, 500.0);
  ASSERT_TRUE(tb.try_consume(500, SimTime()));
  // A long idle period must not accumulate more than the burst.
  EXPECT_TRUE(tb.try_consume(500, SimTime::seconds(100)));
  EXPECT_FALSE(tb.try_consume(1, SimTime::seconds(100)));
}

TEST(TokenBucket, ReadyAtPredictsAvailability) {
  TokenBucket tb(1000.0, 1000.0);
  tb.consume(1000, SimTime());  // drain
  const SimTime at = tb.ready_at(500, SimTime());
  EXPECT_NEAR(at.to_seconds(), 0.5, 1e-6);
  EXPECT_TRUE(tb.try_consume(500, at + SimTime::us(1)));
}

TEST(TokenBucket, UnconditionalConsumeGoesNegative) {
  TokenBucket tb(100.0, 100.0);
  tb.consume(300, SimTime());
  EXPECT_LT(tb.tokens(), 0.0);
  // Deficit of 200 at 100 B/s -> 2 s until 0, 3 s until 100 available.
  EXPECT_NEAR(tb.ready_at(100, SimTime()).to_seconds(), 3.0, 1e-6);
}

TEST(TokenBucket, RateChangeKeepsCredit) {
  TokenBucket tb(100.0, 1000.0);
  tb.consume(1000, SimTime());
  tb.set_rate(1000.0);
  EXPECT_DOUBLE_EQ(tb.rate(), 1000.0);
  EXPECT_TRUE(tb.try_consume(900, SimTime::seconds(1)));
}

}  // namespace
}  // namespace strato::common
