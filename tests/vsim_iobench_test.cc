// Fig. 2 / Fig. 3 distribution experiments.
#include <gtest/gtest.h>

#include "vsim/iobench.h"

namespace strato::vsim {
namespace {

constexpr std::uint64_t kTotal = 10'000'000'000ULL;  // 10 GB (fast tests)
constexpr std::uint64_t kChunk = 20'000'000ULL;      // the paper's 20 MB

TEST(NetThroughput, SampleCountMatchesChunking) {
  const auto s = run_net_throughput(VirtTech::kNative, kTotal, kChunk, 1);
  EXPECT_EQ(s.count(), kTotal / kChunk);
}

TEST(NetThroughput, NativeIsTight) {
  const auto s = run_net_throughput(VirtTech::kNative, kTotal, kChunk, 1);
  // ~941 MBit/s with very low spread.
  EXPECT_NEAR(s.mean(), 941.0, 45.0);
  EXPECT_LT(s.stddev() / s.mean(), 0.03);
}

TEST(NetThroughput, Ec2FluctuatesHeavily) {
  // "TCP/UDP throughput on Amazon EC2 can fluctuate rapidly between
  // 1 GBit/s and zero" — per-20MB rates must span a huge range.
  const auto ec2 = run_net_throughput(VirtTech::kEc2, kTotal, kChunk, 1);
  const auto native = run_net_throughput(VirtTech::kNative, kTotal, kChunk, 1);
  EXPECT_GT(ec2.stddev(), 5.0 * native.stddev());
  const auto f = ec2.five_number();
  EXPECT_LT(f.q1, 600.0);
  EXPECT_GT(f.max, 800.0);
}

TEST(NetThroughput, VirtualizationOrdersMedians) {
  const double native =
      run_net_throughput(VirtTech::kNative, kTotal, kChunk, 2).quantile(0.5);
  const double kvm_para =
      run_net_throughput(VirtTech::kKvmPara, kTotal, kChunk, 2).quantile(0.5);
  const double kvm_full =
      run_net_throughput(VirtTech::kKvmFull, kTotal, kChunk, 2).quantile(0.5);
  EXPECT_GT(native, kvm_para);
  EXPECT_GT(kvm_para, kvm_full);
}

TEST(NetThroughput, LocalCloudFluctuationOnlyMarginallyAboveNative) {
  // "the fluctuations of network throughput only increased marginally
  // compared to ... the native host system."
  const auto native = run_net_throughput(VirtTech::kNative, kTotal, kChunk, 3);
  const auto xen = run_net_throughput(VirtTech::kXenPara, kTotal, kChunk, 3);
  EXPECT_LT(xen.stddev() / xen.mean(), 3.0 * (native.stddev() / native.mean()) + 0.05);
}

TEST(FileWrite, KvmComparableToNative) {
  const auto native =
      run_file_write_throughput(VirtTech::kNative, kTotal, kChunk, 4);
  const auto kvm =
      run_file_write_throughput(VirtTech::kKvmPara, kTotal, kChunk, 4);
  // Same order of magnitude, no cache weirdness.
  EXPECT_NEAR(kvm.rates_mb_s.mean(), native.rates_mb_s.mean(),
              0.3 * native.rates_mb_s.mean());
  EXPECT_EQ(kvm.final_dirty_bytes, 0.0);
}

TEST(FileWrite, XenShowsCachingArtifacts) {
  const auto xen =
      run_file_write_throughput(VirtTech::kXenPara, kTotal, kChunk, 4);
  const auto& r = xen.rates_mb_s;
  // Occasionally "exceedingly high" displayed rates...
  EXPECT_GT(r.max(), 300.0);
  // ...periodic collapses to a few MB/s...
  EXPECT_LT(r.min(), 10.0);
  // ...a spuriously high mean compared to the physical disk...
  EXPECT_GT(r.mean(), profile(VirtTech::kXenPara).disk_write_bytes_s / 1e6);
  // ...and unflushed data at the end of the 10 GB write.
  EXPECT_GT(xen.final_dirty_bytes, 0.0);
}

TEST(FileWrite, VarianceSoSevereMeanNeedsGigabytes) {
  // The paper: "data streams of several GB must be observed before a
  // meaningful mean throughput can be calculated" (for XEN). A 1 GB
  // observation fits entirely into the host cache and reports a wildly
  // misleading mean compared to a multi-GB observation that includes
  // flush stalls.
  // Time-weighted mean throughput = harmonic mean of the per-chunk rates.
  const auto harmonic = [](const common::Sample& s) {
    double inv = 0.0;
    for (const double r : s.values()) inv += 1.0 / r;
    return static_cast<double>(s.count()) / inv;
  };
  const auto short_run = run_file_write_throughput(
      VirtTech::kXenPara, 1'000'000'000ULL, kChunk, 1);
  const auto long_run = run_file_write_throughput(
      VirtTech::kXenPara, 20'000'000'000ULL, kChunk, 1);
  EXPECT_GT(harmonic(short_run.rates_mb_s),
            harmonic(long_run.rates_mb_s) * 1.5);
}

TEST(Determinism, SameSeedSameDistribution) {
  const auto a = run_net_throughput(VirtTech::kEc2, 1'000'000'000ULL, kChunk, 9);
  const auto b = run_net_throughput(VirtTech::kEc2, 1'000'000'000ULL, kChunk, 9);
  ASSERT_EQ(a.count(), b.count());
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
}

}  // namespace
}  // namespace strato::vsim
