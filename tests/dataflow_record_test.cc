// Record serialization and incremental reassembly.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataflow/record.h"

namespace strato::dataflow {
namespace {

TEST(Record, AppendAndParseSingle) {
  common::Bytes wire;
  append_record(wire, common::as_bytes("hello"));
  EXPECT_EQ(wire.size(), 4u + 5u);
  RecordAssembler ra;
  ra.feed(wire);
  const auto rec = ra.next_record();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(common::to_string(*rec), "hello");
  EXPECT_FALSE(ra.next_record().has_value());
  EXPECT_TRUE(ra.drained());
}

TEST(Record, EmptyPayloadIsValid) {
  common::Bytes wire;
  append_record(wire, {});
  RecordAssembler ra;
  ra.feed(wire);
  const auto rec = ra.next_record();
  ASSERT_TRUE(rec.has_value());
  EXPECT_TRUE(rec->empty());
}

TEST(Record, ManyRecordsKeepOrderAndContent) {
  common::Xoshiro256 rng(1);
  common::Bytes wire;
  std::vector<common::Bytes> expected;
  for (int i = 0; i < 200; ++i) {
    common::Bytes payload(rng.below(2000));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
    append_record(wire, payload);
    expected.push_back(std::move(payload));
  }
  RecordAssembler ra;
  ra.feed(wire);
  for (const auto& want : expected) {
    const auto got = ra.next_record();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, want);
  }
  EXPECT_TRUE(ra.drained());
}

class RecordChunking : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecordChunking, ByteAtATimeAndRandomChunks) {
  common::Xoshiro256 rng(GetParam());
  common::Bytes wire;
  std::vector<std::size_t> sizes;
  for (int i = 0; i < 50; ++i) {
    common::Bytes payload(rng.below(5000));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
    sizes.push_back(payload.size());
    append_record(wire, payload);
  }
  RecordAssembler ra;
  std::size_t got = 0;
  std::size_t off = 0;
  while (off < wire.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng.below(97), wire.size() - off);
    ra.feed(common::ByteSpan(wire.data() + off, n));
    off += n;
    while (auto rec = ra.next_record()) {
      ASSERT_LT(got, sizes.size());
      EXPECT_EQ(rec->size(), sizes[got]);
      ++got;
    }
  }
  EXPECT_EQ(got, sizes.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordChunking,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Record, PartialPrefixYieldsNothing) {
  RecordAssembler ra;
  const common::Bytes partial = {5, 0, 0};  // only 3 of 4 length bytes
  ra.feed(partial);
  EXPECT_FALSE(ra.next_record().has_value());
  EXPECT_FALSE(ra.drained());
}

TEST(Record, ImplausibleLengthRejected) {
  RecordAssembler ra;
  common::Bytes evil(4);
  common::store_le32(evil.data(), 0x7FFFFFFFu);
  ra.feed(evil);
  EXPECT_THROW(ra.next_record(), compress::CodecError);
}

}  // namespace
}  // namespace strato::dataflow
