// LZ77 engine (FastLz / MediumLz): round trips, format edge cases,
// malformed-input rejection, effort-level ordering.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/lz77.h"
#include "corpus/generator.h"

namespace strato::compress {
namespace {

common::Bytes roundtrip(const Codec& codec, common::ByteSpan src) {
  common::Bytes comp(codec.max_compressed_size(src.size()));
  const std::size_t n = codec.compress(src, comp);
  EXPECT_LE(n, codec.max_compressed_size(src.size()));
  comp.resize(n);
  common::Bytes back(src.size());
  EXPECT_EQ(codec.decompress(comp, back), src.size());
  return back;
}

template <typename CodecT>
class LzRoundTrip : public ::testing::Test {
 protected:
  CodecT codec;
};
using LzCodecs = ::testing::Types<FastLz, MediumLz>;
TYPED_TEST_SUITE(LzRoundTrip, LzCodecs);

TYPED_TEST(LzRoundTrip, EmptyInput) {
  const common::Bytes empty;
  EXPECT_EQ(roundtrip(this->codec, empty), empty);
}

TYPED_TEST(LzRoundTrip, TinyInputs) {
  for (std::size_t n = 1; n <= 32; ++n) {
    common::Bytes data(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = static_cast<std::uint8_t>(i * 37);
    }
    EXPECT_EQ(roundtrip(this->codec, data), data) << "n=" << n;
  }
}

TYPED_TEST(LzRoundTrip, AllZeros) {
  const common::Bytes data(200000, 0);
  EXPECT_EQ(roundtrip(this->codec, data), data);
  // Runs must compress dramatically.
  EXPECT_LT(this->codec.compress(data).size(), data.size() / 50);
}

TYPED_TEST(LzRoundTrip, PeriodicPattern) {
  common::Bytes data(100000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>("abcdefg"[i % 7]);
  }
  EXPECT_EQ(roundtrip(this->codec, data), data);
}

TYPED_TEST(LzRoundTrip, RandomIncompressibleFitsBound) {
  common::Xoshiro256 rng(3);
  common::Bytes data(131072);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  const auto comp = this->codec.compress(data);
  EXPECT_EQ(roundtrip(this->codec, data), data);
  EXPECT_LE(comp.size(), lz77_max_compressed_size(data.size()));
}

TYPED_TEST(LzRoundTrip, AllCorpora) {
  for (const auto c :
       {corpus::Compressibility::kHigh, corpus::Compressibility::kModerate,
        corpus::Compressibility::kLow}) {
    auto gen = corpus::make_generator(c, 11);
    const auto data = corpus::take(*gen, 300000);
    EXPECT_EQ(roundtrip(this->codec, data), data) << corpus::to_string(c);
  }
}

TYPED_TEST(LzRoundTrip, LongMatchExtensions) {
  // > 15+255 literals then > 15+255 match bytes forces both extension
  // paths of the token format.
  common::Xoshiro256 rng(5);
  common::Bytes data;
  for (int i = 0; i < 600; ++i) {
    data.push_back(static_cast<std::uint8_t>(rng()));
  }
  const common::Bytes run(1000, 0x55);
  data.insert(data.end(), run.begin(), run.end());
  data.insert(data.end(), run.begin(), run.end());
  EXPECT_EQ(roundtrip(this->codec, data), data);
}

class SeededRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeededRoundTrip, MixedStructuredRandom) {
  // Property: any byte string round-trips. Build adversarial mixes of
  // runs, copies and noise.
  common::Xoshiro256 rng(GetParam());
  common::Bytes data;
  while (data.size() < 150000) {
    switch (rng.below(4)) {
      case 0: {  // run
        data.insert(data.end(), 1 + rng.below(500),
                    static_cast<std::uint8_t>(rng()));
        break;
      }
      case 1: {  // noise
        const std::size_t n = 1 + rng.below(300);
        for (std::size_t i = 0; i < n; ++i) {
          data.push_back(static_cast<std::uint8_t>(rng()));
        }
        break;
      }
      case 2: {  // near copy from earlier
        if (data.empty()) break;
        const std::size_t start = rng.below(data.size());
        const std::size_t n =
            std::min<std::size_t>(1 + rng.below(800), data.size() - start);
        for (std::size_t i = 0; i < n; ++i) {
          data.push_back(data[start + i]);
        }
        break;
      }
      default: {  // single byte
        data.push_back(static_cast<std::uint8_t>(rng()));
        break;
      }
    }
  }
  FastLz fast;
  MediumLz medium;
  EXPECT_EQ(roundtrip(fast, data), data);
  EXPECT_EQ(roundtrip(medium, data), data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(LzFormat, MediumNeverWorseRatioThanFastOnStructuredData) {
  for (const auto c :
       {corpus::Compressibility::kHigh, corpus::Compressibility::kModerate}) {
    auto gen = corpus::make_generator(c, 2);
    const auto data = corpus::take(*gen, 1 << 20);
    FastLz fast;
    MediumLz medium;
    EXPECT_LE(medium.compress(data).size(), fast.compress(data).size())
        << corpus::to_string(c);
  }
}

// --- malformed input ---------------------------------------------------------

TEST(LzMalformed, TruncatedStream) {
  FastLz codec;
  common::Bytes data(10000, 0x11);
  auto comp = codec.compress(data);
  common::Bytes out(data.size());
  for (const std::size_t cut : {comp.size() / 2, comp.size() - 1}) {
    EXPECT_THROW(
        codec.decompress(common::ByteSpan(comp.data(), cut), out),
        CodecError);
  }
}

TEST(LzMalformed, ZeroOffsetRejected) {
  // token: 1 literal + match; offset 0 is invalid.
  const common::Bytes bogus = {0x10 | 0x0, 'x', 0x00, 0x00};
  common::Bytes out(100);
  EXPECT_THROW(lz77_decompress(bogus, out), CodecError);
}

TEST(LzMalformed, OffsetBeforeBlockStart) {
  // 1 literal then a match at distance 5 (only 1 byte of history).
  const common::Bytes bogus = {0x10, 'x', 0x05, 0x00};
  common::Bytes out(100);
  EXPECT_THROW(lz77_decompress(bogus, out), CodecError);
}

TEST(LzMalformed, OutputSizeMismatch) {
  FastLz codec;
  common::Bytes data(1000, 0x22);
  const auto comp = codec.compress(data);
  common::Bytes small(data.size() - 1);
  EXPECT_THROW(codec.decompress(comp, small), CodecError);
  common::Bytes big(data.size() + 1);
  EXPECT_THROW(codec.decompress(comp, big), CodecError);
}

TEST(LzMalformed, EmptyInputNonEmptyOutput) {
  common::Bytes out(5);
  EXPECT_THROW(lz77_decompress({}, out), CodecError);
}

TEST(LzFormat, MaxCompressedSizeIsMonotone) {
  EXPECT_GE(lz77_max_compressed_size(1000), 1000u);
  EXPECT_GT(lz77_max_compressed_size(2000), lz77_max_compressed_size(1000));
}

}  // namespace
}  // namespace strato::compress
