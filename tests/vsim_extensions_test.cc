// Extension models: dynamic background traffic and the file-I/O transfer
// experiment (the paper's future-work direction).
#include <gtest/gtest.h>

#include "expkit/policies.h"
#include "vsim/bgtraffic.h"
#include "vsim/file_transfer.h"
#include "vsim/transfer.h"

namespace strato::vsim {
namespace {

using common::SimTime;

// --- background traffic ---------------------------------------------------------

TEST(BgTraffic, DisabledByDefault) {
  BgTrafficConfig cfg;
  EXPECT_FALSE(cfg.enabled());
  BgTrafficProcess p(cfg, 1);
  EXPECT_EQ(p.flows_at(SimTime::seconds(100)), 0);
}

TEST(BgTraffic, DeterministicSteps) {
  BgTrafficConfig cfg;
  cfg.steps = {{0.0, 0}, {10.0, 2}, {20.0, 1}, {30.0, 3}};
  BgTrafficProcess p(cfg, 1);
  EXPECT_EQ(p.flows_at(SimTime::seconds(5)), 0);
  EXPECT_EQ(p.flows_at(SimTime::seconds(10)), 2);
  EXPECT_EQ(p.flows_at(SimTime::seconds(19.9)), 2);
  EXPECT_EQ(p.flows_at(SimTime::seconds(25)), 1);
  EXPECT_EQ(p.flows_at(SimTime::seconds(1000)), 3);
}

TEST(BgTraffic, StepsCanBeSkippedOver) {
  BgTrafficConfig cfg;
  cfg.steps = {{1.0, 5}, {2.0, 1}};
  BgTrafficProcess p(cfg, 1);
  // Jump straight past both steps.
  EXPECT_EQ(p.flows_at(SimTime::seconds(10)), 1);
}

TEST(BgTraffic, BirthDeathStaysWithinBounds) {
  BgTrafficConfig cfg;
  cfg.arrival_per_s = 0.5;
  cfg.mean_holding_s = 4.0;
  cfg.max_flows = 3;
  BgTrafficProcess p(cfg, 7);
  int max_seen = 0, changes = 0, prev = 0;
  for (int t = 0; t < 2000; ++t) {
    const int f = p.flows_at(SimTime::seconds(t * 0.5));
    ASSERT_GE(f, 0);
    ASSERT_LE(f, 3);
    max_seen = std::max(max_seen, f);
    if (f != prev) ++changes;
    prev = f;
  }
  EXPECT_GT(max_seen, 0);   // flows do arrive
  EXPECT_GT(changes, 20);   // and churn over time
}

TEST(BgTraffic, BirthDeathLongRunMeanMatchesErlang) {
  // Offered load a = lambda * holding = 0.25 * 8 = 2; with a generous cap
  // the mean flow count approaches the offered load.
  BgTrafficConfig cfg;
  cfg.arrival_per_s = 0.25;
  cfg.mean_holding_s = 8.0;
  cfg.max_flows = 20;
  BgTrafficProcess p(cfg, 3);
  double sum = 0;
  constexpr int kSamples = 40000;
  for (int i = 0; i < kSamples; ++i) {
    sum += p.flows_at(SimTime::seconds(i * 0.5));
  }
  EXPECT_NEAR(sum / kSamples, 2.0, 0.4);
}

TEST(BgTraffic, DeterministicPerSeed) {
  BgTrafficConfig cfg;
  cfg.arrival_per_s = 0.3;
  cfg.mean_holding_s = 5.0;
  BgTrafficProcess a(cfg, 9), b(cfg, 9);
  for (int t = 0; t < 500; ++t) {
    ASSERT_EQ(a.flows_at(SimTime::seconds(t)), b.flows_at(SimTime::seconds(t)));
  }
}

TEST(TransferWithBgTraffic, StepScheduleSlowsTheMiddle) {
  // 0 flows, then 3 flows in the middle third, then 0 again: completion
  // must land between the pure 0-flow and pure 3-flow runs.
  TransferConfig cfg;
  cfg.data = corpus::Compressibility::kLow;
  cfg.total_bytes = 2'000'000'000ULL;
  cfg.seed = 5;

  TransferExperiment solo(cfg);
  auto p0 = expkit::make_policy("NO", solo);
  const double t_solo = solo.run(*p0).completion_s;

  auto cfg3 = cfg;
  cfg3.bg_flows = 3;
  TransferExperiment busy(cfg3);
  auto p3 = expkit::make_policy("NO", busy);
  const double t_busy = busy.run(*p3).completion_s;

  auto cfg_dyn = cfg;
  cfg_dyn.bg_traffic.steps = {{0.0, 0}, {8.0, 3}, {16.0, 0}};
  TransferExperiment dyn(cfg_dyn);
  auto pd = expkit::make_policy("NO", dyn);
  const double t_dyn = dyn.run(*pd).completion_s;

  EXPECT_GT(t_dyn, t_solo * 1.05);
  EXPECT_LT(t_dyn, t_busy);
}

TEST(TransferWithBgTraffic, AdaptiveFollowsContentionChanges) {
  // MODERATE data: at 0 flows the link is fast enough that LIGHT wins
  // narrowly; at heavy contention compression pays off strongly. The
  // adaptive policy must end up using compression for most blocks when
  // neighbours hammer the link for the second half of the run.
  TransferConfig cfg;
  cfg.data = corpus::Compressibility::kHigh;
  cfg.total_bytes = 4'000'000'000ULL;
  cfg.seed = 6;
  cfg.bg_traffic.steps = {{0.0, 0}, {10.0, 3}};
  TransferExperiment exp(cfg);
  auto policy = expkit::make_policy("DYNAMIC", exp);
  const auto res = exp.run(*policy);
  std::uint64_t compressed = 0, total = 0;
  for (std::size_t l = 0; l < res.blocks_per_level.size(); ++l) {
    total += res.blocks_per_level[l];
    if (l > 0) compressed += res.blocks_per_level[l];
  }
  EXPECT_GT(compressed, total / 2);
}

// --- file transfer -------------------------------------------------------------

TEST(FileTransfer, PlainDiskShapesMatchTableIIIntuition) {
  // On a cache-less disk (KVM paravirt), compression helps HIGH data
  // (disk is the bottleneck) and hurts with HEAVY.
  FileTransferConfig cfg;
  cfg.tech = VirtTech::kKvmPara;
  cfg.data = corpus::Compressibility::kHigh;
  cfg.total_bytes = 2'000'000'000ULL;

  core::StaticPolicy no(0, "NO"), light(1, "LIGHT"), heavy(3, "HEAVY");
  const double t_no = run_file_transfer(cfg, no).completion_s;
  const double t_light = run_file_transfer(cfg, light).completion_s;
  const double t_heavy = run_file_transfer(cfg, heavy).completion_s;
  EXPECT_LT(t_light, t_no);
  EXPECT_GT(t_heavy, t_light);
}

TEST(FileTransfer, AccountsAllBytes) {
  FileTransferConfig cfg;
  cfg.tech = VirtTech::kNative;
  cfg.data = corpus::Compressibility::kModerate;
  cfg.total_bytes = 500'000'000ULL;
  core::StaticPolicy light(1, "LIGHT");
  const auto res = run_file_transfer(cfg, light);
  EXPECT_EQ(res.raw_bytes, cfg.total_bytes);
  EXPECT_LT(res.disk_bytes, res.raw_bytes);
  std::uint64_t blocks = 0;
  for (const auto b : res.blocks_per_level) blocks += b;
  EXPECT_EQ(blocks, (cfg.total_bytes + cfg.block_size - 1) / cfg.block_size);
  EXPECT_EQ(res.final_dirty_bytes, 0.0);
  EXPECT_DOUBLE_EQ(res.drained_s, res.completion_s);
}

TEST(FileTransfer, XenCacheLeavesDirtyDataAndInflatesApparentRate) {
  FileTransferConfig cfg;
  cfg.tech = VirtTech::kXenPara;
  cfg.data = corpus::Compressibility::kLow;
  cfg.total_bytes = 4'000'000'000ULL;
  core::StaticPolicy no(0, "NO");
  const auto res = run_file_transfer(cfg, no);
  EXPECT_GT(res.final_dirty_bytes, 0.0);
  EXPECT_GT(res.drained_s, res.completion_s);

  // A short observation that fits into the host cache reports an apparent
  // rate far beyond the physical disk — the paper's "spuriously high"
  // finding and the reason several GB must be observed for a meaningful
  // mean.
  FileTransferConfig short_cfg = cfg;
  short_cfg.total_bytes = 1'000'000'000ULL;  // < 1.5 GB dirty budget
  core::StaticPolicy no2(0, "NO");
  const auto short_res = run_file_transfer(short_cfg, no2);
  const double apparent_rate =
      static_cast<double>(short_res.raw_bytes) / short_res.completion_s;
  EXPECT_GT(apparent_rate,
            1.3 * profile(VirtTech::kXenPara).disk_write_bytes_s);
}

TEST(FileTransfer, AdaptiveRunsOnTheCachePath) {
  FileTransferConfig cfg;
  cfg.tech = VirtTech::kXenPara;
  cfg.data = corpus::Compressibility::kHigh;
  cfg.total_bytes = 2'000'000'000ULL;
  cfg.record_timeline = true;
  core::AdaptiveConfig acfg;
  acfg.num_levels = CodecModel::kNumLevels;
  core::AdaptivePolicy dynamic(acfg, common::SimTime::seconds(2));
  const auto res = run_file_transfer(cfg, dynamic);
  EXPECT_EQ(res.raw_bytes, cfg.total_bytes);
  EXPECT_TRUE(res.timeline.has("level"));
  EXPECT_TRUE(res.timeline.has("app_mb_s"));
}

TEST(FileTransfer, DeterministicPerSeed) {
  FileTransferConfig cfg;
  cfg.total_bytes = 300'000'000ULL;
  core::StaticPolicy no(0, "NO");
  const auto a = run_file_transfer(cfg, no);
  core::StaticPolicy no2(0, "NO");
  const auto b = run_file_transfer(cfg, no2);
  EXPECT_DOUBLE_EQ(a.completion_s, b.completion_s);
}

}  // namespace
}  // namespace strato::vsim
