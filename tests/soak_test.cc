// Soak test: the real-time adaptive pipeline under a link whose rate is
// re-rolled every ~150 ms — several regime changes per second for a few
// seconds, checking integrity, liveness and decision sanity throughout.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/checksum.h"
#include "common/rng.h"
#include "core/policy.h"
#include "core/stream.h"
#include "core/throttled_pipe.h"
#include "corpus/generator.h"
#include "corpus/schedule.h"
#include "verify/seed.h"

namespace strato {
namespace {

TEST(Soak, AdaptivePipelineSurvivesViolentLinkChanges) {
  // Replayable: STRATO_SOAK_SEED drives both the link chaos and the
  // workload generator (printed up front so a red run can be replayed).
  const std::uint64_t seed = verify::announce_seed(
      "STRATO_SOAK_SEED", verify::seed_from_env("STRATO_SOAK_SEED", 1));
  SCOPED_TRACE("STRATO_SOAK_SEED=" + std::to_string(seed));
  constexpr std::size_t kTotal = 128 << 20;
  auto link = std::make_shared<core::LinkShare>(20e6);
  core::ThrottledPipe pipe(link);

  // Chaos monkey: re-roll the link rate between 2 and 200 MB/s.
  std::atomic<bool> stop{false};
  std::thread chaos([&] {
    common::Xoshiro256 rng(seed);
    while (!stop.load()) {
      link->set_rate(rng.uniform(2e6, 200e6));
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
    }
  });

  // Receiver verifies everything.
  std::uint64_t recv_digest = 0;
  std::atomic<std::uint64_t> recv_bytes{0};
  std::thread receiver([&] {
    core::DecompressingReader reader(compress::CodecRegistry::standard());
    common::Xxh64State hash;
    for (;;) {
      const auto chunk = pipe.read(128 * 1024);
      if (chunk.empty()) break;
      reader.feed(chunk);
      while (auto block = reader.next_block()) {
        hash.update(*block);
        recv_bytes += block->size();
      }
    }
    recv_digest = hash.digest();
  });

  // Sender: multi-phase workload + adaptive policy with a fast window.
  core::AdaptiveConfig cfg;
  cfg.num_levels =
      static_cast<int>(compress::CodecRegistry::standard().level_count());
  core::AdaptivePolicy policy(cfg, common::SimTime::ms(100));
  std::atomic<int> decisions{0};
  policy.set_trace([&](common::SimTime, double, const core::Decision& d) {
    decisions.fetch_add(1);
    ASSERT_GE(d.level, 0);
    ASSERT_LT(d.level, cfg.num_levels);
  });
  common::SteadyClock clock;
  core::CompressingWriter writer(pipe, compress::CodecRegistry::standard(),
                                 policy, clock);
  corpus::ScheduledGenerator gen(
      corpus::parse_schedule("HIGH:12M,LOW:6M,MODERATE:12M"), seed + 1);
  common::Xxh64State sent;
  common::Bytes chunk(128 * 1024);
  for (std::size_t done = 0; done < kTotal; done += chunk.size()) {
    gen.generate(chunk);
    sent.update(chunk);
    writer.write(chunk);
  }
  writer.flush();
  pipe.close();
  receiver.join();
  stop = true;
  chaos.join();

  EXPECT_EQ(recv_bytes.load(), kTotal);
  EXPECT_EQ(recv_digest, sent.digest());
  EXPECT_GT(decisions.load(), 5);  // the controller actually ran
}

}  // namespace
}  // namespace strato
