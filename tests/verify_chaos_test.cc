// Chaos hooks: scripted fault schedules on the real-time pipe and the
// virtual-time link, and the safety contract under each fault class —
// stalls never change bytes, drops and corruptions are always detected or
// harmless, link blackouts stretch completion deterministically.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/chaos.h"
#include "common/checksum.h"
#include "common/rng.h"
#include "compress/decode_pipeline.h"
#include "core/throttled_pipe.h"
#include "corpus/generator.h"
#include "expkit/policies.h"
#include "verify/seed.h"
#include "vsim/link.h"
#include "vsim/transfer.h"

namespace strato::verify {
namespace {

using common::ChaosEvent;
using common::ChaosKind;
using common::ChaosSchedule;

// --- ChaosSchedule ----------------------------------------------------------

TEST(ChaosSchedule, ScriptedEventsSortedAndReplayable) {
  const ChaosSchedule s = ChaosSchedule::scripted({
      {ChaosKind::kDrop, 500, 8, 0, 0xFF, 0.0},
      {ChaosKind::kCorrupt, 100, 1, 0, 0x01, 0.0},
      {ChaosKind::kStall, 300, 1, 1000, 0xFF, 0.0},
  });
  ASSERT_EQ(s.events().size(), 3u);
  EXPECT_EQ(s.events()[0].at, 100u);
  EXPECT_EQ(s.events()[1].at, 300u);
  EXPECT_EQ(s.events()[2].at, 500u);
}

TEST(ChaosSchedule, RandomIsDeterministicInSeed) {
  ChaosSchedule::RandomSpec spec;
  spec.range = 1 << 16;
  spec.stalls = 3;
  spec.drops = 4;
  spec.corruptions = 5;
  const ChaosSchedule a = ChaosSchedule::random(spec, 42);
  const ChaosSchedule b = ChaosSchedule::random(spec, 42);
  ASSERT_EQ(a.events().size(), b.events().size());
  ASSERT_EQ(a.events().size(), 12u);
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_EQ(a.events()[i].kind, b.events()[i].kind) << i;
    EXPECT_EQ(a.events()[i].at, b.events()[i].at) << i;
    EXPECT_EQ(a.events()[i].span, b.events()[i].span) << i;
  }
  const ChaosSchedule c = ChaosSchedule::random(spec, 43);
  bool differs = c.events().size() != a.events().size();
  for (std::size_t i = 0; !differs && i < a.events().size(); ++i) {
    differs = a.events()[i].at != c.events()[i].at;
  }
  EXPECT_TRUE(differs);
}

TEST(ChaosSchedule, BlackoutFactorWindowed) {
  const ChaosSchedule s = ChaosSchedule::scripted({
      {ChaosKind::kBlackout, 1000, 500, 0, 0xFF, 0.25},
      {ChaosKind::kBlackout, 1200, 500, 0, 0xFF, 0.5},
  });
  EXPECT_DOUBLE_EQ(s.capacity_factor(0), 1.0);
  EXPECT_DOUBLE_EQ(s.capacity_factor(999), 1.0);
  EXPECT_DOUBLE_EQ(s.capacity_factor(1000), 0.25);
  EXPECT_DOUBLE_EQ(s.capacity_factor(1300), 0.25 * 0.5);  // overlap
  EXPECT_DOUBLE_EQ(s.capacity_factor(1550), 0.5);
  EXPECT_DOUBLE_EQ(s.capacity_factor(1700), 1.0);
  // Stateless: out-of-order queries give the same answers.
  EXPECT_DOUBLE_EQ(s.capacity_factor(1000), 0.25);
}

// --- ThrottledPipe fault injection ------------------------------------------

common::Bytes drain(core::ThrottledPipe& pipe) {
  common::Bytes all;
  for (;;) {
    const auto chunk = pipe.read(64 * 1024);
    if (chunk.empty()) return all;
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
}

struct FramedStream {
  common::Bytes wire;
  std::set<std::uint64_t> hashes;  // xxh64 of every sent payload
  std::size_t blocks = 0;
};

FramedStream make_stream(std::uint64_t seed, int blocks) {
  const auto& registry = compress::CodecRegistry::standard();
  common::Xoshiro256 rng(seed);
  FramedStream s;
  for (int i = 0; i < blocks; ++i) {
    auto gen = corpus::make_generator(
        static_cast<corpus::Compressibility>(rng.below(3)), rng());
    const auto payload = corpus::take(*gen, 1000 + rng.below(30000));
    const int level = static_cast<int>(rng.below(registry.level_count()));
    const auto frame =
        compress::encode_block(*registry.level(level).codec,
                               static_cast<std::uint8_t>(level), payload);
    s.wire.insert(s.wire.end(), frame.begin(), frame.end());
    s.hashes.insert(common::xxh64(payload));
    ++s.blocks;
  }
  return s;
}

/// Send `wire` through a pipe with `chaos` installed; return the bytes the
/// reader saw.
common::Bytes pump(const common::Bytes& wire, ChaosSchedule chaos) {
  core::ThrottledPipe pipe(nullptr);
  pipe.set_chaos(std::move(chaos));
  std::thread writer([&] {
    std::size_t off = 0;
    common::Xoshiro256 rng(7);  // irregular chunking, like a real app
    while (off < wire.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng.below(8192), wire.size() - off);
      pipe.write(common::ByteSpan(wire.data() + off, n));
      off += n;
    }
    pipe.close();
  });
  common::Bytes received = drain(pipe);
  writer.join();
  return received;
}

/// Decode `received`; every block must hash into `sent`. Returns
/// {decoded blocks, clean error seen}.
std::pair<std::size_t, bool> decode_against(const common::Bytes& received,
                                            const FramedStream& sent) {
  compress::FrameAssembler assembler(compress::CodecRegistry::standard());
  assembler.feed(received);
  std::size_t decoded = 0;
  bool error = false;
  try {
    while (auto block = assembler.next_block()) {
      EXPECT_TRUE(sent.hashes.count(common::xxh64(*block)))
          << "decoded a block that was never sent";
      ++decoded;
    }
  } catch (const compress::CodecError&) {
    error = true;
  }
  return {decoded, error};
}

TEST(PipeChaos, StallsNeverChangeBytes) {
  const FramedStream sent = make_stream(1, 6);
  const ChaosSchedule chaos = ChaosSchedule::scripted({
      {ChaosKind::kStall, sent.wire.size() / 3, 1, 2'000'000, 0xFF, 0.0},
      {ChaosKind::kStall, 2 * sent.wire.size() / 3, 1, 2'000'000, 0xFF, 0.0},
  });
  const common::Bytes received = pump(sent.wire, chaos);
  EXPECT_EQ(received, sent.wire);
  const auto [decoded, error] = decode_against(received, sent);
  EXPECT_FALSE(error);
  EXPECT_EQ(decoded, sent.blocks);
}

TEST(PipeChaos, CorruptionDetectedOrHarmless) {
  const std::uint64_t seed = announce_seed(
      "STRATO_CHAOS_SEED", seed_from_env("STRATO_CHAOS_SEED", 0xC4A05));
  int detected = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const FramedStream sent = make_stream(seed + trial, 5);
    ChaosSchedule::RandomSpec spec;
    spec.range = sent.wire.size();
    spec.corruptions = 3;
    const common::Bytes received =
        pump(sent.wire, ChaosSchedule::random(spec, seed ^ (trial + 1)));
    EXPECT_EQ(received.size(), sent.wire.size());  // corrupt never resizes
    const auto [decoded, error] = decode_against(received, sent);
    if (error || decoded < sent.blocks) ++detected;
    // decode_against already asserts no foreign block decoded.
  }
  // Flipping bits in framed streams must overwhelmingly be caught. (A
  // flip can be output-neutral — e.g. a match offset into an identical
  // run — so the bound is deliberately loose; the hard property is the
  // never-forge assertion inside decode_against.)
  EXPECT_GE(detected, 10);
}

TEST(PipeChaos, DropsShortenButNeverForge) {
  const std::uint64_t seed = announce_seed(
      "STRATO_CHAOS_SEED", seed_from_env("STRATO_CHAOS_SEED", 0xC4A05));
  const FramedStream sent = make_stream(seed, 6);
  const ChaosSchedule chaos = ChaosSchedule::scripted({
      {ChaosKind::kDrop, sent.wire.size() / 2, 32, 0, 0xFF, 0.0},
  });
  const common::Bytes received = pump(sent.wire, chaos);
  EXPECT_EQ(received.size(), sent.wire.size() - 32);
  const auto [decoded, error] = decode_against(received, sent);
  // The gap desynchronizes framing: either the assembler throws on the
  // first post-gap header, or it starves waiting for bytes that never
  // arrive. Both are clean; forged output is impossible either way.
  EXPECT_LT(decoded, sent.blocks);
  (void)error;
}

TEST(PipeChaos, SameScheduleSameBytes) {
  const FramedStream sent = make_stream(3, 5);
  ChaosSchedule::RandomSpec spec;
  spec.range = sent.wire.size();
  spec.corruptions = 4;
  spec.drops = 2;
  spec.max_drop_span = 16;
  const common::Bytes a = pump(sent.wire, ChaosSchedule::random(spec, 99));
  const common::Bytes b = pump(sent.wire, ChaosSchedule::random(spec, 99));
  EXPECT_EQ(a, b);  // replayable: same seed, same damage, any chunking
  const common::Bytes c = pump(sent.wire, ChaosSchedule::random(spec, 100));
  EXPECT_NE(a, c);
}

// --- Decode-pipeline ladder under chaos -------------------------------------

/// What a receiver observes decoding one damaged wire: the ordered block
/// hashes it delivered, and the error (if any) that ended the stream.
struct DecodeOutcome {
  std::vector<std::uint64_t> block_hashes;
  std::string error;

  bool operator==(const DecodeOutcome& o) const {
    return block_hashes == o.block_hashes && error == o.error;
  }
};

DecodeOutcome decode_serial(const common::Bytes& received) {
  compress::FrameAssembler assembler(compress::CodecRegistry::standard());
  assembler.feed(received);
  DecodeOutcome out;
  try {
    while (auto block = assembler.next_block()) {
      out.block_hashes.push_back(common::xxh64(*block));
    }
  } catch (const compress::CodecError& e) {
    out.error = e.what();
  }
  return out;
}

DecodeOutcome decode_parallel(const common::Bytes& received,
                              std::size_t workers, std::size_t chunk) {
  compress::DecodePipelineConfig cfg;
  cfg.worker_count = workers;
  compress::ParallelBlockDecodePipeline pipeline(
      compress::CodecRegistry::standard(), cfg);
  DecodeOutcome out;
  try {
    std::size_t off = 0;
    while (off < received.size()) {
      const std::size_t n = std::min(chunk, received.size() - off);
      pipeline.feed(common::ByteSpan(received.data() + off, n));
      off += n;
      while (auto block = pipeline.next_block()) {
        out.block_hashes.push_back(common::xxh64(block->data));
      }
    }
  } catch (const compress::CodecError& e) {
    out.error = e.what();
  }
  return out;
}

TEST(DecodeChaos, WorkerLadderMatchesSerialOnDamagedWires) {
  // Truncated, corrupted and stalled wires must produce the same blocks
  // and the same error at every worker count and feed chunking — the
  // receive-side pipeline may never turn damage into divergence. Seeds
  // are replayable via STRATO_CHAOS_SEED.
  const std::uint64_t seed = announce_seed(
      "STRATO_CHAOS_SEED", seed_from_env("STRATO_CHAOS_SEED", 0xDECA1));
  for (int trial = 0; trial < 8; ++trial) {
    const FramedStream sent = make_stream(seed + trial, 4);
    ChaosSchedule::RandomSpec spec;
    spec.range = sent.wire.size();
    spec.corruptions = 2;
    spec.drops = 1;
    spec.max_drop_span = 24;
    spec.stalls = 1;
    const common::Bytes received =
        pump(sent.wire, ChaosSchedule::random(spec, seed ^ (trial + 17)));

    const DecodeOutcome serial = decode_serial(received);
    for (const std::size_t workers :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      for (const std::size_t chunk :
           {std::size_t{17}, std::max<std::size_t>(1, received.size())}) {
        const DecodeOutcome par = decode_parallel(received, workers, chunk);
        EXPECT_TRUE(par == serial)
            << "trial=" << trial << " workers=" << workers
            << " chunk=" << chunk << ": blocks " << par.block_hashes.size()
            << " vs " << serial.block_hashes.size() << ", error \""
            << par.error << "\" vs \"" << serial.error << "\"";
      }
    }
  }
}

TEST(DecodeChaos, TruncatedFrameStarvesEveryWorkerCountAlike) {
  const std::uint64_t seed = announce_seed(
      "STRATO_CHAOS_SEED", seed_from_env("STRATO_CHAOS_SEED", 0xDECA1));
  const FramedStream sent = make_stream(seed, 5);
  common::Bytes truncated = sent.wire;
  truncated.resize(truncated.size() * 3 / 4);  // mid-frame cut
  const DecodeOutcome serial = decode_serial(truncated);
  EXPECT_EQ(serial.error, "");  // starvation, not an error
  for (const std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    const DecodeOutcome par =
        decode_parallel(truncated, workers, truncated.size());
    EXPECT_TRUE(par == serial) << "workers=" << workers;
  }
}

// --- SharedLink blackouts ---------------------------------------------------

TEST(LinkChaos, BlackoutScalesCapacityInsideWindow) {
  vsim::VirtProfile flat;  // deterministic: no fluctuation noise
  flat.net_bytes_s = 100e6;
  flat.net_fluct.sigma = 0.0;
  flat.net_fluct.run_bias_sigma = 0.0;

  vsim::SharedLink plain(flat, 0, 5);
  vsim::SharedLink dark(flat, 0, 5);
  dark.set_chaos(ChaosSchedule::scripted({
      {ChaosKind::kBlackout, 2'000'000'000ULL, 1'000'000'000ULL, 0, 0xFF, 0.1},
  }));

  // Queries non-decreasing in time, as the link model requires.
  const auto before = common::SimTime::seconds(1.0);
  const auto inside = common::SimTime::seconds(2.5);
  const auto after = common::SimTime::seconds(3.5);
  EXPECT_NEAR(dark.fg_rate(before) / plain.fg_rate(before), 1.0, 1e-9);
  EXPECT_NEAR(dark.fg_rate(inside) / plain.fg_rate(inside), 0.1, 1e-9);
  EXPECT_NEAR(dark.fg_rate(after) / plain.fg_rate(after), 1.0, 1e-9);
}

// --- Virtual-time transfer under link chaos ---------------------------------

double run_transfer(const vsim::TransferConfig& cfg, const std::string& name) {
  vsim::TransferExperiment exp(cfg);
  const auto policy = expkit::make_policy(name, exp);
  return exp.run(*policy).completion_s;
}

vsim::TransferConfig chaos_config() {
  vsim::TransferConfig cfg;
  cfg.data = corpus::Compressibility::kModerate;
  cfg.total_bytes = 500'000'000ULL;
  cfg.seed = 11;
  return cfg;
}

TEST(TransferChaos, BlackoutsStretchCompletionDeterministically) {
  const auto base_cfg = chaos_config();
  const double baseline = run_transfer(base_cfg, "NO");

  auto dark_cfg = base_cfg;
  // Two brown-outs to 10% capacity, one second each, early in the run.
  dark_cfg.link_chaos = ChaosSchedule::scripted({
      {ChaosKind::kBlackout, 1'000'000'000ULL, 1'000'000'000ULL, 0, 0xFF, 0.1},
      {ChaosKind::kBlackout, 3'000'000'000ULL, 1'000'000'000ULL, 0, 0xFF, 0.1},
  });
  const double dark = run_transfer(dark_cfg, "NO");
  // Losing ~90% of the link for 2 of ~6 seconds must cost real time, but
  // not more than the 2 chaotic seconds could possibly cost.
  EXPECT_GT(dark, baseline + 1.0);
  EXPECT_LT(dark, baseline + 2.1);

  // Same config, same chaos => identical virtual-time outcome.
  EXPECT_DOUBLE_EQ(dark, run_transfer(dark_cfg, "NO"));
}

TEST(TransferChaos, AdaptivePolicySurvivesBlackouts) {
  auto cfg = chaos_config();
  cfg.link_chaos = ChaosSchedule::scripted({
      {ChaosKind::kBlackout, 500'000'000ULL, 1'500'000'000ULL, 0, 0xFF, 0.15},
  });
  vsim::TransferExperiment exp(cfg);
  const auto policy = expkit::make_policy("DYNAMIC", exp);
  const auto result = exp.run(*policy);
  // The run completes, moves every byte, and only ever picked levels the
  // ladder actually has — the controller never derails under the outage.
  EXPECT_GT(result.completion_s, 0.0);
  EXPECT_EQ(result.raw_bytes, cfg.total_bytes);
  std::uint64_t blocks = 0;
  for (const auto n : result.blocks_per_level) blocks += n;
  EXPECT_EQ(blocks,
            (cfg.total_bytes + cfg.block_size - 1) / cfg.block_size);
  EXPECT_LE(result.blocks_per_level.size(),
            static_cast<std::size_t>(vsim::CodecModel::kNumLevels));
}

}  // namespace
}  // namespace strato::verify
