// EventQueue invariants: ordering, FIFO tie-breaking, the past-time
// clamp (regression: a `schedule(at < now())` used to make now() jump
// backward in step()), and the bounded-horizon runner.
#include <gtest/gtest.h>

#include <vector>

#include "vsim/event_queue.h"

namespace strato::vsim {
namespace {

using common::SimTime;

TEST(EventQueue, FiresInTimeThenInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::ms(20), [&] { order.push_back(2); });
  q.schedule(SimTime::ms(10), [&] { order.push_back(0); });
  q.schedule(SimTime::ms(20), [&] { order.push_back(3); });
  q.schedule(SimTime::ms(10), [&] { order.push_back(1); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.now(), SimTime::ms(20));
}

TEST(EventQueue, ScheduleInIsRelativeToNow) {
  EventQueue q;
  SimTime seen;
  q.schedule(SimTime::ms(5), [&] {
    q.schedule_in(SimTime::ms(7), [&] { seen = q.now(); });
  });
  q.run();
  EXPECT_EQ(seen, SimTime::ms(12));
}

TEST(EventQueue, PastTimeScheduleClampsToNow) {
  // Regression: the docstring requires at >= now(), but schedule() used
  // to accept a past time verbatim — the event then popped with its stale
  // timestamp and now() ran backward.
  EventQueue q;
  std::vector<SimTime> fired_at;
  q.schedule(SimTime::ms(10), [&] {
    fired_at.push_back(q.now());
    // Scheduled "in the past" from t=10ms: must fire at 10ms, not 3ms.
    q.schedule(SimTime::ms(3), [&] { fired_at.push_back(q.now()); });
  });
  q.run();
  ASSERT_EQ(fired_at.size(), 2u);
  EXPECT_EQ(fired_at[0], SimTime::ms(10));
  EXPECT_EQ(fired_at[1], SimTime::ms(10));
  EXPECT_EQ(q.now(), SimTime::ms(10));  // never moved backward
}

TEST(EventQueue, ClampedEventsKeepFifoOrderAtNow) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::ms(10), [&] {
    q.schedule(SimTime::ms(1), [&] { order.push_back(1); });
    q.schedule(SimTime::ms(2), [&] { order.push_back(2); });
  });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, RunUntilLeavesLaterEventsQueued) {
  EventQueue q;
  int fired = 0;
  q.schedule(SimTime::ms(1), [&] { ++fired; });
  q.schedule(SimTime::ms(2), [&] { ++fired; });
  q.schedule(SimTime::ms(50), [&] { ++fired; });
  EXPECT_EQ(q.run_until(SimTime::ms(10)), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.now(), SimTime::ms(2));
  EXPECT_EQ(q.run_until(SimTime::ms(100)), 1u);
  EXPECT_EQ(fired, 3);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunCountsAndBounds) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    q.schedule(SimTime::ms(i), [&] { ++fired; });
  }
  EXPECT_EQ(q.run(3), 3u);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(q.run(), 2u);
  EXPECT_EQ(fired, 5);
}

// ---------------------------------------------------------------------------
// Recurring events: the callback is bound once at registration; each
// re-arm pushes only a POD heap entry (the fleet engine's per-epoch
// tick relies on this to avoid a std::function allocation per epoch).
// ---------------------------------------------------------------------------

TEST(EventQueueRecurring, RearmsFromInsideItsOwnCallback) {
  EventQueue q;
  std::vector<SimTime> fired_at;
  EventQueue::RecurringId id = EventQueue::kNoRecurring;
  id = q.add_recurring([&] {
    fired_at.push_back(q.now());
    if (fired_at.size() < 3) {
      q.schedule_recurring_in(id, SimTime::ms(10));
    }
  });
  q.schedule_recurring(id, SimTime::ms(5));
  q.run();
  EXPECT_EQ(fired_at, (std::vector<SimTime>{SimTime::ms(5), SimTime::ms(15),
                                            SimTime::ms(25)}));
}

TEST(EventQueueRecurring, PastTimeScheduleClampsToNow) {
  EventQueue q;
  std::vector<SimTime> fired_at;
  const auto id = q.add_recurring([&] { fired_at.push_back(q.now()); });
  q.schedule(SimTime::ms(10), [&] {
    q.schedule_recurring(id, SimTime::ms(3));  // past: clamps to 10ms
  });
  q.run();
  ASSERT_EQ(fired_at.size(), 1u);
  EXPECT_EQ(fired_at[0], SimTime::ms(10));
  EXPECT_EQ(q.now(), SimTime::ms(10));
}

TEST(EventQueueRecurring, InterleavesWithOneShotEventsInFifoOrder) {
  EventQueue q;
  std::vector<int> order;
  const auto id = q.add_recurring([&] { order.push_back(1); });
  q.schedule(SimTime::ms(10), [&] { order.push_back(0); });
  q.schedule_recurring(id, SimTime::ms(10));  // same time, scheduled later
  q.schedule(SimTime::ms(10), [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueRecurring, MultipleRegistrationsStayIndependent) {
  EventQueue q;
  int a = 0;
  int b = 0;
  const auto ia = q.add_recurring([&] { ++a; });
  const auto ib = q.add_recurring([&] { ++b; });
  q.schedule_recurring(ia, SimTime::ms(1));
  q.schedule_recurring(ib, SimTime::ms(2));
  q.schedule_recurring(ib, SimTime::ms(3));  // same id armed twice: fires twice
  q.run();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

}  // namespace
}  // namespace strato::vsim
