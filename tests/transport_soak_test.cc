// Loopback chaos soak: many concurrent AsyncTransport connections on one
// event loop, chaos enabled, every stream differentially verified.
//
//   * integrity group: every connection's delivered blocks must be
//     byte-identical (per-block XXH64) to what was submitted, in order;
//   * wire-identity group (every 5th connection): the bytes observed on
//     the wire (via wire_tap) must hash identically to the serial
//     verify::Oracle-style reference encoding of the same payloads —
//     including connections running parallel encode workers;
//   * stall group: scripted kStall chaos delays flushing but must never
//     mutate the stream;
//   * fault group (every 7th connection): scripted kCorrupt/kDrop chaos
//     must be detected — never a clean EOF — and the blocks delivered
//     before the fault must still be the exact sent prefix.
//
// Scale is env-tunable so the same binary is a fast tier-1 test and a
// full acceptance soak:
//
//   STRATO_TRANSPORT_CONNS=200 STRATO_TRANSPORT_TOTAL_MB=10240 \
//       ctest -L transport          # hundreds of conns, >= 10 GB aggregate
//
// Defaults keep the tier-1 run in seconds. STRATO_TRANSPORT_SEED replays
// a failing run (announced up front, per repository convention).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/checksum.h"
#include "common/chaos.h"
#include "common/rng.h"
#include "compress/framing.h"
#include "compress/registry.h"
#include "core/transport.h"
#include "corpus/generator.h"
#include "metrics/registry.h"
#include "verify/seed.h"

namespace strato::core {
namespace {

std::size_t env_size(const char* var, std::size_t fallback) {
  return static_cast<std::size_t>(verify::seed_from_env(var, fallback));
}

struct ConnState {
  std::size_t index = 0;
  bool faulty = false;        // kCorrupt/kDrop scripted on this conn
  bool wire_checked = false;  // serial-reference wire digest maintained
  std::size_t workers = 1;

  std::unique_ptr<corpus::Generator> gen;
  common::Bytes block;

  std::vector<std::uint64_t> sent_digests;  // per-block XXH64, in order
  common::Xxh64State ref_wire;              // serial reference encoding
  common::Xxh64State wire;                  // bytes actually on the wire
  std::uint64_t delivered = 0;
  bool prefix_ok = true;
};

TEST(TransportSoak, ChaosLoopbackFleetIsSerialEquivalent) {
  const std::uint64_t seed = verify::announce_seed(
      "STRATO_TRANSPORT_SEED",
      verify::seed_from_env("STRATO_TRANSPORT_SEED", 4242));
  const std::size_t conns = env_size("STRATO_TRANSPORT_CONNS", 12);
  const std::size_t total_mb = env_size("STRATO_TRANSPORT_TOTAL_MB", 24);
  SCOPED_TRACE("STRATO_TRANSPORT_SEED=" + std::to_string(seed) +
               " CONNS=" + std::to_string(conns) +
               " TOTAL_MB=" + std::to_string(total_mb));
  ASSERT_GT(conns, 0u);

  constexpr std::size_t kBlockSize = 64 * 1024;
  const std::size_t total_bytes = total_mb << 20;
  const std::size_t blocks_per_conn =
      std::max<std::size_t>(total_bytes / conns / kBlockSize, 4);

  const auto& registry = compress::CodecRegistry::standard();
  metrics::MetricRegistry metrics_reg;
  AsyncTransport transport(registry, &metrics_reg);

  std::vector<std::unique_ptr<ConnState>> states;
  states.reserve(conns);
  for (std::size_t c = 0; c < conns; ++c) {
    auto state = std::make_unique<ConnState>();
    state->index = c;
    state->faulty = (c % 7) == 2;
    // Wire identity needs a byte-exact wire: stalls delay but never
    // mutate, so stall conns stay eligible; fault conns do not.
    state->wire_checked = !state->faulty && (c % 5) == 0;
    state->workers = (c % 11) == 3 ? 2 : 1;
    state->gen = corpus::make_generator(
        static_cast<corpus::Compressibility>(c % 3), seed + c);
    state->block.resize(kBlockSize);
    states.push_back(std::move(state));
  }

  // Endpoints. All pairs share one loop; receivers use the zero-copy
  // recv_span path and mixed decode worker counts.
  for (std::size_t c = 0; c < conns; ++c) {
    ConnState& st = *states[c];
    TcpListener listener;
    auto client = TcpConnection::connect("127.0.0.1", listener.port());
    auto server = listener.accept();

    AsyncReceiver::Config rx_cfg;
    rx_cfg.decode_workers = (c % 13) == 4 ? 2 : 1;
    if (st.wire_checked) {
      rx_cfg.wire_tap = [&st](common::ByteSpan chunk) {
        st.wire.update(chunk);
      };
    }
    transport.add_receiver(
        std::move(server), rx_cfg,
        [&st](common::ByteSpan block, const compress::FrameHeader&) {
          common::Xxh64State h;
          h.update(block);
          if (st.delivered >= st.sent_digests.size() ||
              h.digest() != st.sent_digests[st.delivered]) {
            st.prefix_ok = false;
          }
          ++st.delivered;
        });

    AsyncSender::Config tx_cfg;
    tx_cfg.workers = st.workers;
    if (st.faulty) {
      // Early enough to trigger at every scale: the first stored-level
      // frames alone put > 256 KB on the wire.
      std::vector<common::ChaosEvent> events;
      common::ChaosEvent corrupt;
      corrupt.kind = common::ChaosKind::kCorrupt;
      corrupt.at = 100000 + 17 * c;
      corrupt.xor_mask = static_cast<std::uint8_t>(0x11 + c);
      events.push_back(corrupt);
      common::ChaosEvent drop;
      drop.kind = common::ChaosKind::kDrop;
      drop.at = 200000 + 31 * c;
      drop.span = 11;
      events.push_back(drop);
      tx_cfg.chaos = common::ChaosSchedule::scripted(events);
    } else if ((c % 3) == 1) {
      common::ChaosSchedule::RandomSpec spec;
      spec.range = 1 << 20;
      spec.stalls = 3;
      spec.mean_stall_ns = 500'000;  // ~0.5 ms; delays only
      tx_cfg.chaos = common::ChaosSchedule::random(spec, seed + c);
    }
    transport.add_sender(std::move(client), tx_cfg);
  }

  // Drive: round-robin one block per connection, polling receivers as we
  // go so decode keeps pace with encode on the single loop thread.
  for (std::size_t b = 0; b < blocks_per_conn; ++b) {
    for (std::size_t c = 0; c < conns; ++c) {
      ConnState& st = *states[c];
      st.gen->generate(st.block);
      common::Xxh64State h;
      h.update(st.block);
      st.sent_digests.push_back(h.digest());

      const int level = static_cast<int>((b + c) % registry.level_count());
      if (st.wire_checked) {
        // Serial reference: the exact frame the serial encoder would put
        // on the wire, hashed and discarded (no 10 GB retention).
        const common::Bytes frame = compress::encode_block(
            *registry.level(static_cast<std::size_t>(level)).codec,
            static_cast<std::uint8_t>(level), st.block);
        st.ref_wire.update(frame);
      }
      transport.sender(c).send(level, st.block);
    }
    transport.poll(0);
  }
  for (std::size_t c = 0; c < conns; ++c) transport.sender(c).finish();
  transport.run_receivers();

  // Verdicts.
  std::uint64_t aggregate_raw = 0;
  for (std::size_t c = 0; c < conns; ++c) {
    const ConnState& st = *states[c];
    const AsyncReceiver& rx = transport.receiver(c);
    SCOPED_TRACE("conn=" + std::to_string(c) +
                 (st.faulty ? " (faulty)" : "") +
                 " workers=" + std::to_string(st.workers));
    ASSERT_TRUE(rx.done());
    EXPECT_TRUE(st.prefix_ok);  // every delivered block matched its sent twin
    if (st.faulty) {
      // Chaos ate or flipped bytes: a clean EOF would mean silent
      // corruption slipped through the checksum net.
      EXPECT_FALSE(rx.clean_eof());
      EXPECT_LT(st.delivered, st.sent_digests.size());
    } else {
      EXPECT_TRUE(rx.clean_eof());
      EXPECT_EQ(st.delivered, st.sent_digests.size());
      if (st.wire_checked) {
        EXPECT_EQ(st.wire.digest(), st.ref_wire.digest())
            << "wire diverged from the serial reference encoding";
      }
    }
    aggregate_raw += transport.sender(c).raw_bytes();
  }
  EXPECT_GE(aggregate_raw, conns * blocks_per_conn * kBlockSize);

  // The shared metric surface aggregates both directions of every
  // connection; spot-check the invariants that survive chaos.
  EXPECT_EQ(metrics_reg.counter("rx.eofs").value() +
                metrics_reg.counter("rx.errors").value(),
            conns);
  EXPECT_GT(metrics_reg.counter("tx.wire_bytes").value(), 0u);
  EXPECT_GE(metrics_reg.counter("tx.wire_bytes").value(),
            metrics_reg.counter("rx.wire_bytes").value());
}

}  // namespace
}  // namespace strato::core
