// Workload schedules: spec parsing, per-offset class lookup, the
// scheduled byte stream, and the simulator integration.
#include <gtest/gtest.h>

#include "corpus/entropy.h"
#include "corpus/schedule.h"
#include "expkit/policies.h"
#include "vsim/transfer.h"

namespace strato::corpus {
namespace {

TEST(Schedule, ParsesSpecStrings) {
  const auto s = parse_schedule("HIGH:10G,LOW:5G,MODERATE:512M");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].data, Compressibility::kHigh);
  EXPECT_EQ(s[0].bytes, 10'000'000'000ULL);
  EXPECT_EQ(s[1].data, Compressibility::kLow);
  EXPECT_EQ(s[1].bytes, 5'000'000'000ULL);
  EXPECT_EQ(s[2].data, Compressibility::kModerate);
  EXPECT_EQ(s[2].bytes, 512'000'000ULL);
  EXPECT_EQ(schedule_length(s), 15'512'000'000ULL);
}

TEST(Schedule, ParsesPlainAndKiloSizes) {
  const auto s = parse_schedule("LOW:123,HIGH:4K");
  EXPECT_EQ(s[0].bytes, 123u);
  EXPECT_EQ(s[1].bytes, 4000u);
}

TEST(Schedule, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_schedule(""), std::invalid_argument);
  EXPECT_THROW(parse_schedule("HIGH"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("TINY:1G"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("HIGH:"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("HIGH:G"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("HIGH:12x"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("HIGH:0"), std::invalid_argument);
}

TEST(Schedule, ClassAtWalksAndWraps) {
  const auto s = parse_schedule("HIGH:100,LOW:50");
  EXPECT_EQ(class_at(s, 0), Compressibility::kHigh);
  EXPECT_EQ(class_at(s, 99), Compressibility::kHigh);
  EXPECT_EQ(class_at(s, 100), Compressibility::kLow);
  EXPECT_EQ(class_at(s, 149), Compressibility::kLow);
  EXPECT_EQ(class_at(s, 150), Compressibility::kHigh);  // wraps
  EXPECT_EQ(class_at(s, 150 + 120), Compressibility::kLow);
  EXPECT_EQ(class_at({}, 42, Compressibility::kModerate),
            Compressibility::kModerate);
}

TEST(ScheduledGenerator, SegmentsHaveTheRightCharacter) {
  ScheduledGenerator gen(parse_schedule("HIGH:50000,LOW:50000"), 3);
  const auto high_part = take(gen, 50000);
  const auto low_part = take(gen, 50000);
  EXPECT_LT(shannon_entropy(high_part), 2.5);
  EXPECT_GT(shannon_entropy(low_part), 7.5);
  // Wrap-around: next 50 KB are HIGH again.
  const auto wrapped = take(gen, 50000);
  EXPECT_LT(shannon_entropy(wrapped), 2.5);
}

TEST(ScheduledGenerator, DeterministicAndResettable) {
  const auto spec = parse_schedule("MODERATE:10000,LOW:5000");
  ScheduledGenerator a(spec, 7), b(spec, 7);
  const auto x = take(a, 40000);
  EXPECT_EQ(x, take(b, 40000));
  a.reset(7);
  EXPECT_EQ(take(a, 40000), x);
}

TEST(ScheduledGenerator, ChunkingInvariance) {
  const auto spec = parse_schedule("HIGH:777,LOW:333,MODERATE:555");
  ScheduledGenerator a(spec, 5), b(spec, 5);
  const auto whole = take(a, 20000);
  common::Bytes pieces;
  std::size_t step = 1;
  while (pieces.size() < whole.size()) {
    const std::size_t n =
        std::min<std::size_t>(step = (step * 7 + 3) % 97 + 1,
                              whole.size() - pieces.size());
    const auto chunk = take(b, n);
    pieces.insert(pieces.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(pieces, whole);
}

TEST(ScheduleInSimulator, TraceDrivesCompressibility) {
  // A trace that is 80 % HIGH should move far fewer wire bytes than one
  // that is 80 % LOW, under the same adaptive policy.
  const auto mostly_high = parse_schedule("HIGH:800M,LOW:200M");
  const auto mostly_low = parse_schedule("HIGH:200M,LOW:800M");
  const auto run = [](const std::vector<Segment>& schedule) {
    vsim::TransferConfig cfg;
    cfg.schedule = schedule;
    cfg.total_bytes = 2'000'000'000ULL;
    cfg.seed = 9;
    vsim::TransferExperiment exp(cfg);
    const auto policy = expkit::make_policy("DYNAMIC", exp);
    return exp.run(*policy);
  };
  const auto high_res = run(mostly_high);
  const auto low_res = run(mostly_low);
  EXPECT_LT(high_res.wire_bytes, low_res.wire_bytes / 2);
  EXPECT_LT(high_res.completion_s, low_res.completion_s);
}

}  // namespace
}  // namespace strato::corpus
