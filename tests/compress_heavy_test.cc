// Range coder and HeavyLz codec tests.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/heavy_lz.h"
#include "compress/lz77.h"
#include "compress/range_coder.h"
#include "corpus/generator.h"

namespace strato::compress {
namespace {

// --- range coder -------------------------------------------------------------

TEST(RangeCoder, SingleModelBitSequenceRoundTrips) {
  common::Xoshiro256 rng(1);
  std::vector<std::uint32_t> bits;
  for (int i = 0; i < 20000; ++i) {
    bits.push_back(rng.uniform() < 0.83 ? 1 : 0);  // biased stream
  }
  RangeEncoder enc;
  BitModel m_enc;
  for (const auto b : bits) enc.encode_bit(m_enc, b);
  enc.finish();

  RangeDecoder dec(enc.bytes());
  BitModel m_dec;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    ASSERT_EQ(dec.decode_bit(m_dec), bits[i]) << "bit " << i;
  }
}

TEST(RangeCoder, BiasedStreamCompressesBelowOneBitPerBit) {
  // 95/5 bias: entropy ~0.29 bits; adaptive coder should get well under
  // 1 bit per symbol.
  common::Xoshiro256 rng(2);
  RangeEncoder enc;
  BitModel m;
  constexpr int kN = 80000;
  for (int i = 0; i < kN; ++i) {
    enc.encode_bit(m, rng.uniform() < 0.05 ? 1 : 0);
  }
  enc.finish();
  EXPECT_LT(enc.bytes().size(), kN / 8 / 2);  // < 0.5 bit per symbol
}

TEST(RangeCoder, DirectBitsRoundTrip) {
  common::Xoshiro256 rng(3);
  std::vector<std::pair<std::uint32_t, int>> values;
  RangeEncoder enc;
  for (int i = 0; i < 5000; ++i) {
    const int nbits = 1 + static_cast<int>(rng.below(24));
    const std::uint32_t v = static_cast<std::uint32_t>(rng()) &
                            ((nbits == 32 ? 0 : (1u << nbits)) - 1u);
    values.emplace_back(v, nbits);
    enc.encode_direct(v, nbits);
  }
  enc.finish();
  RangeDecoder dec(enc.bytes());
  for (const auto& [v, nbits] : values) {
    ASSERT_EQ(dec.decode_direct(nbits), v);
  }
}

TEST(RangeCoder, MixedModelAndDirect) {
  common::Xoshiro256 rng(4);
  RangeEncoder enc;
  BitModel m;
  std::vector<std::uint32_t> trace;
  for (int i = 0; i < 10000; ++i) {
    const std::uint32_t b = rng.below(2);
    const std::uint32_t d = static_cast<std::uint32_t>(rng.below(256));
    trace.push_back(b);
    trace.push_back(d);
    enc.encode_bit(m, b);
    enc.encode_direct(d, 8);
  }
  enc.finish();
  RangeDecoder dec(enc.bytes());
  BitModel md;
  for (std::size_t i = 0; i < trace.size(); i += 2) {
    ASSERT_EQ(dec.decode_bit(md), trace[i]);
    ASSERT_EQ(dec.decode_direct(8), trace[i + 1]);
  }
}

TEST(RangeCoder, BitTreeRoundTrip) {
  common::Xoshiro256 rng(5);
  RangeEncoder enc;
  BitTree<8> tree_enc;
  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 20000; ++i) {
    symbols.push_back(static_cast<std::uint32_t>(rng.below(200)));
    tree_enc.encode(enc, symbols.back());
  }
  enc.finish();
  RangeDecoder dec(enc.bytes());
  BitTree<8> tree_dec;
  for (const auto s : symbols) ASSERT_EQ(tree_dec.decode(dec), s);
}

TEST(RangeCoder, TruncatedPreambleRejected) {
  const common::Bytes tiny = {0, 1, 2};
  EXPECT_THROW(RangeDecoder dec(tiny), CodecError);
}

TEST(BitModel, AdaptsTowardObservedBits) {
  BitModel m;
  const auto p0 = m.prob();
  for (int i = 0; i < 50; ++i) m.update_0();
  EXPECT_GT(m.prob(), p0);  // more confident in 0
  for (int i = 0; i < 200; ++i) m.update_1();
  EXPECT_LT(m.prob(), p0);
}

// --- HeavyLz codec -------------------------------------------------------------

TEST(HeavyLz, EmptyAndTiny) {
  HeavyLz codec;
  for (std::size_t n : {0u, 1u, 2u, 3u, 7u, 64u}) {
    common::Bytes data(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = static_cast<std::uint8_t>(i * 13 + 1);
    }
    common::Bytes comp(codec.max_compressed_size(n));
    const std::size_t c = codec.compress(data, comp);
    comp.resize(c);
    common::Bytes back(n);
    EXPECT_EQ(codec.decompress(comp, back), n);
    EXPECT_EQ(back, data);
  }
}

class HeavySeeded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeavySeeded, CorpusRoundTrips) {
  HeavyLz codec;
  for (const auto c :
       {corpus::Compressibility::kHigh, corpus::Compressibility::kModerate,
        corpus::Compressibility::kLow}) {
    auto gen = corpus::make_generator(c, GetParam());
    const auto data = corpus::take(*gen, 200000);
    const auto comp = codec.compress(data);
    EXPECT_LE(comp.size(), codec.max_compressed_size(data.size()));
    EXPECT_EQ(codec.decompress(comp, data.size()), data);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeavySeeded,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(HeavyLz, BeatsLightOnStructuredData) {
  // The whole point of the HEAVY level: a clearly better ratio than
  // LIGHT/MEDIUM on compressible data.
  FastLz light;
  MediumLz medium;
  HeavyLz heavy;
  for (const auto c :
       {corpus::Compressibility::kHigh, corpus::Compressibility::kModerate}) {
    auto gen = corpus::make_generator(c, 8);
    const auto data = corpus::take(*gen, 1 << 20);
    const auto l = light.compress(data).size();
    const auto m = medium.compress(data).size();
    const auto h = heavy.compress(data).size();
    EXPECT_LT(h, m) << corpus::to_string(c);
    EXPECT_LT(m, l) << corpus::to_string(c);
  }
}

TEST(HeavyLz, StoredFallbackOnRandomData) {
  // Pure random data cannot be entropy-coded below raw size; the stored
  // marker must bound expansion at 1 byte.
  HeavyLz codec;
  common::Xoshiro256 rng(6);
  common::Bytes data(100000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  const auto comp = codec.compress(data);
  EXPECT_LE(comp.size(), data.size() + 1);
  EXPECT_EQ(codec.decompress(comp, data.size()), data);
}

TEST(HeavyLz, MalformedInputRejected) {
  HeavyLz codec;
  common::Bytes out(100);
  EXPECT_THROW(codec.decompress({}, out), CodecError);
  const common::Bytes bad_marker = {7, 1, 2, 3, 4, 5};
  EXPECT_THROW(codec.decompress(bad_marker, out), CodecError);
  // Stored marker with wrong length.
  const common::Bytes stored = {1, 'a', 'b'};
  EXPECT_THROW(codec.decompress(stored, out), CodecError);
}

TEST(HeavyLz, ChecksummedCorruptionCaughtDownstream) {
  // Bit flips inside a coded stream produce either a CodecError or wrong
  // bytes (caught by the frame checksum at the framing layer); they must
  // never crash or hang.
  HeavyLz codec;
  auto gen = corpus::make_generator(corpus::Compressibility::kModerate, 3);
  const auto data = corpus::take(*gen, 50000);
  auto comp = codec.compress(data);
  common::Xoshiro256 rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    auto bad = comp;
    bad[rng.below(bad.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    common::Bytes out(data.size());
    try {
      codec.decompress(bad, out);
    } catch (const CodecError&) {
      continue;  // fine: detected structurally
    }
  }
  SUCCEED();
}

TEST(HeavyLz, LongMatchesSplitAcrossCap) {
  // Matches longer than the 259-byte cap must be emitted as several
  // matches and still round-trip.
  common::Bytes data(5000, 0xAB);
  HeavyLz codec;
  const auto comp = codec.compress(data);
  EXPECT_EQ(codec.decompress(comp, data.size()), data);
  EXPECT_LT(comp.size(), 200u);  // runs still compress very well
}

}  // namespace
}  // namespace strato::compress
