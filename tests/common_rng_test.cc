// PRNG determinism and distribution sanity.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace strato::common {
namespace {

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 a(1), b(1), c(2);
  const auto x = a.next();
  EXPECT_EQ(x, b.next());
  EXPECT_NE(x, c.next());
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(5);
  double lo = 1.0, hi = 0.0, sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
  EXPECT_LT(lo, 0.001);
  EXPECT_GT(hi, 0.999);
}

TEST(Xoshiro256, UniformRange) {
  Xoshiro256 rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 7.0);
  }
}

TEST(Xoshiro256, BelowCoversRange) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Xoshiro256, SatisfiesUrbgConcept) {
  static_assert(Xoshiro256::min() == 0);
  static_assert(Xoshiro256::max() == UINT64_MAX);
  Xoshiro256 rng(1);
  (void)rng();
}

}  // namespace
}  // namespace strato::common
