// BufferPool poison-on-release debug mode: generation tags, quarantine
// FIFO, the kPoisonByte stamp, and — under AddressSanitizer — the
// use-after-poison abort that turns a stale pooled span into a crash
// instead of a silently corrupt frame (DESIGN.md section 14).
#include <gtest/gtest.h>

#include <cstdint>

#include "common/buffer_pool.h"

// Mirror the detection in buffer_pool.cc: the poison stamp is readable
// through a stale pointer only when ASan is not shadow-poisoning the
// region; under ASan the same read must abort.
#if defined(__SANITIZE_ADDRESS__)
#define STRATO_POOL_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define STRATO_POOL_TEST_ASAN 1
#endif
#endif

namespace strato::common {
namespace {

TEST(BufferPoolPoison, GenerationTagBumpsEveryRelease) {
  BufferPool pool(4);
  pool.set_poison(true);
  Bytes buf = pool.acquire(128);
  buf.resize(64, 0x11);
  const void* addr = buf.data();
  EXPECT_EQ(pool.generation(addr), 0u);  // never released yet

  pool.release(std::move(buf));
  EXPECT_EQ(pool.generation(addr), 1u);

  Bytes again = pool.acquire(128);
  ASSERT_EQ(again.data(), addr);  // same pooled allocation, no realloc
  EXPECT_EQ(pool.generation(addr), 1u);  // tag survives the re-acquire
  pool.release(std::move(again));
  EXPECT_EQ(pool.generation(addr), 2u);

  EXPECT_EQ(pool.generation(&pool), 0u);  // unknown allocation
}

TEST(BufferPoolPoison, StatsCountPoisonTraffic) {
  BufferPool pool(4);
  pool.set_poison(true);
  Bytes buf = pool.acquire(64);
  buf.resize(32);
  pool.release(std::move(buf));
  Bytes again = pool.acquire(64);
  pool.release(std::move(again));

  const BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.acquires, 2u);
  EXPECT_EQ(s.reuses, 1u);
  EXPECT_EQ(s.poisons, 2u);
  EXPECT_EQ(s.unpoisons, 1u);
  EXPECT_EQ(s.generations, 2u);
  EXPECT_EQ(s.quarantined, 0u);  // no quarantine configured
}

TEST(BufferPoolPoison, QuarantineDelaysReuse) {
  BufferPool pool(4);
  pool.set_poison(true);
  pool.set_quarantine(1);

  Bytes a = pool.acquire(64);
  const void* addr_a = a.data();
  pool.release(std::move(a));
  EXPECT_EQ(pool.stats().quarantined, 1u);

  // The only pooled buffer is parked: this acquire must NOT alias it.
  Bytes fresh = pool.acquire(64);
  EXPECT_NE(fresh.data(), addr_a);
  EXPECT_EQ(pool.stats().reuses, 0u);

  // A second release pushes the FIFO over depth; `a` re-enters the free
  // list and the next acquire reuses it, oldest first.
  pool.release(std::move(fresh));
  EXPECT_EQ(pool.stats().quarantined, 1u);
  Bytes reused = pool.acquire(64);
  EXPECT_EQ(reused.data(), addr_a);
  EXPECT_EQ(pool.stats().reuses, 1u);
  pool.release(std::move(reused));
}

TEST(BufferPoolPoison, DisablingPoisonStopsTagging) {
  BufferPool pool(4);
  pool.set_poison(true);
  EXPECT_TRUE(pool.poison_enabled());
  pool.set_poison(false);
  EXPECT_FALSE(pool.poison_enabled());

  Bytes buf = pool.acquire(64);
  buf.resize(32, 0x11);
  const void* addr = buf.data();
  pool.release(std::move(buf));
  EXPECT_EQ(pool.generation(addr), 0u);
  EXPECT_EQ(pool.stats().poisons, 0u);

  // Re-acquire must be readable and zero-sized regardless of mode.
  Bytes again = pool.acquire(64);
  EXPECT_EQ(again.size(), 0u);
  pool.release(std::move(again));
}

#if !defined(STRATO_POOL_TEST_ASAN)
TEST(BufferPoolPoison, ReleasedBytesAreStamped) {
  BufferPool pool(4);
  pool.set_poison(true);
  // Park the released buffer in quarantine so the allocation stays alive
  // (owned by the pool) while the stale pointer below inspects it.
  pool.set_quarantine(4);

  Bytes buf = pool.acquire(64);
  buf.resize(48, 0x11);
  const std::uint8_t* stale = buf.data();
  pool.release(std::move(buf));

  // Sanctioned stale read: this test IS the detector's detector. Without
  // ASan the poison mode's whole contract is the visible stamp.
  for (std::size_t i = 0; i < 48; ++i) {
    ASSERT_EQ(stale[i], BufferPool::kPoisonByte) << "offset " << i;
  }
}
#endif

#if defined(STRATO_POOL_TEST_ASAN)
// Under ASan the release() path shadow-poisons the whole region: any
// dereference of a span that outlived its lease aborts with a
// use-after-poison report. This is the runtime leg of the lifetime
// discipline — the seeded use-after-release the lint rule flags
// statically dies here dynamically.
TEST(BufferPoolPoisonDeathTest, StaleSpanReadAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        BufferPool pool(4);
        pool.set_poison(true);
        pool.set_quarantine(4);  // keep the allocation mapped, but poisoned
        Bytes buf = pool.acquire(64);
        buf.resize(48, 0x11);
        const volatile std::uint8_t* stale = buf.data();
        pool.release(std::move(buf));
        (void)stale[0];  // use-after-release: must abort, not read 0xA5
      },
      "use-after-poison");
}
#endif

}  // namespace
}  // namespace strato::common
