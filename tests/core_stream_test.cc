// CompressingWriter / DecompressingReader: the application-facing pipeline
// of Section III-A.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/stream.h"
#include "corpus/generator.h"

namespace strato::core {
namespace {

using compress::CodecRegistry;

/// Sink capturing everything in memory.
class MemorySink final : public ByteSink {
 public:
  void write(common::ByteSpan data) override {
    bytes.insert(bytes.end(), data.begin(), data.end());
  }
  common::Bytes bytes;
};

common::Bytes pump_through(CompressionPolicy& policy, common::ByteSpan data,
                           std::size_t block_size, std::size_t write_grain) {
  MemorySink sink;
  common::ManualClock clock;
  CompressingWriter writer(sink, CodecRegistry::standard(), policy, clock,
                           block_size);
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t n = std::min(write_grain, data.size() - off);
    writer.write(data.subspan(off, n));
    clock.advance(common::SimTime::ms(1));
    off += n;
  }
  writer.flush();
  EXPECT_EQ(writer.raw_bytes(), data.size());
  EXPECT_EQ(writer.framed_bytes(), sink.bytes.size());

  DecompressingReader reader(CodecRegistry::standard());
  reader.feed(sink.bytes);
  common::Bytes out;
  while (auto block = reader.next_block()) {
    out.insert(out.end(), block->begin(), block->end());
  }
  EXPECT_EQ(reader.raw_bytes(), out.size());
  return out;
}

TEST(Stream, RoundTripStaticLevels) {
  auto gen = corpus::make_generator(corpus::Compressibility::kModerate, 1);
  const auto data = corpus::take(*gen, 500000);
  for (int level = 0; level < 4; ++level) {
    StaticPolicy policy(level, "P");
    EXPECT_EQ(pump_through(policy, data, 128 * 1024, 10000), data)
        << "level " << level;
  }
}

TEST(Stream, CompressibleDataShrinksOnTheWire) {
  auto gen = corpus::make_generator(corpus::Compressibility::kHigh, 1);
  const auto data = corpus::take(*gen, 512 * 1024);
  MemorySink sink;
  common::ManualClock clock;
  StaticPolicy policy(1, "LIGHT");
  CompressingWriter writer(sink, CodecRegistry::standard(), policy, clock);
  writer.write(data);
  writer.flush();
  EXPECT_LT(writer.framed_bytes(), writer.raw_bytes() / 3);
}

class GrainSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(GrainSweep, RoundTripAnyBlockAndWriteSizes) {
  const auto [block_size, grain] = GetParam();
  common::Xoshiro256 rng(block_size * 31 + grain);
  common::Bytes data(300000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    // Mildly compressible pattern with noise.
    data[i] = static_cast<std::uint8_t>((i / 64) + (rng.below(8) == 0 ? rng() : 0));
  }
  StaticPolicy policy(2, "MEDIUM");
  EXPECT_EQ(pump_through(policy, data, block_size, grain), data);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, GrainSweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1024, 1},
                      std::pair<std::size_t, std::size_t>{1024, 1024},
                      std::pair<std::size_t, std::size_t>{4096, 100000},
                      std::pair<std::size_t, std::size_t>{128 * 1024, 333},
                      std::pair<std::size_t, std::size_t>{128 * 1024,
                                                          128 * 1024},
                      std::pair<std::size_t, std::size_t>{64 * 1024, 65536}));

TEST(Stream, FlushEmitsPartialBlock) {
  MemorySink sink;
  common::ManualClock clock;
  StaticPolicy policy(0, "NO");
  CompressingWriter writer(sink, CodecRegistry::standard(), policy, clock,
                           128 * 1024);
  writer.write(common::as_bytes("tail"));
  EXPECT_EQ(sink.bytes.size(), 0u);  // buffered, not yet a full block
  writer.flush();
  EXPECT_GT(sink.bytes.size(), 0u);
  DecompressingReader reader(CodecRegistry::standard());
  reader.feed(sink.bytes);
  EXPECT_EQ(common::to_string(*reader.next_block()), "tail");
}

TEST(Stream, PolicyLevelIsReadPerBlock) {
  // A policy that alternates levels every block; the receiver must see
  // frames of both levels and still reassemble the stream.
  class Alternator final : public CompressionPolicy {
   public:
    [[nodiscard]] int level() const override { return count_ % 2 == 0 ? 0 : 3; }
    void on_block(std::size_t, common::SimTime) override { ++count_; }
    [[nodiscard]] std::string name() const override { return "ALT"; }

   private:
    int count_ = 0;
  };
  auto gen = corpus::make_generator(corpus::Compressibility::kHigh, 3);
  const auto data = corpus::take(*gen, 8 * 16384);
  Alternator policy;
  MemorySink sink;
  common::ManualClock clock;
  CompressingWriter writer(sink, CodecRegistry::standard(), policy, clock,
                           16384);
  writer.write(data);
  writer.flush();
  EXPECT_EQ(writer.blocks_per_level()[0], 4u);
  EXPECT_EQ(writer.blocks_per_level()[3], 4u);

  DecompressingReader reader(CodecRegistry::standard());
  reader.feed(sink.bytes);
  common::Bytes out;
  while (auto b = reader.next_block()) {
    out.insert(out.end(), b->begin(), b->end());
  }
  EXPECT_EQ(out, data);
  EXPECT_EQ(reader.blocks_per_level()[0], 4u);
  EXPECT_EQ(reader.blocks_per_level()[3], 4u);
}

TEST(Stream, OutOfRangePolicyLevelIsClamped) {
  class Wild final : public CompressionPolicy {
   public:
    [[nodiscard]] int level() const override { return 99; }
    void on_block(std::size_t, common::SimTime) override {}
    [[nodiscard]] std::string name() const override { return "WILD"; }
  };
  Wild policy;
  const auto data = common::as_bytes("clamp me please, thank you kindly");
  MemorySink sink;
  common::ManualClock clock;
  CompressingWriter writer(sink, CodecRegistry::standard(), policy, clock, 16);
  writer.write(data);
  writer.flush();
  DecompressingReader reader(CodecRegistry::standard());
  reader.feed(sink.bytes);
  common::Bytes out;
  while (auto b = reader.next_block()) {
    out.insert(out.end(), b->begin(), b->end());
  }
  EXPECT_EQ(common::to_string(out), common::to_string(data));
}

TEST(Stream, AdaptivePolicySeesBackpressureTiming) {
  // The writer samples the clock after the sink accepts a block; with a
  // manual clock advanced inside a slow sink, the policy's rate meter
  // sees the (lower) achievable rate.
  class SlowSink final : public ByteSink {
   public:
    explicit SlowSink(common::ManualClock& clk) : clk_(clk) {}
    void write(common::ByteSpan data) override {
      // 1 MB/s "link".
      clk_.advance(common::SimTime::seconds(
          static_cast<double>(data.size()) / 1e6));
    }

   private:
    common::ManualClock& clk_;
  };
  common::ManualClock clock;
  SlowSink sink(clock);
  AdaptivePolicy policy(AdaptiveConfig{}, common::SimTime::seconds(2));
  double last_rate = -1;
  policy.set_trace(
      [&](common::SimTime, double cdr, const Decision&) { last_rate = cdr; });
  CompressingWriter writer(sink, CodecRegistry::standard(), policy, clock,
                           64 * 1024);
  auto gen = corpus::make_generator(corpus::Compressibility::kLow, 4);
  const auto data = corpus::take(*gen, 4 << 20);
  writer.write(data);
  writer.flush();
  ASSERT_GT(last_rate, 0.0);
  // Achievable application rate ~1 MB/s (incompressible data, 1 MB/s sink).
  EXPECT_NEAR(last_rate, 1e6, 0.3e6);
}

}  // namespace
}  // namespace strato::core
