// Failure-path integration tests: corrupted spill files, corrupted wire
// bytes, and the shuffle (partition/union) topology.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>

#include "common/spsc_ring.h"
#include "core/baselines.h"
#include "core/stream.h"
#include "dataflow/executor.h"
#include "dataflow/stdtasks.h"

namespace strato {
namespace {

using dataflow::ChannelType;
using dataflow::CompressionSpec;

TEST(FaultInjection, CorruptedSpillFileFailsTheJobCleanly) {
  const std::string path = "/tmp/strato_fault_spill.chan";
  // Two-phase: first run a writer-only job to create the spill, corrupt
  // it on disk, then run the reader and expect a clean, reported failure.
  {
    auto ch = dataflow::make_file_channel(path, CompressionSpec::fixed(1));
    auto gen = corpus::make_generator(corpus::Compressibility::kModerate, 1);
    for (int i = 0; i < 20; ++i) {
      ch->writer().emit(corpus::take(*gen, 5000));
    }
    ch->writer().close();
    // Corrupt a payload byte in the middle of the file.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f);
    f.seekp(2000);
    f.put('\x5A');
    f.close();
    bool failed = false;
    int records = 0;
    try {
      while (ch->reader().next()) ++records;
    } catch (const compress::CodecError&) {
      failed = true;
    }
    EXPECT_TRUE(failed);
    EXPECT_LT(records, 20);
  }
  std::remove(path.c_str());
}

TEST(FaultInjection, ExecutorReportsFailingTaskWithoutHanging) {
  // A task that throws mid-stream (e.g. on a corrupt record) must fail
  // the job with its error reported, while the downstream sink terminates
  // on EOF instead of hanging.
  std::atomic<std::uint64_t> records{0}, bytes{0};
  dataflow::JobGraph g2;
  const int s2 = g2.add_vertex("src", [] {
    return std::make_unique<dataflow::CorpusSource>(
        corpus::Compressibility::kHigh, 50000, 1000);
  });
  const int poisoned = g2.add_vertex("poisoned", [] {
    return std::make_unique<dataflow::MapTask>(
        [n = 0](common::Bytes rec) mutable {
          if (++n == 25) throw compress::CodecError("poisoned record");
          return rec;
        });
  });
  const int d2 = g2.add_vertex("sink", [&] {
    return std::make_unique<dataflow::CountingSink>(records, bytes);
  });
  g2.connect(s2, poisoned, ChannelType::kInMemory);
  g2.connect(poisoned, d2, ChannelType::kInMemory);
  dataflow::Executor exec;
  const auto stats = exec.execute(g2);
  EXPECT_FALSE(stats.ok());
  EXPECT_NE(stats.error.find("poisoned"), std::string::npos);
}

TEST(FaultInjection, WireCorruptionDetectedByReceiver) {
  // Compress blocks, flip bytes "on the wire", feed the receiver: every
  // outcome must be a CodecError or a checksum-clean block, never silent
  // damage.
  const auto& reg = compress::CodecRegistry::standard();
  auto gen = corpus::make_generator(corpus::Compressibility::kModerate, 4);
  common::Bytes wire;
  for (int i = 0; i < 5; ++i) {
    const auto frame =
        compress::encode_block(*reg.level(1).codec, 1,
                               corpus::take(*gen, 30000));
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  common::Xoshiro256 rng(5);
  int detected = 0;
  for (int trial = 0; trial < 30; ++trial) {
    auto bad = wire;
    bad[rng.below(bad.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    core::DecompressingReader reader(reg);
    reader.feed(bad);
    try {
      while (reader.next_block()) {
      }
    } catch (const compress::CodecError&) {
      ++detected;
    }
  }
  EXPECT_GT(detected, 20);
}

TEST(Shuffle, PartitionUnionPreservesEveryRecord) {
  // src -> partition -> {3 unions gates} -> union -> sink: the classic
  // shuffle; all records survive with their contents.
  constexpr int kRecords = 3000;
  std::set<std::string> sent, received;
  std::mutex mu;
  dataflow::JobGraph g;
  const int src = g.add_vertex("src", [&] {
    int n = 0;
    return std::make_unique<dataflow::FunctionSource>(
        [&, n]() mutable -> std::optional<common::Bytes> {
          if (n >= kRecords) return std::nullopt;
          const std::string payload = "record-" + std::to_string(n++);
          {
            std::lock_guard lk(mu);
            sent.insert(payload);
          }
          const auto b = common::as_bytes(payload);
          return common::Bytes(b.begin(), b.end());
        });
  });
  const int part = g.add_vertex("partition", [] {
    return std::make_unique<dataflow::PartitionTask>();
  });
  const int merge = g.add_vertex("union", [] {
    return std::make_unique<dataflow::UnionTask>();
  });
  const int sink = g.add_vertex("sink", [&] {
    return std::make_unique<dataflow::ForEachSink>([&](common::ByteSpan rec) {
      std::lock_guard lk(mu);
      received.insert(common::to_string(rec));
    });
  });
  g.connect(src, part, ChannelType::kInMemory);
  for (int lane = 0; lane < 3; ++lane) {
    g.connect(part, merge, ChannelType::kNetwork, CompressionSpec::fixed(1));
  }
  g.connect(merge, sink, ChannelType::kInMemory);

  dataflow::ExecutorConfig cfg;
  cfg.shared_link_bytes_s = 100e6;
  dataflow::Executor exec(cfg);
  const auto stats = exec.execute(g);
  ASSERT_TRUE(stats.ok()) << stats.error;
  EXPECT_EQ(received.size(), static_cast<std::size_t>(kRecords));
  EXPECT_EQ(received, sent);
  // The partitioner spread records across all three lanes.
  for (int lane = 1; lane <= 3; ++lane) {
    EXPECT_GT(stats.channels[static_cast<std::size_t>(lane)].records, 100u);
  }
}

TEST(QueuePolicyIntegration, DrivesARealPipeline) {
  // The Jeannot-style baseline wired to a genuine FIFO between the
  // compressor and a slow drainer thread: the fill level is a live
  // signal, not a fake probe.
  common::SpscRing<common::Bytes> fifo(16);
  std::atomic<bool> done{false};
  std::thread drainer([&] {
    while (auto block = fifo.pop()) {
      // ~8 MB/s drain.
      std::this_thread::sleep_for(std::chrono::microseconds(
          block->size() / 8));
    }
    done = true;
  });

  class RingSink final : public core::ByteSink {
   public:
    explicit RingSink(common::SpscRing<common::Bytes>& ring) : ring_(ring) {}
    void write(common::ByteSpan data) override {
      ring_.push(common::Bytes(data.begin(), data.end()));
    }

   private:
    common::SpscRing<common::Bytes>& ring_;
  };

  RingSink sink(fifo);
  core::QueuePolicy policy([&] { return fifo.fill(); }, 4,
                           common::SimTime::ms(50));
  common::SteadyClock clock;
  core::CompressingWriter writer(sink, compress::CodecRegistry::standard(),
                                 policy, clock, 64 * 1024);
  auto gen = corpus::make_generator(corpus::Compressibility::kHigh, 6);
  common::Bytes chunk(64 * 1024);
  for (int i = 0; i < 160; ++i) {
    gen->generate(chunk);
    writer.write(chunk);
  }
  writer.flush();
  fifo.close();
  drainer.join();
  EXPECT_TRUE(done.load());
  // The queue backs up behind the slow drainer, so the policy must have
  // raised the level above 0 at some point; compressed blocks exist.
  std::uint64_t compressed = 0;
  for (std::size_t l = 1; l < writer.blocks_per_level().size(); ++l) {
    compressed += writer.blocks_per_level()[l];
  }
  EXPECT_GT(compressed, 0u);
}

}  // namespace
}  // namespace strato
