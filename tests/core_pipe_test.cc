// ThrottledPipe / LinkShare: the real-time shared-link stand-in.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/rng.h"
#include "core/throttled_pipe.h"

namespace strato::core {
namespace {

common::Bytes drain(ThrottledPipe& pipe) {
  common::Bytes all;
  for (;;) {
    const auto chunk = pipe.read(64 * 1024);
    if (chunk.empty()) return all;
    all.insert(all.end(), chunk.begin(), chunk.end());
  }
}

TEST(ThrottledPipe, DataIntegrityAcrossThreads) {
  auto link = std::make_shared<LinkShare>(200e6);
  ThrottledPipe pipe(link);
  common::Xoshiro256 rng(1);
  common::Bytes data(2 << 20);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());

  std::thread writer([&] {
    std::size_t off = 0;
    while (off < data.size()) {
      const std::size_t n = std::min<std::size_t>(77777, data.size() - off);
      pipe.write(common::ByteSpan(data.data() + off, n));
      off += n;
    }
    pipe.close();
  });
  const auto received = drain(pipe);
  writer.join();
  EXPECT_EQ(received, data);
  EXPECT_EQ(pipe.transferred(), data.size());
}

TEST(ThrottledPipe, ApproximatesConfiguredRate) {
  auto link = std::make_shared<LinkShare>(20e6);  // 20 MB/s
  ThrottledPipe pipe(link);
  const std::size_t total = 4 << 20;  // 4 MB -> ~0.2 s
  std::thread writer([&] {
    common::Bytes chunk(64 * 1024, 0x5A);
    for (std::size_t sent = 0; sent < total; sent += chunk.size()) {
      pipe.write(chunk);
    }
    pipe.close();
  });
  const auto t0 = std::chrono::steady_clock::now();
  const auto received = drain(pipe);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  writer.join();
  EXPECT_EQ(received.size(), total);
  const double rate = static_cast<double>(total) / secs;
  EXPECT_GT(rate, 8e6);   // loose band: scheduling noise on CI boxes
  EXPECT_LT(rate, 80e6);  // but decisively throttled below memcpy speed
}

TEST(ThrottledPipe, SharedLinkSplitsBandwidth) {
  auto link = std::make_shared<LinkShare>(40e6);
  ThrottledPipe a(link), b(link);
  const std::size_t total = 3 << 20;
  auto writer = [total](ThrottledPipe& p) {
    common::Bytes chunk(64 * 1024, 1);
    for (std::size_t sent = 0; sent < total; sent += chunk.size()) {
      p.write(chunk);
    }
    p.close();
  };
  std::thread wa(writer, std::ref(a)), wb(writer, std::ref(b));
  std::thread ra([&] { drain(a); });
  const auto t0 = std::chrono::steady_clock::now();
  drain(b);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  wa.join();
  wb.join();
  ra.join();
  // Two flows over a 40 MB/s link move 6 MB total: ~0.15 s minus the
  // bucket's burst credit (2 MB). Decisively slower than unthrottled.
  EXPECT_GT(secs, 0.06);
}

TEST(ThrottledPipe, UnthrottledWhenNoLink) {
  ThrottledPipe pipe(nullptr);
  std::thread writer([&] {
    common::Bytes chunk(1 << 20, 7);
    for (int i = 0; i < 32; ++i) pipe.write(chunk);
    pipe.close();
  });
  const auto received = drain(pipe);
  writer.join();
  EXPECT_EQ(received.size(), 32u << 20);
}

TEST(ThrottledPipe, CloseUnblocksReader) {
  ThrottledPipe pipe(nullptr);
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pipe.close();
  });
  EXPECT_TRUE(pipe.read(100).empty());  // blocks until close, then EOF
  closer.join();
}

TEST(ThrottledPipe, WriteAfterCloseIsDropped) {
  ThrottledPipe pipe(nullptr);
  pipe.close();
  pipe.write(common::as_bytes("lost"));  // must not crash or block
  EXPECT_TRUE(pipe.read(100).empty());
}

TEST(ThrottledPipe, BoundedBufferBackpressure) {
  // Tiny capacity: writer cannot run ahead of the reader by more than the
  // buffer size.
  ThrottledPipe pipe(nullptr, /*capacity=*/4096);
  std::atomic<std::size_t> written{0};
  std::thread writer([&] {
    common::Bytes chunk(1024, 2);
    for (int i = 0; i < 64; ++i) {
      pipe.write(chunk);
      written.fetch_add(chunk.size());
    }
    pipe.close();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // Writer must be stalled well short of the total.
  EXPECT_LE(written.load(), 4096u + 1024u);
  const auto received = drain(pipe);
  writer.join();
  EXPECT_EQ(received.size(), 64u * 1024u);
}

TEST(LinkShare, AcquireConsumesCredit) {
  LinkShare link(1e9);
  const auto t0 = std::chrono::steady_clock::now();
  link.acquire(1000);  // trivially available
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(secs, 0.05);
  EXPECT_DOUBLE_EQ(link.rate(), 1e9);
}

}  // namespace
}  // namespace strato::core
