// Real TCP transport: loopback round trips of the full adaptive pipeline
// over the kernel's TCP stack — the paper's actual channel medium.
#include <gtest/gtest.h>

#include <thread>

#include "common/checksum.h"
#include "core/policy.h"
#include "core/stream.h"
#include "core/tcp.h"
#include "corpus/generator.h"

namespace strato::core {
namespace {

TEST(Tcp, ListenerPicksEphemeralPort) {
  TcpListener listener(0);
  EXPECT_GT(listener.port(), 0);
}

TEST(Tcp, BasicByteRoundTrip) {
  TcpListener listener;
  std::thread client([&] {
    auto conn = TcpConnection::connect("127.0.0.1", listener.port());
    conn.write(common::as_bytes("hello over tcp"));
    conn.shutdown_send();
    // Echo path back.
    common::Bytes reply;
    for (;;) {
      const auto chunk = conn.read(1024);
      if (chunk.empty()) break;
      reply.insert(reply.end(), chunk.begin(), chunk.end());
    }
    EXPECT_EQ(common::to_string(reply), "HELLO");
  });

  auto server = listener.accept();
  common::Bytes received;
  for (;;) {
    const auto chunk = server.read(1024);
    if (chunk.empty()) break;
    received.insert(received.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(common::to_string(received), "hello over tcp");
  server.write(common::as_bytes("HELLO"));
  server.shutdown_send();
  client.join();
}

TEST(Tcp, ConnectToClosedPortFails) {
  std::uint16_t dead_port;
  {
    TcpListener listener;
    dead_port = listener.port();
  }  // closed again
  EXPECT_THROW(TcpConnection::connect("127.0.0.1", dead_port),
               std::runtime_error);
  EXPECT_THROW(TcpConnection::connect("not an ip", 1), std::runtime_error);
}

TEST(Tcp, AdaptivePipelineOverRealSockets) {
  // The paper's setup end to end: sender task -> adaptive compression ->
  // TCP connection -> decompression -> receiver, on the loopback device.
  constexpr std::size_t kTotal = 8 << 20;
  TcpListener listener;

  std::uint64_t sent_digest = 0;
  std::thread sender([&] {
    auto conn = TcpConnection::connect("127.0.0.1", listener.port());
    const auto& registry = compress::CodecRegistry::standard();
    AdaptiveConfig cfg;
    cfg.num_levels = static_cast<int>(registry.level_count());
    AdaptivePolicy policy(cfg, common::SimTime::ms(100));
    common::SteadyClock clock;
    CompressingWriter writer(conn, registry, policy, clock);

    auto gen = corpus::make_generator(corpus::Compressibility::kHigh, 5);
    common::Xxh64State hash;
    common::Bytes chunk(64 * 1024);
    for (std::size_t sent = 0; sent < kTotal; sent += chunk.size()) {
      gen->generate(chunk);
      hash.update(chunk);
      writer.write(chunk);
    }
    writer.flush();
    conn.shutdown_send();
    sent_digest = hash.digest();
    // Loopback is faster than any codec, so staying at level 0 is the
    // *correct* adaptive outcome here; the assertion is about transport
    // integrity, not ratio.
    EXPECT_GE(writer.framed_bytes(), writer.raw_bytes());
    // Drain until peer closes so the socket lingers long enough.
    while (!conn.read(4096).empty()) {
    }
  });

  auto server = listener.accept();
  DecompressingReader reader(compress::CodecRegistry::standard());
  common::Xxh64State hash;
  std::uint64_t received = 0;
  for (;;) {
    const auto chunk = server.read(64 * 1024);
    if (chunk.empty()) break;
    reader.feed(chunk);
    while (auto block = reader.next_block()) {
      hash.update(*block);
      received += block->size();
    }
  }
  server.shutdown_send();
  server.close();
  sender.join();
  EXPECT_EQ(received, kTotal);
  EXPECT_EQ(hash.digest(), sent_digest);
}

TEST(Tcp, FramedStreamSurvivesSmallSocketReads) {
  // Tiny reads force the FrameAssembler through every partial-header and
  // partial-payload path over a real socket.
  TcpListener listener;
  auto gen = corpus::make_generator(corpus::Compressibility::kModerate, 9);
  const auto payload = corpus::take(*gen, 100000);

  std::thread sender([&] {
    auto conn = TcpConnection::connect("127.0.0.1", listener.port());
    const auto frame = compress::encode_block(
        *compress::CodecRegistry::standard().level(2).codec, 2, payload);
    conn.write(frame);
    conn.shutdown_send();
  });

  auto server = listener.accept();
  compress::FrameAssembler assembler(compress::CodecRegistry::standard());
  std::optional<common::Bytes> block;
  for (;;) {
    const auto chunk = server.read(97);  // deliberately tiny
    if (chunk.empty()) break;
    assembler.feed(chunk);
    if (auto b = assembler.next_block()) block = std::move(b);
  }
  sender.join();
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(*block, payload);
}

}  // namespace
}  // namespace strato::core
