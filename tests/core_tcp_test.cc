// Real TCP transport: loopback round trips of the full adaptive pipeline
// over the kernel's TCP stack — the paper's actual channel medium, plus
// the hardening contract: EINTR retry under signal pepper, EAGAIN
// write-all/read-something on O_NONBLOCK fds, ECONNRESET surfacing as an
// exception mid-frame, and SIGPIPE never killing the process.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <thread>

#include "common/checksum.h"
#include "core/policy.h"
#include "core/stream.h"
#include "core/tcp.h"
#include "corpus/generator.h"

namespace strato::core {
namespace {

TEST(Tcp, ListenerPicksEphemeralPort) {
  TcpListener listener(0);
  EXPECT_GT(listener.port(), 0);
}

TEST(Tcp, BasicByteRoundTrip) {
  TcpListener listener;
  std::thread client([&] {
    auto conn = TcpConnection::connect("127.0.0.1", listener.port());
    conn.write(common::as_bytes("hello over tcp"));
    conn.shutdown_send();
    // Echo path back.
    common::Bytes reply;
    for (;;) {
      const auto chunk = conn.read(1024);
      if (chunk.empty()) break;
      reply.insert(reply.end(), chunk.begin(), chunk.end());
    }
    EXPECT_EQ(common::to_string(reply), "HELLO");
  });

  auto server = listener.accept();
  common::Bytes received;
  for (;;) {
    const auto chunk = server.read(1024);
    if (chunk.empty()) break;
    received.insert(received.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(common::to_string(received), "hello over tcp");
  server.write(common::as_bytes("HELLO"));
  server.shutdown_send();
  client.join();
}

TEST(Tcp, ConnectToClosedPortFails) {
  std::uint16_t dead_port;
  {
    TcpListener listener;
    dead_port = listener.port();
  }  // closed again
  EXPECT_THROW(TcpConnection::connect("127.0.0.1", dead_port),
               std::runtime_error);
  EXPECT_THROW(TcpConnection::connect("not an ip", 1), std::runtime_error);
}

TEST(Tcp, AdaptivePipelineOverRealSockets) {
  // The paper's setup end to end: sender task -> adaptive compression ->
  // TCP connection -> decompression -> receiver, on the loopback device.
  constexpr std::size_t kTotal = 8 << 20;
  TcpListener listener;

  std::uint64_t sent_digest = 0;
  std::thread sender([&] {
    auto conn = TcpConnection::connect("127.0.0.1", listener.port());
    const auto& registry = compress::CodecRegistry::standard();
    AdaptiveConfig cfg;
    cfg.num_levels = static_cast<int>(registry.level_count());
    AdaptivePolicy policy(cfg, common::SimTime::ms(100));
    common::SteadyClock clock;
    CompressingWriter writer(conn, registry, policy, clock);

    auto gen = corpus::make_generator(corpus::Compressibility::kHigh, 5);
    common::Xxh64State hash;
    common::Bytes chunk(64 * 1024);
    for (std::size_t sent = 0; sent < kTotal; sent += chunk.size()) {
      gen->generate(chunk);
      hash.update(chunk);
      writer.write(chunk);
    }
    writer.flush();
    conn.shutdown_send();
    sent_digest = hash.digest();
    // Loopback is faster than any codec, so staying at level 0 is the
    // *correct* adaptive outcome here; the assertion is about transport
    // integrity, not ratio.
    EXPECT_GE(writer.framed_bytes(), writer.raw_bytes());
    // Drain until peer closes so the socket lingers long enough.
    while (!conn.read(4096).empty()) {
    }
  });

  auto server = listener.accept();
  DecompressingReader reader(compress::CodecRegistry::standard());
  common::Xxh64State hash;
  std::uint64_t received = 0;
  for (;;) {
    const auto chunk = server.read(64 * 1024);
    if (chunk.empty()) break;
    reader.feed(chunk);
    while (auto block = reader.next_block()) {
      hash.update(*block);
      received += block->size();
    }
  }
  server.shutdown_send();
  server.close();
  sender.join();
  EXPECT_EQ(received, kTotal);
  EXPECT_EQ(hash.digest(), sent_digest);
}

TEST(Tcp, FramedStreamSurvivesSmallSocketReads) {
  // Tiny reads force the FrameAssembler through every partial-header and
  // partial-payload path over a real socket.
  TcpListener listener;
  auto gen = corpus::make_generator(corpus::Compressibility::kModerate, 9);
  const auto payload = corpus::take(*gen, 100000);

  std::thread sender([&] {
    auto conn = TcpConnection::connect("127.0.0.1", listener.port());
    const auto frame = compress::encode_block(
        *compress::CodecRegistry::standard().level(2).codec, 2, payload);
    conn.write(frame);
    conn.shutdown_send();
  });

  auto server = listener.accept();
  compress::FrameAssembler assembler(compress::CodecRegistry::standard());
  std::optional<common::Bytes> block;
  for (;;) {
    const auto chunk = server.read(97);  // deliberately tiny
    if (chunk.empty()) break;
    assembler.feed(chunk);
    if (auto b = assembler.next_block()) block = std::move(b);
  }
  sender.join();
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(*block, payload);
}

// ---------------------------------------------------------------------------
// Hardening regressions

TEST(TcpHardening, ReadWriteSurviveSignalPepper) {
  // A no-op SIGUSR1 handler installed WITHOUT SA_RESTART makes every
  // blocking syscall eligible for EINTR; peppering the transfer thread
  // with signals exercises the retry loops in read()/write().
  struct sigaction sa{};
  sa.sa_handler = [](int) {};
  sa.sa_flags = 0;  // deliberately no SA_RESTART
  struct sigaction old{};
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

  constexpr std::size_t kTotal = 4 << 20;
  TcpListener listener;
  std::atomic<bool> stop{false};

  std::thread client([&] {
    auto conn = TcpConnection::connect("127.0.0.1", listener.port());
    auto gen = corpus::make_generator(corpus::Compressibility::kLow, 11);
    common::Bytes chunk(64 * 1024);
    for (std::size_t sent = 0; sent < kTotal; sent += chunk.size()) {
      gen->generate(chunk);
      conn.write(chunk);
    }
    conn.shutdown_send();
  });
  const pthread_t victim = client.native_handle();

  std::thread pepper([&] {
    while (!stop.load()) {
      ::pthread_kill(victim, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  auto server = listener.accept();
  std::uint64_t received = 0;
  for (;;) {
    const auto chunk = server.read(32 * 1024);
    if (chunk.empty()) break;
    received += chunk.size();
  }
  stop = true;
  client.join();
  pepper.join();
  ::sigaction(SIGUSR1, &old, nullptr);
  EXPECT_EQ(received, kTotal);
}

TEST(TcpHardening, NonblockingFdsKeepBlockingSemantics) {
  // With O_NONBLOCK set on both ends and a payload far beyond the socket
  // buffers, write() must poll()-wait through EAGAIN and still write all;
  // read() must wait for data instead of failing.
  constexpr std::size_t kTotal = 8 << 20;
  TcpListener listener;

  std::uint64_t sent_digest = 0;
  std::thread client([&] {
    auto conn = TcpConnection::connect("127.0.0.1", listener.port());
    conn.set_nonblocking(true);
    auto gen = corpus::make_generator(corpus::Compressibility::kLow, 13);
    common::Xxh64State hash;
    common::Bytes chunk(256 * 1024);
    for (std::size_t sent = 0; sent < kTotal; sent += chunk.size()) {
      gen->generate(chunk);
      hash.update(chunk);
      conn.write(chunk);  // must not drop bytes on EAGAIN
    }
    conn.shutdown_send();
    sent_digest = hash.digest();
  });

  auto server = listener.accept();
  server.set_nonblocking(true);
  common::Xxh64State hash;
  std::uint64_t received = 0;
  for (;;) {
    const auto chunk = server.read(64 * 1024);
    if (chunk.empty()) break;  // orderly EOF, not EAGAIN
    hash.update(chunk);
    received += chunk.size();
  }
  client.join();
  EXPECT_EQ(received, kTotal);
  EXPECT_EQ(hash.digest(), sent_digest);
}

TEST(TcpHardening, PeerResetMidFrameThrowsInsteadOfHanging) {
  // The client aborts (SO_LINGER{1,0} => RST on close) halfway through a
  // frame. The server must surface ECONNRESET as std::runtime_error — not
  // EOF (which would silently truncate the stream) and not a hang.
  TcpListener listener;
  const auto& registry = compress::CodecRegistry::standard();
  auto gen = corpus::make_generator(corpus::Compressibility::kModerate, 17);
  const auto payload = corpus::take(*gen, 200000);
  const auto frame = compress::encode_block(
      *registry.level(1).codec, 1, payload);

  std::thread client([&] {
    auto conn = TcpConnection::connect("127.0.0.1", listener.port());
    conn.write(common::ByteSpan(frame).first(frame.size() / 2));
    struct linger lg{};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ASSERT_EQ(::setsockopt(conn.fd(), SOL_SOCKET, SO_LINGER, &lg, sizeof lg),
              0);
    conn.close();  // RST
  });

  auto server = listener.accept();
  compress::FrameAssembler assembler(registry);
  EXPECT_THROW(
      {
        for (;;) {
          const auto chunk = server.read(4096);
          if (chunk.empty()) break;
          assembler.feed(chunk);
          while (assembler.next_block()) {
          }
        }
      },
      std::runtime_error);
  client.join();
}

TEST(TcpHardening, WriteToResetPeerThrowsNoSigpipe) {
  // The server accepts and aborts immediately; the client keeps writing.
  // Without MSG_NOSIGNAL the second write would raise SIGPIPE and kill
  // the process — the regression this test pins is "exception, always".
  TcpListener listener;
  auto conn = TcpConnection::connect("127.0.0.1", listener.port());
  {
    auto server = listener.accept();
    struct linger lg{};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ASSERT_EQ(::setsockopt(server.fd(), SOL_SOCKET, SO_LINGER, &lg,
                           sizeof lg),
              0);
  }  // closed with RST

  const common::Bytes junk(64 * 1024, 0xAB);
  EXPECT_THROW(
      {
        // The first writes may land in the kernel buffer before the RST
        // is processed; bounded retries guarantee the error surfaces.
        for (int i = 0; i < 1000; ++i) conn.write(junk);
      },
      std::runtime_error);
}

TEST(TcpHardening, BacklogAbsorbsConnectionBurst) {
  // The soak dials hundreds of connections before the acceptor runs;
  // listen(backlog) must hold a burst without refusing anyone.
  constexpr int kBurst = 16;
  TcpListener listener(0, /*backlog=*/kBurst);
  std::vector<TcpConnection> clients;
  clients.reserve(kBurst);
  for (int i = 0; i < kBurst; ++i) {
    clients.push_back(TcpConnection::connect("127.0.0.1", listener.port()));
    clients.back().write(common::as_bytes("x"));
  }
  for (int i = 0; i < kBurst; ++i) {
    auto server = listener.accept();
    EXPECT_EQ(server.read(16).size(), 1u);
  }
}

}  // namespace
}  // namespace strato::core
