// Channel endpoints: in-memory, network (throttled pipe + compression),
// file (spill + compression).
#include <gtest/gtest.h>

#include <cstdio>
#include <thread>

#include "common/rng.h"
#include "corpus/generator.h"
#include "dataflow/channel.h"

namespace strato::dataflow {
namespace {

std::vector<common::Bytes> make_records(corpus::Compressibility c, int n,
                                        std::size_t size) {
  auto gen = corpus::make_generator(c, 21);
  std::vector<common::Bytes> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(corpus::take(*gen, size));
  return out;
}

void pump(Channel& ch, const std::vector<common::Bytes>& records) {
  std::thread producer([&] {
    for (const auto& r : records) ch.writer().emit(r);
    ch.writer().close();
  });
  std::size_t got = 0;
  while (auto rec = ch.reader().next()) {
    ASSERT_LT(got, records.size());
    EXPECT_EQ(*rec, records[got]);
    ++got;
  }
  producer.join();
  EXPECT_EQ(got, records.size());
}

TEST(InMemoryChannel, RoundTripAndStats) {
  const auto records = make_records(corpus::Compressibility::kModerate, 100,
                                    5000);
  auto ch = make_inmemory_channel(8);
  pump(*ch, records);
  const auto stats = ch->stats();
  EXPECT_EQ(stats.records, 100u);
  EXPECT_EQ(stats.raw_bytes, 100u * 5000u);
  EXPECT_EQ(stats.wire_bytes, stats.raw_bytes);  // no compression in memory
}

TEST(NetworkChannel, UncompressedRoundTrip) {
  const auto records = make_records(corpus::Compressibility::kLow, 50, 4000);
  auto ch = make_network_channel(nullptr, CompressionSpec::none());
  pump(*ch, records);
  const auto stats = ch->stats();
  EXPECT_EQ(stats.records, 50u);
  EXPECT_GE(stats.wire_bytes, stats.raw_bytes);  // header overhead only
}

class NetworkStaticLevels : public ::testing::TestWithParam<int> {};

TEST_P(NetworkStaticLevels, CompressedRoundTrip) {
  const auto records = make_records(corpus::Compressibility::kHigh, 40, 8000);
  auto ch = make_network_channel(nullptr,
                                 CompressionSpec::fixed(GetParam()));
  pump(*ch, records);
  const auto stats = ch->stats();
  EXPECT_EQ(stats.records, 40u);
  if (GetParam() > 0) {
    EXPECT_LT(stats.wire_bytes, stats.raw_bytes / 2);  // HIGH compresses
    // Blocks carry the configured level.
    EXPECT_GT(stats.blocks_per_level.at(static_cast<std::size_t>(GetParam())),
              0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, NetworkStaticLevels, ::testing::Range(0, 4));

TEST(NetworkChannel, AdaptiveSpecRoundTrip) {
  const auto records =
      make_records(corpus::Compressibility::kModerate, 60, 10000);
  auto ch = make_network_channel(
      nullptr, CompressionSpec::adaptive_default(common::SimTime::ms(50)),
      compress::CodecRegistry::standard(), 16 * 1024);
  pump(*ch, records);
  EXPECT_EQ(ch->stats().records, 60u);
}

TEST(NetworkChannel, ParallelWorkersRoundTrip) {
  const auto records = make_records(corpus::Compressibility::kHigh, 40, 8000);
  auto ch = make_network_channel(
      nullptr, CompressionSpec::fixed(2).with_workers(4),
      compress::CodecRegistry::standard(), 16 * 1024);
  pump(*ch, records);
  const auto stats = ch->stats();
  EXPECT_EQ(stats.records, 40u);
  EXPECT_LT(stats.wire_bytes, stats.raw_bytes / 2);
}

TEST(NetworkChannel, ParallelWireBytesMatchSerial) {
  const auto records =
      make_records(corpus::Compressibility::kModerate, 30, 6000);
  auto serial = make_network_channel(nullptr, CompressionSpec::fixed(1));
  pump(*serial, records);
  auto parallel = make_network_channel(
      nullptr, CompressionSpec::fixed(1).with_workers(3, /*depth=*/4));
  pump(*parallel, records);
  EXPECT_EQ(parallel->stats().wire_bytes, serial->stats().wire_bytes);
  EXPECT_EQ(parallel->stats().blocks_per_level,
            serial->stats().blocks_per_level);
}

TEST(NetworkChannel, AdaptiveWithWorkersRoundTrip) {
  const auto records =
      make_records(corpus::Compressibility::kModerate, 60, 10000);
  auto ch = make_network_channel(
      nullptr,
      CompressionSpec::adaptive_default(common::SimTime::ms(50))
          .with_workers(2),
      compress::CodecRegistry::standard(), 16 * 1024);
  pump(*ch, records);
  EXPECT_EQ(ch->stats().records, 60u);
}

TEST(NetworkChannel, ThrottledLinkSharedByTwoChannels) {
  auto link = std::make_shared<core::LinkShare>(50e6);
  auto ch1 = make_network_channel(link, CompressionSpec::none());
  auto ch2 = make_network_channel(link, CompressionSpec::none());
  const auto records = make_records(corpus::Compressibility::kLow, 20, 50000);
  std::thread t1([&] { pump(*ch1, records); });
  pump(*ch2, records);
  t1.join();
  EXPECT_EQ(ch1->stats().records, 20u);
  EXPECT_EQ(ch2->stats().records, 20u);
}

TEST(FileChannel, RoundTripThroughSpillFile) {
  const std::string path = "/tmp/strato_test_filechannel.chan";
  const auto records = make_records(corpus::Compressibility::kHigh, 30, 20000);
  {
    auto ch = make_file_channel(path, CompressionSpec::fixed(1));
    pump(*ch, records);
    const auto stats = ch->stats();
    EXPECT_EQ(stats.records, 30u);
    EXPECT_LT(stats.wire_bytes, stats.raw_bytes / 2);
  }
  std::remove(path.c_str());
}

TEST(FileChannel, ReaderWaitsForWriterClose) {
  const std::string path = "/tmp/strato_test_filechannel_wait.chan";
  auto ch = make_file_channel(path, CompressionSpec::none());
  std::thread slow_writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ch->writer().emit(common::as_bytes("late record"));
    ch->writer().close();
  });
  const auto rec = ch->reader().next();  // must block until close
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(common::to_string(*rec), "late record");
  EXPECT_FALSE(ch->reader().next().has_value());
  slow_writer.join();
  std::remove(path.c_str());
}

TEST(FileChannel, EmptyStream) {
  const std::string path = "/tmp/strato_test_filechannel_empty.chan";
  auto ch = make_file_channel(path, CompressionSpec::fixed(2));
  ch->writer().close();
  EXPECT_FALSE(ch->reader().next().has_value());
  std::remove(path.c_str());
}

TEST(Channels, LargeRecordsSpanningManyBlocks) {
  // A single record larger than the 16 KB block size must be split across
  // frames and reassembled.
  auto gen = corpus::make_generator(corpus::Compressibility::kModerate, 5);
  const auto big = corpus::take(*gen, 300000);
  auto ch = make_network_channel(nullptr, CompressionSpec::fixed(1),
                                 compress::CodecRegistry::standard(),
                                 16 * 1024);
  std::thread producer([&] {
    ch->writer().emit(big);
    ch->writer().close();
  });
  const auto rec = ch->reader().next();
  producer.join();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(*rec, big);
}

}  // namespace
}  // namespace strato::dataflow
