// Differential test of Algorithm 1.
//
// A second, deliberately naive transcription of the paper's pseudo code
// (plus the explicitly stated out-of-algorithm bookkeeping: pdr update,
// inc update, first-call pdr=cdr, and the repository's documented
// boundary clamping) is executed side by side with the production
// AdaptiveController over long random rate traces. Any divergence in
// chosen levels or backoff state is a bug in one of the two.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "core/controller.h"

namespace strato::core {
namespace {

/// Literal transcription of the paper's Algorithm 1 + Table I state.
class ReferenceAlgorithm1 {
 public:
  explicit ReferenceAlgorithm1(int num_levels, double alpha)
      : n_(num_levels), alpha_(alpha), bck_(num_levels, 0) {}

  int step(double rate) {
    // Table I: "On the first call of the decision algorithm, pdr is set
    // to cdr."
    const double cdr = rate;
    if (first_) {
      pdr_ = cdr;
      first_ = false;
    }

    // --- Algorithm 1, lines 1-28 ---
    const double d = cdr - pdr_;                    // line 1
    c_ = c_ + 1;                                    // line 2
    int ncl = ccl_;                                 // line 3
    if (std::fabs(d) <= alpha_ * pdr_) {            // line 4
      if (c_ >= (1LL << bck_[ccl_])) {              // line 6
        if (inc_) {                                 // line 7
          ncl = ncl + 1;                            // line 8
        } else {
          ncl = ncl - 1;                            // line 10
        }
        // Boundary handling (documented in DESIGN.md: flip direction).
        if (n_ == 1) {
          ncl = 0;
        } else if (ncl < 0) {
          ncl = 1;
        } else if (ncl >= n_) {
          ncl = n_ - 2;
        }
        c_ = 0;                                     // line 12
      }
    } else if (d > 0) {                             // line 15
      bck_[ccl_] = std::min(bck_[ccl_] + 1, 30);    // line 16
      c_ = 0;                                       // line 17
    } else {                                        // line 19
      bck_[ccl_] = 0;                               // line 20
      if (inc_) {                                   // line 21
        ncl = ccl_ - 1;                             // line 22
      } else {
        ncl = ccl_ + 1;                             // line 24
      }
      if (ncl < 0) ncl = 0;                         // clamp (no flip)
      if (ncl >= n_) ncl = n_ - 1;
      c_ = 0;                                       // line 26
    }
    // "inc is usually updated outside of the displayed algorithm
    // depending on the input parameter ccl and the return value ncl."
    if (ncl > ccl_) inc_ = true;
    if (ncl < ccl_) inc_ = false;
    pdr_ = cdr;
    ccl_ = ncl;
    return ncl;
  }

  [[nodiscard]] int backoff(int level) const { return bck_[level]; }
  [[nodiscard]] bool inc() const { return inc_; }

 private:
  int n_;
  double alpha_;
  int ccl_ = 0;
  long long c_ = 0;
  bool inc_ = true;
  std::vector<int> bck_;
  double pdr_ = 0.0;
  bool first_ = true;
};

class Differential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Differential, ReferenceAndProductionAgreeOnRandomTraces) {
  common::Xoshiro256 rng(GetParam());
  const int levels = 2 + static_cast<int>(rng.below(5));
  const double alpha = rng.uniform(0.05, 0.4);

  AdaptiveConfig cfg;
  cfg.num_levels = levels;
  cfg.alpha = alpha;
  AdaptiveController production(cfg);
  ReferenceAlgorithm1 reference(levels, alpha);

  double rate = 1e6;
  for (int w = 0; w < 5000; ++w) {
    // Random walk with occasional regime jumps (level changes cause them
    // in reality).
    if (rng.below(20) == 0) {
      rate = rng.uniform(1e5, 1e8);
    } else {
      rate = std::max(1.0, rate * rng.uniform(0.75, 1.35));
    }
    const int want = reference.step(rate);
    const Decision got = production.on_window(rate);
    ASSERT_EQ(got.level, want) << "window " << w;
    for (int l = 0; l < levels; ++l) {
      ASSERT_EQ(production.backoff(l), reference.backoff(l))
          << "window " << w << " level " << l;
    }
    ASSERT_EQ(production.increasing(), reference.inc()) << "window " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(Differential, PaperWorkedExample) {
  // A hand-checkable trace: rates that make level 1 the clear optimum.
  // Annotated against the pseudo code.
  ReferenceAlgorithm1 ref(4, 0.2);
  AdaptiveController prod([] {
    AdaptiveConfig cfg;
    cfg.num_levels = 4;
    cfg.alpha = 0.2;
    return cfg;
  }());
  const double trace[] = {100, 250, 120, 250, 250, 250, 250, 250,
                          250, 250, 250, 250, 250, 250, 250};
  for (const double r : trace) {
    EXPECT_EQ(prod.on_window(r).level, ref.step(r));
  }
}

}  // namespace
}  // namespace strato::core
