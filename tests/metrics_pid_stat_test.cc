// /proc/<pid>/stat parsing (the paper's qemu-process monitoring path).
#include <gtest/gtest.h>

#include <unistd.h>

#include "metrics/pid_stat.h"

namespace strato::metrics {
namespace {

TEST(PidStat, ParsesTypicalLine) {
  const auto s = parse_pid_stat(
      "1234 (qemu-system-x86) S 1 1234 1234 0 -1 4194560 "
      "52345 0 12 0 777 333 0 0 20 0 4 0 12345 987654321 5678");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->pid, 1234);
  EXPECT_EQ(s->comm, "qemu-system-x86");
  EXPECT_EQ(s->state, 'S');
  EXPECT_EQ(s->utime, 777u);
  EXPECT_EQ(s->stime, 333u);
  EXPECT_EQ(s->total(), 1110u);
}

TEST(PidStat, CommWithSpacesAndParens) {
  // comm is delimited by the LAST ')': names like "tmux: server" or
  // "((evil) name)" must parse.
  const auto s = parse_pid_stat(
      "77 (((evil) na me)) R 1 1 1 0 -1 0 0 0 0 0 42 24 0 0 20 0 1 0 0 0 0");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->comm, "((evil) na me)");
  EXPECT_EQ(s->utime, 42u);
  EXPECT_EQ(s->stime, 24u);
}

TEST(PidStat, MalformedRejected) {
  EXPECT_FALSE(parse_pid_stat("").has_value());
  EXPECT_FALSE(parse_pid_stat("1234 no-parens R 0 0").has_value());
  EXPECT_FALSE(parse_pid_stat("x (y) R 1").has_value());       // bad pid
  EXPECT_FALSE(parse_pid_stat("1 (y) R 1 2 3").has_value());   // too short
}

TEST(PidStat, CpuFraction) {
  PidStatSnapshot a, b;
  a.utime = 100;
  a.stime = 50;
  b.utime = 160;   // +60
  b.stime = 90;    // +40 -> 100 jiffies over 2 s at 100 Hz = 50 %
  EXPECT_NEAR(process_cpu_fraction(a, b, 2.0), 0.5, 1e-12);
  // Degenerate inputs.
  EXPECT_EQ(process_cpu_fraction(b, a, 2.0), 0.0);  // counter regression
  EXPECT_EQ(process_cpu_fraction(a, b, 0.0), 0.0);
}

TEST(PidStat, LiveSelfRead) {
  const auto self = read_pid_stat(static_cast<int>(getpid()));
  ASSERT_TRUE(self.has_value());
  EXPECT_EQ(self->pid, static_cast<int>(getpid()));
  EXPECT_FALSE(self->comm.empty());
}

}  // namespace
}  // namespace strato::metrics
