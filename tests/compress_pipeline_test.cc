// BufferPool and ParallelBlockPipeline behaviour: buffer recycling, ordered
// reassembly under out-of-order completion, wire-identity with the serial
// path, and error propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/buffer_pool.h"
#include "compress/framing.h"
#include "compress/lz77.h"
#include "compress/pipeline.h"
#include "compress/registry.h"
#include "core/stream.h"
#include "corpus/generator.h"

namespace strato::compress {
namespace {

// ---------------------------------------------------------------------------
// BufferPool
// ---------------------------------------------------------------------------

TEST(BufferPool, RecyclesReleasedBuffers) {
  common::BufferPool pool(4);
  common::Bytes a = pool.acquire(1024);
  EXPECT_GE(a.capacity(), 1024u);
  EXPECT_EQ(a.size(), 0u);
  const auto* data = a.data();
  pool.release(std::move(a));
  common::Bytes b = pool.acquire(512);  // smaller request: same buffer fits
  EXPECT_EQ(b.data(), data);
  const auto stats = pool.stats();
  EXPECT_EQ(stats.acquires, 2u);
  EXPECT_EQ(stats.reuses, 1u);
}

TEST(BufferPool, DropsWhenFull) {
  common::BufferPool pool(1);
  pool.release(common::Bytes(16));
  pool.release(common::Bytes(16));  // exceeds max_buffers: dropped
  const auto stats = pool.stats();
  EXPECT_EQ(stats.free_buffers, 1u);
  EXPECT_EQ(stats.drops, 1u);
}

TEST(BufferPool, GrowsUndersizedBuffer) {
  common::BufferPool pool(4);
  pool.release(common::Bytes(8));
  common::Bytes big = pool.acquire(4096);
  EXPECT_GE(big.capacity(), 4096u);
  EXPECT_EQ(big.size(), 0u);
}

TEST(BufferPool, PoolLeaseReturnsOnScopeExit) {
  common::BufferPool pool(4);
  {
    common::PoolLease lease(pool, 256);
    lease->push_back(7);
    EXPECT_EQ((*lease)[0], 7);
  }
  EXPECT_EQ(pool.stats().free_buffers, 1u);
  common::Bytes again = pool.acquire(128);
  EXPECT_EQ(pool.stats().reuses, 1u);
  EXPECT_EQ(again.size(), 0u);  // lease contents must not leak through
  pool.release(std::move(again));
}

TEST(BufferPool, SharedSingletonIsUsable) {
  common::Bytes buf = common::BufferPool::shared().acquire(64);
  EXPECT_GE(buf.capacity(), 64u);
  common::BufferPool::shared().release(std::move(buf));
}

// ---------------------------------------------------------------------------
// Pipeline helpers
// ---------------------------------------------------------------------------

/// Wraps FastLz but stalls on odd-first-byte payloads, forcing later even
/// blocks to finish first — out-of-order completion on demand. Keeps the
/// FastLz codec id so standard registries can decode the frames.
class DelayCodec final : public Codec {
 public:
  [[nodiscard]] std::uint8_t id() const override { return inner_.id(); }
  [[nodiscard]] std::string name() const override { return "delay+fastlz"; }
  [[nodiscard]] std::size_t max_compressed_size(std::size_t n) const override {
    return inner_.max_compressed_size(n);
  }
  std::size_t compress(common::ByteSpan src,
                       common::MutableByteSpan dst) const override {
    if (!src.empty() && (src[0] & 1) != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return inner_.compress(src, dst);
  }
  std::size_t decompress(common::ByteSpan src,
                         common::MutableByteSpan dst) const override {
    return inner_.decompress(src, dst);
  }

 private:
  FastLz inner_;
};

/// Always fails: exercises worker-exception propagation.
class ThrowCodec final : public Codec {
 public:
  [[nodiscard]] std::uint8_t id() const override { return kCodecFastLz; }
  [[nodiscard]] std::string name() const override { return "throw"; }
  [[nodiscard]] std::size_t max_compressed_size(std::size_t n) const override {
    return n + 16;
  }
  std::size_t compress(common::ByteSpan, common::MutableByteSpan) const override {
    throw CodecError("throw codec: compress always fails");
  }
  std::size_t decompress(common::ByteSpan, common::MutableByteSpan) const override {
    throw CodecError("throw codec: decompress always fails");
  }
};

/// Collects delivered frames (sink runs on the submitting thread).
struct CollectingSink {
  std::vector<common::Bytes> frames;
  std::vector<int> levels;
  std::vector<std::size_t> raw_sizes;

  ParallelBlockPipeline::FrameSink fn() {
    return [this](common::ByteSpan frame, std::size_t raw_size, int level) {
      frames.emplace_back(frame.begin(), frame.end());
      raw_sizes.push_back(raw_size);
      levels.push_back(level);
    };
  }
};

std::vector<common::Bytes> make_blocks(corpus::Compressibility c,
                                       std::size_t count, std::size_t size) {
  auto gen = corpus::make_generator(c, 42);
  std::vector<common::Bytes> blocks;
  blocks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    blocks.push_back(corpus::take(*gen, size));
  }
  return blocks;
}

// ---------------------------------------------------------------------------
// ParallelBlockPipeline
// ---------------------------------------------------------------------------

TEST(ParallelBlockPipeline, MatchesSerialOutputAcrossConfigurations) {
  const CodecRegistry& registry = CodecRegistry::standard();
  const corpus::Compressibility corpora[] = {
      corpus::Compressibility::kHigh, corpus::Compressibility::kModerate,
      corpus::Compressibility::kLow};
  for (const auto c : corpora) {
    const auto blocks = make_blocks(c, 8, 16 * 1024);
    for (int level = 0; level < static_cast<int>(registry.level_count());
         ++level) {
      // Serial reference frames.
      std::vector<common::Bytes> expected;
      for (const auto& b : blocks) {
        expected.push_back(encode_block(
            *registry.level(static_cast<std::size_t>(level)).codec,
            static_cast<std::uint8_t>(level), b));
      }
      for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                        std::size_t{4}}) {
        for (const std::size_t depth : {std::size_t{0}, std::size_t{1}}) {
          CollectingSink sink;
          ParallelBlockPipeline pipeline(
              registry, PipelineConfig{workers, depth}, sink.fn());
          for (const auto& b : blocks) pipeline.submit(level, b);
          pipeline.flush();
          ASSERT_EQ(sink.frames.size(), blocks.size())
              << "workers=" << workers << " depth=" << depth;
          for (std::size_t i = 0; i < blocks.size(); ++i) {
            EXPECT_EQ(sink.frames[i], expected[i])
                << "corpus=" << corpus::to_string(c) << " level=" << level
                << " workers=" << workers << " depth=" << depth
                << " block=" << i;
            EXPECT_EQ(sink.raw_sizes[i], blocks[i].size());
            EXPECT_EQ(sink.levels[i], level);
          }
          EXPECT_EQ(pipeline.blocks_submitted(), blocks.size());
          EXPECT_EQ(pipeline.blocks_delivered(), blocks.size());
        }
      }
    }
  }
}

TEST(ParallelBlockPipeline, ReordersOutOfOrderCompletions) {
  // Level 1 uses DelayCodec: blocks whose first byte is odd stall 20 ms, so
  // with 4 workers the even blocks finish first; delivery must still be in
  // submission order and decode byte-identically.
  CodecRegistry registry;
  registry.add_level("NO", std::make_unique<NullCodec>());
  registry.add_level("DELAY", std::make_unique<DelayCodec>());

  std::vector<common::Bytes> blocks;
  for (int i = 0; i < 12; ++i) {
    common::Bytes b(2048, static_cast<std::uint8_t>(i));
    for (std::size_t j = 0; j < b.size(); j += 7) {
      b[j] = static_cast<std::uint8_t>(j ^ static_cast<std::size_t>(i));
    }
    b[0] = static_cast<std::uint8_t>(i);  // odd index => slow block
    blocks.push_back(std::move(b));
  }

  CollectingSink sink;
  ParallelBlockPipeline pipeline(
      registry, PipelineConfig{/*worker_count=*/4, /*depth=*/8}, sink.fn());
  for (const auto& b : blocks) pipeline.submit(1, b);
  pipeline.flush();

  ASSERT_EQ(sink.frames.size(), blocks.size());
  // Frames decode (with the *standard* registry — DelayCodec wrote FastLz
  // frames) to the submitted payloads, in submission order.
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(decode_block(sink.frames[i], CodecRegistry::standard()),
              blocks[i])
        << "block " << i;
  }
}

TEST(ParallelBlockPipeline, DepthOneSerializesButStaysCorrect) {
  // depth=1 means at most one block in flight: every submit waits for the
  // previous frame, continuously exhausting and refilling the window.
  const CodecRegistry& registry = CodecRegistry::standard();
  const auto blocks = make_blocks(corpus::Compressibility::kModerate, 6, 4096);
  CollectingSink sink;
  ParallelBlockPipeline pipeline(
      registry, PipelineConfig{/*worker_count=*/2, /*depth=*/1}, sink.fn());
  EXPECT_EQ(pipeline.depth(), 1u);
  for (const auto& b : blocks) pipeline.submit(2, b);
  pipeline.flush();
  ASSERT_EQ(sink.frames.size(), blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(decode_block(sink.frames[i], registry), blocks[i]);
  }
}

TEST(ParallelBlockPipeline, SingleWorkerPreservesOrder) {
  const CodecRegistry& registry = CodecRegistry::standard();
  const auto blocks = make_blocks(corpus::Compressibility::kHigh, 5, 8192);
  CollectingSink sink;
  ParallelBlockPipeline pipeline(registry, PipelineConfig{1, 0}, sink.fn());
  EXPECT_EQ(pipeline.worker_count(), 1u);
  EXPECT_EQ(pipeline.depth(), 2u);  // default 2 * workers
  for (const auto& b : blocks) pipeline.submit(1, b);
  pipeline.flush();
  ASSERT_EQ(sink.frames.size(), blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(decode_block(sink.frames[i], registry), blocks[i]);
  }
}

TEST(ParallelBlockPipeline, MixedLevelsDeliverInSubmissionOrder) {
  const CodecRegistry& registry = CodecRegistry::standard();
  const auto blocks = make_blocks(corpus::Compressibility::kModerate, 8, 4096);
  CollectingSink sink;
  ParallelBlockPipeline pipeline(registry, PipelineConfig{4, 0}, sink.fn());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    pipeline.submit(static_cast<int>(i % registry.level_count()), blocks[i]);
  }
  pipeline.flush();
  ASSERT_EQ(sink.frames.size(), blocks.size());
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    EXPECT_EQ(sink.levels[i], static_cast<int>(i % registry.level_count()));
    const FrameHeader header = parse_header(sink.frames[i]);
    EXPECT_EQ(header.level, i % registry.level_count());
    EXPECT_EQ(decode_block(sink.frames[i], registry), blocks[i]);
  }
}

TEST(ParallelBlockPipeline, LevelOutOfRangeIsClamped) {
  const CodecRegistry& registry = CodecRegistry::standard();
  CollectingSink sink;
  ParallelBlockPipeline pipeline(registry, PipelineConfig{2, 0}, sink.fn());
  const common::Bytes block(1024, 0x5A);
  pipeline.submit(-3, block);
  pipeline.submit(99, block);
  pipeline.flush();
  ASSERT_EQ(sink.levels.size(), 2u);
  EXPECT_EQ(sink.levels[0], 0);
  EXPECT_EQ(sink.levels[1], static_cast<int>(registry.level_count()) - 1);
}

TEST(ParallelBlockPipeline, FlushIsIdempotentAndSafeWhenEmpty) {
  const CodecRegistry& registry = CodecRegistry::standard();
  CollectingSink sink;
  ParallelBlockPipeline pipeline(registry, PipelineConfig{2, 0}, sink.fn());
  pipeline.flush();  // nothing submitted
  EXPECT_TRUE(sink.frames.empty());
  pipeline.submit(1, common::Bytes(512, 0x11));
  pipeline.flush();
  pipeline.flush();
  EXPECT_EQ(sink.frames.size(), 1u);
}

TEST(ParallelBlockPipeline, WorkerExceptionPropagatesToSubmitter) {
  CodecRegistry registry;
  registry.add_level("NO", std::make_unique<NullCodec>());
  registry.add_level("THROW", std::make_unique<ThrowCodec>());
  CollectingSink sink;
  ParallelBlockPipeline pipeline(registry, PipelineConfig{2, 2}, sink.fn());
  const common::Bytes block(256, 0x22);
  EXPECT_THROW(
      {
        pipeline.submit(1, block);
        pipeline.flush();
      },
      CodecError);
  // The pipeline stays usable for good blocks afterwards.
  pipeline.submit(0, block);
  pipeline.flush();
  ASSERT_EQ(sink.frames.size(), 1u);
  EXPECT_EQ(decode_block(sink.frames[0], registry), block);
}

TEST(ParallelBlockPipeline, RecyclesBuffersAcrossBlocks) {
  const CodecRegistry& registry = CodecRegistry::standard();
  CollectingSink sink;
  ParallelBlockPipeline pipeline(registry, PipelineConfig{2, 2}, sink.fn());
  const auto blocks = make_blocks(corpus::Compressibility::kHigh, 32, 4096);
  for (const auto& b : blocks) pipeline.submit(1, b);
  pipeline.flush();
  const auto stats = pipeline.pool_stats();
  // 32 blocks × (raw + frame) acquires; only the first few can miss.
  EXPECT_EQ(stats.acquires, 64u);
  EXPECT_GT(stats.reuses, 48u);
}

// ---------------------------------------------------------------------------
// CompressingWriter integration (worker_count knob)
// ---------------------------------------------------------------------------

/// ByteSink capturing the wire bytes.
struct CaptureSink final : core::ByteSink {
  common::Bytes bytes;
  int flushes = 0;
  void write(common::ByteSpan data) override {
    bytes.insert(bytes.end(), data.begin(), data.end());
  }
  void flush() override { ++flushes; }
};

TEST(CompressingWriterParallel, WireBytesIdenticalToSerial) {
  const CodecRegistry& registry = CodecRegistry::standard();
  common::SteadyClock clock;
  auto gen = corpus::make_generator(corpus::Compressibility::kModerate, 7);
  const common::Bytes data = corpus::take(*gen, 300 * 1024);  // partial tail

  for (int level = 1; level < static_cast<int>(registry.level_count());
       ++level) {
    CaptureSink serial_sink;
    core::StaticPolicy serial_policy(level, "L");
    core::CompressingWriter serial(serial_sink, registry, serial_policy,
                                   clock, 64 * 1024);
    serial.write(data);
    serial.flush();

    CaptureSink parallel_sink;
    core::StaticPolicy parallel_policy(level, "L");
    core::CompressingWriter parallel(parallel_sink, registry, parallel_policy,
                                     clock, 64 * 1024, /*worker_count=*/4);
    parallel.write(data);
    parallel.flush();

    EXPECT_EQ(parallel_sink.bytes, serial_sink.bytes) << "level=" << level;
    EXPECT_EQ(parallel.raw_bytes(), serial.raw_bytes());
    EXPECT_EQ(parallel.framed_bytes(), serial.framed_bytes());
    EXPECT_EQ(parallel.blocks_per_level(), serial.blocks_per_level());

    // And the wire stream decompresses back to the input.
    core::DecompressingReader reader(registry);
    reader.feed(parallel_sink.bytes);
    common::Bytes roundtrip;
    while (auto block = reader.next_block()) {
      roundtrip.insert(roundtrip.end(), block->begin(), block->end());
    }
    EXPECT_EQ(roundtrip, data);
  }
}

TEST(CompressingWriterParallel, FlushEmitsPartialBlockThenSinkFlush) {
  const CodecRegistry& registry = CodecRegistry::standard();
  common::SteadyClock clock;
  CaptureSink sink;
  core::StaticPolicy policy(1, "LIGHT");
  core::CompressingWriter writer(sink, registry, policy, clock, 64 * 1024,
                                 /*worker_count=*/2);
  const common::Bytes small(1000, 0x33);
  writer.write(small);
  EXPECT_TRUE(sink.bytes.empty());  // buffered, not yet a full block
  writer.flush();
  EXPECT_EQ(sink.flushes, 1);
  core::DecompressingReader reader(registry);
  reader.feed(sink.bytes);
  const auto block = reader.next_block();
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(*block, small);
}

}  // namespace
}  // namespace strato::compress
