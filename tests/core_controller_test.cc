// Algorithm 1 unit tests: every branch of the paper's pseudo code plus
// the boundary/clamping policy and the backoff dynamics.
#include <gtest/gtest.h>

#include "core/controller.h"

namespace strato::core {
namespace {

AdaptiveConfig cfg4(double alpha = 0.2) {
  AdaptiveConfig c;
  c.num_levels = 4;
  c.alpha = alpha;
  return c;
}

TEST(Controller, InitialState) {
  AdaptiveController ctl(cfg4());
  EXPECT_EQ(ctl.level(), 0);
  EXPECT_TRUE(ctl.increasing());
  for (int l = 0; l < 4; ++l) EXPECT_EQ(ctl.backoff(l), 0);
}

TEST(Controller, FirstCallProbesUpward) {
  // First call: pdr := cdr, so d = 0 -> "no change" branch; with bck[0]=0
  // the backoff is over immediately (c=1 >= 2^0) and the algorithm
  // optimistically probes the next level (inc starts TRUE).
  AdaptiveController ctl(cfg4());
  const Decision dec = ctl.on_window(100.0);
  EXPECT_EQ(dec.level, 1);
  EXPECT_TRUE(dec.probed);
  EXPECT_FALSE(dec.reverted);
  EXPECT_TRUE(ctl.increasing());
}

TEST(Controller, ImprovementRewardsLevelWithBackoff) {
  AdaptiveController ctl(cfg4());
  ctl.on_window(100.0);           // probe 0 -> 1
  const auto dec = ctl.on_window(200.0);  // rate doubled at level 1
  EXPECT_EQ(dec.level, 1);        // stay
  EXPECT_FALSE(dec.probed);
  EXPECT_EQ(ctl.backoff(1), 1);   // bck[1]++
}

TEST(Controller, DegradationRevertsImmediately) {
  AdaptiveController ctl(cfg4());
  ctl.on_window(100.0);  // 0 -> 1 (inc=true)
  const auto dec = ctl.on_window(50.0);  // worse at level 1
  EXPECT_EQ(dec.level, 0);  // revert
  EXPECT_TRUE(dec.reverted);
  EXPECT_EQ(ctl.backoff(1), 0);  // reset for the degraded level
  EXPECT_FALSE(ctl.increasing());
}

TEST(Controller, DeadBandAbsorbsFluctuations) {
  // alpha = 0.2: changes within +-20 % of pdr are "no change".
  AdaptiveController ctl(cfg4(0.2));
  ctl.on_window(100.0);          // probe to 1, pdr=100
  ctl.on_window(115.0);          // +15 % -> no-change branch; c=1 >= 2^bck[1]=1 -> probes again
  EXPECT_EQ(ctl.level(), 2);
  // Just outside the band counts as improvement.
  AdaptiveController ctl2(cfg4(0.2));
  ctl2.on_window(100.0);
  const auto dec = ctl2.on_window(121.0);  // +21 % > alpha
  EXPECT_EQ(dec.level, 1);                 // improvement -> stay
  EXPECT_EQ(ctl2.backoff(1), 1);
}

TEST(Controller, BackoffDelaysProbesExponentially) {
  // Build bck[1] = 2 via two improvements, then count the stable windows
  // until the next probe: needs c >= 2^2 = 4 calls.
  AdaptiveController ctl(cfg4());
  ctl.on_window(100.0);   // -> level 1
  ctl.on_window(200.0);   // improvement, bck[1]=1, c=0
  ctl.on_window(400.0);   // improvement, bck[1]=2, c=0
  int stable_windows = 0;
  for (;;) {
    const auto dec = ctl.on_window(400.0);  // perfectly stable rate
    ++stable_windows;
    if (dec.probed) break;
    ASSERT_LT(stable_windows, 100);
  }
  EXPECT_EQ(stable_windows, 4);  // 2^bck[1]
}

TEST(Controller, ProbeDirectionFollowsInc) {
  AdaptiveController ctl(cfg4());
  ctl.on_window(100.0);  // 0 -> 1, inc=true
  ctl.on_window(100.0);  // stable, probe up: 1 -> 2
  EXPECT_EQ(ctl.level(), 2);
  ctl.on_window(40.0);   // degradation -> revert to 1, inc=false
  EXPECT_EQ(ctl.level(), 1);
  ctl.on_window(40.0);   // stable (pdr=40), probe DOWN (inc=false): -> 0
  EXPECT_EQ(ctl.level(), 0);
}

TEST(Controller, BoundaryFlipAtBottom) {
  AdaptiveController ctl(cfg4());
  ctl.on_window(100.0);  // -> 1
  ctl.on_window(50.0);   // degrade -> 0, inc=false
  // Stable at level 0: probe would go to -1; the controller flips to +1.
  const auto dec = ctl.on_window(50.0);
  EXPECT_EQ(dec.level, 1);
  EXPECT_TRUE(ctl.increasing());
}

TEST(Controller, BoundaryFlipAtTop) {
  AdaptiveConfig cfg = cfg4();
  AdaptiveController ctl(cfg);
  // Walk to the top with steadily "stable" rates (each probe keeps
  // rate within the dead band, so probing continues upward).
  ctl.on_window(100.0);
  ctl.on_window(100.0);
  ctl.on_window(100.0);
  EXPECT_EQ(ctl.level(), 3);
  const auto dec = ctl.on_window(100.0);  // probe up from top -> flip down
  EXPECT_EQ(dec.level, 2);
  EXPECT_FALSE(ctl.increasing());
}

TEST(Controller, RevertDirectionAtLevelZero) {
  // A degradation at level 0 with inc=false reverts "back up" to level 1
  // (the revert undoes the last change, which was a decrease).
  AdaptiveController ctl(cfg4());
  const auto d1 = ctl.on_window(100.0);  // -> 1
  EXPECT_EQ(d1.level, 1);
  ctl.on_window(30.0);                   // degrade -> 0, inc=false
  ASSERT_EQ(ctl.level(), 0);
  // Improvement then degradation at level 0: revert direction is +1
  // (inc=false), which is a valid level.
  ctl.on_window(100.0);                  // improvement at 0 (bck[0]++)
  const auto d2 = ctl.on_window(10.0);   // degradation at 0
  EXPECT_EQ(d2.level, 1);                // revert flips to the other side
}

TEST(Controller, BackoffDisabledProbesEveryStableWindow) {
  AdaptiveConfig cfg = cfg4();
  cfg.backoff_enabled = false;
  AdaptiveController ctl(cfg);
  ctl.on_window(100.0);  // -> 1
  ctl.on_window(200.0);  // improvement: no backoff recorded
  EXPECT_EQ(ctl.backoff(1), 0);
  const auto dec = ctl.on_window(200.0);  // stable -> probes immediately
  EXPECT_TRUE(dec.probed);
}

TEST(Controller, SingleLevelLadderNeverMoves) {
  AdaptiveConfig cfg;
  cfg.num_levels = 1;
  AdaptiveController ctl(cfg);
  for (double r : {100.0, 200.0, 50.0, 50.0, 500.0}) {
    EXPECT_EQ(ctl.on_window(r).level, 0);
  }
}

TEST(Controller, ZeroRateWindowsAreHandled) {
  AdaptiveController ctl(cfg4());
  EXPECT_NO_THROW(ctl.on_window(0.0));
  EXPECT_NO_THROW(ctl.on_window(0.0));
  EXPECT_NO_THROW(ctl.on_window(100.0));  // recovery = improvement
  EXPECT_GE(ctl.level(), 0);
  EXPECT_LT(ctl.level(), 4);
}

TEST(Controller, LevelAlwaysInRangeUnderRandomRates) {
  // Property: for any rate sequence the returned level is a valid rung.
  AdaptiveController ctl(cfg4());
  std::uint64_t state = 88172645463325252ULL;
  for (int i = 0; i < 20000; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    const double rate = static_cast<double>(state % 1000000);
    const auto dec = ctl.on_window(rate);
    ASSERT_GE(dec.level, 0);
    ASSERT_LT(dec.level, 4);
    ASSERT_EQ(dec.level, ctl.level());
  }
}

TEST(Controller, BackoffExponentIsCapped) {
  AdaptiveConfig cfg = cfg4();
  cfg.max_backoff_exponent = 3;
  AdaptiveController ctl(cfg);
  ctl.on_window(100.0);  // -> 1
  double rate = 100.0;
  for (int i = 0; i < 50; ++i) {
    rate *= 1.5;  // perpetual improvement
    ctl.on_window(rate);
  }
  EXPECT_LE(ctl.backoff(1), 3);
}

TEST(Controller, ResetRestoresInitialState) {
  AdaptiveController ctl(cfg4());
  ctl.on_window(100.0);
  ctl.on_window(200.0);
  ctl.reset();
  EXPECT_EQ(ctl.level(), 0);
  EXPECT_TRUE(ctl.increasing());
  EXPECT_EQ(ctl.backoff(1), 0);
  // Behaves like a fresh controller.
  EXPECT_EQ(ctl.on_window(100.0).level, 1);
}

TEST(Controller, WindowCounterResetsOnEveryBranchExit) {
  AdaptiveController ctl(cfg4());
  ctl.on_window(100.0);  // probe resets c
  EXPECT_EQ(ctl.window_count(), 0);
  ctl.on_window(300.0);  // improvement resets c
  EXPECT_EQ(ctl.window_count(), 0);
  ctl.on_window(10.0);   // degradation resets c
  EXPECT_EQ(ctl.window_count(), 0);
}

TEST(Controller, PaperTraceSettlesAndAlternatesProbes) {
  // Reproduce the Fig. 4 behaviour qualitatively with a synthetic rate
  // function: level 1 is optimal (rate 200), level 0 and 2 are worse
  // (100, 120), level 3 much worse. The controller must settle on 1 and
  // spend the vast majority of windows there.
  const auto rate_at = [](int level) {
    switch (level) {
      case 0: return 100.0;
      case 1: return 200.0;
      case 2: return 120.0;
      default: return 20.0;
    }
  };
  AdaptiveController ctl(cfg4());
  int at_best = 0;
  int level = 0;
  for (int w = 0; w < 400; ++w) {
    level = ctl.on_window(rate_at(level)).level;
    if (level == 1) ++at_best;
  }
  EXPECT_GT(at_best, 320);  // > 80 % of windows at the best level
  // Backoff for the settled level must have grown meaningfully.
  EXPECT_GE(ctl.backoff(1), 3);
}

}  // namespace
}  // namespace strato::core
