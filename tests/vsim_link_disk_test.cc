// Shared-link fair-share / fluctuation models and the disk cache model.
#include <gtest/gtest.h>

#include "common/stats.h"
#include "vsim/disk.h"
#include "vsim/link.h"

namespace strato::vsim {
namespace {

using common::SimTime;

TEST(Fluctuation, GaussianStaysNearOne) {
  FluctuationParams p;
  p.kind = FluctuationKind::kGaussian;
  p.sigma = 0.03;
  FluctuationProcess proc(p, 1);
  common::RunningStats s;
  for (int i = 0; i < 2000; ++i) {
    s.add(proc.factor(SimTime::ms(100 * i)));
  }
  EXPECT_NEAR(s.mean(), 1.0, 0.02);
  EXPECT_GT(s.min(), 0.3);
  EXPECT_LT(s.max(), 1.16);
}

TEST(Fluctuation, TwoStateSwingsWildly) {
  FluctuationParams p;
  p.kind = FluctuationKind::kTwoState;
  p.degraded_floor = 0.03;
  p.degraded_ceil = 0.45;
  p.mean_dwell_ms = 30.0;
  p.degraded_prob = 0.35;
  FluctuationProcess proc(p, 2);
  common::Sample s;
  for (int i = 0; i < 20000; ++i) {
    s.add(proc.factor(SimTime::ms(5 * i)));
  }
  // Big spread: some samples near full rate, some far below half.
  EXPECT_GT(s.quantile(0.9), 0.9);
  EXPECT_LT(s.quantile(0.1), 0.5);
  EXPECT_GT(s.stddev(), 0.2);
}

TEST(Fluctuation, DeterministicPerSeed) {
  FluctuationParams p;
  FluctuationProcess a(p, 42), b(p, 42), c(p, 43);
  double same = 0, diff = 0;
  for (int i = 0; i < 100; ++i) {
    const auto t = SimTime::ms(100 * i);
    const double fa = a.factor(t);
    if (fa == b.factor(t)) same += 1;
    if (fa != c.factor(t)) diff += 1;
  }
  EXPECT_EQ(same, 100);
  EXPECT_GT(diff, 90);
}

TEST(SharedLink, FairShareFormula) {
  const VirtProfile& p = profile(VirtTech::kKvmPara);
  // Zero background flows: the job flow gets the whole (fluctuating) link.
  SharedLink solo(p, 0, 5);
  const double r0 = solo.fg_rate(SimTime());
  EXPECT_NEAR(r0, p.net_bytes_s, 0.15 * p.net_bytes_s);
  // k background flows with weight 0.65.
  for (int k = 1; k <= 3; ++k) {
    SharedLink shared(p, k, 5);
    const double rk = shared.fg_rate(SimTime());
    EXPECT_NEAR(rk * (1.0 + 0.65 * k), r0, 1e-6) << "k=" << k;
  }
}

TEST(SharedLink, BackgroundFlowsCanChangeMidRun) {
  SharedLink link(profile(VirtTech::kNative), 0, 1);
  const double before = link.fg_rate(SimTime::seconds(1));
  link.set_bg_flows(3);
  const double after = link.fg_rate(SimTime::seconds(1.001));
  EXPECT_LT(after, before);
  EXPECT_EQ(link.bg_flows(), 3);
}

TEST(SharedLink, CustomWeight) {
  SharedLink link(profile(VirtTech::kNative), 2, 1, /*bg_weight=*/1.0);
  const double cap = link.capacity(SimTime());
  EXPECT_NEAR(link.fg_rate(SimTime()), cap / 3.0, 1e-9);
}

// --- disk ---------------------------------------------------------------------

TEST(Disk, PlainDiskWritesAtNominalRate) {
  const VirtProfile& p = profile(VirtTech::kNative);
  Disk disk(p, 3);
  const auto dur = disk.write(92'000'000, SimTime());
  EXPECT_NEAR(dur.to_seconds(), 1.0, 0.2);
  EXPECT_EQ(disk.dirty_bytes(), 0.0);
}

TEST(Disk, ReadsAtReadRate) {
  const VirtProfile& p = profile(VirtTech::kNative);
  Disk disk(p, 3);
  const auto dur = disk.read(105'000'000, SimTime());
  EXPECT_NEAR(dur.to_seconds(), 1.0, 0.2);
}

TEST(Disk, XenCacheAbsorbsThenStalls) {
  const VirtProfile& p = profile(VirtTech::kXenPara);
  Disk disk(p, 4);
  SimTime now;
  common::Sample rates;
  const std::uint64_t chunk = 20'000'000;  // the paper's 20 MB timestamps
  for (std::uint64_t written = 0; written < 6'000'000'000ULL;
       written += chunk) {
    const SimTime dur = disk.write(chunk, now);
    now += dur;
    rates.add(static_cast<double>(chunk) / dur.to_seconds() / 1e6);  // MB/s
  }
  // Bimodal: cache-speed samples far above the physical disk and flush
  // samples collapsing to a few MB/s.
  EXPECT_GT(rates.max(), 300.0);
  EXPECT_LT(rates.min(), 10.0);
  // The spuriously high mean the paper calls out: above the physical disk.
  EXPECT_GT(rates.mean(), p.disk_write_bytes_s / 1e6);
  // And data is still dirty in the host cache at the end.
  EXPECT_GT(disk.dirty_bytes(), 0.0);
}

TEST(Disk, NonCachedProfilesNeverGoDirty) {
  for (const auto t :
       {VirtTech::kNative, VirtTech::kKvmFull, VirtTech::kKvmPara,
        VirtTech::kEc2}) {
    Disk disk(profile(t), 5);
    SimTime now;
    for (int i = 0; i < 100; ++i) {
      now += disk.write(20'000'000, now);
    }
    EXPECT_EQ(disk.dirty_bytes(), 0.0) << to_string(t);
  }
}

}  // namespace
}  // namespace strato::vsim
