// Transfer-experiment invariants: the Table II shapes, the paper's
// headline claims, determinism and bookkeeping.
#include <gtest/gtest.h>

#include "expkit/paper_data.h"
#include "expkit/policies.h"
#include "vsim/transfer.h"

namespace strato::vsim {
namespace {

/// Small-scale config (2 GB) for fast tests; shapes are scale-free.
TransferConfig small(corpus::Compressibility data, int bg) {
  TransferConfig cfg;
  cfg.data = data;
  cfg.bg_flows = bg;
  cfg.total_bytes = 2'000'000'000ULL;
  cfg.seed = 11;
  return cfg;
}

double run_policy(const TransferConfig& cfg, const std::string& name) {
  TransferExperiment exp(cfg);
  const auto policy = expkit::make_policy(name, exp);
  return exp.run(*policy).completion_s;
}

TEST(Transfer, CompletionMatchesLinkRateWithoutCompression) {
  const auto cfg = small(corpus::Compressibility::kModerate, 0);
  const double secs = run_policy(cfg, "NO");
  // ~2 GB over ~87.5 MB/s (KVM paravirt profile) ≈ 23 s.
  EXPECT_NEAR(secs, 23.0, 4.0);
}

TEST(Transfer, ContentionFollowsCalibratedWeights) {
  // NO-compression completion times must scale like 1 + 0.65 k — the
  // calibration that reproduces the paper's 569/908/1393/1642 column.
  const double base =
      run_policy(small(corpus::Compressibility::kHigh, 0), "NO");
  for (int k = 1; k <= 3; ++k) {
    const double with_k =
        run_policy(small(corpus::Compressibility::kHigh, k), "NO");
    EXPECT_NEAR(with_k / base, 1.0 + 0.65 * k, 0.12 * (1.0 + 0.65 * k))
        << "k=" << k;
  }
}

TEST(Transfer, LightWinsOnHighCompressibility) {
  const auto cfg = small(corpus::Compressibility::kHigh, 0);
  const double no = run_policy(cfg, "NO");
  const double light = run_policy(cfg, "LIGHT");
  EXPECT_LT(light, no / 2.0);  // compression pays off big (paper: 2.3-4.6x)
}

TEST(Transfer, HeavyLosesEverywhereOnFastLinks) {
  for (const auto c :
       {corpus::Compressibility::kHigh, corpus::Compressibility::kModerate,
        corpus::Compressibility::kLow}) {
    const auto cfg = small(c, 0);
    EXPECT_GT(run_policy(cfg, "HEAVY"), run_policy(cfg, "NO"))
        << corpus::to_string(c);
  }
}

TEST(Transfer, CompressionCannotHelpIncompressibleData) {
  const auto cfg = small(corpus::Compressibility::kLow, 0);
  const double no = run_policy(cfg, "NO");
  for (const char* p : {"LIGHT", "MEDIUM", "HEAVY"}) {
    EXPECT_GT(run_policy(cfg, p), no * 0.95) << p;
  }
}

class DynamicBound
    : public ::testing::TestWithParam<
          std::tuple<corpus::Compressibility, int>> {};

TEST_P(DynamicBound, WithinPaperBoundOfBestStatic) {
  // The paper's headline: DYNAMIC completion times were at most 22 %
  // worse than the fastest static level. At the reduced 2 GB test scale
  // the initial probing phase weighs ~25x more than at 50 GB, so we test
  // a relaxed 40 % bound here; the full-scale Table II bench checks the
  // paper's 22 %.
  const auto [data, bg] = GetParam();
  const auto cfg = small(data, bg);
  double best = 1e18;
  for (const char* p : {"NO", "LIGHT", "MEDIUM", "HEAVY"}) {
    best = std::min(best, run_policy(cfg, p));
  }
  const double dynamic = run_policy(cfg, "DYNAMIC");
  EXPECT_LE(dynamic, best * 1.40)
      << corpus::to_string(data) << " bg=" << bg;
}

INSTANTIATE_TEST_SUITE_P(
    Cells, DynamicBound,
    ::testing::Combine(::testing::Values(corpus::Compressibility::kHigh,
                                         corpus::Compressibility::kModerate,
                                         corpus::Compressibility::kLow),
                       ::testing::Values(0, 2)));

TEST(Transfer, DynamicBeatsNoCompressionByLargeFactorUnderContention) {
  // "improved the overall application throughput up to a factor of 4".
  const auto cfg = small(corpus::Compressibility::kHigh, 3);
  const double no = run_policy(cfg, "NO");
  const double dyn = run_policy(cfg, "DYNAMIC");
  EXPECT_GT(no / dyn, 3.0);
}

TEST(Transfer, DeterministicForSameSeed) {
  const auto cfg = small(corpus::Compressibility::kModerate, 1);
  EXPECT_DOUBLE_EQ(run_policy(cfg, "DYNAMIC"), run_policy(cfg, "DYNAMIC"));
  auto cfg2 = cfg;
  cfg2.seed = 12;
  EXPECT_NE(run_policy(cfg, "DYNAMIC"), run_policy(cfg2, "DYNAMIC"));
}

TEST(Transfer, BookkeepingIsConsistent) {
  auto cfg = small(corpus::Compressibility::kHigh, 0);
  TransferExperiment exp(cfg);
  const auto policy = expkit::make_policy("DYNAMIC", exp);
  const auto res = exp.run(*policy);
  EXPECT_EQ(res.raw_bytes, cfg.total_bytes);
  EXPECT_GT(res.wire_bytes, 0u);
  EXPECT_LT(res.wire_bytes, res.raw_bytes);  // HIGH data compresses
  std::uint64_t blocks = 0;
  for (const auto b : res.blocks_per_level) blocks += b;
  const std::uint64_t expected_blocks =
      (cfg.total_bytes + cfg.block_size - 1) / cfg.block_size;
  EXPECT_EQ(blocks, expected_blocks);
  EXPECT_GT(res.mean_host_cpu_busy, 0.0);
  EXPECT_GT(res.mean_vm_cpu_busy, 0.0);
}

TEST(Transfer, VmCpuDisplayIsBelowHostTruth) {
  // KVM paravirt hides most I/O cost from the guest.
  auto cfg = small(corpus::Compressibility::kLow, 0);
  TransferExperiment exp(cfg);
  const auto policy = expkit::make_policy("NO", exp);
  const auto res = exp.run(*policy);
  EXPECT_LT(res.mean_vm_cpu_busy, res.mean_host_cpu_busy * 0.5);
}

TEST(Transfer, TimelineSeriesWhenRequested) {
  auto cfg = small(corpus::Compressibility::kHigh, 0);
  cfg.total_bytes = 500'000'000ULL;
  cfg.record_timeline = true;
  TransferExperiment exp(cfg);
  const auto policy = expkit::make_policy("DYNAMIC", exp);
  const auto res = exp.run(*policy);
  for (const char* s :
       {"app_mbit_s", "net_mbit_s", "level", "cpu_busy_vm", "cpu_busy_host"}) {
    EXPECT_TRUE(res.timeline.has(s)) << s;
    EXPECT_GT(res.timeline.series(s).size(), 0u) << s;
  }
}

TEST(Transfer, SegmentedWorkloadSwitchesCompressibility) {
  // Fig. 6 workload: HIGH <-> LOW; the adaptive policy must compress
  // during HIGH segments (wire << raw in those segments) and mostly not
  // during LOW. Net effect: wire bytes land strictly between the two
  // pure cases.
  TransferConfig cfg;
  cfg.data = corpus::Compressibility::kHigh;
  cfg.data_b = corpus::Compressibility::kLow;
  cfg.segment_bytes = 200'000'000ULL;
  cfg.total_bytes = 1'000'000'000ULL;
  TransferExperiment exp(cfg);
  const auto policy = expkit::make_policy("DYNAMIC", exp);
  const auto res = exp.run(*policy);
  EXPECT_LT(res.wire_bytes, cfg.total_bytes * 0.9);
  EXPECT_GT(res.wire_bytes, cfg.total_bytes * 0.3);
}

TEST(Transfer, RepeatedRunsReportSpread) {
  auto cfg = small(corpus::Compressibility::kModerate, 2);
  cfg.total_bytes = 500'000'000ULL;
  const auto rep = run_repeated(cfg, 4, [](TransferExperiment& exp) {
    return expkit::make_policy("NO", exp);
  });
  EXPECT_GT(rep.mean_s, 0.0);
  EXPECT_GE(rep.sd_s, 0.0);
  EXPECT_LT(rep.sd_s, rep.mean_s * 0.2);
}

TEST(Transfer, MetricBaselineRunsEndToEnd) {
  auto cfg = small(corpus::Compressibility::kHigh, 0);
  cfg.total_bytes = 500'000'000ULL;
  TransferExperiment exp(cfg);
  const auto policy = expkit::make_policy("METRIC", exp);
  const auto res = exp.run(*policy);
  EXPECT_GT(res.completion_s, 0.0);
}

TEST(Transfer, CodecSpeedFactorSlowsCompression) {
  auto cfg = small(corpus::Compressibility::kHigh, 0);
  cfg.total_bytes = 500'000'000ULL;
  const double fast = run_policy(cfg, "HEAVY");
  cfg.codec_speed_factor = 0.4;
  const double slow = run_policy(cfg, "HEAVY");
  EXPECT_GT(slow, fast * 2.0);
}

}  // namespace
}  // namespace strato::vsim
