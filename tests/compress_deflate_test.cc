// Bit streams, canonical length-limited Huffman, and the DeflateLz codec.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "compress/bitstream.h"
#include "compress/deflate_lz.h"
#include "compress/framing.h"
#include "compress/huffman.h"
#include "compress/lz77.h"
#include "compress/registry.h"
#include "corpus/generator.h"

namespace strato::compress {
namespace {

// --- bit stream ---------------------------------------------------------------

TEST(BitStream, RoundTripVariousWidths) {
  common::Bytes buf;
  BitWriter bw(buf);
  common::Xoshiro256 rng(1);
  std::vector<std::pair<std::uint32_t, int>> values;
  for (int i = 0; i < 10000; ++i) {
    const int nbits = 1 + static_cast<int>(rng.below(24));
    const auto v = static_cast<std::uint32_t>(rng()) &
                   ((1u << nbits) - 1u);
    values.emplace_back(v, nbits);
    bw.write(v, nbits);
  }
  bw.finish();
  BitReader br(buf);
  for (const auto& [v, nbits] : values) {
    ASSERT_EQ(br.read(nbits), v);
  }
}

TEST(BitStream, PeekSkipEquivalence) {
  common::Bytes buf;
  BitWriter bw(buf);
  bw.write(0b1011, 4);
  bw.write(0b110, 3);
  bw.finish();
  BitReader br(buf);
  EXPECT_EQ(br.peek(4), 0b1011u);
  br.skip(4);
  EXPECT_EQ(br.read(3), 0b110u);
}

TEST(BitStream, ReadPastEndYieldsZeros) {
  common::Bytes buf = {0xFF};
  BitReader br(buf);
  EXPECT_EQ(br.read(8), 0xFFu);
  EXPECT_EQ(br.read(8), 0u);  // padding
}

TEST(BitStream, PartialFinalByteZeroPadded) {
  common::Bytes buf;
  BitWriter bw(buf);
  bw.write(0b1, 1);
  bw.finish();
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0], 0b1);
}

// --- Huffman ------------------------------------------------------------------

TEST(Huffman, LengthsSatisfyKraft) {
  common::Xoshiro256 rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint64_t> freqs(64);
    for (auto& f : freqs) f = rng.below(1000);
    const auto lengths = huffman_code_lengths(freqs);
    double kraft = 0.0;
    for (std::size_t s = 0; s < freqs.size(); ++s) {
      if (freqs[s] > 0) {
        ASSERT_GE(lengths[s], 1);
        ASSERT_LE(lengths[s], kMaxHuffmanBits);
        kraft += std::pow(0.5, lengths[s]);
      } else {
        ASSERT_EQ(lengths[s], 0);
      }
    }
    EXPECT_LE(kraft, 1.0 + 1e-12);
  }
}

TEST(Huffman, DegenerateAlphabets) {
  EXPECT_TRUE(huffman_code_lengths({}).empty());
  const auto zero = huffman_code_lengths({0, 0, 0});
  EXPECT_EQ(zero, (std::vector<std::uint8_t>{0, 0, 0}));
  const auto one = huffman_code_lengths({0, 7, 0});
  EXPECT_EQ(one, (std::vector<std::uint8_t>{0, 1, 0}));
  const auto two = huffman_code_lengths({3, 9});
  EXPECT_EQ(two, (std::vector<std::uint8_t>{1, 1}));
}

TEST(Huffman, FrequentSymbolsGetShorterCodes) {
  std::vector<std::uint64_t> freqs = {1000, 500, 100, 10, 1};
  const auto lengths = huffman_code_lengths(freqs);
  for (std::size_t i = 1; i < freqs.size(); ++i) {
    EXPECT_GE(lengths[i], lengths[i - 1]);
  }
}

TEST(Huffman, LengthLimitHoldsOnPathologicalFrequencies) {
  // Fibonacci-like frequencies force deep unbounded trees; the repair
  // must cap at kMaxHuffmanBits while keeping the code valid.
  std::vector<std::uint64_t> freqs;
  std::uint64_t a = 1, b = 1;
  for (int i = 0; i < 30; ++i) {
    freqs.push_back(a);
    const auto next = a + b;
    a = b;
    b = next;
  }
  const auto lengths = huffman_code_lengths(freqs);
  std::uint64_t kraft = 0;
  for (const auto l : lengths) {
    ASSERT_GE(l, 1);
    ASSERT_LE(l, kMaxHuffmanBits);
    kraft += (1u << kMaxHuffmanBits) >> l;
  }
  EXPECT_LE(kraft, 1u << kMaxHuffmanBits);
}

TEST(Huffman, EncoderDecoderRoundTrip) {
  common::Xoshiro256 rng(3);
  std::vector<std::uint64_t> freqs(300);
  for (auto& f : freqs) f = rng.below(5000);
  freqs[7] = 100000;  // strong skew
  const auto lengths = huffman_code_lengths(freqs);
  const HuffmanEncoder enc(lengths);
  const HuffmanDecoder dec(lengths);

  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 50000; ++i) {
    std::uint32_t s;
    do {
      s = static_cast<std::uint32_t>(rng.below(freqs.size()));
    } while (freqs[s] == 0);
    symbols.push_back(s);
  }
  common::Bytes buf;
  BitWriter bw(buf);
  for (const auto s : symbols) enc.encode(bw, s);
  bw.finish();
  BitReader br(buf);
  for (const auto s : symbols) ASSERT_EQ(dec.decode(br), s);
}

TEST(Huffman, CompressionApproachesEntropy) {
  // 90/10 two-symbol source: H = 0.469 bits; Huffman can only reach
  // 1 bit/symbol with a 2-symbol alphabet, so group into pairs -> 4
  // symbols, H = 0.94 bits/pair, Huffman ~1.1-1.3 bits/pair.
  common::Xoshiro256 rng(4);
  std::vector<std::uint64_t> freqs(4);
  std::vector<std::uint32_t> symbols;
  for (int i = 0; i < 100000; ++i) {
    const std::uint32_t s = (rng.uniform() < 0.9 ? 0 : 1) * 2 +
                            (rng.uniform() < 0.9 ? 0 : 1);
    ++freqs[s];
    symbols.push_back(s);
  }
  const auto lengths = huffman_code_lengths(freqs);
  const HuffmanEncoder enc(lengths);
  common::Bytes buf;
  BitWriter bw(buf);
  for (const auto s : symbols) enc.encode(bw, s);
  bw.finish();
  const double bits_per_symbol =
      static_cast<double>(buf.size()) * 8.0 / 100000.0;
  EXPECT_LT(bits_per_symbol, 1.35);
  EXPECT_GT(bits_per_symbol, 0.90);  // cannot beat entropy
}

TEST(Huffman, DecoderRejectsOversubscribedCode) {
  std::vector<std::uint8_t> bad = {1, 1, 1};  // Kraft sum 1.5
  EXPECT_THROW(HuffmanDecoder dec(bad), CodecError);
  std::vector<std::uint8_t> too_long = {16, 1};
  EXPECT_THROW(HuffmanDecoder dec2(too_long), CodecError);
}

// --- DeflateLz ------------------------------------------------------------------

common::Bytes roundtrip(const Codec& codec, common::ByteSpan src) {
  common::Bytes comp(codec.max_compressed_size(src.size()));
  comp.resize(codec.compress(src, comp));
  common::Bytes back(src.size());
  codec.decompress(comp, back);
  return back;
}

TEST(DeflateLz, EmptyAndTiny) {
  DeflateLz codec;
  for (std::size_t n : {0u, 1u, 3u, 17u, 200u}) {
    common::Bytes data(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = static_cast<std::uint8_t>(i * 7 + 3);
    }
    EXPECT_EQ(roundtrip(codec, data), data) << n;
  }
}

class DeflateSeeded : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeflateSeeded, CorpusRoundTrips) {
  DeflateLz codec;
  for (const auto c :
       {corpus::Compressibility::kHigh, corpus::Compressibility::kModerate,
        corpus::Compressibility::kLow}) {
    auto gen = corpus::make_generator(c, GetParam());
    const auto data = corpus::take(*gen, 250000);
    EXPECT_EQ(roundtrip(codec, data), data) << corpus::to_string(c);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeflateSeeded, ::testing::Values(1, 2, 3, 4));

TEST(DeflateLz, RatioSitsBetweenMediumAndHeavy) {
  DeflateLz deflate;
  MediumLz medium;
  auto gen = corpus::make_generator(corpus::Compressibility::kModerate, 5);
  const auto data = corpus::take(*gen, 1 << 20);
  EXPECT_LT(deflate.compress(data).size(), medium.compress(data).size());
}

TEST(DeflateLz, StoredFallbackBoundsExpansion) {
  DeflateLz codec;
  common::Xoshiro256 rng(6);
  common::Bytes data(50000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  const auto comp = codec.compress(data);
  EXPECT_LE(comp.size(), data.size() + 1);
  EXPECT_EQ(codec.decompress(comp, data.size()), data);
}

TEST(DeflateLz, MalformedInputRejected) {
  DeflateLz codec;
  common::Bytes out(100);
  EXPECT_THROW(codec.decompress({}, out), CodecError);
  const common::Bytes bad = {9, 0, 0, 0};
  EXPECT_THROW(codec.decompress(bad, out), CodecError);
  const common::Bytes stored_short = {1, 'x'};
  EXPECT_THROW(codec.decompress(stored_short, out), CodecError);
}

TEST(DeflateLz, CorruptionNeverCrashes) {
  DeflateLz codec;
  auto gen = corpus::make_generator(corpus::Compressibility::kModerate, 7);
  const auto data = corpus::take(*gen, 60000);
  auto comp = codec.compress(data);
  common::Xoshiro256 rng(8);
  for (int trial = 0; trial < 40; ++trial) {
    auto bad = comp;
    bad[rng.below(bad.size())] ^=
        static_cast<std::uint8_t>(1 + rng.below(255));
    common::Bytes out(data.size());
    try {
      codec.decompress(bad, out);
    } catch (const CodecError&) {
      // structural detection is fine; silent wrong output is caught by
      // the frame checksum one layer up
    }
  }
  SUCCEED();
}

TEST(ExtendedRegistry, FiveOrderedRungs) {
  const auto& reg = CodecRegistry::extended();
  ASSERT_EQ(reg.level_count(), 5u);
  EXPECT_EQ(reg.level(3).label, "DEFLATE");
  EXPECT_EQ(reg.codec_by_id(kCodecDeflateLz).name(), "deflatelz");
  // Ratio must improve monotonically up the ladder on compressible data.
  auto gen = corpus::make_generator(corpus::Compressibility::kModerate, 9);
  const auto data = corpus::take(*gen, 1 << 20);
  std::size_t prev = data.size() + 1;
  for (std::size_t l = 0; l < reg.level_count(); ++l) {
    const auto size = reg.level(l).codec->compress(data).size();
    EXPECT_LT(size, prev) << reg.level(l).label;
    prev = size;
  }
}

TEST(ExtendedRegistry, FramedBlocksInterop) {
  // Frames written against the extended registry decode with it, and
  // frames using only the standard codecs decode with either registry.
  auto gen = corpus::make_generator(corpus::Compressibility::kHigh, 10);
  const auto data = corpus::take(*gen, 100000);
  const auto& ext = CodecRegistry::extended();
  const auto frame = encode_block(*ext.level(3).codec, 3, data);
  EXPECT_EQ(decode_block(frame, ext), data);
  EXPECT_THROW(decode_block(frame, CodecRegistry::standard()), CodecError);
}

}  // namespace
}  // namespace strato::compress
