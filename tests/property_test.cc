// Cross-cutting property tests: differential codec checks, adversarial
// inputs, and controller trace invariants.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/framing.h"
#include "compress/registry.h"
#include "compress/streaming.h"
#include "core/controller.h"
#include "corpus/generator.h"
#include "verify/seed.h"

namespace strato {
namespace {

/// Seed for one parameterized case: the suite's Range index XORed with an
/// env-overridable base, so `STRATO_PROPERTY_SEED=N ctest -R property`
/// replays (or re-randomizes) every case. Announced once per process.
std::uint64_t property_seed(std::uint64_t param) {
  static const std::uint64_t base = verify::announce_seed(
      "STRATO_PROPERTY_SEED", verify::seed_from_env("STRATO_PROPERTY_SEED", 0));
  return base ^ param;
}

/// Adversarial byte-string generator: runs, copies, noise, structure.
common::Bytes adversarial(common::Xoshiro256& rng, std::size_t target) {
  common::Bytes data;
  while (data.size() < target) {
    switch (rng.below(5)) {
      case 0:
        data.insert(data.end(), 1 + rng.below(900),
                    static_cast<std::uint8_t>(rng()));
        break;
      case 1: {
        const std::size_t n = 1 + rng.below(400);
        for (std::size_t i = 0; i < n; ++i) {
          data.push_back(static_cast<std::uint8_t>(rng()));
        }
        break;
      }
      case 2: {
        if (data.empty()) break;
        const std::size_t start = rng.below(data.size());
        const std::size_t n =
            std::min<std::size_t>(1 + rng.below(1200), data.size() - start);
        for (std::size_t i = 0; i < n; ++i) data.push_back(data[start + i]);
        break;
      }
      case 3: {  // ascending ramp (no repeats, byte-wise structure)
        const std::size_t n = 1 + rng.below(300);
        for (std::size_t i = 0; i < n; ++i) {
          data.push_back(static_cast<std::uint8_t>(i));
        }
        break;
      }
      default:
        data.push_back(static_cast<std::uint8_t>(rng()));
    }
  }
  data.resize(target);
  return data;
}

class DifferentialCodecs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialCodecs, EveryCodecRoundTripsEveryInput) {
  const std::uint64_t seed = property_seed(GetParam());
  SCOPED_TRACE("seed=" + std::to_string(seed));
  common::Xoshiro256 rng(seed);
  const auto data = adversarial(rng, 1 + rng.below(200000));
  const auto& reg = compress::CodecRegistry::extended();
  for (std::size_t l = 0; l < reg.level_count(); ++l) {
    const auto& codec = *reg.level(l).codec;
    const auto comp = codec.compress(data);
    ASSERT_LE(comp.size(), codec.max_compressed_size(data.size()))
        << reg.level(l).label;
    ASSERT_EQ(codec.decompress(comp, data.size()), data)
        << reg.level(l).label;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialCodecs,
                         ::testing::Range<std::uint64_t>(1, 26));

class GarbageDecompression : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GarbageDecompression, NeverCrashesOnRandomInput) {
  // Feeding arbitrary bytes to any decompressor must either throw
  // CodecError or produce *some* output — never crash, hang, or scribble.
  const std::uint64_t seed = property_seed(GetParam());
  SCOPED_TRACE("seed=" + std::to_string(seed));
  common::Xoshiro256 rng(seed);
  const auto& reg = compress::CodecRegistry::extended();
  for (int trial = 0; trial < 20; ++trial) {
    common::Bytes garbage(1 + rng.below(5000));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    common::Bytes out(1 + rng.below(20000));
    for (std::size_t l = 1; l < reg.level_count(); ++l) {
      try {
        reg.level(l).codec->decompress(garbage, out);
      } catch (const compress::CodecError&) {
        // expected most of the time
      }
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GarbageDecompression,
                         ::testing::Range<std::uint64_t>(1, 6));

TEST(StreamingEquivalence, FirstBlockMatchesIndependentCompression) {
  // With no history, the streaming compressor must produce exactly the
  // independent encoder's output.
  common::Xoshiro256 rng(3);
  const auto data = adversarial(rng, 60000);
  compress::StreamingLzCompressor streaming;
  const auto a = streaming.compress_block(data);
  common::Bytes b(compress::lz77_max_compressed_size(data.size()));
  b.resize(compress::lz77_compress(data, b, compress::Lz77Params{}));
  EXPECT_EQ(a, b);
}

TEST(FrameFuzz, GarbageStreamsAreRejectedNotMisparsed) {
  common::Xoshiro256 rng(property_seed(11));
  const auto& reg = compress::CodecRegistry::standard();
  for (int trial = 0; trial < 50; ++trial) {
    compress::FrameAssembler assembler(reg);
    common::Bytes garbage(compress::kFrameHeaderSize + rng.below(2000));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    assembler.feed(garbage);
    try {
      while (assembler.next_block()) {
      }
    } catch (const compress::CodecError&) {
      continue;
    }
    // No exception means the random bytes never formed a complete header
    // + payload — also fine.
  }
  SUCCEED();
}

// --- controller trace invariants ----------------------------------------------

TEST(ControllerInvariants, HoldUnderRandomRateWalks) {
  common::Xoshiro256 rng(21);
  for (int walk = 0; walk < 20; ++walk) {
    core::AdaptiveConfig cfg;
    cfg.num_levels = 2 + static_cast<int>(rng.below(5));
    cfg.alpha = rng.uniform(0.05, 0.4);
    core::AdaptiveController ctl(cfg);
    int prev_level = 0;
    double rate = 1e6;
    for (int w = 0; w < 2000; ++w) {
      rate = std::max(1.0, rate * rng.uniform(0.7, 1.4));
      const auto dec = ctl.on_window(rate);
      // 1. Levels always valid.
      ASSERT_GE(dec.level, 0);
      ASSERT_LT(dec.level, cfg.num_levels);
      // 2. At most one rung per window.
      ASSERT_LE(std::abs(dec.level - prev_level), 1);
      // 3. probed and reverted are mutually exclusive.
      ASSERT_FALSE(dec.probed && dec.reverted);
      // 4. Backoffs stay within the cap.
      for (int l = 0; l < cfg.num_levels; ++l) {
        ASSERT_GE(ctl.backoff(l), 0);
        ASSERT_LE(ctl.backoff(l), cfg.max_backoff_exponent);
      }
      prev_level = dec.level;
    }
  }
}

TEST(ControllerInvariants, ConstantRateConvergesToPeriodicProbing) {
  // Under a perfectly constant rate every decision is a probe (the rate
  // never "improves"), so bck never grows and probing is periodic with
  // period 1 — the documented no-signal behaviour.
  core::AdaptiveController ctl(core::AdaptiveConfig{});
  int probes = 0;
  for (int w = 0; w < 100; ++w) {
    if (ctl.on_window(1000.0).probed) ++probes;
  }
  EXPECT_GT(probes, 90);
}

TEST(ControllerInvariants, RewardedLevelKeepsLongerBackoffs) {
  // A level that repeatedly improves the rate must end with a strictly
  // larger backoff than its neighbours.
  core::AdaptiveController ctl(core::AdaptiveConfig{});
  double rate = 100.0;
  ctl.on_window(rate);  // -> level 1
  for (int i = 0; i < 6; ++i) {
    rate *= 1.5;
    ctl.on_window(rate);  // improvements at level 1
  }
  EXPECT_GT(ctl.backoff(1), ctl.backoff(0));
  EXPECT_GT(ctl.backoff(1), ctl.backoff(2));
}

}  // namespace
}  // namespace strato
