// Fixture: library code writing to stdout.
#include <cstdio>
#include <iostream>

void fixture_bad_print(int v) {
  std::cout << v;
  printf("%d\n", v);
}
