// strato-lint: allow(pragma-once) — guard style kept for a downstream
// consumer that compiles this header twice via the preprocessor.
#ifndef STRATO_TESTS_LINT_FIXTURES_ALLOWED_OK_H_
#define STRATO_TESTS_LINT_FIXTURES_ALLOWED_OK_H_

class FixtureProbe {
 public:
  bool try_probe();  // strato-lint: allow(nodiscard) — fire-and-forget probe
};

#endif  // STRATO_TESTS_LINT_FIXTURES_ALLOWED_OK_H_
