// Fixture: raw transport syscalls outside their sanctioned home,
// src/core/{tcp,epoll_loop,transport}.* — every other layer must talk
// through core::TcpConnection / core::TcpListener and core::EpollLoop.
#include <sys/epoll.h>
#include <sys/socket.h>

int fixture_bad_socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  const int ep = epoll_create1(EPOLL_CLOEXEC);
  struct epoll_event ev {};
  epoll_ctl(ep, EPOLL_CTL_ADD, fd, &ev);
  epoll_wait(ep, &ev, 1, 0);
  return fd + ep;
}
