// Fixture header: missing #pragma once, un-annotated status-returning
// APIs, namespace pollution and a relative include.
#include "../core/bad_print.h"
#include <optional>

using namespace std;

class FixtureQueue {
 public:
  bool try_take(int* out);
  std::optional<int> peek() const;
};
