// Fixture: raw standard-library locking outside common/mutex.h. The
// lock_guard line carries two violations (the guard and the mutex type).
#include <mutex>

static std::mutex g_fixture_mu;

void fixture_bad_mutex() {
  std::lock_guard<std::mutex> lk(g_fixture_mu);
}
