// Fixture: every violation in this file is suppressed with the
// `// strato-lint: allow(<rule>)` escape hatch — the selftest requires
// the linter to report nothing here.
#include <cstdio>
#include <mutex>

// Interop with a pre-wrapper third-party callback that hands us a raw
// mutex; sanctioned exception.
// strato-lint: allow(raw-mutex)
static std::mutex g_fixture_legacy_mu;

void fixture_allowed_print(int v) {
  printf("%d\n", v);  // strato-lint: allow(stdout) — CLI tool output
}
