// Fixture: every violation in this file is suppressed with the
// `// strato-lint: allow(<rule>)` escape hatch — the selftest requires
// the linter to report nothing here.
#include <cstdio>
#include <mutex>
#include <sys/socket.h>

// Interop with a pre-wrapper third-party callback that hands us a raw
// mutex; sanctioned exception.
// strato-lint: allow(raw-mutex)
static std::mutex g_fixture_legacy_mu;

void fixture_allowed_print(int v) {
  printf("%d\n", v);  // strato-lint: allow(stdout) — CLI tool output
}

int fixture_allowed_socket() {
  // Diagnostics probe in a standalone CLI tool; sanctioned exception.
  return ::socket(AF_INET, SOCK_DGRAM, 0);  // strato-lint: allow(socket)
}
