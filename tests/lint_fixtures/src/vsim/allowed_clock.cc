// Fixture: a suppressed wall-clock read inside vsim — must stay silent.
#include <ctime>

long fixture_allowed_clock() {
  // Seeding a log filename, not simulation state.
  return time(nullptr);  // strato-lint: allow(wallclock)
}
