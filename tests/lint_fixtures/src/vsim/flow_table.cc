// Fixture: a suppressed one-off allocation in a fleet-layer file — must
// stay silent (the escape hatch for fleet-alloc).
struct FixtureScratch {
  int v = 0;
};

FixtureScratch* fixture_allowed_fleet_alloc() {
  // One-time setup outside the per-flow hot loop.
  return new FixtureScratch();  // strato-lint: allow(fleet-alloc)
}
