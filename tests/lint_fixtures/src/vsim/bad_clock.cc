// Fixture: wall-clock and ambient randomness inside the virtual-time
// world. Each banned token below must be reported by strato-lint.
#include <chrono>
#include <cstdlib>
#include <ctime>

long fixture_bad_clock() {
  auto now = std::chrono::system_clock::now();
  int noise = rand();
  long stamp = time(nullptr);
  return now.time_since_epoch().count() + noise + stamp;
}
