// Fixture: per-flow heap allocation in the fleet hot loop. Each of the
// three allocations below must be reported by the fleet-alloc rule.
#include <memory>

struct FixtureFlow {
  double remaining = 0.0;
};

FixtureFlow* fixture_bad_fleet_alloc() {
  auto owned = std::make_unique<FixtureFlow>();
  auto shared = std::make_shared<FixtureFlow>();
  owned->remaining += shared->remaining;
  return new FixtureFlow();
}
