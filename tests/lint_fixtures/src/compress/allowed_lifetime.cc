// Fixture: the same escape patterns as bad_lifetime.cc, each carrying a
// `// strato-lint: allow(lifetime)` annotation with a reason — the
// selftest requires the linter to report nothing here. Fixtures are
// linted, not compiled.
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

using Bytes = std::vector<unsigned char>;

struct FakePipe {
  unsigned char* recv_span(std::size_t n);
  void commit(std::size_t n);
};

struct FakePool {
  Bytes acquire(std::size_t n);
  void release(Bytes b);
};

void consume(const unsigned char* p);
void defer(std::function<void()> fn);

class AllowedLifetime {
 public:
  void store_member(FakePipe& pipe) {
    auto span = pipe.recv_span(64);
    // Outstanding-count on the segment keeps the lease alive until the
    // member is cleared; lease-backed by construction.
    span_ = span;  // strato-lint: allow(lifetime)
  }

  void store_container(FakePipe& pipe) {
    auto view = pipe.recv_span(16);
    // Queue is drained before the next commit() can recycle the segment.
    views_.push_back(view);  // strato-lint: allow(lifetime)
  }

  int use_after_commit(FakePipe& pipe) {
    auto span = pipe.recv_span(32);
    pipe.commit(32);
    // The committed prefix is exactly the bytes read below; commit()
    // never reseats the active segment in this fixture protocol.
    return span[0];  // strato-lint: allow(lifetime)
  }

  int use_after_release(FakePool& pool, Bytes& buf) {
    auto view = span_of(buf);
    pool.release(std::move(buf));
    // Pool is configured with an infinite quarantine in this harness, so
    // the released bytes stay mapped for the duration of the read.
    return view[0];  // strato-lint: allow(lifetime)
  }

  void capture_by_ref(FakePipe& pipe, std::function<void()>& out) {
    auto span = pipe.recv_span(8);
    // The callback runs synchronously before this frame returns.
    out = [&span] { consume(span); };  // strato-lint: allow(lifetime)
  }

  void capture_default(FakePipe& pipe) {
    auto span = pipe.recv_span(8);
    // defer() in this fixture invokes the closure inline.
    defer([&] { consume(span); });  // strato-lint: allow(lifetime)
  }

 private:
  unsigned char* span_ = nullptr;
  std::vector<unsigned char*> views_;
};
