// The allow() escape hatch for [simd]: every violation class annotated —
// this file must lint clean.
#include <immintrin.h>  // strato-lint: allow(simd)

// strato-lint: allow(simd)
int ok_ctz(unsigned v) { return __builtin_ctz(v); }
unsigned long long ok_extract(__m128i x) {
  return static_cast<unsigned long long>(
      _mm_cvtsi128_si64(x));  // strato-lint: allow(simd)
}
