// Fixture: seeded `lifetime` violations — pooled spans escaping their
// lease. The selftest expects exactly six findings here; the fully
// annotated twin (allowed_lifetime.cc) must stay clean. Fixtures are
// linted, not compiled.
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

using Bytes = std::vector<unsigned char>;

struct FakePipe {
  unsigned char* recv_span(std::size_t n);
  void commit(std::size_t n);
};

struct FakePool {
  Bytes acquire(std::size_t n);
  void release(Bytes b);
};

void consume(const unsigned char* p);
void defer(std::function<void()> fn);

class BadLifetime {
 public:
  void store_member(FakePipe& pipe) {
    auto span = pipe.recv_span(64);
    span_ = span;  // seeded: member store of a pooled span
  }

  void store_container(FakePipe& pipe) {
    auto view = pipe.recv_span(16);
    views_.push_back(view);  // seeded: member container keeps the borrow
  }

  int use_after_commit(FakePipe& pipe) {
    auto span = pipe.recv_span(32);
    pipe.commit(32);
    return span[0];  // seeded: the commit() invalidated the span
  }

  int use_after_release(FakePool& pool, Bytes& buf) {
    auto view = span_of(buf);
    pool.release(std::move(buf));
    return view[0];  // seeded: the buffer went back to the pool
  }

  void capture_by_ref(FakePipe& pipe, std::function<void()>& out) {
    auto span = pipe.recv_span(8);
    out = [&span] { consume(span); };  // seeded: deferred by-ref capture
  }

  void capture_default(FakePipe& pipe) {
    auto span = pipe.recv_span(8);
    defer([&] { consume(span); });  // seeded: default & capture of a span
  }

 private:
  unsigned char* span_ = nullptr;
  std::vector<unsigned char*> views_;
};
