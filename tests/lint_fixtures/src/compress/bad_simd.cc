// Seeded [simd] violations: intrinsics and bit-scan builtins outside
// common/simd.h. The selftest expects 5 findings here.
#include <immintrin.h>
#include <arm_neon.h>

int bad_ctz(unsigned v) { return __builtin_ctz(v); }
unsigned long long bad_load(const void* p) {
  __m128i x = _mm_loadu_si128(static_cast<const __m128i*>(p));
  return static_cast<unsigned long long>(_mm_cvtsi128_si64(x));
}
