// Seeded violations for the `copy` rule: the fixture mirrors the real
// zero-copy framing path, where payload byte copies are banned unless
// annotated. Four violations below; the annotated tail copy must stay
// clean (it exercises the allow() escape hatch).
#include <cstring>
#include <vector>

namespace strato::compress {

void fixture_copy_violations(std::vector<unsigned char>& buf,
                             const unsigned char* src, unsigned long n) {
  std::memcpy(buf.data(), src, n);                      // violation 1
  std::memmove(buf.data() + 1, buf.data(), n - 1);      // violation 2
  std::copy(src, src + n, buf.begin());                 // violation 3
  buf.insert(buf.end(), src, src + n);                  // violation 4
  // The partial-frame tail on wraparound is the sanctioned copy.
  buf.assign(src, src + n);  // strato-lint: allow(copy)
}

}  // namespace strato::compress
