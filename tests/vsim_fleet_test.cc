// Fleet-engine invariants: deterministic replay, the degenerate
// single-link identity with TransferExperiment, weighted max-min shares,
// per-tenant fairness, and admission control.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/policy.h"
#include "vsim/fleet.h"
#include "vsim/link.h"
#include "vsim/topology.h"
#include "vsim/transfer.h"

namespace strato::vsim {
namespace {

using common::SimTime;

// ---------------------------------------------------------------------------
// Degenerate identity: the single-transfer path must be THE calibrated
// TransferExperiment code path, not a fluid approximation of it.
// ---------------------------------------------------------------------------

TEST(FleetDegenerate, MatchesTransferExperimentExactly) {
  for (const auto cls :
       {corpus::Compressibility::kHigh, corpus::Compressibility::kModerate,
        corpus::Compressibility::kLow}) {
    for (const int bg : {0, 4}) {
      TransferConfig cfg;
      cfg.data = cls;
      cfg.bg_flows = bg;
      cfg.total_bytes = 200'000'000ULL;
      cfg.seed = 17;

      core::StaticPolicy a(0, "NO");
      core::StaticPolicy b(0, "NO");
      const TransferResult want = TransferExperiment(cfg).run(a);
      const TransferResult got = FleetEngine::run_degenerate(cfg, b);
      EXPECT_DOUBLE_EQ(got.completion_s, want.completion_s)
          << corpus::to_string(cls) << " bg=" << bg;
      EXPECT_EQ(got.raw_bytes, want.raw_bytes);
      EXPECT_EQ(got.wire_bytes, want.wire_bytes);
    }
  }
}

TEST(FleetDegenerate, MatchesTransferExperimentUnderDynamicPolicy) {
  TransferConfig cfg;
  cfg.data = corpus::Compressibility::kHigh;
  cfg.bg_flows = 6;
  cfg.total_bytes = 500'000'000ULL;
  cfg.seed = 3;

  core::AdaptivePolicy a({}, SimTime::seconds(2));
  core::AdaptivePolicy b({}, SimTime::seconds(2));
  const TransferResult want = TransferExperiment(cfg).run(a);
  const TransferResult got = FleetEngine::run_degenerate(cfg, b);
  EXPECT_DOUBLE_EQ(got.completion_s, want.completion_s);
  EXPECT_EQ(got.wire_bytes, want.wire_bytes);
  ASSERT_EQ(got.blocks_per_level.size(), want.blocks_per_level.size());
  for (std::size_t l = 0; l < want.blocks_per_level.size(); ++l) {
    EXPECT_EQ(got.blocks_per_level[l], want.blocks_per_level[l]) << l;
  }
}

// ---------------------------------------------------------------------------
// Max-min allocation.
// ---------------------------------------------------------------------------

TEST(MaxMin, DegenerateSingleLinkMatchesSharedLinkFormula) {
  // One weight-1 foreground flow against k weight-0.65 background flows
  // on the single-link topology must reproduce SharedLink's closed form
  // capacity / (1 + 0.65 k), fluctuation series included (LinkBank link 0
  // shares the seed verbatim).
  const VirtProfile& prof = profile(VirtTech::kKvmPara);
  const std::uint64_t seed = 42;
  for (const int k : {0, 2, 6}) {
    Topology topo = Topology::single(prof);
    LinkBank bank(topo, seed);
    MaxMinAllocator alloc(topo);
    SharedLink link(prof, k, seed);

    std::vector<std::uint32_t> path(static_cast<std::size_t>(k) + 1, 0);
    std::vector<double> weight(static_cast<std::size_t>(k) + 1,
                               kBackgroundFlowWeight);
    weight[0] = 1.0;
    std::vector<std::uint32_t> active;
    for (std::uint32_t f = 0; f <= static_cast<std::uint32_t>(k); ++f) {
      active.push_back(f);
    }
    std::vector<double> rate(active.size(), 0.0);
    std::vector<double> caps;

    for (int step = 1; step <= 8; ++step) {
      const SimTime t = SimTime::seconds(0.5 * step);
      bank.capacities(t, caps);
      alloc.allocate(caps, path, weight, active, rate);
      const double want = link.fg_rate(t);
      EXPECT_NEAR(rate[0], want, 1e-6 * want) << "k=" << k << " t=" << t;
    }
  }
}

TEST(MaxMin, RatesAreWeightProportionalOnOneLink) {
  Topology topo;
  const auto l = topo.add_link(LinkSpec{"l", 100.0, {}});
  topo.add_path({l});
  MaxMinAllocator alloc(topo);

  const std::vector<double> caps = {100.0};
  const std::vector<std::uint32_t> path = {0, 0, 0};
  const std::vector<double> weight = {2.0, 1.0, 1.0};
  const std::vector<std::uint32_t> active = {0, 1, 2};
  std::vector<double> rate(3, 0.0);
  alloc.allocate(caps, path, weight, active, rate);
  EXPECT_NEAR(rate[0], 50.0, 1e-9);
  EXPECT_NEAR(rate[1], 25.0, 1e-9);
  EXPECT_NEAR(rate[2], 25.0, 1e-9);
}

TEST(MaxMin, BottleneckFreezesAndReleasesCapacity) {
  // Two links in sequence: flow 0 crosses both, flow 1 only the wide one.
  // The narrow link caps flow 0 at 10; flow 1 then takes the released
  // capacity of the wide link (90) — classic progressive filling.
  Topology topo;
  const auto narrow = topo.add_link(LinkSpec{"narrow", 10.0, {}});
  const auto wide = topo.add_link(LinkSpec{"wide", 100.0, {}});
  topo.add_path({narrow, wide});  // path 0
  topo.add_path({wide});          // path 1
  MaxMinAllocator alloc(topo);

  const std::vector<double> caps = {10.0, 100.0};
  const std::vector<std::uint32_t> path = {0, 1};
  const std::vector<double> weight = {1.0, 1.0};
  const std::vector<std::uint32_t> active = {0, 1};
  std::vector<double> rate(2, 0.0);
  alloc.allocate(caps, path, weight, active, rate);
  EXPECT_NEAR(rate[0], 10.0, 1e-9);
  EXPECT_NEAR(rate[1], 90.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Fleet runs.
// ---------------------------------------------------------------------------

FleetConfig small_fleet(std::uint64_t seed) {
  Topology::FleetShape shape;
  shape.racks = 2;
  shape.hosts_per_rack = 2;
  FleetConfig cfg;
  cfg.topology = Topology::rack_spine_wan(shape);
  cfg.seed = seed;
  cfg.horizon = SimTime::seconds(30);

  TenantSpec analytics;
  analytics.name = "analytics";
  analytics.weight = 2.0;
  analytics.policy = TenantPolicy::dynamic();
  analytics.arrival_per_s = 1.0;
  analytics.mean_flow_bytes = 16ull << 20;
  analytics.class_mix = {1.0, 0.0, 0.0};  // HIGH
  cfg.tenants.push_back(analytics);

  TenantSpec archive;
  archive.name = "archive";
  archive.weight = 1.0;
  archive.policy = TenantPolicy::fixed(0);
  archive.arrival_per_s = 0.5;
  archive.mean_flow_bytes = 8ull << 20;
  archive.class_mix = {0.0, 0.0, 1.0};  // LOW
  cfg.tenants.push_back(archive);

  BgTrafficConfig bg;
  bg.arrival_per_s = 0.5;
  bg.mean_holding_s = 10.0;
  bg.initial_flows = 2;
  bg.max_flows = 6;
  cfg.tenants.push_back(background_tenant(bg));
  return cfg;
}

TEST(Fleet, ReplayIsByteIdentical) {
  const FleetMetrics a = FleetEngine(small_fleet(7)).run();
  const FleetMetrics b = FleetEngine(small_fleet(7)).run();
  const std::string ja = a.to_json();
  EXPECT_EQ(ja, b.to_json());
  EXPECT_GT(a.flows_completed, 0u);
  EXPECT_FALSE(ja.empty());
}

TEST(Fleet, DifferentSeedsDiverge) {
  const FleetMetrics a = FleetEngine(small_fleet(7)).run();
  const FleetMetrics c = FleetEngine(small_fleet(8)).run();
  EXPECT_NE(a.to_json(), c.to_json());
}

TEST(Fleet, AllAdmittedFlowsCompleteWithinDrain) {
  const FleetMetrics m = FleetEngine(small_fleet(21)).run();
  std::uint64_t admitted = 0;
  for (const auto& tm : m.tenants) {
    admitted += tm.admitted;
    EXPECT_EQ(tm.spawned, tm.admitted + tm.rejected) << tm.name;
  }
  EXPECT_EQ(m.flows_completed, admitted);
  EXPECT_GT(m.epochs, 0u);
  EXPECT_GT(m.sim_completed_s, 0.0);
}

TEST(Fleet, CompressionShrinksWireBytesForCompressibleTenant) {
  const FleetMetrics m = FleetEngine(small_fleet(5)).run();
  const TenantMetrics& analytics = m.tenants[0];  // HIGH corpus, adaptive
  const TenantMetrics& archive = m.tenants[1];    // LOW corpus, level 0
  ASSERT_GT(analytics.raw_bytes, 0.0);
  ASSERT_GT(archive.raw_bytes, 0.0);
  // Level 0 moves every raw byte (plus frame headers) onto the wire.
  EXPECT_GT(archive.wire_bytes, archive.raw_bytes * 0.99);
  // The archive tenant never leaves level 0.
  EXPECT_NEAR(archive.raw_bytes_per_level[0], archive.raw_bytes, 1e-6);
}

TEST(Fleet, HigherWeightTenantFinishesFaster) {
  // Two identical tenants, same flows and sizes, sharing one fluctuating
  // link; only the kPerTenant weight differs. The heavier tenant's median
  // completion must beat the lighter one's.
  FleetConfig cfg;
  cfg.topology = Topology::single(profile(VirtTech::kKvmPara));
  cfg.seed = 13;
  cfg.horizon = SimTime::seconds(10);

  for (const double w : {3.0, 1.0}) {
    TenantSpec t;
    t.name = w > 1.0 ? "heavy" : "light";
    t.weight = w;
    t.share = ShareMode::kPerTenant;
    t.policy = TenantPolicy::fixed(0);
    t.arrival_per_s = 0.0;
    t.initial_flows = 4;
    t.mean_flow_bytes = 64ull << 20;
    t.min_flow_bytes = 64ull << 20;  // fixed-size flows
    t.class_mix = {0.0, 0.0, 1.0};
    cfg.tenants.push_back(t);
  }
  const FleetMetrics m = FleetEngine(cfg).run();
  ASSERT_EQ(m.tenants[0].completed, 4u);
  ASSERT_EQ(m.tenants[1].completed, 4u);
  EXPECT_LT(m.tenants[0].completion_s.quantile(0.5),
            m.tenants[1].completion_s.quantile(0.5));
}

TEST(Fleet, AdmissionControlRejectsBeyondQueueBound) {
  FleetConfig cfg;
  cfg.topology = Topology::single(profile(VirtTech::kKvmPara));
  cfg.seed = 29;
  cfg.horizon = SimTime::seconds(20);

  TenantSpec t;
  t.name = "bursty";
  t.policy = TenantPolicy::fixed(0);
  t.arrival_per_s = 10.0;
  t.flow_limit = 50;
  t.max_in_flight = 2;
  t.max_queue = 4;
  t.mean_flow_bytes = 32ull << 20;
  t.class_mix = {0.0, 0.0, 1.0};
  cfg.tenants.push_back(t);

  const FleetMetrics m = FleetEngine(cfg).run();
  const TenantMetrics& tm = m.tenants[0];
  EXPECT_EQ(tm.spawned, 50u);
  EXPECT_GT(tm.rejected, 0u);
  EXPECT_EQ(tm.admitted + tm.rejected, tm.spawned);
  EXPECT_EQ(tm.completed, tm.admitted);
}

TEST(Fleet, BackgroundTenantIsJustAnotherTenant) {
  const FleetMetrics m = FleetEngine(small_fleet(31)).run();
  const TenantMetrics& bg = m.tenants[2];
  EXPECT_EQ(bg.name, "background");
  EXPECT_GT(bg.completed, 0u);
  // Dwell flows move no application payload and report no completions
  // into the transfer-latency sample.
  EXPECT_EQ(bg.completion_s.count(), 0u);
  EXPECT_EQ(bg.raw_bytes, 0.0);
}

// ---------------------------------------------------------------------------
// Golden digests. These values were produced by the pre-incremental
// engine (full per-epoch MaxMinAllocator rebuild, serial drain, no
// cached kernels). The optimized engine must reproduce them bit for bit
// — do NOT update the constants to make a failure pass; a mismatch
// means the optimizations changed simulation results.
// ---------------------------------------------------------------------------

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

// A medium config exercising kPerTenant reweight churn, admission-queue
// pressure and rejections — every incremental code path at once.
FleetConfig medium_fleet(std::uint64_t seed) {
  FleetConfig cfg;
  cfg.topology = Topology::rack_spine_wan(Topology::FleetShape{});
  cfg.seed = seed;
  cfg.horizon = SimTime::seconds(60);
  for (int i = 0; i < 3; ++i) {
    TenantSpec t;
    t.name = "t" + std::to_string(i);
    t.weight = 1.0 + i;
    t.policy = i == 0 ? TenantPolicy::dynamic() : TenantPolicy::fixed(i);
    t.arrival_per_s = 8.0;
    t.max_in_flight = 40;
    t.max_queue = 200;
    t.mean_flow_bytes = 8ull << 20;
    t.class_mix = {0.3, 0.4, 0.3};
    cfg.tenants.push_back(t);
  }
  BgTrafficConfig bg;
  bg.arrival_per_s = 2.0;
  bg.mean_holding_s = 10.0;
  bg.initial_flows = 8;
  bg.max_flows = 64;
  cfg.tenants.push_back(background_tenant(bg));
  return cfg;
}

TEST(FleetGolden, PreOptimizationDigestsReproduce) {
  EXPECT_EQ(fnv1a(FleetEngine(small_fleet(7)).run().to_json()),
            0x8e9e071c25cd0493ULL);
  EXPECT_EQ(fnv1a(FleetEngine(small_fleet(21)).run().to_json()),
            0xb88751d8cf3c405cULL);
  EXPECT_EQ(fnv1a(FleetEngine(medium_fleet(5)).run().to_json()),
            0xa641e245520e92fbULL);
}

// The config-flag route to the reference allocator (the env var
// STRATO_FLEET_FULL_ALLOC=1 sets the same flag) agrees with the
// incremental default.
TEST(FleetGolden, FullAllocFlagIsBitIdentical) {
  FleetConfig cfg = medium_fleet(5);
  cfg.full_alloc = true;
  EXPECT_EQ(fnv1a(FleetEngine(cfg).run().to_json()),
            0xa641e245520e92fbULL);
}

// ---------------------------------------------------------------------------
// Sharded drain: any worker count must be byte-identical to serial —
// the parallel phase writes only per-flow state, and all cross-flow
// accumulation happens serially in admission order.
// ---------------------------------------------------------------------------

TEST(FleetShardedDrain, DigestInvariantAcrossWorkerCounts) {
  FleetConfig base = medium_fleet(5);
  const std::string serial = FleetEngine(base).run().to_json();
  EXPECT_EQ(fnv1a(serial), 0xa641e245520e92fbULL);
  for (const int workers : {2, 4, 8}) {
    FleetConfig cfg = medium_fleet(5);
    cfg.drain_workers = workers;
    EXPECT_EQ(FleetEngine(cfg).run().to_json(), serial)
        << "drain_workers=" << workers;
  }
}

}  // namespace
}  // namespace strato::vsim
