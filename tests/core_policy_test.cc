// RateMeter and the policy layer (static + adaptive).
#include <gtest/gtest.h>

#include "core/policy.h"
#include "core/rate_meter.h"

namespace strato::core {
namespace {

using common::SimTime;

TEST(RateMeter, NoWindowBeforeFirstBytes) {
  RateMeter m(SimTime::seconds(2));
  EXPECT_FALSE(m.poll(SimTime::seconds(100)).has_value());
}

TEST(RateMeter, ClosesWindowAfterT) {
  RateMeter m(SimTime::seconds(2));
  m.on_bytes(1000, SimTime::seconds(0));
  m.on_bytes(1000, SimTime::seconds(1));
  EXPECT_FALSE(m.poll(SimTime::seconds(1.5)).has_value());
  const auto rate = m.poll(SimTime::seconds(2));
  ASSERT_TRUE(rate.has_value());
  EXPECT_NEAR(*rate, 1000.0, 1e-9);  // 2000 bytes over 2 s
}

TEST(RateMeter, UsesActualElapsedTime) {
  // A late poll divides by the true elapsed span, not the nominal t.
  RateMeter m(SimTime::seconds(2));
  m.on_bytes(4000, SimTime::seconds(0));
  const auto rate = m.poll(SimTime::seconds(4));
  ASSERT_TRUE(rate.has_value());
  EXPECT_NEAR(*rate, 1000.0, 1e-9);
}

TEST(RateMeter, WindowsAreConsecutive) {
  // The first window starts at the first on_bytes() call.
  RateMeter m(SimTime::seconds(1));
  m.on_bytes(100, SimTime::seconds(0.5));
  EXPECT_FALSE(m.poll(SimTime::seconds(1)).has_value());  // only 0.5 s in
  ASSERT_TRUE(m.poll(SimTime::seconds(1.5)).has_value());
  m.on_bytes(500, SimTime::seconds(2.0));
  const auto rate = m.poll(SimTime::seconds(2.5));
  ASSERT_TRUE(rate.has_value());
  EXPECT_NEAR(*rate, 500.0, 1e-9);  // only the second window's bytes
  EXPECT_EQ(m.total_bytes(), 600u);
}

TEST(RateMeter, ResetClearsEverything) {
  RateMeter m(SimTime::seconds(1));
  m.on_bytes(100, SimTime::seconds(0));
  m.reset();
  EXPECT_EQ(m.total_bytes(), 0u);
  EXPECT_FALSE(m.poll(SimTime::seconds(10)).has_value());
}

TEST(StaticPolicy, FixedLevelAndName) {
  StaticPolicy p(2, "MEDIUM");
  EXPECT_EQ(p.level(), 2);
  EXPECT_EQ(p.name(), "MEDIUM");
  p.on_block(1000, SimTime::seconds(1));
  EXPECT_EQ(p.level(), 2);
}

TEST(AdaptivePolicy, StartsAtLevelZero) {
  AdaptivePolicy p(AdaptiveConfig{}, SimTime::seconds(2));
  EXPECT_EQ(p.level(), 0);
  EXPECT_EQ(p.name(), "DYNAMIC");
}

TEST(AdaptivePolicy, DecidesOncePerWindow) {
  AdaptivePolicy p(AdaptiveConfig{}, SimTime::seconds(2));
  int decisions = 0;
  p.set_trace([&](SimTime, double, const Decision&) { ++decisions; });
  // Feed 10 s of steady data in 0.1 s blocks.
  for (int i = 0; i <= 100; ++i) {
    p.on_block(100000, SimTime::seconds(0.1 * i));
  }
  EXPECT_EQ(decisions, 5);  // one per 2-second window
}

TEST(AdaptivePolicy, TraceSeesApplicationRate) {
  AdaptivePolicy p(AdaptiveConfig{}, SimTime::seconds(1));
  double seen_rate = -1;
  p.set_trace([&](SimTime, double cdr, const Decision&) { seen_rate = cdr; });
  p.on_block(500000, SimTime::seconds(0));
  p.on_block(500000, SimTime::seconds(1));  // closes window: 1 MB / 1 s
  EXPECT_NEAR(seen_rate, 1e6, 1e-3);
}

TEST(AdaptivePolicy, ProbesFromLevelZeroOnStableRate) {
  AdaptivePolicy p(AdaptiveConfig{}, SimTime::seconds(1));
  for (int i = 0; i <= 40; ++i) {
    p.on_block(100000, SimTime::seconds(0.25 * i));
  }
  // With a perfectly stable rate the controller keeps probing; the level
  // must have moved off 0 at some point (and stays within the ladder).
  EXPECT_GE(p.controller().level(), 0);
  EXPECT_LT(p.controller().level(), 4);
  EXPECT_GT(p.meter().total_bytes(), 0u);
}

TEST(AdaptivePolicy, LevelRespondsToRateCollapse) {
  // Simulate: level 0 gives 100 MB/s; any compression level collapses the
  // app rate. The policy must spend most of its time at level 0.
  AdaptiveConfig cfg;
  cfg.alpha = 0.2;
  AdaptivePolicy p(cfg, SimTime::seconds(1));
  double t = 0;
  int at_zero = 0, windows = 0;
  for (int w = 0; w < 100; ++w) {
    const double rate = p.level() == 0 ? 100e6 : 20e6;
    // 10 blocks per window of `rate` bytes/s.
    for (int b = 0; b < 10; ++b) {
      p.on_block(static_cast<std::size_t>(rate / 10), SimTime::seconds(t));
      t += 0.1;
    }
    ++windows;
    if (p.level() == 0) ++at_zero;
  }
  EXPECT_GT(at_zero, windows / 2);
}

}  // namespace
}  // namespace strato::core
