// Statistics utilities: streaming moments, quantiles, boxplot stats,
// histograms.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"

namespace strato::common {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  s.add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStats, AgreesWithSample) {
  Xoshiro256 rng(11);
  RunningStats rs;
  Sample sm;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.gaussian(10.0, 3.0);
    rs.add(x);
    sm.add(x);
  }
  EXPECT_NEAR(rs.mean(), sm.mean(), 1e-9);
  EXPECT_NEAR(rs.stddev(), sm.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), sm.min());
  EXPECT_DOUBLE_EQ(rs.max(), sm.max());
}

TEST(Sample, Quantiles) {
  Sample s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-9);
  // Quantiles are monotone in q.
  double prev = -1e18;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double v = s.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Sample, QuantileEdgeCases) {
  Sample s;
  EXPECT_EQ(s.quantile(0.5), 0.0);  // empty
  s.add(7.0);
  EXPECT_EQ(s.quantile(0.0), 7.0);
  EXPECT_EQ(s.quantile(1.0), 7.0);
  EXPECT_EQ(s.quantile(0.3), 7.0);
}

TEST(Sample, FiveNumberAndOutliers) {
  Sample s;
  for (int i = 0; i < 100; ++i) s.add(50.0 + (i % 10));
  s.add(1000.0);  // far outlier
  const FiveNumber f = s.five_number();
  EXPECT_EQ(f.min, 50.0);
  EXPECT_EQ(f.max, 1000.0);
  EXPECT_GE(f.q3, f.q1);
  EXPECT_GE(f.median, f.q1);
  EXPECT_LE(f.median, f.q3);
  EXPECT_GE(f.outliers, 1u);
}

TEST(Sample, LazySortSurvivesInterleavedAdds) {
  Sample s;
  s.add(3);
  s.add(1);
  EXPECT_EQ(s.min(), 1.0);
  s.add(0.5);  // add after a sorted query
  EXPECT_EQ(s.min(), 0.5);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bucket 0
  h.add(9.99);  // bucket 9
  h.add(-5.0);  // clamps to 0
  h.add(50.0);  // clamps to 9
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(10), 10.0);
  EXPECT_FALSE(h.ascii().empty());
}

TEST(Histogram, DegenerateConstruction) {
  Histogram h(0.0, 0.0, 0);  // coerced to one bucket
  h.add(123.0);
  EXPECT_EQ(h.bucket_count(), 1u);
  EXPECT_EQ(h.total(), 1u);
}

TEST(Rng, GaussianMoments) {
  Xoshiro256 rng(99);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.gaussian(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

}  // namespace
}  // namespace strato::common
