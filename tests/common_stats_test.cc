// Statistics utilities: streaming moments, quantiles, boxplot stats,
// histograms.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "common/stats.h"

namespace strato::common {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  s.add(3.5);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStats, AgreesWithSample) {
  Xoshiro256 rng(11);
  RunningStats rs;
  Sample sm;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.gaussian(10.0, 3.0);
    rs.add(x);
    sm.add(x);
  }
  EXPECT_NEAR(rs.mean(), sm.mean(), 1e-9);
  EXPECT_NEAR(rs.stddev(), sm.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(rs.min(), sm.min());
  EXPECT_DOUBLE_EQ(rs.max(), sm.max());
}

TEST(Sample, Quantiles) {
  Sample s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-9);
  // Quantiles are monotone in q.
  double prev = -1e18;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const double v = s.quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Sample, QuantileEdgeCases) {
  Sample s;
  EXPECT_EQ(s.quantile(0.5), 0.0);  // empty
  s.add(7.0);
  EXPECT_EQ(s.quantile(0.0), 7.0);
  EXPECT_EQ(s.quantile(1.0), 7.0);
  EXPECT_EQ(s.quantile(0.3), 7.0);
}

TEST(Sample, FiveNumberAndOutliers) {
  Sample s;
  for (int i = 0; i < 100; ++i) s.add(50.0 + (i % 10));
  s.add(1000.0);  // far outlier
  const FiveNumber f = s.five_number();
  EXPECT_EQ(f.min, 50.0);
  EXPECT_EQ(f.max, 1000.0);
  EXPECT_GE(f.q3, f.q1);
  EXPECT_GE(f.median, f.q1);
  EXPECT_LE(f.median, f.q3);
  EXPECT_GE(f.outliers, 1u);
}

TEST(Sample, LazySortSurvivesInterleavedAdds) {
  Sample s;
  s.add(3);
  s.add(1);
  EXPECT_EQ(s.min(), 1.0);
  s.add(0.5);  // add after a sorted query
  EXPECT_EQ(s.min(), 0.5);
  EXPECT_EQ(s.max(), 3.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bucket 0
  h.add(9.99);  // bucket 9
  h.add(-5.0);  // clamps to 0
  h.add(50.0);  // clamps to 9
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(10), 10.0);
  EXPECT_FALSE(h.ascii().empty());
}

TEST(Histogram, DegenerateConstruction) {
  Histogram h(0.0, 0.0, 0);  // coerced to one bucket
  h.add(123.0);
  EXPECT_EQ(h.bucket_count(), 1u);
  EXPECT_EQ(h.total(), 1u);
}

// --- fleet-cardinality coverage -------------------------------------------
// The fleet engine asks for tail quantiles (p999) over >= 100k completion
// times and folds per-tenant histograms into an all-tenant aggregate;
// these paths must be exact at that scale.

TEST(Sample, TailQuantilesAtFleetCardinality) {
  // 0, 1, ..., 199999 — every quantile is known in closed form.
  Sample s;
  const int n = 200000;
  s.reserve(n);
  for (int i = 0; i < n; ++i) s.add(i);
  EXPECT_NEAR(s.quantile(0.5), (n - 1) * 0.5, 1e-6);
  EXPECT_NEAR(s.quantile(0.99), (n - 1) * 0.99, 1e-6);
  EXPECT_NEAR(s.quantile(0.999), (n - 1) * 0.999, 1e-6);
  EXPECT_NEAR(s.quantile(0.9999), (n - 1) * 0.9999, 1e-6);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), n - 1);
  // p999 must sit strictly between p99 and max — a clamped or truncated
  // index computation collapses them.
  EXPECT_GT(s.quantile(0.999), s.quantile(0.99));
  EXPECT_LT(s.quantile(0.999), s.max());
}

TEST(Sample, P999SeparatesAHeavyTail) {
  // 100k fast completions plus 200 stragglers: p99 stays in the bulk,
  // p999 lands in the tail.
  Sample s;
  for (int i = 0; i < 100000; ++i) s.add(10.0 + (i % 100) * 0.01);
  for (int i = 0; i < 200; ++i) s.add(500.0 + i);
  EXPECT_LT(s.quantile(0.99), 12.0);
  EXPECT_GT(s.quantile(0.999), 100.0);
}

TEST(Sample, MergeMatchesPooledObservations) {
  Xoshiro256 rng(7);
  Sample a, b, pooled;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.gaussian(100.0, 25.0);
    (i % 3 == 0 ? a : b).add(x);
    pooled.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), pooled.count());
  for (double q : {0.0, 0.25, 0.5, 0.99, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), pooled.quantile(q)) << q;
  }
}

TEST(Sample, MergeEdgeCases) {
  Sample empty, one;
  one.add(42.0);
  Sample target;
  target.merge(empty);  // no-op
  EXPECT_TRUE(target.empty());
  EXPECT_EQ(target.quantile(0.999), 0.0);
  target.merge(one);  // single observation: every quantile is it
  EXPECT_EQ(target.count(), 1u);
  EXPECT_DOUBLE_EQ(target.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(target.quantile(0.999), 42.0);
  target.merge(empty);
  EXPECT_EQ(target.count(), 1u);
}

TEST(Histogram, MergePerTenantIntoAggregate) {
  Histogram web(0.0, 1000.0, 50), batch(0.0, 1000.0, 50);
  Histogram pooled(0.0, 1000.0, 50);
  Xoshiro256 rng(13);
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.uniform(0.0, 1200.0);  // exercises clamping too
    (i % 2 == 0 ? web : batch).add(x);
    pooled.add(x);
  }
  ASSERT_TRUE(web.merge(batch));
  EXPECT_EQ(web.total(), pooled.total());
  for (std::size_t i = 0; i < pooled.bucket_count(); ++i) {
    EXPECT_EQ(web.bucket(i), pooled.bucket(i)) << i;
  }
}

TEST(Histogram, MergeRejectsLayoutMismatch) {
  Histogram a(0.0, 10.0, 10);
  Histogram wrong_range(0.0, 20.0, 10);
  Histogram wrong_buckets(0.0, 10.0, 5);
  a.add(1.0);
  EXPECT_FALSE(a.merge(wrong_range));
  EXPECT_FALSE(a.merge(wrong_buckets));
  EXPECT_EQ(a.total(), 1u);  // untouched on rejection
}

TEST(Histogram, MergeEmptyAndSelfLayout) {
  Histogram a(0.0, 10.0, 10), empty(0.0, 10.0, 10);
  a.add(5.0);
  ASSERT_TRUE(a.merge(empty));
  EXPECT_EQ(a.total(), 1u);
  ASSERT_TRUE(empty.merge(a));
  EXPECT_EQ(empty.total(), 1u);
  EXPECT_EQ(empty.bucket(5), 1u);
}

TEST(Rng, GaussianMoments) {
  Xoshiro256 rng(99);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.gaussian(5.0, 2.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

}  // namespace
}  // namespace strato::common
