// Metrics: /proc/stat parsing, interval diffs, time series.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "metrics/proc_stat.h"
#include "metrics/registry.h"
#include "metrics/timeseries.h"

namespace strato::metrics {
namespace {

constexpr const char* kSample =
    "cpu  1000 100 500 8000 50 20 30 300\n"
    "cpu0 1000 100 500 8000 50 20 30 300\n"
    "intr 12345\n";

TEST(ProcStat, ParsesAggregateLine) {
  const auto s = parse_proc_stat(kSample);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->user, 1000u);
  EXPECT_EQ(s->nice, 100u);
  EXPECT_EQ(s->system, 500u);
  EXPECT_EQ(s->idle, 8000u);
  EXPECT_EQ(s->iowait, 50u);
  EXPECT_EQ(s->irq, 20u);
  EXPECT_EQ(s->softirq, 30u);
  EXPECT_EQ(s->steal, 300u);
  EXPECT_EQ(s->total(), 10000u);
}

TEST(ProcStat, OldKernelShortLine) {
  const auto s = parse_proc_stat("cpu  10 0 5 100\n");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->steal, 0u);
  EXPECT_EQ(s->total(), 115u);
}

TEST(ProcStat, MissingOrMalformed) {
  EXPECT_FALSE(parse_proc_stat("").has_value());
  EXPECT_FALSE(parse_proc_stat("intr 1 2 3\n").has_value());
  EXPECT_FALSE(parse_proc_stat("cpu  garbage\n").has_value());
  // "cpu0" must not match the aggregate parser.
  EXPECT_FALSE(parse_proc_stat("cpu0 1 2 3 4\n").has_value());
}

TEST(ProcStat, DiffYieldsFractions) {
  ProcStatSnapshot a, b;
  a.user = 100;
  a.idle = 900;
  b = a;
  b.user = 150;   // +50 user
  b.system = 25;  // +25 sys
  b.idle = 925;   // +25 idle
  const CpuBreakdown d = diff(a, b);
  EXPECT_NEAR(d.usr, 0.5, 1e-12);
  EXPECT_NEAR(d.sys, 0.25, 1e-12);
  EXPECT_NEAR(d.busy(), 0.75, 1e-12);
  EXPECT_NEAR(d.idle(), 0.25, 1e-12);
}

TEST(ProcStat, DiffHandlesNoElapsedOrBackwards) {
  ProcStatSnapshot a;
  a.user = 10;
  const auto zero = diff(a, a);
  EXPECT_EQ(zero.busy(), 0.0);
  ProcStatSnapshot earlier = a, later = a;
  earlier.user = 100;
  later.user = 50;  // counter went backwards (reboot)
  EXPECT_EQ(diff(earlier, later).busy(), 0.0);
}

TEST(ProcStat, LiveReadOnLinux) {
  // On the build machine /proc/stat exists; the parser must handle it.
  const auto live = read_proc_stat();
  ASSERT_TRUE(live.has_value());
  EXPECT_GT(live->total(), 0u);
}

TEST(CpuBreakdown, ArithmeticAndFormatting) {
  CpuBreakdown a{0.1, 0.2, 0.0, 0.05, 0.1};
  EXPECT_NEAR(a.busy(), 0.45, 1e-12);
  CpuBreakdown b = a * 2.0;
  EXPECT_NEAR(b.sys, 0.4, 1e-12);
  a += b;
  EXPECT_NEAR(a.usr, 0.3, 1e-12);
  const auto s = to_string(b);
  EXPECT_NE(s.find("sys=40.0%"), std::string::npos);
}

TEST(TimeSeries, StepwiseAt) {
  TimeSeries ts;
  using common::SimTime;
  ts.add(SimTime::seconds(1), 10.0);
  ts.add(SimTime::seconds(3), 30.0);
  EXPECT_EQ(ts.at(SimTime::seconds(0.5), -1.0), -1.0);  // before first
  EXPECT_EQ(ts.at(SimTime::seconds(1)), 10.0);
  EXPECT_EQ(ts.at(SimTime::seconds(2.9)), 10.0);
  EXPECT_EQ(ts.at(SimTime::seconds(3)), 30.0);
  EXPECT_EQ(ts.at(SimTime::seconds(100)), 30.0);
}

TEST(TimelineRecorder, SeriesManagementAndCsv) {
  TimelineRecorder rec;
  using common::SimTime;
  rec.record("a", SimTime::seconds(0), 1.0);
  rec.record("a", SimTime::seconds(2), 2.0);
  rec.record("b", SimTime::seconds(1), 5.0);
  EXPECT_TRUE(rec.has("a"));
  EXPECT_FALSE(rec.has("c"));
  ASSERT_EQ(rec.names().size(), 2u);
  EXPECT_EQ(rec.series("a").size(), 2u);

  std::ostringstream os;
  rec.write_csv(os, SimTime::seconds(1));
  const std::string csv = os.str();
  EXPECT_NE(csv.find("time_s,a,b"), std::string::npos);
  EXPECT_NE(csv.find("\n0,1,0"), std::string::npos);   // b before first = 0
  EXPECT_NE(csv.find("\n1,1,5"), std::string::npos);
  EXPECT_NE(csv.find("\n2,2,5"), std::string::npos);
}

// ---------------------------------------------------------------------------
// MetricRegistry (metrics/registry.h)

TEST(MetricRegistry, CounterAndGaugeResolveToStableAddresses) {
  MetricRegistry reg;
  Counter& a = reg.counter("tx.wire_bytes");
  Gauge& g = reg.gauge("tx.queued_bytes");
  a.add();
  a.add(41);
  g.set(-7);
  // Re-resolving by name yields the same node (std::map: stable).
  EXPECT_EQ(&reg.counter("tx.wire_bytes"), &a);
  EXPECT_EQ(&reg.gauge("tx.queued_bytes"), &g);
  EXPECT_EQ(a.value(), 42u);
  EXPECT_EQ(g.value(), -7);
  g.add(3);
  EXPECT_EQ(g.value(), -4);
}

TEST(MetricRegistry, SnapshotIsNameSorted) {
  MetricRegistry reg;
  reg.counter("zeta").add(1);
  reg.gauge("alpha").set(2);
  reg.counter("mid").add(3);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "alpha");
  EXPECT_FALSE(snap[0].is_counter);
  EXPECT_EQ(snap[0].value, 2);
  EXPECT_EQ(snap[1].name, "mid");
  EXPECT_EQ(snap[2].name, "zeta");
}

TEST(MetricRegistry, JsonIsDeterministicAcrossInsertionOrder) {
  // Two registries fed the same values in different orders must render
  // byte-identical JSON — the property the bench gate relies on.
  MetricRegistry a;
  a.counter("rx.blocks").add(5);
  a.gauge("tx.queued_bytes").set(0);
  a.counter("tx.frames").add(5);
  MetricRegistry b;
  b.counter("tx.frames").add(5);
  b.counter("rx.blocks").add(2);
  b.gauge("tx.queued_bytes").set(0);
  b.counter("rx.blocks").add(3);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_EQ(a.to_json(),
            "{\"rx.blocks\":5,\"tx.frames\":5,\"tx.queued_bytes\":0}");
}

TEST(MetricRegistry, ConcurrentAddsAreLossless) {
  MetricRegistry reg;
  Counter& c = reg.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace strato::metrics
