// Deterministic seeded mutation sweeps ("minifuzz") over the framed
// decode path — ctest label `fuzz`. Each ladder rung of the extended
// registry takes >= 10k mutations; the run is byte-for-byte reproducible
// from STRATO_FUZZ_SEED (printed up front, overridable to replay a red CI
// run locally).
#include <gtest/gtest.h>

#include "compress/registry.h"
#include "verify/minifuzz.h"
#include "verify/seed.h"

namespace strato::verify {
namespace {

MinifuzzConfig config_from_env() {
  MinifuzzConfig config;
  config.seed = seed_from_env("STRATO_FUZZ_SEED", config.seed);
  return config;
}

class FrameMinifuzz : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FrameMinifuzz, TenThousandMutationsPerLevel) {
  const std::size_t level = GetParam();
  const auto& registry = compress::CodecRegistry::extended();
  ASSERT_LT(level, registry.level_count());
  MinifuzzConfig config = config_from_env();
  announce_seed("STRATO_FUZZ_SEED", config.seed);
  SCOPED_TRACE("level=" + registry.level(level).label);

  const MinifuzzResult result = run_frame_minifuzz(registry, level, config);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_GE(result.iterations, 10000u);
  // Every iteration lands in exactly one bucket when the contract holds.
  EXPECT_EQ(result.rejected + result.intact, result.iterations)
      << result.summary();
  // Mutations overwhelmingly damage the stream; a sweep where nothing was
  // ever rejected means the mutator is broken.
  EXPECT_GT(result.rejected, result.iterations / 4) << result.summary();
}

INSTANTIATE_TEST_SUITE_P(
    ExtendedLadder, FrameMinifuzz,
    ::testing::Range<std::size_t>(
        0, compress::CodecRegistry::extended().level_count()));

TEST(Minifuzz, SameSeedSameFingerprint) {
  const auto& registry = compress::CodecRegistry::extended();
  MinifuzzConfig config = config_from_env();
  config.iterations = 2000;  // determinism, not coverage, is under test
  announce_seed("STRATO_FUZZ_SEED", config.seed);

  const MinifuzzResult a = run_frame_minifuzz(registry, 1, config);
  const MinifuzzResult b = run_frame_minifuzz(registry, 1, config);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.intact, b.intact);

  // A different seed must explore a different path (sanity: fingerprint
  // actually depends on the run, not a constant).
  MinifuzzConfig other = config;
  other.seed = config.seed ^ 0x5EED5EED5EED5EEDULL;
  const MinifuzzResult c = run_frame_minifuzz(registry, 1, other);
  EXPECT_NE(a.fingerprint, c.fingerprint);
}

TEST(Minifuzz, GarbageNeverEscapesCodecError) {
  const auto& registry = compress::CodecRegistry::extended();
  MinifuzzConfig config = config_from_env();
  announce_seed("STRATO_FUZZ_SEED", config.seed);
  const MinifuzzResult result = run_garbage_minifuzz(registry, config);
  EXPECT_TRUE(result.ok()) << result.summary();
  EXPECT_GE(result.iterations, 1000u);
}

}  // namespace
}  // namespace strato::verify
