// Suffix-array match finder tests.
//
// Three layers: the SA-IS construction itself (cross-checked against a
// brute-force suffix sort), the longest-previous-factor property of
// find() (cross-checked against an O(n^2) scan), and the HeavyLz
// integration — streams from the suffix-array parse must decode with the
// unchanged HEAVY decoder and are locked by golden wire vectors under
// tests/data/ (regenerate deliberately with STRATO_REGEN_GOLDEN=1).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "compress/heavy_lz.h"
#include "compress/suffix_match.h"
#include "corpus/generator.h"

namespace strato::compress {
namespace {

#ifndef STRATO_TEST_DATA_DIR
#error "STRATO_TEST_DATA_DIR must point at tests/data (set by CMake)"
#endif

// --- helpers -----------------------------------------------------------------

std::vector<std::int32_t> brute_force_sa(const common::Bytes& s) {
  std::vector<std::int32_t> sa(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    sa[i] = static_cast<std::int32_t>(i);
  }
  std::sort(sa.begin(), sa.end(), [&](std::int32_t a, std::int32_t b) {
    return std::lexicographical_compare(s.begin() + a, s.end(),
                                        s.begin() + b, s.end());
  });
  return sa;
}

common::Bytes random_bytes(std::uint64_t seed, std::size_t n, int alphabet) {
  common::Xoshiro256 rng(seed);
  common::Bytes out(n);
  for (auto& b : out) {
    b = static_cast<std::uint8_t>(rng() % static_cast<std::uint64_t>(alphabet));
  }
  return out;
}

common::Bytes corpus_bytes(corpus::Compressibility c, std::size_t n) {
  auto gen = corpus::make_generator(c, 7);
  return corpus::take(*gen, n);
}

// --- SA-IS construction ------------------------------------------------------

TEST(SuffixArraySais, MatchesBruteForceOnRandomInputs) {
  // Small alphabets force long repeats and deep SA-IS recursion.
  for (const int alphabet : {2, 4, 256}) {
    for (const std::size_t n : {0u, 1u, 2u, 3u, 17u, 256u, 1500u}) {
      const common::Bytes s =
          random_bytes(1000 + n + static_cast<std::size_t>(alphabet), n,
                       alphabet);
      EXPECT_EQ(detail::suffix_array_sais(s), brute_force_sa(s))
          << "alphabet " << alphabet << " n " << n;
    }
  }
}

TEST(SuffixArraySais, HandlesDegenerateRepeats) {
  for (const std::string text :
       {"aaaaaaaaaaaaaaaa", "abababababababab", "aabaabaabaabaab",
        "banana", "mississippi", "zyxwvutsrqponml"}) {
    common::Bytes s(text.begin(), text.end());
    EXPECT_EQ(detail::suffix_array_sais(s), brute_force_sa(s)) << text;
  }
}

TEST(SuffixArraySais, MatchesBruteForceOnCorpusSlices) {
  for (const auto c :
       {corpus::Compressibility::kHigh, corpus::Compressibility::kModerate,
        corpus::Compressibility::kLow}) {
    const common::Bytes s = corpus_bytes(c, 3000);
    EXPECT_EQ(detail::suffix_array_sais(s), brute_force_sa(s));
  }
}

// --- longest previous factor -------------------------------------------------

TEST(SuffixMatcher, FindReturnsTheLongestPreviousFactor) {
  const common::Bytes s = random_bytes(42, 800, 4);
  SuffixMatcher matcher;
  matcher.build(s);
  for (std::size_t i = 1; i < s.size(); ++i) {
    // Brute-force LPF at i.
    std::size_t best = 0;
    for (std::size_t j = 0; j < i; ++j) {
      std::size_t len = 0;
      while (i + len < s.size() && s[j + len] == s[i + len]) ++len;
      best = std::max(best, len);
    }
    const auto m = matcher.find(i, s.size(), s.size());
    EXPECT_EQ(m.len, best) << "position " << i;
    if (m.len > 0) {
      // The reported distance must actually realise the reported length.
      ASSERT_LE(m.dist, i);
      for (std::size_t k = 0; k < m.len; ++k) {
        ASSERT_EQ(s[i + k], s[i - m.dist + k]) << "position " << i;
      }
    }
  }
}

TEST(SuffixMatcher, RespectsLengthAndDistanceCaps) {
  common::Bytes s(600, 0x41);  // all 'A': LPF at i is i, distance 1
  SuffixMatcher matcher;
  matcher.build(s);
  const auto m = matcher.find(300, 259, 16);
  EXPECT_EQ(m.len, 259u);
  EXPECT_LE(m.dist, 16u);
}

// --- HeavyLz integration -----------------------------------------------------

common::Bytes heavy_compress(const HeavyLz& codec, const common::Bytes& src) {
  common::Bytes dst(codec.max_compressed_size(src.size()));
  dst.resize(codec.compress(src, dst));
  return dst;
}

TEST(SuffixHeavyLz, RoundTripsThroughTheUnchangedDecoder) {
  const HeavyLz sa_codec(HeavyFinder::kSuffixArray);
  const HeavyLz chain_codec;  // also the decoder
  for (const auto c :
       {corpus::Compressibility::kHigh, corpus::Compressibility::kModerate,
        corpus::Compressibility::kLow}) {
    for (const std::size_t n : {1u, 31u, 4096u, 100000u}) {
      const common::Bytes src = corpus_bytes(c, n);
      const common::Bytes comp = heavy_compress(sa_codec, src);
      common::Bytes out(src.size());
      ASSERT_EQ(chain_codec.decompress(comp, out), src.size());
      EXPECT_EQ(out, src);
    }
  }
}

TEST(SuffixHeavyLz, OptimalParseIsNoWorseThanTheChainFinder) {
  // Greedy-longest with true LPF matches should not lose to the
  // depth-limited chain heuristic by more than adaptive-model noise.
  const HeavyLz sa_codec(HeavyFinder::kSuffixArray);
  const HeavyLz chain_codec;
  for (const auto c :
       {corpus::Compressibility::kHigh, corpus::Compressibility::kModerate}) {
    const common::Bytes src = corpus_bytes(c, 128 * 1024);
    const std::size_t sa_size = heavy_compress(sa_codec, src).size();
    const std::size_t chain_size = heavy_compress(chain_codec, src).size();
    EXPECT_LE(sa_size, chain_size + chain_size / 50)
        << "suffix parse lost >2% on corpus " << static_cast<int>(c);
  }
}

// --- golden wire vectors -----------------------------------------------------

std::string data_path(const std::string& name) {
  return std::string(STRATO_TEST_DATA_DIR) + "/" + name;
}

bool regen() { return std::getenv("STRATO_REGEN_GOLDEN") != nullptr; }

std::string to_hex(const common::Bytes& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2 + bytes.size() / 16);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    out.push_back(digits[bytes[i] >> 4]);
    out.push_back(digits[bytes[i] & 0xF]);
    if (i % 32 == 31) out.push_back('\n');
  }
  if (!out.empty() && out.back() != '\n') out.push_back('\n');
  return out;
}

common::Bytes from_hex(const std::string& text) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  common::Bytes out;
  int hi = -1;
  for (const char c : text) {
    const int v = nibble(c);
    if (v < 0) continue;  // whitespace
    if (hi < 0) {
      hi = v;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | v));
      hi = -1;
    }
  }
  return out;
}

common::Bytes golden(const std::string& name, const common::Bytes& current) {
  const std::string path = data_path(name);
  if (regen()) {
    std::ofstream out(path);
    out << to_hex(current);
    return current;
  }
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing golden " << path
                         << " (run with STRATO_REGEN_GOLDEN=1 to create)";
  std::stringstream ss;
  ss << in.rdbuf();
  return from_hex(ss.str());
}

TEST(SuffixHeavyLz, GoldenWireVectors) {
  const HeavyLz sa_codec(HeavyFinder::kSuffixArray);
  const HeavyLz decoder;
  const struct {
    const char* file;
    corpus::Compressibility corpus;
  } cases[] = {
      {"suffix_high.hex", corpus::Compressibility::kHigh},
      {"suffix_moderate.hex", corpus::Compressibility::kModerate},
      {"suffix_low.hex", corpus::Compressibility::kLow},
  };
  for (const auto& tc : cases) {
    const common::Bytes payload = corpus_bytes(tc.corpus, 16 * 1024);
    const common::Bytes current = heavy_compress(sa_codec, payload);
    const common::Bytes expected = golden(tc.file, current);
    // Encoder determinism: today's encoder reproduces the golden bytes.
    EXPECT_EQ(current, expected) << tc.file;
    // Decoder compatibility: the golden bytes decode with the unchanged
    // HEAVY decoder to the reference payload.
    common::Bytes out(payload.size());
    ASSERT_EQ(decoder.decompress(expected, out), payload.size()) << tc.file;
    EXPECT_EQ(out, payload) << tc.file;
  }
}

}  // namespace
}  // namespace strato::compress
