// JobGraph validation and the Executor.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>

#include "dataflow/executor.h"

namespace strato::dataflow {
namespace {

/// Emits `count` copies of a fixed payload.
class SourceTask final : public Task {
 public:
  SourceTask(int count, std::string payload)
      : count_(count), payload_(std::move(payload)) {}
  void run(TaskContext& ctx) override {
    for (int i = 0; i < count_; ++i) {
      ctx.output(0).emit(common::as_bytes(payload_));
    }
  }

 private:
  int count_;
  std::string payload_;
};

/// Forwards records, uppercasing ASCII letters.
class UpperTask final : public Task {
 public:
  void run(TaskContext& ctx) override {
    while (auto rec = ctx.input(0).next()) {
      for (auto& b : *rec) {
        if (b >= 'a' && b <= 'z') b = static_cast<std::uint8_t>(b - 32);
      }
      ctx.output(0).emit(*rec);
    }
  }
};

/// Counts records and bytes.
class SinkTask final : public Task {
 public:
  explicit SinkTask(std::atomic<int>& count) : count_(count) {}
  void run(TaskContext& ctx) override {
    for (std::size_t i = 0; i < ctx.num_inputs(); ++i) {
      while (auto rec = ctx.input(i).next()) count_.fetch_add(1);
    }
  }

 private:
  std::atomic<int>& count_;
};

class FailingTask final : public Task {
 public:
  void run(TaskContext&) override { throw std::runtime_error("task failed"); }
};

TEST(JobGraph, TopologicalOrderRespectsEdges) {
  JobGraph g;
  const int a = g.add_vertex("a", [] { return nullptr; });
  const int b = g.add_vertex("b", [] { return nullptr; });
  const int c = g.add_vertex("c", [] { return nullptr; });
  g.connect(a, b, ChannelType::kInMemory);
  g.connect(b, c, ChannelType::kInMemory);
  g.connect(a, c, ChannelType::kInMemory);
  EXPECT_TRUE(g.is_dag());
  const auto order = g.topo_order();
  ASSERT_EQ(order.size(), 3u);
  const auto pos = [&](int v) {
    return std::find(order.begin(), order.end(), v) - order.begin();
  };
  EXPECT_LT(pos(a), pos(b));
  EXPECT_LT(pos(b), pos(c));
}

TEST(JobGraph, DetectsCycle) {
  JobGraph g;
  const int a = g.add_vertex("a", [] { return nullptr; });
  const int b = g.add_vertex("b", [] { return nullptr; });
  g.connect(a, b, ChannelType::kInMemory);
  g.connect(b, a, ChannelType::kInMemory);
  EXPECT_FALSE(g.is_dag());
  EXPECT_THROW(g.topo_order(), std::runtime_error);
}

TEST(JobGraph, RejectsBadEdges) {
  JobGraph g;
  const int a = g.add_vertex("a", [] { return nullptr; });
  EXPECT_THROW(g.connect(a, a, ChannelType::kInMemory),
               std::invalid_argument);
  EXPECT_THROW(g.connect(a, 7, ChannelType::kInMemory), std::out_of_range);
  EXPECT_THROW(g.connect(-1, a, ChannelType::kInMemory), std::out_of_range);
}

TEST(Executor, LinearPipelineInMemory) {
  std::atomic<int> received{0};
  JobGraph g;
  const int src = g.add_vertex(
      "src", [] { return std::make_unique<SourceTask>(500, "record"); });
  const int mid = g.add_vertex("upper", [] {
    return std::make_unique<UpperTask>();
  });
  const int dst = g.add_vertex(
      "sink", [&] { return std::make_unique<SinkTask>(received); });
  g.connect(src, mid, ChannelType::kInMemory);
  g.connect(mid, dst, ChannelType::kInMemory);

  Executor exec;
  const auto stats = exec.execute(g);
  ASSERT_TRUE(stats.ok()) << stats.error;
  EXPECT_EQ(received.load(), 500);
  ASSERT_EQ(stats.channels.size(), 2u);
  EXPECT_EQ(stats.channels[0].records, 500u);
  EXPECT_EQ(stats.channels[1].records, 500u);
}

TEST(Executor, NetworkEdgeWithAdaptiveCompression) {
  std::atomic<int> received{0};
  JobGraph g;
  const int src = g.add_vertex("src", [] {
    return std::make_unique<SourceTask>(2000,
                                        std::string(1000, 'x'));  // repetitive
  });
  const int dst = g.add_vertex(
      "sink", [&] { return std::make_unique<SinkTask>(received); });
  g.connect(src, dst, ChannelType::kNetwork,
            CompressionSpec::adaptive_default(common::SimTime::ms(20)));

  ExecutorConfig cfg;
  cfg.shared_link_bytes_s = 200e6;
  Executor exec(cfg);
  const auto stats = exec.execute(g);
  ASSERT_TRUE(stats.ok()) << stats.error;
  EXPECT_EQ(received.load(), 2000);
  EXPECT_EQ(stats.channels[0].raw_bytes, 2000u * 1004u);
}

TEST(Executor, FanOutFanIn) {
  std::atomic<int> received{0};
  JobGraph g;
  const int src = g.add_vertex(
      "src", [] { return std::make_unique<SourceTask>(300, "fan"); });
  const int up = g.add_vertex("upper", [] {
    return std::make_unique<UpperTask>();
  });
  const int dst = g.add_vertex(
      "sink", [&] { return std::make_unique<SinkTask>(received); });
  // src -> upper -> sink plus a direct src -> sink edge. The source only
  // writes to output(0); use a second source for the direct edge instead.
  const int src2 = g.add_vertex(
      "src2", [] { return std::make_unique<SourceTask>(200, "direct"); });
  g.connect(src, up, ChannelType::kInMemory);
  g.connect(up, dst, ChannelType::kInMemory);
  g.connect(src2, dst, ChannelType::kInMemory);

  Executor exec;
  const auto stats = exec.execute(g);
  ASSERT_TRUE(stats.ok()) << stats.error;
  EXPECT_EQ(received.load(), 500);
}

TEST(Executor, FileEdgeSequencesWriterBeforeReader) {
  std::atomic<int> received{0};
  JobGraph g;
  const int src = g.add_vertex(
      "src", [] { return std::make_unique<SourceTask>(100, "spilled"); });
  const int dst = g.add_vertex(
      "sink", [&] { return std::make_unique<SinkTask>(received); });
  g.connect(src, dst, ChannelType::kFile, CompressionSpec::fixed(1));

  Executor exec;
  const auto stats = exec.execute(g);
  ASSERT_TRUE(stats.ok()) << stats.error;
  EXPECT_EQ(received.load(), 100);
}

TEST(Executor, TaskFailureIsReportedAndJobTerminates) {
  std::atomic<int> received{0};
  JobGraph g;
  const int bad = g.add_vertex("bad", [] {
    return std::make_unique<FailingTask>();
  });
  const int dst = g.add_vertex(
      "sink", [&] { return std::make_unique<SinkTask>(received); });
  g.connect(bad, dst, ChannelType::kInMemory);

  Executor exec;
  const auto stats = exec.execute(g);
  EXPECT_FALSE(stats.ok());
  EXPECT_NE(stats.error.find("bad"), std::string::npos);
  EXPECT_NE(stats.error.find("task failed"), std::string::npos);
  EXPECT_EQ(received.load(), 0);  // sink saw EOF, not a hang
}

TEST(Executor, CyclicGraphRefused) {
  JobGraph g;
  const int a = g.add_vertex("a", [] { return nullptr; });
  const int b = g.add_vertex("b", [] { return nullptr; });
  g.connect(a, b, ChannelType::kInMemory);
  g.connect(b, a, ChannelType::kInMemory);
  Executor exec;
  EXPECT_FALSE(exec.execute(g).ok());
}

}  // namespace
}  // namespace strato::dataflow
