// Block framing: self-contained frames, checksums, stored fallback,
// incremental assembly under arbitrary chunking, registry resolution.
#include <gtest/gtest.h>

#include "common/checksum.h"
#include "common/rng.h"
#include "compress/framing.h"
#include "compress/heavy_lz.h"
#include "compress/lz77.h"
#include "compress/registry.h"
#include "corpus/generator.h"

namespace strato::compress {
namespace {

const CodecRegistry& reg() { return CodecRegistry::standard(); }

TEST(Registry, StandardLadder) {
  ASSERT_EQ(reg().level_count(), 4u);
  EXPECT_EQ(reg().level(0).label, "NO");
  EXPECT_EQ(reg().level(1).label, "LIGHT");
  EXPECT_EQ(reg().level(2).label, "MEDIUM");
  EXPECT_EQ(reg().level(3).label, "HEAVY");
  for (std::size_t l = 0; l < 4; ++l) {
    EXPECT_EQ(reg().level(l).level, static_cast<int>(l));
    EXPECT_NE(reg().level(l).codec, nullptr);
  }
}

TEST(Registry, CodecByIdResolvesAllRegistered) {
  EXPECT_EQ(reg().codec_by_id(kCodecNull).name(), "null");
  EXPECT_EQ(reg().codec_by_id(kCodecFastLz).name(), "fastlz");
  EXPECT_EQ(reg().codec_by_id(kCodecMediumLz).name(), "mediumlz");
  EXPECT_EQ(reg().codec_by_id(kCodecHeavyLz).name(), "heavylz");
  EXPECT_THROW((void)reg().codec_by_id(99), CodecError);
}

TEST(Registry, NullAlwaysResolvableEvenWhenEmpty) {
  CodecRegistry empty;
  EXPECT_EQ(empty.codec_by_id(kCodecNull).name(), "null");
  EXPECT_EQ(empty.level_count(), 0u);
}

TEST(Framing, HeaderRoundTrip) {
  auto gen = corpus::make_generator(corpus::Compressibility::kModerate, 1);
  const auto payload = corpus::take(*gen, 50000);
  const auto frame = encode_block(*reg().level(1).codec, 1, payload);
  const FrameHeader hdr = parse_header(frame);
  EXPECT_EQ(hdr.level, 1);
  EXPECT_EQ(hdr.codec_id, kCodecFastLz);
  EXPECT_EQ(hdr.raw_size, payload.size());
  EXPECT_EQ(hdr.comp_size + kFrameHeaderSize, frame.size());
  EXPECT_EQ(hdr.checksum, common::xxh64(payload));
  EXPECT_EQ(decode_block(frame, reg()), payload);
}

class FramingAllLevels : public ::testing::TestWithParam<int> {};

TEST_P(FramingAllLevels, RoundTripAllCorpora) {
  const int level = GetParam();
  for (const auto c :
       {corpus::Compressibility::kHigh, corpus::Compressibility::kModerate,
        corpus::Compressibility::kLow}) {
    auto gen = corpus::make_generator(c, 4);
    const auto payload = corpus::take(*gen, kDefaultBlockSize);
    const auto frame =
        encode_block(*reg().level(static_cast<std::size_t>(level)).codec,
                     static_cast<std::uint8_t>(level), payload);
    EXPECT_EQ(decode_block(frame, reg()), payload);
    EXPECT_EQ(parse_header(frame).level, level);
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, FramingAllLevels, ::testing::Range(0, 4));

TEST(Framing, StoredFallbackOnIncompressible) {
  common::Xoshiro256 rng(1);
  common::Bytes payload(4096);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
  // Random data through a real codec: frame must fall back to stored and
  // never expand beyond header + raw.
  const auto frame = encode_block(*reg().level(1).codec, 1, payload);
  const FrameHeader hdr = parse_header(frame);
  EXPECT_EQ(hdr.codec_id, kCodecNull);  // fallback
  EXPECT_EQ(hdr.level, 1);              // policy's level is preserved
  EXPECT_EQ(frame.size(), kFrameHeaderSize + payload.size());
  EXPECT_EQ(decode_block(frame, reg()), payload);
}

TEST(Framing, EmptyPayload) {
  const auto frame = encode_block(*reg().level(2).codec, 2, {});
  EXPECT_EQ(decode_block(frame, reg()).size(), 0u);
}

TEST(Framing, BadMagicRejected) {
  auto frame = encode_block(*reg().level(0).codec, 0,
                            common::as_bytes("payload"));
  frame[0] ^= 0xFF;
  EXPECT_THROW(parse_header(frame), CodecError);
  EXPECT_THROW(decode_block(frame, reg()), CodecError);
}

TEST(Framing, TruncatedHeaderRejected) {
  const common::Bytes tiny(kFrameHeaderSize - 1, 0);
  EXPECT_THROW(parse_header(tiny), CodecError);
}

TEST(Framing, SizeMismatchRejected) {
  auto frame = encode_block(*reg().level(1).codec, 1,
                            common::as_bytes("hello hello hello hello"));
  frame.push_back(0);  // trailing garbage
  EXPECT_THROW(decode_block(frame, reg()), CodecError);
}

TEST(Framing, PayloadCorruptionNeverYieldsWrongBytes) {
  // The checksum guarantee: a corrupted frame either throws or — when the
  // flip happens to be output-neutral (e.g. a match offset pointing into
  // an identical run) — still decodes to the exact original payload.
  // Silently wrong output must be impossible.
  auto gen = corpus::make_generator(corpus::Compressibility::kHigh, 2);
  const auto payload = corpus::take(*gen, 20000);
  common::Xoshiro256 rng(9);
  int detected = 0;
  for (int trial = 0; trial < 50; ++trial) {
    auto frame = encode_block(*reg().level(1).codec, 1, payload);
    // Corrupt a random payload byte (past the header).
    const std::size_t pos =
        kFrameHeaderSize + rng.below(frame.size() - kFrameHeaderSize);
    frame[pos] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    try {
      const auto out = decode_block(frame, reg());
      EXPECT_EQ(out, payload) << "trial " << trial;
    } catch (const CodecError&) {
      ++detected;
    }
  }
  EXPECT_GT(detected, 25);  // the vast majority of flips are detected
}

TEST(Framing, ChecksumFieldCorruptionCaught) {
  const auto payload = common::as_bytes("some payload bytes here");
  auto frame = encode_block(*reg().level(0).codec, 0, payload);
  frame[16] ^= 1;  // checksum field
  EXPECT_THROW(decode_block(frame, reg()), CodecError);
}

TEST(Framing, ReservedBytesMustBeZero) {
  auto frame = encode_block(*reg().level(0).codec, 0,
                            common::as_bytes("payload"));
  frame[6] = 1;
  EXPECT_THROW(parse_header(frame), CodecError);
  frame[6] = 0;
  frame[7] = 0x80;
  EXPECT_THROW(parse_header(frame), CodecError);
}

TEST(Framing, ImplausibleRawSizeRejected) {
  // A tampered raw-size field far beyond any real block must be rejected
  // at header-parse time — decode_block would otherwise allocate a
  // multi-GB buffer and the assembler would buffer forever for a payload
  // that can never arrive.
  auto frame = encode_block(*reg().level(1).codec, 1,
                            common::as_bytes("some compressible payload"));
  common::store_le32(frame.data() + 8, 0xF0000000u);  // ~4 GB claimed
  EXPECT_THROW(parse_header(frame), CodecError);
  EXPECT_THROW(decode_block(frame, reg()), CodecError);
}

TEST(Framing, CompSizeExceedingRawSizeRejected) {
  // The encoder's stored fallback guarantees comp <= raw on every legal
  // frame; a larger declared comp size is always tampering.
  const auto payload = common::as_bytes("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
  auto frame = encode_block(*reg().level(1).codec, 1, payload);
  common::store_le32(frame.data() + 12,
                     static_cast<std::uint32_t>(payload.size()) + 100);
  EXPECT_THROW(parse_header(frame), CodecError);
}

TEST(Framing, DeclaredLengthBeyondBufferIsCleanError) {
  // decode_block on a frame whose declared comp size exceeds the actual
  // buffer: clean CodecError, no overread (ASan-verified via
  // scripts/check_asan.sh).
  const auto payload = common::as_bytes("block payload for length check");
  auto frame = encode_block(*reg().level(0).codec, 0, payload);
  common::store_le32(frame.data() + 12,
                     static_cast<std::uint32_t>(payload.size() - 10));
  EXPECT_THROW(decode_block(frame, reg()), CodecError);  // size mismatch

  // Same header fed to the assembler: it must wait for the declared bytes
  // (bounded by kMaxFramePayload), not read past what was fed.
  auto frame2 = encode_block(*reg().level(0).codec, 0, payload);
  common::store_le32(frame2.data() + 12,
                     static_cast<std::uint32_t>(payload.size()) + 7);
  // keep raw >= comp so the plausibility checks pass
  common::store_le32(frame2.data() + 8,
                     static_cast<std::uint32_t>(payload.size()) + 7);
  FrameAssembler asm_(reg());
  asm_.feed(frame2);
  EXPECT_FALSE(asm_.next_block().has_value());  // starving, not overreading
  EXPECT_EQ(asm_.pending(), frame2.size());
}

// --- FrameAssembler -----------------------------------------------------------

TEST(FrameAssembler, MultipleBlocksAtOnce) {
  FrameAssembler asm_(reg());
  common::Bytes wire;
  std::vector<common::Bytes> payloads;
  for (int i = 0; i < 5; ++i) {
    auto gen = corpus::make_generator(corpus::Compressibility::kModerate,
                                      static_cast<std::uint64_t>(i + 1));
    payloads.push_back(corpus::take(*gen, 10000 + i * 777));
    const auto frame = encode_block(*reg().level(1).codec, 1, payloads.back());
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  asm_.feed(wire);
  for (const auto& expected : payloads) {
    const auto block = asm_.next_block();
    ASSERT_TRUE(block.has_value());
    EXPECT_EQ(*block, expected);
    EXPECT_EQ(asm_.last_header().level, 1);
  }
  EXPECT_FALSE(asm_.next_block().has_value());
  EXPECT_EQ(asm_.pending(), 0u);
}

class AssemblerChunking : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AssemblerChunking, ArbitraryChunkingReassembles) {
  common::Xoshiro256 rng(GetParam());
  FrameAssembler asm_(reg());
  common::Bytes wire;
  std::vector<common::Bytes> payloads;
  for (int i = 0; i < 8; ++i) {
    auto gen = corpus::make_generator(
        static_cast<corpus::Compressibility>(rng.below(3)), rng());
    payloads.push_back(corpus::take(*gen, 1 + rng.below(60000)));
    const int level = 1 + static_cast<int>(rng.below(3));
    const auto frame =
        encode_block(*reg().level(static_cast<std::size_t>(level)).codec,
                     static_cast<std::uint8_t>(level), payloads.back());
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  std::size_t got = 0;
  std::size_t off = 0;
  while (off < wire.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng.below(4096), wire.size() - off);
    asm_.feed(common::ByteSpan(wire.data() + off, n));
    off += n;
    while (auto block = asm_.next_block()) {
      ASSERT_LT(got, payloads.size());
      EXPECT_EQ(*block, payloads[got]);
      ++got;
    }
  }
  EXPECT_EQ(got, payloads.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssemblerChunking,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(FrameAssembler, GarbageInputThrows) {
  FrameAssembler asm_(reg());
  common::Bytes garbage(100, 0xAA);
  asm_.feed(garbage);
  EXPECT_THROW(asm_.next_block(), CodecError);
}

}  // namespace
}  // namespace strato::compress
