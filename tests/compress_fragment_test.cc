// Short-read/short-write fragment torture.
//
// A TCP stack may hand the receiver any re-chunking of the sender's
// writes: 1-byte reads, reads that stop one byte short of a header field
// ("lane straddling"), or arbitrary random splits. Every framed-stream
// consumer — the serial FrameAssembler and the decode pipeline's feed()
// and recv_span()/commit() paths — must deliver the identical block
// sequence under all of them. The writer-side mirror: a sink that
// re-fragments every write must leave the wire bytes unchanged.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "compress/decode_pipeline.h"
#include "compress/framing.h"
#include "compress/registry.h"
#include "core/policy.h"
#include "core/stream.h"
#include "corpus/generator.h"
#include "verify/seed.h"

namespace strato::compress {
namespace {

std::vector<common::Bytes> make_blocks(std::size_t count,
                                       std::size_t max_size,
                                       std::uint64_t seed) {
  auto gen = corpus::make_generator(corpus::Compressibility::kModerate, seed);
  common::Xoshiro256 rng(seed ^ 0x9E3779B97F4A7C15ULL);
  std::vector<common::Bytes> blocks;
  blocks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Sizes from 1 byte up, biased small so frames pack densely enough
    // that a single read can straddle several frame boundaries.
    blocks.push_back(corpus::take(*gen, 1 + rng.below(max_size)));
  }
  return blocks;
}

common::Bytes make_wire(const CodecRegistry& registry,
                        const std::vector<common::Bytes>& blocks) {
  common::Bytes wire;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const std::size_t level = i % registry.level_count();
    const common::Bytes frame = encode_block(
        *registry.level(level).codec, static_cast<std::uint8_t>(level),
        blocks[i]);
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  return wire;
}

/// Split points for one torture schedule. Always includes 0 and size.
std::vector<std::size_t> random_splits(std::size_t size,
                                       common::Xoshiro256& rng) {
  std::vector<std::size_t> cuts{0, size};
  const std::size_t n = 1 + rng.below(96);
  for (std::size_t i = 0; i < n; ++i) cuts.push_back(rng.below(size + 1));
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  return cuts;
}

/// Cuts at every distance d in [-2, 2] around each frame-header lane
/// boundary (magic/level/codec/sizes/checksum edges at offsets 4, 5, 6,
/// 8, 12, 16, 24) of each frame — the partial-header parse paths.
std::vector<std::size_t> lane_straddling_splits(
    const CodecRegistry& registry, common::ByteSpan wire) {
  std::vector<std::size_t> cuts{0, wire.size()};
  std::size_t off = 0;
  while (off + kFrameHeaderSize <= wire.size()) {
    const FrameHeader hdr =
        parse_header(wire.subspan(off, wire.size() - off));
    for (const std::size_t lane : {std::size_t{4}, std::size_t{5},
                                   std::size_t{6}, std::size_t{8},
                                   std::size_t{12}, std::size_t{16},
                                   kFrameHeaderSize}) {
      for (int d = -2; d <= 2; ++d) {
        const std::int64_t cut =
            static_cast<std::int64_t>(off + lane) + d;
        if (cut > 0 && cut < static_cast<std::int64_t>(wire.size())) {
          cuts.push_back(static_cast<std::size_t>(cut));
        }
      }
    }
    off += kFrameHeaderSize + hdr.comp_size;
  }
  (void)registry;
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  return cuts;
}

/// Feed `wire` to a FrameAssembler chunked at `cuts`; collect blocks.
std::vector<common::Bytes> run_assembler(const CodecRegistry& registry,
                                         common::ByteSpan wire,
                                         const std::vector<std::size_t>& cuts) {
  FrameAssembler assembler(registry);
  std::vector<common::Bytes> out;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    assembler.feed(wire.subspan(cuts[i], cuts[i + 1] - cuts[i]));
    while (auto block = assembler.next_block()) out.push_back(*block);
  }
  EXPECT_EQ(assembler.pending(), 0u);
  return out;
}

/// Same schedule through the decode pipeline's zero-copy receive path:
/// every chunk lands via recv_span()/commit() (memcpy standing in for the
/// socket), possibly split further when the span is smaller than the
/// chunk.
std::vector<common::Bytes> run_recv_span(const CodecRegistry& registry,
                                         DecodePipelineConfig cfg,
                                         common::ByteSpan wire,
                                         const std::vector<std::size_t>& cuts) {
  ParallelBlockDecodePipeline pipeline(registry, cfg);
  std::vector<common::Bytes> out;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    std::size_t pos = cuts[i];
    const std::size_t end = cuts[i + 1];
    while (pos < end) {
      const common::MutableByteSpan span = pipeline.recv_span(1);
      const std::size_t take = std::min(span.size(), end - pos);
      std::memcpy(span.data(), wire.data() + pos, take);
      pipeline.commit(take);
      pos += take;
      while (auto block = pipeline.next_block()) {
        out.emplace_back(block->data.begin(), block->data.end());
      }
    }
  }
  EXPECT_EQ(pipeline.pending(), 0u);
  return out;
}

class FragmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    seed_ = verify::announce_seed(
        "STRATO_FRAG_SEED", verify::seed_from_env("STRATO_FRAG_SEED", 7));
  }
  std::uint64_t seed_ = 0;
};

TEST_F(FragmentTest, AssemblerSurvivesOneByteFeeds) {
  const auto& registry = CodecRegistry::standard();
  const auto blocks = make_blocks(12, 4096, seed_);
  const auto wire = make_wire(registry, blocks);
  std::vector<std::size_t> cuts(wire.size() + 1);
  for (std::size_t i = 0; i <= wire.size(); ++i) cuts[i] = i;
  EXPECT_EQ(run_assembler(registry, wire, cuts), blocks);
}

TEST_F(FragmentTest, AssemblerSurvivesLaneStraddlingFeeds) {
  const auto& registry = CodecRegistry::standard();
  const auto blocks = make_blocks(16, 2048, seed_ + 1);
  const auto wire = make_wire(registry, blocks);
  const auto cuts = lane_straddling_splits(registry, wire);
  ASSERT_GT(cuts.size(), blocks.size());  // several cuts per frame
  EXPECT_EQ(run_assembler(registry, wire, cuts), blocks);
}

TEST_F(FragmentTest, AssemblerSurvivesRandomSplitSchedules) {
  const auto& registry = CodecRegistry::standard();
  const auto blocks = make_blocks(20, 8192, seed_ + 2);
  const auto wire = make_wire(registry, blocks);
  common::Xoshiro256 rng(seed_ + 2);
  for (int round = 0; round < 20; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    EXPECT_EQ(run_assembler(registry, wire, random_splits(wire.size(), rng)),
              blocks);
  }
}

TEST_F(FragmentTest, RecvSpanMatchesFeedUnderTorture) {
  // The zero-copy receive path must be schedule-invariant too — same
  // blocks under 1-byte commits, lane-straddling commits and random
  // schedules, at inline and threaded worker counts.
  const auto& registry = CodecRegistry::standard();
  const auto blocks = make_blocks(18, 4096, seed_ + 3);
  const auto wire = make_wire(registry, blocks);
  common::Xoshiro256 rng(seed_ + 3);

  std::vector<std::vector<std::size_t>> schedules;
  std::vector<std::size_t> bytewise(wire.size() + 1);
  for (std::size_t i = 0; i <= wire.size(); ++i) bytewise[i] = i;
  schedules.push_back(std::move(bytewise));
  schedules.push_back(lane_straddling_splits(registry, wire));
  for (int round = 0; round < 6; ++round) {
    schedules.push_back(random_splits(wire.size(), rng));
  }

  for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
    DecodePipelineConfig cfg;
    cfg.worker_count = workers;
    // A segment far smaller than the wire forces seal/wraparound under
    // every schedule.
    cfg.segment_size = 1024;
    for (std::size_t s = 0; s < schedules.size(); ++s) {
      SCOPED_TRACE("workers=" + std::to_string(workers) +
                   " schedule=" + std::to_string(s));
      EXPECT_EQ(run_recv_span(registry, cfg, wire, schedules[s]), blocks);
    }
  }
}

TEST_F(FragmentTest, CommitMisuseIsRejected) {
  const auto& registry = CodecRegistry::standard();
  ParallelBlockDecodePipeline pipeline(registry, {});
  // commit() without a recv_span() has nothing to account against.
  EXPECT_THROW(pipeline.commit(1), std::logic_error);
  const auto span = pipeline.recv_span(16);
  EXPECT_THROW(pipeline.commit(span.size() + 1), std::logic_error);
  pipeline.commit(0);  // 0 is always a no-op
}

/// ByteSink that forwards every write split into random fragments —
/// the writer-side short-write torture (a socket that takes a few bytes
/// per syscall).
class FragmentingSink final : public core::ByteSink {
 public:
  FragmentingSink(core::ByteSink& inner, std::uint64_t seed)
      : inner_(inner), rng_(seed) {}

  void write(common::ByteSpan data) override {
    std::size_t pos = 0;
    while (pos < data.size()) {
      const std::size_t take =
          1 + rng_.below(std::max<std::size_t>(data.size() - pos, 1));
      inner_.write(data.subspan(pos, std::min(take, data.size() - pos)));
      pos += take;
    }
  }

 private:
  core::ByteSink& inner_;
  common::Xoshiro256 rng_;
};

/// ByteSink collecting everything it sees (the "wire").
class CaptureSink final : public core::ByteSink {
 public:
  void write(common::ByteSpan data) override {
    wire_.insert(wire_.end(), data.begin(), data.end());
  }
  [[nodiscard]] const common::Bytes& wire() const { return wire_; }

 private:
  common::Bytes wire_;
};

TEST_F(FragmentTest, FragmentedWriterLeavesWireIdentical) {
  const auto& registry = CodecRegistry::standard();
  auto gen =
      corpus::make_generator(corpus::Compressibility::kModerate, seed_ + 4);
  const auto payload = corpus::take(*gen, 300000);

  const auto run = [&](bool fragment) {
    CaptureSink capture;
    FragmentingSink fragmenting(capture, seed_ + 4);
    core::ByteSink& sink =
        fragment ? static_cast<core::ByteSink&>(fragmenting)
                 : static_cast<core::ByteSink&>(capture);
    core::StaticPolicy policy(2, "static-2");
    common::ManualClock clock;
    core::CompressingWriter writer(sink, registry, policy, clock,
                                   /*block_size=*/32 * 1024);
    writer.write(payload);
    writer.flush();
    return capture.wire();
  };

  const common::Bytes direct = run(false);
  const common::Bytes fragmented = run(true);
  EXPECT_EQ(direct, fragmented);

  // And the fragmented wire still decodes to the original payload.
  FrameAssembler assembler(registry);
  assembler.feed(fragmented);
  common::Bytes decoded;
  while (auto block = assembler.next_block()) {
    decoded.insert(decoded.end(), block->begin(), block->end());
  }
  EXPECT_EQ(decoded, payload);
}

}  // namespace
}  // namespace strato::compress
