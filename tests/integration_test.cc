// End-to-end: the paper's sample job (sender -> TCP-like channel ->
// receiver, Section IV-A) over the real codecs, real generators and the
// real-time throttled transport, at laptop scale.
#include <gtest/gtest.h>

#include <atomic>

#include "common/checksum.h"
#include "corpus/generator.h"
#include "dataflow/executor.h"

namespace strato {
namespace {

using dataflow::ChannelType;
using dataflow::CompressionSpec;
using dataflow::JobGraph;
using dataflow::Task;
using dataflow::TaskContext;

/// The paper's sender task: repeatedly writes a test stream until a total
/// volume has been generated.
class SenderTask final : public Task {
 public:
  SenderTask(corpus::Compressibility data, std::size_t total,
             std::atomic<std::uint64_t>& checksum)
      : data_(data), total_(total), checksum_(checksum) {}

  void run(TaskContext& ctx) override {
    auto gen = corpus::make_generator(data_, 123);
    common::Xxh64State hash;
    std::size_t sent = 0;
    common::Bytes record(8192);
    while (sent < total_) {
      const std::size_t n = std::min(record.size(), total_ - sent);
      gen->generate(common::MutableByteSpan(record).subspan(0, n));
      ctx.output(0).emit(common::ByteSpan(record.data(), n));
      hash.update(common::ByteSpan(record.data(), n));
      sent += n;
    }
    checksum_.store(hash.digest());
  }

 private:
  corpus::Compressibility data_;
  std::size_t total_;
  std::atomic<std::uint64_t>& checksum_;
};

/// The receiver task: consumes and checksums everything.
class ReceiverTask final : public Task {
 public:
  ReceiverTask(std::atomic<std::uint64_t>& checksum,
               std::atomic<std::uint64_t>& bytes)
      : checksum_(checksum), bytes_(bytes) {}

  void run(TaskContext& ctx) override {
    common::Xxh64State hash;
    std::uint64_t total = 0;
    while (auto rec = ctx.input(0).next()) {
      hash.update(*rec);
      total += rec->size();
    }
    checksum_.store(hash.digest());
    bytes_.store(total);
  }

 private:
  std::atomic<std::uint64_t>& checksum_;
  std::atomic<std::uint64_t>& bytes_;
};

struct JobOutcome {
  double wall_seconds = 0.0;
  dataflow::ChannelStats channel;
  bool checksums_match = false;
  std::uint64_t bytes = 0;
};

JobOutcome run_sample_job(corpus::Compressibility data, std::size_t total,
                          const CompressionSpec& spec,
                          double link_bytes_s) {
  std::atomic<std::uint64_t> sent_hash{0}, recv_hash{1}, recv_bytes{0};
  JobGraph g;
  const int sender = g.add_vertex("sender", [&, data, total] {
    return std::make_unique<SenderTask>(data, total, sent_hash);
  });
  const int receiver = g.add_vertex("receiver", [&] {
    return std::make_unique<ReceiverTask>(recv_hash, recv_bytes);
  });
  g.connect(sender, receiver, ChannelType::kNetwork, spec);

  dataflow::ExecutorConfig cfg;
  cfg.shared_link_bytes_s = link_bytes_s;
  dataflow::Executor exec(cfg);
  const auto stats = exec.execute(g);
  EXPECT_TRUE(stats.ok()) << stats.error;

  JobOutcome out;
  out.wall_seconds = stats.wall_seconds;
  out.channel = stats.channels.at(0);
  out.checksums_match = sent_hash.load() == recv_hash.load();
  out.bytes = recv_bytes.load();
  return out;
}

constexpr std::size_t kTotal = 24 << 20;   // 24 MB per run (CI-friendly)
constexpr double kSlowLink = 10e6;         // 10 MB/s "shared" link

TEST(SampleJob, DataIntegrityAcrossAllPolicies) {
  for (const auto& spec :
       {CompressionSpec::none(), CompressionSpec::fixed(1),
        CompressionSpec::fixed(2), CompressionSpec::fixed(3),
        CompressionSpec::adaptive_default(common::SimTime::ms(100))}) {
    const auto out = run_sample_job(corpus::Compressibility::kModerate,
                                    4 << 20, spec, 100e6);
    EXPECT_TRUE(out.checksums_match);
    EXPECT_EQ(out.bytes, 4u << 20);
  }
}

TEST(SampleJob, AdaptiveCompressesHighDataOnSlowLink) {
  const auto out = run_sample_job(
      corpus::Compressibility::kHigh, kTotal,
      CompressionSpec::adaptive_default(common::SimTime::ms(200)), kSlowLink);
  ASSERT_TRUE(out.checksums_match);
  // The controller must have escaped level 0: most blocks compressed.
  std::uint64_t compressed_blocks = 0, total_blocks = 0;
  for (std::size_t l = 0; l < out.channel.blocks_per_level.size(); ++l) {
    total_blocks += out.channel.blocks_per_level[l];
    if (l > 0) compressed_blocks += out.channel.blocks_per_level[l];
  }
  EXPECT_GT(total_blocks, 0u);
  EXPECT_GT(compressed_blocks, total_blocks / 2);
  // And the wire must carry far fewer bytes than the application wrote.
  EXPECT_LT(out.channel.wire_bytes, out.channel.raw_bytes / 2);
}

TEST(SampleJob, AdaptiveBeatsNoCompressionOnSlowLinkWithHighData) {
  // The paper's speedup claim at miniature scale: highly compressible
  // data over a starved link.
  const auto plain = run_sample_job(corpus::Compressibility::kHigh, kTotal,
                                    CompressionSpec::none(), kSlowLink);
  const auto adaptive = run_sample_job(
      corpus::Compressibility::kHigh, kTotal,
      CompressionSpec::adaptive_default(common::SimTime::ms(200)), kSlowLink);
  ASSERT_TRUE(plain.checksums_match);
  ASSERT_TRUE(adaptive.checksums_match);
  EXPECT_LT(adaptive.wall_seconds, plain.wall_seconds * 0.7);
}

TEST(SampleJob, AdaptiveStaysNearNoCompressionOnIncompressibleData) {
  // On LOW data the adaptive scheme must not pay much more than NO —
  // the "at most 22 % worse" claim, with slack for the tiny scale and
  // wall-clock noise.
  const auto plain = run_sample_job(corpus::Compressibility::kLow, kTotal,
                                    CompressionSpec::none(), kSlowLink);
  const auto adaptive = run_sample_job(
      corpus::Compressibility::kLow, kTotal,
      CompressionSpec::adaptive_default(common::SimTime::ms(200)), kSlowLink);
  ASSERT_TRUE(adaptive.checksums_match);
  EXPECT_LT(adaptive.wall_seconds, plain.wall_seconds * 1.6);
}

TEST(SampleJob, StaticHeavyIsSlowerThanLightOnFastLink) {
  const auto light = run_sample_job(corpus::Compressibility::kModerate,
                                    8 << 20, CompressionSpec::fixed(1), 0);
  const auto heavy = run_sample_job(corpus::Compressibility::kModerate,
                                    8 << 20, CompressionSpec::fixed(3), 0);
  ASSERT_TRUE(light.checksums_match);
  ASSERT_TRUE(heavy.checksums_match);
  EXPECT_GT(heavy.wall_seconds, light.wall_seconds);
}

}  // namespace
}  // namespace strato
