// Reusable task building blocks (stdtasks.h) and the new corpus
// generators used by realistic examples.
#include <gtest/gtest.h>

#include <atomic>

#include "compress/registry.h"
#include "corpus/entropy.h"
#include "dataflow/executor.h"
#include "dataflow/stdtasks.h"

namespace strato::dataflow {
namespace {

TEST(StdTasks, CorpusSourceToCountingSink) {
  std::atomic<std::uint64_t> records{0}, bytes{0};
  JobGraph g;
  const int src = g.add_vertex("src", [] {
    return std::make_unique<CorpusSource>(corpus::Compressibility::kHigh,
                                          100000, 1000);
  });
  const int dst = g.add_vertex("dst", [&] {
    return std::make_unique<CountingSink>(records, bytes);
  });
  g.connect(src, dst, ChannelType::kInMemory);
  Executor exec;
  ASSERT_TRUE(exec.execute(g).ok());
  EXPECT_EQ(records.load(), 100u);
  EXPECT_EQ(bytes.load(), 100000u);
}

TEST(StdTasks, MapTransformsEveryRecord) {
  std::atomic<std::uint64_t> records{0}, bytes{0};
  std::atomic<int> doubled{0};
  JobGraph g;
  const int src = g.add_vertex("src", [] {
    int n = 0;
    return std::make_unique<FunctionSource>(
        [n]() mutable -> std::optional<common::Bytes> {
          if (n >= 50) return std::nullopt;
          ++n;
          return common::Bytes{static_cast<std::uint8_t>(n)};
        });
  });
  const int map = g.add_vertex("map", [&] {
    return std::make_unique<MapTask>([&](common::Bytes rec) {
      doubled.fetch_add(1);
      rec.push_back(rec[0]);  // duplicate the byte
      return rec;
    });
  });
  const int dst = g.add_vertex("dst", [&] {
    return std::make_unique<CountingSink>(records, bytes);
  });
  g.connect(src, map, ChannelType::kInMemory);
  g.connect(map, dst, ChannelType::kInMemory);
  Executor exec;
  ASSERT_TRUE(exec.execute(g).ok());
  EXPECT_EQ(records.load(), 50u);
  EXPECT_EQ(bytes.load(), 100u);  // 2 bytes each after the map
  EXPECT_EQ(doubled.load(), 50);
}

TEST(StdTasks, FilterDropsRecords) {
  std::atomic<std::uint64_t> records{0}, bytes{0};
  JobGraph g;
  const int src = g.add_vertex("src", [] {
    int n = 0;
    return std::make_unique<FunctionSource>(
        [n]() mutable -> std::optional<common::Bytes> {
          if (n >= 100) return std::nullopt;
          return common::Bytes{static_cast<std::uint8_t>(n++ % 4)};
        });
  });
  const int filter = g.add_vertex("filter", [] {
    return std::make_unique<FilterTask>(
        [](common::ByteSpan rec) { return rec[0] == 0; });
  });
  const int dst = g.add_vertex("dst", [&] {
    return std::make_unique<CountingSink>(records, bytes);
  });
  g.connect(src, filter, ChannelType::kInMemory);
  g.connect(filter, dst, ChannelType::kInMemory);
  Executor exec;
  ASSERT_TRUE(exec.execute(g).ok());
  EXPECT_EQ(records.load(), 25u);
}

TEST(StdTasks, ForEachSinkSeesEveryRecord) {
  std::vector<std::size_t> sizes;
  JobGraph g;
  const int src = g.add_vertex("src", [] {
    return std::make_unique<CorpusSource>(corpus::Compressibility::kLow,
                                          10000, 3000);
  });
  const int dst = g.add_vertex("dst", [&] {
    return std::make_unique<ForEachSink>(
        [&](common::ByteSpan rec) { sizes.push_back(rec.size()); });
  });
  g.connect(src, dst, ChannelType::kInMemory);
  Executor exec;
  ASSERT_TRUE(exec.execute(g).ok());
  ASSERT_EQ(sizes.size(), 4u);  // 3000+3000+3000+1000
  EXPECT_EQ(sizes.back(), 1000u);
}

TEST(StdTasks, FunctionSourceFansOutToAllGates) {
  std::atomic<std::uint64_t> r1{0}, b1{0}, r2{0}, b2{0};
  JobGraph g;
  const int src = g.add_vertex("src", [] {
    int n = 0;
    return std::make_unique<FunctionSource>(
        [n]() mutable -> std::optional<common::Bytes> {
          if (n++ >= 10) return std::nullopt;
          return common::Bytes{1, 2, 3};
        });
  });
  const int d1 = g.add_vertex("d1", [&] {
    return std::make_unique<CountingSink>(r1, b1);
  });
  const int d2 = g.add_vertex("d2", [&] {
    return std::make_unique<CountingSink>(r2, b2);
  });
  g.connect(src, d1, ChannelType::kInMemory);
  g.connect(src, d2, ChannelType::kInMemory);
  Executor exec;
  ASSERT_TRUE(exec.execute(g).ok());
  EXPECT_EQ(r1.load(), 10u);
  EXPECT_EQ(r2.load(), 10u);
}

}  // namespace
}  // namespace strato::dataflow

namespace strato::corpus {
namespace {

TEST(NewGenerators, LogStreamShapeAndDeterminism) {
  LogGenerator a(3), b(3);
  const auto sa = take(a, 200000);
  EXPECT_EQ(sa, take(b, 200000));
  // Text-like entropy, template-driven compressibility between HIGH and
  // MODERATE.
  EXPECT_GT(shannon_entropy(sa), 3.5);
  EXPECT_LT(shannon_entropy(sa), 6.0);
  const auto& codec = *compress::CodecRegistry::standard().level(1).codec;
  const double ratio =
      static_cast<double>(codec.compress(sa).size()) /
      static_cast<double>(sa.size());
  EXPECT_GT(ratio, 0.15);
  EXPECT_LT(ratio, 0.45);
  // Lines look like logs: newline-terminated, containing level tags.
  const std::string text = common::to_string(common::ByteSpan(sa.data(), 2000));
  EXPECT_NE(text.find("INFO"), std::string::npos);
  EXPECT_NE(text.find('\n'), std::string::npos);
}

TEST(NewGenerators, ColumnarShape) {
  ColumnarGenerator g(5);
  const auto data = take(g, 500000);
  ColumnarGenerator g2(5);
  EXPECT_EQ(take(g2, 500000), data);
  const auto& light = *compress::CodecRegistry::standard().level(1).codec;
  const auto& heavy = *compress::CodecRegistry::standard().level(3).codec;
  const double light_ratio =
      static_cast<double>(light.compress(data).size()) /
      static_cast<double>(data.size());
  const double heavy_ratio =
      static_cast<double>(heavy.compress(data).size()) /
      static_cast<double>(data.size());
  // Mixed-entropy: compressible but far from the fax corpus...
  EXPECT_GT(light_ratio, 0.4);
  EXPECT_LT(light_ratio, 0.9);
  // ...and entropy coding pays off on the numeric columns.
  EXPECT_LT(heavy_ratio, light_ratio - 0.1);
}

TEST(NewGenerators, ResetRestartsStreams) {
  LogGenerator lg(9);
  const auto first = take(lg, 5000);
  lg.reset(9);
  EXPECT_EQ(take(lg, 5000), first);
  ColumnarGenerator cg(9);
  const auto cfirst = take(cg, 5000);
  cg.reset(9);
  EXPECT_EQ(take(cg, 5000), cfirst);
}

}  // namespace
}  // namespace strato::corpus
