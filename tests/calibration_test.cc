// Codec profiling / simulator calibration and the logging utility.
#include <gtest/gtest.h>

#include "common/logging.h"
#include "compress/profiler.h"
#include "compress/registry.h"
#include "vsim/codec_model.h"

namespace strato {
namespace {

TEST(Profiler, MeasuresSpeedAndRatio) {
  const auto& light = *compress::CodecRegistry::standard().level(1).codec;
  auto gen = corpus::make_generator(corpus::Compressibility::kHigh, 3);
  const auto p = compress::profile_codec(light, *gen, 2 << 20);
  EXPECT_GT(p.compress_mb_s, 1.0);
  EXPECT_GT(p.decompress_mb_s, 1.0);
  EXPECT_GT(p.ratio, 0.05);
  EXPECT_LT(p.ratio, 0.30);  // HIGH corpus through FastLz
}

TEST(Profiler, DegenerateInputs) {
  const auto& codec = *compress::CodecRegistry::standard().level(0).codec;
  auto gen = corpus::make_generator(corpus::Compressibility::kLow, 1);
  const auto zero = compress::profile_codec(codec, *gen, 0);
  EXPECT_EQ(zero.ratio, 1.0);
  const auto tiny = compress::profile_codec(codec, *gen, 100, 64);
  EXPECT_NEAR(tiny.ratio, 1.0, 1e-9);  // null codec
}

TEST(CodecModel, DefaultsAreAMonotoneLadder) {
  const auto m = vsim::CodecModel::defaults();
  for (const auto cls :
       {corpus::Compressibility::kHigh, corpus::Compressibility::kModerate,
        corpus::Compressibility::kLow}) {
    for (int l = 1; l < vsim::CodecModel::kNumLevels; ++l) {
      // Speed strictly decreases up the ladder...
      EXPECT_LT(m.get(l, cls).compress_bytes_s,
                m.get(l - 1, cls).compress_bytes_s)
          << "level " << l << " " << corpus::to_string(cls);
      // ...and ratio never gets worse (ties allowed on LOW).
      EXPECT_LE(m.get(l, cls).ratio, m.get(l - 1, cls).ratio + 0.011);
    }
  }
}

TEST(CodecModel, CalibrationTracksDefaultsOnRatio) {
  // Ratios are machine-independent; a small calibration run must land
  // close to the pinned defaults (speeds are machine-dependent and only
  // sanity-checked for ordering).
  const auto calibrated =
      vsim::CodecModel::calibrate(compress::CodecRegistry::standard(),
                                  /*bytes_per_cell=*/1 << 20);
  const auto pinned = vsim::CodecModel::defaults();
  for (const auto cls :
       {corpus::Compressibility::kHigh, corpus::Compressibility::kModerate,
        corpus::Compressibility::kLow}) {
    for (int l = 1; l < vsim::CodecModel::kNumLevels; ++l) {
      EXPECT_NEAR(calibrated.get(l, cls).ratio, pinned.get(l, cls).ratio,
                  0.05)
          << "level " << l << " " << corpus::to_string(cls);
      EXPECT_GT(calibrated.get(l, cls).compress_bytes_s, 1e6);
    }
  }
}

TEST(CodecModel, SetOverridesOneCell) {
  auto m = vsim::CodecModel::defaults();
  m.set(2, corpus::Compressibility::kLow, {1.0, 2.0, 0.5});
  EXPECT_EQ(m.get(2, corpus::Compressibility::kLow).ratio, 0.5);
  // Neighbours untouched.
  EXPECT_NE(m.get(1, corpus::Compressibility::kLow).ratio, 0.5);
}

TEST(Logging, ThresholdFiltersLevels) {
  const auto saved = common::log_threshold();
  common::set_log_threshold(common::LogLevel::kError);
  EXPECT_EQ(common::log_threshold(), common::LogLevel::kError);
  // Below-threshold logging must be a cheap no-op (no way to observe the
  // stream here beyond not crashing).
  STRATO_LOG(kDebug) << "invisible " << 42;
  STRATO_LOG(kError) << "visible " << 43;
  common::set_log_threshold(saved);
}

}  // namespace
}  // namespace strato
