// Virtualization profiles and the Fig. 1 CPU-accuracy study: the modelled
// discrepancies must reproduce the paper's qualitative findings.
#include <gtest/gtest.h>

#include "vsim/iobench.h"
#include "vsim/profile.h"

namespace strato::vsim {
namespace {

TEST(Profiles, AllTechsResolve) {
  for (const auto t : kAllTechs) {
    const VirtProfile& p = profile(t);
    EXPECT_EQ(p.tech, t);
    EXPECT_FALSE(p.name.empty());
    EXPECT_GT(p.net_bytes_s, 0.0);
    EXPECT_GT(p.disk_write_bytes_s, 0.0);
    for (const auto op : kAllIoOps) {
      EXPECT_NO_THROW((void)p.accounting(op));
    }
  }
}

TEST(Profiles, NativeIsHonest) {
  const VirtProfile& p = profile(VirtTech::kNative);
  EXPECT_DOUBLE_EQ(p.net_cpu_visibility, 1.0);
  EXPECT_DOUBLE_EQ(p.disk_cpu_visibility, 1.0);
  for (const auto op : kAllIoOps) {
    const auto acc = p.accounting(op);
    EXPECT_NEAR(acc.vm_view.busy(), acc.host_view.busy(), 1e-9)
        << to_string(op);
  }
}

TEST(Profiles, ThroughputOrdering) {
  // Native is the fastest network; full virtualization the slowest of the
  // local setups (emulated e1000) — the Fig. 2 ordering.
  EXPECT_GT(profile(VirtTech::kNative).net_bytes_s,
            profile(VirtTech::kKvmPara).net_bytes_s);
  EXPECT_GT(profile(VirtTech::kKvmPara).net_bytes_s,
            profile(VirtTech::kKvmFull).net_bytes_s);
}

TEST(Profiles, PaperHeadlineDiscrepancies) {
  // "for others (e.g. network send operation using KVM (paravirt.) or
  // file read operation using XEN) the gap can grow up to a factor of 15"
  const auto kvm_send =
      profile(VirtTech::kKvmPara).accounting(IoOp::kNetSend);
  const double send_gap =
      kvm_send.host_view.busy() / kvm_send.vm_view.busy();
  EXPECT_GT(send_gap, 10.0);
  EXPECT_LT(send_gap, 20.0);

  const auto xen_read =
      profile(VirtTech::kXenPara).accounting(IoOp::kFileRead);
  const double read_gap =
      xen_read.host_view.busy() / xen_read.vm_view.busy();
  EXPECT_GT(read_gap, 8.0);

  // "for some I/O operations the discrepancy ... is rather small (e.g.
  // network send operation using KVM (full virt.) or XEN)".
  const auto kvm_full =
      profile(VirtTech::kKvmFull).accounting(IoOp::kNetSend);
  EXPECT_LT(kvm_full.host_view.busy() / kvm_full.vm_view.busy(), 3.0);
  const auto xen_send =
      profile(VirtTech::kXenPara).accounting(IoOp::kNetSend);
  EXPECT_LT(xen_send.host_view.busy() / xen_send.vm_view.busy(), 2.0);
}

TEST(Profiles, Ec2HostIsUnobservable) {
  for (const auto op : kAllIoOps) {
    const auto acc = profile(VirtTech::kEc2).accounting(op);
    EXPECT_FALSE(acc.host_observable) << to_string(op);
    EXPECT_GT(acc.vm_view.steal, 0.0) << to_string(op);  // EC2 shows STEAL
  }
}

TEST(Profiles, OnlyXenHasWriteBackCache) {
  for (const auto t : kAllTechs) {
    EXPECT_EQ(profile(t).disk_cache.write_back_cache,
              t == VirtTech::kXenPara)
        << to_string(t);
  }
}

TEST(Profiles, Ec2NetworkIsTwoState) {
  EXPECT_EQ(profile(VirtTech::kEc2).net_fluct.kind,
            FluctuationKind::kTwoState);
  for (const auto t : {VirtTech::kNative, VirtTech::kKvmFull,
                       VirtTech::kKvmPara, VirtTech::kXenPara}) {
    EXPECT_EQ(profile(t).net_fluct.kind, FluctuationKind::kGaussian);
  }
}

// --- the Fig. 1 experiment -----------------------------------------------------

TEST(CpuAccuracy, ProducesRequestedSampleCount) {
  const auto res =
      run_cpu_accuracy(VirtTech::kKvmPara, IoOp::kNetSend, 120, 1);
  EXPECT_EQ(res.samples.size(), 120u);
}

TEST(CpuAccuracy, MeansTrackTheProfileTable) {
  for (const auto t : kAllTechs) {
    for (const auto op : kAllIoOps) {
      const auto res = run_cpu_accuracy(t, op, 200, 7);
      const auto want = profile(t).accounting(op);
      EXPECT_NEAR(res.vm_mean.busy(), want.vm_view.busy(),
                  0.15 * want.vm_view.busy() + 0.01)
          << to_string(t) << "/" << to_string(op);
      if (want.host_observable) {
        EXPECT_NEAR(res.host_mean.busy(), want.host_view.busy(),
                    0.15 * want.host_view.busy() + 0.01);
      }
    }
  }
}

TEST(CpuAccuracy, DiscrepancyMetric) {
  const auto skewed =
      run_cpu_accuracy(VirtTech::kKvmPara, IoOp::kNetSend, 150, 3);
  EXPECT_GT(skewed.discrepancy(), 8.0);
  const auto honest =
      run_cpu_accuracy(VirtTech::kNative, IoOp::kNetSend, 150, 3);
  EXPECT_NEAR(honest.discrepancy(), 1.0, 0.1);
}

TEST(CpuAccuracy, DeterministicPerSeed) {
  const auto a = run_cpu_accuracy(VirtTech::kXenPara, IoOp::kFileRead, 50, 9);
  const auto b = run_cpu_accuracy(VirtTech::kXenPara, IoOp::kFileRead, 50, 9);
  EXPECT_DOUBLE_EQ(a.vm_mean.busy(), b.vm_mean.busy());
  const auto c = run_cpu_accuracy(VirtTech::kXenPara, IoOp::kFileRead, 50, 10);
  EXPECT_NE(a.vm_mean.busy(), c.vm_mean.busy());
}

}  // namespace
}  // namespace strato::vsim
