// XXH64 implementation tests: reference vectors, streaming equivalence,
// chunking invariance.
#include <gtest/gtest.h>

#include "common/checksum.h"
#include "common/rng.h"

namespace strato::common {
namespace {

TEST(Xxh64, ReferenceVectors) {
  // Vectors from the xxHash reference implementation.
  EXPECT_EQ(xxh64({}), 0xEF46DB3751D8E999ULL);
  EXPECT_EQ(xxh64(as_bytes("a")), 0xD24EC4F1A98C6E5BULL);
  EXPECT_EQ(xxh64(as_bytes("abc")), 0x44BC2CF5AD770999ULL);
}

TEST(Xxh64, SeedChangesDigest) {
  const auto data = as_bytes("the quick brown fox");
  EXPECT_NE(xxh64(data, 0), xxh64(data, 1));
  EXPECT_EQ(xxh64(data, 42), xxh64(data, 42));
}

TEST(Xxh64, AllLengthsStreamingMatchesOneShot) {
  Xoshiro256 rng(7);
  Bytes data(1024);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  for (std::size_t len = 0; len <= data.size(); len += 13) {
    const ByteSpan view(data.data(), len);
    Xxh64State st;
    st.update(view);
    EXPECT_EQ(st.digest(), xxh64(view)) << "len=" << len;
  }
}

TEST(Xxh64, DigestIsIdempotentAndResumable) {
  const auto data = as_bytes("hello world, hello cloud");
  Xxh64State st;
  st.update(data.subspan(0, 5));
  const auto mid = st.digest();
  EXPECT_EQ(mid, st.digest());  // digest() does not consume state
  st.update(data.subspan(5));
  EXPECT_EQ(st.digest(), xxh64(data));
}

class ChunkingTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChunkingTest, RandomChunkingInvariance) {
  Xoshiro256 rng(GetParam());
  Bytes data(1 + rng.below(100000));
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  const std::uint64_t want = xxh64(data);

  Xxh64State st;
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t n =
        std::min<std::size_t>(1 + rng.below(997), data.size() - off);
    st.update(ByteSpan(data.data() + off, n));
    off += n;
  }
  EXPECT_EQ(st.digest(), want);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChunkingTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(Xxh64, LargeInput) {
  Bytes data(5 * 1024 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31 + (i >> 11));
  }
  const auto h1 = xxh64(data);
  Xxh64State st;
  st.update(ByteSpan(data.data(), 1 << 20));
  st.update(ByteSpan(data.data() + (1 << 20), data.size() - (1 << 20)));
  EXPECT_EQ(st.digest(), h1);
  // Flipping one bit anywhere must change the digest.
  data[data.size() / 2] ^= 1;
  EXPECT_NE(xxh64(data), h1);
}

TEST(Xxh64, ResetReusesState) {
  Xxh64State st(5);
  st.update(as_bytes("abcdef"));
  st.reset(0);
  st.update(as_bytes("abc"));
  EXPECT_EQ(st.digest(), xxh64(as_bytes("abc")));
}

}  // namespace
}  // namespace strato::common
