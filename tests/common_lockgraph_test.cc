// common::LockGraph — online lock-order (potential-deadlock) detection.
//
// The detector must flag an AB/BA inversion even when the two orders are
// exercised at different times by different threads (no actual deadlock
// ever happens in these tests — that is the point: the report arrives
// before any schedule has to hang).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/lock_graph.h"
#include "common/mutex.h"

namespace strato::common {
namespace {

/// Enables the detector for one test and restores the build default (and
/// a clean graph) afterwards, so tests compose in any order.
class ScopedDetector {
 public:
  ScopedDetector() {
    LockGraph::instance().reset();
    LockGraph::instance().set_enabled(true);
  }
  ~ScopedDetector() {
    LockGraph::instance().set_enabled(LockGraph::compiled_default());
    LockGraph::instance().reset();
  }
};

void lock_in_order(Mutex& first, Mutex& second) {
  MutexLock a(first);
  MutexLock b(second);
}

TEST(LockGraphTest, DefaultMatchesBuildConfiguration) {
  // Release builds (no sanitizer) keep the detector off — each lock pays
  // only a relaxed atomic load. Debug/sanitizer builds default it on.
#if defined(STRATO_LOCK_GRAPH_DEFAULT_ON)
  EXPECT_TRUE(LockGraph::compiled_default());
#else
  EXPECT_FALSE(LockGraph::compiled_default());
#endif
  EXPECT_EQ(LockGraph::instance().enabled(), LockGraph::compiled_default());
}

TEST(LockGraphTest, CleanOrderedAcquisitionStaysSilent) {
  ScopedDetector guard;
  Mutex a("test.ordered.A");
  Mutex b("test.ordered.B");
  // Same order from two threads, many times: a consistent global order is
  // exactly what the policy demands.
  std::thread t1([&] {
    for (int i = 0; i < 100; ++i) lock_in_order(a, b);
  });
  std::thread t2([&] {
    for (int i = 0; i < 100; ++i) lock_in_order(a, b);
  });
  t1.join();
  t2.join();
  EXPECT_EQ(LockGraph::instance().violation_count(), 0u);
}

TEST(LockGraphTest, DetectsAbBaInversionAcrossThreads) {
  ScopedDetector guard;
  Mutex a("test.inversion.A");
  Mutex b("test.inversion.B");
  std::thread t1([&] { lock_in_order(a, b); });
  t1.join();
  std::thread t2([&] { lock_in_order(b, a); });  // inverted — flagged here
  t2.join();

  const auto violations = LockGraph::instance().violations();
  ASSERT_EQ(violations.size(), 1u);
  // The report carries both labels: the held lock and the one being
  // acquired at the moment the cycle closed.
  EXPECT_EQ(violations[0].held, "test.inversion.B");
  EXPECT_EQ(violations[0].acquiring, "test.inversion.A");
  EXPECT_NE(violations[0].report.find("test.inversion.A"), std::string::npos);
  EXPECT_NE(violations[0].report.find("test.inversion.B"), std::string::npos);
}

TEST(LockGraphTest, DetectsInversionWithinOneThread) {
  ScopedDetector guard;
  Mutex a("test.samethread.A");
  Mutex b("test.samethread.B");
  lock_in_order(a, b);
  lock_in_order(b, a);
  EXPECT_EQ(LockGraph::instance().violation_count(), 1u);
}

TEST(LockGraphTest, ReportsUniqueEdgeOnce) {
  ScopedDetector guard;
  Mutex a("test.dedupe.A");
  Mutex b("test.dedupe.B");
  lock_in_order(a, b);
  for (int i = 0; i < 10; ++i) lock_in_order(b, a);
  EXPECT_EQ(LockGraph::instance().violation_count(), 1u);
}

TEST(LockGraphTest, DetectsThreeLockCycle) {
  ScopedDetector guard;
  Mutex a("test.cycle3.A");
  Mutex b("test.cycle3.B");
  Mutex c("test.cycle3.C");
  lock_in_order(a, b);
  lock_in_order(b, c);
  lock_in_order(c, a);  // A -> B -> C -> A
  ASSERT_EQ(LockGraph::instance().violation_count(), 1u);
  const auto v = LockGraph::instance().violations()[0];
  EXPECT_EQ(v.held, "test.cycle3.C");
  EXPECT_EQ(v.acquiring, "test.cycle3.A");
}

TEST(LockGraphTest, DisabledDetectorRecordsNothing) {
  ScopedDetector guard;
  LockGraph::instance().set_enabled(false);
  Mutex a("test.off.A");
  Mutex b("test.off.B");
  lock_in_order(a, b);
  lock_in_order(b, a);
  EXPECT_EQ(LockGraph::instance().violation_count(), 0u);
}

TEST(LockGraphTest, ForgetDropsEdgesOfDestroyedMutex) {
  ScopedDetector guard;
  Mutex a("test.forget.A");
  {
    Mutex b("test.forget.B");
    lock_in_order(a, b);
  }  // ~Mutex forgets B: the A -> B constraint dies with it
  Mutex c("test.forget.C");  // may reuse B's address
  lock_in_order(c, a);
  EXPECT_EQ(LockGraph::instance().violation_count(), 0u);
}

TEST(LockGraphTest, CondVarWaitDoesNotFabricateEdges) {
  ScopedDetector guard;
  Mutex mu("test.cv.mu");
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lk(mu);
    while (!ready) cv.wait(mu);
  });
  {
    MutexLock lk(mu);
    ready = true;
  }
  cv.notify_all();
  waiter.join();
  EXPECT_EQ(LockGraph::instance().violation_count(), 0u);
}

TEST(LockGraphTest, TryLockParticipatesInOrdering) {
  ScopedDetector guard;
  Mutex a("test.try.A");
  Mutex b("test.try.B");
  {
    MutexLock lk(a);
    ASSERT_TRUE(b.try_lock());
    b.unlock();
  }
  lock_in_order(b, a);
  EXPECT_EQ(LockGraph::instance().violation_count(), 1u);
}

TEST(MutexTest, TryLockFailsWhenHeldElsewhere) {
  Mutex mu("test.trylock.mu");
  mu.lock();
  std::thread other([&] { EXPECT_FALSE(mu.try_lock()); });
  other.join();
  mu.unlock();
}

}  // namespace
}  // namespace strato::common
