// Typed record serialization: varints, zigzag, strings, doubles.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "dataflow/serdes.h"

namespace strato::dataflow {
namespace {

TEST(Serdes, VarintBoundaries) {
  RecordWriterCursor w;
  const std::uint64_t values[] = {
      0,       1,        127,        128,        16383, 16384,
      (1ULL << 32) - 1, 1ULL << 32, (1ULL << 56) + 5,
      std::numeric_limits<std::uint64_t>::max()};
  for (const auto v : values) w.put_varint(v);
  RecordReaderCursor r(w.bytes());
  for (const auto v : values) EXPECT_EQ(r.get_varint(), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serdes, VarintEncodingSizes) {
  const auto size_of = [](std::uint64_t v) {
    RecordWriterCursor w;
    w.put_varint(v);
    return w.bytes().size();
  };
  EXPECT_EQ(size_of(0), 1u);
  EXPECT_EQ(size_of(127), 1u);
  EXPECT_EQ(size_of(128), 2u);
  EXPECT_EQ(size_of(16383), 2u);
  EXPECT_EQ(size_of(16384), 3u);
  EXPECT_EQ(size_of(UINT64_MAX), 10u);
}

TEST(Serdes, SignedZigzag) {
  RecordWriterCursor w;
  const std::int64_t values[] = {0,  -1, 1,  -2, 2,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max(),
                                 -123456789, 987654321};
  for (const auto v : values) w.put_signed(v);
  RecordReaderCursor r(w.bytes());
  for (const auto v : values) EXPECT_EQ(r.get_signed(), v);
}

TEST(Serdes, SmallMagnitudesStaySmall) {
  RecordWriterCursor w;
  w.put_signed(-64);  // zigzag 127 -> one byte
  EXPECT_EQ(w.bytes().size(), 1u);
}

TEST(Serdes, Doubles) {
  RecordWriterCursor w;
  const double values[] = {0.0, -0.0, 1.5, -3.25e300, 5e-324,
                           std::numeric_limits<double>::infinity()};
  for (const auto v : values) w.put_double(v);
  w.put_double(std::nan(""));
  RecordReaderCursor r(w.bytes());
  for (const auto v : values) {
    EXPECT_EQ(r.get_double(), v);
  }
  EXPECT_TRUE(std::isnan(r.get_double()));
}

TEST(Serdes, StringsAndBytesAndBools) {
  RecordWriterCursor w;
  w.put_string("hello");
  w.put_string("");
  w.put_bool(true);
  const common::Bytes blob = {0x00, 0x01, 0x02};
  w.put_bytes(blob);
  w.put_bool(false);
  std::string big(100000, 'q');
  w.put_string(big);

  RecordReaderCursor r(w.bytes());
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_TRUE(r.get_bool());
  EXPECT_EQ(r.get_bytes().size(), 3u);
  EXPECT_FALSE(r.get_bool());
  EXPECT_EQ(r.get_string(), big);
  EXPECT_TRUE(r.exhausted());
}

TEST(Serdes, MixedRecordRoundTrip) {
  common::Xoshiro256 rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    RecordWriterCursor w;
    const auto id = rng();
    const auto delta = static_cast<std::int64_t>(rng()) >> (rng() % 40);
    const double score = rng.gaussian(0, 1e6);
    w.put_varint(id);
    w.put_signed(delta);
    w.put_double(score);
    w.put_string("key-" + std::to_string(trial));

    RecordReaderCursor r(w.bytes());
    EXPECT_EQ(r.get_varint(), id);
    EXPECT_EQ(r.get_signed(), delta);
    EXPECT_EQ(r.get_double(), score);
    EXPECT_EQ(r.get_string(), "key-" + std::to_string(trial));
    EXPECT_TRUE(r.exhausted());
  }
}

TEST(Serdes, TruncationRejected) {
  RecordWriterCursor w;
  w.put_string("some payload");
  auto bytes = w.bytes();
  bytes.pop_back();
  RecordReaderCursor r(bytes);
  EXPECT_THROW((void)r.get_string(), compress::CodecError);

  RecordReaderCursor r2({});
  EXPECT_THROW((void)r2.get_varint(), compress::CodecError);
  EXPECT_THROW((void)r2.get_double(), compress::CodecError);
}

TEST(Serdes, MalformedInputsRejected) {
  // 11-byte all-continuation varint overflows.
  common::Bytes evil(11, 0xFF);
  RecordReaderCursor r(evil);
  EXPECT_THROW((void)r.get_varint(), compress::CodecError);

  const common::Bytes bad_bool = {7};
  RecordReaderCursor r2(bad_bool);
  EXPECT_THROW((void)r2.get_bool(), compress::CodecError);

  // Length prefix longer than the record.
  RecordWriterCursor w;
  w.put_varint(1000);
  RecordReaderCursor r3(w.bytes());
  EXPECT_THROW((void)r3.get_bytes(), compress::CodecError);
}

TEST(Serdes, ClearAndTake) {
  RecordWriterCursor w;
  w.put_varint(7);
  const auto taken = w.take();
  EXPECT_EQ(taken.size(), 1u);
  w.put_varint(8);
  EXPECT_EQ(w.bytes().size(), 1u);
  w.clear();
  EXPECT_TRUE(w.bytes().empty());
}

}  // namespace
}  // namespace strato::dataflow
