// Differential oracle: codec round-trip identity across registries and
// serial-vs-parallel wire identity of the block pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "compress/codec.h"
#include "compress/registry.h"
#include "corpus/generator.h"
#include "verify/oracle.h"
#include "verify/seed.h"

namespace strato::verify {
namespace {

common::Bytes corpus_payload(corpus::Compressibility c, std::uint64_t seed,
                             std::size_t n) {
  auto gen = corpus::make_generator(c, seed);
  return corpus::take(*gen, n);
}

// Adversarial payload shapes: long runs, periodic data, near-random noise,
// self-similar copies — the inputs most likely to stress match finders.
common::Bytes adversarial_payload(std::uint64_t seed, std::size_t n) {
  common::Xoshiro256 rng(seed);
  common::Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    switch (rng.below(4)) {
      case 0: {  // run
        const auto b = static_cast<std::uint8_t>(rng());
        for (std::uint64_t i = 0, len = 1 + rng.below(512); i < len; ++i)
          out.push_back(b);
        break;
      }
      case 1: {  // noise
        for (std::uint64_t i = 0, len = 1 + rng.below(256); i < len; ++i)
          out.push_back(static_cast<std::uint8_t>(rng()));
        break;
      }
      case 2: {  // self-copy
        if (out.empty()) break;
        const std::size_t src = rng.below(out.size());
        for (std::uint64_t i = 0, len = 1 + rng.below(512); i < len; ++i)
          out.push_back(out[src + (i % (out.size() - src))]);
        break;
      }
      default: {  // ramp
        auto b = static_cast<std::uint8_t>(rng());
        for (std::uint64_t i = 0, len = 1 + rng.below(128); i < len; ++i)
          out.push_back(b++);
        break;
      }
    }
  }
  out.resize(n);
  return out;
}

TEST(Oracle, RoundTripStandardAndExtendedRegistries) {
  const std::uint64_t seed = announce_seed(
      "STRATO_ORACLE_SEED", seed_from_env("STRATO_ORACLE_SEED", 0xA11CE));
  for (const auto* registry : {&compress::CodecRegistry::standard(),
                               &compress::CodecRegistry::extended()}) {
    Oracle oracle(*registry);
    OracleReport report;
    for (int i = 0; i < 12; ++i) {
      const auto s = seed + static_cast<std::uint64_t>(i);
      oracle.check_roundtrip(
          corpus_payload(static_cast<corpus::Compressibility>(i % 3), s,
                         1000 + i * 7777),
          "corpus/" + std::to_string(i), report);
      oracle.check_roundtrip(adversarial_payload(s, 500 + i * 3333),
                             "adversarial/" + std::to_string(i), report);
    }
    oracle.check_roundtrip({}, "empty", report);
    const common::Bytes one(1, 0x42);
    oracle.check_roundtrip(one, "one-byte", report);
    EXPECT_TRUE(report.ok()) << report.summary();
    EXPECT_GT(report.checks, 0u);
  }
}

TEST(Oracle, PipelineWireIdenticalToSerialAtAllWorkerCounts) {
  const std::uint64_t seed = announce_seed(
      "STRATO_ORACLE_SEED", seed_from_env("STRATO_ORACLE_SEED", 0xA11CE));
  common::Xoshiro256 rng(seed);
  const auto& registry = compress::CodecRegistry::standard();
  Oracle oracle(registry);

  std::vector<common::Bytes> payloads;
  std::vector<int> levels;
  for (int i = 0; i < 40; ++i) {
    payloads.push_back(
        rng.below(2) == 0
            ? corpus_payload(static_cast<corpus::Compressibility>(rng.below(3)),
                             rng(), 1 + rng.below(40000))
            : adversarial_payload(rng(), 1 + rng.below(40000)));
    levels.push_back(static_cast<int>(rng.below(registry.level_count())));
  }
  payloads.emplace_back();  // empty block mid-stream is legal
  levels.push_back(0);

  OracleReport report;
  oracle.check_pipeline_identity(payloads, levels, {1, 2, 4, 8}, report);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.checks, 0u);
}

TEST(Oracle, ExtendedLadderPipelineIdentity) {
  const auto& registry = compress::CodecRegistry::extended();
  Oracle oracle(registry);
  std::vector<common::Bytes> payloads;
  std::vector<int> levels;
  for (int i = 0; i < static_cast<int>(registry.level_count()) * 3; ++i) {
    payloads.push_back(adversarial_payload(77 + i, 5000 + i * 911));
    levels.push_back(i % static_cast<int>(registry.level_count()));
  }
  OracleReport report;
  oracle.check_pipeline_identity(payloads, levels, {1, 3}, report);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(Oracle, DecodeIdentityAcrossWorkersAndChunks) {
  const auto& registry = compress::CodecRegistry::standard();
  Oracle oracle(registry);
  std::vector<common::Bytes> payloads;
  std::vector<int> levels;
  for (int i = 0; i < 9; ++i) {
    payloads.push_back(adversarial_payload(123 + i, 3000 + i * 777));
    levels.push_back(i % static_cast<int>(registry.level_count()));
  }
  const common::Bytes wire = oracle.serial_wire(payloads, levels);
  OracleReport report;
  oracle.check_decode_identity(wire, {1, 2, 4, 8}, {64, 4096, wire.size()},
                               report);
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.checks, 0u);
}

TEST(Oracle, DecodeIdentityHoldsOnDamagedWire) {
  // On a corrupted wire the serial reference throws mid-stream; the
  // parallel decodes must agree on the error and on every block before it.
  const auto& registry = compress::CodecRegistry::standard();
  Oracle oracle(registry);
  std::vector<common::Bytes> payloads;
  for (int i = 0; i < 6; ++i) {
    payloads.push_back(adversarial_payload(55 + i, 2000 + i * 501));
  }
  common::Bytes wire = oracle.serial_wire(payloads, {0, 1, 2, 0, 1, 2});
  wire[wire.size() / 2] ^= 0x40;  // damage somewhere past the first frames
  OracleReport report;
  oracle.check_decode_identity(wire, {1, 2, 4}, {33, wire.size()}, report);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// A codec that decompresses to the wrong bytes: the oracle must catch it
// and report enough context to act on, proving the harness can actually
// fail (a test of the test).
class LyingCodec final : public compress::Codec {
 public:
  [[nodiscard]] std::uint8_t id() const override { return compress::kCodecNull; }
  [[nodiscard]] std::string name() const override { return "lying"; }
  [[nodiscard]] std::size_t max_compressed_size(std::size_t raw) const override {
    return raw;
  }
  std::size_t compress(common::ByteSpan src,
                       common::MutableByteSpan dst) const override {
    std::copy(src.begin(), src.end(), dst.begin());
    return src.size();
  }
  std::size_t decompress(common::ByteSpan src,
                         common::MutableByteSpan dst) const override {
    std::copy(src.begin(), src.end(), dst.begin());
    if (!dst.empty()) dst[0] ^= 0xFF;  // silent corruption
    return src.size();
  }
  using Codec::compress;
  using Codec::decompress;
};

TEST(Oracle, DetectsMisbehavingCodec) {
  compress::CodecRegistry broken;
  broken.add_level("LIAR", std::make_unique<LyingCodec>());
  Oracle oracle(broken);
  OracleReport report;
  const auto payload = adversarial_payload(3, 2048);
  oracle.check_roundtrip(payload, "liar-case", report);
  EXPECT_FALSE(report.ok());
  ASSERT_FALSE(report.failures.empty());
  // The failure line must carry the caller's tag so it is replayable.
  EXPECT_NE(report.failures.front().find("liar-case"), std::string::npos)
      << report.summary();
}

}  // namespace
}  // namespace strato::verify
