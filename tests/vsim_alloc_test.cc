// MaxMinAllocator: the incremental drive mode must be bit-identical to
// the stateless full rebuild under arbitrary churn, and the fill must
// never leave a stale rate behind (the frozen-short bug).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "vsim/topology.h"

namespace strato::vsim {
namespace {

Topology small_fabric() {
  Topology::FleetShape shape;
  shape.racks = 2;
  shape.hosts_per_rack = 4;
  return Topology::rack_spine_wan(shape);
}

// Mirrors the engine's bookkeeping for one flow in both drive modes.
struct Churn {
  Topology topo = small_fabric();
  MaxMinAllocator full{topo};
  MaxMinAllocator inc{topo};
  std::vector<std::uint32_t> path;
  std::vector<double> weight;
  std::vector<std::uint32_t> active;  // full-mode list, admission order
  std::vector<double> rate_full;
  std::vector<double> rate_inc;

  std::uint32_t admit(std::uint32_t path_id, double w) {
    const auto f = static_cast<std::uint32_t>(path.size());
    path.push_back(path_id);
    weight.push_back(w);
    rate_full.push_back(0.0);
    rate_inc.push_back(0.0);
    active.push_back(f);
    inc.add_flow(f, path_id);
    return f;
  }

  void finish(std::size_t active_idx) {
    const std::uint32_t f = active[active_idx];
    active.erase(active.begin() + static_cast<std::ptrdiff_t>(active_idx));
    inc.remove_flow(f, path[f]);
  }

  void reweight(std::uint32_t f, double w) {
    weight[f] = w;
    inc.invalidate_weights();
  }

  // Runs both modes and asserts bit-identical rates for every live flow.
  void epoch(const std::vector<double>& caps, bool caps_changed) {
    full.allocate(caps, path, weight, active, rate_full);
    inc.allocate_incremental(caps, caps_changed, path, weight, rate_inc);
    ASSERT_EQ(active.size(), inc.live_flows());
    for (const std::uint32_t f : active) {
      ASSERT_EQ(rate_inc[f], rate_full[f]) << "flow " << f;
    }
  }
};

// ---------------------------------------------------------------------------
// Property: randomized admit/finish/reweight churn with intermittent
// capacity changes. Every epoch the incremental allocator must produce
// the exact doubles of the full rebuild — including epochs where it
// skips the fill entirely and serves last epoch's rates.
// ---------------------------------------------------------------------------

TEST(MaxMinIncremental, MatchesFullRebuildUnderChurn) {
  Churn c;
  common::Xoshiro256 rng(0xA110C8ED);
  std::vector<double> caps(c.topo.link_count());
  for (std::size_t l = 0; l < caps.size(); ++l) {
    caps[l] = c.topo.link(static_cast<Topology::LinkId>(l)).capacity_bytes_s;
  }

  const auto pick_path = [&] {
    const auto h = static_cast<std::size_t>(
        rng() % c.topo.host_count());
    return (rng() & 1u) ? c.topo.wan_path(h) : c.topo.intra_path(h);
  };

  // Warm start so removals have something to bite on.
  for (int i = 0; i < 32; ++i) {
    c.admit(pick_path(), 0.25 + 0.25 * static_cast<double>(rng() % 8));
  }

  int skipped_epochs = 0;
  for (int e = 0; e < 250; ++e) {
    // Admissions (bursty: 0..3 per epoch).
    const std::uint64_t n_admit = rng() % 4;
    for (std::uint64_t i = 0; i < n_admit; ++i) {
      c.admit(pick_path(), 0.25 + 0.25 * static_cast<double>(rng() % 8));
    }
    // Finishes.
    const std::uint64_t n_fin = rng() % 3;
    for (std::uint64_t i = 0; i < n_fin && c.active.size() > 4; ++i) {
      c.finish(static_cast<std::size_t>(rng() % c.active.size()));
    }
    // Occasional tenant-style reweight of a random live flow.
    if (rng() % 5 == 0 && !c.active.empty()) {
      const std::uint32_t f = c.active[static_cast<std::size_t>(
          rng() % c.active.size())];
      c.reweight(f, 0.25 + 0.25 * static_cast<double>(rng() % 8));
    }
    // Capacity wobble on every third epoch; the others pass
    // caps_changed = false so quiet epochs exercise the skip path.
    bool caps_changed = false;
    if (e % 3 == 0) {
      const std::size_t l = static_cast<std::size_t>(rng() % caps.size());
      caps[l] = c.topo.link(static_cast<Topology::LinkId>(l))
                    .capacity_bytes_s *
                (0.7 + 0.01 * static_cast<double>(rng() % 60));
      caps_changed = true;
    } else if (n_admit == 0 && n_fin == 0) {
      ++skipped_epochs;
    }
    c.epoch(caps, caps_changed);
  }
  // The churn schedule must actually have produced quiet epochs, or the
  // skip path went untested.
  EXPECT_GT(skipped_epochs, 5);
}

// A no-change epoch must skip the fill (return false) and still serve
// rates equal to the full rebuild's.
TEST(MaxMinIncremental, QuietEpochSkipsFillAndKeepsRates) {
  Churn c;
  std::vector<double> caps(c.topo.link_count(), 100e6);
  c.admit(c.topo.wan_path(0), 1.0);
  c.admit(c.topo.wan_path(1), 2.0);
  c.admit(c.topo.intra_path(2), 1.0);

  EXPECT_TRUE(c.inc.allocate_incremental(caps, true, c.path, c.weight,
                                         c.rate_inc));
  const std::vector<double> first = c.rate_inc;
  EXPECT_FALSE(c.inc.allocate_incremental(caps, false, c.path, c.weight,
                                          c.rate_inc));
  EXPECT_EQ(c.rate_inc, first);
  c.epoch(caps, false);  // and still bit-equal to the reference
}

// ---------------------------------------------------------------------------
// Regression: progressive filling can exit with capacity left over (all
// remaining flows on zero-weight-sum links). Flows never frozen must
// read rate 0, not whatever the column held before — in BOTH modes.
// ---------------------------------------------------------------------------

TEST(MaxMinAllocatorBug, UnfrozenFlowsReadZeroNotStaleRates) {
  Topology topo;
  const auto l0 = topo.add_link({"only", 100e6, {}});
  const auto p0 = topo.add_path({l0});

  std::vector<double> caps = {100e6};
  std::vector<std::uint32_t> path = {p0, p0};
  std::vector<double> weight = {1.0, 0.0};  // flow 1: zero weight
  std::vector<std::uint32_t> active = {0, 1};
  // Poison the columns with stale garbage from a hypothetical earlier
  // epoch where flow 1 had weight.
  std::vector<double> rate = {123.0, 456.0};

  MaxMinAllocator full(topo);
  full.allocate(caps, path, weight, active, rate);
  EXPECT_DOUBLE_EQ(rate[0], 100e6);
  EXPECT_DOUBLE_EQ(rate[1], 0.0) << "stale rate must be zeroed";

  MaxMinAllocator inc(topo);
  inc.add_flow(0, p0);
  inc.add_flow(1, p0);
  std::vector<double> rate2 = {123.0, 456.0};
  EXPECT_TRUE(inc.allocate_incremental(caps, true, path, weight, rate2));
  EXPECT_DOUBLE_EQ(rate2[0], 100e6);
  EXPECT_DOUBLE_EQ(rate2[1], 0.0) << "stale rate must be zeroed";
}

// Weight updates must take effect on the next epoch in both modes.
TEST(MaxMinIncremental, ReweightTakesEffect) {
  Churn c;
  std::vector<double> caps(c.topo.link_count(), 90e6);
  const auto a = c.admit(c.topo.intra_path(0), 1.0);
  const auto b = c.admit(c.topo.intra_path(0), 1.0);
  c.epoch(caps, true);
  EXPECT_DOUBLE_EQ(c.rate_inc[a], c.rate_inc[b]);

  c.reweight(a, 2.0);
  c.epoch(caps, false);
  EXPECT_DOUBLE_EQ(c.rate_inc[a], 2.0 * c.rate_inc[b]);
}

}  // namespace
}  // namespace strato::vsim
