// Experiment harness: table rendering, ASCII charts, policy factories and
// the pinned paper data.
#include <gtest/gtest.h>

#include "expkit/ascii_chart.h"
#include "expkit/paper_data.h"
#include "expkit/policies.h"
#include "expkit/tables.h"

namespace strato::expkit {
namespace {

TEST(Tables, AlignsColumns) {
  TablePrinter t;
  t.header({"name", "value"});
  t.row({"a", "1"});
  t.row({"longer-name", "123456"});
  const std::string s = t.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("------"), std::string::npos);  // header separator
  // Right-aligned value column: "     1" under "123456".
  EXPECT_NE(s.find("     1"), std::string::npos);
}

TEST(Tables, Formatters) {
  EXPECT_EQ(mean_sd(568.6, 3.2), "569 (3)");
  EXPECT_EQ(fmt_seconds(1881.4), "1881");
  EXPECT_EQ(fmt_seconds(72.46), "72.5");
  EXPECT_EQ(fmt(0.163, 3), "0.163");
}

TEST(AsciiChart, BoxplotMarksAllFiveNumbers) {
  common::FiveNumber f{10, 25, 50, 75, 90, 2};
  const std::string s = render_boxplot("label", f, 0, 100, 50);
  EXPECT_NE(s.find('['), std::string::npos);
  EXPECT_NE(s.find(']'), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find('|'), std::string::npos);
  EXPECT_NE(s.find("label"), std::string::npos);
}

TEST(AsciiChart, StripHandlesEmptyAndData) {
  metrics::TimeSeries empty;
  EXPECT_NE(render_strip(empty).find("no data"), std::string::npos);

  metrics::TimeSeries ts;
  for (int i = 0; i <= 100; ++i) {
    ts.add(common::SimTime::seconds(i), 50.0 + (i % 10));
  }
  const std::string s = render_strip(ts, 40, 6);
  EXPECT_NE(s.find('#'), std::string::npos);
  EXPECT_NE(s.find("t: 0s .. 100s"), std::string::npos);
}

TEST(AsciiChart, LevelStripUsesGlyphs) {
  metrics::TimeSeries levels;
  levels.add(common::SimTime::seconds(0), 0);
  levels.add(common::SimTime::seconds(25), 1);
  levels.add(common::SimTime::seconds(50), 2);
  levels.add(common::SimTime::seconds(75), 3);
  const std::string s = render_level_strip(levels, 100, 40);
  EXPECT_NE(s.find('N'), std::string::npos);
  EXPECT_NE(s.find('L'), std::string::npos);
  EXPECT_NE(s.find('M'), std::string::npos);
  EXPECT_NE(s.find('H'), std::string::npos);
}

TEST(PaperData, TableIsComplete) {
  for (int bg = 0; bg < 4; ++bg) {
    for (int pol = 0; pol < 5; ++pol) {
      for (int cls = 0; cls < 3; ++cls) {
        EXPECT_GT(kPaperTable2[bg][pol][cls], 0.0);
        EXPECT_GE(kPaperTable2Sd[bg][pol][cls], 0.0);
      }
    }
  }
  // The paper's own headline claims hold for its own numbers.
  double worst_gap = 0.0, best_speedup = 0.0;
  for (int bg = 0; bg < 4; ++bg) {
    for (int cls = 0; cls < 3; ++cls) {
      double best_static = 1e18;
      for (int pol = 0; pol < 4; ++pol) {
        best_static = std::min(best_static, kPaperTable2[bg][pol][cls]);
      }
      worst_gap = std::max(
          worst_gap, kPaperTable2[bg][kDynamic][cls] / best_static - 1.0);
      best_speedup = std::max(best_speedup,
                              kPaperTable2[bg][kNo][cls] /
                                  kPaperTable2[bg][kDynamic][cls]);
    }
  }
  EXPECT_LE(worst_gap, kPaperDynamicBound + 1e-9);
  EXPECT_GE(best_speedup, kPaperSpeedupClaim - 0.05);
}

TEST(Policies, FactoryCoversAllNames) {
  vsim::TransferConfig cfg;
  cfg.total_bytes = 1000;
  vsim::TransferExperiment exp(cfg);
  for (const char* name :
       {"NO", "LIGHT", "MEDIUM", "HEAVY", "DYNAMIC", "METRIC", "QUEUE"}) {
    const auto p = make_policy(name, exp);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_GE(p->level(), 0);
  }
  EXPECT_THROW((void)make_policy("NOPE", exp), std::invalid_argument);
}

TEST(Policies, StaticLevelsMatchNames) {
  vsim::TransferConfig cfg;
  vsim::TransferExperiment exp(cfg);
  EXPECT_EQ(make_policy("NO", exp)->level(), 0);
  EXPECT_EQ(make_policy("LIGHT", exp)->level(), 1);
  EXPECT_EQ(make_policy("MEDIUM", exp)->level(), 2);
  EXPECT_EQ(make_policy("HEAVY", exp)->level(), 3);
}

TEST(Policies, TrainedModelReflectsCodecModel) {
  const auto model = vsim::CodecModel::defaults();
  const auto trained =
      trained_from_model(model, corpus::Compressibility::kHigh);
  ASSERT_EQ(trained.size(), 4u);
  EXPECT_DOUBLE_EQ(trained[0].ratio, 1.0);
  EXPECT_LT(trained[3].compress_bytes_s, trained[1].compress_bytes_s);
  EXPECT_LT(trained[3].ratio, trained[1].ratio);
  // Speed factor scales speeds, not ratios.
  const auto scaled =
      trained_from_model(model, corpus::Compressibility::kHigh, 0.5);
  EXPECT_DOUBLE_EQ(scaled[1].compress_bytes_s,
                   trained[1].compress_bytes_s * 0.5);
  EXPECT_DOUBLE_EQ(scaled[1].ratio, trained[1].ratio);
}

}  // namespace
}  // namespace strato::expkit
