// SpscRing, ThreadPool and BufferPool behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "common/buffer_pool.h"
#include "common/spsc_ring.h"
#include "common/thread_pool.h"

namespace strato::common {
namespace {

TEST(SpscRing, FifoOrder) {
  SpscRing<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(SpscRing, TryPushRespectsCapacity) {
  SpscRing<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_DOUBLE_EQ(q.fill(), 1.0);
}

TEST(SpscRing, CloseDrainsThenEnds) {
  SpscRing<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));  // closed
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());  // drained + closed
}

TEST(SpscRing, BlockingHandoffAcrossThreads) {
  SpscRing<int> q(4);
  constexpr int kN = 10000;
  std::thread producer([&] {
    for (int i = 0; i < kN; ++i) ASSERT_TRUE(q.push(i));
    q.close();
  });
  long long sum = 0;
  int count = 0;
  while (auto v = q.pop()) {
    sum += *v;
    ++count;
  }
  producer.join();
  EXPECT_EQ(count, kN);
  EXPECT_EQ(sum, static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(SpscRing, TryPopNonBlocking) {
  SpscRing<int> q(4);
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(9);
  EXPECT_EQ(q.try_pop().value(), 9);
}

TEST(SpscRing, ZeroCapacityCoercedToOne) {
  SpscRing<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_FALSE(q.try_push(2));
}

TEST(ThreadPool, ExecutesAllJobs) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 6 * 7; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&] { done.fetch_add(1); });
    }
  }
  // Destruction drains the queue: every accepted job ran.
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPool, ShutdownDrainsQueuedJobs) {
  std::atomic<int> done{0};
  ThreadPool pool(1);
  // The first job parks the single worker so the rest provably sit in the
  // queue when shutdown() is called.
  std::promise<void> release;
  auto released = release.get_future().share();
  pool.submit([released] { released.wait(); });
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { done.fetch_add(1); });
  }
  release.set_value();
  pool.shutdown();
  EXPECT_EQ(done.load(), 50);
  // Idempotent.
  pool.shutdown();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPool, SubmitAfterShutdownThrowsRepeatablyAndKeepsResults) {
  ThreadPool pool(2);
  auto before = pool.submit([] { return 41; });
  pool.shutdown();
  // Rejection is stable (no partial enqueue, no state corruption) and
  // work accepted before shutdown still yields its result.
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(pool.submit([] { return 1; }), std::runtime_error);
  }
  EXPECT_EQ(before.get(), 41);
}

TEST(ThreadPool, ExceptionInTaskDoesNotKillWorker) {
  ThreadPool pool(1);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The same (only) worker must still execute later jobs.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ZeroThreadsCoercedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

// --- BufferPool -------------------------------------------------------------

TEST(BufferPool, ExhaustionDropsBeyondBound) {
  // A pool bounded at 2 free buffers: the free list never grows past the
  // bound, every release beyond it is dropped (freed), and the counters
  // say so exactly.
  BufferPool pool(2);
  std::vector<Bytes> held;
  for (int i = 0; i < 5; ++i) held.push_back(pool.acquire(1024));
  for (auto& b : held) pool.release(std::move(b));
  const auto s = pool.stats();
  EXPECT_EQ(s.acquires, 5u);
  EXPECT_EQ(s.reuses, 0u);  // pool was empty: all 5 were fresh
  EXPECT_EQ(s.free_buffers, 2u);
  EXPECT_EQ(s.drops, 3u);
}

TEST(BufferPool, ReuseAfterRelease) {
  BufferPool pool(4);
  Bytes a = pool.acquire(4096);
  const auto* data = a.data();
  a.resize(100);
  std::fill(a.begin(), a.end(), 0xEE);  // stale contents must not leak out
  pool.release(std::move(a));

  Bytes b = pool.acquire(4096);
  EXPECT_EQ(b.data(), data);  // the same allocation came back
  EXPECT_EQ(b.size(), 0u);    // handed out empty despite stale contents
  EXPECT_GE(b.capacity(), 4096u);
  const auto s = pool.stats();
  EXPECT_EQ(s.acquires, 2u);
  EXPECT_EQ(s.reuses, 1u);

  // Release and re-acquire through the RAII lease as well.
  pool.release(std::move(b));
  {
    PoolLease lease(pool, 4096);
    EXPECT_EQ(lease->data(), data);
  }
  EXPECT_EQ(pool.stats().free_buffers, 1u);  // lease returned it
}

TEST(BufferPool, AcquirePrefersAlreadyLargeBuffer) {
  BufferPool pool(4);
  Bytes small = pool.acquire(64);
  Bytes large = pool.acquire(1 << 16);
  const auto* large_data = large.data();
  pool.release(std::move(small));
  pool.release(std::move(large));
  // Asking for a big buffer must pick the big pooled one, not grow the
  // small one.
  Bytes got = pool.acquire(1 << 16);
  EXPECT_EQ(got.data(), large_data);
}

TEST(BufferPool, ConcurrentAcquireReleaseKeepsInvariants) {
  // The pipeline's usage shape: several threads acquiring and releasing
  // concurrently. Correctness here is "no crash/race (TSan) and counters
  // consistent", not any particular interleaving.
  BufferPool pool(8);
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool] {
      for (int i = 0; i < kIters; ++i) {
        Bytes buf = pool.acquire(512 + (i % 7) * 1024);
        buf.push_back(static_cast<std::uint8_t>(i));
        pool.release(std::move(buf));
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = pool.stats();
  EXPECT_EQ(s.acquires, static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_LE(s.free_buffers, 8u);
  // Everything released came either back to the list or was dropped.
  EXPECT_GE(s.reuses + s.drops + s.free_buffers, 0u);
  EXPECT_GT(s.reuses, 0u);  // steady state must actually recycle
}

}  // namespace
}  // namespace strato::common
