// SpscRing and ThreadPool behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>

#include "common/spsc_ring.h"
#include "common/thread_pool.h"

namespace strato::common {
namespace {

TEST(SpscRing, FifoOrder) {
  SpscRing<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 5; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(SpscRing, TryPushRespectsCapacity) {
  SpscRing<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_DOUBLE_EQ(q.fill(), 1.0);
}

TEST(SpscRing, CloseDrainsThenEnds) {
  SpscRing<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));  // closed
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());  // drained + closed
}

TEST(SpscRing, BlockingHandoffAcrossThreads) {
  SpscRing<int> q(4);
  constexpr int kN = 10000;
  std::thread producer([&] {
    for (int i = 0; i < kN; ++i) ASSERT_TRUE(q.push(i));
    q.close();
  });
  long long sum = 0;
  int count = 0;
  while (auto v = q.pop()) {
    sum += *v;
    ++count;
  }
  producer.join();
  EXPECT_EQ(count, kN);
  EXPECT_EQ(sum, static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(SpscRing, TryPopNonBlocking) {
  SpscRing<int> q(4);
  EXPECT_FALSE(q.try_pop().has_value());
  q.push(9);
  EXPECT_EQ(q.try_pop().value(), 9);
}

TEST(SpscRing, ZeroCapacityCoercedToOne) {
  SpscRing<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_FALSE(q.try_push(2));
}

TEST(ThreadPool, ExecutesAllJobs) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 6 * 7; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&] { done.fetch_add(1); });
    }
  }
  // Destruction drains the queue: every accepted job ran.
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPool, ShutdownDrainsQueuedJobs) {
  std::atomic<int> done{0};
  ThreadPool pool(1);
  // The first job parks the single worker so the rest provably sit in the
  // queue when shutdown() is called.
  std::promise<void> release;
  auto released = release.get_future().share();
  pool.submit([released] { released.wait(); });
  for (int i = 0; i < 50; ++i) {
    pool.submit([&] { done.fetch_add(1); });
  }
  release.set_value();
  pool.shutdown();
  EXPECT_EQ(done.load(), 50);
  // Idempotent.
  pool.shutdown();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] { return 1; }), std::runtime_error);
}

TEST(ThreadPool, ExceptionInTaskDoesNotKillWorker) {
  ThreadPool pool(1);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The same (only) worker must still execute later jobs.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ZeroThreadsCoercedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

}  // namespace
}  // namespace strato::common
