// Task placement: co-location decides which network channels contend.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "dataflow/executor.h"
#include "dataflow/stdtasks.h"

namespace strato::dataflow {
namespace {

/// Two parallel sender->receiver pairs moving `total` bytes each over
/// network channels; returns wall seconds under the given placement.
constexpr std::size_t kTotal = 3 << 20;

double run_pairs(const std::vector<int>& placement, double link_bytes_s) {
  std::atomic<std::uint64_t> r1{0}, b1{0}, r2{0}, b2{0};
  JobGraph g;
  const int s1 = g.add_vertex("s1", [] {
    return std::make_unique<CorpusSource>(corpus::Compressibility::kLow,
                                          kTotal, 64 * 1024, 1);
  });
  const int d1 = g.add_vertex("d1", [&] {
    return std::make_unique<CountingSink>(r1, b1);
  });
  const int s2 = g.add_vertex("s2", [] {
    return std::make_unique<CorpusSource>(corpus::Compressibility::kLow,
                                          kTotal, 64 * 1024, 2);
  });
  const int d2 = g.add_vertex("d2", [&] {
    return std::make_unique<CountingSink>(r2, b2);
  });
  g.connect(s1, d1, ChannelType::kNetwork);
  g.connect(s2, d2, ChannelType::kNetwork);

  ExecutorConfig cfg;
  cfg.shared_link_bytes_s = link_bytes_s;
  cfg.placement = placement;
  Executor exec(cfg);
  const auto stats = exec.execute(g);
  EXPECT_TRUE(stats.ok()) << stats.error;
  EXPECT_EQ(b1.load(), kTotal);
  EXPECT_EQ(b2.load(), kTotal);
  return stats.wall_seconds;
}

TEST(Placement, CoLocatedSendersShareTheEgressNic) {
  // Both senders on host 0: one egress NIC carries 6 MB -> ~2x slower
  // than senders on separate hosts (one NIC each).
  const double shared = run_pairs({0, 1, 0, 1}, 30e6);
  const double separate = run_pairs({0, 1, 2, 3}, 30e6);
  EXPECT_GT(shared, separate * 1.4);
}

TEST(Placement, LoopbackEdgesAreUnthrottled) {
  // Sender and receiver co-located: the channel bypasses the NIC and a
  // tiny link budget does not matter.
  const double loopback = run_pairs({0, 0, 1, 1}, 2e6);
  EXPECT_LT(loopback, 3.0);  // 2 MB/s NIC would need ~3 s
}

TEST(Placement, BadPlacementSizeIsReported) {
  JobGraph g;
  (void)g.add_vertex("v", [] { return nullptr; });
  ExecutorConfig cfg;
  cfg.placement = {0, 1};  // wrong size
  Executor exec(cfg);
  const auto stats = exec.execute(g);
  EXPECT_FALSE(stats.ok());
  EXPECT_NE(stats.error.find("placement"), std::string::npos);
}

TEST(Placement, EmptyPlacementKeepsLegacyGlobalLink) {
  const double legacy = run_pairs({}, 30e6);
  const double shared = run_pairs({0, 1, 0, 1}, 30e6);
  // Legacy: both flows share ONE link; same contention as co-location.
  EXPECT_NEAR(legacy, shared, std::max(0.25, 0.6 * shared));
}

}  // namespace
}  // namespace strato::dataflow
