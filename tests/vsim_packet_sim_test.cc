// DES kernel unit tests and fluid-vs-packet model cross-validation.
#include <gtest/gtest.h>

#include "expkit/policies.h"
#include "vsim/event_queue.h"
#include "vsim/packet_sim.h"
#include "vsim/transfer.h"

namespace strato::vsim {
namespace {

using common::SimTime;

// --- event queue -----------------------------------------------------------

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::seconds(3), [&] { order.push_back(3); });
  q.schedule(SimTime::seconds(1), [&] { order.push_back(1); });
  q.schedule(SimTime::seconds(2), [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), SimTime::seconds(3));
}

TEST(EventQueue, StableFifoForTies) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(SimTime::seconds(1), [&order, i] { order.push_back(i); });
  }
  q.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HandlersCanScheduleMore) {
  EventQueue q;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) q.schedule_in(SimTime::ms(100), chain);
  };
  q.schedule(SimTime(), chain);
  q.run();
  EXPECT_EQ(fired, 10);
  EXPECT_NEAR(q.now().to_seconds(), 0.9, 1e-9);
}

TEST(EventQueue, RunRespectsEventBudget) {
  EventQueue q;
  std::function<void()> forever = [&] { q.schedule_in(SimTime::ms(1), forever); };
  q.schedule(SimTime(), forever);
  EXPECT_EQ(q.run(100), 100u);
  EXPECT_FALSE(q.empty());
}

// --- cross-validation --------------------------------------------------------

struct Cell {
  corpus::Compressibility data;
  int bg;
  const char* policy;
};

class CrossValidation : public ::testing::TestWithParam<Cell> {};

TEST_P(CrossValidation, FluidAndPacketModelsAgree) {
  const auto [data, bg, policy_name] = GetParam();
  constexpr std::uint64_t kBytes = 1'000'000'000ULL;

  TransferConfig fluid_cfg;
  fluid_cfg.data = data;
  fluid_cfg.bg_flows = bg;
  fluid_cfg.total_bytes = kBytes;
  fluid_cfg.seed = 77;
  TransferExperiment fluid(fluid_cfg);
  const auto fluid_policy = expkit::make_policy(policy_name, fluid);
  const double fluid_s = fluid.run(*fluid_policy).completion_s;

  PacketSimConfig pkt_cfg;
  pkt_cfg.data = data;
  pkt_cfg.bg_flows = bg;
  pkt_cfg.total_bytes = kBytes;
  pkt_cfg.seed = 77;
  TransferExperiment dummy(fluid_cfg);  // policy factory needs a context
  const auto pkt_policy = expkit::make_policy(policy_name, dummy);
  const auto pkt = run_packet_transfer(pkt_cfg, *pkt_policy);

  EXPECT_GT(pkt.fg_packets, 0u);
  EXPECT_EQ(pkt.raw_bytes, kBytes);
  // Two independent mechanisms (weighted fluid share vs per-packet DRR)
  // must agree on completion time within a modest tolerance.
  EXPECT_NEAR(pkt.completion_s, fluid_s, 0.15 * fluid_s)
      << corpus::to_string(data) << " bg=" << bg << " " << policy_name;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CrossValidation,
    ::testing::Values(Cell{corpus::Compressibility::kHigh, 0, "NO"},
                      Cell{corpus::Compressibility::kHigh, 0, "LIGHT"},
                      Cell{corpus::Compressibility::kHigh, 2, "LIGHT"},
                      Cell{corpus::Compressibility::kLow, 2, "NO"},
                      Cell{corpus::Compressibility::kModerate, 1, "DYNAMIC"}));

TEST(PacketSim, BackgroundFlowsConsumeTheirShare) {
  PacketSimConfig cfg;
  cfg.data = corpus::Compressibility::kLow;
  cfg.bg_flows = 2;
  cfg.total_bytes = 200'000'000ULL;
  core::StaticPolicy no(0, "NO");
  const auto res = run_packet_transfer(cfg, no);
  // With weight 0.65 each, two bg flows move ~1.3x the fg byte volume.
  const double ratio = static_cast<double>(res.bg_packets) /
                       static_cast<double>(res.fg_packets);
  EXPECT_NEAR(ratio, 1.3, 0.25);
}

TEST(PacketSim, SoloFlowSaturatesTheLink) {
  PacketSimConfig cfg;
  cfg.data = corpus::Compressibility::kLow;
  cfg.bg_flows = 0;
  cfg.total_bytes = 500'000'000ULL;
  core::StaticPolicy no(0, "NO");
  const auto res = run_packet_transfer(cfg, no);
  EXPECT_EQ(res.bg_packets, 0u);
  // ~0.5 GB over the KVM-para link at the CPU-stage cap (~83 MB/s).
  EXPECT_NEAR(res.completion_s, 6.0, 1.2);
}

TEST(PacketSim, DeterministicPerSeed) {
  PacketSimConfig cfg;
  cfg.total_bytes = 100'000'000ULL;
  core::StaticPolicy a(1, "L"), b(1, "L");
  EXPECT_DOUBLE_EQ(run_packet_transfer(cfg, a).completion_s,
                   run_packet_transfer(cfg, b).completion_s);
}

}  // namespace
}  // namespace strato::vsim
