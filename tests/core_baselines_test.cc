// Related-work baseline policies: the metric-driven model (and how skewed
// VM metrics fool it — the paper's Section II point) and the queue model.
#include <gtest/gtest.h>

#include "core/baselines.h"

namespace strato::core {
namespace {

using common::SimTime;

/// Scriptable metrics for tests.
class FakeMetrics final : public SystemMetricsProvider {
 public:
  double idle = 1.0;
  double bandwidth = 100e6;
  [[nodiscard]] double displayed_cpu_idle() const override { return idle; }
  [[nodiscard]] double displayed_bandwidth() const override {
    return bandwidth;
  }
};

/// The ladder the tests reason about: level 1 compresses 4x at 200 MB/s,
/// level 2 compresses 10x at 30 MB/s.
std::vector<TrainedLevelModel> ladder() {
  return {
      {12e9, 1.0},    // NO
      {200e6, 0.25},  // LIGHT
      {30e6, 0.10},   // MEDIUM-ish
  };
}

TEST(MetricDriven, PicksNoCompressionOnFastLink) {
  FakeMetrics m;
  m.bandwidth = 10e9;  // link much faster than any codec
  MetricDrivenPolicy p(ladder(), m, SimTime::seconds(1));
  p.on_block(1000, SimTime::seconds(0));  // first call decides immediately
  EXPECT_EQ(p.level(), 0);
}

TEST(MetricDriven, PicksLightOnSlowLinkWithIdleCpu) {
  FakeMetrics m;
  m.bandwidth = 20e6;  // 20 MB/s link
  m.idle = 1.0;
  // costs: NO: 1/20e6; LIGHT: max(1/200e6, 0.25/20e6)=1/80e6 (best);
  // HEAVY-ish: max(1/30e6, 0.1/20e6)=1/30e6.
  MetricDrivenPolicy p(ladder(), m, SimTime::seconds(1));
  p.on_block(1000, SimTime::seconds(0));
  EXPECT_EQ(p.level(), 1);
}

TEST(MetricDriven, PicksHeavyOnVerySlowLink) {
  FakeMetrics m;
  m.bandwidth = 1e6;  // 1 MB/s: ratio dominates everything
  MetricDrivenPolicy p(ladder(), m, SimTime::seconds(1));
  p.on_block(1000, SimTime::seconds(0));
  EXPECT_EQ(p.level(), 2);
}

TEST(MetricDriven, SkewedCpuDisplayCausesWrongChoice) {
  // The paper's core observation: the guest displays a nearly idle CPU
  // while the host-side truth is saturation. Believing idle=0.95 on a
  // 20 MB/s link picks LIGHT (as above) — but if the metrics displayed
  // the truth (idle=0.05) the same model would refuse to compress.
  FakeMetrics skewed;
  skewed.bandwidth = 20e6;
  skewed.idle = 0.95;
  MetricDrivenPolicy believing(ladder(), skewed, SimTime::seconds(1));
  believing.on_block(1, SimTime::seconds(0));
  EXPECT_EQ(believing.level(), 1);

  FakeMetrics truthful;
  truthful.bandwidth = 20e6;
  truthful.idle = 0.05;  // compression would run 20x slower
  MetricDrivenPolicy honest(ladder(), truthful, SimTime::seconds(1));
  honest.on_block(1, SimTime::seconds(0));
  EXPECT_EQ(honest.level(), 0);
}

TEST(MetricDriven, ReevaluatesOnPeriodOnly) {
  FakeMetrics m;
  m.bandwidth = 10e9;
  MetricDrivenPolicy p(ladder(), m, SimTime::seconds(2));
  p.on_block(1, SimTime::seconds(0));
  EXPECT_EQ(p.level(), 0);
  m.bandwidth = 1e6;  // world changed...
  p.on_block(1, SimTime::seconds(1));
  EXPECT_EQ(p.level(), 0);  // ...but the period has not elapsed
  p.on_block(1, SimTime::seconds(2.5));
  EXPECT_EQ(p.level(), 2);  // now it reacts
}

TEST(QueuePolicy, RaisesOnGrowingQueue) {
  double fill = 0.1;
  QueuePolicy p([&] { return fill; }, 4, SimTime::seconds(1));
  p.on_block(1, SimTime::seconds(0));  // baseline sample
  fill = 0.5;
  p.on_block(1, SimTime::seconds(1.5));
  EXPECT_EQ(p.level(), 1);
  fill = 0.9;
  p.on_block(1, SimTime::seconds(3));
  EXPECT_EQ(p.level(), 2);
}

TEST(QueuePolicy, LowersOnDrainingQueue) {
  double fill = 0.9;
  QueuePolicy p([&] { return fill; }, 4, SimTime::seconds(1));
  p.on_block(1, SimTime::seconds(0));
  fill = 0.8;
  p.on_block(1, SimTime::seconds(1.5));  // rising? no: falling
  EXPECT_EQ(p.level(), 0);               // already at floor, stays clamped
  fill = 0.95;
  p.on_block(1, SimTime::seconds(3));
  EXPECT_EQ(p.level(), 1);
  fill = 0.2;
  p.on_block(1, SimTime::seconds(4.5));
  EXPECT_EQ(p.level(), 0);
}

TEST(QueuePolicy, DeadbandIgnoresNoise) {
  double fill = 0.5;
  QueuePolicy p([&] { return fill; }, 4, SimTime::seconds(1), 0.1);
  p.on_block(1, SimTime::seconds(0));
  fill = 0.55;  // within deadband
  p.on_block(1, SimTime::seconds(1.5));
  EXPECT_EQ(p.level(), 0);
}

TEST(QueuePolicy, ClampsAtLadderTop) {
  double fill = 0.0;
  QueuePolicy p([&] { return fill; }, 2, SimTime::seconds(1));
  p.on_block(1, SimTime::seconds(0));
  for (int i = 1; i < 10; ++i) {
    fill = std::min(1.0, fill + 0.3);
    p.on_block(1, SimTime::seconds(1.0 + 1.1 * i));
  }
  EXPECT_EQ(p.level(), 1);  // num_levels - 1
}

}  // namespace
}  // namespace strato::core
