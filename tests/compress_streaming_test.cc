// Cross-block (streaming) LZ: round trips, window semantics, and the
// ratio advantage over self-contained blocks.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/streaming.h"
#include "corpus/generator.h"

namespace strato::compress {
namespace {

TEST(StreamingLz, BlockSequenceRoundTrips) {
  StreamingLzCompressor comp;
  StreamingLzDecompressor dec;
  auto gen = corpus::make_generator(corpus::Compressibility::kModerate, 1);
  for (int b = 0; b < 50; ++b) {
    const auto raw = corpus::take(*gen, 4096);
    const auto packed = comp.compress_block(raw);
    EXPECT_EQ(dec.decompress_block(packed, raw.size()), raw) << b;
  }
}

class StreamingChunks : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingChunks, RandomBlockSizesRoundTrip) {
  common::Xoshiro256 rng(GetParam());
  StreamingLzCompressor comp;
  StreamingLzDecompressor dec;
  auto gen = corpus::make_generator(
      static_cast<corpus::Compressibility>(GetParam() % 3), GetParam());
  for (int b = 0; b < 30; ++b) {
    const auto raw = corpus::take(*gen, rng.below(20000));
    const auto packed = comp.compress_block(raw);
    ASSERT_EQ(dec.decompress_block(packed, raw.size()), raw);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingChunks,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(StreamingLz, BeatsIndependentBlocksOnSmallBlocks) {
  // With 4 KB blocks the cold-dictionary penalty of self-contained blocks
  // is large; the rolling window must clearly win on LZ-friendly data.
  constexpr std::size_t kBlock = 4096;
  constexpr int kBlocks = 64;
  auto gen = corpus::make_generator(corpus::Compressibility::kModerate, 3);

  StreamingLzCompressor streaming;
  std::size_t streaming_bytes = 0;
  std::size_t independent_bytes = 0;
  Lz77Params params;  // FAST defaults for both sides
  common::Bytes scratch(lz77_max_compressed_size(kBlock));
  for (int b = 0; b < kBlocks; ++b) {
    const auto raw = corpus::take(*gen, kBlock);
    streaming_bytes += streaming.compress_block(raw).size();
    independent_bytes += lz77_compress(raw, scratch, params);
  }
  EXPECT_LT(streaming_bytes, independent_bytes * 0.9);
}

TEST(StreamingLz, HistoryWindowIsBounded) {
  StreamingLzCompressor comp(Lz77Params{}, 8192);
  auto gen = corpus::make_generator(corpus::Compressibility::kLow, 4);
  for (int b = 0; b < 10; ++b) {
    (void)comp.compress_block(corpus::take(*gen, 4096));
    EXPECT_LE(comp.history_size(), 8192u);
  }
  EXPECT_EQ(comp.history_size(), 8192u);
}

TEST(StreamingLz, ResetDesynchronizesByDesign) {
  // The operational hazard the paper's self-contained blocks avoid: after
  // a one-sided reset the streams disagree. Decoding either fails
  // structurally or yields wrong bytes — both acceptable here, but it
  // demonstrates why order/loss tolerance needs block independence.
  auto gen = corpus::make_generator(corpus::Compressibility::kModerate, 5);
  StreamingLzCompressor comp;
  StreamingLzDecompressor dec;
  const auto b1 = corpus::take(*gen, 8000);
  const auto p1 = comp.compress_block(b1);
  EXPECT_EQ(dec.decompress_block(p1, b1.size()), b1);

  const auto b2 = corpus::take(*gen, 8000);
  const auto p2 = comp.compress_block(b2);
  dec.reset();  // receiver lost its window
  bool mismatch = false;
  try {
    mismatch = dec.decompress_block(p2, b2.size()) != b2;
  } catch (const CodecError&) {
    mismatch = true;
  }
  EXPECT_TRUE(mismatch);
}

TEST(StreamingLz, SynchronizedResetRecovers) {
  auto gen = corpus::make_generator(corpus::Compressibility::kModerate, 6);
  StreamingLzCompressor comp;
  StreamingLzDecompressor dec;
  (void)comp.compress_block(corpus::take(*gen, 5000));
  comp.reset();
  dec.reset();  // both sides resync
  const auto raw = corpus::take(*gen, 5000);
  const auto packed = comp.compress_block(raw);
  EXPECT_EQ(dec.decompress_block(packed, raw.size()), raw);
}

TEST(StreamingLz, EmptyBlocksAreHarmless) {
  StreamingLzCompressor comp;
  StreamingLzDecompressor dec;
  const auto packed = comp.compress_block({});
  EXPECT_EQ(dec.decompress_block(packed, 0).size(), 0u);
  auto gen = corpus::make_generator(corpus::Compressibility::kHigh, 7);
  const auto raw = corpus::take(*gen, 3000);
  const auto p2 = comp.compress_block(raw);
  EXPECT_EQ(dec.decompress_block(p2, raw.size()), raw);
}

}  // namespace
}  // namespace strato::compress
