// SIMD kernel-dispatch identity tests.
//
// The kernel layer's contract (DESIGN.md section 12) is that vectorized
// paths are an implementation detail: every ISA emits the exact scalar
// wire and decodes it back byte-for-byte. Three layers of checks:
//
//   * kernel level — match_length / copy_match / hash4_bulk forced to
//     each supported ISA against the scalar table, sweeping the hazard
//     classes (copy distances 1..64, lengths and tails straddling the
//     16/32-byte vector widths, buffers ending within the wild-copy pad);
//   * wire level — verify::Oracle::check_simd_identity over corpora at
//     block sizes straddling 16/32-byte multiples, all registry levels;
//   * dispatch level — ScopedIsa forcing and restoring.
//
// The -DSTRATO_SIMD=OFF build runs this same suite with only the scalar
// table available (the ISA ladder collapses to {scalar}), and the golden
// wire vectors pin cross-build identity; check_asan.sh builds both.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/simd.h"
#include "compress/registry.h"
#include "corpus/generator.h"
#include "verify/oracle.h"

namespace strato {
namespace {

namespace simd = common::simd;

/// All ISAs this build + CPU can force, scalar first.
std::vector<simd::Isa> supported_isas() {
  std::vector<simd::Isa> out{simd::Isa::kScalar};
  for (const simd::Isa isa :
       {simd::Isa::kSse2, simd::Isa::kAvx2, simd::Isa::kNeon}) {
    simd::ScopedIsa forced(isa);
    if (forced.ok()) out.push_back(isa);
  }
  return out;
}

// --- dispatch ----------------------------------------------------------------

TEST(SimdDispatch, ScopedIsaForcesAndRestores) {
  const simd::Isa before = simd::active_isa();
  for (const simd::Isa isa : supported_isas()) {
    simd::ScopedIsa forced(isa);
    ASSERT_TRUE(forced.ok());
    EXPECT_EQ(simd::active_isa(), isa);
  }
  EXPECT_EQ(simd::active_isa(), before);
}

TEST(SimdDispatch, UnsupportedIsaLeavesDispatchUnchanged) {
#if !defined(STRATO_SIMD_NEON)
  const simd::Isa before = simd::active_isa();
  simd::ScopedIsa forced(simd::Isa::kNeon);
  EXPECT_FALSE(forced.ok());
  EXPECT_EQ(simd::active_isa(), before);
#else
  GTEST_SKIP() << "NEON build: every candidate ISA is supported";
#endif
}

// --- kernel level ------------------------------------------------------------

TEST(SimdKernels, MatchLengthAgreesWithScalarAtEveryDivergence) {
  // Two buffers diverging at a planted offset; the reported prefix must
  // be exact for offsets straddling every 16/32-byte lane boundary.
  constexpr std::size_t kN = 200;
  common::Xoshiro256 rng(0x51D0);
  common::Bytes a(kN), b(kN);
  for (const simd::Isa isa : supported_isas()) {
    simd::ScopedIsa forced(isa);
    const simd::Kernels& k = simd::kernels();
    for (std::size_t diverge = 0; diverge <= 130; ++diverge) {
      for (std::size_t i = 0; i < kN; ++i) {
        a[i] = static_cast<std::uint8_t>(rng());
        b[i] = i < diverge ? a[i] : static_cast<std::uint8_t>(a[i] + 1);
      }
      EXPECT_EQ(k.match_length(a.data(), b.data(), a.data() + kN), diverge)
          << "isa=" << simd::to_string(isa);
      // Limit before the divergence point: the limit must win.
      if (diverge >= 2) {
        const std::size_t lim = diverge - 1;
        EXPECT_EQ(k.match_length(a.data(), b.data(), a.data() + lim), lim)
            << "isa=" << simd::to_string(isa);
      }
    }
  }
}

TEST(SimdKernels, CopyMatchSweepsDistancesLengthsAndTails) {
  // The overlap hazard class: every distance 1..64 (below both vector
  // widths), lengths straddling 16/32-byte multiples, and scratch that
  // ends within 0..33 bytes of the copy — the exact-tail fallback
  // boundary. The buffer is sized exactly to wild_end, so a write past
  // it is an out-of-bounds store the sanitizer job catches.
  common::Xoshiro256 rng(0xC0B1);
  for (const simd::Isa isa : supported_isas()) {
    simd::ScopedIsa forced(isa);
    const simd::Kernels& k = simd::kernels();
    for (std::size_t dist = 1; dist <= 64; ++dist) {
      for (const std::size_t len :
           {std::size_t{1}, std::size_t{4}, std::size_t{15}, std::size_t{16},
            std::size_t{17}, std::size_t{31}, std::size_t{32},
            std::size_t{33}, std::size_t{95}, std::size_t{259}}) {
        for (const std::size_t slack :
             {std::size_t{0}, std::size_t{1}, std::size_t{15},
              std::size_t{16}, std::size_t{17}, std::size_t{31},
              std::size_t{32}, std::size_t{33}}) {
          const std::size_t prefix = dist + rng.below(32);
          std::vector<std::uint8_t> buf(prefix + len + slack);
          for (auto& v : buf) v = static_cast<std::uint8_t>(rng());
          std::vector<std::uint8_t> ref = buf;
          for (std::size_t i = 0; i < len; ++i) {
            ref[prefix + i] = ref[prefix + i - dist];
          }
          k.copy_match(buf.data() + prefix, dist, len,
                       buf.data() + buf.size());
          // Copied region exact; bytes past dst+len inside the slack are
          // wild (the contract allows clobbering up to wild_end).
          ASSERT_EQ(std::memcmp(buf.data(), ref.data(), prefix + len), 0)
              << "isa=" << simd::to_string(isa) << " dist=" << dist
              << " len=" << len << " slack=" << slack;
        }
      }
    }
  }
}

TEST(SimdKernels, Hash4BulkAgreesWithScalar) {
  constexpr int kHashBits = 17;
  common::Xoshiro256 rng(0x4A54);
  common::Bytes src(4 * 1024 + 37);
  for (auto& v : src) v = static_cast<std::uint8_t>(rng());
  for (const std::size_t count :
       {std::size_t{1}, std::size_t{15}, std::size_t{16}, std::size_t{17},
        std::size_t{31}, std::size_t{32}, std::size_t{33},
        std::size_t{1000}, src.size() - 3}) {
    std::vector<std::uint32_t> reference(count);
    {
      simd::ScopedIsa scalar(simd::Isa::kScalar);
      simd::kernels().hash4_bulk(src.data(), count, kHashBits,
                                 reference.data());
    }
    for (const simd::Isa isa : supported_isas()) {
      simd::ScopedIsa forced(isa);
      std::vector<std::uint32_t> got(count);
      simd::kernels().hash4_bulk(src.data(), count, kHashBits, got.data());
      EXPECT_EQ(got, reference)
          << "isa=" << simd::to_string(isa) << " count=" << count;
    }
  }
}

// --- wire level --------------------------------------------------------------

TEST(SimdWire, OracleIdentityOnCorporaStraddlingLaneWidths) {
  const verify::Oracle oracle(compress::CodecRegistry::extended());
  verify::OracleReport report;
  for (const auto c :
       {corpus::Compressibility::kHigh, corpus::Compressibility::kModerate,
        corpus::Compressibility::kLow}) {
    auto gen = corpus::make_generator(c, 7);
    // Block sizes straddling 16/32-byte multiples around a 16 KiB base.
    for (const std::size_t n : {16 * 1024 - 17, 16 * 1024 - 1, 16 * 1024,
                                16 * 1024 + 1, 16 * 1024 + 31}) {
      const common::Bytes payload = corpus::take(*gen, n);
      oracle.check_simd_identity(
          payload, "corpus=" + std::to_string(static_cast<int>(c)) +
                       " n=" + std::to_string(n),
          report);
    }
  }
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.checks, 0u);
}

TEST(SimdWire, OverlapDistanceRegressionRoundTrips) {
  // Payloads engineered so the decoder replays matches at every distance
  // 1..64, with the final run truncated at the payload end — the match
  // lands within the last bytes of the exact-size decode scratch.
  const verify::Oracle oracle(compress::CodecRegistry::extended());
  verify::OracleReport report;
  common::Xoshiro256 rng(0xD157);
  for (std::size_t dist = 1; dist <= 64; ++dist) {
    common::Bytes payload;
    for (std::size_t i = 0; i < dist; ++i) {
      payload.push_back(static_cast<std::uint8_t>(rng()));
    }
    // Long periodic body, then a tail cut mid-period so the last match
    // ends 0..dist-1 bytes from the scratch end.
    const std::size_t body = 3 * dist + 300;
    for (std::size_t i = 0; i < body; ++i) {
      payload.push_back(payload[payload.size() - dist]);
    }
    payload.resize(payload.size() - rng.below(dist));
    oracle.check_simd_identity(payload, "dist=" + std::to_string(dist),
                               report);
  }
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(SimdWire, RandomizedPayloadsAllLevels) {
  const verify::Oracle oracle(compress::CodecRegistry::extended());
  verify::OracleReport report;
  common::Xoshiro256 rng(0xF00D);
  for (int round = 0; round < 8; ++round) {
    // Mixed structure: runs, noise, self-copies — then a size nudged to
    // straddle a vector-width multiple.
    common::Bytes payload;
    const std::size_t target = 1 + rng.below(32 * 1024);
    while (payload.size() < target) {
      switch (rng.below(3)) {
        case 0:
          payload.insert(payload.end(), 1 + rng.below(200),
                         static_cast<std::uint8_t>(rng()));
          break;
        case 1: {
          const std::size_t n = 1 + rng.below(200);
          for (std::size_t i = 0; i < n; ++i) {
            payload.push_back(static_cast<std::uint8_t>(rng()));
          }
          break;
        }
        default: {
          if (payload.empty()) break;
          const std::size_t start = rng.below(payload.size());
          const std::size_t n = std::min<std::size_t>(
              1 + rng.below(400), payload.size() - start);
          for (std::size_t i = 0; i < n; ++i) {
            payload.push_back(payload[start + i]);
          }
        }
      }
    }
    payload.resize((target & ~std::size_t{31}) | rng.below(34));
    oracle.check_simd_identity(payload, "round=" + std::to_string(round),
                               report);
  }
  EXPECT_TRUE(report.ok()) << report.summary();
}

}  // namespace
}  // namespace strato
