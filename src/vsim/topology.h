// Hierarchical link topology for the fleet simulator.
//
// The paper evaluates one foreground transfer on a single shared NIC
// (SharedLink). A fleet serves thousands of concurrent flows crossing a
// datacenter fabric: host NIC -> rack uplink -> spine -> WAN egress. This
// module models that fabric as
//
//   * a static Topology: links (capacity + fluctuation shape) and paths
//     (ordered link-id lists flows are pinned to);
//   * a LinkBank: per-link runtime state — one FluctuationProcess per
//     link (the paper's Fig. 2 capacity wobble, reused unchanged) plus an
//     optional chaos schedule;
//   * a MaxMinAllocator: weighted max-min fair shares across the whole
//     fabric via progressive filling, the multi-link generalization of
//     SharedLink's fg_rate = capacity / (1 + w_bg * k) formula. On the
//     degenerate single-link topology with one weight-1 foreground flow
//     and k weight-w_bg background flows it reproduces exactly that
//     expression, so the Table II calibration carries over untouched.
//
// Everything here is deterministic per seed and allocation-free on the
// hot path: the allocator reuses internal scratch between epochs (the
// fleet-alloc lint rule bans per-flow heap allocation in this layer).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/chaos.h"
#include "common/sim_time.h"
#include "vsim/link.h"
#include "vsim/profile.h"

namespace strato::vsim {

/// One physical link of the fabric.
struct LinkSpec {
  std::string name;                 ///< "host3.nic", "rack0.up", "spine"...
  double capacity_bytes_s = 117e6;  ///< nominal capacity
  FluctuationParams fluct;          ///< Fig. 2 style capacity wobble
};

/// Static fabric shape: links and the paths flows can be pinned to.
class Topology {
 public:
  using LinkId = std::uint32_t;
  using PathId = std::uint32_t;

  /// Add a link; returns its id.
  LinkId add_link(LinkSpec spec);
  /// Add a path (ordered link ids, all previously added); returns its id.
  PathId add_path(std::vector<LinkId> links);

  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] std::size_t path_count() const { return paths_.size(); }
  [[nodiscard]] const LinkSpec& link(LinkId id) const { return links_[id]; }
  [[nodiscard]] const std::vector<LinkId>& path(PathId id) const {
    return paths_[id];
  }
  [[nodiscard]] std::size_t host_count() const { return hosts_; }

  /// Path of host `h` staying inside the datacenter (nic -> rack ->
  /// spine). Valid for rack_spine_wan() topologies.
  [[nodiscard]] PathId intra_path(std::size_t host) const {
    return static_cast<PathId>(2 * host);
  }
  /// Path of host `h` leaving through the WAN egress.
  [[nodiscard]] PathId wan_path(std::size_t host) const {
    return static_cast<PathId>(2 * host + 1);
  }

  /// Degenerate topology: exactly the paper's single shared NIC — one
  /// link with the profile's capacity and fluctuation shape, one path
  /// over it. SharedLink is this topology with the weighted share
  /// evaluated in closed form.
  static Topology single(const VirtProfile& prof);

  /// Fleet fabric shape and capacities.
  struct FleetShape {
    int racks = 8;
    int hosts_per_rack = 16;
    double host_nic_bytes_s = 117e6;
    /// Rack uplink: oversubscribed vs sum of member NICs (production
    /// fabrics run 3:1 .. 8:1).
    double rack_uplink_bytes_s = 4 * 117e6;
    double spine_bytes_s = 16 * 117e6;
    double wan_bytes_s = 8 * 117e6;
    FluctuationParams nic_fluct;    ///< default: gentle Gaussian wobble
    FluctuationParams fabric_fluct; ///< rack/spine/wan links
  };

  /// Build a rack -> spine -> WAN fabric: one NIC link per host, one
  /// uplink per rack, one spine, one WAN egress. Per host two paths:
  /// intra_path(h) = [nic, rack, spine], wan_path(h) = [nic, rack,
  /// spine, wan].
  static Topology rack_spine_wan(const FleetShape& shape);

 private:
  std::vector<LinkSpec> links_;
  std::vector<std::vector<LinkId>> paths_;
  std::size_t hosts_ = 0;
};

/// Runtime state of every link: fluctuating capacity + chaos, advanced
/// lazily in virtual time (queries per link must be non-decreasing).
class LinkBank {
 public:
  /// Per-link FluctuationProcess seeded from `seed`; link 0 uses `seed`
  /// verbatim so the degenerate topology replays SharedLink's exact
  /// capacity series for the same seed.
  LinkBank(const Topology& topo, std::uint64_t seed);

  /// Capacity of link `id` at virtual time `now` (bytes/second).
  double capacity(Topology::LinkId id, common::SimTime now);

  /// Fill `out[id]` with every link's capacity at `now` (epoch batch).
  void capacities(common::SimTime now, std::vector<double>& out);

  /// Install a scripted outage schedule on one link (verify harness).
  void set_chaos(Topology::LinkId id, common::ChaosSchedule schedule);

 private:
  const Topology* topo_;
  std::vector<FluctuationProcess> fluct_;
  std::vector<common::ChaosSchedule> chaos_;
};

/// Weighted max-min fair allocation over a Topology via progressive
/// filling. All scratch state is reused between calls — after warm-up an
/// allocate() performs no heap allocation.
///
/// Two drive modes, bit-identical by construction (vsim_alloc_test pins
/// per-flow EXPECT_DOUBLE_EQ equality under randomized churn):
///
///   * allocate(): the stateless reference — rebuilds per-link flow
///     lists and weight sums from the active list every call.
///   * add_flow()/remove_flow()/invalidate_weights() +
///     allocate_incremental(): persistent per-link membership. An epoch
///     where nothing changed (same capacities, weights, membership)
///     skips the fill entirely and keeps last epoch's rates; an epoch
///     with local churn refolds only dirty links. Progressive filling
///     runs off a lazy heap of (share, link) instead of an O(links)
///     scan per round.
///
/// Bit-exactness invariants (DESIGN.md §15): per-link weight sums are
/// always produced by a left fold over members in admission order —
/// never by adding/subtracting deltas, since IEEE addition is neither
/// associative nor invertible. Removal tombstones members (alive_ flag)
/// and compacts on the next refold, preserving relative order, so the
/// fold after a removal equals the fold the full rebuild would compute.
class MaxMinAllocator {
 public:
  explicit MaxMinAllocator(const Topology& topo);

  /// Compute each active flow's wire rate (full rebuild; reference).
  ///
  /// @param link_capacity   capacity per link id (LinkBank::capacities)
  /// @param flow_path       path id per flow (full table, indexed by id)
  /// @param flow_weight     share weight per flow (full table)
  /// @param active          ids of flows competing for capacity
  /// @param rate_out        per-flow result; only active ids are written
  void allocate(const std::vector<double>& link_capacity,
                const std::vector<std::uint32_t>& flow_path,
                const std::vector<double>& flow_weight,
                const std::vector<std::uint32_t>& active,
                std::vector<double>& rate_out);

  // --- persistent membership (incremental mode) ----------------------

  /// Register flow `f` on every link of `path`. Call once at admission;
  /// the flow competes in every subsequent allocate_incremental() until
  /// remove_flow().
  void add_flow(std::uint32_t f, Topology::PathId path);

  /// Unregister flow `f` (tombstoned; compacted on the next refold).
  void remove_flow(std::uint32_t f, Topology::PathId path);

  /// Mark all cached weight sums stale. Call whenever any registered
  /// flow's weight may have changed (kPerTenant reweighting).
  void invalidate_weights();

  [[nodiscard]] std::size_t live_flows() const { return live_; }

  /// Incremental epoch allocation over the registered flows.
  ///
  /// @param capacity_changed  false asserts `link_capacity` is unchanged
  ///                          since the previous call — combined with no
  ///                          membership/weight churn the whole fill is
  ///                          skipped and rate_out keeps last epoch's
  ///                          values for every registered flow.
  /// @returns true if rates were (re)computed, false if skipped.
  bool allocate_incremental(const std::vector<double>& link_capacity,
                            bool capacity_changed,
                            const std::vector<std::uint32_t>& flow_path,
                            const std::vector<double>& flow_weight,
                            std::vector<double>& rate_out);

 private:
  void refold_dirty(const std::vector<std::uint32_t>& flow_path,
                    const std::vector<double>& flow_weight, bool fold_all);
  void fill_incremental(const std::vector<double>& link_capacity,
                        const std::vector<std::uint32_t>& flow_path,
                        const std::vector<double>& flow_weight,
                        std::vector<double>& rate_out);
  void heap_push(double share, std::uint32_t link);
  bool heap_pop(double& share, std::uint32_t& link);

  const Topology* topo_;
  // Reusable scratch (see class comment).
  std::vector<double> cap_rem_;
  std::vector<double> wsum_;
  std::vector<std::vector<std::uint32_t>> link_flows_;
  std::vector<std::uint8_t> frozen_;

  // Persistent incremental state.
  struct HeapEntry {
    double share;
    std::uint32_t link;
  };
  std::vector<std::vector<std::uint32_t>> member_;  ///< admission order
  std::vector<double> wsum_base_;     ///< cached fold per link
  std::vector<std::uint8_t> dirty_;   ///< membership changed since refold
  std::vector<std::uint32_t> dead_;   ///< tombstones per link
  std::vector<std::uint8_t> alive_;   ///< by flow id
  std::vector<std::uint64_t> frozen_epoch_;  ///< by flow id; == epoch_ when frozen
  std::vector<std::uint32_t> path_flat_;  ///< all paths' link ids, packed
  std::vector<std::uint32_t> path_off_;   ///< path p = [off[p], off[p+1])
  std::vector<HeapEntry> heap_;
  std::vector<std::uint32_t> touched_;       ///< links changed this round
  std::vector<std::uint64_t> touched_stamp_; ///< per link, == round_ if queued
  std::uint64_t epoch_ = 0;
  std::uint64_t round_ = 0;
  std::size_t live_ = 0;
  bool weights_dirty_ = true;
  bool rates_valid_ = false;
};

}  // namespace strato::vsim
