// Virtualization profiles — the testbed substitution.
//
// The paper measures XEN (paravirt), KVM (full + paravirt), Amazon EC2 and
// a native baseline on a Eucalyptus cloud (appendix). We model each
// technique as a parameter set capturing exactly the phenomena the paper
// reports:
//
//  * effective network / disk throughput and its fluctuation behaviour
//    (Fig. 2 / Fig. 3), including EC2's 0..1 GBit/s swings at tens of ms
//    (Wang & Ng, confirmed by the paper) and XEN's host write-back cache
//    spikes;
//  * the CPU cost of I/O and, separately, the *fraction of that cost that
//    the guest can see* — the source of the up-to-15x discrepancy between
//    VM-displayed and host-reported utilization (Fig. 1);
//  * steal time induced by co-located VMs.
//
// The absolute numbers are modelling choices documented here and in
// DESIGN.md; the *relations* between them (which technique shows what
// skew, who fluctuates, where caching appears) follow the paper's Section
// II findings.
#pragma once

#include <array>
#include <string>

#include "metrics/cpu.h"

namespace strato::vsim {

/// Virtualization technique under test.
enum class VirtTech {
  kNative,
  kKvmFull,
  kKvmPara,
  kXenPara,
  kEc2,
};

constexpr std::array<VirtTech, 5> kAllTechs = {
    VirtTech::kNative, VirtTech::kKvmFull, VirtTech::kKvmPara,
    VirtTech::kXenPara, VirtTech::kEc2};

const char* to_string(VirtTech t);

/// The four I/O operations of the measurement study (Fig. 1a-d).
enum class IoOp { kNetSend, kNetRecv, kFileWrite, kFileRead };

constexpr std::array<IoOp, 4> kAllIoOps = {IoOp::kNetSend, IoOp::kNetRecv,
                                           IoOp::kFileWrite, IoOp::kFileRead};

const char* to_string(IoOp op);

/// CPU accounting for one I/O operation at saturation: what the guest
/// displays vs what the host reports for the VM's worker (qemu process /
/// xentop domU line).
struct CpuAccounting {
  metrics::CpuBreakdown vm_view;    ///< displayed inside the VM
  metrics::CpuBreakdown host_view;  ///< reported by the host
  bool host_observable = true;      ///< false on EC2 (no host access)
};

/// Bandwidth fluctuation shape of a link/disk.
enum class FluctuationKind {
  kGaussian,   ///< small multiplicative noise around the mean
  kTwoState,   ///< EC2-style on/degraded Markov switching (tens of ms)
};

struct FluctuationParams {
  FluctuationKind kind = FluctuationKind::kGaussian;
  double sigma = 0.02;          ///< relative noise (gaussian kind)
  double degraded_floor = 0.05; ///< two-state: low-state factor range
  double degraded_ceil = 0.45;
  double mean_dwell_ms = 30.0;  ///< two-state: mean state dwell time
  double degraded_prob = 0.35;  ///< two-state: long-run degraded fraction
  /// Inter-run capacity spread: each run (seed) draws one persistent
  /// multiplicative bias ~ N(1, run_bias_sigma). Models the host
  /// heterogeneity behind the paper's run-to-run standard deviations
  /// (Schad et al.: "virtual machines of the same type may be hosted on
  /// different generations of host systems").
  double run_bias_sigma = 0.0;
};

/// Host write-back cache behaviour for file writes (the XEN finding).
struct DiskCacheParams {
  bool write_back_cache = false; ///< guest writes land in host page cache
  double cache_bytes = 1.5e9;    ///< dirty-page budget before a flush stall
  double cache_rate = 3.5e8;     ///< absorb rate while cache has room (B/s)
  double flush_rate = 5.0e6;     ///< displayed rate while the host flushes
  double flush_fraction = 0.6;   ///< fraction of the cache drained per stall
};

/// One virtualization technique's complete parameter set.
struct VirtProfile {
  VirtTech tech = VirtTech::kNative;
  std::string name;

  // --- network -----------------------------------------------------------
  double net_bytes_s = 117e6;       ///< effective TCP throughput, saturated
  FluctuationParams net_fluct;

  // --- disk ---------------------------------------------------------------
  double disk_write_bytes_s = 90e6;
  double disk_read_bytes_s = 105e6;
  FluctuationParams disk_fluct;
  DiskCacheParams disk_cache;

  // --- CPU ----------------------------------------------------------------
  /// Host CPU seconds consumed per byte moved through the virtual NIC
  /// (I/O handling: vmexits, copies, interrupt processing).
  double net_cpu_s_per_byte = 0.0;
  /// Fraction of that cost the guest's /proc/stat can see. Small values
  /// produce the paper's displayed-vs-actual discrepancy.
  double net_cpu_visibility = 1.0;
  /// Same pair for disk I/O.
  double disk_cpu_s_per_byte = 0.0;
  double disk_cpu_visibility = 1.0;
  /// Steal fraction added per co-located busy VM (XEN/EC2 display STEAL;
  /// KVM guests without a steal driver just lose the time silently).
  double steal_per_colocated_vm = 0.03;
  bool steal_displayed = false;

  /// CPU accounting table for the Fig. 1 study, per I/O op.
  [[nodiscard]] CpuAccounting accounting(IoOp op) const;
};

/// Parameter set for a technique.
const VirtProfile& profile(VirtTech tech);

}  // namespace strato::vsim
