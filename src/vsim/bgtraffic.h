// Dynamic background traffic.
//
// The paper's Table II holds the number of co-located TCP connections
// fixed per run; in a real cloud neighbours come and go. This model makes
// the background-flow count a birth-death process (Poisson arrivals,
// exponential holding times) or a deterministic step schedule, so the
// extension benches can test how quickly the adaptive scheme follows
// changing contention — the scenario the paper's introduction motivates.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"

namespace strato::vsim {

/// Exponential holding/inter-arrival draw with the given mean, floored
/// away from log(0). Shared by BgTrafficProcess and the fleet engine's
/// per-tenant Poisson arrival processes so "background traffic" and
/// "tenant arrivals" are one mechanism.
inline double exponential_interval_s(common::Xoshiro256& rng,
                                     double mean_s) {
  return -std::log(std::max(1e-12, rng.uniform())) * mean_s;
}

/// Configuration of the background-flow process.
struct BgTrafficConfig {
  /// Deterministic schedule: (time_s, flows) steps, must be time-sorted.
  /// Used when non-empty; overrides the stochastic parameters.
  std::vector<std::pair<double, int>> steps;

  /// Stochastic birth-death process (used when steps is empty and
  /// arrival_per_s > 0): flows arrive Poisson(arrival_per_s) and each
  /// stays Exp(mean_holding_s).
  double arrival_per_s = 0.0;
  double mean_holding_s = 60.0;
  int initial_flows = 0;
  int max_flows = 8;

  [[nodiscard]] bool enabled() const {
    return !steps.empty() || arrival_per_s > 0.0;
  }
};

/// Lazily-advancing flow-count process; queries must be non-decreasing in
/// time.
class BgTrafficProcess {
 public:
  BgTrafficProcess(BgTrafficConfig config, std::uint64_t seed);

  /// Number of concurrent background flows at `now`.
  int flows_at(common::SimTime now);

 private:
  void schedule_next_arrival();

  BgTrafficConfig config_;
  common::Xoshiro256 rng_;
  int flows_;
  std::size_t step_idx_ = 0;
  common::SimTime next_arrival_ = common::SimTime::max();
  std::vector<common::SimTime> departures_;  // unsorted; scanned lazily
  common::SimTime now_;
};

}  // namespace strato::vsim
