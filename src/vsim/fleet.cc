#include "vsim/fleet.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "compress/framing.h"
#include "vsim/profile.h"

namespace strato::vsim {

using common::SimTime;

namespace {

/// snprintf into a std::string — the deterministic JSON building block
/// (iostream float formatting is locale-sensitive; this is not).
template <typename... Args>
void appendf(std::string& out, const char* fmt, Args... args) {
  char buf[160];
  std::snprintf(buf, sizeof buf, fmt, args...);
  out += buf;
}

/// Wire bytes per raw byte at (level, class) under a flow's ratio jitter:
/// the payload shrinks by the effective ratio, the frame header does not.
/// Mirrors run_transfer_blocks' per-block `wire` arithmetic in fluid form.
double wire_factor(const LevelBehaviour& beh, double ratio_jit,
                   std::size_t block_size) {
  const double ratio_eff = std::min(1.0, beh.ratio * ratio_jit);
  return ratio_eff + static_cast<double>(compress::kFrameHeaderSize) /
                         static_cast<double>(block_size);
}

}  // namespace

TenantSpec background_tenant(const BgTrafficConfig& bg, double weight) {
  TenantSpec s;
  s.name = "background";
  s.weight = weight;
  s.share = ShareMode::kPerFlow;
  s.policy = TenantPolicy::fixed(0);
  s.kind = FlowKind::kDwell;
  s.arrival_per_s = bg.arrival_per_s;
  s.initial_flows = bg.initial_flows;
  s.max_in_flight = bg.max_flows;
  s.mean_dwell_s = bg.mean_holding_s;
  // BgTrafficProcess discards arrivals that find the link full; a
  // one-slot queue is the closest admission-control equivalent.
  s.max_queue = 1;
  return s;
}

FleetEngine::FleetEngine(FleetConfig config)
    : cfg_(std::move(config)),
      bank_(cfg_.topology, cfg_.seed),
      alloc_(cfg_.topology),
      io_cpu_s_per_byte_(profile(cfg_.tech).net_cpu_s_per_byte),
      hard_stop_(SimTime::seconds(cfg_.horizon.to_seconds() *
                                  std::max(1.0, cfg_.drain_factor))) {
  if (cfg_.expected_flows > 0) flows_.reserve(cfg_.expected_flows);
  runs_.resize(cfg_.tenants.size());
  metrics_.tenants.resize(cfg_.tenants.size());
  metrics_.goodput_all_mbit_s = common::Histogram(
      0.0, cfg_.goodput_hist_max_mbit_s, cfg_.goodput_hist_buckets);
  for (std::size_t t = 0; t < cfg_.tenants.size(); ++t) {
    const TenantSpec& spec = cfg_.tenants[t];
    TenantRun& run = runs_[t];
    run.rng = common::Xoshiro256(cfg_.seed ^
                                 (0xC2B2AE3D27D4EB4FULL * (t + 1)));
    if (spec.arrival_per_s > 0.0) {
      run.next_arrival = SimTime::seconds(
          exponential_interval_s(run.rng, 1.0 / spec.arrival_per_s));
    } else {
      run.exhausted = true;  // only initial_flows, no arrival process
    }
    TenantMetrics& tm = metrics_.tenants[t];
    tm.name = spec.name;
    tm.goodput_mbit_s = common::Histogram(
        0.0, cfg_.goodput_hist_max_mbit_s, cfg_.goodput_hist_buckets);
  }
}

void FleetEngine::spawn_flow(std::uint16_t t, SimTime at) {
  const TenantSpec& spec = cfg_.tenants[t];
  TenantRun& run = runs_[t];
  TenantMetrics& tm = metrics_.tenants[t];
  ++run.spawned;
  ++tm.spawned;
  if (spec.max_queue > 0 && run.pending.size() >= spec.max_queue) {
    ++tm.rejected;
    return;
  }

  // Egress path: degenerate single-path topologies pin everything to
  // path 0; rack_spine_wan topologies pick a host uniformly and leave
  // through the WAN with probability wan_fraction; anything else picks a
  // path uniformly.
  std::uint32_t path = 0;
  const std::size_t pc = cfg_.topology.path_count();
  const std::size_t hosts = cfg_.topology.host_count();
  if (pc > 1) {
    if (hosts > 0 && pc == 2 * hosts) {
      const auto host = static_cast<std::size_t>(run.rng.below(hosts));
      path = run.rng.uniform() < spec.wan_fraction
                 ? cfg_.topology.wan_path(host)
                 : cfg_.topology.intra_path(host);
    } else {
      path = static_cast<std::uint32_t>(run.rng.below(pc));
    }
  }

  FlowTable::Id id;
  if (spec.kind == FlowKind::kDwell) {
    const SimTime dwell = SimTime::seconds(
        exponential_interval_s(run.rng, spec.mean_dwell_s));
    id = flows_.add_dwell(t, path, spec.weight, at, dwell);
  } else {
    // Corpus class from the tenant's mix (cumulative draw, normalized).
    const double msum = std::max(
        1e-12, spec.class_mix[0] + spec.class_mix[1] + spec.class_mix[2]);
    const double u = run.rng.uniform() * msum;
    corpus::Compressibility cls = corpus::Compressibility::kLow;
    if (u < spec.class_mix[0]) {
      cls = corpus::Compressibility::kHigh;
    } else if (u < spec.class_mix[0] + spec.class_mix[1]) {
      cls = corpus::Compressibility::kModerate;
    }
    const double drawn = exponential_interval_s(
        run.rng, static_cast<double>(spec.mean_flow_bytes));
    const std::uint64_t raw = std::max(
        spec.min_flow_bytes, static_cast<std::uint64_t>(drawn));
    const double jr =
        std::clamp(run.rng.gaussian(1.0, cfg_.ratio_jitter), 0.8, 1.2);
    const double js =
        std::clamp(run.rng.gaussian(1.0, cfg_.speed_jitter), 0.7, 1.3);
    id = flows_.add_transfer(t, path, cls, raw, spec.weight, at, jr, js);
    if (spec.policy.kind == TenantPolicy::Kind::kStatic) {
      flows_.level[id] = static_cast<std::int8_t>(std::clamp(
          spec.policy.static_level, 0, CodecModel::kNumLevels - 1));
    }
  }
  run.pending.push_back(id);
}

void FleetEngine::generate_arrivals(SimTime now) {
  for (std::size_t t = 0; t < cfg_.tenants.size(); ++t) {
    const TenantSpec& spec = cfg_.tenants[t];
    TenantRun& run = runs_[t];
    while (!run.exhausted && run.next_arrival <= now) {
      const SimTime at = run.next_arrival;
      spawn_flow(static_cast<std::uint16_t>(t), at);
      if (spec.flow_limit > 0 && run.spawned >= spec.flow_limit) {
        run.exhausted = true;
        break;
      }
      run.next_arrival = at + SimTime::seconds(exponential_interval_s(
                                  run.rng, 1.0 / spec.arrival_per_s));
    }
    if (!run.exhausted && run.next_arrival > cfg_.horizon) {
      run.exhausted = true;  // no arrivals generated past the horizon
    }
  }
}

void FleetEngine::admit(SimTime now) {
  for (std::size_t t = 0; t < cfg_.tenants.size(); ++t) {
    const TenantSpec& spec = cfg_.tenants[t];
    TenantRun& run = runs_[t];
    TenantMetrics& tm = metrics_.tenants[t];
    while (!run.pending.empty() &&
           (spec.max_in_flight <= 0 || run.in_flight < spec.max_in_flight)) {
      const FlowTable::Id id = run.pending.front();
      run.pending.pop_front();
      flows_.phase[id] = FlowPhase::kActive;
      flows_.admitted[id] = now;
      flows_.meter[id] = FlowMeter{now, 0.0, true};
      tm.queue_wait_s_total += (now - flows_.arrival[id]).to_seconds();
      ++tm.admitted;
      ++run.in_flight;
      active_.push_back(id);
    }
  }
}

void FleetEngine::recompute_rates(SimTime now) {
  bank_.capacities(now, link_cap_);

  // kPerTenant tenants split their weight over their active flows, so a
  // tenant's aggregate share is independent of its flow count.
  tenant_active_.assign(cfg_.tenants.size(), 0);
  for (const FlowTable::Id id : active_) ++tenant_active_[flows_.tenant[id]];
  for (const FlowTable::Id id : active_) {
    const TenantSpec& spec = cfg_.tenants[flows_.tenant[id]];
    if (spec.share == ShareMode::kPerTenant) {
      flows_.weight[id] =
          spec.weight /
          static_cast<double>(tenant_active_[flows_.tenant[id]]);
    }
  }

  alloc_.allocate(link_cap_, flows_.path, flows_.weight, active_,
                  flows_.rate);

  // Sender-CPU bound: a flow cannot push wire bytes faster than its one
  // vCPU can compress them — wire rate <= comp_speed * wire_factor (the
  // fluid form of run_transfer_blocks' sender stage).
  for (const FlowTable::Id id : active_) {
    if (flows_.kind[id] != FlowKind::kTransfer) continue;
    const LevelBehaviour& beh =
        cfg_.model.get(flows_.level[id], flows_.cls[id]);
    const double wf =
        wire_factor(beh, flows_.ratio_jitter[id], cfg_.block_size);
    const double comp_speed = beh.compress_bytes_s *
                              cfg_.codec_speed_factor *
                              flows_.speed_jitter[id];
    flows_.rate[id] = std::min(flows_.rate[id], comp_speed * wf);
  }
}

void FleetEngine::drain(SimTime from, SimTime dt) {
  const SimTime epoch_end = from + dt;
  const double dt_s = dt.to_seconds();
  for (const FlowTable::Id id : active_) {
    if (flows_.kind[id] == FlowKind::kDwell) {
      if (flows_.dwell_remaining[id] <= dt) {
        finish_flow(id, from + flows_.dwell_remaining[id]);
      } else {
        flows_.dwell_remaining[id] -= dt;
      }
      continue;
    }

    const std::uint16_t t = flows_.tenant[id];
    const TenantSpec& spec = cfg_.tenants[t];
    TenantMetrics& tm = metrics_.tenants[t];
    const LevelBehaviour& beh =
        cfg_.model.get(flows_.level[id], flows_.cls[id]);
    const double wf =
        wire_factor(beh, flows_.ratio_jitter[id], cfg_.block_size);
    const double raw_rate = std::max(1e-9, flows_.rate[id] / wf);
    const double need_s = flows_.raw_remaining[id] / raw_rate;
    const double adv_s = std::min(need_s, dt_s);
    const double raw_moved =
        std::min(flows_.raw_remaining[id], raw_rate * adv_s);
    const double wire_moved = raw_moved * wf;
    const double comp_speed = beh.compress_bytes_s *
                              cfg_.codec_speed_factor *
                              flows_.speed_jitter[id];
    const double cpu =
        raw_moved / comp_speed + wire_moved * io_cpu_s_per_byte_;

    flows_.raw_remaining[id] -= raw_moved;
    flows_.wire_bytes[id] += wire_moved;
    flows_.cpu_s[id] += cpu;
    flows_.meter[id].bytes += raw_moved;
    tm.raw_bytes += raw_moved;
    tm.wire_bytes += wire_moved;
    tm.cpu_s += cpu;
    tm.raw_bytes_per_level[static_cast<std::size_t>(flows_.level[id])] +=
        raw_moved;

    if (flows_.raw_remaining[id] <= 1e-6) {
      finish_flow(id, from + SimTime::seconds(adv_s));
      continue;
    }

    // Close the decision window at epoch boundaries once >= t has
    // elapsed — the paper's application-data-rate signal, per flow.
    if (spec.policy.kind == TenantPolicy::Kind::kAdaptive) {
      FlowMeter& m = flows_.meter[id];
      if (epoch_end - m.window_start >= spec.policy.window) {
        const double win_s =
            std::max(1e-9, (epoch_end - m.window_start).to_seconds());
        const core::Decision d = core::controller_step(
            spec.policy.adaptive, flows_.ctrl[id], m.bytes / win_s);
        flows_.level[id] = static_cast<std::int8_t>(d.level);
        m = FlowMeter{epoch_end, 0.0, true};
      }
    }
  }
}

void FleetEngine::finish_flow(FlowTable::Id f, SimTime at) {
  flows_.phase[f] = FlowPhase::kDone;
  flows_.finished[f] = at;
  flows_.rate[f] = 0.0;
  const std::uint16_t t = flows_.tenant[f];
  TenantMetrics& tm = metrics_.tenants[t];
  ++tm.completed;
  --runs_[t].in_flight;
  metrics_.sim_completed_s =
      std::max(metrics_.sim_completed_s, at.to_seconds());
  if (flows_.kind[f] == FlowKind::kTransfer) {
    tm.completion_s.add((at - flows_.arrival[f]).to_seconds());
    const double service_s =
        std::max(1e-9, (at - flows_.admitted[f]).to_seconds());
    tm.goodput_mbit_s.add(flows_.raw_total[f] * 8e-6 / service_s);
  }
}

bool FleetEngine::work_remains() const {
  for (const TenantRun& run : runs_) {
    if (!run.exhausted || !run.pending.empty() || run.in_flight > 0) {
      return true;
    }
  }
  return false;
}

void FleetEngine::epoch_tick() {
  const SimTime now = queue_.now();
  ++metrics_.epochs;
  generate_arrivals(now);
  admit(now);
  recompute_rates(now);
  drain(now, cfg_.epoch);

  // Compact: drop finished flows from the active set (swap-free erase,
  // preserves index order for determinism).
  active_.erase(std::remove_if(active_.begin(), active_.end(),
                               [&](FlowTable::Id id) {
                                 return flows_.phase[id] == FlowPhase::kDone;
                               }),
                active_.end());

  if (work_remains() && now + cfg_.epoch <= hard_stop_) {
    queue_.schedule_in(cfg_.epoch, [this] { epoch_tick(); });
  }
}

FleetMetrics FleetEngine::run() {
  for (std::size_t t = 0; t < cfg_.tenants.size(); ++t) {
    for (int i = 0; i < cfg_.tenants[t].initial_flows; ++i) {
      spawn_flow(static_cast<std::uint16_t>(t), SimTime());
    }
  }
  queue_.schedule(SimTime(), [this] { epoch_tick(); });
  queue_.run();

  for (const TenantMetrics& tm : metrics_.tenants) {
    metrics_.completion_all_s.merge(tm.completion_s);
    const bool ok = metrics_.goodput_all_mbit_s.merge(tm.goodput_mbit_s);
    (void)ok;  // layouts all come from FleetConfig; cannot mismatch
    metrics_.flows_completed += tm.completed;
  }
  metrics_.flows_total = flows_.size();
  return metrics_;
}

TransferResult FleetEngine::run_degenerate(const TransferConfig& config,
                                           core::CompressionPolicy& policy) {
  SimMetricsProvider metrics;
  return run_transfer_blocks(config, policy, metrics);
}

std::string FleetMetrics::to_json() const {
  std::string out;
  out.reserve(1024 + tenants.size() * 1024);
  const auto emit_hist = [&out](const common::Histogram& h) {
    out += "[";
    for (std::size_t i = 0; i < h.bucket_count(); ++i) {
      appendf(out, "%s%llu", i ? "," : "",
              static_cast<unsigned long long>(h.bucket(i)));
    }
    out += "]";
  };
  const auto emit_sample = [&out](const common::Sample& s) {
    appendf(out,
            "\"completions\":%llu,\"p50_s\":%.6f,\"p99_s\":%.6f,"
            "\"p999_s\":%.6f,\"max_s\":%.6f",
            static_cast<unsigned long long>(s.count()), s.quantile(0.5),
            s.quantile(0.99), s.quantile(0.999), s.max());
  };

  out += "{\"schema\":\"fleet-metrics-v1\",";
  appendf(out,
          "\"flows_total\":%llu,\"flows_completed\":%llu,\"epochs\":%llu,"
          "\"sim_completed_s\":%.6f,",
          static_cast<unsigned long long>(flows_total),
          static_cast<unsigned long long>(flows_completed),
          static_cast<unsigned long long>(epochs), sim_completed_s);
  out += "\"aggregate\":{";
  emit_sample(completion_all_s);
  out += ",\"goodput_hist\":";
  emit_hist(goodput_all_mbit_s);
  out += "},\"tenants\":[";
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const TenantMetrics& tm = tenants[t];
    if (t) out += ",";
    appendf(out,
            "{\"name\":\"%s\",\"spawned\":%llu,\"admitted\":%llu,"
            "\"rejected\":%llu,\"completed\":%llu,\"queue_wait_s\":%.6f,"
            "\"raw_bytes\":%.0f,\"wire_bytes\":%.0f,\"cpu_s\":%.6f,",
            tm.name.c_str(), static_cast<unsigned long long>(tm.spawned),
            static_cast<unsigned long long>(tm.admitted),
            static_cast<unsigned long long>(tm.rejected),
            static_cast<unsigned long long>(tm.completed),
            tm.queue_wait_s_total, tm.raw_bytes, tm.wire_bytes, tm.cpu_s);
    out += "\"raw_bytes_per_level\":[";
    for (std::size_t l = 0; l < tm.raw_bytes_per_level.size(); ++l) {
      appendf(out, "%s%.0f", l ? "," : "", tm.raw_bytes_per_level[l]);
    }
    out += "],";
    emit_sample(tm.completion_s);
    out += ",\"goodput_hist\":";
    emit_hist(tm.goodput_mbit_s);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace strato::vsim
