#include "vsim/fleet.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "compress/framing.h"
#include "vsim/profile.h"

namespace strato::vsim {

using common::SimTime;

namespace {

/// snprintf into a std::string — the deterministic JSON building block
/// (iostream float formatting is locale-sensitive; this is not).
template <typename... Args>
void appendf(std::string& out, const char* fmt, Args... args) {
  char buf[160];
  std::snprintf(buf, sizeof buf, fmt, args...);
  out += buf;
}

/// Wire bytes per raw byte at (level, class) under a flow's ratio jitter:
/// the payload shrinks by the effective ratio, the frame header does not.
/// Mirrors run_transfer_blocks' per-block `wire` arithmetic in fluid form.
double wire_factor(const LevelBehaviour& beh, double ratio_jit,
                   std::size_t block_size) {
  const double ratio_eff = std::min(1.0, beh.ratio * ratio_jit);
  return ratio_eff + static_cast<double>(compress::kFrameHeaderSize) /
                         static_cast<double>(block_size);
}

}  // namespace

TenantSpec background_tenant(const BgTrafficConfig& bg, double weight) {
  TenantSpec s;
  s.name = "background";
  s.weight = weight;
  s.share = ShareMode::kPerFlow;
  s.policy = TenantPolicy::fixed(0);
  s.kind = FlowKind::kDwell;
  s.arrival_per_s = bg.arrival_per_s;
  s.initial_flows = bg.initial_flows;
  s.max_in_flight = bg.max_flows;
  s.mean_dwell_s = bg.mean_holding_s;
  // BgTrafficProcess discards arrivals that find the link full; a
  // one-slot queue is the closest admission-control equivalent.
  s.max_queue = 1;
  return s;
}

FleetEngine::FleetEngine(FleetConfig config)
    : cfg_(std::move(config)),
      bank_(cfg_.topology, cfg_.seed),
      alloc_(cfg_.topology),
      io_cpu_s_per_byte_(profile(cfg_.tech).net_cpu_s_per_byte),
      hard_stop_(SimTime::seconds(cfg_.horizon.to_seconds() *
                                  std::max(1.0, cfg_.drain_factor))) {
  if (cfg_.expected_flows > 0) flows_.reserve(cfg_.expected_flows);
  if (const char* env = std::getenv("STRATO_FLEET_FULL_ALLOC");
      env != nullptr && *env != '\0' && *env != '0') {
    cfg_.full_alloc = true;
  }
  full_alloc_ = cfg_.full_alloc;
  runs_.resize(cfg_.tenants.size());
  metrics_.tenants.resize(cfg_.tenants.size());
  metrics_.goodput_all_mbit_s = common::Histogram(
      0.0, cfg_.goodput_hist_max_mbit_s, cfg_.goodput_hist_buckets);
  tenant_active_.assign(cfg_.tenants.size(), 0);
  tenant_last_count_.assign(cfg_.tenants.size(), -1);
  tenant_flow_w_.assign(cfg_.tenants.size(), 0.0);
  tenant_per_tenant_.assign(cfg_.tenants.size(), 0);
  for (std::size_t t = 0; t < cfg_.tenants.size(); ++t) {
    const TenantSpec& spec = cfg_.tenants[t];
    tenant_per_tenant_[t] = spec.share == ShareMode::kPerTenant ? 1 : 0;
    TenantRun& run = runs_[t];
    run.rng = common::Xoshiro256(cfg_.seed ^
                                 (0xC2B2AE3D27D4EB4FULL * (t + 1)));
    if (spec.arrival_per_s > 0.0) {
      run.next_arrival = SimTime::seconds(
          exponential_interval_s(run.rng, 1.0 / spec.arrival_per_s));
    } else {
      run.exhausted = true;  // only initial_flows, no arrival process
    }
    TenantMetrics& tm = metrics_.tenants[t];
    tm.name = spec.name;
    tm.goodput_mbit_s = common::Histogram(
        0.0, cfg_.goodput_hist_max_mbit_s, cfg_.goodput_hist_buckets);
  }
  // Flatten the (level, class) behaviour table once; refresh_flow_kernel
  // reads plain array slots instead of CodecModel's bounds-checked walk.
  behaviour_.resize(static_cast<std::size_t>(CodecModel::kNumLevels) *
                    CodecModel::kNumClasses);
  const corpus::Compressibility classes[] = {corpus::Compressibility::kHigh,
                                             corpus::Compressibility::kModerate,
                                             corpus::Compressibility::kLow};
  for (int l = 0; l < CodecModel::kNumLevels; ++l) {
    for (int c = 0; c < CodecModel::kNumClasses; ++c) {
      behaviour_[static_cast<std::size_t>(l) * CodecModel::kNumClasses +
                 c] = cfg_.model.get(l, classes[c]);
    }
  }
  epoch_ev_ = queue_.add_recurring([this] { epoch_tick(); });
  if (cfg_.drain_workers > 1) {
    pool_.emplace(static_cast<std::size_t>(cfg_.drain_workers));
  }
}

void FleetEngine::refresh_flow_kernel(FlowTable::Id f) {
  const LevelBehaviour& beh =
      behaviour_[static_cast<std::size_t>(flows_.level[f]) *
                     CodecModel::kNumClasses +
                 static_cast<std::size_t>(flows_.cls[f])];
  const double wf = wire_factor(beh, flows_.ratio_jitter[f], cfg_.block_size);
  const double comp_speed = beh.compress_bytes_s * cfg_.codec_speed_factor *
                            flows_.speed_jitter[f];
  flows_.wf[f] = wf;
  flows_.comp_speed[f] = comp_speed;
  flows_.cpu_bound[f] = comp_speed * wf;
}

void FleetEngine::spawn_flow(std::uint16_t t, SimTime at) {
  const TenantSpec& spec = cfg_.tenants[t];
  TenantRun& run = runs_[t];
  TenantMetrics& tm = metrics_.tenants[t];
  ++run.spawned;
  ++tm.spawned;
  if (spec.max_queue > 0 && run.pending.size() >= spec.max_queue) {
    ++tm.rejected;
    return;
  }

  // Egress path: degenerate single-path topologies pin everything to
  // path 0; rack_spine_wan topologies pick a host uniformly and leave
  // through the WAN with probability wan_fraction; anything else picks a
  // path uniformly.
  std::uint32_t path = 0;
  const std::size_t pc = cfg_.topology.path_count();
  const std::size_t hosts = cfg_.topology.host_count();
  if (pc > 1) {
    if (hosts > 0 && pc == 2 * hosts) {
      const auto host = static_cast<std::size_t>(run.rng.below(hosts));
      path = run.rng.uniform() < spec.wan_fraction
                 ? cfg_.topology.wan_path(host)
                 : cfg_.topology.intra_path(host);
    } else {
      path = static_cast<std::uint32_t>(run.rng.below(pc));
    }
  }

  FlowTable::Id id;
  if (spec.kind == FlowKind::kDwell) {
    const SimTime dwell = SimTime::seconds(
        exponential_interval_s(run.rng, spec.mean_dwell_s));
    id = flows_.add_dwell(t, path, spec.weight, at, dwell);
  } else {
    // Corpus class from the tenant's mix (cumulative draw, normalized).
    const double msum = std::max(
        1e-12, spec.class_mix[0] + spec.class_mix[1] + spec.class_mix[2]);
    const double u = run.rng.uniform() * msum;
    corpus::Compressibility cls = corpus::Compressibility::kLow;
    if (u < spec.class_mix[0]) {
      cls = corpus::Compressibility::kHigh;
    } else if (u < spec.class_mix[0] + spec.class_mix[1]) {
      cls = corpus::Compressibility::kModerate;
    }
    const double drawn = exponential_interval_s(
        run.rng, static_cast<double>(spec.mean_flow_bytes));
    const std::uint64_t raw = std::max(
        spec.min_flow_bytes, static_cast<std::uint64_t>(drawn));
    const double jr =
        std::clamp(run.rng.gaussian(1.0, cfg_.ratio_jitter), 0.8, 1.2);
    const double js =
        std::clamp(run.rng.gaussian(1.0, cfg_.speed_jitter), 0.7, 1.3);
    id = flows_.add_transfer(t, path, cls, raw, spec.weight, at, jr, js);
    if (spec.policy.kind == TenantPolicy::Kind::kStatic) {
      flows_.level[id] = static_cast<std::int8_t>(std::clamp(
          spec.policy.static_level, 0, CodecModel::kNumLevels - 1));
    }
    refresh_flow_kernel(id);
  }
  run.pending.push_back(id);
}

void FleetEngine::generate_arrivals(SimTime now) {
  for (std::size_t t = 0; t < cfg_.tenants.size(); ++t) {
    const TenantSpec& spec = cfg_.tenants[t];
    TenantRun& run = runs_[t];
    while (!run.exhausted && run.next_arrival <= now) {
      const SimTime at = run.next_arrival;
      spawn_flow(static_cast<std::uint16_t>(t), at);
      if (spec.flow_limit > 0 && run.spawned >= spec.flow_limit) {
        run.exhausted = true;
        break;
      }
      run.next_arrival = at + SimTime::seconds(exponential_interval_s(
                                  run.rng, 1.0 / spec.arrival_per_s));
    }
    if (!run.exhausted && run.next_arrival > cfg_.horizon) {
      run.exhausted = true;  // no arrivals generated past the horizon
    }
  }
}

void FleetEngine::admit(SimTime now) {
  for (std::size_t t = 0; t < cfg_.tenants.size(); ++t) {
    const TenantSpec& spec = cfg_.tenants[t];
    TenantRun& run = runs_[t];
    TenantMetrics& tm = metrics_.tenants[t];
    while (!run.pending.empty() &&
           (spec.max_in_flight <= 0 || run.in_flight < spec.max_in_flight)) {
      const FlowTable::Id id = run.pending.front();
      run.pending.pop_front();
      flows_.phase[id] = FlowPhase::kActive;
      flows_.admitted[id] = now;
      flows_.meter[id] = FlowMeter{now, 0.0, true};
      tm.queue_wait_s_total += (now - flows_.arrival[id]).to_seconds();
      ++tm.admitted;
      ++run.in_flight;
      ++tenant_active_[t];
      // Per-tenant flows carry weight / active-count; assign the cached
      // value now so a count-stable epoch can skip the rewrite pass (the
      // pass overwrites this when the count did change).
      if (tenant_per_tenant_[t]) flows_.weight[id] = tenant_flow_w_[t];
      if (full_alloc_) {
        // The combined interleaved list: the full allocator's weight-sum
        // fold order follows it, so it must match pre-partition layout.
        active_.push_back(id);
      } else {
        alloc_.add_flow(id, flows_.path[id]);
      }
      if (flows_.kind[id] == FlowKind::kTransfer) {
        active_transfer_.push_back(id);
      } else {
        active_dwell_.push_back(id);
      }
    }
  }
}

void FleetEngine::recompute_rates(SimTime now) {
  bank_.capacities(now, link_cap_);
  const bool caps_changed = link_cap_ != link_cap_prev_;
  if (caps_changed) link_cap_prev_ = link_cap_;

  // kPerTenant tenants split their weight over their active flows, so a
  // tenant's aggregate share is independent of its flow count. The
  // per-tenant active counts are maintained incrementally (admit/finish)
  // and in steady state sit pinned at max_in_flight: a finish freed a
  // slot the same epoch's admit refilled. The division and per-flow
  // weight writes therefore run only when some count differs from the
  // one the weights were last written for — the value written is the
  // same expression the per-epoch rebuild computed, so skipping is
  // bit-exact.
  bool weights_changed = false;
  for (std::size_t t = 0; t < cfg_.tenants.size(); ++t) {
    if (tenant_per_tenant_[t] && tenant_active_[t] != tenant_last_count_[t]) {
      weights_changed = true;
      break;
    }
  }
  if (weights_changed) {
    for (std::size_t t = 0; t < cfg_.tenants.size(); ++t) {
      if (tenant_per_tenant_[t]) {
        if (tenant_active_[t] > 0) {
          tenant_flow_w_[t] = cfg_.tenants[t].weight /
                              static_cast<double>(tenant_active_[t]);
        }
        tenant_last_count_[t] = tenant_active_[t];
      }
    }
    for (const FlowTable::Id id : active_transfer_) {
      if (tenant_per_tenant_[flows_.tenant[id]]) {
        flows_.weight[id] = tenant_flow_w_[flows_.tenant[id]];
      }
    }
    for (const FlowTable::Id id : active_dwell_) {
      if (tenant_per_tenant_[flows_.tenant[id]]) {
        flows_.weight[id] = tenant_flow_w_[flows_.tenant[id]];
      }
    }
    alloc_.invalidate_weights();
  }

  if (full_alloc_) {
    alloc_.allocate(link_cap_, flows_.path, flows_.weight, active_,
                    flows_.alloc_rate);
  } else {
    alloc_.allocate_incremental(link_cap_, caps_changed, flows_.path,
                                flows_.weight, flows_.alloc_rate);
  }

  // Sender-CPU bound: a flow cannot push wire bytes faster than its one
  // vCPU can compress them — wire rate <= comp_speed * wire_factor (the
  // fluid form of run_transfer_blocks' sender stage). The bound is the
  // cached cpu_bound column; recomputing the clamp every epoch keeps a
  // skipped allocation correct when a level switch moves the bound.
  for (const FlowTable::Id id : active_transfer_) {
    flows_.rate[id] = std::min(flows_.alloc_rate[id], flows_.cpu_bound[id]);
  }
  for (const FlowTable::Id id : active_dwell_) {
    flows_.rate[id] = flows_.alloc_rate[id];
  }
}

void FleetEngine::drain_shard(std::size_t lo, std::size_t hi, SimTime from,
                              SimTime epoch_end, double dt_s) {
  for (std::size_t i = lo; i < hi; ++i) {
    const FlowTable::Id id = active_transfer_[i];
    const TenantSpec& spec = cfg_.tenants[flows_.tenant[id]];
    const double wf = flows_.wf[id];
    const double raw_rate = std::max(1e-9, flows_.rate[id] / wf);
    const double need_s = flows_.raw_remaining[id] / raw_rate;
    const double adv_s = std::min(need_s, dt_s);
    const double raw_moved =
        std::min(flows_.raw_remaining[id], raw_rate * adv_s);
    const double wire_moved = raw_moved * wf;
    const double cpu = raw_moved / flows_.comp_speed[id] +
                       wire_moved * io_cpu_s_per_byte_;

    flows_.raw_remaining[id] -= raw_moved;
    flows_.wire_bytes[id] += wire_moved;
    flows_.cpu_s[id] += cpu;
    flows_.meter[id].bytes += raw_moved;
    d_raw_[i] = raw_moved;
    d_wire_[i] = wire_moved;
    d_cpu_[i] = cpu;
    d_level_[i] = flows_.level[id];

    if (flows_.raw_remaining[id] <= 1e-6) {
      d_fin_[i] = from + SimTime::seconds(adv_s);
      continue;
    }
    d_fin_[i] = SimTime::max();

    // Close the decision window at epoch boundaries once >= t has
    // elapsed — the paper's application-data-rate signal, per flow.
    if (spec.policy.kind == TenantPolicy::Kind::kAdaptive) {
      FlowMeter& m = flows_.meter[id];
      if (epoch_end - m.window_start >= spec.policy.window) {
        const double win_s =
            std::max(1e-9, (epoch_end - m.window_start).to_seconds());
        const core::Decision d = core::controller_step(
            spec.policy.adaptive, flows_.ctrl[id], m.bytes / win_s);
        if (static_cast<std::int8_t>(d.level) != flows_.level[id]) {
          flows_.level[id] = static_cast<std::int8_t>(d.level);
          refresh_flow_kernel(id);
        }
        m = FlowMeter{epoch_end, 0.0, true};
      }
    }
  }
}

void FleetEngine::drain_serial(std::size_t lo, std::size_t hi, SimTime from,
                               SimTime epoch_end, double dt_s) {
  for (std::size_t i = lo; i < hi; ++i) {
    const FlowTable::Id id = active_transfer_[i];
    const std::uint16_t t = flows_.tenant[id];
    const TenantSpec& spec = cfg_.tenants[t];
    TenantMetrics& tm = metrics_.tenants[t];
    const double wf = flows_.wf[id];
    const double raw_rate = std::max(1e-9, flows_.rate[id] / wf);
    const double need_s = flows_.raw_remaining[id] / raw_rate;
    const double adv_s = std::min(need_s, dt_s);
    const double raw_moved =
        std::min(flows_.raw_remaining[id], raw_rate * adv_s);
    const double wire_moved = raw_moved * wf;
    const double cpu = raw_moved / flows_.comp_speed[id] +
                       wire_moved * io_cpu_s_per_byte_;

    flows_.raw_remaining[id] -= raw_moved;
    flows_.wire_bytes[id] += wire_moved;
    flows_.cpu_s[id] += cpu;
    flows_.meter[id].bytes += raw_moved;
    tm.raw_bytes += raw_moved;
    tm.wire_bytes += wire_moved;
    tm.cpu_s += cpu;
    tm.raw_bytes_per_level[static_cast<std::size_t>(flows_.level[id])] +=
        raw_moved;

    if (flows_.raw_remaining[id] <= 1e-6) {
      finish_flow(id, from + SimTime::seconds(adv_s));
      continue;
    }

    if (spec.policy.kind == TenantPolicy::Kind::kAdaptive) {
      FlowMeter& m = flows_.meter[id];
      if (epoch_end - m.window_start >= spec.policy.window) {
        const double win_s =
            std::max(1e-9, (epoch_end - m.window_start).to_seconds());
        const core::Decision d = core::controller_step(
            spec.policy.adaptive, flows_.ctrl[id], m.bytes / win_s);
        if (static_cast<std::int8_t>(d.level) != flows_.level[id]) {
          flows_.level[id] = static_cast<std::int8_t>(d.level);
          refresh_flow_kernel(id);
        }
        m = FlowMeter{epoch_end, 0.0, true};
      }
    }
  }
}

void FleetEngine::drain(SimTime from, SimTime dt) {
  const SimTime epoch_end = from + dt;
  const double dt_s = dt.to_seconds();

  // Phase A — per-flow transfer math. Each iteration touches only its
  // own flow's columns plus the index-parallel d_* scratch, so shards
  // over contiguous index ranges are data-race free and the result is
  // independent of the shard layout by construction.
  const std::size_t n = active_transfer_.size();
  constexpr std::size_t kMinShard = 64;  // below this, threads cost more
  const std::size_t workers = pool_ ? pool_->size() : 1;
  if (workers > 1 && n >= 2 * kMinShard) {
    d_raw_.resize(n);
    d_wire_.resize(n);
    d_cpu_.resize(n);
    d_level_.resize(n);
    d_fin_.resize(n);
    const std::size_t shards = std::min(workers, n / kMinShard);
    shard_futs_.clear();
    const std::size_t chunk = (n + shards - 1) / shards;
    for (std::size_t s = 0; s < shards; ++s) {
      const std::size_t lo = s * chunk;
      const std::size_t hi = std::min(n, lo + chunk);
      shard_futs_.push_back(pool_->submit(
          [this, lo, hi, from, epoch_end, dt_s] {
            drain_shard(lo, hi, from, epoch_end, dt_s);
          }));
    }
    for (auto& f : shard_futs_) f.get();

    // Phase B — serial accumulation in admission order: tenant byte/CPU
    // sums are left folds over the same sequence the serial engine used,
    // so the metrics digest is byte-identical for any worker count.
    for (std::size_t i = 0; i < n; ++i) {
      const FlowTable::Id id = active_transfer_[i];
      TenantMetrics& tm = metrics_.tenants[flows_.tenant[id]];
      tm.raw_bytes += d_raw_[i];
      tm.wire_bytes += d_wire_[i];
      tm.cpu_s += d_cpu_[i];
      tm.raw_bytes_per_level[static_cast<std::size_t>(d_level_[i])] +=
          d_raw_[i];
      if (d_fin_[i] != SimTime::max()) finish_flow(id, d_fin_[i]);
    }
  } else {
    // Serial: fuse both phases in one pass over the flows. Per-flow math
    // is independent and finish_flow touches nothing a later flow's
    // phase-A computation reads, so fusing is bitwise-equivalent to the
    // sharded two-phase form — same addends folded in the same order.
    drain_serial(0, n, from, epoch_end, dt_s);
  }

  // Dwell flows last: they contribute only integer counters and a max()
  // to the metrics, so ordering them after the transfers cannot change
  // any accumulated value.
  for (const FlowTable::Id id : active_dwell_) {
    if (flows_.dwell_remaining[id] <= dt) {
      finish_flow(id, from + flows_.dwell_remaining[id]);
    } else {
      flows_.dwell_remaining[id] -= dt;
    }
  }
}

void FleetEngine::finish_flow(FlowTable::Id f, SimTime at) {
  flows_.phase[f] = FlowPhase::kDone;
  flows_.finished[f] = at;
  flows_.rate[f] = 0.0;
  flows_.alloc_rate[f] = 0.0;
  const std::uint16_t t = flows_.tenant[f];
  --tenant_active_[t];
  if (!full_alloc_) alloc_.remove_flow(f, flows_.path[f]);
  TenantMetrics& tm = metrics_.tenants[t];
  ++tm.completed;
  --runs_[t].in_flight;
  metrics_.sim_completed_s =
      std::max(metrics_.sim_completed_s, at.to_seconds());
  if (flows_.kind[f] == FlowKind::kTransfer) {
    tm.completion_s.add((at - flows_.arrival[f]).to_seconds());
    const double service_s =
        std::max(1e-9, (at - flows_.admitted[f]).to_seconds());
    tm.goodput_mbit_s.add(flows_.raw_total[f] * 8e-6 / service_s);
  }
}

bool FleetEngine::work_remains() const {
  for (const TenantRun& run : runs_) {
    if (!run.exhausted || !run.pending.empty() || run.in_flight > 0) {
      return true;
    }
  }
  return false;
}

void FleetEngine::epoch_tick() {
  const SimTime now = queue_.now();
  ++metrics_.epochs;
  generate_arrivals(now);
  admit(now);
  recompute_rates(now);
  drain(now, cfg_.epoch);

  // Compact: drop finished flows from the active sets (swap-free erase,
  // preserves index order for determinism).
  const auto done = [&](FlowTable::Id id) {
    return flows_.phase[id] == FlowPhase::kDone;
  };
  active_transfer_.erase(
      std::remove_if(active_transfer_.begin(), active_transfer_.end(), done),
      active_transfer_.end());
  active_dwell_.erase(
      std::remove_if(active_dwell_.begin(), active_dwell_.end(), done),
      active_dwell_.end());
  if (full_alloc_) {
    active_.erase(std::remove_if(active_.begin(), active_.end(), done),
                  active_.end());
  }

  if (work_remains() && now + cfg_.epoch <= hard_stop_) {
    // Pre-bound recurring event: re-arming pushes a POD entry, no
    // per-epoch std::function allocation.
    queue_.schedule_recurring_in(epoch_ev_, cfg_.epoch);
  }
}

FleetMetrics FleetEngine::run() {
  for (std::size_t t = 0; t < cfg_.tenants.size(); ++t) {
    for (int i = 0; i < cfg_.tenants[t].initial_flows; ++i) {
      spawn_flow(static_cast<std::uint16_t>(t), SimTime());
    }
  }
  queue_.schedule_recurring(epoch_ev_, SimTime());
  queue_.run();

  for (const TenantMetrics& tm : metrics_.tenants) {
    metrics_.completion_all_s.merge(tm.completion_s);
    const bool ok = metrics_.goodput_all_mbit_s.merge(tm.goodput_mbit_s);
    (void)ok;  // layouts all come from FleetConfig; cannot mismatch
    metrics_.flows_completed += tm.completed;
  }
  metrics_.flows_total = flows_.size();
  return metrics_;
}

TransferResult FleetEngine::run_degenerate(const TransferConfig& config,
                                           core::CompressionPolicy& policy) {
  SimMetricsProvider metrics;
  return run_transfer_blocks(config, policy, metrics);
}

std::string FleetMetrics::to_json() const {
  std::string out;
  out.reserve(1024 + tenants.size() * 1024);
  const auto emit_hist = [&out](const common::Histogram& h) {
    out += "[";
    for (std::size_t i = 0; i < h.bucket_count(); ++i) {
      appendf(out, "%s%llu", i ? "," : "",
              static_cast<unsigned long long>(h.bucket(i)));
    }
    out += "]";
  };
  const auto emit_sample = [&out](const common::Sample& s) {
    appendf(out,
            "\"completions\":%llu,\"p50_s\":%.6f,\"p99_s\":%.6f,"
            "\"p999_s\":%.6f,\"max_s\":%.6f",
            static_cast<unsigned long long>(s.count()), s.quantile(0.5),
            s.quantile(0.99), s.quantile(0.999), s.max());
  };

  out += "{\"schema\":\"fleet-metrics-v1\",";
  appendf(out,
          "\"flows_total\":%llu,\"flows_completed\":%llu,\"epochs\":%llu,"
          "\"sim_completed_s\":%.6f,",
          static_cast<unsigned long long>(flows_total),
          static_cast<unsigned long long>(flows_completed),
          static_cast<unsigned long long>(epochs), sim_completed_s);
  out += "\"aggregate\":{";
  emit_sample(completion_all_s);
  out += ",\"goodput_hist\":";
  emit_hist(goodput_all_mbit_s);
  out += "},\"tenants\":[";
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const TenantMetrics& tm = tenants[t];
    if (t) out += ",";
    appendf(out,
            "{\"name\":\"%s\",\"spawned\":%llu,\"admitted\":%llu,"
            "\"rejected\":%llu,\"completed\":%llu,\"queue_wait_s\":%.6f,"
            "\"raw_bytes\":%.0f,\"wire_bytes\":%.0f,\"cpu_s\":%.6f,",
            tm.name.c_str(), static_cast<unsigned long long>(tm.spawned),
            static_cast<unsigned long long>(tm.admitted),
            static_cast<unsigned long long>(tm.rejected),
            static_cast<unsigned long long>(tm.completed),
            tm.queue_wait_s_total, tm.raw_bytes, tm.wire_bytes, tm.cpu_s);
    out += "\"raw_bytes_per_level\":[";
    for (std::size_t l = 0; l < tm.raw_bytes_per_level.size(); ++l) {
      appendf(out, "%s%.0f", l ? "," : "", tm.raw_bytes_per_level[l]);
    }
    out += "],";
    emit_sample(tm.completion_s);
    out += ",\"goodput_hist\":";
    emit_hist(tm.goodput_mbit_s);
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace strato::vsim
