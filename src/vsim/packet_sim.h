// Packet-level transfer simulation — cross-validation of the fluid model.
//
// TransferExperiment models the shared link as a weighted fluid share.
// This module simulates the same experiment at packet granularity on the
// DES kernel: the job's framed blocks are cut into MTU-sized packets that
// compete with explicit background flows under weighted deficit
// round-robin at the NIC; compression/decompression are timed stages with
// the same bounded queues. If the fluid recurrence is a faithful
// abstraction, both models must agree on completion times — that
// agreement is asserted by tests/vsim_packet_sim_test.cc and reported by
// bench_model_validation.
#pragma once

#include "core/policy.h"
#include "vsim/codec_model.h"
#include "vsim/link.h"
#include "vsim/profile.h"

namespace strato::vsim {

/// Parameters (mirrors the fluid TransferConfig where applicable).
struct PacketSimConfig {
  VirtTech tech = VirtTech::kKvmPara;
  corpus::Compressibility data = corpus::Compressibility::kHigh;
  int bg_flows = 0;
  std::uint64_t total_bytes = 1'000'000'000ULL;
  std::size_t block_size = 128 * 1024;
  std::uint64_t seed = 1;
  double ratio_jitter = 0.01;
  double speed_jitter = 0.04;
  std::size_t send_queue_blocks = 8;
  std::size_t recv_queue_blocks = 8;
  std::size_t mtu = 1500;
  double bg_weight = kBackgroundFlowWeight;
  CodecModel model = CodecModel::defaults();
  double codec_speed_factor = 1.0;
};

struct PacketSimResult {
  double completion_s = 0.0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t wire_bytes = 0;       ///< foreground bytes on the wire
  std::uint64_t fg_packets = 0;
  std::uint64_t bg_packets = 0;
  std::uint64_t events = 0;           ///< DES events processed
};

/// Run the packet-granularity job to completion under `policy`.
PacketSimResult run_packet_transfer(const PacketSimConfig& config,
                                    core::CompressionPolicy& policy);

}  // namespace strato::vsim
