// Shared network link model.
//
// One physical 1 GBit/s NIC/switch port carries the job's TCP flow plus
// the background flows of co-located VMs. The model is a weighted
// max-min share with a time-varying capacity factor:
//
//   fg_rate(t) = capacity * factor(t) / (1 + w_bg * k)
//
// where k is the number of concurrent background flows. w_bg = 0.65 is
// calibrated so the NO-compression column of Table II reproduces the
// paper's contention shape (569/908/1393/1642 s; DESIGN.md §5.5).
//
// factor(t) is the per-profile fluctuation process: Gaussian wobble for
// the local cloud, a two-state Markov chain with ~30 ms dwell times for
// EC2 (throughput swinging between ~full and a small fraction of the
// link, as Fig. 2 and Wang & Ng report).
#pragma once

#include "common/chaos.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "vsim/profile.h"

namespace strato::vsim {

/// Default background-flow weight (see file comment).
inline constexpr double kBackgroundFlowWeight = 0.65;

/// Time-varying capacity factor in (0, ~1.1]. Lazily advances its state
/// to the queried time; queries must be non-decreasing in time.
class FluctuationProcess {
 public:
  FluctuationProcess(FluctuationParams params, std::uint64_t seed);

  /// Capacity factor at (virtual) time `now`.
  double factor(common::SimTime now);

 private:
  void advance_to(common::SimTime now);
  void resample();

  FluctuationParams params_;
  common::Xoshiro256 rng_;
  common::SimTime next_change_;
  double current_ = 1.0;
  double run_bias_ = 1.0;
  bool degraded_ = false;
};

/// The shared NIC.
class SharedLink {
 public:
  /// @param profile     virtualization profile (capacity + fluctuation)
  /// @param bg_flows    concurrent background TCP connections
  /// @param seed        fluctuation-process seed
  SharedLink(const VirtProfile& profile, int bg_flows, std::uint64_t seed,
             double bg_weight = kBackgroundFlowWeight);

  /// Foreground (job) flow rate in bytes/second at `now`.
  double fg_rate(common::SimTime now);

  /// Aggregate capacity at `now` (for network-throughput figures).
  double capacity(common::SimTime now);

  /// Change the number of background flows mid-run.
  void set_bg_flows(int k) { bg_flows_ = k < 0 ? 0 : k; }
  [[nodiscard]] int bg_flows() const { return bg_flows_; }

  /// Install a scripted outage schedule (verify harness): every kBlackout
  /// event multiplies the capacity by its factor during [at, at+span) ns
  /// of virtual time — a switch brown-out the controller must ride through.
  void set_chaos(common::ChaosSchedule schedule) {
    chaos_ = std::move(schedule);
  }

 private:
  double nominal_;
  FluctuationProcess fluct_;
  int bg_flows_;
  double bg_weight_;
  common::ChaosSchedule chaos_;
};

}  // namespace strato::vsim
