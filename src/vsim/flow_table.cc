#include "vsim/flow_table.h"

namespace strato::vsim {

void FlowTable::reserve(std::size_t n) {
  phase.reserve(n);
  kind.reserve(n);
  tenant.reserve(n);
  cls.reserve(n);
  level.reserve(n);
  path.reserve(n);
  weight.reserve(n);
  raw_total.reserve(n);
  raw_remaining.reserve(n);
  dwell_remaining.reserve(n);
  arrival.reserve(n);
  admitted.reserve(n);
  finished.reserve(n);
  rate.reserve(n);
  alloc_rate.reserve(n);
  wire_bytes.reserve(n);
  cpu_s.reserve(n);
  ratio_jitter.reserve(n);
  speed_jitter.reserve(n);
  ctrl.reserve(n);
  meter.reserve(n);
  wf.reserve(n);
  comp_speed.reserve(n);
  cpu_bound.reserve(n);
}

FlowTable::Id FlowTable::add_transfer(std::uint16_t tenant_id,
                                      std::uint32_t path_id,
                                      corpus::Compressibility c,
                                      std::uint64_t raw_bytes, double w,
                                      common::SimTime at, double ratio_jit,
                                      double speed_jit) {
  const Id id = static_cast<Id>(phase.size());
  phase.push_back(FlowPhase::kPending);
  kind.push_back(FlowKind::kTransfer);
  tenant.push_back(tenant_id);
  cls.push_back(c);
  level.push_back(0);
  path.push_back(path_id);
  weight.push_back(w);
  raw_total.push_back(static_cast<double>(raw_bytes));
  raw_remaining.push_back(static_cast<double>(raw_bytes));
  dwell_remaining.push_back(common::SimTime());
  arrival.push_back(at);
  admitted.push_back(common::SimTime());
  finished.push_back(common::SimTime());
  rate.push_back(0.0);
  alloc_rate.push_back(0.0);
  wire_bytes.push_back(0.0);
  cpu_s.push_back(0.0);
  ratio_jitter.push_back(ratio_jit);
  speed_jitter.push_back(speed_jit);
  ctrl.push_back(core::ControllerState{});
  meter.push_back(FlowMeter{});
  wf.push_back(1.0);
  comp_speed.push_back(0.0);
  cpu_bound.push_back(0.0);
  return id;
}

FlowTable::Id FlowTable::add_dwell(std::uint16_t tenant_id,
                                   std::uint32_t path_id, double w,
                                   common::SimTime at,
                                   common::SimTime dwell) {
  const Id id = add_transfer(tenant_id, path_id,
                             corpus::Compressibility::kLow, 0, w, at, 1.0,
                             1.0);
  kind[id] = FlowKind::kDwell;
  dwell_remaining[id] = dwell;
  return id;
}

}  // namespace strato::vsim
