#include "vsim/packet_sim.h"

#include <algorithm>
#include <deque>

#include "common/rng.h"
#include "compress/framing.h"
#include "vsim/event_queue.h"

namespace strato::vsim {

using common::SimTime;

namespace {

/// One framed block travelling through the pipeline.
struct Block {
  std::uint64_t raw = 0;
  std::uint64_t wire_remaining = 0;
  double decomp_s = 0.0;
};

/// The whole simulation state; methods are the event handlers.
class Sim {
 public:
  Sim(const PacketSimConfig& cfg, core::CompressionPolicy& policy)
      : cfg_(cfg),
        policy_(policy),
        prof_(profile(cfg.tech)),
        fluct_(prof_.net_fluct, cfg.seed),
        rng_(cfg.seed ^ 0x7245F0000000AB01ULL),
        deficit_(static_cast<std::size_t>(cfg.bg_flows) + 1, 0.0) {
    // Identical derivations to the fluid model so per-run biases match.
    host_gen_ = std::clamp(rng_.gaussian(1.0, 0.015), 0.9, 1.1);
    const double steal =
        std::min(0.6, prof_.steal_per_colocated_vm * cfg_.bg_flows);
    cpu_scale_ = (1.0 - steal) * host_gen_;
    io_cpu_s_per_byte_ = prof_.net_cpu_s_per_byte / host_gen_;
  }

  PacketSimResult run() {
    start_compression();
    res_.events = queue_.run(2'000'000'000ULL);
    res_.completion_s = completion_.to_seconds();
    return res_;
  }

 private:
  // --- compressor stage ----------------------------------------------------
  void start_compression() {
    if (raw_offset_ >= cfg_.total_bytes) return;
    if (send_queue_.size() >= cfg_.send_queue_blocks) {
      compressor_stalled_ = true;  // resumed when a slot frees
      return;
    }
    const std::uint64_t raw = std::min<std::uint64_t>(
        cfg_.block_size, cfg_.total_bytes - raw_offset_);
    raw_offset_ += raw;

    const int level = std::clamp(policy_.level(), 0,
                                 CodecModel::kNumLevels - 1);
    const LevelBehaviour& beh = cfg_.model.get(level, cfg_.data);
    const double jr =
        std::clamp(rng_.gaussian(1.0, cfg_.ratio_jitter), 0.8, 1.2);
    const double js =
        std::clamp(rng_.gaussian(1.0, cfg_.speed_jitter), 0.7, 1.3);
    const double ratio = std::min(1.0, beh.ratio * jr);
    const double wire =
        static_cast<double>(raw) * ratio + compress::kFrameHeaderSize;

    Block block;
    block.raw = raw;
    block.wire_remaining = static_cast<std::uint64_t>(wire);
    block.decomp_s =
        static_cast<double>(raw) /
            (beh.decompress_bytes_s * cfg_.codec_speed_factor * js) +
        wire * io_cpu_s_per_byte_;

    const double comp_s =
        static_cast<double>(raw) /
            (beh.compress_bytes_s * cfg_.codec_speed_factor * js *
             cpu_scale_) +
        wire * io_cpu_s_per_byte_;
    queue_.schedule_in(SimTime::seconds(comp_s), [this, block] {
      on_block_compressed(block);
    });
  }

  void on_block_compressed(const Block& block) {
    res_.raw_bytes += block.raw;
    res_.wire_bytes += block.wire_remaining;
    policy_.on_block(block.raw, queue_.now());
    send_queue_.push_back(block);
    kick_link();
    start_compression();
  }

  // --- shared link (weighted deficit round robin) --------------------------
  bool fg_has_packet() const {
    return !send_queue_.empty() &&
           recv_queue_ < cfg_.recv_queue_blocks;
  }

  std::size_t fg_packet_size() const {
    return static_cast<std::size_t>(std::min<std::uint64_t>(
        cfg_.mtu, send_queue_.front().wire_remaining));
  }

  void kick_link() {
    if (link_busy_ || done_) return;
    // Which flows can transmit? Flow 0 = job; 1..k = background (always
    // backlogged while the job runs).
    const std::size_t nflows = deficit_.size();
    bool any = fg_has_packet() || nflows > 1;
    if (!any) return;

    for (std::size_t attempts = 0; attempts < nflows * 64; ++attempts) {
      const std::size_t f = rr_;
      const bool has_pkt = f == 0 ? fg_has_packet() : true;
      if (!has_pkt) {
        deficit_[f] = 0.0;
        rr_ = (rr_ + 1) % nflows;
        continue;
      }
      const std::size_t size = f == 0 ? fg_packet_size() : cfg_.mtu;
      if (deficit_[f] >= static_cast<double>(size)) {
        deficit_[f] -= static_cast<double>(size);
        transmit(f, size);
        return;
      }
      deficit_[f] +=
          static_cast<double>(cfg_.mtu) * (f == 0 ? 1.0 : cfg_.bg_weight);
      rr_ = (rr_ + 1) % nflows;
    }
    // Quantums guarantee progress; reaching here means no flow is
    // eligible (fg blocked on the receiver and no bg flows).
  }

  void transmit(std::size_t flow, std::size_t size) {
    link_busy_ = true;
    const double rate =
        std::max(1.0, prof_.net_bytes_s * fluct_.factor(queue_.now()));
    queue_.schedule_in(
        SimTime::seconds(static_cast<double>(size) / rate),
        [this, flow, size] { on_tx_done(flow, size); });
  }

  void on_tx_done(std::size_t flow, std::size_t size) {
    link_busy_ = false;
    if (flow == 0) {
      ++res_.fg_packets;
      Block& block = send_queue_.front();
      block.wire_remaining -= size;
      if (block.wire_remaining == 0) {
        // Block fully on the wire: hand to the receiver, free the slot.
        deliver(block);
        send_queue_.pop_front();
        if (compressor_stalled_) {
          compressor_stalled_ = false;
          start_compression();
        }
      }
    } else {
      ++res_.bg_packets;
    }
    kick_link();
  }

  // --- receiver stage --------------------------------------------------------
  void deliver(const Block& block) {
    ++recv_queue_;
    pending_decomp_.push_back(block);
    if (!receiver_busy_) start_decompression();
  }

  void start_decompression() {
    if (pending_decomp_.empty()) return;
    receiver_busy_ = true;
    const Block block = pending_decomp_.front();
    pending_decomp_.pop_front();
    queue_.schedule_in(SimTime::seconds(block.decomp_s), [this, block] {
      receiver_busy_ = false;
      --recv_queue_;
      decomp_bytes_ += block.raw;
      if (decomp_bytes_ >= cfg_.total_bytes) {
        completion_ = queue_.now();
        done_ = true;  // stops the link from serving bg flows forever
        return;
      }
      // Freeing a receive slot may unblock the fg flow at the link.
      kick_link();
      start_decompression();
    });
  }

  PacketSimConfig cfg_;
  core::CompressionPolicy& policy_;
  const VirtProfile& prof_;
  FluctuationProcess fluct_;
  common::Xoshiro256 rng_;
  EventQueue queue_;

  double host_gen_ = 1.0;
  double cpu_scale_ = 1.0;
  double io_cpu_s_per_byte_ = 0.0;

  std::uint64_t raw_offset_ = 0;
  bool compressor_stalled_ = false;
  std::deque<Block> send_queue_;

  bool link_busy_ = false;
  std::size_t rr_ = 0;
  std::vector<double> deficit_;

  std::size_t recv_queue_ = 0;
  std::deque<Block> pending_decomp_;
  bool receiver_busy_ = false;
  std::uint64_t decomp_bytes_ = 0;

  bool done_ = false;
  SimTime completion_;
  PacketSimResult res_;
};

}  // namespace

PacketSimResult run_packet_transfer(const PacketSimConfig& config,
                                    core::CompressionPolicy& policy) {
  Sim sim(config, policy);
  return sim.run();
}

}  // namespace strato::vsim
