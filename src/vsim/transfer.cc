#include "vsim/transfer.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/rng.h"
#include "common/stats.h"
#include "compress/framing.h"

namespace strato::vsim {

using common::SimTime;

TransferExperiment::TransferExperiment(TransferConfig config)
    : config_(std::move(config)) {}

namespace {

/// Per-second accumulator for the timeline series.
struct Buckets {
  std::vector<double> app_bytes;
  std::vector<double> wire_bytes;
  std::vector<double> vm_busy_s;
  std::vector<double> host_busy_s;

  static void put(std::vector<double>& v, double t_s, double amount) {
    const auto i = static_cast<std::size_t>(std::max(0.0, t_s));
    if (i >= v.size()) v.resize(i + 1, 0.0);
    v[i] += amount;
  }
};

}  // namespace

TransferResult run_transfer_blocks(const TransferConfig& config,
                                   core::CompressionPolicy& policy,
                                   SimMetricsProvider& metrics) {
  const VirtProfile& prof = profile(config.tech);
  SharedLink link(prof, config.bg_flows, config.seed);
  if (!config.link_chaos.empty()) link.set_chaos(config.link_chaos);
  common::Xoshiro256 rng(config.seed ^ 0x7245F0000000AB01ULL);

  // Host-generation spread (Schad et al., cited in Section V): each run
  // lands on a slightly faster or slower host.
  const double host_gen =
      std::clamp(rng.gaussian(1.0, 0.015), 0.9, 1.1);
  const double io_cpu_s_per_byte = prof.net_cpu_s_per_byte / host_gen;

  // Co-located VMs steal vCPU time from the sender (and are only visible
  // as STEAL where the profile says so). With dynamic background traffic
  // the flow count — and with it steal and link share — changes over time.
  std::optional<BgTrafficProcess> bg_process;
  if (config.bg_traffic.enabled()) {
    bg_process.emplace(config.bg_traffic, config.seed);
  }
  int cur_flows = config.bg_flows;
  double steal = std::min(0.6, prof.steal_per_colocated_vm * cur_flows);
  double cpu_scale = (1.0 - steal) * host_gen;

  const std::size_t qs = std::max<std::size_t>(1, config.send_queue_blocks);
  const std::size_t qr = std::max<std::size_t>(1, config.recv_queue_blocks);
  std::vector<SimTime> link_end_ring(qs);
  std::vector<SimTime> decomp_end_ring(qr);
  const std::size_t kw = std::max<std::size_t>(1, config.recv_workers);
  std::vector<SimTime> recv_worker_free(kw);

  SimTime comp_end_prev, link_end_prev, decomp_end_prev;
  TransferResult res;
  res.blocks_per_level.assign(CodecModel::kNumLevels, 0);
  Buckets buckets;

  double cpu_vm_total_s = 0.0;
  double cpu_host_total_s = 0.0;
  double bw_ema = prof.net_bytes_s;  // guest's own throughput estimate
  double displayed_busy_ema = 0.0;

  std::uint64_t raw_offset = 0;
  std::uint64_t block_index = 0;
  while (raw_offset < config.total_bytes) {
    const std::uint64_t raw = std::min<std::uint64_t>(
        config.block_size, config.total_bytes - raw_offset);

    // Which corpus class is the application writing right now? Either a
    // general schedule trace, the Fig. 6 two-phase alternation, or the
    // fixed class.
    corpus::Compressibility cls = config.data;
    if (!config.schedule.empty()) {
      cls = corpus::class_at(config.schedule, raw_offset);
    } else if (config.segment_bytes > 0 &&
               (raw_offset / config.segment_bytes) % 2 == 1) {
      cls = config.data_b;
    }

    if (bg_process) {
      const int flows = bg_process->flows_at(comp_end_prev);
      if (flows != cur_flows) {
        cur_flows = flows;
        link.set_bg_flows(flows);
        steal = std::min(0.6, prof.steal_per_colocated_vm * flows);
        cpu_scale = (1.0 - steal) * host_gen;
      }
    }

    const int level = std::clamp(policy.level(), 0,
                                 CodecModel::kNumLevels - 1);
    const LevelBehaviour& beh = config.model.get(level, cls);

    // Real blocks differ slightly; jitter ratio and speed per block.
    const double jr =
        std::clamp(rng.gaussian(1.0, config.ratio_jitter), 0.8, 1.2);
    const double js =
        std::clamp(rng.gaussian(1.0, config.speed_jitter), 0.7, 1.3);
    const double ratio = std::min(1.0, beh.ratio * jr);
    const double wire =
        static_cast<double>(raw) * ratio + compress::kFrameHeaderSize;

    // --- sender CPU stage --------------------------------------------------
    const double comp_speed =
        beh.compress_bytes_s * config.codec_speed_factor;
    const double comp_cpu_s =
        static_cast<double>(raw) / (comp_speed * js * cpu_scale);
    const double io_cpu_s = wire * io_cpu_s_per_byte;
    const SimTime cpu_time = SimTime::seconds(comp_cpu_s + io_cpu_s);
    const SimTime comp_start =
        std::max(comp_end_prev, link_end_ring[block_index % qs]);
    const SimTime comp_end = comp_start + cpu_time;

    // --- link stage ----------------------------------------------------
    const SimTime link_start = std::max(
        {comp_end, link_end_prev, decomp_end_ring[block_index % qr]});
    const double rate = std::max(1.0, link.fg_rate(link_start));
    const SimTime link_end = link_start + SimTime::seconds(wire / rate);

    // --- receiver CPU stage ----------------------------------------------
    // k-server decode: the block starts when it has arrived AND the
    // least-loaded worker is free; delivery (decomp_end) is re-sequenced
    // into arrival order like the real decode pipeline. With one worker
    // the min element IS decomp_end_prev, so this is exactly the paper's
    // serial recurrence.
    auto free_at =
        std::min_element(recv_worker_free.begin(), recv_worker_free.end());
    const SimTime decomp_start = std::max(link_end, *free_at);
    const double decomp_cpu_s =
        static_cast<double>(raw) /
            (beh.decompress_bytes_s * config.codec_speed_factor * js) +
        wire * io_cpu_s_per_byte;
    const SimTime decomp_finish =
        decomp_start + SimTime::seconds(decomp_cpu_s);
    *free_at = decomp_finish;
    const SimTime decomp_end = std::max(decomp_finish, decomp_end_prev);

    // --- bookkeeping -----------------------------------------------------
    link_end_ring[block_index % qs] = link_end;
    decomp_end_ring[block_index % qr] = decomp_end;
    comp_end_prev = comp_end;
    link_end_prev = link_end;
    decomp_end_prev = decomp_end;

    res.raw_bytes += raw;
    res.wire_bytes += static_cast<std::uint64_t>(wire);
    ++res.blocks_per_level[static_cast<std::size_t>(level)];

    cpu_vm_total_s += comp_cpu_s + io_cpu_s * prof.net_cpu_visibility;
    cpu_host_total_s += comp_cpu_s + io_cpu_s;

    if (config.record_timeline) {
      const double t = comp_end.to_seconds();
      Buckets::put(buckets.app_bytes, t, static_cast<double>(raw));
      Buckets::put(buckets.wire_bytes, link_end.to_seconds(), wire);
      double vm_busy = comp_cpu_s + io_cpu_s * prof.net_cpu_visibility;
      if (prof.steal_displayed) {
        vm_busy += steal * (comp_cpu_s + io_cpu_s);
      }
      Buckets::put(buckets.vm_busy_s, t, vm_busy);
      Buckets::put(buckets.host_busy_s, t,
                   (comp_cpu_s + io_cpu_s) * (1.0 + steal));
      res.timeline.record("level", comp_start, level);
    }

    // Guest-side displayed metrics for the metric-driven baseline: its own
    // recent throughput and the (under-reported) CPU busy fraction.
    const double span_s =
        std::max(1e-9, (link_end - comp_start).to_seconds());
    const double inst_bw = wire / span_s;
    bw_ema += 0.05 * (inst_bw - bw_ema);
    const double inst_busy = std::min(
        1.0, (comp_cpu_s + io_cpu_s * prof.net_cpu_visibility) /
                 std::max(1e-9, cpu_time.to_seconds()));
    displayed_busy_ema += 0.05 * (inst_busy - displayed_busy_ema);
    metrics.update(displayed_busy_ema, bw_ema);

    // The application handed `raw` bytes to the compression module; this
    // is the data-rate signal the paper's controller runs on.
    policy.on_block(raw, comp_end);

    raw_offset += raw;
    ++block_index;
  }

  res.completion_s = decomp_end_prev.to_seconds();
  const double dur = std::max(1e-9, res.completion_s);
  res.mean_vm_cpu_busy =
      std::min(1.0, cpu_vm_total_s / dur) +
      (prof.steal_displayed ? steal * std::min(1.0, cpu_host_total_s / dur)
                            : 0.0);
  res.mean_host_cpu_busy = std::min(1.0, cpu_host_total_s / dur) * (1 + steal);

  if (config.record_timeline) {
    const auto emit = [&](const char* name, const std::vector<double>& v,
                          double scale) {
      for (std::size_t s = 0; s < v.size(); ++s) {
        res.timeline.record(name, SimTime::seconds(static_cast<double>(s)),
                            v[s] * scale);
      }
    };
    emit("app_mbit_s", buckets.app_bytes, 8e-6);
    emit("net_mbit_s", buckets.wire_bytes, 8e-6);
    emit("cpu_busy_vm", buckets.vm_busy_s, 100.0);    // percent
    emit("cpu_busy_host", buckets.host_busy_s, 100.0);
  }
  return res;
}

TransferResult TransferExperiment::run(core::CompressionPolicy& policy) {
  return run_transfer_blocks(config_, policy, metrics_);
}

RepeatedResult run_repeated(
    const TransferConfig& base, int reps,
    const std::function<std::unique_ptr<core::CompressionPolicy>(
        TransferExperiment&)>& make_policy) {
  common::RunningStats stats;
  for (int r = 0; r < reps; ++r) {
    TransferConfig cfg = base;
    cfg.seed = base.seed + static_cast<std::uint64_t>(r) * 7919;
    TransferExperiment exp(cfg);
    auto policy = make_policy(exp);
    stats.add(exp.run(*policy).completion_s);
  }
  return {stats.mean(), stats.stddev()};
}

}  // namespace strato::vsim
