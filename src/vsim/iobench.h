// The Section II measurement study, in virtual time.
//
// Fig. 1: saturate one I/O operation and sample the CPU utilization once
// per second, both as displayed inside the VM and as reported by the host
// (>=120 samples, like the paper). Fig. 2 / Fig. 3: move 50 GB through
// the network / the disk, timestamping every 20 MB, and report the
// distribution of the per-chunk rates observed inside the VM.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "metrics/cpu.h"
#include "vsim/profile.h"

namespace strato::vsim {

/// One per-second CPU sample of the Fig. 1 study.
struct CpuAccuracySample {
  metrics::CpuBreakdown vm;
  metrics::CpuBreakdown host;
};

/// Aggregated Fig. 1 cell: averages over all samples.
struct CpuAccuracyResult {
  metrics::CpuBreakdown vm_mean;
  metrics::CpuBreakdown host_mean;
  bool host_observable = true;
  std::vector<CpuAccuracySample> samples;

  /// host busy / vm busy — the paper's "factor 15" discrepancy measure.
  [[nodiscard]] double discrepancy() const {
    const double v = vm_mean.busy();
    return v > 1e-9 ? host_mean.busy() / v : 0.0;
  }
};

/// Run the Fig. 1 experiment for one (technique, operation) cell.
/// @param num_samples  per-second samples (paper: >=120)
CpuAccuracyResult run_cpu_accuracy(VirtTech tech, IoOp op, int num_samples,
                                   std::uint64_t seed);

/// Fig. 2: distribution of network send throughput (MBit/s) observed
/// inside the VM, one sample per `chunk_bytes` (paper: 20 MB over 50 GB).
common::Sample run_net_throughput(VirtTech tech, std::uint64_t total_bytes,
                                  std::uint64_t chunk_bytes,
                                  std::uint64_t seed);

/// Fig. 3: distribution of file-write throughput (MB/s) observed inside
/// the VM, one sample per chunk. Also reports how many bytes were still
/// dirty in the host cache at the end (the XEN surprise).
struct FileWriteResult {
  common::Sample rates_mb_s;
  double final_dirty_bytes = 0.0;
};
FileWriteResult run_file_write_throughput(VirtTech tech,
                                          std::uint64_t total_bytes,
                                          std::uint64_t chunk_bytes,
                                          std::uint64_t seed);

}  // namespace strato::vsim
