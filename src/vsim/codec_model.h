// Codec behaviour model for the simulator.
//
// The virtual-time pipeline charges CPU time for compression and sizes
// wire transfers by ratio; both come from this table, indexed by
// (compression level, corpus class). Two sources:
//
//  * defaults(): constants measured from *this repository's* codecs over
//    *this repository's* corpus generators (tests pin the live values to
//    these within a tolerance), giving deterministic simulations;
//  * calibrate(): re-measures the real codecs at bench startup, so the
//    reproduced tables reflect the machine they run on.
#pragma once

#include <array>
#include <cstdint>

#include "compress/registry.h"
#include "corpus/generator.h"

namespace strato::vsim {

/// Simulated behaviour of one level on one corpus class.
struct LevelBehaviour {
  double compress_bytes_s = 0.0;    ///< raw bytes/s, one dedicated core
  double decompress_bytes_s = 0.0;  ///< raw bytes/s, one dedicated core
  double ratio = 1.0;               ///< compressed/raw
};

/// (level x corpus) behaviour table.
class CodecModel {
 public:
  static constexpr int kNumLevels = 4;
  static constexpr int kNumClasses = 3;  // HIGH / MODERATE / LOW

  /// Behaviour of `level` on corpus class `c`.
  [[nodiscard]] const LevelBehaviour& get(
      int level, corpus::Compressibility c) const;

  /// Override one cell (tests, what-if ablations).
  void set(int level, corpus::Compressibility c, LevelBehaviour b);

  /// Constants measured from the repository's codecs (see file comment).
  static CodecModel defaults();

  /// Measure the real codecs over the real generators; `bytes_per_cell`
  /// of data per (level, corpus) pair.
  static CodecModel calibrate(
      const compress::CodecRegistry& registry = compress::CodecRegistry::standard(),
      std::size_t bytes_per_cell = 8u << 20);

 private:
  std::array<std::array<LevelBehaviour, kNumClasses>, kNumLevels> table_{};
};

}  // namespace strato::vsim
