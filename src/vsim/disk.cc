#include "vsim/disk.h"

#include <algorithm>

namespace strato::vsim {

Disk::Disk(const VirtProfile& profile, std::uint64_t seed)
    : profile_(profile), fluct_(profile.disk_fluct, seed) {}

common::SimTime Disk::write(std::uint64_t bytes, common::SimTime now) {
  const auto& cache = profile_.disk_cache;
  const double n = static_cast<double>(bytes);
  if (!cache.write_back_cache) {
    const double rate =
        std::max(1.0, profile_.disk_write_bytes_s * fluct_.factor(now));
    return common::SimTime::seconds(n / rate);
  }
  if (now < flush_until_) {
    // The host is flushing; guest writes trickle at a few MB/s.
    return common::SimTime::seconds(n / cache.flush_rate);
  }
  // Absorb into the host page cache at memory-like speed.
  dirty_ += n;
  const common::SimTime dur = common::SimTime::seconds(n / cache.cache_rate);
  if (dirty_ >= cache.cache_bytes) {
    // Dirty budget exceeded: the host writes a chunk of the cache back to
    // the physical disk, stalling the guest's apparent throughput.
    const double drained = cache.cache_bytes * cache.flush_fraction;
    const double flush_secs =
        drained / std::max(1.0, profile_.disk_write_bytes_s);
    flush_until_ = now + dur + common::SimTime::seconds(flush_secs);
    dirty_ = std::max(0.0, dirty_ - drained);
  }
  return dur;
}

common::SimTime Disk::read(std::uint64_t bytes, common::SimTime now) {
  const double rate =
      std::max(1.0, profile_.disk_read_bytes_s * fluct_.factor(now));
  return common::SimTime::seconds(static_cast<double>(bytes) / rate);
}

}  // namespace strato::vsim
