#include "vsim/profile.h"

#include <stdexcept>

namespace strato::vsim {

const char* to_string(VirtTech t) {
  switch (t) {
    case VirtTech::kNative:
      return "Native";
    case VirtTech::kKvmFull:
      return "KVM (full virt.)";
    case VirtTech::kKvmPara:
      return "KVM (paravirt.)";
    case VirtTech::kXenPara:
      return "XEN (paravirt.)";
    case VirtTech::kEc2:
      return "Amazon EC2";
  }
  return "?";
}

const char* to_string(IoOp op) {
  switch (op) {
    case IoOp::kNetSend:
      return "net-send";
    case IoOp::kNetRecv:
      return "net-recv";
    case IoOp::kFileWrite:
      return "file-write";
    case IoOp::kFileRead:
      return "file-read";
  }
  return "?";
}

namespace {

using metrics::CpuBreakdown;

// ---------------------------------------------------------------------------
// Fig. 1 CPU accounting tables.
//
// Each entry: breakdown displayed inside the VM vs reported by the host for
// the VM's worker at I/O saturation. Values are modelled (fractions of one
// core; the host view may exceed 1.0 because qemu/dom0 helpers run on other
// cores) but reproduce the paper's qualitative results:
//   * net send, KVM paravirt: guest sees ~7 % while the host burns >100 %
//     (the "factor 15" example);
//   * file read, XEN: same story on the disk path;
//   * net send, KVM full virt. and XEN: discrepancy comparatively small;
//   * EC2: host side unobservable, guest displays STEAL.
// ---------------------------------------------------------------------------

struct AccountingRow {
  VirtTech tech;
  IoOp op;
  CpuAccounting acc;
};

const AccountingRow kAccounting[] = {
    // --- network send (Fig. 1a) ---
    {VirtTech::kNative, IoOp::kNetSend,
     {{.05, .25, .02, .10, .00}, {.05, .25, .02, .10, .00}, true}},
    {VirtTech::kKvmFull, IoOp::kNetSend,
     {{.03, .42, .04, .18, .00}, {.12, .95, .03, .28, .00}, true}},
    {VirtTech::kKvmPara, IoOp::kNetSend,
     {{.02, .03, .00, .02, .00}, {.10, .70, .02, .22, .00}, true}},
    {VirtTech::kXenPara, IoOp::kNetSend,
     {{.02, .28, .01, .12, .08}, {.03, .38, .02, .15, .00}, true}},
    {VirtTech::kEc2, IoOp::kNetSend,
     {{.04, .35, .00, .22, .12}, {}, false}},
    // --- network receive (Fig. 1b) ---
    {VirtTech::kNative, IoOp::kNetRecv,
     {{.04, .28, .03, .14, .00}, {.04, .28, .03, .14, .00}, true}},
    {VirtTech::kKvmFull, IoOp::kNetRecv,
     {{.04, .50, .05, .26, .00}, {.10, .85, .04, .30, .00}, true}},
    {VirtTech::kKvmPara, IoOp::kNetRecv,
     {{.02, .04, .00, .03, .00}, {.08, .72, .03, .27, .00}, true}},
    {VirtTech::kXenPara, IoOp::kNetRecv,
     {{.02, .32, .02, .18, .06}, {.04, .45, .03, .20, .00}, true}},
    {VirtTech::kEc2, IoOp::kNetRecv,
     {{.05, .38, .00, .25, .15}, {}, false}},
    // --- file write (Fig. 1c) ---
    {VirtTech::kNative, IoOp::kFileWrite,
     {{.02, .14, .01, .02, .00}, {.02, .14, .01, .02, .00}, true}},
    {VirtTech::kKvmFull, IoOp::kFileWrite,
     {{.02, .14, .02, .03, .00}, {.05, .33, .03, .05, .00}, true}},
    {VirtTech::kKvmPara, IoOp::kFileWrite,
     {{.01, .04, .00, .01, .00}, {.04, .25, .02, .04, .00}, true}},
    {VirtTech::kXenPara, IoOp::kFileWrite,
     {{.01, .06, .00, .01, .04}, {.03, .22, .02, .04, .00}, true}},
    {VirtTech::kEc2, IoOp::kFileWrite,
     {{.02, .13, .00, .02, .08}, {}, false}},
    // --- file read (Fig. 1d) ---
    {VirtTech::kNative, IoOp::kFileRead,
     {{.02, .17, .02, .02, .00}, {.02, .17, .02, .02, .00}, true}},
    {VirtTech::kKvmFull, IoOp::kFileRead,
     {{.02, .11, .01, .02, .00}, {.06, .28, .03, .04, .00}, true}},
    {VirtTech::kKvmPara, IoOp::kFileRead,
     {{.01, .06, .00, .01, .00}, {.05, .21, .02, .03, .00}, true}},
    {VirtTech::kXenPara, IoOp::kFileRead,
     {{.005, .02, .00, .005, .01}, {.05, .32, .03, .05, .00}, true}},
    {VirtTech::kEc2, IoOp::kFileRead,
     {{.02, .08, .00, .02, .05}, {}, false}},
};

VirtProfile make_native() {
  VirtProfile p;
  p.tech = VirtTech::kNative;
  p.name = to_string(p.tech);
  p.net_bytes_s = 117.6e6;  // ~941 MBit/s over GigE
  p.net_fluct = {FluctuationKind::kGaussian, 0.012, 0, 0, 0, 0, 0.005};
  p.disk_write_bytes_s = 92e6;
  p.disk_read_bytes_s = 105e6;
  p.disk_fluct = {FluctuationKind::kGaussian, 0.05, 0, 0, 0, 0, 0.01};
  p.net_cpu_s_per_byte = 3.6e-9;  // ~0.42 cores at line rate
  p.net_cpu_visibility = 1.0;     // nothing hidden without a hypervisor
  p.disk_cpu_s_per_byte = 2.1e-9;
  p.disk_cpu_visibility = 1.0;
  p.steal_per_colocated_vm = 0.0;
  return p;
}

VirtProfile make_kvm_full() {
  VirtProfile p = make_native();
  p.tech = VirtTech::kKvmFull;
  p.name = to_string(p.tech);
  p.net_bytes_s = 52.5e6;  // ~420 MBit/s through the emulated e1000
  p.net_fluct.sigma = 0.045;
  p.net_fluct.run_bias_sigma = 0.02;
  p.disk_fluct.run_bias_sigma = 0.03;
  p.disk_write_bytes_s = 78e6;
  p.disk_fluct.sigma = 0.10;
  p.disk_read_bytes_s = 88e6;
  p.net_cpu_s_per_byte = 2.6e-8;  // device emulation is expensive
  p.net_cpu_visibility = 0.49;
  p.disk_cpu_s_per_byte = 5.8e-9;
  p.disk_cpu_visibility = 0.45;
  p.steal_per_colocated_vm = 0.035;
  p.steal_displayed = false;  // stock guest shows no steal under KVM
  return p;
}

VirtProfile make_kvm_para() {
  VirtProfile p = make_native();
  p.tech = VirtTech::kKvmPara;
  p.name = to_string(p.tech);
  p.net_bytes_s = 87.5e6;  // ~700 MBit/s via virtio_net
  p.net_fluct.sigma = 0.035;
  p.net_fluct.run_bias_sigma = 0.015;
  p.disk_fluct.run_bias_sigma = 0.02;
  p.disk_write_bytes_s = 85e6;
  p.disk_fluct.sigma = 0.08;
  p.disk_read_bytes_s = 95e6;
  // The paper's headline case: the host burns ~a core at saturation while
  // the guest displays ~7 % (factor ~15).
  p.net_cpu_s_per_byte = 1.2e-8;
  p.net_cpu_visibility = 0.07;
  p.disk_cpu_s_per_byte = 4.1e-9;
  p.disk_cpu_visibility = 0.17;
  p.steal_per_colocated_vm = 0.035;
  p.steal_displayed = false;
  return p;
}

VirtProfile make_xen_para() {
  VirtProfile p = make_native();
  p.tech = VirtTech::kXenPara;
  p.name = to_string(p.tech);
  p.net_bytes_s = 95e6;  // ~760 MBit/s via xennet
  p.net_fluct.sigma = 0.05;
  p.net_fluct.run_bias_sigma = 0.02;
  p.disk_fluct.run_bias_sigma = 0.02;
  p.disk_write_bytes_s = 80e6;
  p.disk_read_bytes_s = 85e6;
  p.disk_fluct.sigma = 0.07;
  // The XEN file-write anomaly (Fig. 3): guest writes land in the dom0
  // page cache at memory speed until the host flushes, during which the
  // displayed rate collapses to a few MB/s.
  p.disk_cache.write_back_cache = true;
  p.disk_cache.cache_bytes = 1.5e9;
  p.disk_cache.cache_rate = 3.5e8;
  p.disk_cache.flush_rate = 5.0e6;
  p.disk_cache.flush_fraction = 0.6;
  p.net_cpu_s_per_byte = 6.1e-9;
  p.net_cpu_visibility = 0.88;  // netfront accounting is mostly honest
  p.disk_cpu_s_per_byte = 5.6e-9;
  p.disk_cpu_visibility = 0.07;  // ...the block path is not (Fig. 1d)
  p.steal_per_colocated_vm = 0.04;
  p.steal_displayed = true;
  return p;
}

VirtProfile make_ec2() {
  VirtProfile p = make_native();
  p.tech = VirtTech::kEc2;
  p.name = to_string(p.tech);
  // Wang & Ng / the paper's own baseline: TCP throughput swings between
  // ~zero and 1 GBit/s at a granularity of tens of milliseconds.
  p.net_bytes_s = 112e6;
  p.net_fluct.kind = FluctuationKind::kTwoState;
  p.net_fluct.sigma = 0.03;
  p.net_fluct.degraded_floor = 0.03;
  p.net_fluct.degraded_ceil = 0.45;
  p.net_fluct.mean_dwell_ms = 30.0;
  p.net_fluct.degraded_prob = 0.35;
  p.net_fluct.run_bias_sigma = 0.08;
  p.disk_fluct.run_bias_sigma = 0.10;
  p.disk_write_bytes_s = 65e6;  // m1.small ephemeral storage
  p.disk_read_bytes_s = 70e6;
  p.disk_fluct.sigma = 0.15;
  p.net_cpu_s_per_byte = 1.1e-8;
  p.net_cpu_visibility = 0.62;
  p.disk_cpu_s_per_byte = 4.5e-9;
  p.disk_cpu_visibility = 0.55;
  p.steal_per_colocated_vm = 0.05;
  p.steal_displayed = true;
  return p;
}

}  // namespace

CpuAccounting VirtProfile::accounting(IoOp op) const {
  for (const auto& row : kAccounting) {
    if (row.tech == tech && row.op == op) return row.acc;
  }
  throw std::logic_error("no accounting row");
}

const VirtProfile& profile(VirtTech tech) {
  static const VirtProfile native = make_native();
  static const VirtProfile kvm_full = make_kvm_full();
  static const VirtProfile kvm_para = make_kvm_para();
  static const VirtProfile xen_para = make_xen_para();
  static const VirtProfile ec2 = make_ec2();
  switch (tech) {
    case VirtTech::kNative:
      return native;
    case VirtTech::kKvmFull:
      return kvm_full;
    case VirtTech::kKvmPara:
      return kvm_para;
    case VirtTech::kXenPara:
      return xen_para;
    case VirtTech::kEc2:
      return ec2;
  }
  throw std::logic_error("unknown tech");
}

}  // namespace strato::vsim
