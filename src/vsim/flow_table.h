// Structs-of-arrays flow store for the fleet simulator.
//
// The original TransferExperiment keeps one heap object per transfer
// (policy, meter, link, timeline). At fleet scale — 10^5..10^6 concurrent
// flows — that layout dies by pointer chasing and allocator pressure:
// every epoch touches every active flow, so the state an epoch reads
// (phase, remaining bytes, rate, level) must be contiguous. FlowTable
// stores each field as its own parallel vector; a flow is an index, not
// an object. The adaptive controller rides along as embedded POD
// (core::ControllerState, 40 bytes) and the rate meter as FlowMeter, so
// one million DYNAMIC flows are two flat arrays rather than two million
// heap objects.
//
// The fleet-alloc lint rule bans `new` / make_unique / make_shared in
// this layer; growth happens only through the column vectors.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_time.h"
#include "core/controller.h"
#include "corpus/generator.h"

namespace strato::vsim {

/// Flow lifecycle.
enum class FlowPhase : std::uint8_t {
  kPending = 0,  ///< spawned, waiting for admission
  kActive,       ///< admitted, competing for link shares
  kDone,         ///< finished (or rejected before admission)
};

/// What the flow transports.
enum class FlowKind : std::uint8_t {
  kTransfer,  ///< fixed raw byte count through the compression module
  kDwell,     ///< background TCP connection occupying its share for a
              ///< fixed duration (the bgtraffic tenant class)
};

/// core::RateMeter's state as bare data: the application-data-rate window
/// that feeds Algorithm 1, one per flow, no heap.
struct FlowMeter {
  common::SimTime window_start;
  double bytes = 0.0;  ///< raw bytes this window (fluid drain = fractional)
  bool started = false;
};

/// Structs-of-arrays store. All columns are index-parallel; FlowTable
/// only guards the invariant that they grow together.
class FlowTable {
 public:
  using Id = std::uint32_t;

  /// Pre-size every column (fleet configs know their flow budget).
  void reserve(std::size_t n);

  /// Append a transfer flow in kPending phase; returns its id.
  Id add_transfer(std::uint16_t tenant, std::uint32_t path,
                  corpus::Compressibility cls, std::uint64_t raw_bytes,
                  double weight, common::SimTime arrival, double ratio_jit,
                  double speed_jit);

  /// Append a dwell (background) flow in kPending phase; returns its id.
  Id add_dwell(std::uint16_t tenant, std::uint32_t path, double weight,
               common::SimTime arrival, common::SimTime dwell);

  [[nodiscard]] std::size_t size() const { return phase.size(); }

  // --- columns (index-parallel; the engine iterates these directly) ----
  std::vector<FlowPhase> phase;
  std::vector<FlowKind> kind;
  std::vector<std::uint16_t> tenant;
  std::vector<corpus::Compressibility> cls;
  std::vector<std::int8_t> level;         ///< current compression level
  std::vector<std::uint32_t> path;        ///< Topology path id
  std::vector<double> weight;             ///< max-min share weight
  std::vector<double> raw_total;          ///< transfer size (raw bytes)
  std::vector<double> raw_remaining;
  std::vector<common::SimTime> dwell_remaining;  ///< kDwell only
  std::vector<common::SimTime> arrival;
  std::vector<common::SimTime> admitted;
  std::vector<common::SimTime> finished;
  std::vector<double> rate;               ///< allocated wire bytes/s
  std::vector<double> alloc_rate;         ///< max-min share before CPU clamp
  std::vector<double> wire_bytes;         ///< framed bytes moved so far
  std::vector<double> cpu_s;              ///< compress + I/O CPU charged
  std::vector<double> ratio_jitter;       ///< per-flow multiplicative jitter
  std::vector<double> speed_jitter;
  std::vector<core::ControllerState> ctrl;  ///< Algorithm 1 state (POD)
  std::vector<FlowMeter> meter;             ///< decision-window meter

  // Cached epoch kernel (transfers): derived from (level, cls) + jitters,
  // refreshed only at spawn and on a controller level switch so the hot
  // epoch loop reads three doubles instead of re-deriving the model.
  std::vector<double> wf;          ///< wire factor incl. frame overhead
  std::vector<double> comp_speed;  ///< effective compress bytes/s
  std::vector<double> cpu_bound;   ///< comp_speed * wf (wire-rate ceiling)
};

}  // namespace strato::vsim
