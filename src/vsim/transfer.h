// The paper's transfer experiment (Section IV) in virtual time.
//
// A sender task streams `total_bytes` of a chosen corpus through the
// adaptive compression module into a TCP channel shared with k background
// flows; a receiver task decompresses. The simulation advances block by
// block (128 KB, like Nephele's channel buffers) through a three-stage
// pipeline with bounded queues:
//
//   sender CPU (compress + I/O handling, 1 vCPU, minus steal)
//     -> shared link (weighted share, fluctuating capacity)
//       -> receiver CPU (decompress + I/O handling)
//
// Per block i (Q = queue bounds):
//   comp_start[i] = max(comp_end[i-1], link_end[i-Qs])
//   comp_end[i]   = comp_start[i] + cpu_time(i)
//   link_start[i] = max(comp_end[i], link_end[i-1], decomp_end[i-Qr])
//   link_end[i]   = link_start[i] + wire_bytes(i) / fg_rate(link_start[i])
//   decomp_end[i] = max(link_end[i], decomp_end[i-1]) + decomp_time(i)
//
// With recv_workers = k > 1 the receiver stage becomes a k-server queue
// (block i starts when it has arrived and the least-loaded worker frees
// up; delivery is re-sequenced in order, mirroring the real
// ParallelBlockDecodePipeline); k = 1 reduces to the recurrence above.
//
// The policy under test is driven exactly as on the real transport: its
// level is read at comp_start and on_block(raw, comp_end) feeds the rate
// meter, so backpressure from any stage shows up in the application data
// rate — the paper's sole decision signal. A 9000-second HEAVY run
// (Table II) completes in a few milliseconds of wall time.
#pragma once

#include <cstdint>
#include <vector>

#include "core/baselines.h"
#include "core/policy.h"
#include "corpus/schedule.h"
#include "metrics/timeseries.h"
#include "vsim/bgtraffic.h"
#include "vsim/codec_model.h"
#include "vsim/link.h"
#include "vsim/profile.h"

namespace strato::vsim {

/// Experiment parameters (defaults = the paper's setup).
struct TransferConfig {
  VirtTech tech = VirtTech::kKvmPara;  ///< the paper evaluates on KVM-para
  corpus::Compressibility data = corpus::Compressibility::kHigh;
  /// Fig. 6 workload: when segment_bytes > 0, alternate between `data`
  /// and `data_b` every segment_bytes of raw data.
  corpus::Compressibility data_b = corpus::Compressibility::kLow;
  std::uint64_t segment_bytes = 0;
  /// Generalized workload trace (corpus/schedule.h); overrides `data` and
  /// the segment fields when non-empty. Repeats cyclically.
  std::vector<corpus::Segment> schedule;
  int bg_flows = 0;                     ///< co-located TCP connections
  /// Time-varying background traffic (overrides bg_flows when enabled):
  /// deterministic steps or a Poisson/exponential birth-death process.
  BgTrafficConfig bg_traffic;
  std::uint64_t total_bytes = 50'000'000'000ULL;  ///< the paper's 50 GB
  std::size_t block_size = 128 * 1024;
  std::uint64_t seed = 1;
  /// Per-block multiplicative jitter of ratio / speeds (real blocks are
  /// not identical).
  double ratio_jitter = 0.01;
  double speed_jitter = 0.04;
  std::size_t send_queue_blocks = 8;
  std::size_t recv_queue_blocks = 8;
  /// Receive-side decode workers (the DecompressionSpec analogue): blocks
  /// start decompressing when they have arrived AND a worker is free;
  /// delivery stays in arrival order. 1 reproduces the paper's serial
  /// receiver exactly (the recurrence below is unchanged).
  std::size_t recv_workers = 1;
  /// Record per-second series for the timeline figures.
  bool record_timeline = false;
  CodecModel model = CodecModel::defaults();
  /// Uniform scale on codec speeds. 1.0 = this repository's C++ codecs on
  /// the build machine. The paper's levels ran as Java libraries inside
  /// Nephele on 2008 Xeons — ~0.4 mimics that regime (EXPERIMENTS.md).
  double codec_speed_factor = 1.0;
  /// Scripted link outages (kBlackout events, virtual-time ns) applied to
  /// the shared link — the verify harness's replayable chaos hook.
  common::ChaosSchedule link_chaos;
};

/// Experiment outcome.
struct TransferResult {
  double completion_s = 0.0;       ///< job completion time (paper's metric)
  std::uint64_t raw_bytes = 0;     ///< application bytes moved
  std::uint64_t wire_bytes = 0;    ///< framed bytes on the wire
  std::vector<std::uint64_t> blocks_per_level;
  double mean_vm_cpu_busy = 0.0;   ///< displayed inside the VM
  double mean_host_cpu_busy = 0.0; ///< host-side truth
  /// Series (record_timeline): "app_mbit_s", "net_mbit_s", "level",
  /// "cpu_busy_vm", "cpu_busy_host".
  metrics::TimelineRecorder timeline;
};

/// Metrics as displayed inside the simulated VM — feeds the metric-driven
/// baseline policy with exactly the skewed values a guest would see.
class SimMetricsProvider final : public core::SystemMetricsProvider {
 public:
  [[nodiscard]] double displayed_cpu_idle() const override {
    return 1.0 - displayed_busy_;
  }
  [[nodiscard]] double displayed_bandwidth() const override {
    return displayed_bandwidth_;
  }
  void update(double displayed_busy, double bandwidth_bytes_s) {
    displayed_busy_ = displayed_busy;
    displayed_bandwidth_ = bandwidth_bytes_s;
  }

 private:
  double displayed_busy_ = 0.0;
  double displayed_bandwidth_ = 117e6;
};

/// The per-block recurrence of Section IV as a free function: streams
/// config.total_bytes through `policy` and returns the result. This is
/// THE calibrated code path — TransferExperiment::run and
/// FleetEngine::run_degenerate both delegate here, so the single-link
/// degenerate fleet reproduces Table II bit-for-bit.
TransferResult run_transfer_blocks(const TransferConfig& config,
                                   core::CompressionPolicy& policy,
                                   SimMetricsProvider& metrics);

/// Runs transfer experiments.
class TransferExperiment {
 public:
  explicit TransferExperiment(TransferConfig config);

  /// Run one job to completion under `policy`.
  TransferResult run(core::CompressionPolicy& policy);

  /// Displayed-metric feed for MetricDrivenPolicy (valid during run()).
  [[nodiscard]] SimMetricsProvider& metrics() { return metrics_; }

  [[nodiscard]] const TransferConfig& config() const { return config_; }

 private:
  TransferConfig config_;
  SimMetricsProvider metrics_;
};

/// Convenience: run `reps` repetitions with distinct seeds under a policy
/// factory; returns completion-time stats.
struct RepeatedResult {
  double mean_s = 0.0;
  double sd_s = 0.0;
};
RepeatedResult run_repeated(
    const TransferConfig& base, int reps,
    const std::function<std::unique_ptr<core::CompressionPolicy>(
        TransferExperiment&)>& make_policy);

}  // namespace strato::vsim
