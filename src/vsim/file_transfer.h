// Adaptive compression on the file-I/O path — the paper's future work.
//
// Section VI: "For file I/O we found the aggressive caching mechanisms of
// some virtualization technologies to be a major obstacle which we intend
// to address for future work." This experiment implements that setting:
// the sender pipeline writes compressed blocks to the virtual disk
// (src/vsim/disk.h) instead of the network:
//
//   sender CPU (compress + disk I/O handling) -> disk (incl. host cache)
//
// On XEN's write-back cache the application data rate the controller
// observes is the *cache absorb rate* most of the time, punctuated by
// flush stalls — exactly the misleading signal the paper warns about.
// The experiment lets us quantify how Algorithm 1 behaves on it.
#pragma once

#include "core/policy.h"
#include "metrics/timeseries.h"
#include "vsim/codec_model.h"
#include "vsim/disk.h"
#include "vsim/profile.h"

namespace strato::vsim {

/// Parameters of the file-write experiment.
struct FileTransferConfig {
  VirtTech tech = VirtTech::kXenPara;
  corpus::Compressibility data = corpus::Compressibility::kHigh;
  std::uint64_t total_bytes = 10'000'000'000ULL;
  std::size_t block_size = 128 * 1024;
  std::uint64_t seed = 1;
  double ratio_jitter = 0.01;
  double speed_jitter = 0.04;
  bool record_timeline = false;
  CodecModel model = CodecModel::defaults();
};

/// Outcome of one file-write job.
struct FileTransferResult {
  double completion_s = 0.0;       ///< until the last block is *accepted*
  double drained_s = 0.0;          ///< plus flushing the remaining cache
  std::uint64_t raw_bytes = 0;
  std::uint64_t disk_bytes = 0;    ///< framed bytes handed to the disk
  double final_dirty_bytes = 0.0;  ///< unflushed data at completion
  std::vector<std::uint64_t> blocks_per_level;
  metrics::TimelineRecorder timeline;  ///< "app_mb_s", "level"
};

/// Run a file-write job under `policy`.
FileTransferResult run_file_transfer(const FileTransferConfig& config,
                                     core::CompressionPolicy& policy);

}  // namespace strato::vsim
