// Discrete-event simulation kernel.
//
// A minimal calendar: schedule callbacks at virtual times, pop them in
// (time, insertion) order. Used by the packet-level network simulation
// that cross-validates the fluid transfer pipeline (packet_sim.h).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/sim_time.h"

namespace strato::vsim {

/// Priority queue of timed callbacks with stable FIFO tie-breaking.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` at absolute time `at` (>= now()). A past-time `at` is
  /// clamped to now(): accepting it verbatim would make now_ jump
  /// backward in step(), and every lazily-advancing process keyed on
  /// non-decreasing time (FluctuationProcess, BgTrafficProcess) would
  /// silently misbehave.
  void schedule(common::SimTime at, Callback fn) {
    if (at < now_) at = now_;
    events_.push(Event{at, seq_++, std::move(fn)});
  }

  /// Schedule `fn` after a delay relative to now().
  void schedule_in(common::SimTime delay, Callback fn) {
    schedule(now_ + delay, std::move(fn));
  }

  /// Pop and run the earliest event; returns false when empty.
  bool step() {
    if (events_.empty()) return false;
    // Moving the callback out requires a const_cast because
    // priority_queue::top() is const; the element is popped immediately.
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = ev.at;
    ev.fn();
    return true;
  }

  /// Run until the queue drains or `max_events` have fired.
  /// @returns number of events processed.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX) {
    std::uint64_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
  }

  /// Run every event with `at <= horizon`, leaving later events queued
  /// and now() unchanged past the last fired event — advance the
  /// calendar in bounded virtual-time slices without draining it.
  /// @returns number of events processed.
  std::uint64_t run_until(common::SimTime horizon) {
    std::uint64_t n = 0;
    while (!events_.empty() && events_.top().at <= horizon && step()) ++n;
    return n;
  }

  [[nodiscard]] common::SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t pending() const { return events_.size(); }

 private:
  struct Event {
    common::SimTime at;
    std::uint64_t seq;
    Callback fn;
    bool operator>(const Event& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  std::uint64_t seq_ = 0;
  common::SimTime now_;
};

}  // namespace strato::vsim
