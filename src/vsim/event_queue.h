// Discrete-event simulation kernel.
//
// A minimal calendar: schedule callbacks at virtual times, pop them in
// (time, insertion) order. Used by the packet-level network simulation
// that cross-validates the fluid transfer pipeline (packet_sim.h).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <vector>

#include "common/sim_time.h"

namespace strato::vsim {

/// Priority queue of timed callbacks with stable FIFO tie-breaking.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Handle to a callback registered once via add_recurring().
  using RecurringId = std::uint32_t;
  static constexpr RecurringId kNoRecurring = UINT32_MAX;

  /// Schedule `fn` at absolute time `at` (>= now()). A past-time `at` is
  /// clamped to now(): accepting it verbatim would make now_ jump
  /// backward in step(), and every lazily-advancing process keyed on
  /// non-decreasing time (FluctuationProcess, BgTrafficProcess) would
  /// silently misbehave.
  void schedule(common::SimTime at, Callback fn) {
    if (at < now_) at = now_;
    events_.push(Event{at, seq_++, std::move(fn)});
  }

  /// Schedule `fn` after a delay relative to now().
  void schedule_in(common::SimTime delay, Callback fn) {
    schedule(now_ + delay, std::move(fn));
  }

  /// Register a callback once; re-arm it any number of times with
  /// schedule_recurring(). Each firing enqueues only a POD Event — no
  /// std::function construction per occurrence, which matters for the
  /// fleet engine's 50 ms epoch tick (~100k+ reschedules per run).
  /// Registrations live for the queue's lifetime (deque: stable slots,
  /// so re-arming from inside the callback itself is safe).
  RecurringId add_recurring(Callback fn) {
    recurring_.push_back(std::move(fn));
    return static_cast<RecurringId>(recurring_.size() - 1);
  }

  /// Arm a registered recurring callback at absolute time `at` (clamped
  /// to now(), same rule as schedule()). One registration may be armed
  /// multiple times concurrently; each arming fires once.
  void schedule_recurring(RecurringId id, common::SimTime at) {
    if (at < now_) at = now_;
    events_.push(Event{at, seq_++, Callback{}, id});
  }

  /// Arm a registered recurring callback after a delay relative to now().
  void schedule_recurring_in(RecurringId id, common::SimTime delay) {
    schedule_recurring(id, now_ + delay);
  }

  /// Pop and run the earliest event; returns false when empty.
  bool step() {
    if (events_.empty()) return false;
    // Moving the callback out requires a const_cast because
    // priority_queue::top() is const; the element is popped immediately.
    Event ev = std::move(const_cast<Event&>(events_.top()));
    events_.pop();
    now_ = ev.at;
    if (ev.recurring != kNoRecurring) {
      recurring_[ev.recurring]();
    } else {
      ev.fn();
    }
    return true;
  }

  /// Run until the queue drains or `max_events` have fired.
  /// @returns number of events processed.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX) {
    std::uint64_t n = 0;
    while (n < max_events && step()) ++n;
    return n;
  }

  /// Run every event with `at <= horizon`, leaving later events queued
  /// and now() unchanged past the last fired event — advance the
  /// calendar in bounded virtual-time slices without draining it.
  /// @returns number of events processed.
  std::uint64_t run_until(common::SimTime horizon) {
    std::uint64_t n = 0;
    while (!events_.empty() && events_.top().at <= horizon && step()) ++n;
    return n;
  }

  [[nodiscard]] common::SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t pending() const { return events_.size(); }

 private:
  struct Event {
    common::SimTime at;
    std::uint64_t seq;
    Callback fn;  // empty for recurring events
    RecurringId recurring = kNoRecurring;
    bool operator>(const Event& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  // deque, not vector: push_back during dispatch (a callback registering
  // another recurring event) must not invalidate the callback being run.
  std::deque<Callback> recurring_;
  std::uint64_t seq_ = 0;
  common::SimTime now_;
};

}  // namespace strato::vsim
