// Virtual disk model with an optional host write-back cache.
//
// Reproduces the paper's Fig. 3 finding: on the XEN setup, guest file
// writes land in the host's page cache at memory-like speed; periodically
// the host flushes, during which the rate displayed inside the VM drops
// to a few MB/s. The long-run mean *displayed* throughput is consequently
// spuriously higher than the physical disk can sustain — "after having
// written the 50 GB ... large portions of the data had not actually been
// written to the physical hard drive".
#pragma once

#include "common/rng.h"
#include "common/sim_time.h"
#include "vsim/link.h"
#include "vsim/profile.h"

namespace strato::vsim {

/// Sequential-writer disk model. A single simulated thread issues writes;
/// write() returns how long each one takes, advancing internal state.
class Disk {
 public:
  Disk(const VirtProfile& profile, std::uint64_t seed);

  /// Duration of a `bytes`-sized write starting at `now` (guest view).
  common::SimTime write(std::uint64_t bytes, common::SimTime now);

  /// Duration of a `bytes`-sized (raw, uncached) read starting at `now`.
  common::SimTime read(std::uint64_t bytes, common::SimTime now);

  /// Bytes still sitting in the host cache (not on the physical platter).
  [[nodiscard]] double dirty_bytes() const { return dirty_; }

 private:
  const VirtProfile& profile_;
  FluctuationProcess fluct_;
  double dirty_ = 0.0;
  common::SimTime flush_until_;
};

}  // namespace strato::vsim
