// Fleet-scale multi-tenant transfer service in virtual time.
//
// The paper's experiment is one foreground job against a handful of
// background flows on one NIC. This engine runs thousands-to-millions of
// concurrent adaptive-compression flows: many tenants share a
// rack -> spine -> WAN Topology, every flow carries its own Algorithm 1
// controller (embedded POD in the FlowTable), link shares are weighted
// max-min across tenants, and admission control bounds each tenant's
// in-flight flow count.
//
// Advancement is *batched*: instead of one event-queue closure per flow
// step, the engine schedules one epoch event (default 50 ms of virtual
// time). Each epoch it
//
//   1. materializes newly arrived flows (per-tenant Poisson processes,
//      drawn lazily — no per-arrival events),
//   2. admits pending flows FIFO up to each tenant's in-flight cap
//      (rejecting beyond the queue bound),
//   3. recomputes every link's fluctuating capacity and all flow rates in
//      one weighted max-min pass (MaxMinAllocator), clamps each flow by
//      its sender-CPU compression-throughput bound,
//   4. drains bytes, charges CPU, closes controller decision windows
//      (application-data-rate only, exactly the paper's signal), and
//   5. retires finished flows into FleetMetrics.
//
// Determinism: everything derives from FleetConfig::seed; two runs emit
// byte-identical FleetMetrics JSON. A 100k-flow day takes seconds of
// wall clock (see bench_fleet_scale).
//
// The degenerate case — one transfer on a single-link topology — does
// not go through the fluid epochs at all: run_degenerate() executes the
// identical per-block recurrence as TransferExperiment (shared
// run_transfer_blocks), so the Table II calibration is untouched.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/stats.h"
#include "common/thread_pool.h"
#include "core/controller.h"
#include "vsim/bgtraffic.h"
#include "vsim/codec_model.h"
#include "vsim/event_queue.h"
#include "vsim/flow_table.h"
#include "vsim/topology.h"
#include "vsim/transfer.h"

namespace strato::vsim {

/// Per-tenant compression policy. Static levels model tenants that
/// pinned a level; adaptive runs the paper's Algorithm 1 per flow.
struct TenantPolicy {
  enum class Kind { kStatic, kAdaptive };
  Kind kind = Kind::kAdaptive;
  int static_level = 0;
  core::AdaptiveConfig adaptive;
  common::SimTime window = common::SimTime::seconds(2);  ///< paper's t

  static TenantPolicy fixed(int level) {
    TenantPolicy p;
    p.kind = Kind::kStatic;
    p.static_level = level;
    return p;
  }
  static TenantPolicy dynamic() { return TenantPolicy{}; }
};

/// How a tenant's share weight spreads over its flows.
enum class ShareMode {
  /// Every flow carries `weight` individually — a tenant's aggregate
  /// share grows with its flow count. Background traffic uses this with
  /// weight = kBackgroundFlowWeight, reproducing SharedLink's
  /// capacity / (1 + w_bg * k) on the degenerate topology.
  kPerFlow,
  /// `weight` is the tenant's total: each active flow gets weight /
  /// active_count, so tenants split links by their weights regardless of
  /// how many flows they run — per-tenant weighted fairness.
  kPerTenant,
};

/// One tenant class of the fleet.
struct TenantSpec {
  std::string name = "tenant";
  double weight = 1.0;
  ShareMode share = ShareMode::kPerTenant;
  TenantPolicy policy;
  FlowKind kind = FlowKind::kTransfer;

  // --- arrivals ---------------------------------------------------------
  double arrival_per_s = 1.0;    ///< Poisson flow-arrival rate
  int initial_flows = 0;         ///< spawned at t = 0
  /// Stop generating after this many flows (0 = bounded by the horizon).
  std::uint64_t flow_limit = 0;

  // --- admission control ------------------------------------------------
  int max_in_flight = 0;   ///< concurrent active flows (0 = unlimited)
  std::size_t max_queue = 0;  ///< pending bound; beyond it: rejected (0 = unbounded)

  // --- flow bodies ------------------------------------------------------
  /// Transfer sizes: exponential with this mean, floored at min_flow_bytes
  /// (Gridiron-style heavy-tailed per-workload requirements).
  std::uint64_t mean_flow_bytes = 256ull << 20;
  std::uint64_t min_flow_bytes = 1ull << 20;
  double mean_dwell_s = 60.0;  ///< kDwell holding time (exponential)
  /// Corpus-class mix (HIGH, MODERATE, LOW fractions; normalized).
  std::array<double, 3> class_mix = {1.0, 0.0, 0.0};
  /// Fraction of flows leaving through the WAN egress path.
  double wan_fraction = 0.5;
};

/// The bgtraffic birth-death process as a tenant class: Poisson arrivals,
/// exponential holding, per-flow background weight, capped in-flight
/// count — background contention is no longer a special case.
TenantSpec background_tenant(const BgTrafficConfig& bg,
                             double weight = kBackgroundFlowWeight);

/// Fleet experiment parameters.
struct FleetConfig {
  Topology topology;
  std::vector<TenantSpec> tenants;
  VirtTech tech = VirtTech::kKvmPara;  ///< CPU cost model (profile())
  CodecModel model = CodecModel::defaults();
  double codec_speed_factor = 1.0;
  common::SimTime epoch = common::SimTime::ms(50);
  /// Arrivals stop at the horizon; the run then drains in-flight flows.
  common::SimTime horizon = common::SimTime::seconds(600);
  /// Safety stop: no epoch is scheduled past horizon * drain_factor.
  double drain_factor = 20.0;
  std::uint64_t seed = 1;
  std::size_t block_size = 128 * 1024;  ///< framing-overhead granularity
  double ratio_jitter = 0.01;   ///< per-flow multiplicative spread
  double speed_jitter = 0.04;
  /// Goodput histogram layout, shared by all tenants (mergeable).
  double goodput_hist_max_mbit_s = 1000.0;
  std::size_t goodput_hist_buckets = 50;
  std::size_t expected_flows = 0;  ///< FlowTable reserve hint
  /// Drain worker threads (1 = serial). Any count produces byte-identical
  /// FleetMetrics: the parallel phase writes only per-flow columns, and
  /// all cross-flow accumulation stays serial in admission order.
  int drain_workers = 1;
  /// Force the full-rebuild MaxMinAllocator path every epoch (reference
  /// behaviour; also enabled by STRATO_FLEET_FULL_ALLOC=1 in env).
  bool full_alloc = false;
};

/// Aggregates for one tenant.
struct TenantMetrics {
  std::string name;
  std::uint64_t spawned = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;   ///< admission-queue overflow
  std::uint64_t completed = 0;
  double queue_wait_s_total = 0.0;  ///< arrival -> admission
  double raw_bytes = 0.0;
  double wire_bytes = 0.0;
  double cpu_s = 0.0;
  /// Raw bytes sent at each compression level (per-policy totals).
  std::array<double, CodecModel::kNumLevels> raw_bytes_per_level{};
  /// Flow completion times, arrival -> finish (seconds).
  common::Sample completion_s;
  /// Per-flow goodput raw_bytes / service time, Mbit/s.
  common::Histogram goodput_mbit_s{0.0, 1000.0, 50};
};

/// Fleet-wide result surface.
struct FleetMetrics {
  std::vector<TenantMetrics> tenants;
  common::Sample completion_all_s;       ///< all transfer tenants pooled
  common::Histogram goodput_all_mbit_s{0.0, 1000.0, 50};
  std::uint64_t flows_total = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t epochs = 0;
  double sim_completed_s = 0.0;  ///< virtual time at which the fleet drained

  /// Deterministic JSON rendering — byte-identical for identical runs;
  /// the fleet-replay test and BENCH_fleet.json build on this.
  [[nodiscard]] std::string to_json() const;
};

/// Runs fleet experiments.
class FleetEngine {
 public:
  explicit FleetEngine(FleetConfig config);

  /// Run the fleet to completion (or the drain-factor safety stop).
  FleetMetrics run();

  /// The degenerate single-link configuration: executes the identical
  /// per-block recurrence as TransferExperiment::run (shared
  /// run_transfer_blocks), bypassing the fluid epochs entirely — the
  /// Table II calibration scenarios reproduce exactly.
  static TransferResult run_degenerate(const TransferConfig& config,
                                       core::CompressionPolicy& policy);

  [[nodiscard]] const FleetConfig& config() const { return cfg_; }

 private:
  /// Per-tenant mutable run state (RNG, arrival clock, admission queue).
  struct TenantRun {
    common::Xoshiro256 rng{0};
    common::SimTime next_arrival = common::SimTime::max();
    std::uint64_t spawned = 0;
    int in_flight = 0;
    std::deque<std::uint32_t> pending;
    bool exhausted = false;  ///< flow_limit reached or horizon passed
  };

  void spawn_flow(std::uint16_t t, common::SimTime at);
  void generate_arrivals(common::SimTime now);
  void admit(common::SimTime now);
  void recompute_rates(common::SimTime now);
  void drain(common::SimTime from, common::SimTime dt);
  /// Phase A of the drain: per-flow byte/CPU/controller math for
  /// active_transfer_[lo, hi). Writes only per-flow columns and the
  /// index-parallel d_* scratch — safe to run on concurrent shards.
  void drain_shard(std::size_t lo, std::size_t hi, common::SimTime from,
                   common::SimTime epoch_end, double dt_s);
  /// Fused serial form of phase A + phase B (bitwise-equivalent; see
  /// drain()) — the fast path when no pool is sharding the epoch.
  void drain_serial(std::size_t lo, std::size_t hi, common::SimTime from,
                    common::SimTime epoch_end, double dt_s);
  /// Re-derive the cached (wf, comp_speed, cpu_bound) triple for one
  /// flow from its current level — at spawn and on level switches only.
  void refresh_flow_kernel(std::uint32_t f);
  void finish_flow(std::uint32_t f, common::SimTime at);
  [[nodiscard]] bool work_remains() const;
  void epoch_tick();

  FleetConfig cfg_;
  FlowTable flows_;
  LinkBank bank_;
  MaxMinAllocator alloc_;
  EventQueue queue_;
  std::vector<TenantRun> runs_;
  /// Active ids partitioned by kind (each in admission order); the
  /// combined interleaved list survives only for the full-alloc path,
  /// whose weight-sum fold order follows it.
  std::vector<std::uint32_t> active_;           ///< full-alloc mode only
  std::vector<std::uint32_t> active_transfer_;
  std::vector<std::uint32_t> active_dwell_;
  std::vector<double> link_cap_;
  std::vector<double> link_cap_prev_;  ///< change detection for alloc skip
  std::vector<int> tenant_active_;     ///< persistent per-tenant active count
  std::vector<int> tenant_last_count_; ///< count at the last weight write
  std::vector<double> tenant_flow_w_;  ///< kPerTenant: weight / active count
  std::vector<std::uint8_t> tenant_per_tenant_;  ///< share == kPerTenant
  /// Flat per-(level, class) behaviour copies (CodecModel::get without
  /// the bounds-checked map walk) feeding refresh_flow_kernel.
  std::vector<LevelBehaviour> behaviour_;
  // Drain scratch, index-parallel with active_transfer_ (phase A writes,
  // phase B folds serially in admission order).
  std::vector<double> d_raw_;
  std::vector<double> d_wire_;
  std::vector<double> d_cpu_;
  std::vector<std::int8_t> d_level_;
  std::vector<common::SimTime> d_fin_;  ///< SimTime::max() = not finished
  std::optional<common::ThreadPool> pool_;
  std::vector<std::future<void>> shard_futs_;
  EventQueue::RecurringId epoch_ev_ = EventQueue::kNoRecurring;
  FleetMetrics metrics_;
  double io_cpu_s_per_byte_ = 0.0;
  common::SimTime hard_stop_;
  bool full_alloc_ = false;
};

}  // namespace strato::vsim
