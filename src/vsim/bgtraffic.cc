#include "vsim/bgtraffic.h"

#include <algorithm>
#include <cmath>

namespace strato::vsim {

using common::SimTime;

BgTrafficProcess::BgTrafficProcess(BgTrafficConfig config,
                                   std::uint64_t seed)
    : config_(std::move(config)),
      rng_(seed ^ 0xB67F1040000000AAULL),
      flows_(config_.initial_flows) {
  if (config_.steps.empty() && config_.arrival_per_s > 0.0) {
    schedule_next_arrival();
  }
}

void BgTrafficProcess::schedule_next_arrival() {
  // Kept as a division (not exponential_interval_s with mean 1/rate):
  // the two round differently in the last ulp and this process's seeded
  // sequences are pinned by determinism tests.
  const double gap =
      -std::log(std::max(1e-12, rng_.uniform())) / config_.arrival_per_s;
  next_arrival_ = now_ + SimTime::seconds(gap);
}

int BgTrafficProcess::flows_at(SimTime now) {
  now_ = std::max(now_, now);
  if (!config_.steps.empty()) {
    while (step_idx_ < config_.steps.size() &&
           SimTime::seconds(config_.steps[step_idx_].first) <= now_) {
      flows_ = config_.steps[step_idx_].second;
      ++step_idx_;
    }
    return flows_;
  }
  if (config_.arrival_per_s <= 0.0) return flows_;

  // Birth-death: process departures that happened, then arrivals.
  for (;;) {
    // Earliest pending event before `now_`.
    auto next_departure = SimTime::max();
    for (const auto d : departures_) next_departure = std::min(next_departure, d);
    const SimTime next_event = std::min(next_arrival_, next_departure);
    if (next_event > now_) break;
    if (next_event == next_arrival_) {
      if (flows_ < config_.max_flows) {
        ++flows_;
        const double hold =
            exponential_interval_s(rng_, config_.mean_holding_s);
        departures_.push_back(next_event + SimTime::seconds(hold));
      }
      const SimTime saved = now_;
      now_ = next_event;
      schedule_next_arrival();
      now_ = saved;
    } else {
      departures_.erase(
          std::find(departures_.begin(), departures_.end(), next_departure));
      flows_ = std::max(0, flows_ - 1);
    }
  }
  return flows_;
}

}  // namespace strato::vsim
