#include "vsim/topology.h"

#include <algorithm>
#include <limits>

namespace strato::vsim {

Topology::LinkId Topology::add_link(LinkSpec spec) {
  links_.push_back(std::move(spec));
  return static_cast<LinkId>(links_.size() - 1);
}

Topology::PathId Topology::add_path(std::vector<LinkId> links) {
  paths_.push_back(std::move(links));
  return static_cast<PathId>(paths_.size() - 1);
}

Topology Topology::single(const VirtProfile& prof) {
  Topology t;
  const LinkId nic = t.add_link(
      LinkSpec{"nic", prof.net_bytes_s, prof.net_fluct});
  t.add_path({nic});
  t.hosts_ = 1;
  return t;
}

Topology Topology::rack_spine_wan(const FleetShape& shape) {
  Topology t;
  const int racks = std::max(1, shape.racks);
  const int hosts = std::max(1, shape.hosts_per_rack);
  t.hosts_ = static_cast<std::size_t>(racks) * hosts;

  std::vector<LinkId> nic_ids;
  nic_ids.reserve(t.hosts_);
  std::vector<LinkId> rack_ids;
  rack_ids.reserve(static_cast<std::size_t>(racks));
  for (int r = 0; r < racks; ++r) {
    for (int h = 0; h < hosts; ++h) {
      nic_ids.push_back(t.add_link(LinkSpec{
          "host" + std::to_string(r * hosts + h) + ".nic",
          shape.host_nic_bytes_s, shape.nic_fluct}));
    }
  }
  for (int r = 0; r < racks; ++r) {
    rack_ids.push_back(t.add_link(LinkSpec{
        "rack" + std::to_string(r) + ".up", shape.rack_uplink_bytes_s,
        shape.fabric_fluct}));
  }
  const LinkId spine =
      t.add_link(LinkSpec{"spine", shape.spine_bytes_s, shape.fabric_fluct});
  const LinkId wan =
      t.add_link(LinkSpec{"wan", shape.wan_bytes_s, shape.fabric_fluct});

  // Per host: intra_path = 2h, wan_path = 2h + 1 (see header).
  for (std::size_t host = 0; host < t.hosts_; ++host) {
    const LinkId rack = rack_ids[host / static_cast<std::size_t>(hosts)];
    t.add_path({nic_ids[host], rack, spine});
    t.add_path({nic_ids[host], rack, spine, wan});
  }
  return t;
}

LinkBank::LinkBank(const Topology& topo, std::uint64_t seed) : topo_(&topo) {
  fluct_.reserve(topo.link_count());
  chaos_.resize(topo.link_count());
  for (std::size_t i = 0; i < topo.link_count(); ++i) {
    // Link 0 keeps the caller's seed verbatim (degenerate == SharedLink);
    // later links decorrelate with an odd multiplier stream.
    fluct_.emplace_back(topo.link(static_cast<Topology::LinkId>(i)).fluct,
                        seed ^ (0x9E3779B97F4A7C15ULL * i));
  }
}

double LinkBank::capacity(Topology::LinkId id, common::SimTime now) {
  double cap = topo_->link(id).capacity_bytes_s * fluct_[id].factor(now);
  if (!chaos_[id].empty()) {
    cap *= chaos_[id].capacity_factor(static_cast<std::uint64_t>(
        std::max<std::int64_t>(0, now.nanos())));
  }
  return cap;
}

void LinkBank::capacities(common::SimTime now, std::vector<double>& out) {
  out.resize(topo_->link_count());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = capacity(static_cast<Topology::LinkId>(i), now);
  }
}

void LinkBank::set_chaos(Topology::LinkId id,
                         common::ChaosSchedule schedule) {
  chaos_[id] = std::move(schedule);
}

MaxMinAllocator::MaxMinAllocator(const Topology& topo) : topo_(&topo) {
  cap_rem_.resize(topo.link_count());
  wsum_.resize(topo.link_count());
  link_flows_.resize(topo.link_count());
  member_.resize(topo.link_count());
  wsum_base_.assign(topo.link_count(), 0.0);
  dirty_.assign(topo.link_count(), 0);
  dead_.assign(topo.link_count(), 0);
  touched_stamp_.assign(topo.link_count(), 0);
  // Flatten the path table: one offset-indexed array instead of a heap
  // vector per path, so the per-flow inner loops walk contiguous memory.
  path_off_.reserve(topo.path_count() + 1);
  path_off_.push_back(0);
  for (std::size_t p = 0; p < topo.path_count(); ++p) {
    const auto& links = topo.path(static_cast<Topology::PathId>(p));
    path_flat_.insert(path_flat_.end(), links.begin(), links.end());
    path_off_.push_back(static_cast<std::uint32_t>(path_flat_.size()));
  }
}

void MaxMinAllocator::allocate(const std::vector<double>& link_capacity,
                               const std::vector<std::uint32_t>& flow_path,
                               const std::vector<double>& flow_weight,
                               const std::vector<std::uint32_t>& active,
                               std::vector<double>& rate_out) {
  const std::size_t links = topo_->link_count();
  cap_rem_.assign(link_capacity.begin(), link_capacity.end());
  wsum_.assign(links, 0.0);
  for (auto& lf : link_flows_) lf.clear();
  if (frozen_.size() < flow_path.size()) frozen_.resize(flow_path.size());

  for (const std::uint32_t f : active) {
    frozen_[f] = 0;
    const double w = flow_weight[f];
    const std::uint32_t p = flow_path[f];
    for (std::uint32_t pi = path_off_[p]; pi < path_off_[p + 1]; ++pi) {
      const std::uint32_t l = path_flat_[pi];
      wsum_[l] += w;
      link_flows_[l].push_back(f);
    }
  }

  // Progressive filling: repeatedly saturate the most-constrained link
  // (smallest capacity per unit weight), freeze its flows at their share,
  // release their weight everywhere else. Each flow freezes exactly once,
  // so the whole allocation is O(sum of path lengths + links^2).
  std::size_t remaining = active.size();
  while (remaining > 0) {
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t best = links;
    for (std::size_t l = 0; l < links; ++l) {
      if (wsum_[l] <= 1e-12) continue;
      const double share = std::max(0.0, cap_rem_[l]) / wsum_[l];
      if (share < best_share) {
        best_share = share;
        best = l;
      }
    }
    if (best == links) break;  // defensive: every flow crosses >= 1 link
    for (const std::uint32_t f : link_flows_[best]) {
      if (frozen_[f]) continue;
      const double r = flow_weight[f] * best_share;
      rate_out[f] = r;
      frozen_[f] = 1;
      --remaining;
      const std::uint32_t p = flow_path[f];
      for (std::uint32_t pi = path_off_[p]; pi < path_off_[p + 1]; ++pi) {
        const std::uint32_t l = path_flat_[pi];
        cap_rem_[l] -= r;
        wsum_[l] -= flow_weight[f];
      }
    }
    wsum_[best] = 0.0;  // clear numeric residue
  }
  if (remaining > 0) {
    // The defensive break fired: some flows never froze (possible only
    // when their weights are ~0, so no link registers a positive weight
    // sum). Without this pass they would keep whatever rate_out held
    // from the previous epoch — zero them explicitly.
    for (const std::uint32_t f : active) {
      if (!frozen_[f]) rate_out[f] = 0.0;
    }
  }
}

void MaxMinAllocator::add_flow(std::uint32_t f, Topology::PathId path) {
  if (alive_.size() <= f) {
    // Amortized growth; steady state performs no allocation.
    const std::size_t n = std::max<std::size_t>(f + 1, alive_.size() * 2);
    alive_.resize(n, 0);
    frozen_epoch_.resize(n, 0);
  }
  alive_[f] = 1;
  ++live_;
  for (std::uint32_t pi = path_off_[path]; pi < path_off_[path + 1]; ++pi) {
    member_[path_flat_[pi]].push_back(f);
    dirty_[path_flat_[pi]] = 1;
  }
}

void MaxMinAllocator::remove_flow(std::uint32_t f, Topology::PathId path) {
  if (f >= alive_.size() || !alive_[f]) return;
  alive_[f] = 0;
  --live_;
  for (std::uint32_t pi = path_off_[path]; pi < path_off_[path + 1]; ++pi) {
    ++dead_[path_flat_[pi]];
    dirty_[path_flat_[pi]] = 1;
  }
}

void MaxMinAllocator::invalidate_weights() { weights_dirty_ = true; }

void MaxMinAllocator::refold_dirty(
    const std::vector<std::uint32_t>& flow_path,
    const std::vector<double>& flow_weight, bool fold_all) {
  // Recompute cached per-link weight sums as a left fold over live
  // members in admission order — the exact association the full rebuild
  // uses — compacting tombstones in place as we go.
  const std::size_t links = topo_->link_count();
  for (std::size_t l = 0; l < links; ++l) {
    if (!fold_all && !dirty_[l]) continue;
    std::vector<std::uint32_t>& mem = member_[l];
    double sum = 0.0;
    if (dead_[l] > 0) {
      std::size_t out = 0;
      for (const std::uint32_t f : mem) {
        if (!alive_[f]) continue;
        mem[out++] = f;
        sum += flow_weight[f];
      }
      mem.resize(out);
    } else {
      for (const std::uint32_t f : mem) sum += flow_weight[f];
    }
    wsum_base_[l] = sum;
    dirty_[l] = 0;
    dead_[l] = 0;
  }
}

void MaxMinAllocator::heap_push(double share, std::uint32_t link) {
  heap_.push_back(HeapEntry{share, link});
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t p = (i - 1) / 2;
    const bool less = heap_[i].share != heap_[p].share
                          ? heap_[i].share < heap_[p].share
                          : heap_[i].link < heap_[p].link;
    if (!less) break;
    std::swap(heap_[i], heap_[p]);
    i = p;
  }
}

bool MaxMinAllocator::heap_pop(double& share, std::uint32_t& link) {
  if (heap_.empty()) return false;
  share = heap_[0].share;
  link = heap_[0].link;
  heap_[0] = heap_.back();
  heap_.pop_back();
  std::size_t i = 0;
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = i;
    for (std::size_t c = 2 * i + 1; c <= 2 * i + 2 && c < n; ++c) {
      const bool less = heap_[c].share != heap_[best].share
                            ? heap_[c].share < heap_[best].share
                            : heap_[c].link < heap_[best].link;
      if (less) best = c;
    }
    if (best == i) break;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
  return true;
}

bool MaxMinAllocator::allocate_incremental(
    const std::vector<double>& link_capacity, bool capacity_changed,
    const std::vector<std::uint32_t>& flow_path,
    const std::vector<double>& flow_weight, std::vector<double>& rate_out) {
  const std::size_t links = topo_->link_count();
  bool any_dirty = false;
  for (std::size_t l = 0; l < links; ++l) {
    if (dirty_[l]) {
      any_dirty = true;
      break;
    }
  }
  if (weights_dirty_ || any_dirty) {
    // A weight invalidation refolds every link (any member's weight may
    // have changed); membership churn refolds only the dirty ones.
    refold_dirty(flow_path, flow_weight, weights_dirty_);
  }
  const bool must_fill =
      weights_dirty_ || any_dirty || capacity_changed || !rates_valid_;
  weights_dirty_ = false;
  if (!must_fill) return false;
  fill_incremental(link_capacity, flow_path, flow_weight, rate_out);
  rates_valid_ = true;
  return true;
}

void MaxMinAllocator::fill_incremental(
    const std::vector<double>& link_capacity,
    const std::vector<std::uint32_t>& flow_path,
    const std::vector<double>& flow_weight, std::vector<double>& rate_out) {
  const std::size_t links = topo_->link_count();
  cap_rem_.assign(link_capacity.begin(), link_capacity.end());
  wsum_ = wsum_base_;
  heap_.clear();
  for (std::size_t l = 0; l < links; ++l) {
    if (wsum_[l] > 1e-12) {
      heap_push(std::max(0.0, cap_rem_[l]) / wsum_[l],
                static_cast<std::uint32_t>(l));
    }
  }

  // Progressive filling driven by a lazy heap: every time a link's
  // (cap_rem, wsum) changes we push its fresh share; stale entries are
  // recognized at pop time because their recorded share no longer equals
  // the recomputed current share. The (share, link-id) ascending order
  // reproduces the linear scan's strict-< tie-break (lowest id wins).
  ++epoch_;
  std::size_t remaining = live_;
  double share_hint;
  std::uint32_t best;
  while (remaining > 0 && heap_pop(share_hint, best)) {
    if (wsum_[best] <= 1e-12) continue;  // saturated or weightless now
    const double share = std::max(0.0, cap_rem_[best]) / wsum_[best];
    if (share != share_hint) continue;  // stale: a fresher entry is queued
    ++round_;
    touched_.clear();
    // Every member is alive here: a removal dirties its links, and dirty
    // links always refold (compacting tombstones) before the fill.
    for (const std::uint32_t f : member_[best]) {
      if (frozen_epoch_[f] == epoch_) continue;
      const double w = flow_weight[f];
      const double r = w * share;
      rate_out[f] = r;
      frozen_epoch_[f] = epoch_;
      --remaining;
      const std::uint32_t p = flow_path[f];
      for (std::uint32_t pi = path_off_[p]; pi < path_off_[p + 1]; ++pi) {
        const std::uint32_t l = path_flat_[pi];
        cap_rem_[l] -= r;
        wsum_[l] -= w;
        if (l != best && touched_stamp_[l] != round_) {
          touched_stamp_[l] = round_;
          touched_.push_back(l);
        }
      }
    }
    wsum_[best] = 0.0;  // clear numeric residue
    for (const std::uint32_t l : touched_) {
      if (wsum_[l] > 1e-12) {
        heap_push(std::max(0.0, cap_rem_[l]) / wsum_[l], l);
      }
    }
  }
  if (remaining > 0) {
    // Mirror of the full path's defensive zeroing: live flows that never
    // froze (weight ~0 on every link) must not keep stale rates.
    for (std::size_t l = 0; l < links; ++l) {
      for (const std::uint32_t f : member_[l]) {
        if (frozen_epoch_[f] != epoch_) {
          rate_out[f] = 0.0;
          frozen_epoch_[f] = epoch_;
        }
      }
    }
  }
}

}  // namespace strato::vsim
