#include "vsim/topology.h"

#include <algorithm>
#include <limits>

namespace strato::vsim {

Topology::LinkId Topology::add_link(LinkSpec spec) {
  links_.push_back(std::move(spec));
  return static_cast<LinkId>(links_.size() - 1);
}

Topology::PathId Topology::add_path(std::vector<LinkId> links) {
  paths_.push_back(std::move(links));
  return static_cast<PathId>(paths_.size() - 1);
}

Topology Topology::single(const VirtProfile& prof) {
  Topology t;
  const LinkId nic = t.add_link(
      LinkSpec{"nic", prof.net_bytes_s, prof.net_fluct});
  t.add_path({nic});
  t.hosts_ = 1;
  return t;
}

Topology Topology::rack_spine_wan(const FleetShape& shape) {
  Topology t;
  const int racks = std::max(1, shape.racks);
  const int hosts = std::max(1, shape.hosts_per_rack);
  t.hosts_ = static_cast<std::size_t>(racks) * hosts;

  std::vector<LinkId> nic_ids;
  nic_ids.reserve(t.hosts_);
  std::vector<LinkId> rack_ids;
  rack_ids.reserve(static_cast<std::size_t>(racks));
  for (int r = 0; r < racks; ++r) {
    for (int h = 0; h < hosts; ++h) {
      nic_ids.push_back(t.add_link(LinkSpec{
          "host" + std::to_string(r * hosts + h) + ".nic",
          shape.host_nic_bytes_s, shape.nic_fluct}));
    }
  }
  for (int r = 0; r < racks; ++r) {
    rack_ids.push_back(t.add_link(LinkSpec{
        "rack" + std::to_string(r) + ".up", shape.rack_uplink_bytes_s,
        shape.fabric_fluct}));
  }
  const LinkId spine =
      t.add_link(LinkSpec{"spine", shape.spine_bytes_s, shape.fabric_fluct});
  const LinkId wan =
      t.add_link(LinkSpec{"wan", shape.wan_bytes_s, shape.fabric_fluct});

  // Per host: intra_path = 2h, wan_path = 2h + 1 (see header).
  for (std::size_t host = 0; host < t.hosts_; ++host) {
    const LinkId rack = rack_ids[host / static_cast<std::size_t>(hosts)];
    t.add_path({nic_ids[host], rack, spine});
    t.add_path({nic_ids[host], rack, spine, wan});
  }
  return t;
}

LinkBank::LinkBank(const Topology& topo, std::uint64_t seed) : topo_(&topo) {
  fluct_.reserve(topo.link_count());
  chaos_.resize(topo.link_count());
  for (std::size_t i = 0; i < topo.link_count(); ++i) {
    // Link 0 keeps the caller's seed verbatim (degenerate == SharedLink);
    // later links decorrelate with an odd multiplier stream.
    fluct_.emplace_back(topo.link(static_cast<Topology::LinkId>(i)).fluct,
                        seed ^ (0x9E3779B97F4A7C15ULL * i));
  }
}

double LinkBank::capacity(Topology::LinkId id, common::SimTime now) {
  double cap = topo_->link(id).capacity_bytes_s * fluct_[id].factor(now);
  if (!chaos_[id].empty()) {
    cap *= chaos_[id].capacity_factor(static_cast<std::uint64_t>(
        std::max<std::int64_t>(0, now.nanos())));
  }
  return cap;
}

void LinkBank::capacities(common::SimTime now, std::vector<double>& out) {
  out.resize(topo_->link_count());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = capacity(static_cast<Topology::LinkId>(i), now);
  }
}

void LinkBank::set_chaos(Topology::LinkId id,
                         common::ChaosSchedule schedule) {
  chaos_[id] = std::move(schedule);
}

MaxMinAllocator::MaxMinAllocator(const Topology& topo) : topo_(&topo) {
  cap_rem_.resize(topo.link_count());
  wsum_.resize(topo.link_count());
  link_flows_.resize(topo.link_count());
}

void MaxMinAllocator::allocate(const std::vector<double>& link_capacity,
                               const std::vector<std::uint32_t>& flow_path,
                               const std::vector<double>& flow_weight,
                               const std::vector<std::uint32_t>& active,
                               std::vector<double>& rate_out) {
  const std::size_t links = topo_->link_count();
  cap_rem_.assign(link_capacity.begin(), link_capacity.end());
  wsum_.assign(links, 0.0);
  for (auto& lf : link_flows_) lf.clear();
  if (frozen_.size() < flow_path.size()) frozen_.resize(flow_path.size());

  for (const std::uint32_t f : active) {
    frozen_[f] = 0;
    const double w = flow_weight[f];
    for (const auto l : topo_->path(flow_path[f])) {
      wsum_[l] += w;
      link_flows_[l].push_back(f);
    }
  }

  // Progressive filling: repeatedly saturate the most-constrained link
  // (smallest capacity per unit weight), freeze its flows at their share,
  // release their weight everywhere else. Each flow freezes exactly once,
  // so the whole allocation is O(sum of path lengths + links^2).
  std::size_t remaining = active.size();
  while (remaining > 0) {
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t best = links;
    for (std::size_t l = 0; l < links; ++l) {
      if (wsum_[l] <= 1e-12) continue;
      const double share = std::max(0.0, cap_rem_[l]) / wsum_[l];
      if (share < best_share) {
        best_share = share;
        best = l;
      }
    }
    if (best == links) break;  // defensive: every flow crosses >= 1 link
    for (const std::uint32_t f : link_flows_[best]) {
      if (frozen_[f]) continue;
      const double r = flow_weight[f] * best_share;
      rate_out[f] = r;
      frozen_[f] = 1;
      --remaining;
      for (const auto l : topo_->path(flow_path[f])) {
        cap_rem_[l] -= r;
        wsum_[l] -= flow_weight[f];
      }
    }
    wsum_[best] = 0.0;  // clear numeric residue
  }
}

}  // namespace strato::vsim
