#include "vsim/codec_model.h"

#include <stdexcept>

#include "compress/profiler.h"

namespace strato::vsim {

namespace {
int class_index(corpus::Compressibility c) {
  switch (c) {
    case corpus::Compressibility::kHigh:
      return 0;
    case corpus::Compressibility::kModerate:
      return 1;
    case corpus::Compressibility::kLow:
      return 2;
  }
  throw std::logic_error("bad compressibility");
}
}  // namespace

const LevelBehaviour& CodecModel::get(int level,
                                      corpus::Compressibility c) const {
  return table_.at(static_cast<std::size_t>(level))
      .at(static_cast<std::size_t>(class_index(c)));
}

void CodecModel::set(int level, corpus::Compressibility c,
                     LevelBehaviour b) {
  table_.at(static_cast<std::size_t>(level))
      .at(static_cast<std::size_t>(class_index(c))) = b;
}

CodecModel CodecModel::defaults() {
  // Measured with the repository's codecs (RelWithDebInfo, one core) over
  // 8 MB of each synthetic corpus; see compress/profiler.h. MB/s below.
  constexpr double MB = 1e6;
  CodecModel m;
  const auto fill = [&](int level, double hi_c, double hi_d, double hi_r,
                        double mo_c, double mo_d, double mo_r, double lo_c,
                        double lo_d, double lo_r) {
    m.table_[static_cast<std::size_t>(level)] = {
        LevelBehaviour{hi_c * MB, hi_d * MB, hi_r},
        LevelBehaviour{mo_c * MB, mo_d * MB, mo_r},
        LevelBehaviour{lo_c * MB, lo_d * MB, lo_r}};
  };
  //          ------ HIGH ------   ---- MODERATE ----   ------ LOW -------
  fill(0, 12000, 12000, 1.000, 12000, 12000, 1.000, 12000, 12000, 1.000);
  fill(1,   700,   750, 0.163,   230,   350, 0.438,   280, 20000, 0.937);
  fill(2,   185,  1050, 0.100,    76,   400, 0.384,    65, 18000, 0.936);
  fill(3,    32,   245, 0.047,    14,    43, 0.283,    11,    13, 0.943);
  return m;
}

CodecModel CodecModel::calibrate(const compress::CodecRegistry& registry,
                                 std::size_t bytes_per_cell) {
  CodecModel m = defaults();
  const corpus::Compressibility classes[] = {
      corpus::Compressibility::kHigh, corpus::Compressibility::kModerate,
      corpus::Compressibility::kLow};
  for (std::size_t l = 0; l < registry.level_count() &&
                          l < static_cast<std::size_t>(kNumLevels);
       ++l) {
    for (const auto c : classes) {
      auto gen = corpus::make_generator(c, /*seed=*/17);
      const auto p = compress::profile_codec(*registry.level(l).codec, *gen,
                                             bytes_per_cell);
      m.set(static_cast<int>(l), c,
            LevelBehaviour{p.compress_mb_s * 1e6, p.decompress_mb_s * 1e6,
                           p.ratio});
    }
  }
  return m;
}

}  // namespace strato::vsim
