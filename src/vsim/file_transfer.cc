#include "vsim/file_transfer.h"

#include <algorithm>

#include "common/rng.h"
#include "compress/framing.h"

namespace strato::vsim {

using common::SimTime;

FileTransferResult run_file_transfer(const FileTransferConfig& config,
                                     core::CompressionPolicy& policy) {
  const VirtProfile& prof = profile(config.tech);
  Disk disk(prof, config.seed);
  common::Xoshiro256 rng(config.seed ^ 0xF17E000000000C0DULL);

  FileTransferResult res;
  res.blocks_per_level.assign(CodecModel::kNumLevels, 0);

  // The writer is synchronous: compress a block, hand it to the disk,
  // wait for the (possibly cache-absorbed) write to be accepted. That is
  // the raw-I/O-API behaviour the paper's auxiliary programs used.
  SimTime now;
  std::vector<double> app_bytes_per_s;
  std::uint64_t raw_offset = 0;
  while (raw_offset < config.total_bytes) {
    const std::uint64_t raw = std::min<std::uint64_t>(
        config.block_size, config.total_bytes - raw_offset);
    const int level =
        std::clamp(policy.level(), 0, CodecModel::kNumLevels - 1);
    const LevelBehaviour& beh = config.model.get(level, config.data);

    const double jr =
        std::clamp(rng.gaussian(1.0, config.ratio_jitter), 0.8, 1.2);
    const double js =
        std::clamp(rng.gaussian(1.0, config.speed_jitter), 0.7, 1.3);
    const double ratio = std::min(1.0, beh.ratio * jr);
    const double disk_bytes =
        static_cast<double>(raw) * ratio + compress::kFrameHeaderSize;

    // Compress on the vCPU, charge disk I/O handling cost, then the
    // actual (cache-aware) disk write.
    const double cpu_s =
        static_cast<double>(raw) / (beh.compress_bytes_s * js) +
        disk_bytes * prof.disk_cpu_s_per_byte;
    now += SimTime::seconds(cpu_s);
    now += disk.write(static_cast<std::uint64_t>(disk_bytes), now);

    res.raw_bytes += raw;
    res.disk_bytes += static_cast<std::uint64_t>(disk_bytes);
    ++res.blocks_per_level[static_cast<std::size_t>(level)];
    if (config.record_timeline) {
      res.timeline.record("level", now, level);
      const auto bucket = static_cast<std::size_t>(now.to_seconds());
      if (bucket >= app_bytes_per_s.size()) {
        app_bytes_per_s.resize(bucket + 1, 0.0);
      }
      app_bytes_per_s[bucket] += static_cast<double>(raw);
    }

    policy.on_block(raw, now);
    raw_offset += raw;
  }

  res.completion_s = now.to_seconds();
  res.final_dirty_bytes = disk.dirty_bytes();
  // Draining: the time until the host cache is truly on the platter.
  res.drained_s =
      res.completion_s +
      res.final_dirty_bytes / std::max(1.0, prof.disk_write_bytes_s);

  if (config.record_timeline) {
    for (std::size_t s = 0; s < app_bytes_per_s.size(); ++s) {
      res.timeline.record("app_mb_s",
                          SimTime::seconds(static_cast<double>(s)),
                          app_bytes_per_s[s] / 1e6);
    }
  }
  return res;
}

}  // namespace strato::vsim
