#include "vsim/link.h"

#include <algorithm>
#include <cmath>

namespace strato::vsim {

FluctuationProcess::FluctuationProcess(FluctuationParams params,
                                       std::uint64_t seed)
    : params_(params), rng_(seed ^ 0xF10C700000000001ULL) {
  if (params_.run_bias_sigma > 0.0) {
    run_bias_ = std::clamp(rng_.gaussian(1.0, params_.run_bias_sigma),
                           0.7, 1.3);
  }
  resample();
}

double FluctuationProcess::factor(common::SimTime now) {
  advance_to(now);
  return current_ * run_bias_;
}

void FluctuationProcess::advance_to(common::SimTime now) {
  while (now >= next_change_) {
    if (params_.kind == FluctuationKind::kTwoState) {
      // Markov switching: choose the next state per the long-run degraded
      // fraction, dwell ~exponential around the mean.
      degraded_ = rng_.uniform() < params_.degraded_prob;
      const double dwell_ms =
          -params_.mean_dwell_ms * std::log(std::max(1e-12, rng_.uniform()));
      next_change_ += common::SimTime::seconds(
          std::max(1.0, dwell_ms) / 1000.0);
    } else {
      next_change_ += common::SimTime::ms(100);
    }
    resample();
  }
}

void FluctuationProcess::resample() {
  if (params_.kind == FluctuationKind::kTwoState && degraded_) {
    current_ =
        rng_.uniform(params_.degraded_floor, params_.degraded_ceil);
  } else {
    current_ = std::clamp(rng_.gaussian(1.0, params_.sigma), 0.3, 1.15);
  }
}

SharedLink::SharedLink(const VirtProfile& profile, int bg_flows,
                       std::uint64_t seed, double bg_weight)
    : nominal_(profile.net_bytes_s),
      fluct_(profile.net_fluct, seed),
      bg_flows_(bg_flows < 0 ? 0 : bg_flows),
      bg_weight_(bg_weight) {}

double SharedLink::fg_rate(common::SimTime now) {
  return capacity(now) / (1.0 + bg_weight_ * bg_flows_);
}

double SharedLink::capacity(common::SimTime now) {
  double cap = nominal_ * fluct_.factor(now);
  if (!chaos_.empty()) {
    cap *= chaos_.capacity_factor(
        static_cast<std::uint64_t>(std::max<std::int64_t>(0, now.nanos())));
  }
  return cap;
}

}  // namespace strato::vsim
