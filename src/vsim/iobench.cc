#include "vsim/iobench.h"

#include <algorithm>

#include "common/rng.h"
#include "vsim/disk.h"
#include "vsim/link.h"

namespace strato::vsim {

namespace {

/// Per-sample multiplicative measurement noise around a mean breakdown.
metrics::CpuBreakdown noisy(const metrics::CpuBreakdown& mean,
                            common::Xoshiro256& rng, double sigma) {
  const auto jitter = [&](double v) {
    return v <= 0.0 ? 0.0
                    : std::max(0.0, v * rng.gaussian(1.0, sigma));
  };
  return {jitter(mean.usr), jitter(mean.sys), jitter(mean.hirq),
          jitter(mean.sirq), jitter(mean.steal)};
}

}  // namespace

CpuAccuracyResult run_cpu_accuracy(VirtTech tech, IoOp op, int num_samples,
                                   std::uint64_t seed) {
  const VirtProfile& prof = profile(tech);
  const CpuAccounting acc = prof.accounting(op);
  common::Xoshiro256 rng(seed ^ 0xC9A0000000000031ULL);

  CpuAccuracyResult res;
  res.host_observable = acc.host_observable;
  res.samples.reserve(static_cast<std::size_t>(num_samples));
  metrics::CpuBreakdown vm_sum, host_sum;
  for (int i = 0; i < num_samples; ++i) {
    CpuAccuracySample s;
    s.vm = noisy(acc.vm_view, rng, 0.08);
    s.host = acc.host_observable ? noisy(acc.host_view, rng, 0.08)
                                 : metrics::CpuBreakdown{};
    vm_sum += s.vm;
    host_sum += s.host;
    res.samples.push_back(s);
  }
  const double inv = 1.0 / std::max(1, num_samples);
  res.vm_mean = vm_sum * inv;
  res.host_mean = host_sum * inv;
  return res;
}

common::Sample run_net_throughput(VirtTech tech, std::uint64_t total_bytes,
                                  std::uint64_t chunk_bytes,
                                  std::uint64_t seed) {
  const VirtProfile& prof = profile(tech);
  SharedLink link(prof, /*bg_flows=*/0, seed);
  common::Sample sample;
  common::SimTime now;
  std::uint64_t sent = 0;
  // Move the stream in small grains so fast fluctuation (EC2's tens of
  // milliseconds) is integrated into each 20 MB chunk the way the guest's
  // timestamping would see it.
  const std::uint64_t grain = 256 * 1024;
  while (sent < total_bytes) {
    const common::SimTime chunk_start = now;
    std::uint64_t in_chunk = 0;
    while (in_chunk < chunk_bytes && sent < total_bytes) {
      const std::uint64_t n =
          std::min<std::uint64_t>(grain, chunk_bytes - in_chunk);
      const double rate = std::max(1.0, link.fg_rate(now));
      now += common::SimTime::seconds(static_cast<double>(n) / rate);
      in_chunk += n;
      sent += n;
    }
    const double secs = (now - chunk_start).to_seconds();
    if (secs > 0) {
      sample.add(static_cast<double>(in_chunk) * 8e-6 / secs);  // MBit/s
    }
  }
  return sample;
}

FileWriteResult run_file_write_throughput(VirtTech tech,
                                          std::uint64_t total_bytes,
                                          std::uint64_t chunk_bytes,
                                          std::uint64_t seed) {
  const VirtProfile& prof = profile(tech);
  Disk disk(prof, seed);
  FileWriteResult res;
  common::SimTime now;
  std::uint64_t written = 0;
  const std::uint64_t grain = 1024 * 1024;
  while (written < total_bytes) {
    const common::SimTime chunk_start = now;
    std::uint64_t in_chunk = 0;
    while (in_chunk < chunk_bytes && written < total_bytes) {
      const std::uint64_t n =
          std::min<std::uint64_t>(grain, chunk_bytes - in_chunk);
      now += disk.write(n, now);
      in_chunk += n;
      written += n;
    }
    const double secs = (now - chunk_start).to_seconds();
    if (secs > 0) {
      res.rates_mb_s.add(static_cast<double>(in_chunk) * 1e-6 / secs);
    }
  }
  res.final_dirty_bytes = disk.dirty_bytes();
  return res;
}

}  // namespace strato::vsim
