// Named counter/gauge registry for transport endpoints.
//
// Production log/page services (Socrates, Aurora) hang per-connection
// observability off exactly this shape: a process-local registry of named
// monotonic counters and last-value gauges, cheap enough to bump on every
// frame. Hot-path updates are relaxed atomics — callers resolve a metric
// once (a stable reference) and add() without any lock; the registry's
// mutex only guards name resolution and snapshots. Snapshots are
// name-sorted so two registries fed the same traffic render byte-identical
// JSON — the property the transport soak and bench gate rely on.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace strato::metrics {

/// Monotonic counter. add() is wait-free and safe from any thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written signed value (queue depths, watermarks, levels).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Process-local registry: create-on-first-use by name, stable addresses
/// for the lifetime of the registry (std::map nodes never move).
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Resolve (creating if absent) the counter named `name`. The reference
  /// stays valid for the registry's lifetime; cache it off the hot path.
  Counter& counter(std::string_view name);

  /// Resolve (creating if absent) the gauge named `name`.
  Gauge& gauge(std::string_view name);

  /// One registered metric at snapshot time.
  struct Sample {
    std::string name;
    bool is_counter = true;
    std::int64_t value = 0;
  };

  /// Name-sorted snapshot of every registered metric.
  [[nodiscard]] std::vector<Sample> snapshot() const;

  /// Deterministic JSON object: {"name":value,...} in name order.
  [[nodiscard]] std::string to_json() const;

 private:
  mutable common::Mutex mu_{"MetricRegistry::mu_"};
  std::map<std::string, Counter, std::less<>> counters_
      STRATO_GUARDED_BY(mu_);
  std::map<std::string, Gauge, std::less<>> gauges_ STRATO_GUARDED_BY(mu_);
};

}  // namespace strato::metrics
