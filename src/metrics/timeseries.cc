#include "metrics/timeseries.h"

#include <algorithm>

namespace strato::metrics {

double TimeSeries::at(common::SimTime t, double fallback) const {
  // points_ is appended in time order; binary search the last point <= t.
  const auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](common::SimTime lhs, const auto& p) { return lhs < p.first; });
  if (it == points_.begin()) return fallback;
  return std::prev(it)->second;
}

std::vector<std::string> TimelineRecorder::names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [k, v] : series_) out.push_back(k);
  return out;
}

void TimelineRecorder::write_csv(std::ostream& os,
                                 common::SimTime step) const {
  common::SimTime end;
  for (const auto& [k, s] : series_) {
    if (!s.points().empty()) end = std::max(end, s.points().back().first);
  }
  os << "time_s";
  for (const auto& [k, s] : series_) os << "," << k;
  os << "\n";
  for (common::SimTime t; t <= end; t += step) {
    os << t.to_seconds();
    for (const auto& [k, s] : series_) os << "," << s.at(t);
    os << "\n";
  }
}

}  // namespace strato::metrics
