#include "metrics/pid_stat.h"

#include <fstream>
#include <sstream>

namespace strato::metrics {

std::optional<PidStatSnapshot> parse_pid_stat(std::string_view content) {
  // Layout: pid (comm) state ppid pgrp session tty tpgid flags minflt
  // cminflt majflt cmajflt utime stime ...
  // comm may contain anything including ')'; the field ends at the LAST
  // ')' in the line.
  const std::size_t open = content.find('(');
  const std::size_t close = content.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    return std::nullopt;
  }
  PidStatSnapshot s;
  {
    std::istringstream head{std::string(content.substr(0, open))};
    if (!(head >> s.pid)) return std::nullopt;
  }
  s.comm = std::string(content.substr(open + 1, close - open - 1));

  std::istringstream tail{std::string(content.substr(close + 1))};
  tail >> s.state;
  // Skip fields 4..13 (ppid .. cmajflt), then utime stime.
  std::uint64_t skip;
  for (int i = 0; i < 10; ++i) {
    if (!(tail >> skip)) return std::nullopt;
  }
  if (!(tail >> s.utime >> s.stime)) return std::nullopt;
  return s;
}

std::optional<PidStatSnapshot> read_pid_stat(int pid) {
  std::ifstream f("/proc/" + std::to_string(pid) + "/stat");
  if (!f) return std::nullopt;
  std::string line;
  std::getline(f, line);
  return parse_pid_stat(line);
}

double process_cpu_fraction(const PidStatSnapshot& earlier,
                            const PidStatSnapshot& later, double elapsed_s,
                            double ticks_per_s) {
  if (elapsed_s <= 0 || ticks_per_s <= 0 ||
      later.total() < earlier.total()) {
    return 0.0;
  }
  const double jiffies =
      static_cast<double>(later.total() - earlier.total());
  return jiffies / ticks_per_s / elapsed_s;
}

}  // namespace strato::metrics
