#include "metrics/registry.h"

namespace strato::metrics {

Counter& MetricRegistry::counter(std::string_view name) {
  common::MutexLock lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  common::MutexLock lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

std::vector<MetricRegistry::Sample> MetricRegistry::snapshot() const {
  std::vector<Sample> out;
  common::MutexLock lk(mu_);
  out.reserve(counters_.size() + gauges_.size());
  // Two sorted maps merged by name keep the snapshot name-sorted without
  // a separate sort pass.
  auto c = counters_.begin();
  auto g = gauges_.begin();
  while (c != counters_.end() || g != gauges_.end()) {
    const bool take_counter =
        g == gauges_.end() ||
        (c != counters_.end() && c->first <= g->first);
    if (take_counter) {
      out.push_back(Sample{c->first, true,
                           static_cast<std::int64_t>(c->second.value())});
      ++c;
    } else {
      out.push_back(Sample{g->first, false, g->second.value()});
      ++g;
    }
  }
  return out;
}

std::string MetricRegistry::to_json() const {
  const auto samples = snapshot();
  std::string json = "{";
  bool first = true;
  for (const auto& s : samples) {
    if (!first) json += ",";
    first = false;
    json += "\"" + s.name + "\":" + std::to_string(s.value);
  }
  json += "}";
  return json;
}

}  // namespace strato::metrics
