// /proc/<pid>/stat parsing — the paper's host-side monitoring path.
//
// For KVM-based experiments the paper determines the qemu process id and
// traces its CPU utilization through /proc/<pid>/stat at 1 Hz. This
// parser handles that interface, including executable names containing
// spaces and parentheses (the comm field is delimited by the *last*
// closing parenthesis).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace strato::metrics {

/// Relevant fields of one /proc/<pid>/stat line.
struct PidStatSnapshot {
  int pid = 0;
  std::string comm;          ///< executable name (without parentheses)
  char state = '?';
  std::uint64_t utime = 0;   ///< user-mode jiffies
  std::uint64_t stime = 0;   ///< kernel-mode jiffies

  [[nodiscard]] std::uint64_t total() const { return utime + stime; }
};

/// Parse a /proc/<pid>/stat line. Returns nullopt on malformed input.
[[nodiscard]] std::optional<PidStatSnapshot> parse_pid_stat(std::string_view content);

/// Read and parse the live /proc/<pid>/stat (Linux only).
[[nodiscard]] std::optional<PidStatSnapshot> read_pid_stat(int pid);

/// CPU fraction a process used between two snapshots over `elapsed_s`
/// seconds, given the kernel tick rate (USER_HZ, typically 100).
double process_cpu_fraction(const PidStatSnapshot& earlier,
                            const PidStatSnapshot& later, double elapsed_s,
                            double ticks_per_s = 100.0);

}  // namespace strato::metrics
