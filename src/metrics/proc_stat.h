// /proc/stat parsing.
//
// Section II monitors guests by sampling the Linux /proc/stat interface
// once per second. This parser implements that path for live (non-
// simulated) usage: snapshot the aggregate cpu line, diff two snapshots,
// and obtain the CpuBreakdown over the interval.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "metrics/cpu.h"

namespace strato::metrics {

/// Raw jiffy counters of the aggregate "cpu" line of /proc/stat.
struct ProcStatSnapshot {
  std::uint64_t user = 0;
  std::uint64_t nice = 0;
  std::uint64_t system = 0;
  std::uint64_t idle = 0;
  std::uint64_t iowait = 0;
  std::uint64_t irq = 0;
  std::uint64_t softirq = 0;
  std::uint64_t steal = 0;

  [[nodiscard]] std::uint64_t total() const {
    return user + nice + system + idle + iowait + irq + softirq + steal;
  }
};

/// Parse the first "cpu " line out of /proc/stat content.
/// Returns nullopt if the line is missing or malformed.
[[nodiscard]] std::optional<ProcStatSnapshot> parse_proc_stat(std::string_view content);

/// Read and parse the live /proc/stat (Linux only).
[[nodiscard]] std::optional<ProcStatSnapshot> read_proc_stat();

/// Breakdown of the interval between two snapshots (later minus earlier).
/// Returns zeros if no jiffies elapsed.
CpuBreakdown diff(const ProcStatSnapshot& earlier,
                  const ProcStatSnapshot& later);

}  // namespace strato::metrics
