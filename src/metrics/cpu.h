// CPU utilization breakdown.
//
// The paper's Fig. 1 splits CPU time into user (USR), kernel (SYS),
// hardware interrupt (HIRQ), software interrupt (SIRQ) and — for
// virtualized guests — STEAL (hypervisor time given to other tasks).
// Both the real /proc/stat parser and the simulator's distortion model
// produce this structure.
#pragma once

#include <string>

namespace strato::metrics {

/// Fractions of one CPU's time over an interval, each in [0, 1].
struct CpuBreakdown {
  double usr = 0.0;
  double sys = 0.0;
  double hirq = 0.0;
  double sirq = 0.0;
  double steal = 0.0;

  /// Total busy fraction (everything but idle).
  [[nodiscard]] double busy() const {
    return usr + sys + hirq + sirq + steal;
  }
  /// Idle fraction.
  [[nodiscard]] double idle() const { return 1.0 - busy(); }

  CpuBreakdown& operator+=(const CpuBreakdown& o) {
    usr += o.usr;
    sys += o.sys;
    hirq += o.hirq;
    sirq += o.sirq;
    steal += o.steal;
    return *this;
  }

  CpuBreakdown operator*(double f) const {
    return {usr * f, sys * f, hirq * f, sirq * f, steal * f};
  }
};

/// "usr=.. sys=.. hirq=.. sirq=.. steal=.." (percent) for logs/benches.
std::string to_string(const CpuBreakdown& b);

}  // namespace strato::metrics
