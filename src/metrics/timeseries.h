// Time-series recording for the timeline figures.
//
// Figs. 4-6 plot CPU utilization, application/network throughput and the
// chosen compression level against time. Experiments append samples to
// named series here; benches dump them as aligned CSV for plotting.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace strato::metrics {

/// One named (time, value) series.
class TimeSeries {
 public:
  void add(common::SimTime t, double v) { points_.emplace_back(t, v); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] const std::vector<std::pair<common::SimTime, double>>&
  points() const {
    return points_;
  }

  /// Value at or before `t` (stepwise), or `fallback` when none.
  [[nodiscard]] double at(common::SimTime t, double fallback = 0.0) const;

 private:
  std::vector<std::pair<common::SimTime, double>> points_;
};

/// A collection of named series sharing one experiment timeline.
class TimelineRecorder {
 public:
  /// Append a sample to series `name` (created on first use).
  void record(const std::string& name, common::SimTime t, double v) {
    series_[name].add(t, v);
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return series_.count(name) != 0;
  }
  [[nodiscard]] const TimeSeries& series(const std::string& name) const {
    return series_.at(name);
  }
  [[nodiscard]] std::vector<std::string> names() const;

  /// Write "time,<series...>" CSV resampled on a fixed step.
  void write_csv(std::ostream& os, common::SimTime step) const;

 private:
  std::map<std::string, TimeSeries> series_;
};

}  // namespace strato::metrics
