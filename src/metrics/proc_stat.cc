#include "metrics/proc_stat.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace strato::metrics {

std::string to_string(const CpuBreakdown& b) {
  char buf[128];
  std::snprintf(buf, sizeof buf,
                "usr=%.1f%% sys=%.1f%% hirq=%.1f%% sirq=%.1f%% steal=%.1f%%",
                b.usr * 100, b.sys * 100, b.hirq * 100, b.sirq * 100,
                b.steal * 100);
  return buf;
}

std::optional<ProcStatSnapshot> parse_proc_stat(std::string_view content) {
  std::istringstream is{std::string(content)};
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("cpu ", 0) != 0) continue;
    std::istringstream ls(line.substr(4));
    ProcStatSnapshot s;
    if (ls >> s.user >> s.nice >> s.system >> s.idle) {
      // iowait/irq/softirq/steal are absent on very old kernels; default 0.
      ls >> s.iowait >> s.irq >> s.softirq >> s.steal;
      return s;
    }
    return std::nullopt;
  }
  return std::nullopt;
}

std::optional<ProcStatSnapshot> read_proc_stat() {
  std::ifstream f("/proc/stat");
  if (!f) return std::nullopt;
  std::stringstream buf;
  buf << f.rdbuf();
  return parse_proc_stat(buf.str());
}

CpuBreakdown diff(const ProcStatSnapshot& earlier,
                  const ProcStatSnapshot& later) {
  CpuBreakdown b;
  const std::uint64_t dt = later.total() - earlier.total();
  if (dt == 0 || later.total() < earlier.total()) return b;
  const auto frac = [dt](std::uint64_t hi, std::uint64_t lo) {
    return hi >= lo ? static_cast<double>(hi - lo) / static_cast<double>(dt)
                    : 0.0;
  };
  b.usr = frac(later.user + later.nice, earlier.user + earlier.nice);
  b.sys = frac(later.system, earlier.system);
  b.hirq = frac(later.irq, earlier.irq);
  b.sirq = frac(later.softirq, earlier.softirq);
  b.steal = frac(later.steal, earlier.steal);
  return b;
}

}  // namespace strato::metrics
