#include "dataflow/serdes.h"

#include <cstring>

namespace strato::dataflow {

void RecordWriterCursor::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void RecordWriterCursor::put_signed(std::int64_t v) {
  // Zigzag: interleave positives and negatives onto the unsigned line.
  put_varint((static_cast<std::uint64_t>(v) << 1) ^
             static_cast<std::uint64_t>(v >> 63));
}

void RecordWriterCursor::put_double(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  const std::size_t base = buf_.size();
  buf_.resize(base + 8);
  common::store_le64(buf_.data() + base, bits);
}

void RecordWriterCursor::put_string(std::string_view s) {
  put_varint(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void RecordWriterCursor::put_bytes(common::ByteSpan b) {
  put_varint(b.size());
  buf_.insert(buf_.end(), b.begin(), b.end());
}

std::uint64_t RecordReaderCursor::get_varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    need(1);
    const std::uint8_t byte = data_[pos_++];
    if (shift >= 64 || (shift == 63 && (byte & 0x7E) != 0)) {
      throw compress::CodecError("serdes: varint overflow");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

std::int64_t RecordReaderCursor::get_signed() {
  const std::uint64_t z = get_varint();
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

double RecordReaderCursor::get_double() {
  need(8);
  const std::uint64_t bits = common::load_le64(data_.data() + pos_);
  pos_ += 8;
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string RecordReaderCursor::get_string() {
  const std::uint64_t n = get_varint();
  need(static_cast<std::size_t>(n));
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

common::Bytes RecordReaderCursor::get_bytes() {
  const std::uint64_t n = get_varint();
  need(static_cast<std::size_t>(n));
  common::Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += static_cast<std::size_t>(n);
  return b;
}

bool RecordReaderCursor::get_bool() {
  need(1);
  const std::uint8_t b = data_[pos_++];
  if (b > 1) throw compress::CodecError("serdes: bad bool");
  return b == 1;
}

}  // namespace strato::dataflow
