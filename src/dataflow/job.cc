#include "dataflow/job.h"

#include <stdexcept>

namespace strato::dataflow {

int JobGraph::add_vertex(std::string name, TaskFactory factory) {
  vertices_.push_back({std::move(name), std::move(factory)});
  return static_cast<int>(vertices_.size()) - 1;
}

void JobGraph::connect(int src, int dst, ChannelType type,
                       CompressionSpec compression, std::string file_path) {
  if (src < 0 || dst < 0 ||
      src >= static_cast<int>(vertices_.size()) ||
      dst >= static_cast<int>(vertices_.size())) {
    throw std::out_of_range("connect: bad vertex id");
  }
  if (src == dst) throw std::invalid_argument("connect: self loop");
  EdgeSpec e;
  e.src = src;
  e.dst = dst;
  e.type = type;
  e.compression = compression;
  e.file_path = std::move(file_path);
  edges_.push_back(std::move(e));
}

std::vector<int> JobGraph::topo_order() const {
  const auto n = vertices_.size();
  std::vector<int> indegree(n, 0);
  for (const auto& e : edges_) ++indegree[static_cast<std::size_t>(e.dst)];
  std::vector<int> ready;
  for (std::size_t v = 0; v < n; ++v) {
    if (indegree[v] == 0) ready.push_back(static_cast<int>(v));
  }
  std::vector<int> order;
  order.reserve(n);
  while (!ready.empty()) {
    const int v = ready.back();
    ready.pop_back();
    order.push_back(v);
    for (const auto& e : edges_) {
      if (e.src == v && --indegree[static_cast<std::size_t>(e.dst)] == 0) {
        ready.push_back(e.dst);
      }
    }
  }
  if (order.size() != n) throw std::runtime_error("job graph has a cycle");
  return order;
}

bool JobGraph::is_dag() const {
  try {
    (void)topo_order();
    return true;
  } catch (const std::runtime_error&) {
    return false;
  }
}

}  // namespace strato::dataflow
