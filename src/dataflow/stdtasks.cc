#include "dataflow/stdtasks.h"

#include <thread>
#include <vector>

#include "common/checksum.h"
#include "common/mutex.h"

namespace strato::dataflow {

void PartitionTask::run(TaskContext& ctx) {
  const std::size_t fanout = ctx.num_outputs();
  while (auto rec = ctx.input(0).next()) {
    const std::size_t gate =
        fanout <= 1 ? 0 : common::xxh64(*rec) % fanout;
    ctx.output(gate).emit(*rec);
  }
}

void UnionTask::run(TaskContext& ctx) {
  // Drain each input gate on its own thread so one idle upstream cannot
  // stall the others (channels block on empty).
  std::vector<std::thread> drains;
  common::Mutex emit_mu{"UnionTask::emit_mu"};
  drains.reserve(ctx.num_inputs());
  for (std::size_t i = 0; i < ctx.num_inputs(); ++i) {
    drains.emplace_back([&ctx, &emit_mu, i] {
      while (auto rec = ctx.input(i).next()) {
        common::MutexLock lk(emit_mu);
        ctx.output(0).emit(*rec);
      }
    });
  }
  for (auto& d : drains) d.join();
}

}  // namespace strato::dataflow
