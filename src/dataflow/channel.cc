#include "dataflow/channel.h"

#include <cstdio>
#include <stdexcept>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace strato::dataflow {

namespace {

std::unique_ptr<core::CompressionPolicy> make_policy(
    const CompressionSpec& spec, const compress::CodecRegistry& registry) {
  switch (spec.mode) {
    case CompressionSpec::Mode::kNone:
      return std::make_unique<core::StaticPolicy>(0, "NO");
    case CompressionSpec::Mode::kStatic:
      return std::make_unique<core::StaticPolicy>(
          spec.static_level,
          registry.level(static_cast<std::size_t>(spec.static_level)).label);
    case CompressionSpec::Mode::kAdaptive: {
      core::AdaptiveConfig cfg = spec.adaptive;
      cfg.num_levels = static_cast<int>(registry.level_count());
      return std::make_unique<core::AdaptivePolicy>(cfg, spec.window);
    }
  }
  throw std::logic_error("bad compression mode");
}

// ---------------------------------------------------------------------------
// In-memory channel
// ---------------------------------------------------------------------------

class InMemoryChannel final : public Channel {
 public:
  explicit InMemoryChannel(std::size_t capacity)
      : ring_(capacity), writer_(*this), reader_(*this) {}

  ChannelWriter& writer() override { return writer_; }
  ChannelReader& reader() override { return reader_; }

  ChannelStats stats() const override {
    ChannelStats s;
    s.records = records_.load(std::memory_order_relaxed);
    s.raw_bytes = bytes_.load(std::memory_order_relaxed);
    s.wire_bytes = s.raw_bytes;  // nothing is compressed in memory
    return s;
  }

 private:
  class Writer final : public ChannelWriter {
   public:
    explicit Writer(InMemoryChannel& ch) : ch_(ch) {}
    void emit(common::ByteSpan record) override {
      ch_.ring_.push(common::Bytes(record.begin(), record.end()));
      ch_.records_.fetch_add(1, std::memory_order_relaxed);
      ch_.bytes_.fetch_add(record.size(), std::memory_order_relaxed);
    }
    void close() override { ch_.ring_.close(); }

   private:
    InMemoryChannel& ch_;
  };

  class Reader final : public ChannelReader {
   public:
    explicit Reader(InMemoryChannel& ch) : ch_(ch) {}
    std::optional<common::Bytes> next() override { return ch_.ring_.pop(); }

   private:
    InMemoryChannel& ch_;
  };

  common::SpscRing<common::Bytes> ring_;
  std::atomic<std::uint64_t> records_{0};
  std::atomic<std::uint64_t> bytes_{0};
  Writer writer_;
  Reader reader_;
};

// ---------------------------------------------------------------------------
// Compressed byte-stream channels (network / file) share this base: the
// writer pushes records through a CompressingWriter into some byte
// transport; the reader pulls transport bytes through DecompressingReader
// and a RecordAssembler.
// ---------------------------------------------------------------------------

class CompressedChannelBase : public Channel {
 public:
  CompressedChannelBase(const CompressionSpec& spec,
                        const compress::CodecRegistry& registry,
                        std::size_t block_size, core::ByteSink& sink)
      : registry_(registry),
        policy_(make_policy(spec, registry)),
        compressing_writer_(sink, registry, *policy_, clock_, block_size,
                            spec.worker_count, spec.pipeline_depth),
        decompressing_reader_(
            registry, {spec.decode_worker_count, spec.decode_depth}) {}

  ChannelStats stats() const override {
    ChannelStats s;
    s.records = records_.load(std::memory_order_relaxed);
    s.raw_bytes = compressing_writer_.raw_bytes();
    s.wire_bytes = compressing_writer_.framed_bytes();
    s.blocks_per_level = compressing_writer_.blocks_per_level();
    return s;
  }

 protected:
  // Writer-side helpers (single writer thread).
  void write_record(common::ByteSpan record) {
    scratch_.clear();
    append_record(scratch_, record);
    compressing_writer_.write(scratch_);
    records_.fetch_add(1, std::memory_order_relaxed);
  }
  void flush_writer() { compressing_writer_.flush(); }

  // Reader-side helpers (single reader thread). `pull` supplies transport
  // bytes; empty result = EOF.
  template <typename PullFn>
  std::optional<common::Bytes> read_record(PullFn&& pull) {
    for (;;) {
      if (auto rec = records_in_.next_record()) return rec;
      // Zero-copy hand-off: the decoded block is a lease into the decode
      // pipeline's pooled buffer; RecordAssembler copies what it keeps.
      if (auto block = decompressing_reader_.next_block_view()) {
        records_in_.feed(block->data);
        continue;
      }
      const common::Bytes chunk = pull();
      if (chunk.empty()) {
        if (!records_in_.drained()) {
          throw compress::CodecError("channel: truncated record stream");
        }
        return std::nullopt;
      }
      decompressing_reader_.feed(chunk);
    }
  }

  const compress::CodecRegistry& registry_;
  common::SteadyClock clock_;
  std::unique_ptr<core::CompressionPolicy> policy_;
  core::CompressingWriter compressing_writer_;
  core::DecompressingReader decompressing_reader_;
  RecordAssembler records_in_;
  common::Bytes scratch_;
  std::atomic<std::uint64_t> records_{0};
};

// ---------------------------------------------------------------------------
// Network channel
// ---------------------------------------------------------------------------

class NetworkChannel final : public CompressedChannelBase {
 public:
  NetworkChannel(std::shared_ptr<core::LinkShare> link,
                 const CompressionSpec& spec,
                 const compress::CodecRegistry& registry,
                 std::size_t block_size)
      : CompressedChannelBase(spec, registry, block_size, pipe_),
        pipe_(std::move(link)),
        writer_(*this),
        reader_(*this) {}

  ChannelWriter& writer() override { return writer_; }
  ChannelReader& reader() override { return reader_; }

 private:
  class Writer final : public ChannelWriter {
   public:
    explicit Writer(NetworkChannel& ch) : ch_(ch) {}
    void emit(common::ByteSpan record) override { ch_.write_record(record); }
    void close() override {
      ch_.flush_writer();
      ch_.pipe_.close();
    }

   private:
    NetworkChannel& ch_;
  };

  class Reader final : public ChannelReader {
   public:
    explicit Reader(NetworkChannel& ch) : ch_(ch) {}
    std::optional<common::Bytes> next() override {
      return ch_.read_record([this] { return ch_.pipe_.read(64 * 1024); });
    }

   private:
    NetworkChannel& ch_;
  };

  core::ThrottledPipe pipe_;
  Writer writer_;
  Reader reader_;
};

// ---------------------------------------------------------------------------
// File channel
// ---------------------------------------------------------------------------

/// ByteSink appending to a stdio file.
class FileSink final : public core::ByteSink {
 public:
  explicit FileSink(const std::string& path)
      : f_(std::fopen(path.c_str(), "wb")) {
    if (f_ == nullptr) {
      throw std::runtime_error("file channel: cannot open " + path);
    }
  }
  ~FileSink() override { close(); }

  void write(common::ByteSpan data) override {
    if (f_ && std::fwrite(data.data(), 1, data.size(), f_) != data.size()) {
      throw std::runtime_error("file channel: short write");
    }
  }
  void flush() override {
    if (f_) std::fflush(f_);
  }
  void close() {
    if (f_) {
      std::fclose(f_);
      f_ = nullptr;
    }
  }

 private:
  std::FILE* f_;
};

class FileChannel final : public CompressedChannelBase {
 public:
  FileChannel(std::string path, const CompressionSpec& spec,
              const compress::CodecRegistry& registry, std::size_t block_size)
      : CompressedChannelBase(spec, registry, block_size, sink_),
        path_(std::move(path)),
        sink_(path_),
        writer_(*this),
        reader_(*this) {}

  ChannelWriter& writer() override { return writer_; }
  ChannelReader& reader() override { return reader_; }

 private:
  void mark_done() {
    {
      common::MutexLock lk(mu_);
      done_ = true;
    }
    cv_.notify_all();
  }

  void wait_done() {
    common::MutexLock lk(mu_);
    while (!done_) cv_.wait(mu_);
  }

  class Writer final : public ChannelWriter {
   public:
    explicit Writer(FileChannel& ch) : ch_(ch) {}
    void emit(common::ByteSpan record) override { ch_.write_record(record); }
    void close() override {
      ch_.flush_writer();
      ch_.sink_.close();
      ch_.mark_done();
    }

   private:
    FileChannel& ch_;
  };

  class Reader final : public ChannelReader {
   public:
    explicit Reader(FileChannel& ch) : ch_(ch) {}
    std::optional<common::Bytes> next() override {
      if (!opened_) {
        ch_.wait_done();
        in_ = std::fopen(ch_.path_.c_str(), "rb");
        if (in_ == nullptr) {
          throw std::runtime_error("file channel: cannot reopen " + ch_.path_);
        }
        opened_ = true;
      }
      auto rec = ch_.read_record([this] {
        common::Bytes chunk(64 * 1024);
        const std::size_t n = in_ ? std::fread(chunk.data(), 1, chunk.size(), in_) : 0;
        chunk.resize(n);
        return chunk;
      });
      if (!rec && in_) {
        std::fclose(in_);
        in_ = nullptr;
      }
      return rec;
    }
    ~Reader() override {
      if (in_) std::fclose(in_);
    }

   private:
    FileChannel& ch_;
    std::FILE* in_ = nullptr;
    bool opened_ = false;
  };

  std::string path_;
  FileSink sink_;
  common::Mutex mu_{"FileChannel::mu_"};
  common::CondVar cv_;
  bool done_ STRATO_GUARDED_BY(mu_) = false;
  Writer writer_;
  Reader reader_;
};

}  // namespace

std::unique_ptr<Channel> make_inmemory_channel(std::size_t capacity_records) {
  return std::make_unique<InMemoryChannel>(capacity_records);
}

std::unique_ptr<Channel> make_network_channel(
    std::shared_ptr<core::LinkShare> link, const CompressionSpec& spec,
    const compress::CodecRegistry& registry, std::size_t block_size) {
  return std::make_unique<NetworkChannel>(std::move(link), spec, registry,
                                          block_size);
}

std::unique_ptr<Channel> make_file_channel(
    const std::string& path, const CompressionSpec& spec,
    const compress::CodecRegistry& registry, std::size_t block_size) {
  return std::make_unique<FileChannel>(path, spec, registry, block_size);
}

}  // namespace strato::dataflow
