// Dataflow channels — the Nephele channel types (Section III-B).
//
// Nephele supports in-memory, TCP network and file channels; the paper
// integrated adaptive compression into the latter two, transparently to
// task code. We reproduce that split:
//
//  * InMemoryChannel — record queue between co-located tasks, never
//    compressed (as in Nephele);
//  * NetworkChannel  — records -> 128 KB blocks -> policy-selected codec ->
//    framed bytes through a bandwidth-throttled pipe (the shared link);
//  * FileChannel     — same compression path into a spill file; the reader
//    starts once the writer finishes.
//
// Every channel is a writer endpoint plus a reader endpoint usable from
// two different task threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "common/spsc_ring.h"
#include "core/stream.h"
#include "core/throttled_pipe.h"
#include "dataflow/record.h"

namespace strato::dataflow {

/// Channel kinds, mirroring Nephele.
enum class ChannelType { kInMemory, kNetwork, kFile };

/// Per-channel transfer statistics.
struct ChannelStats {
  std::uint64_t records = 0;
  std::uint64_t raw_bytes = 0;    ///< serialized record bytes
  std::uint64_t wire_bytes = 0;   ///< framed bytes after compression
  std::vector<std::uint64_t> blocks_per_level;
};

/// Writer endpoint handed to the producing task.
class ChannelWriter {
 public:
  virtual ~ChannelWriter() = default;
  /// Emit one record (blocking under backpressure).
  virtual void emit(common::ByteSpan record) = 0;
  /// Signal end-of-stream; flushes buffered blocks.
  virtual void close() = 0;
};

/// Reader endpoint handed to the consuming task.
class ChannelReader {
 public:
  virtual ~ChannelReader() = default;
  /// Next record; nullopt = end of stream.
  [[nodiscard]] virtual std::optional<common::Bytes> next() = 0;
};

/// A constructed channel: both endpoints plus its stats (valid after both
/// sides are done).
class Channel {
 public:
  virtual ~Channel() = default;
  [[nodiscard]] virtual ChannelWriter& writer() = 0;
  [[nodiscard]] virtual ChannelReader& reader() = 0;
  [[nodiscard]] virtual ChannelStats stats() const = 0;
};

/// Compression configuration of a channel.
struct CompressionSpec {
  enum class Mode { kNone, kStatic, kAdaptive } mode = Mode::kNone;
  int static_level = 0;
  core::AdaptiveConfig adaptive;
  /// Decision interval t for the adaptive mode (paper: 2 s).
  common::SimTime window = common::SimTime::seconds(2);
  /// Compression worker threads. 1 (default) compresses serially on the
  /// writing task's thread; > 1 fans blocks out to a ParallelBlockPipeline.
  /// The wire format is identical either way.
  std::size_t worker_count = 1;
  /// Reorder-window depth (max blocks in flight); 0 = 2 * worker_count.
  std::size_t pipeline_depth = 0;
  /// Decode worker threads on the receiving side. 1 (default) decodes
  /// inline on the reading task's thread; > 1 fans frames out to a
  /// ParallelBlockDecodePipeline. The delivered records are identical
  /// either way.
  std::size_t decode_worker_count = 1;
  /// Decode reorder-window depth; 0 = 2 * decode_worker_count.
  std::size_t decode_depth = 0;

  /// Builder: enable parallel block compression on this channel.
  [[nodiscard]] CompressionSpec with_workers(std::size_t workers,
                                             std::size_t depth = 0) const {
    CompressionSpec s = *this;
    s.worker_count = workers;
    s.pipeline_depth = depth;
    return s;
  }

  /// Builder: enable parallel receive-side decompression on this channel.
  [[nodiscard]] CompressionSpec with_decode_workers(
      std::size_t workers, std::size_t depth = 0) const {
    CompressionSpec s = *this;
    s.decode_worker_count = workers;
    s.decode_depth = depth;
    return s;
  }

  static CompressionSpec none() { return {}; }
  static CompressionSpec fixed(int level) {
    CompressionSpec s;
    s.mode = Mode::kStatic;
    s.static_level = level;
    return s;
  }
  static CompressionSpec adaptive_default(
      common::SimTime window = common::SimTime::seconds(2)) {
    CompressionSpec s;
    s.mode = Mode::kAdaptive;
    s.window = window;
    return s;
  }
};

/// In-memory channel: a bounded record queue (no compression).
std::unique_ptr<Channel> make_inmemory_channel(std::size_t capacity_records = 64);

/// Network channel over a throttled pipe. Pass a shared LinkShare to make
/// several channels contend for the same bandwidth (shared I/O).
std::unique_ptr<Channel> make_network_channel(
    std::shared_ptr<core::LinkShare> link, const CompressionSpec& spec,
    const compress::CodecRegistry& registry =
        compress::CodecRegistry::standard(),
    std::size_t block_size = compress::kDefaultBlockSize);

/// File channel spilling through `path`; the reader blocks until close().
std::unique_ptr<Channel> make_file_channel(
    const std::string& path, const CompressionSpec& spec,
    const compress::CodecRegistry& registry =
        compress::CodecRegistry::standard(),
    std::size_t block_size = compress::kDefaultBlockSize);

}  // namespace strato::dataflow
