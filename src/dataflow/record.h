// Record serialization for dataflow channels.
//
// Nephele tasks exchange records over channels; the channel turns the
// record stream into a byte stream (which the compression module then
// blocks into 128 KB frames) and back. Wire format per record:
// u32 little-endian payload length, then the payload.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "common/bytes.h"
#include "compress/codec.h"

namespace strato::dataflow {

/// Maximum record payload accepted (sanity bound against corruption).
inline constexpr std::size_t kMaxRecordSize = 64u << 20;

/// Serialize one record into `out` (appends).
void append_record(common::Bytes& out, common::ByteSpan payload);

/// Incremental record parser: feed byte-stream chunks (e.g. decompressed
/// channel blocks), pop complete records.
class RecordAssembler {
 public:
  /// Append raw stream bytes.
  void feed(common::ByteSpan data);

  /// Next complete record, or nullopt if more bytes are needed.
  /// @throws compress::CodecError on an implausible length prefix.
  [[nodiscard]] std::optional<common::Bytes> next_record();

  /// True when no partial record is buffered (clean end of stream).
  [[nodiscard]] bool drained() const { return buf_.size() == off_; }

 private:
  common::Bytes buf_;
  std::size_t off_ = 0;
};

}  // namespace strato::dataflow
