#include "dataflow/executor.h"

#include <chrono>
#include <map>
#include <exception>
#include <thread>

#include "common/mutex.h"

namespace strato::dataflow {

JobStats Executor::execute(const JobGraph& job) {
  JobStats stats;
  if (!job.is_dag()) {
    stats.error = "job graph has a cycle";
    return stats;
  }

  const bool placed = !config_.placement.empty();
  if (placed && config_.placement.size() != job.num_vertices()) {
    stats.error = "placement size does not match vertex count";
    return stats;
  }

  // Without placement: one LinkShare for every network channel (the
  // shared NIC). With placement: one egress NIC per source host, created
  // lazily; co-located edges are loopback (unthrottled).
  std::shared_ptr<core::LinkShare> global_link;
  if (!placed && config_.shared_link_bytes_s > 0) {
    global_link =
        std::make_shared<core::LinkShare>(config_.shared_link_bytes_s);
  }
  std::map<int, std::shared_ptr<core::LinkShare>> egress;
  const auto link_for = [&](const EdgeSpec& spec)
      -> std::shared_ptr<core::LinkShare> {
    if (!placed) return global_link;
    if (config_.shared_link_bytes_s <= 0) return nullptr;
    const int src_host = config_.placement[static_cast<std::size_t>(spec.src)];
    const int dst_host = config_.placement[static_cast<std::size_t>(spec.dst)];
    if (src_host == dst_host) return nullptr;  // loopback
    auto& link = egress[src_host];
    if (!link) {
      link = std::make_shared<core::LinkShare>(config_.shared_link_bytes_s);
    }
    return link;
  };

  // Build channels in edge order.
  std::vector<std::unique_ptr<Channel>> channels;
  channels.reserve(job.num_edges());
  int file_seq = 0;
  for (std::size_t e = 0; e < job.num_edges(); ++e) {
    const EdgeSpec& spec = job.edge(e);
    switch (spec.type) {
      case ChannelType::kInMemory:
        channels.push_back(make_inmemory_channel());
        break;
      case ChannelType::kNetwork:
        channels.push_back(make_network_channel(link_for(spec),
                                                spec.compression));
        break;
      case ChannelType::kFile: {
        std::string path = spec.file_path;
        if (path.empty()) {
          path = config_.spill_dir + "/strato_spill_" +
                 std::to_string(reinterpret_cast<std::uintptr_t>(this)) + "_" +
                 std::to_string(file_seq++) + ".chan";
        }
        channels.push_back(make_file_channel(path, spec.compression));
        break;
      }
    }
  }

  // Wire gates per vertex (in edge order on both sides, like connect()).
  const auto nv = job.num_vertices();
  std::vector<std::vector<ChannelReader*>> inputs(nv);
  std::vector<std::vector<ChannelWriter*>> outputs(nv);
  for (std::size_t e = 0; e < job.num_edges(); ++e) {
    const EdgeSpec& spec = job.edge(e);
    outputs[static_cast<std::size_t>(spec.src)].push_back(
        &channels[e]->writer());
    inputs[static_cast<std::size_t>(spec.dst)].push_back(
        &channels[e]->reader());
  }

  common::Mutex err_mu{"Executor::err_mu"};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(nv);
  for (std::size_t v = 0; v < nv; ++v) {
    threads.emplace_back([&, v] {
      TaskContext ctx(job.vertex_name(static_cast<int>(v)), inputs[v],
                      outputs[v]);
      try {
        const auto task = job.instantiate(static_cast<int>(v));
        task->run(ctx);
      } catch (const std::exception& ex) {
        common::MutexLock lk(err_mu);
        if (stats.error.empty()) {
          stats.error = ctx.name() + ": " + ex.what();
        }
      }
      // Close output gates even on failure so downstream tasks terminate.
      for (auto* w : outputs[v]) w->close();
    });
  }
  for (auto& t : threads) t.join();
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  stats.channels.reserve(channels.size());
  for (const auto& ch : channels) stats.channels.push_back(ch->stats());
  return stats;
}

}  // namespace strato::dataflow
