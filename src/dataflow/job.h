// Job graphs — Nephele's programming model.
//
// A job is a directed acyclic graph: vertices are tasks, edges are
// channels (Section III-B). Tasks read records from their input gates and
// emit records to their output gates; channel compression is configured
// per edge and invisible to task code.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dataflow/channel.h"

namespace strato::dataflow {

class TaskContext;

/// User code: one vertex of the job DAG.
class Task {
 public:
  virtual ~Task() = default;
  /// Execute the task; runs on its own thread. Reads inputs and emits to
  /// outputs through `ctx`. Output gates are closed automatically when
  /// run() returns.
  virtual void run(TaskContext& ctx) = 0;
};

/// Gates of one running task.
class TaskContext {
 public:
  TaskContext(std::string name, std::vector<ChannelReader*> inputs,
              std::vector<ChannelWriter*> outputs)
      : name_(std::move(name)),
        inputs_(std::move(inputs)),
        outputs_(std::move(outputs)) {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_inputs() const { return inputs_.size(); }
  [[nodiscard]] std::size_t num_outputs() const { return outputs_.size(); }

  /// Input gate i.
  [[nodiscard]] ChannelReader& input(std::size_t i) { return *inputs_.at(i); }
  /// Output gate i.
  [[nodiscard]] ChannelWriter& output(std::size_t i) {
    return *outputs_.at(i);
  }

 private:
  std::string name_;
  std::vector<ChannelReader*> inputs_;
  std::vector<ChannelWriter*> outputs_;
};

/// Edge description in a job graph.
struct EdgeSpec {
  int src = -1;
  int dst = -1;
  ChannelType type = ChannelType::kInMemory;
  CompressionSpec compression;
  /// File channels: spill path (a unique temp path is generated if empty).
  std::string file_path;
};

/// The job DAG.
class JobGraph {
 public:
  using TaskFactory = std::function<std::unique_ptr<Task>()>;

  /// Add a vertex; returns its id.
  int add_vertex(std::string name, TaskFactory factory);

  /// Connect two vertices with a channel. Gate order on each side follows
  /// connect() call order.
  void connect(int src, int dst, ChannelType type,
               CompressionSpec compression = CompressionSpec::none(),
               std::string file_path = {});

  [[nodiscard]] std::size_t num_vertices() const { return vertices_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return edges_.size(); }
  [[nodiscard]] const std::string& vertex_name(int v) const {
    return vertices_.at(static_cast<std::size_t>(v)).name;
  }
  [[nodiscard]] const EdgeSpec& edge(std::size_t e) const {
    return edges_.at(e);
  }
  [[nodiscard]] std::unique_ptr<Task> instantiate(int v) const {
    return vertices_.at(static_cast<std::size_t>(v)).factory();
  }

  /// True when the graph has no cycles (execution requires it).
  [[nodiscard]] bool is_dag() const;

  /// Topological vertex order. @throws std::runtime_error on a cycle.
  [[nodiscard]] std::vector<int> topo_order() const;

 private:
  struct Vertex {
    std::string name;
    TaskFactory factory;
  };
  std::vector<Vertex> vertices_;
  std::vector<EdgeSpec> edges_;
};

}  // namespace strato::dataflow
