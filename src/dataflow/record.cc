#include "dataflow/record.h"

namespace strato::dataflow {

void append_record(common::Bytes& out, common::ByteSpan payload) {
  const std::size_t base = out.size();
  out.resize(base + 4 + payload.size());
  common::store_le32(out.data() + base,
                     static_cast<std::uint32_t>(payload.size()));
  std::copy(payload.begin(), payload.end(), out.begin() +
            static_cast<std::ptrdiff_t>(base + 4));
}

void RecordAssembler::feed(common::ByteSpan data) {
  if (off_ > 0 && off_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }
  buf_.insert(buf_.end(), data.begin(), data.end());
}

std::optional<common::Bytes> RecordAssembler::next_record() {
  const std::size_t avail = buf_.size() - off_;
  if (avail < 4) return std::nullopt;
  const std::uint32_t len = common::load_le32(buf_.data() + off_);
  if (len > kMaxRecordSize) {
    throw compress::CodecError("record: implausible length prefix");
  }
  if (avail < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  common::Bytes rec(buf_.begin() + static_cast<std::ptrdiff_t>(off_ + 4),
                    buf_.begin() + static_cast<std::ptrdiff_t>(off_ + 4 + len));
  off_ += 4 + len;
  return rec;
}

}  // namespace strato::dataflow
