// Reusable task building blocks.
//
// Small composable Task implementations so examples and applications can
// assemble jobs without re-writing source/sink boilerplate — the shape of
// Nephele's standard vertex library.
#pragma once

#include <atomic>
#include <functional>
#include <memory>

#include "corpus/generator.h"
#include "dataflow/job.h"

namespace strato::dataflow {

/// Emits records produced by a generator function until it returns
/// nullopt. The factory runs on the task thread.
class FunctionSource final : public Task {
 public:
  using Producer = std::function<std::optional<common::Bytes>()>;
  explicit FunctionSource(Producer producer)
      : producer_(std::move(producer)) {}

  void run(TaskContext& ctx) override {
    while (auto rec = producer_()) {
      for (std::size_t o = 0; o < ctx.num_outputs(); ++o) {
        ctx.output(o).emit(*rec);
      }
    }
  }

 private:
  Producer producer_;
};

/// Streams `total_bytes` of a corpus class as fixed-size records.
class CorpusSource final : public Task {
 public:
  CorpusSource(corpus::Compressibility data, std::size_t total_bytes,
               std::size_t record_bytes = 8192, std::uint64_t seed = 1)
      : data_(data),
        total_(total_bytes),
        record_(record_bytes),
        seed_(seed) {}

  void run(TaskContext& ctx) override {
    auto gen = corpus::make_generator(data_, seed_);
    common::Bytes rec(record_);
    for (std::size_t sent = 0; sent < total_; sent += rec.size()) {
      const std::size_t n = std::min(record_, total_ - sent);
      gen->generate(common::MutableByteSpan(rec).subspan(0, n));
      ctx.output(0).emit(common::ByteSpan(rec.data(), n));
    }
  }

 private:
  corpus::Compressibility data_;
  std::size_t total_;
  std::size_t record_;
  std::uint64_t seed_;
};

/// Applies a function to every input record and forwards the result
/// (record-at-a-time map).
class MapTask final : public Task {
 public:
  using Fn = std::function<common::Bytes(common::Bytes)>;
  explicit MapTask(Fn fn) : fn_(std::move(fn)) {}

  void run(TaskContext& ctx) override {
    while (auto rec = ctx.input(0).next()) {
      ctx.output(0).emit(fn_(std::move(*rec)));
    }
  }

 private:
  Fn fn_;
};

/// Filters records by predicate.
class FilterTask final : public Task {
 public:
  using Pred = std::function<bool(common::ByteSpan)>;
  explicit FilterTask(Pred pred) : pred_(std::move(pred)) {}

  void run(TaskContext& ctx) override {
    while (auto rec = ctx.input(0).next()) {
      if (pred_(*rec)) ctx.output(0).emit(*rec);
    }
  }

 private:
  Pred pred_;
};

/// Consumes every input gate, counting records and bytes (visible through
/// shared atomics so the driver can read results after execute()).
class CountingSink final : public Task {
 public:
  CountingSink(std::atomic<std::uint64_t>& records,
               std::atomic<std::uint64_t>& bytes)
      : records_(records), bytes_(bytes) {}

  void run(TaskContext& ctx) override {
    for (std::size_t i = 0; i < ctx.num_inputs(); ++i) {
      while (auto rec = ctx.input(i).next()) {
        records_.fetch_add(1, std::memory_order_relaxed);
        bytes_.fetch_add(rec->size(), std::memory_order_relaxed);
      }
    }
  }

 private:
  std::atomic<std::uint64_t>& records_;
  std::atomic<std::uint64_t>& bytes_;
};

/// Hash-partitions records across all output gates (Nephele's pointwise
/// shuffle): record -> gate XXH64(record) % num_outputs.
class PartitionTask final : public Task {
 public:
  void run(TaskContext& ctx) override;
};

/// Forwards every record from every input gate to output 0 (merge /
/// union of partitions; arrival order across gates is unspecified).
class UnionTask final : public Task {
 public:
  void run(TaskContext& ctx) override;
};

/// Invokes a callback for every record (single input gate).
class ForEachSink final : public Task {
 public:
  using Fn = std::function<void(common::ByteSpan)>;
  explicit ForEachSink(Fn fn) : fn_(std::move(fn)) {}

  void run(TaskContext& ctx) override {
    while (auto rec = ctx.input(0).next()) fn_(*rec);
  }

 private:
  Fn fn_;
};

}  // namespace strato::dataflow
