// Typed record serialization.
//
// Nephele tasks exchange *typed* records; our channels move raw byte
// records. This layer provides the compact primitives (LEB128 varints,
// zigzag for signed values, length-prefixed strings/bytes, doubles) plus
// a cursor-style writer/reader so tasks can define record types without
// hand-rolling byte layouts. Used by the examples and available to any
// Task implementation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "compress/codec.h"

namespace strato::dataflow {

/// Cursor-style serializer appending to an owned buffer.
class RecordWriterCursor {
 public:
  /// Unsigned LEB128 varint.
  void put_varint(std::uint64_t v);
  /// Zigzag-encoded signed varint.
  void put_signed(std::int64_t v);
  /// IEEE-754 double, little-endian.
  void put_double(double v);
  /// Length-prefixed UTF-8/opaque string.
  void put_string(std::string_view s);
  /// Length-prefixed raw bytes.
  void put_bytes(common::ByteSpan b);
  /// Single byte flag.
  void put_bool(bool v) { buf_.push_back(v ? 1 : 0); }

  [[nodiscard]] const common::Bytes& bytes() const { return buf_; }
  [[nodiscard]] common::Bytes take() { return std::move(buf_); }
  void clear() { buf_.clear(); }

 private:
  common::Bytes buf_;
};

/// Cursor-style deserializer over a span. All getters throw CodecError on
/// truncated or malformed input.
class RecordReaderCursor {
 public:
  explicit RecordReaderCursor(common::ByteSpan data) : data_(data) {}

  std::uint64_t get_varint();
  std::int64_t get_signed();
  double get_double();
  std::string get_string();
  common::Bytes get_bytes();
  bool get_bool();

  /// True when the whole record has been consumed.
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n) const {
    if (pos_ + n > data_.size()) {
      throw compress::CodecError("serdes: truncated record");
    }
  }

  common::ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace strato::dataflow
