// Job execution.
//
// Instantiates one channel per edge and runs every vertex on its own
// thread (Nephele schedules tasks onto VMs; here each task thread stands
// for a task on its VM, and network channels share the configured link
// exactly like co-located flows share a NIC).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dataflow/job.h"

namespace strato::dataflow {

/// Execution-wide configuration.
struct ExecutorConfig {
  /// Bandwidth shared by all network channels, bytes/second (the paper's
  /// 1 GBit/s link). <= 0 disables throttling.
  double shared_link_bytes_s = 117e6;
  /// Directory for file-channel spills.
  std::string spill_dir = "/tmp";
  /// Optional vertex -> host placement (size must equal the job's vertex
  /// count when non-empty). Nephele schedules tasks onto VMs; here the
  /// placement decides which network channels contend: all edges leaving
  /// the same source host share that host's egress NIC (one LinkShare of
  /// shared_link_bytes_s each), and edges between co-located vertices
  /// bypass the NIC entirely (loopback). Empty = the legacy behaviour of
  /// one global link for every network channel.
  std::vector<int> placement;
};

/// Per-job outcome.
struct JobStats {
  double wall_seconds = 0.0;
  /// One entry per edge, in graph edge order.
  std::vector<ChannelStats> channels;
  /// First task error (empty = success).
  std::string error;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Runs job graphs.
class Executor {
 public:
  explicit Executor(ExecutorConfig config = {}) : config_(std::move(config)) {}

  /// Execute `job` to completion; returns per-channel statistics.
  JobStats execute(const JobGraph& job);

 private:
  ExecutorConfig config_;
};

}  // namespace strato::dataflow
