// Umbrella header: the library's public surface.
//
// Fine-grained headers remain available for targeted includes; this one
// pulls in everything an application embedding adaptive compression
// typically needs.
#pragma once

// Foundations.
#include "common/bytes.h"        // byte spans & little-endian helpers
#include "common/checksum.h"     // XXH64
#include "common/rng.h"          // seeded PRNGs
#include "common/sim_time.h"     // SimTime + Clock abstractions
#include "common/stats.h"        // running stats, samples, histograms

// Codecs and framing.
#include "compress/codec.h"      // Codec interface + NullCodec
#include "compress/deflate_lz.h" // LZ77 + Huffman rung
#include "compress/framing.h"    // self-contained block frames
#include "compress/heavy_lz.h"   // LZ77 + range coder (LZMA analogue)
#include "compress/lz77.h"       // FastLz / MediumLz (QuickLZ analogue)
#include "compress/registry.h"   // ordered compression-level ladders
#include "compress/streaming.h"  // cross-block (non-self-contained) mode

// The paper's contribution.
#include "core/baselines.h"      // related-work decision models
#include "core/controller.h"     // Algorithm 1
#include "core/policy.h"         // StaticPolicy / AdaptivePolicy
#include "core/rate_meter.h"     // application data rate over window t
#include "core/stream.h"         // compressing/decompressing streams
#include "core/tcp.h"            // real TCP transport
#include "core/throttled_pipe.h" // in-process rate-limited transport

// Workloads.
#include "corpus/entropy.h"
#include "corpus/generator.h"

// Dataflow framework (Nephele analogue).
#include "dataflow/channel.h"
#include "dataflow/executor.h"
#include "dataflow/job.h"
#include "dataflow/record.h"
#include "dataflow/serdes.h"
#include "dataflow/stdtasks.h"

// Monitoring.
#include "metrics/cpu.h"
#include "metrics/pid_stat.h"
#include "metrics/proc_stat.h"
#include "metrics/timeseries.h"
