#include "expkit/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace strato::expkit {

std::string render_boxplot(const std::string& label,
                           const common::FiveNumber& f, double lo, double hi,
                           std::size_t width) {
  const double span = hi - lo;
  const auto col = [&](double v) -> std::size_t {
    if (span <= 0) return 0;
    const double rel = (v - lo) / span;
    return static_cast<std::size_t>(
        std::clamp(rel, 0.0, 1.0) * static_cast<double>(width - 1));
  };
  std::string line(width, ' ');
  const std::size_t cmin = col(f.min), cq1 = col(f.q1), cmed = col(f.median),
                    cq3 = col(f.q3), cmax = col(f.max);
  for (std::size_t i = cmin; i <= cmax && i < width; ++i) line[i] = '-';
  for (std::size_t i = cq1; i <= cq3 && i < width; ++i) line[i] = '=';
  line[cmin] = '|';
  line[cmax] = '|';
  if (cq1 < width) line[cq1] = '[';
  if (cq3 < width) line[cq3] = ']';
  if (cmed < width) line[cmed] = '#';
  std::ostringstream os;
  os << "  " << label;
  if (label.size() < 22) os << std::string(22 - label.size(), ' ');
  os << line;
  return os.str();
}

std::string render_strip(const metrics::TimeSeries& series,
                         std::size_t columns, std::size_t height,
                         const std::string& unit) {
  std::ostringstream os;
  if (series.points().empty() || height == 0 || columns == 0) {
    return "  (no data)\n";
  }
  const double t0 = series.points().front().first.to_seconds();
  const double t1 = series.points().back().first.to_seconds();
  const double dt = std::max(1e-9, (t1 - t0) / static_cast<double>(columns));

  std::vector<double> vals(columns, 0.0);
  double peak = 0.0;
  for (std::size_t c = 0; c < columns; ++c) {
    vals[c] = series.at(
        common::SimTime::seconds(t0 + (static_cast<double>(c) + 0.5) * dt));
    peak = std::max(peak, vals[c]);
  }
  if (peak <= 0) peak = 1.0;
  for (std::size_t r = 0; r < height; ++r) {
    const double threshold =
        peak * static_cast<double>(height - r) / static_cast<double>(height);
    os << "  ";
    char axis[32];
    std::snprintf(axis, sizeof axis, "%8.0f |", threshold);
    os << axis;
    for (std::size_t c = 0; c < columns; ++c) {
      os << (vals[c] >= threshold - 1e-12 ? '#' : ' ');
    }
    os << "\n";
  }
  char footer[128];
  std::snprintf(footer, sizeof footer,
                "  %8s +%s\n  t: %.0fs .. %.0fs%s%s\n", "",
                std::string(columns, '-').c_str(), t0, t1,
                unit.empty() ? "" : "  unit: ", unit.c_str());
  os << footer;
  return os.str();
}

std::string render_level_strip(const metrics::TimeSeries& levels,
                               double duration_s, std::size_t columns) {
  static const char kGlyph[] = {'N', 'L', 'M', 'H'};
  std::ostringstream os;
  os << "  level:   |";
  for (std::size_t c = 0; c < columns; ++c) {
    const double t =
        duration_s * (static_cast<double>(c) + 0.5) / static_cast<double>(columns);
    const int lvl = std::clamp(
        static_cast<int>(levels.at(common::SimTime::seconds(t), 0.0)), 0, 3);
    os << kGlyph[lvl];
  }
  os << "|\n";
  return os.str();
}

}  // namespace strato::expkit
