// The paper's published numbers, for paper-vs-measured comparisons.
//
// Table II of Hovestadt et al., IPDPS 2011: average completion times in
// seconds (SD in a parallel table) for the 50 GB sample job, by policy,
// data compressibility and number of concurrent background TCP flows.
#pragma once

#include <array>

namespace strato::expkit {

/// Policy row order of Table II.
enum PaperPolicy { kNo = 0, kLight, kMedium, kHeavy, kDynamic };
inline constexpr std::array<const char*, 5> kPolicyNames = {
    "NO", "LIGHT", "MEDIUM", "HEAVY", "DYNAMIC"};

/// Corpus column order of Table II.
inline constexpr std::array<const char*, 3> kClassNames = {"HIGH", "MODERATE",
                                                           "LOW"};

/// kPaperTable2[bg_flows][policy][class] -> mean seconds.
inline constexpr double kPaperTable2[4][5][3] = {
    // 0 concurrent connections
    {{569, 567, 566},
     {252, 629, 688},
     {347, 795, 1095},
     {1881, 5760, 9011},
     {265, 635, 602}},
    // 1 concurrent connection
    {{908, 896, 903},
     {258, 624, 927},
     {367, 840, 1241},
     {1974, 5979, 9326},
     {273, 648, 920}},
    // 2 concurrent connections
    {{1393, 1292, 1313},
     {312, 756, 1440},
     {378, 896, 1481},
     {1985, 6130, 9597},
     {363, 920, 1452}},
    // 3 concurrent connections
    {{1642, 1584, 1638},
     {358, 1027, 1555},
     {397, 953, 1829},
     {1994, 6218, 9278},
     {411, 1075, 1865}},
};

/// Corresponding standard deviations.
inline constexpr double kPaperTable2Sd[4][5][3] = {
    {{3, 7, 3}, {3, 2, 3}, {6, 5, 8}, {23, 25, 30}, {4, 4, 3}},
    {{6, 6, 6}, {3, 7, 8}, {3, 5, 42}, {24, 34, 30}, {3, 16, 13}},
    {{75, 67, 39}, {14, 23, 87}, {10, 38, 27}, {26, 31, 45}, {22, 18, 40}},
    {{70, 120, 70}, {10, 65, 17}, {3, 55, 100}, {21, 34, 49}, {35, 37, 114}},
};

/// The paper's headline claims, checked by tests/benches:
/// DYNAMIC is at most 22 % worse than the fastest static level...
inline constexpr double kPaperDynamicBound = 0.22;
/// ...and improves throughput over NO compression by up to a factor of 4.
inline constexpr double kPaperSpeedupClaim = 4.0;

}  // namespace strato::expkit
