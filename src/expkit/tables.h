// Console table rendering for the benchmark harness.
//
// The benches print the same rows the paper's tables/figures report,
// side by side with the paper's numbers where available. This is plain
// fixed-width formatting — no dependencies.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace strato::expkit {

/// Simple fixed-width table: add rows of cells, print aligned.
class TablePrinter {
 public:
  /// Header row.
  void header(std::vector<std::string> cells);
  /// Body row.
  void row(std::vector<std::string> cells);
  /// Render with column alignment; includes a separator under the header.
  [[nodiscard]] std::string str() const;

 private:
  std::vector<std::vector<std::string>> rows_;
  bool has_header_ = false;
};

/// "123 (4)" — the paper's mean (SD) cell format.
std::string mean_sd(double mean, double sd);

/// Format seconds with no decimals (completion times) or short fixed
/// precision for small values.
std::string fmt_seconds(double s);

/// Fixed-precision helper.
std::string fmt(double v, int decimals = 1);

}  // namespace strato::expkit
