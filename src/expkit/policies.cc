#include "expkit/policies.h"

#include <stdexcept>

namespace strato::expkit {

std::vector<core::TrainedLevelModel> trained_from_model(
    const vsim::CodecModel& model, corpus::Compressibility c,
    double codec_speed_factor) {
  std::vector<core::TrainedLevelModel> out;
  for (int l = 0; l < vsim::CodecModel::kNumLevels; ++l) {
    const auto& b = model.get(l, c);
    out.push_back({b.compress_bytes_s * codec_speed_factor, b.ratio});
  }
  return out;
}

std::unique_ptr<core::CompressionPolicy> make_policy(
    const std::string& name, vsim::TransferExperiment& exp, double alpha,
    common::SimTime window) {
  for (int l = 0; l < vsim::CodecModel::kNumLevels; ++l) {
    static const char* kStatic[] = {"NO", "LIGHT", "MEDIUM", "HEAVY"};
    if (name == kStatic[l]) {
      return std::make_unique<core::StaticPolicy>(l, name);
    }
  }
  if (name == "DYNAMIC") {
    core::AdaptiveConfig cfg;
    cfg.alpha = alpha;
    cfg.num_levels = vsim::CodecModel::kNumLevels;
    return std::make_unique<core::AdaptivePolicy>(cfg, window);
  }
  if (name == "METRIC") {
    return std::make_unique<core::MetricDrivenPolicy>(
        trained_from_model(exp.config().model, exp.config().data,
                           exp.config().codec_speed_factor),
        exp.metrics(), window);
  }
  if (name == "QUEUE") {
    // In the simulator there is no materialised FIFO; approximate the
    // occupancy signal with the displayed-bandwidth/capacity ratio (a full
    // queue corresponds to the link running behind the compressor).
    auto& metrics = exp.metrics();
    const double cap = vsim::profile(exp.config().tech).net_bytes_s;
    return std::make_unique<core::QueuePolicy>(
        [&metrics, cap] {
          return 1.0 - std::min(1.0, metrics.displayed_bandwidth() / cap);
        },
        vsim::CodecModel::kNumLevels, window);
  }
  throw std::invalid_argument("unknown policy: " + name);
}

}  // namespace strato::expkit
