// Policy factories shared by benches and tests.
#pragma once

#include <memory>
#include <string>

#include "core/baselines.h"
#include "core/policy.h"
#include "vsim/transfer.h"

namespace strato::expkit {

/// The paper's five Table II policies by name ("NO", "LIGHT", "MEDIUM",
/// "HEAVY", "DYNAMIC") plus the related-work baselines ("METRIC",
/// "QUEUE"). `exp` supplies the displayed-metric feed for METRIC and must
/// outlive the returned policy. @throws std::invalid_argument on unknown
/// names.
std::unique_ptr<core::CompressionPolicy> make_policy(
    const std::string& name, vsim::TransferExperiment& exp,
    double alpha = 0.2,
    common::SimTime window = common::SimTime::seconds(2));

/// Offline "training" table for the METRIC baseline, derived from a codec
/// model and corpus class (what a calibration phase on an unloaded
/// machine would have measured).
std::vector<core::TrainedLevelModel> trained_from_model(
    const vsim::CodecModel& model, corpus::Compressibility c,
    double codec_speed_factor = 1.0);

}  // namespace strato::expkit
