// ASCII renderings of the paper's figures for bench output.
//
// Boxplots (Fig. 2 / Fig. 3) render as labelled |--[==|==]--| strips on a
// shared axis; timelines (Fig. 4-6) as fixed-height strip charts with one
// column per time bucket.
#pragma once

#include <string>
#include <vector>

#include "common/stats.h"
#include "metrics/timeseries.h"

namespace strato::expkit {

/// One boxplot row on a shared [lo, hi] axis.
std::string render_boxplot(const std::string& label,
                           const common::FiveNumber& f, double lo, double hi,
                           std::size_t width = 60);

/// A strip chart of `series` resampled to `columns` buckets between its
/// first and last sample, `height` rows tall. `unit` is appended to the
/// axis labels.
std::string render_strip(const metrics::TimeSeries& series,
                         std::size_t columns = 72, std::size_t height = 8,
                         const std::string& unit = "");

/// The compression-level strip of Figs. 4-6: one character per bucket
/// (N / L / M / H for levels 0-3).
std::string render_level_strip(const metrics::TimeSeries& levels,
                               double duration_s, std::size_t columns = 72);

}  // namespace strato::expkit
