#include "expkit/tables.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace strato::expkit {

void TablePrinter::header(std::vector<std::string> cells) {
  rows_.insert(rows_.begin(), std::move(cells));
  has_header_ = true;
}

void TablePrinter::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::str() const {
  std::vector<std::size_t> widths;
  for (const auto& r : rows_) {
    if (r.size() > widths.size()) widths.resize(r.size(), 0);
    for (std::size_t c = 0; c < r.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  std::ostringstream os;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const auto& r = rows_[i];
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      // Left-align the first column, right-align the rest.
      const auto pad = widths[c] - r[c].size();
      if (c == 0) {
        os << r[c] << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << r[c];
      }
    }
    os << "\n";
    if (i == 0 && has_header_) {
      std::size_t total = 0;
      for (std::size_t c = 0; c < widths.size(); ++c) {
        total += widths[c] + (c == 0 ? 0 : 2);
      }
      os << std::string(total, '-') << "\n";
    }
  }
  return os.str();
}

std::string mean_sd(double mean, double sd) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.0f (%.0f)", mean, sd);
  return buf;
}

std::string fmt_seconds(double s) {
  char buf[64];
  if (s >= 100) {
    std::snprintf(buf, sizeof buf, "%.0f", s);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f", s);
  }
  return buf;
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace strato::expkit
