#include "core/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace strato::core {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Block until `fd` is ready for `events` (POLLIN/POLLOUT), retrying
/// EINTR. Used to preserve write-all/read-something semantics when the fd
/// is O_NONBLOCK (the async transport shares connections with blocking
/// helpers in tests).
void wait_ready(int fd, short events) {
  pollfd p{};
  p.fd = fd;
  p.events = events;
  for (;;) {
    const int r = ::poll(&p, 1, -1);
    if (r >= 0) return;
    if (errno != EINTR) fail("poll");
  }
}

/// Common per-connection socket options. SIGPIPE audit: Linux has no
/// SO_NOSIGPIPE, so every ::send carries MSG_NOSIGNAL instead; on BSDs
/// the option suppresses the signal for all writers of the fd.
void configure_connection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
#ifdef SO_NOSIGPIPE
  ::setsockopt(fd, SOL_SOCKET, SO_NOSIGPIPE, &one, sizeof one);
#endif
}

}  // namespace

TcpConnection::~TcpConnection() { close(); }

TcpConnection& TcpConnection::operator=(TcpConnection&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

TcpConnection TcpConnection::connect(const std::string& host,
                                     std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("bad address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    fail("connect");
  }
  configure_connection(fd);
  return TcpConnection(fd);
}

void TcpConnection::write(common::ByteSpan data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking fd with a full kernel buffer: keep the blocking
        // write-all contract by waiting for writability.
        wait_ready(fd_, POLLOUT);
        continue;
      }
      fail("send");
    }
    off += static_cast<std::size_t>(n);
  }
}

common::Bytes TcpConnection::read(std::size_t max_bytes) {
  common::Bytes buf(max_bytes);
  for (;;) {
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        wait_ready(fd_, POLLIN);
        continue;
      }
      fail("recv");
    }
    buf.resize(static_cast<std::size_t>(n));
    return buf;
  }
}

void TcpConnection::shutdown_send() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void TcpConnection::set_nonblocking(bool on) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) fail("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (flags != want && ::fcntl(fd_, F_SETFL, want) != 0) {
    fail("fcntl(F_SETFL)");
  }
}

void TcpConnection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(std::uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) fail("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    fail("bind");
  }
  if (::listen(fd_, backlog) != 0) fail("listen");
  socklen_t len = sizeof addr;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

TcpConnection TcpListener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      fail("accept");
    }
    // Accepted sockets get the same options as connected ones (the old
    // code left TCP_NODELAY unset server-side — an audit finding: the
    // server's small framed writes sat in Nagle buffers).
    configure_connection(fd);
    return TcpConnection(fd);
  }
}

}  // namespace strato::core
