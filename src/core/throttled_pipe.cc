#include "core/throttled_pipe.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace strato::core {

void LinkShare::acquire(std::uint64_t n) {
  // Serialise claims; sleep until the bucket can cover this grant. Claims
  // are granted in lock-acquisition order, which approximates per-flow
  // fairness at block granularity. The lock is dropped around the sleep
  // (one scoped acquisition per probe) so other flows can claim meanwhile.
  for (;;) {
    common::SimTime wait;
    {
      common::MutexLock lk(mu_);
      const common::SimTime now = clock_.now();
      if (bucket_.try_consume(n, now)) return;
      wait = bucket_.ready_at(n, now) - now;
    }
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(std::max<std::int64_t>(wait.nanos(), 1000)));
  }
}

ThrottledPipe::ThrottledPipe(std::shared_ptr<LinkShare> link,
                             std::size_t capacity)
    : link_(std::move(link)), capacity_(capacity == 0 ? 1 : capacity) {}

void ThrottledPipe::write(common::ByteSpan data) {
  if (chaos_.empty()) {
    write_clean(data);
    return;
  }
  // Walk the write in segments, applying each scripted event when its
  // byte coordinate is crossed. Coordinates count bytes the writer
  // *attempted* (pre-drop), so a schedule replays identically regardless
  // of how the application chunks its writes.
  const auto& events = chaos_.events();
  const std::uint64_t base = chaos_offset_;
  std::size_t pos = 0;
  while (pos < data.size()) {
    while (chaos_idx_ < events.size() &&
           events[chaos_idx_].at < base + pos) {
      ++chaos_idx_;  // events that landed inside an already-written span
    }
    std::size_t next = data.size();
    if (chaos_idx_ < events.size() &&
        events[chaos_idx_].at < base + data.size()) {
      next = static_cast<std::size_t>(events[chaos_idx_].at - base);
    }
    if (next > pos) {
      write_clean(data.subspan(pos, next - pos));
      pos = next;
      continue;
    }
    const common::ChaosEvent& ev = events[chaos_idx_++];
    switch (ev.kind) {
      case common::ChaosKind::kStall:
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            std::max<std::uint64_t>(ev.stall_ns, 1)));
        break;
      case common::ChaosKind::kDrop:
        pos += static_cast<std::size_t>(std::min<std::uint64_t>(
            std::max<std::uint64_t>(ev.span, 1), data.size() - pos));
        break;
      case common::ChaosKind::kCorrupt: {
        const std::uint8_t flipped =
            data[pos] ^ (ev.xor_mask == 0 ? std::uint8_t{0xFF} : ev.xor_mask);
        write_clean(common::ByteSpan(&flipped, 1));
        ++pos;
        break;
      }
      case common::ChaosKind::kBlackout:
        break;  // time-indexed; meaningless on a byte pipe
    }
  }
  chaos_offset_ = base + data.size();
}

void ThrottledPipe::write_clean(common::ByteSpan data) {
  std::size_t off = 0;
  while (off < data.size()) {
    // Move the stream through the link in MTU-ish grains so concurrent
    // pipes interleave like packets on a wire.
    const std::size_t grain = std::min<std::size_t>(data.size() - off, 16384);
    if (link_) link_->acquire(grain);
    {
      common::MutexLock lk(mu_);
      while (buf_.size() + grain > capacity_ && !closed_) writable_.wait(mu_);
      if (closed_) return;  // reader gone; drop silently like a RST socket
      buf_.insert(buf_.end(), data.begin() + static_cast<std::ptrdiff_t>(off),
                  data.begin() + static_cast<std::ptrdiff_t>(off + grain));
      transferred_ += grain;
      off += grain;
    }
    readable_.notify_one();
  }
}

void ThrottledPipe::close() {
  {
    common::MutexLock lk(mu_);
    closed_ = true;
  }
  readable_.notify_all();
  writable_.notify_all();
}

common::Bytes ThrottledPipe::read(std::size_t max_bytes) {
  common::Bytes out;
  {
    common::MutexLock lk(mu_);
    while (buf_.empty() && !closed_) readable_.wait(mu_);
    const std::size_t n = std::min(max_bytes, buf_.size());
    out.assign(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(n));
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(n));
  }
  writable_.notify_all();
  return out;
}

std::uint64_t ThrottledPipe::transferred() const {
  common::MutexLock lk(mu_);
  return transferred_;
}

}  // namespace strato::core
