// Compression policies.
//
// A CompressionPolicy decides which level each outgoing block is
// compressed with. The channels (real transport and simulator alike) call
// level() before encoding a block and on_block() after the block has been
// accepted downstream, with the current time. The paper's evaluation
// compares four static policies (NO/LIGHT/MEDIUM/HEAVY) against the
// adaptive one (DYNAMIC); related-work baselines live in baselines.h.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "common/sim_time.h"
#include "core/controller.h"
#include "core/rate_meter.h"

namespace strato::core {

/// Strategy interface: which compression level to use next.
class CompressionPolicy {
 public:
  virtual ~CompressionPolicy() = default;

  /// Level to apply to the next block.
  [[nodiscard]] virtual int level() const = 0;

  /// Notify: `raw_bytes` of application data were accepted by the channel
  /// at time `now` (i.e. handed to compression + the I/O layer).
  virtual void on_block(std::size_t raw_bytes, common::SimTime now) = 0;

  /// Display name ("DYNAMIC", "LIGHT", ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Fixed level chosen before execution — the paper's static baselines.
class StaticPolicy final : public CompressionPolicy {
 public:
  StaticPolicy(int level, std::string name)
      : level_(level), name_(std::move(name)) {}

  [[nodiscard]] int level() const override { return level_; }
  void on_block(std::size_t, common::SimTime) override {}
  [[nodiscard]] std::string name() const override { return name_; }

 private:
  int level_;
  std::string name_;
};

/// The paper's scheme (DYNAMIC): RateMeter feeding Algorithm 1 every t
/// seconds.
class AdaptivePolicy final : public CompressionPolicy {
 public:
  /// Trace hook fired on every closed decision window.
  using TraceFn =
      std::function<void(common::SimTime now, double cdr, const Decision&)>;

  /// @param config  Algorithm 1 tunables (alpha, levels, backoff)
  /// @param window  decision interval t (paper: 2 s)
  AdaptivePolicy(AdaptiveConfig config, common::SimTime window)
      : controller_(config), meter_(window) {}

  [[nodiscard]] int level() const override { return level_; }

  void on_block(std::size_t raw_bytes, common::SimTime now) override {
    meter_.on_bytes(raw_bytes, now);
    if (const auto rate = meter_.poll(now)) {
      const Decision dec = controller_.on_window(*rate);
      level_ = dec.level;
      if (trace_) trace_(now, *rate, dec);
    }
  }

  [[nodiscard]] std::string name() const override { return "DYNAMIC"; }

  /// Observe decisions (used by the timeline benches).
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }

  [[nodiscard]] const AdaptiveController& controller() const {
    return controller_;
  }
  [[nodiscard]] const RateMeter& meter() const { return meter_; }

 private:
  AdaptiveController controller_;
  RateMeter meter_;
  int level_ = 0;
  TraceFn trace_;
};

}  // namespace strato::core
