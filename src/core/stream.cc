#include "core/stream.h"

#include <cstring>

#include "common/buffer_pool.h"

namespace strato::core {

CompressingWriter::CompressingWriter(ByteSink& sink,
                                     const compress::CodecRegistry& registry,
                                     CompressionPolicy& policy,
                                     const common::Clock& clock,
                                     std::size_t block_size,
                                     std::size_t worker_count,
                                     std::size_t pipeline_depth)
    : sink_(sink),
      registry_(registry),
      policy_(policy),
      clock_(clock),
      block_size_(block_size == 0 ? compress::kDefaultBlockSize : block_size),
      buffer_(block_size_),
      blocks_per_level_(registry.level_count(), 0) {
  if (worker_count > 1) {
    compress::PipelineConfig cfg;
    cfg.worker_count = worker_count;
    cfg.depth = pipeline_depth;
    pipeline_ = std::make_unique<compress::ParallelBlockPipeline>(
        registry, cfg,
        [this](common::ByteSpan frame, std::size_t raw_size, int level) {
          account_frame(frame, raw_size, level);
        });
  }
}

void CompressingWriter::write(common::ByteSpan data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t n =
        std::min(data.size() - off, block_size_ - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data() + off, n);
    buffered_ += n;
    off += n;
    if (buffered_ == block_size_) emit_block();
  }
}

void CompressingWriter::flush() {
  if (buffered_ > 0) emit_block();
  if (pipeline_) pipeline_->flush();
  sink_.flush();
}

void CompressingWriter::account_frame(common::ByteSpan frame,
                                      std::size_t raw_size, int level) {
  // The sink write may have blocked (backpressure); sample time after it
  // returns so the policy sees the achievable application data rate. With
  // the parallel pipeline this runs on the submitting thread in submission
  // order, so the rate meter aggregates accepted bytes across all workers.
  sink_.write(frame);
  {
    common::MutexLock lk(stats_mu_);
    raw_bytes_ += raw_size;
    framed_bytes_ += frame.size();
    ++blocks_per_level_[static_cast<std::size_t>(level)];
  }
  policy_.on_block(raw_size, clock_.now());
}

void CompressingWriter::emit_block() {
  const int max_level = static_cast<int>(registry_.level_count()) - 1;
  const int level = std::clamp(policy_.level(), 0, max_level);
  const common::ByteSpan payload(buffer_.data(), buffered_);
  if (pipeline_) {
    pipeline_->submit(level, payload);
    buffered_ = 0;
    return;
  }
  const auto& rung = registry_.level(static_cast<std::size_t>(level));
  common::PoolLease frame(common::BufferPool::shared(),
                             compress::kFrameHeaderSize + payload.size());
  compress::encode_block_into(*rung.codec, static_cast<std::uint8_t>(level),
                              payload, *frame);
  account_frame(*frame, buffered_, level);
  buffered_ = 0;
}

}  // namespace strato::core
