#include "core/stream.h"

#include <cstring>

namespace strato::core {

CompressingWriter::CompressingWriter(ByteSink& sink,
                                     const compress::CodecRegistry& registry,
                                     CompressionPolicy& policy,
                                     const common::Clock& clock,
                                     std::size_t block_size)
    : sink_(sink),
      registry_(registry),
      policy_(policy),
      clock_(clock),
      block_size_(block_size == 0 ? compress::kDefaultBlockSize : block_size),
      buffer_(block_size_),
      blocks_per_level_(registry.level_count(), 0) {}

void CompressingWriter::write(common::ByteSpan data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const std::size_t n =
        std::min(data.size() - off, block_size_ - buffered_);
    std::memcpy(buffer_.data() + buffered_, data.data() + off, n);
    buffered_ += n;
    off += n;
    if (buffered_ == block_size_) emit_block();
  }
}

void CompressingWriter::flush() {
  if (buffered_ > 0) emit_block();
  sink_.flush();
}

void CompressingWriter::emit_block() {
  const int max_level = static_cast<int>(registry_.level_count()) - 1;
  const int level = std::clamp(policy_.level(), 0, max_level);
  const auto& rung = registry_.level(static_cast<std::size_t>(level));
  const common::ByteSpan payload(buffer_.data(), buffered_);
  const common::Bytes frame = compress::encode_block(
      *rung.codec, static_cast<std::uint8_t>(level), payload);
  sink_.write(frame);
  // The sink write may have blocked (backpressure); sample time after it
  // returns so the policy sees the achievable application data rate.
  raw_bytes_ += buffered_;
  framed_bytes_ += frame.size();
  ++blocks_per_level_[static_cast<std::size_t>(level)];
  policy_.on_block(buffered_, clock_.now());
  buffered_ = 0;
}

}  // namespace strato::core
