// Real TCP transport.
//
// The paper's network channels are TCP connections; the in-process
// ThrottledPipe stands in for them in unit tests, but the library also
// works over actual sockets. Minimal blocking RAII wrappers: a listener,
// a connection usable as ByteSink (sender side) and chunk reader
// (receiver side). Loopback integration tests drive the full adaptive
// pipeline over a genuine kernel TCP stack.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "core/stream.h"

namespace strato::core {

/// Connected TCP stream (blocking I/O). Movable, closes on destruction.
class TcpConnection final : public ByteSink {
 public:
  TcpConnection() = default;
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection() override;

  TcpConnection(TcpConnection&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  TcpConnection& operator=(TcpConnection&& o) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Connect to host:port. @throws std::runtime_error on failure.
  static TcpConnection connect(const std::string& host, std::uint16_t port);

  /// ByteSink: write all bytes (loops over partial writes).
  /// @throws std::runtime_error on a broken connection.
  void write(common::ByteSpan data) override;

  /// Read up to `max_bytes`; empty result = orderly EOF.
  /// @throws std::runtime_error on socket errors.
  common::Bytes read(std::size_t max_bytes);

  /// Half-close the sending direction (receiver sees EOF after draining).
  void shutdown_send();

  void close();
  [[nodiscard]] bool valid() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1 on an ephemeral (or given) port.
class TcpListener {
 public:
  /// @param port 0 = pick an ephemeral port (see port()).
  explicit TcpListener(std::uint16_t port = 0);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Accept one connection (blocking).
  TcpConnection accept();

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace strato::core
