// Real TCP transport.
//
// The paper's network channels are TCP connections; the in-process
// ThrottledPipe stands in for them in unit tests, but the library also
// works over actual sockets. Minimal RAII wrappers: a listener, a
// connection usable as ByteSink (sender side) and chunk reader (receiver
// side). The blocking read/write paths retry EINTR and wait out EAGAIN
// via poll(2), so they keep blocking semantics even on an O_NONBLOCK fd;
// the async transport (core/transport.h) drives the same connections
// non-blocking through core::EpollLoop.
//
// SIGPIPE safety: every send uses MSG_NOSIGNAL (and SO_NOSIGPIPE where
// that exists instead), so a peer reset surfaces as std::runtime_error
// (EPIPE/ECONNRESET), never a process-killing signal.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "core/stream.h"

namespace strato::core {

/// Connected TCP stream (blocking I/O by default). Movable, closes on
/// destruction.
class TcpConnection final : public ByteSink {
 public:
  TcpConnection() = default;
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection() override;

  TcpConnection(TcpConnection&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  TcpConnection& operator=(TcpConnection&& o) noexcept;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Connect to host:port. @throws std::runtime_error on failure.
  static TcpConnection connect(const std::string& host, std::uint16_t port);

  /// ByteSink: write all bytes (loops over partial writes; retries EINTR;
  /// poll()-waits on EAGAIN so a non-blocking fd still writes-all).
  /// @throws std::runtime_error on a broken connection (EPIPE surfaces
  /// here as an exception, not a SIGPIPE).
  void write(common::ByteSpan data) override;

  /// Read up to `max_bytes`; empty result = orderly EOF. Retries EINTR
  /// and poll()-waits on EAGAIN (blocking semantics on any fd).
  /// @throws std::runtime_error on socket errors (e.g. ECONNRESET).
  common::Bytes read(std::size_t max_bytes);

  /// Half-close the sending direction (receiver sees EOF after draining).
  void shutdown_send();

  /// Toggle O_NONBLOCK — the async transport runs connections
  /// non-blocking. @throws std::runtime_error on fcntl failure.
  void set_nonblocking(bool on);

  void close();
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  /// Raw descriptor for event-loop registration (still owned by this
  /// object).
  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1 on an ephemeral (or given) port.
class TcpListener {
 public:
  /// @param port    0 = pick an ephemeral port (see port()).
  /// @param backlog accept queue depth; the soak opens hundreds of
  ///                connections before the acceptor drains them.
  explicit TcpListener(std::uint16_t port = 0, int backlog = 128);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Accept one connection (blocking; retries EINTR).
  TcpConnection accept();

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace strato::core
