#include "core/baselines.h"

#include <algorithm>
#include <limits>

namespace strato::core {

MetricDrivenPolicy::MetricDrivenPolicy(std::vector<TrainedLevelModel> trained,
                                       const SystemMetricsProvider& metrics,
                                       common::SimTime period)
    : trained_(std::move(trained)), metrics_(metrics), period_(period) {}

void MetricDrivenPolicy::on_block(std::size_t, common::SimTime now) {
  if (!started_) {
    started_ = true;
    next_decision_ = now + period_;
    decide();
    return;
  }
  if (now >= next_decision_) {
    next_decision_ = now + period_;
    decide();
  }
}

void MetricDrivenPolicy::decide() {
  const double idle = std::clamp(metrics_.displayed_cpu_idle(), 0.01, 1.0);
  const double bw =
      std::max(metrics_.displayed_bandwidth(), 1.0);  // bytes/s
  double best_cost = std::numeric_limits<double>::infinity();
  int best_level = 0;
  for (std::size_t l = 0; l < trained_.size(); ++l) {
    const auto& m = trained_[l];
    // Seconds to move one raw byte through a pipelined compress+send
    // stage, believing the displayed metrics.
    const double compress_s =
        m.compress_bytes_s > 0 ? 1.0 / (m.compress_bytes_s * idle) : 0.0;
    const double transmit_s = m.ratio / bw;
    const double cost = std::max(compress_s, transmit_s);
    if (cost < best_cost) {
      best_cost = cost;
      best_level = static_cast<int>(l);
    }
  }
  level_ = best_level;
}

QueuePolicy::QueuePolicy(std::function<double()> fill_probe, int num_levels,
                         common::SimTime period, double deadband)
    : fill_probe_(std::move(fill_probe)),
      num_levels_(std::max(1, num_levels)),
      period_(period),
      deadband_(deadband) {}

void QueuePolicy::on_block(std::size_t, common::SimTime now) {
  if (!started_) {
    started_ = true;
    next_decision_ = now + period_;
    last_fill_ = fill_probe_();
    return;
  }
  if (now < next_decision_) return;
  next_decision_ = now + period_;
  const double fill = fill_probe_();
  // Growing queue: the sender drains slower than we compress -> the
  // network is the bottleneck -> spend more CPU on compression. Draining
  // queue: compression is the bottleneck -> back off.
  if (fill > last_fill_ + deadband_) {
    level_ = std::min(level_ + 1, num_levels_ - 1);
  } else if (fill < last_fill_ - deadband_) {
    level_ = std::max(level_ - 1, 0);
  }
  last_fill_ = fill;
}

}  // namespace strato::core
