// Related-work baseline decision models (Section V).
//
// Two families the paper contrasts against:
//
//  * Metric-driven (Krintz & Sucu's ACE, NCTCSys, Wiseman et al.): use an
//    offline-trained table of per-level compression speed/ratio plus the
//    *displayed* CPU idle time and bandwidth estimate to pick the level
//    with the smallest predicted transfer time. Inside a VM the displayed
//    metrics are skewed (Section II), which is exactly how this model
//    goes wrong — reproduced in bench_ablation_models.
//
//  * Queue-occupancy (Jeannot, Knutsson & Björkman): compression and
//    sending are decoupled by a FIFO; a growing queue means the network is
//    the bottleneck (raise the level), a draining queue means compression
//    is (lower it).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/policy.h"

namespace strato::core {

/// What the guest OS *displays* — possibly wildly wrong in a VM.
class SystemMetricsProvider {
 public:
  virtual ~SystemMetricsProvider() = default;
  /// Displayed idle CPU fraction in [0, 1].
  [[nodiscard]] virtual double displayed_cpu_idle() const = 0;
  /// Displayed available I/O bandwidth estimate in bytes/second.
  [[nodiscard]] virtual double displayed_bandwidth() const = 0;
};

/// Offline-training data: per level, raw-compression speed and ratio.
struct TrainedLevelModel {
  double compress_bytes_s = 0.0;  ///< raw bytes/s on an *unloaded* machine
  double ratio = 1.0;             ///< compressed/raw
};

/// Metric-driven baseline: argmin over levels of predicted seconds per raw
/// byte, max(compress_time, transmit_time) assuming a pipelined sender:
///   compress = 1 / (speed * displayed_idle)
///   transmit = ratio / displayed_bandwidth
class MetricDrivenPolicy final : public CompressionPolicy {
 public:
  MetricDrivenPolicy(std::vector<TrainedLevelModel> trained,
                     const SystemMetricsProvider& metrics,
                     common::SimTime period);

  [[nodiscard]] int level() const override { return level_; }
  void on_block(std::size_t raw_bytes, common::SimTime now) override;
  [[nodiscard]] std::string name() const override { return "METRIC"; }

 private:
  void decide();

  std::vector<TrainedLevelModel> trained_;
  const SystemMetricsProvider& metrics_;
  common::SimTime period_;
  common::SimTime next_decision_;
  bool started_ = false;
  int level_ = 0;
};

/// Queue-occupancy baseline: watch a FIFO fill probe; rising occupancy
/// raises the level, falling occupancy lowers it.
class QueuePolicy final : public CompressionPolicy {
 public:
  /// @param fill_probe returns queue occupancy in [0, 1]
  /// @param num_levels ladder size
  /// @param period     reevaluation interval
  /// @param deadband   occupancy delta ignored as noise
  QueuePolicy(std::function<double()> fill_probe, int num_levels,
              common::SimTime period, double deadband = 0.05);

  [[nodiscard]] int level() const override { return level_; }
  void on_block(std::size_t raw_bytes, common::SimTime now) override;
  [[nodiscard]] std::string name() const override { return "QUEUE"; }

 private:
  std::function<double()> fill_probe_;
  int num_levels_;
  common::SimTime period_;
  common::SimTime next_decision_;
  bool started_ = false;
  double deadband_;
  double last_fill_ = -1.0;
  int level_ = 0;
};

}  // namespace strato::core
