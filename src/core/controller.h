// Algorithm 1 — the paper's rate-based adaptive compression controller.
//
// GetNextCompressionLevel(cdr, pdr, ccl) from Section III-A, with the
// surrounding state the paper keeps "outside of the displayed algorithm"
// (Table I): the call counter c, the per-level exponential backoff array
// bck, the probe direction inc, and the previous-window rate pdr.
//
// Design goals encoded here (Section III):
//   * no training phase — all state starts neutral;
//   * no reliance on CPU / bandwidth metrics — the only input is the
//     application data rate cdr measured over the last t seconds;
//   * tolerance of throughput fluctuation via the dead band alpha and the
//     MB-granularity windows.
//
// Behaviour summary per decision window:
//   |cdr - pdr| <= alpha*pdr  : unchanged rate. Once the backoff expires
//                               (c >= 2^bck[ccl]) probe the neighbouring
//                               level in the direction of the last change.
//   cdr > pdr (+alpha band)   : improvement. Reward the current level:
//                               bck[ccl] += 1 (probes grow exponentially
//                               rarer), stay.
//   cdr < pdr (-alpha band)   : degradation. Reset bck[ccl] and revert the
//                               last change immediately.
#pragma once

#include <cstdint>

namespace strato::core {

/// Tunables of Algorithm 1.
struct AdaptiveConfig {
  /// Number of compression levels n (level 0 = no compression).
  int num_levels = 4;
  /// Dead band: relative change in application data rate tolerated before
  /// the algorithm reacts. The paper found 0.2 reasonable.
  double alpha = 0.2;
  /// Disable the exponential backoff (probe every window) — ablation knob;
  /// the paper's scheme always has it on.
  bool backoff_enabled = true;
  /// Cap on bck[] exponents to keep 2^bck in range. Large enough that it
  /// is never hit in realistic runs (2^30 windows of 2 s = 68 years).
  int max_backoff_exponent = 30;
};

/// Decision record returned by each controller step (for tracing).
struct Decision {
  int level = 0;        ///< ncl: level for the next window
  bool probed = false;  ///< this step was an optimistic probe
  bool reverted = false;///< this step reverted a degradation
};

/// Ladder sizes the POD controller state can represent. Every ladder in
/// the repository (standard 4, extended 5, test ladders up to 6) fits
/// with room to spare; AdaptiveController clamps num_levels to this.
inline constexpr int kMaxControllerLevels = 16;

/// The complete Algorithm 1 state as plain old data — 40 bytes, no heap.
///
/// The fleet simulator (vsim::FlowTable) embeds one of these per flow in
/// a structs-of-arrays store, so a million controllers are a million
/// array slots rather than a million heap objects. AdaptiveController is
/// a thin wrapper over the same state and the same step function; the
/// two cannot diverge.
struct ControllerState {
  std::int64_t c = 0;    ///< windows since the last level change
  double pdr = -1.0;     ///< previous-window rate; <0 = none seen yet
  std::int8_t ccl = 0;   ///< current compression level
  bool inc = true;       ///< last change direction was an increase
  /// Per-level exponential-backoff exponents (bck). Capped at
  /// max_backoff_exponent <= 30, so int8 storage is exact.
  std::int8_t bck[kMaxControllerLevels] = {};
};

/// One decision step of Algorithm 1 over externally-held state. Exactly
/// the body AdaptiveController::on_window runs; see the class comment for
/// semantics. `config.num_levels` must be in [1, kMaxControllerLevels].
Decision controller_step(const AdaptiveConfig& config, ControllerState& st,
                         double cdr);

/// The adaptive controller. Call on_window() once per decision interval t
/// with the application data rate observed during that interval.
class AdaptiveController {
 public:
  explicit AdaptiveController(AdaptiveConfig config = {});

  /// Feed the application data rate (bytes/second or any consistent unit)
  /// of the window that just closed; returns the level to apply next.
  /// With parallel block compression this is still the single aggregate
  /// rate at which the writer's sink accepted data — the decision model
  /// stays application-data-rate-only regardless of worker count.
  /// Non-finite or negative inputs are treated as "rate unchanged".
  Decision on_window(double cdr);

  /// Current compression level (ccl).
  [[nodiscard]] int level() const { return st_.ccl; }
  /// Probe direction: true if the last level change was an increase.
  [[nodiscard]] bool increasing() const { return st_.inc; }
  /// Backoff exponent of a level (bck[level]).
  [[nodiscard]] int backoff(int level) const;
  /// Windows since the last level change (c).
  [[nodiscard]] std::int64_t window_count() const { return st_.c; }
  [[nodiscard]] const AdaptiveConfig& config() const { return config_; }
  /// The embedded POD state (read-only snapshot).
  [[nodiscard]] const ControllerState& state() const { return st_; }

  /// Reset to the initial state (level 0, all backoffs 0, inc = true).
  void reset();

 private:
  AdaptiveConfig config_;
  ControllerState st_;
};

}  // namespace strato::core
