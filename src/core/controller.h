// Algorithm 1 — the paper's rate-based adaptive compression controller.
//
// GetNextCompressionLevel(cdr, pdr, ccl) from Section III-A, with the
// surrounding state the paper keeps "outside of the displayed algorithm"
// (Table I): the call counter c, the per-level exponential backoff array
// bck, the probe direction inc, and the previous-window rate pdr.
//
// Design goals encoded here (Section III):
//   * no training phase — all state starts neutral;
//   * no reliance on CPU / bandwidth metrics — the only input is the
//     application data rate cdr measured over the last t seconds;
//   * tolerance of throughput fluctuation via the dead band alpha and the
//     MB-granularity windows.
//
// Behaviour summary per decision window:
//   |cdr - pdr| <= alpha*pdr  : unchanged rate. Once the backoff expires
//                               (c >= 2^bck[ccl]) probe the neighbouring
//                               level in the direction of the last change.
//   cdr > pdr (+alpha band)   : improvement. Reward the current level:
//                               bck[ccl] += 1 (probes grow exponentially
//                               rarer), stay.
//   cdr < pdr (-alpha band)   : degradation. Reset bck[ccl] and revert the
//                               last change immediately.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace strato::core {

/// Tunables of Algorithm 1.
struct AdaptiveConfig {
  /// Number of compression levels n (level 0 = no compression).
  int num_levels = 4;
  /// Dead band: relative change in application data rate tolerated before
  /// the algorithm reacts. The paper found 0.2 reasonable.
  double alpha = 0.2;
  /// Disable the exponential backoff (probe every window) — ablation knob;
  /// the paper's scheme always has it on.
  bool backoff_enabled = true;
  /// Cap on bck[] exponents to keep 2^bck in range. Large enough that it
  /// is never hit in realistic runs (2^30 windows of 2 s = 68 years).
  int max_backoff_exponent = 30;
};

/// Decision record returned by each controller step (for tracing).
struct Decision {
  int level = 0;        ///< ncl: level for the next window
  bool probed = false;  ///< this step was an optimistic probe
  bool reverted = false;///< this step reverted a degradation
};

/// The adaptive controller. Call on_window() once per decision interval t
/// with the application data rate observed during that interval.
class AdaptiveController {
 public:
  explicit AdaptiveController(AdaptiveConfig config = {});

  /// Feed the application data rate (bytes/second or any consistent unit)
  /// of the window that just closed; returns the level to apply next.
  /// With parallel block compression this is still the single aggregate
  /// rate at which the writer's sink accepted data — the decision model
  /// stays application-data-rate-only regardless of worker count.
  /// Non-finite or negative inputs are treated as "rate unchanged".
  Decision on_window(double cdr);

  /// Current compression level (ccl).
  [[nodiscard]] int level() const { return ccl_; }
  /// Probe direction: true if the last level change was an increase.
  [[nodiscard]] bool increasing() const { return inc_; }
  /// Backoff exponent of a level (bck[level]).
  [[nodiscard]] int backoff(int level) const { return bck_.at(level); }
  /// Windows since the last level change (c).
  [[nodiscard]] std::int64_t window_count() const { return c_; }
  [[nodiscard]] const AdaptiveConfig& config() const { return config_; }

  /// Reset to the initial state (level 0, all backoffs 0, inc = true).
  void reset();

 private:
  [[nodiscard]] int clamp_probe(int ncl) const;

  AdaptiveConfig config_;
  int ccl_ = 0;
  std::int64_t c_ = 0;
  bool inc_ = true;
  std::vector<int> bck_;
  double pdr_ = -1.0;  // <0 = no window seen yet
};

}  // namespace strato::core
