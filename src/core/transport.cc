#include "core/transport.h"

#include <sys/socket.h>
#include <sys/uio.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace strato::core {

namespace {

/// iovec batch per sendmsg call. 64 segments x 256 KB default segments is
/// far past any kernel buffer; one call always empties or fills.
constexpr std::size_t kMaxIov = 64;

std::exception_ptr errno_error(const char* what, int err) {
  return std::make_exception_ptr(std::runtime_error(
      std::string(what) + ": " + std::strerror(err)));
}

}  // namespace

// ---------------------------------------------------------------------------
// AsyncSender

AsyncSender::AsyncSender(EpollLoop& loop, TcpConnection conn,
                         const compress::CodecRegistry& registry,
                         Config config, metrics::MetricRegistry* metrics)
    : loop_(loop),
      conn_(std::move(conn)),
      registry_(registry),
      config_(std::move(config)) {
  if (config_.segment_bytes == 0) config_.segment_bytes = 64 * 1024;
  if (config_.low_watermark > config_.high_watermark) {
    config_.low_watermark = config_.high_watermark / 2;
  }
  if (metrics != nullptr) {
    m_bytes_ = &metrics->counter("tx.wire_bytes");
    m_frames_ = &metrics->counter("tx.frames");
    m_stalls_ = &metrics->counter("tx.chaos_stalls");
    m_backpressure_ = &metrics->counter("tx.backpressure");
    m_writev_ = &metrics->counter("tx.sendmsg_calls");
    m_queued_ = &metrics->gauge("tx.queued_bytes");
    m_level_blocks_.reserve(registry_.level_count());
    for (std::size_t l = 0; l < registry_.level_count(); ++l) {
      m_level_blocks_.push_back(
          &metrics->counter("tx.blocks.level" + std::to_string(l)));
    }
  }
  if (config_.workers > 1) {
    pipeline_.emplace(
        registry_,
        compress::PipelineConfig{config_.workers, config_.depth},
        [this](common::ByteSpan frame, std::size_t raw_size, int level) {
          enqueue_frame(frame, raw_size, level);
        });
  }
  conn_.set_nonblocking(true);
  loop_.add(conn_.fd(), 0, [this](std::uint32_t ev) { on_event(ev); });
  watched_ = true;
}

AsyncSender::~AsyncSender() {
  if (watched_) loop_.remove(conn_.fd());
}

void AsyncSender::send(int level, common::ByteSpan payload) {
  throw_if_broken();
  if (pipeline_.has_value()) {
    // Frames arrive (in submission order) through enqueue_frame.
    pipeline_->submit(level, payload);
  } else {
    const std::size_t last = registry_.level_count() - 1;
    const std::size_t idx =
        level < 0 ? 0 : std::min(static_cast<std::size_t>(level), last);
    encode_block_into(*registry_.level(idx).codec,
                      static_cast<std::uint8_t>(idx), payload, scratch_);
    enqueue_frame(common::ByteSpan(scratch_), payload.size(),
                  static_cast<int>(idx));
  }
  if (queued_bytes_ > config_.high_watermark) {
    // The kernel buffer is full and frames keep landing: stall the
    // application (exactly what a blocking socket would do) until the
    // queue drains below the low watermark.
    ++backpressure_events_;
    if (m_backpressure_ != nullptr) m_backpressure_->add();
    drive_until(config_.low_watermark);
  }
  throw_if_broken();
}

void AsyncSender::finish() {
  throw_if_broken();
  if (pipeline_.has_value()) pipeline_->flush();
  finishing_ = true;
  pump();
  while (broken_ == nullptr && !(drained() && shut_)) {
    loop_.poll(1);
    pump();
  }
  throw_if_broken();
}

void AsyncSender::on_event(std::uint32_t events) {
  if (broken_ != nullptr) return;
  pump();
  if ((events & EpollLoop::kError) != 0 && broken_ == nullptr &&
      queue_.empty() && !finishing_) {
    // Peer reset while idle: fetch the pending socket error so the sticky
    // exception names the real errno, and stop watching a dead fd.
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(conn_.fd(), SOL_SOCKET, SO_ERROR, &err, &len);
    mark_broken(errno_error("socket", err != 0 ? err : ECONNRESET));
  }
}

void AsyncSender::enqueue_frame(common::ByteSpan frame, std::size_t raw_size,
                                int level) {
  raw_bytes_ += raw_size;
  ++frames_;
  if (m_frames_ != nullptr) m_frames_->add();
  if (level >= 0 &&
      static_cast<std::size_t>(level) < m_level_blocks_.size()) {
    m_level_blocks_[static_cast<std::size_t>(level)]->add();
  }
  if (config_.chaos.empty()) {
    append_wire_bytes(frame);
  } else {
    // ThrottledPipe::write's exact walk: coordinates count bytes the
    // writer *attempted* (pre-drop), so a schedule replays identically
    // regardless of frame sizes. The one deliberate difference: kStall
    // extends a flush deadline instead of sleeping, so a stalled
    // connection never freezes its loop's siblings.
    const auto& events = config_.chaos.events();
    const std::uint64_t base = chaos_offset_;
    std::size_t pos = 0;
    while (pos < frame.size()) {
      while (chaos_idx_ < events.size() &&
             events[chaos_idx_].at < base + pos) {
        ++chaos_idx_;
      }
      std::size_t next = frame.size();
      if (chaos_idx_ < events.size() &&
          events[chaos_idx_].at < base + frame.size()) {
        next = static_cast<std::size_t>(events[chaos_idx_].at - base);
      }
      if (next > pos) {
        append_wire_bytes(frame.subspan(pos, next - pos));
        pos = next;
        continue;
      }
      const common::ChaosEvent& ev = events[chaos_idx_++];
      switch (ev.kind) {
        case common::ChaosKind::kStall: {
          const common::SimTime now = clock_.now();
          const common::SimTime from = stall_until_ > now ? stall_until_ : now;
          stall_until_ = from + common::SimTime::ns(static_cast<std::int64_t>(
              std::max<std::uint64_t>(ev.stall_ns, 1)));
          ++stalls_;
          if (m_stalls_ != nullptr) m_stalls_->add();
          break;
        }
        case common::ChaosKind::kDrop:
          pos += static_cast<std::size_t>(std::min<std::uint64_t>(
              std::max<std::uint64_t>(ev.span, 1), frame.size() - pos));
          break;
        case common::ChaosKind::kCorrupt: {
          const std::uint8_t flipped =
              frame[pos] ^
              (ev.xor_mask == 0 ? std::uint8_t{0xFF} : ev.xor_mask);
          append_wire_bytes(common::ByteSpan(&flipped, 1));
          ++pos;
          break;
        }
        case common::ChaosKind::kBlackout:
          break;  // time-indexed; meaningless on a byte stream
      }
    }
    chaos_offset_ = base + frame.size();
  }
  // Opportunistic flush so small streams move without waiting for a poll.
  pump();
}

void AsyncSender::append_wire_bytes(common::ByteSpan bytes) {
  if (broken_ != nullptr) return;  // queue already abandoned
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    if (queue_.empty() ||
        queue_.back().data.size() == queue_.back().data.capacity()) {
      SendSeg seg;
      seg.data = pool_.acquire(config_.segment_bytes);
      queue_.push_back(std::move(seg));
    }
    common::Bytes& tail = queue_.back().data;
    const std::size_t take =
        std::min(tail.capacity() - tail.size(), bytes.size() - pos);
    tail.insert(tail.end(),
                bytes.begin() + static_cast<std::ptrdiff_t>(pos),
                bytes.begin() + static_cast<std::ptrdiff_t>(pos + take));
    pos += take;
    queued_bytes_ += take;
  }
  if (m_queued_ != nullptr) {
    m_queued_->set(static_cast<std::int64_t>(queued_bytes_));
  }
}

void AsyncSender::pump() {
  if (broken_ != nullptr) return;
  if (!stalled()) {
    while (!queue_.empty()) {
      iovec iov[kMaxIov];
      std::size_t cnt = 0;
      for (const SendSeg& seg : queue_) {
        if (cnt == kMaxIov) break;
        // sendmsg never writes through the iovec; the const_cast only
        // satisfies the kernel's writev-shaped struct.
        const common::ByteSpan pending = seg.pending();
        iov[cnt].iov_base = const_cast<std::uint8_t*>(pending.data());
        iov[cnt].iov_len = pending.size();
        ++cnt;
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = cnt;
      const ssize_t n = ::sendmsg(conn_.fd(), &msg, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        mark_broken(errno_error("sendmsg", errno));
        return;
      }
      if (m_writev_ != nullptr) m_writev_->add();
      wire_bytes_ += static_cast<std::uint64_t>(n);
      queued_bytes_ -= static_cast<std::size_t>(n);
      if (m_bytes_ != nullptr) m_bytes_->add(static_cast<std::uint64_t>(n));
      if (m_queued_ != nullptr) {
        m_queued_->set(static_cast<std::int64_t>(queued_bytes_));
      }
      std::size_t left = static_cast<std::size_t>(n);
      while (left > 0) {
        SendSeg& front = queue_.front();
        const std::size_t have = front.data.size() - front.off;
        if (left < have) {
          front.off += left;
          break;
        }
        left -= have;
        pool_.release(std::move(front.data));
        queue_.pop_front();
      }
    }
  }
  if (queue_.empty() && finishing_ && !stalled()) {
    if (!shut_) {
      conn_.shutdown_send();
      shut_ = true;
    }
    if (watched_) {
      // Fully flushed and half-closed: leave the loop so the peer's
      // eventual close does not EPOLLHUP-storm sibling pollers.
      loop_.remove(conn_.fd());
      watched_ = false;
    }
    return;
  }
  update_interest();
}

void AsyncSender::update_interest() {
  // Level-triggered kWrite while anything is queued — including during a
  // stall, where the immediate re-fire is what re-runs pump() past the
  // deadline without anyone sleeping.
  const bool want = !queue_.empty();
  if (watched_ && want != want_write_armed_) {
    loop_.modify(conn_.fd(), want ? EpollLoop::kWrite : 0);
    want_write_armed_ = want;
  }
}

bool AsyncSender::stalled() const {
  return stall_until_.nanos() != 0 && clock_.now() < stall_until_;
}

void AsyncSender::drive_until(std::size_t below_bytes) {
  while (broken_ == nullptr && queued_bytes_ > below_bytes) {
    loop_.poll(1);
    pump();
  }
}

void AsyncSender::throw_if_broken() const {
  if (broken_ != nullptr) std::rethrow_exception(broken_);
}

void AsyncSender::mark_broken(std::exception_ptr error) {
  broken_ = std::move(error);
  for (SendSeg& seg : queue_) pool_.release(std::move(seg.data));
  queue_.clear();
  queued_bytes_ = 0;
  if (m_queued_ != nullptr) m_queued_->set(0);
  if (watched_) {
    loop_.remove(conn_.fd());
    watched_ = false;
  }
}

// ---------------------------------------------------------------------------
// AsyncReceiver

AsyncReceiver::AsyncReceiver(EpollLoop& loop, TcpConnection conn,
                             const compress::CodecRegistry& registry,
                             Config config, BlockSink sink,
                             metrics::MetricRegistry* metrics)
    : loop_(loop),
      conn_(std::move(conn)),
      config_(std::move(config)),
      pipeline_(registry,
                compress::DecodePipelineConfig{config_.decode_workers,
                                               config_.depth,
                                               config_.segment_size}),
      sink_(std::move(sink)) {
  if (config_.read_chunk == 0) config_.read_chunk = 64 * 1024;
  if (config_.max_reads_per_event == 0) config_.max_reads_per_event = 1;
  if (metrics != nullptr) {
    m_bytes_ = &metrics->counter("rx.wire_bytes");
    m_frames_ = &metrics->counter("rx.blocks");
    m_errors_ = &metrics->counter("rx.errors");
    m_eofs_ = &metrics->counter("rx.eofs");
    m_backpressure_ = &metrics->counter("rx.backpressure");
    m_level_blocks_.reserve(registry.level_count());
    for (std::size_t l = 0; l < registry.level_count(); ++l) {
      m_level_blocks_.push_back(
          &metrics->counter("rx.blocks.level" + std::to_string(l)));
    }
  }
  conn_.set_nonblocking(true);
  loop_.add(conn_.fd(), EpollLoop::kRead,
            [this](std::uint32_t ev) { on_event(ev); });
  watched_ = true;
}

AsyncReceiver::~AsyncReceiver() { unwatch(); }

void AsyncReceiver::check() const {
  if (error_ != nullptr) std::rethrow_exception(error_);
}

void AsyncReceiver::pause() {
  if (watched_ && !paused_) loop_.modify(conn_.fd(), 0);
  paused_ = true;
}

void AsyncReceiver::resume() {
  if (watched_ && paused_) loop_.modify(conn_.fd(), EpollLoop::kRead);
  paused_ = false;
}

void AsyncReceiver::on_event(std::uint32_t) {
  // EPOLLERR/EPOLLHUP fall through to recv(), which reports the precise
  // condition (0 = orderly EOF, ECONNRESET = abort) — no separate path.
  if (done_ || paused_) return;
  for (std::size_t i = 0; i < config_.max_reads_per_event; ++i) {
    common::MutableByteSpan span;
    if (error_ == nullptr) {
      span = pipeline_.recv_span(config_.read_chunk);
    } else {
      // The stream already failed (sticky), but the peer must not wedge
      // behind a full kernel buffer: keep reading into private scratch
      // until EOF, bypassing the pipeline entirely.
      if (discard_scratch_.size() < config_.read_chunk) {
        discard_scratch_.resize(config_.read_chunk);
      }
      span = common::MutableByteSpan(discard_scratch_.data(),
                                     config_.read_chunk);
    }
    const ssize_t n = ::recv(conn_.fd(), span.data(), span.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      fail_stream(errno_error("recv", errno), /*fatal=*/true);
      return;
    }
    if (n == 0) {
      finish_stream();
      return;
    }
    wire_bytes_ += static_cast<std::uint64_t>(n);
    if (m_bytes_ != nullptr) m_bytes_->add(static_cast<std::uint64_t>(n));
    if (error_ != nullptr) continue;  // discard mode: just keep the fd moving
    if (config_.wire_tap) {
      config_.wire_tap(
          common::ByteSpan(span.data(), static_cast<std::size_t>(n)));
    }
    pipeline_.commit(static_cast<std::size_t>(n));
    drain();
    if (done_ || paused_ || error_ != nullptr) return;
    if (config_.max_pending_wire != 0 &&
        pipeline_.pending() > config_.max_pending_wire) {
      // Undelivered wire outran the configured bound: yield this callback
      // (level-triggered readiness re-fires next poll). Sustained overrun
      // fills the kernel buffer and the sender sees EAGAIN backpressure.
      ++backpressure_events_;
      if (m_backpressure_ != nullptr) m_backpressure_->add();
      return;
    }
  }
}

void AsyncReceiver::drain() {
  try {
    for (;;) {
      const std::optional<compress::DecodedBlock> block =
          pipeline_.next_block();
      if (!block.has_value()) break;
      ++blocks_;
      raw_bytes_ += block->data.size();
      if (m_frames_ != nullptr) m_frames_->add();
      const std::size_t lvl = block->header.level;
      if (lvl < m_level_blocks_.size()) m_level_blocks_[lvl]->add();
      if (sink_) sink_(block->data, block->header);
    }
  } catch (...) {
    // CodecError from a damaged wire, or a sink failure: sticky, in the
    // serial-equivalent position (decode_pipeline guarantees the former).
    // Non-fatal — the socket is fine, so stay in drain-and-discard mode.
    fail_stream(std::current_exception(), /*fatal=*/false);
  }
}

void AsyncReceiver::finish_stream() {
  eof_ = true;
  if (error_ == nullptr) {
    drain();  // deliver what the final bytes completed
    if (done_) return;  // drain() failed the stream and finalized it
  }
  pending_at_eof_ = pipeline_.pending();
  done_ = true;
  if (error_ == nullptr && m_eofs_ != nullptr) m_eofs_->add();
  unwatch();
}

void AsyncReceiver::fail_stream(std::exception_ptr error, bool fatal) {
  if (error_ == nullptr) {
    error_ = std::move(error);
    if (m_errors_ != nullptr) m_errors_->add();
  }
  if (!fatal && !eof_) return;  // stay watched: drain-and-discard to EOF
  pending_at_eof_ = pipeline_.pending();
  done_ = true;
  unwatch();
}

void AsyncReceiver::unwatch() {
  if (watched_) {
    loop_.remove(conn_.fd());
    watched_ = false;
  }
}

// ---------------------------------------------------------------------------
// AsyncTransport

AsyncSender& AsyncTransport::add_sender(TcpConnection conn,
                                        AsyncSender::Config config) {
  return senders_.emplace_back(loop_, std::move(conn), registry_,
                               std::move(config), metrics_);
}

AsyncReceiver& AsyncTransport::add_receiver(TcpConnection conn,
                                            AsyncReceiver::Config config,
                                            AsyncReceiver::BlockSink sink) {
  return receivers_.emplace_back(loop_, std::move(conn), registry_,
                                 std::move(config), std::move(sink),
                                 metrics_);
}

void AsyncTransport::run_receivers() {
  loop_.run_until([this] { return receivers_done(); });
}

bool AsyncTransport::receivers_done() const {
  for (const AsyncReceiver& r : receivers_) {
    if (!r.done()) return false;
  }
  return true;
}

}  // namespace strato::core
