// Non-blocking readiness event loop (epoll backend).
//
// The async transport's reactor: callers register a file descriptor with
// an interest mask and a callback, then drive the loop from ONE thread via
// poll(). The interface deliberately speaks its own event constants rather
// than <sys/epoll.h>'s so the backend can move to io_uring (or kqueue)
// without touching any call site: registration is interest + callback,
// dispatch is a readiness mask — both map 1:1 onto a completion-based
// backend submitting POLL_ADD ops.
//
// Threading contract: every method, and every callback, runs on the one
// thread that owns the loop. Endpoints needing cross-thread work (the
// compression pipelines) synchronize internally.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

namespace strato::core {

class EpollLoop {
 public:
  /// Backend-neutral readiness bits (values match EPOLLIN/EPOLLOUT so the
  /// epoll backend translates for free; callers must use the names).
  static constexpr std::uint32_t kRead = 0x001;
  static constexpr std::uint32_t kWrite = 0x004;
  /// Error/hangup conditions; always delivered, never needs registering.
  static constexpr std::uint32_t kError = 0x008;

  /// Invoked with the ready mask (kRead/kWrite/kError bits).
  using Callback = std::function<void(std::uint32_t events)>;

  /// @throws std::runtime_error when the kernel refuses an epoll instance.
  EpollLoop();
  ~EpollLoop();

  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  /// Watch `fd` for `events` (kRead|kWrite; may be 0 = registered but
  /// silent). The loop does not own the fd. @throws std::runtime_error on
  /// kernel failure or double-add.
  void add(int fd, std::uint32_t events, Callback cb);

  /// Change the interest mask of a watched fd. 0 keeps the registration
  /// but delivers nothing — the backpressure "pause" primitive.
  void modify(int fd, std::uint32_t events);

  /// Stop watching `fd`. Safe to call from inside a callback (pending
  /// readiness for the fd in the current batch is discarded).
  void remove(int fd);

  [[nodiscard]] bool watching(int fd) const {
    return watches_.find(fd) != watches_.end();
  }
  [[nodiscard]] std::size_t size() const { return watches_.size(); }

  /// Wait up to `timeout_ms` (-1 = forever, 0 = non-blocking) and dispatch
  /// every ready callback once. Returns the number of callbacks run.
  std::size_t poll(int timeout_ms);

  /// poll(slice_ms) until `done()` returns true (checked before and after
  /// every slice).
  void run_until(const std::function<bool()>& done, int slice_ms = 10);

 private:
  struct Watch {
    Callback cb;
    std::uint32_t events = 0;
    std::uint32_t gen = 0;  // guards against fd-number reuse in a batch
  };

  int epfd_ = -1;
  std::uint32_t next_gen_ = 1;
  std::unordered_map<int, Watch> watches_;
};

}  // namespace strato::core
