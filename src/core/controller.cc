#include "core/controller.h"

#include <algorithm>
#include <cmath>

namespace strato::core {

AdaptiveController::AdaptiveController(AdaptiveConfig config)
    : config_(config) {
  if (config_.num_levels < 1) config_.num_levels = 1;
  reset();
}

void AdaptiveController::reset() {
  ccl_ = 0;
  c_ = 0;
  inc_ = true;
  bck_.assign(static_cast<std::size_t>(config_.num_levels), 0);
  pdr_ = -1.0;
}

int AdaptiveController::clamp_probe(int ncl) const {
  // The paper leaves boundary behaviour implicit; we flip the probe
  // direction at the ends of the ladder so probing never stalls (DESIGN.md
  // §5.3). With a single level there is nowhere to go.
  if (config_.num_levels == 1) return 0;
  if (ncl < 0) return 1;
  if (ncl >= config_.num_levels) return config_.num_levels - 2;
  return ncl;
}

Decision AdaptiveController::on_window(double cdr) {
  // A rate can only be a finite non-negative number; a NaN/inf/negative
  // input (e.g. a zero-length measurement window) must not poison pdr, or
  // every later comparison would silently misfire. Treat it as "rate
  // unchanged".
  if (!std::isfinite(cdr) || cdr < 0.0) {
    cdr = pdr_ < 0.0 ? 0.0 : pdr_;
  }
  // "On the first call of the decision algorithm, pdr is set to cdr."
  if (pdr_ < 0.0) pdr_ = cdr;

  const double d = cdr - pdr_;       // line 1
  c_ += 1;                           // line 2
  int ncl = ccl_;                    // line 3
  Decision dec;

  if (std::fabs(d) <= config_.alpha * pdr_) {
    // Lines 4-14: no (significant) change in application data rate.
    const std::int64_t threshold =
        config_.backoff_enabled
            ? (std::int64_t{1} << std::min(bck_[static_cast<std::size_t>(ccl_)],
                                           config_.max_backoff_exponent))
            : 1;
    if (c_ >= threshold) {
      // Backoff over: optimistically try the neighbouring level.
      ncl = clamp_probe(inc_ ? ccl_ + 1 : ccl_ - 1);
      c_ = 0;
      dec.probed = ncl != ccl_;
    }
  } else if (d > 0) {
    // Lines 15-18: the application data rate improved. Reward the current
    // level with a longer backoff; stay.
    if (config_.backoff_enabled) {
      auto& b = bck_[static_cast<std::size_t>(ccl_)];
      b = std::min(b + 1, config_.max_backoff_exponent);
    }
    c_ = 0;
  } else {
    // Lines 19-27: degradation. Reset this level's backoff and revert the
    // last change immediately.
    bck_[static_cast<std::size_t>(ccl_)] = 0;
    ncl = std::clamp(inc_ ? ccl_ - 1 : ccl_ + 1, 0, config_.num_levels - 1);
    c_ = 0;
    dec.reverted = ncl != ccl_;
  }

  // "inc is usually updated outside of the displayed algorithm depending
  // on the input parameter ccl and the return value ncl."
  if (ncl > ccl_) {
    inc_ = true;
  } else if (ncl < ccl_) {
    inc_ = false;
  }
  pdr_ = cdr;
  ccl_ = ncl;
  dec.level = ncl;
  return dec;
}

}  // namespace strato::core
