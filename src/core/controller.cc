#include "core/controller.h"

#include <algorithm>
#include <cmath>

namespace strato::core {

namespace {

/// The paper leaves boundary behaviour implicit; we flip the probe
/// direction at the ends of the ladder so probing never stalls (DESIGN.md
/// §5.3). With a single level there is nowhere to go.
int clamp_probe(const AdaptiveConfig& config, int ncl) {
  if (config.num_levels == 1) return 0;
  if (ncl < 0) return 1;
  if (ncl >= config.num_levels) return config.num_levels - 2;
  return ncl;
}

}  // namespace

Decision controller_step(const AdaptiveConfig& config, ControllerState& st,
                         double cdr) {
  // A rate can only be a finite non-negative number; a NaN/inf/negative
  // input (e.g. a zero-length measurement window) must not poison pdr, or
  // every later comparison would silently misfire. Treat it as "rate
  // unchanged".
  if (!std::isfinite(cdr) || cdr < 0.0) {
    cdr = st.pdr < 0.0 ? 0.0 : st.pdr;
  }
  // "On the first call of the decision algorithm, pdr is set to cdr."
  if (st.pdr < 0.0) st.pdr = cdr;

  const int ccl = st.ccl;
  const double d = cdr - st.pdr;     // line 1
  st.c += 1;                         // line 2
  int ncl = ccl;                     // line 3
  Decision dec;

  if (std::fabs(d) <= config.alpha * st.pdr) {
    // Lines 4-14: no (significant) change in application data rate.
    const std::int64_t threshold =
        config.backoff_enabled
            ? (std::int64_t{1} << std::min<int>(st.bck[ccl],
                                                config.max_backoff_exponent))
            : 1;
    if (st.c >= threshold) {
      // Backoff over: optimistically try the neighbouring level.
      ncl = clamp_probe(config, st.inc ? ccl + 1 : ccl - 1);
      st.c = 0;
      dec.probed = ncl != ccl;
    }
  } else if (d > 0) {
    // Lines 15-18: the application data rate improved. Reward the current
    // level with a longer backoff; stay.
    if (config.backoff_enabled) {
      st.bck[ccl] = static_cast<std::int8_t>(
          std::min<int>(st.bck[ccl] + 1, config.max_backoff_exponent));
    }
    st.c = 0;
  } else {
    // Lines 19-27: degradation. Reset this level's backoff and revert the
    // last change immediately.
    st.bck[ccl] = 0;
    ncl = std::clamp(st.inc ? ccl - 1 : ccl + 1, 0, config.num_levels - 1);
    st.c = 0;
    dec.reverted = ncl != ccl;
  }

  // "inc is usually updated outside of the displayed algorithm depending
  // on the input parameter ccl and the return value ncl."
  if (ncl > ccl) {
    st.inc = true;
  } else if (ncl < ccl) {
    st.inc = false;
  }
  st.pdr = cdr;
  st.ccl = static_cast<std::int8_t>(ncl);
  dec.level = ncl;
  return dec;
}

AdaptiveController::AdaptiveController(AdaptiveConfig config)
    : config_(config) {
  if (config_.num_levels < 1) config_.num_levels = 1;
  if (config_.num_levels > kMaxControllerLevels) {
    config_.num_levels = kMaxControllerLevels;
  }
  reset();
}

void AdaptiveController::reset() { st_ = ControllerState{}; }

int AdaptiveController::backoff(int level) const {
  return level >= 0 && level < config_.num_levels ? st_.bck[level] : 0;
}

Decision AdaptiveController::on_window(double cdr) {
  return controller_step(config_, st_, cdr);
}

}  // namespace strato::core
