// Application data rate measurement.
//
// The decision model's only input: "the data rate experienced by the
// application before compressing the data" (Section III). The meter
// accumulates the raw bytes the application managed to hand to the
// compression module and closes a window every t seconds, yielding cdr.
// It runs on the injected Clock so the same code serves the wall-clock
// transport and the discrete-event simulator.
#pragma once

#include <cstdint>
#include <optional>

#include "common/sim_time.h"

namespace strato::core {

/// Windowed byte-rate meter.
class RateMeter {
 public:
  /// @param window the decision interval t (paper default: 2 s).
  explicit RateMeter(common::SimTime window) : window_(window) {}

  /// Record `n` raw application bytes accepted at time `now`. Starts the
  /// first window at the first call.
  void on_bytes(std::uint64_t n, common::SimTime now) {
    if (!started_) {
      started_ = true;
      window_start_ = now;
    }
    in_window_ += n;
    total_ += n;
  }

  /// Close the window if >= t has elapsed; returns the application data
  /// rate (bytes/second) over the actual elapsed span, or nullopt.
  [[nodiscard]] std::optional<double> poll(common::SimTime now) {
    if (!started_) return std::nullopt;
    const common::SimTime elapsed = now - window_start_;
    if (elapsed < window_) return std::nullopt;
    const double rate =
        static_cast<double>(in_window_) / elapsed.to_seconds();
    window_start_ = now;
    in_window_ = 0;
    return rate;
  }

  [[nodiscard]] common::SimTime window() const { return window_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_; }
  [[nodiscard]] std::uint64_t bytes_in_window() const { return in_window_; }

  /// Restart measurement.
  void reset() {
    started_ = false;
    in_window_ = 0;
    total_ = 0;
  }

 private:
  common::SimTime window_;
  common::SimTime window_start_;
  bool started_ = false;
  std::uint64_t in_window_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace strato::core
