// Rate-limited in-process byte pipe.
//
// The real-time stand-in for the paper's 1 GBit/s shared link: a blocking
// bounded byte queue whose drain rate is governed by a token bucket.
// Multiple pipes can share one LinkShare so concurrent "TCP connections"
// contend for the same bandwidth — the shared-I/O effect the paper
// studies, reproduced in-process for examples and integration tests.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "common/bytes.h"
#include "common/chaos.h"
#include "common/mutex.h"
#include "common/sim_time.h"
#include "common/thread_annotations.h"
#include "common/token_bucket.h"
#include "core/stream.h"

namespace strato::core {

/// Bandwidth shared by several pipes (one "physical NIC").
class LinkShare {
 public:
  /// @param bytes_per_second total link capacity
  explicit LinkShare(double bytes_per_second)
      : bucket_(bytes_per_second, bytes_per_second / 20.0) {}

  /// Block the calling thread until `n` bytes of link capacity have been
  /// granted. Fair in arrival order across pipes.
  void acquire(std::uint64_t n);

  /// Change the link capacity mid-run (congestion appearing/clearing).
  void set_rate(double bytes_per_second) {
    common::MutexLock lk(mu_);
    bucket_.set_rate(bytes_per_second);
  }

  [[nodiscard]] double rate() const {
    // Locked: set_rate() may run concurrently with a pipe reading the
    // capacity (previously an unguarded double read — a benign-looking
    // race -Wthread-safety rejects and TSan can miss).
    common::MutexLock lk(mu_);
    return bucket_.rate();
  }

 private:
  mutable common::Mutex mu_{"LinkShare::mu_"};
  common::TokenBucket bucket_ STRATO_GUARDED_BY(mu_);
  common::SteadyClock clock_;
};

/// Blocking byte pipe throttled through a LinkShare. The writer side
/// implements ByteSink (plug a CompressingWriter on top); the reader side
/// hands out chunks as they "arrive".
class ThrottledPipe final : public ByteSink {
 public:
  /// @param link      shared bandwidth governor
  /// @param capacity  in-flight buffer bound (models the socket buffer)
  ThrottledPipe(std::shared_ptr<LinkShare> link,
                std::size_t capacity = 256 * 1024);

  /// Writer side: blocks for link capacity and buffer space.
  void write(common::ByteSpan data) override;
  void flush() override {}

  /// Install a deterministic fault script (verify harness). Events are
  /// indexed by the cumulative byte offset the writer has attempted:
  /// kStall pauses the writer, kDrop discards bytes before they enter the
  /// pipe, kCorrupt flips bits in flight. The caller's buffer is never
  /// modified. Must be set before the first write (single-writer side).
  void set_chaos(common::ChaosSchedule schedule) {
    chaos_ = std::move(schedule);
    chaos_idx_ = 0;
    chaos_offset_ = 0;
  }

  /// Writer signals end-of-stream.
  void close();

  /// Reader side: pop up to `max_bytes`; empty result means EOF.
  common::Bytes read(std::size_t max_bytes);

  /// Bytes moved through the pipe so far.
  [[nodiscard]] std::uint64_t transferred() const;

 private:
  /// The pre-chaos write path (also the fast path with no schedule).
  void write_clean(common::ByteSpan data);

  std::shared_ptr<LinkShare> link_;
  common::ChaosSchedule chaos_;    // writer-side fault script
  std::size_t chaos_idx_ = 0;      // next unapplied event
  std::uint64_t chaos_offset_ = 0; // cumulative bytes attempted by writer
  mutable common::Mutex mu_{"ThrottledPipe::mu_"};
  common::CondVar readable_;
  common::CondVar writable_;
  std::deque<std::uint8_t> buf_ STRATO_GUARDED_BY(mu_);
  std::size_t capacity_;
  std::uint64_t transferred_ STRATO_GUARDED_BY(mu_) = 0;
  bool closed_ STRATO_GUARDED_BY(mu_) = false;
};

}  // namespace strato::core
