// Async socket transport over the block pipelines.
//
// The production rung past ThrottledPipe: non-blocking TCP connections
// driven by a core::EpollLoop, with the existing parallel block pipelines
// doing the codec work on either end.
//
//   * Send side (AsyncSender): blocks are encoded by a
//     compress::ParallelBlockPipeline (or inline when workers <= 1); the
//     frame sink appends completed frames into pooled send segments and
//     the event loop flushes them with vectored writes (sendmsg(2) with
//     an iovec batch + MSG_NOSIGNAL — writev semantics, SIGPIPE-safe).
//     Backpressure:
//     when the queue exceeds `high_watermark` wire bytes — the kernel
//     socket buffer is full and EAGAIN is pushing back — send() drives
//     the loop until the queue drains below `low_watermark`, which in
//     turn stalls the application exactly like a blocking socket would.
//   * Receive side (AsyncReceiver): readable sockets recv(2) directly
//     into the decode pipeline's pooled segments (recv_span/commit — the
//     wire bytes are parsed in place, zero copies on the receive path)
//     and decoded blocks are delivered in wire order to a sink callback.
//     The decode pipeline's sticky serial-equivalent error semantics are
//     preserved: a damaged stream surfaces the same CodecError, after the
//     same number of good blocks, as the serial FrameAssembler would.
//   * Chaos: a common::ChaosSchedule threads through the sender's frame
//     queue with ThrottledPipe's exact byte-offset semantics (coordinates
//     count pre-drop attempted bytes), except that kStall is a
//     non-blocking flush deadline instead of a thread sleep, so one
//     stalled connection does not freeze its loop's siblings.
//
// Threading contract: an endpoint belongs to the one thread driving its
// EpollLoop; send()/finish()/poll all run there. The pipelines' internal
// worker threads never touch sockets or the loop.
//
// Both endpoints export counters/gauges into an optional
// metrics::MetricRegistry (names below) — bytes, frames, stalls,
// backpressure events and per-level block counts from either end.
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <optional>
#include <vector>

#include "common/buffer_pool.h"
#include "common/bytes.h"
#include "common/chaos.h"
#include "common/lifetime_annotations.h"
#include "common/sim_time.h"
#include "compress/decode_pipeline.h"
#include "compress/pipeline.h"
#include "compress/registry.h"
#include "core/epoll_loop.h"
#include "core/tcp.h"
#include "metrics/registry.h"

namespace strato::core {

/// Sending endpoint: framed, compressed blocks out of a non-blocking
/// socket. Construct with a connected TcpConnection (ownership taken; the
/// fd is switched to O_NONBLOCK and registered with the loop).
class AsyncSender {
 public:
  struct Config {
    /// Compression workers; <= 1 encodes inline on the sending thread.
    std::size_t workers = 1;
    /// Pipeline reorder-window depth; 0 = 2 * workers.
    std::size_t depth = 0;
    /// Pooled send-segment size; frames are batched into segments so one
    /// writev covers many frames.
    std::size_t segment_bytes = 256 * 1024;
    /// send() drives the loop once more than this many wire bytes queue.
    std::size_t high_watermark = 4 * 1024 * 1024;
    /// ... until the queue drains below this.
    std::size_t low_watermark = 512 * 1024;
    /// Socket-level fault script (byte-offset keyed, like ThrottledPipe).
    common::ChaosSchedule chaos;
  };

  AsyncSender(EpollLoop& loop, TcpConnection conn,
              const compress::CodecRegistry& registry, Config config,
              metrics::MetricRegistry* metrics = nullptr);
  ~AsyncSender();

  AsyncSender(const AsyncSender&) = delete;
  AsyncSender& operator=(const AsyncSender&) = delete;

  /// Encode one block at `level` (clamped to the ladder) and queue its
  /// frame. May drive the event loop while over the high watermark.
  /// @throws std::runtime_error when the connection broke (sticky).
  void send(int level, common::ByteSpan payload);

  /// Flush the pipeline, drain the queue to the socket and half-close.
  /// @throws like send() — but a peer that already reset us while data
  /// was in flight surfaces here.
  void finish();

  /// Everything accepted so far has reached the kernel.
  [[nodiscard]] bool drained() const {
    return queued_bytes_ == 0 && !stalled();
  }
  /// Wire bytes accepted but not yet written to the socket.
  [[nodiscard]] std::size_t queued_bytes() const { return queued_bytes_; }
  [[nodiscard]] std::uint64_t raw_bytes() const { return raw_bytes_; }
  /// Post-chaos bytes handed to the kernel.
  [[nodiscard]] std::uint64_t wire_bytes() const { return wire_bytes_; }
  [[nodiscard]] std::uint64_t frames() const { return frames_; }
  /// Times send() had to drive the loop for queue drain.
  [[nodiscard]] std::uint64_t backpressure_events() const {
    return backpressure_events_;
  }
  [[nodiscard]] std::uint64_t stalls() const { return stalls_; }

 private:
  struct SendSeg {
    common::Bytes data;   // pooled
    std::size_t off = 0;  // bytes already written to the socket

    /// Wire bytes not yet handed to the kernel — the iovec source. Borrows
    /// the segment's pooled storage; dead once the segment is released
    /// back to the pool after the final sendmsg covers it.
    [[nodiscard]] common::ByteSpan pending() const STRATO_LIFETIME_BOUND {
      return {data.data() + off, data.size() - off};
    }
  };

  void on_event(std::uint32_t events);
  /// Frame-sink: chaos pass + append into the tail send segment.
  void enqueue_frame(common::ByteSpan frame, std::size_t raw_size, int level);
  void append_wire_bytes(common::ByteSpan bytes);
  /// writev as much of the queue as the socket accepts (respects stalls).
  void pump();
  void update_interest();
  [[nodiscard]] bool stalled() const;
  void drive_until(std::size_t below_bytes);
  void throw_if_broken() const;
  /// Sticky failure: record the error, drop the queue, leave the loop.
  void mark_broken(std::exception_ptr error);

  EpollLoop& loop_;
  TcpConnection conn_;
  const compress::CodecRegistry& registry_;
  Config config_;
  common::SteadyClock clock_;

  std::deque<SendSeg> queue_;
  std::size_t queued_bytes_ = 0;
  common::BufferPool pool_;
  common::Bytes scratch_;  // inline-encode frame buffer (workers <= 1)
  std::optional<compress::ParallelBlockPipeline> pipeline_;

  // Chaos cursor (ThrottledPipe semantics: offsets count attempted,
  // pre-drop bytes).
  std::size_t chaos_idx_ = 0;
  std::uint64_t chaos_offset_ = 0;
  common::SimTime stall_until_{};

  bool want_write_armed_ = false;
  bool finishing_ = false;
  bool watched_ = false;   // registered with the loop
  bool shut_ = false;      // shutdown_send() already issued
  std::exception_ptr broken_;

  std::uint64_t raw_bytes_ = 0;
  std::uint64_t wire_bytes_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t backpressure_events_ = 0;
  std::uint64_t stalls_ = 0;

  metrics::Counter* m_bytes_ = nullptr;
  metrics::Counter* m_frames_ = nullptr;
  metrics::Counter* m_stalls_ = nullptr;
  metrics::Counter* m_backpressure_ = nullptr;
  metrics::Counter* m_writev_ = nullptr;
  std::vector<metrics::Counter*> m_level_blocks_;
  metrics::Gauge* m_queued_ = nullptr;
};

/// Receiving endpoint: frames off a non-blocking socket, decoded blocks
/// to a sink, in wire order.
class AsyncReceiver {
 public:
  struct Config {
    /// Decode workers; <= 1 decodes inline on the loop thread.
    std::size_t decode_workers = 1;
    /// Decode reorder-window depth; 0 = 2 * workers.
    std::size_t depth = 0;
    /// Receive-segment size; 0 = compress::kDefaultDecodeSegmentSize.
    std::size_t segment_size = 0;
    /// Minimum contiguous recv_span requested per read.
    std::size_t read_chunk = 128 * 1024;
    /// Reads per readiness callback before yielding to siblings.
    std::size_t max_reads_per_event = 4;
    /// Stop reading for the rest of the readiness callback once this many
    /// wire bytes sit buffered but undelivered — yields the loop to
    /// sibling connections; a sustained overrun fills the kernel buffer
    /// and backpressures the sender. 0 disables the backstop.
    std::size_t max_pending_wire = 16 * 1024 * 1024;
    /// Test hook: observes every committed wire chunk in arrival order
    /// (chaos soaks fingerprint the wire with it). Reads in place — the
    /// zero-copy path is unaffected.
    std::function<void(common::ByteSpan)> wire_tap;
  };

  /// In-order decoded-block delivery, on the loop thread. The span is
  /// only valid during the call.
  using BlockSink = std::function<void(common::ByteSpan block,
                                       const compress::FrameHeader& header)>;

  AsyncReceiver(EpollLoop& loop, TcpConnection conn,
                const compress::CodecRegistry& registry, Config config,
                BlockSink sink, metrics::MetricRegistry* metrics = nullptr);
  ~AsyncReceiver();

  AsyncReceiver(const AsyncReceiver&) = delete;
  AsyncReceiver& operator=(const AsyncReceiver&) = delete;

  /// Peer half-closed and every decodable block was delivered (or the
  /// stream failed — check error()).
  [[nodiscard]] bool done() const { return done_; }
  /// EOF arrived with no partial frame pending and no decode error.
  [[nodiscard]] bool clean_eof() const {
    return done_ && error_ == nullptr && pending_at_eof_ == 0;
  }
  /// Sticky stream error (CodecError from a damaged wire, socket errors
  /// like ECONNRESET); nullptr while healthy.
  [[nodiscard]] std::exception_ptr error() const { return error_; }
  /// Rethrow error() if set.
  void check() const;

  /// Backpressure: stop reading (the kernel buffer then fills and the
  /// sender blocks). Idempotent.
  void pause();
  void resume();
  [[nodiscard]] bool paused() const { return paused_; }

  [[nodiscard]] std::uint64_t wire_bytes() const { return wire_bytes_; }
  [[nodiscard]] std::uint64_t blocks() const { return blocks_; }
  [[nodiscard]] std::uint64_t raw_bytes() const { return raw_bytes_; }
  /// Wire bytes buffered but not yet delivered when EOF arrived — > 0
  /// means the peer died mid-frame (or chaos ate bytes).
  [[nodiscard]] std::uint64_t pending_at_eof() const {
    return pending_at_eof_;
  }
  [[nodiscard]] std::uint64_t backpressure_events() const {
    return backpressure_events_;
  }

 private:
  void on_event(std::uint32_t events);
  /// Deliver every decodable block to the sink; decode/parse errors fail
  /// the stream (sticky, serial-order — see decode_pipeline.h).
  void drain();
  void finish_stream();
  /// Record the sticky stream error. `fatal` (socket gone) finishes the
  /// stream immediately; otherwise the receiver keeps reading and
  /// DISCARDING until EOF — a decode or sink error must not wedge the
  /// peer behind a full kernel buffer. Discarded bytes land in a private
  /// scratch buffer; the pipeline is never touched again.
  void fail_stream(std::exception_ptr error, bool fatal);
  void unwatch();

  EpollLoop& loop_;
  TcpConnection conn_;
  Config config_;
  compress::ParallelBlockDecodePipeline pipeline_;
  BlockSink sink_;

  bool eof_ = false;
  bool done_ = false;
  bool paused_ = false;
  bool watched_ = false;
  std::exception_ptr error_;
  common::Bytes discard_scratch_;  // recv target once the stream failed

  std::uint64_t wire_bytes_ = 0;
  std::uint64_t blocks_ = 0;
  std::uint64_t raw_bytes_ = 0;
  std::uint64_t pending_at_eof_ = 0;
  std::uint64_t backpressure_events_ = 0;

  metrics::Counter* m_bytes_ = nullptr;
  metrics::Counter* m_frames_ = nullptr;
  metrics::Counter* m_errors_ = nullptr;
  metrics::Counter* m_eofs_ = nullptr;
  metrics::Counter* m_backpressure_ = nullptr;
  std::vector<metrics::Counter*> m_level_blocks_;
};

/// One loop + its endpoints: the convenience facade a soak/bench thread
/// drives. Endpoints live in deques so references stay valid as more are
/// added.
class AsyncTransport {
 public:
  explicit AsyncTransport(const compress::CodecRegistry& registry,
                          metrics::MetricRegistry* metrics = nullptr)
      : registry_(registry), metrics_(metrics) {}

  EpollLoop& loop() { return loop_; }
  [[nodiscard]] metrics::MetricRegistry* metrics() const { return metrics_; }

  AsyncSender& add_sender(TcpConnection conn, AsyncSender::Config config);
  AsyncReceiver& add_receiver(TcpConnection conn, AsyncReceiver::Config config,
                              AsyncReceiver::BlockSink sink);

  std::size_t poll(int timeout_ms) { return loop_.poll(timeout_ms); }
  /// poll until every receiver is done (EOF or error).
  void run_receivers();
  [[nodiscard]] bool receivers_done() const;

  [[nodiscard]] std::size_t sender_count() const { return senders_.size(); }
  [[nodiscard]] std::size_t receiver_count() const {
    return receivers_.size();
  }
  AsyncSender& sender(std::size_t i) { return senders_.at(i); }
  AsyncReceiver& receiver(std::size_t i) { return receivers_.at(i); }

 private:
  const compress::CodecRegistry& registry_;
  metrics::MetricRegistry* metrics_;
  EpollLoop loop_;
  std::deque<AsyncSender> senders_;
  std::deque<AsyncReceiver> receivers_;
};

}  // namespace strato::core
