// Compressing / decompressing byte streams.
//
// The adaptive compression module "is placed between the application and
// the respective I/O layer" (Section III-A): the application writes raw
// bytes, the module buffers them into blocks of at most 128 KB, compresses
// each block at the policy's current level and forwards the framed block
// to the sink. Decompression is transparent on the receiving side.
//
// These classes run in real time over any ByteSink (throttled pipe, TCP
// socket wrapper, file). The discrete-event simulator models the same
// pipeline analytically but drives the identical policy objects.
#pragma once

#include <cstdint>
#include <memory>

#include "common/bytes.h"
#include "common/mutex.h"
#include "common/sim_time.h"
#include "common/thread_annotations.h"
#include "compress/decode_pipeline.h"
#include "compress/framing.h"
#include "compress/pipeline.h"
#include "compress/registry.h"
#include "core/policy.h"

namespace strato::core {

/// Destination for framed bytes (pipe, socket, file, ...). write() may
/// block — that backpressure is precisely what the application data rate
/// measures.
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  virtual void write(common::ByteSpan data) = 0;
  virtual void flush() {}
};

/// Application-facing compressing writer.
///
/// With worker_count > 1 blocks are compressed concurrently on a
/// ParallelBlockPipeline and re-sequenced before the sink; the wire bytes
/// are identical to the serial path and the policy still observes the
/// aggregate application data rate on the writing thread.
class CompressingWriter {
 public:
  /// @param sink           downstream I/O layer
  /// @param registry       ordered compression levels
  /// @param policy         level selection strategy (static / adaptive / ...)
  /// @param clock          time source for the policy (wall or simulated)
  /// @param block_size     channel block size (paper: 128 KB)
  /// @param worker_count   compression threads; 1 = serial on the caller
  /// @param pipeline_depth reorder-window depth; 0 = 2 * worker_count
  CompressingWriter(ByteSink& sink, const compress::CodecRegistry& registry,
                    CompressionPolicy& policy, const common::Clock& clock,
                    std::size_t block_size = compress::kDefaultBlockSize,
                    std::size_t worker_count = 1,
                    std::size_t pipeline_depth = 0);

  /// Accept application data; emits framed blocks as they fill.
  void write(common::ByteSpan data);

  /// Emit any buffered partial block and flush the sink.
  void flush();

  // The counters below are written on the writer thread but polled by
  // monitoring threads through Channel::stats() mid-run, so they are
  // mutex-guarded (one uncontended lock per 128 KB block is noise). The
  // unguarded fields above them (buffer_, buffered_, ...) are writer-
  // thread-only by contract.

  /// Raw application bytes accepted so far.
  [[nodiscard]] std::uint64_t raw_bytes() const {
    common::MutexLock lk(stats_mu_);
    return raw_bytes_;
  }
  /// Framed (compressed + header) bytes emitted so far.
  [[nodiscard]] std::uint64_t framed_bytes() const {
    common::MutexLock lk(stats_mu_);
    return framed_bytes_;
  }
  /// Blocks emitted per level (index = level). Returns a snapshot copy —
  /// a reference would race with the writer thread's increments.
  [[nodiscard]] std::vector<std::uint64_t> blocks_per_level() const {
    common::MutexLock lk(stats_mu_);
    return blocks_per_level_;
  }

 private:
  void emit_block();
  void account_frame(common::ByteSpan frame, std::size_t raw_size, int level);

  ByteSink& sink_;
  const compress::CodecRegistry& registry_;
  CompressionPolicy& policy_;
  const common::Clock& clock_;
  std::size_t block_size_;
  common::Bytes buffer_;
  std::size_t buffered_ = 0;
  mutable common::Mutex stats_mu_{"CompressingWriter::stats_mu_"};
  std::uint64_t raw_bytes_ STRATO_GUARDED_BY(stats_mu_) = 0;
  std::uint64_t framed_bytes_ STRATO_GUARDED_BY(stats_mu_) = 0;
  std::vector<std::uint64_t> blocks_per_level_ STRATO_GUARDED_BY(stats_mu_);
  std::unique_ptr<compress::ParallelBlockPipeline> pipeline_;
};

/// Receive-side parallelism knobs (the decode mirror of worker_count /
/// pipeline_depth on the compressing side).
struct DecompressionSpec {
  /// Decode worker threads; <= 1 decodes inline on the reading thread
  /// (no threads are created).
  std::size_t worker_count = 1;
  /// Reorder-window depth (max blocks decoding at once); 0 = 2 * workers.
  std::size_t pipeline_depth = 0;
};

/// Receiving side: feed framed bytes, pop decompressed blocks.
///
/// Runs on a ParallelBlockDecodePipeline at every worker count (1 worker =
/// inline decode through the same machinery): frames are parsed zero-copy
/// out of pooled receive segments and, with worker_count > 1, decoded
/// out of order while delivery stays strictly in wire order. The
/// delivered bytes — and any error, at its exact block position — are
/// identical to the serial path.
class DecompressingReader {
 public:
  explicit DecompressingReader(const compress::CodecRegistry& registry,
                               DecompressionSpec spec = {})
      : pipeline_(registry, make_config(spec)) {}

  /// Append bytes received from the I/O layer. Never blocks on workers.
  void feed(common::ByteSpan data) { pipeline_.feed(data); }

  /// Zero-copy variant: the next decoded block as a lease into the
  /// pipeline's pooled output buffer. The view is valid until the next
  /// next_block_view()/next_block() call.
  [[nodiscard]] std::optional<compress::DecodedBlock> next_block_view() {
    auto block = pipeline_.next_block();
    if (block) {
      raw_bytes_ += block->data.size();
      const auto lvl = block->header.level;
      if (lvl >= blocks_per_level_.size()) {
        blocks_per_level_.resize(lvl + 1, 0);
      }
      ++blocks_per_level_[lvl];
    }
    return block;
  }

  /// Next decoded block, or nullopt if more input is needed (copying
  /// compatibility API; prefer next_block_view() on hot paths).
  [[nodiscard]] std::optional<common::Bytes> next_block() {
    auto block = next_block_view();
    if (!block) return std::nullopt;
    return common::Bytes(block->data.begin(), block->data.end());
  }

  /// Raw bytes decoded so far.
  [[nodiscard]] std::uint64_t raw_bytes() const { return raw_bytes_; }
  /// Blocks received per frame level.
  [[nodiscard]] const std::vector<std::uint64_t>& blocks_per_level() const {
    return blocks_per_level_;
  }
  /// Decode workers actually running (0 = inline).
  [[nodiscard]] std::size_t worker_count() const {
    return pipeline_.worker_count();
  }
  /// Pipeline internals for tests and benches.
  [[nodiscard]] const compress::ParallelBlockDecodePipeline& pipeline() const {
    return pipeline_;
  }

 private:
  static compress::DecodePipelineConfig make_config(DecompressionSpec spec) {
    compress::DecodePipelineConfig cfg;
    cfg.worker_count = spec.worker_count;
    cfg.depth = spec.pipeline_depth;
    return cfg;
  }

  compress::ParallelBlockDecodePipeline pipeline_;
  std::uint64_t raw_bytes_ = 0;
  std::vector<std::uint64_t> blocks_per_level_;
};

}  // namespace strato::core
