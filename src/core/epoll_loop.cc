#include "core/epoll_loop.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace strato::core {

namespace {

[[noreturn]] void fail(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

std::uint32_t to_epoll(std::uint32_t events) {
  std::uint32_t e = 0;
  if ((events & EpollLoop::kRead) != 0) e |= EPOLLIN;
  if ((events & EpollLoop::kWrite) != 0) e |= EPOLLOUT;
  // Level-triggered on purpose: endpoints re-arm/disarm kWrite around a
  // non-empty send queue, and level semantics survive a missed edge.
  return e;
}

std::uint32_t from_epoll(std::uint32_t e) {
  std::uint32_t events = 0;
  if ((e & (EPOLLIN | EPOLLRDHUP)) != 0) events |= EpollLoop::kRead;
  if ((e & EPOLLOUT) != 0) events |= EpollLoop::kWrite;
  if ((e & (EPOLLERR | EPOLLHUP)) != 0) events |= EpollLoop::kError;
  return events;
}

}  // namespace

EpollLoop::EpollLoop() {
  epfd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) fail("epoll_create1");
}

EpollLoop::~EpollLoop() {
  if (epfd_ >= 0) ::close(epfd_);
}

void EpollLoop::add(int fd, std::uint32_t events, Callback cb) {
  if (watching(fd)) {
    throw std::runtime_error("EpollLoop::add: fd already watched");
  }
  Watch w;
  w.cb = std::move(cb);
  w.events = events;
  w.gen = next_gen_++;
  epoll_event ev{};
  ev.events = to_epoll(events);
  // Pack fd + generation so a stale readiness entry for a removed-then-
  // re-added (or kernel-reused) fd number is recognized and dropped.
  ev.data.u64 =
      (static_cast<std::uint64_t>(w.gen) << 32) | static_cast<std::uint32_t>(fd);
  if (epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) fail("epoll_ctl(ADD)");
  watches_.emplace(fd, std::move(w));
}

void EpollLoop::modify(int fd, std::uint32_t events) {
  auto it = watches_.find(fd);
  if (it == watches_.end()) {
    throw std::runtime_error("EpollLoop::modify: fd not watched");
  }
  if (it->second.events == events) return;
  epoll_event ev{};
  ev.events = to_epoll(events);
  ev.data.u64 = (static_cast<std::uint64_t>(it->second.gen) << 32) |
                static_cast<std::uint32_t>(fd);
  if (epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) != 0) fail("epoll_ctl(MOD)");
  it->second.events = events;
}

void EpollLoop::remove(int fd) {
  auto it = watches_.find(fd);
  if (it == watches_.end()) return;
  // The fd may already be closed by the caller; EBADF/ENOENT are benign
  // here (the kernel dropped the registration with the last fd reference).
  (void)epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  watches_.erase(it);
}

std::size_t EpollLoop::poll(int timeout_ms) {
  constexpr int kBatch = 64;
  epoll_event ready[kBatch];
  int n;
  do {
    n = epoll_wait(epfd_, ready, kBatch, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) fail("epoll_wait");

  std::size_t dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = static_cast<int>(ready[i].data.u64 & 0xFFFFFFFFu);
    const auto gen = static_cast<std::uint32_t>(ready[i].data.u64 >> 32);
    const auto it = watches_.find(fd);
    // A callback earlier in this batch may have removed (or removed and
    // re-registered) this fd; the generation check drops the stale entry.
    if (it == watches_.end() || it->second.gen != gen) continue;
    const std::uint32_t events = from_epoll(ready[i].events);
    if (events == 0) continue;
    // Invoke through a copy: the callback may add()/remove() watches,
    // rehashing the map out from under the stored std::function.
    const Callback cb = it->second.cb;
    cb(events);
    ++dispatched;
  }
  return dispatched;
}

void EpollLoop::run_until(const std::function<bool()>& done, int slice_ms) {
  while (!done()) {
    poll(slice_ms);
  }
}

}  // namespace strato::core
