#include "common/thread_pool.h"

namespace strato::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    MutexLock lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  // Workers drain the remaining queue before exiting (see worker_loop), so
  // joining here guarantees every accepted job has run.
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      MutexLock lk(mu_);
      while (!stop_ && jobs_.empty()) cv_.wait(mu_);
      if (jobs_.empty()) {
        if (stop_) return;
        continue;
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    job();
  }
}

}  // namespace strato::common
