// Token-bucket rate limiter.
//
// The real-time transport (examples, integration tests) throttles an
// in-process pipe to a configurable bandwidth with this bucket, standing in
// for the 1 GBit/s shared link of the paper's testbed. The bucket runs on
// the injected Clock so tests can drive it deterministically.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/sim_time.h"

namespace strato::common {

/// Classic token bucket: capacity `burst` bytes, refilled at `rate`
/// bytes/second. Thread-compatible (callers serialize externally).
class TokenBucket {
 public:
  /// @param rate_bytes_per_sec  sustained throughput
  /// @param burst_bytes         maximum accumulated credit
  TokenBucket(double rate_bytes_per_sec, double burst_bytes)
      : rate_(rate_bytes_per_sec), burst_(burst_bytes), tokens_(burst_bytes) {}

  /// Update the sustained rate (bytes/second) without losing credit.
  void set_rate(double rate_bytes_per_sec) { rate_ = rate_bytes_per_sec; }
  [[nodiscard]] double rate() const { return rate_; }

  /// Try to consume `n` bytes at time `now`. Returns true on success.
  [[nodiscard]] bool try_consume(std::uint64_t n, SimTime now) {
    refill(now);
    const auto need = static_cast<double>(n);
    if (tokens_ + 1e-9 >= need) {
      tokens_ -= need;
      return true;
    }
    return false;
  }

  /// Time at which `n` bytes will be available (>= now); consume nothing.
  [[nodiscard]] SimTime ready_at(std::uint64_t n, SimTime now) {
    refill(now);
    const auto need = static_cast<double>(n);
    if (tokens_ >= need) return now;
    const double deficit = need - tokens_;
    const double wait_s = rate_ > 0 ? deficit / rate_ : 1e18;
    return now + SimTime::seconds(wait_s);
  }

  /// Consume `n` bytes unconditionally (tokens may go negative, modelling
  /// a queue that drains later).
  void consume(std::uint64_t n, SimTime now) {
    refill(now);
    tokens_ -= static_cast<double>(n);
  }

  [[nodiscard]] double tokens() const { return tokens_; }

 private:
  void refill(SimTime now) {
    if (now > last_) {
      tokens_ = std::min(burst_,
                         tokens_ + rate_ * (now - last_).to_seconds());
      last_ = now;
    }
  }

  double rate_;
  double burst_;
  double tokens_;
  SimTime last_;
};

}  // namespace strato::common
