// Streaming and batch statistics used by the measurement study benches.
//
// The paper reports mean (SD) completion times (Table II) and throughput
// *distributions* (Fig. 2 / Fig. 3, drawn as boxplots). RunningStats gives
// numerically-stable mean/variance; Sample keeps the raw observations and
// yields quantiles / five-number summaries; Histogram buckets rates for
// the timeline plots.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace strato::common {

/// Welford-style streaming mean / variance / min / max.
class RunningStats {
 public:
  /// Absorb one observation.
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  /// Number of observations absorbed so far.
  [[nodiscard]] std::size_t count() const { return n_; }
  /// Arithmetic mean (0 when empty).
  [[nodiscard]] double mean() const { return mean_; }
  /// Sample variance (n-1 denominator; 0 with fewer than two points).
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  /// Sample standard deviation.
  [[nodiscard]] double stddev() const;
  /// Smallest observation (0 when empty).
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  /// Largest observation (0 when empty).
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number summary (Tukey boxplot statistics).
struct FiveNumber {
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  /// Observations outside [q1 - 1.5 IQR, q3 + 1.5 IQR].
  std::size_t outliers = 0;
};

/// Batch sample holding raw observations; supports quantiles and boxplot
/// statistics. Used for the throughput-distribution figures.
class Sample {
 public:
  void add(double x) { xs_.push_back(x); }
  void reserve(std::size_t n) { xs_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] bool empty() const { return xs_.empty(); }
  [[nodiscard]] const std::vector<double>& values() const { return xs_; }

  [[nodiscard]] double mean() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

  /// Linear-interpolation quantile, q in [0,1]. Empty sample yields 0.
  [[nodiscard]] double quantile(double q) const;

  /// Boxplot statistics with 1.5*IQR outlier count.
  [[nodiscard]] FiveNumber five_number() const;

  /// Absorb all of `other`'s observations (fleet: per-tenant samples fold
  /// into the all-tenant aggregate).
  void merge(const Sample& other);

 private:
  // Sorted lazily; mutable cache keeps quantile calls cheap.
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  std::vector<double> xs_;

  const std::vector<double>& sorted() const;
};

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp into
/// the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);

  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  /// Lower edge of bucket i.
  [[nodiscard]] double bucket_lo(std::size_t i) const;
  [[nodiscard]] std::uint64_t total() const { return total_; }

  /// Render a compact ASCII bar chart (for bench output).
  [[nodiscard]] std::string ascii(std::size_t width = 40) const;

  /// Add `other`'s counts bucket-by-bucket. Requires identical layout
  /// (same lo, hi, bucket count) — per-tenant goodput histograms share
  /// one layout exactly so they stay mergeable. @returns false (and
  /// leaves *this untouched) on a layout mismatch.
  [[nodiscard]] bool merge(const Histogram& other);

  [[nodiscard]] double lo() const { return lo_; }
  [[nodiscard]] double hi() const { return hi_; }

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace strato::common
