// Simulation time.
//
// The discrete-event simulator (src/vsim) and the adaptive controller
// (src/core) share one notion of time: a strongly-typed nanosecond count.
// Real-time transports convert from std::chrono; simulated transports
// advance it through the event queue. Keeping the controller on SimTime
// means the identical decision code runs in both worlds.
#pragma once

#include <chrono>
#include <cstdint>
#include <ostream>

namespace strato::common {

/// Nanosecond-resolution simulation timestamp / duration.
///
/// A thin strong type over int64 nanoseconds; supports the arithmetic the
/// simulator needs and nothing more.
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Construct from nanoseconds.
  static constexpr SimTime ns(std::int64_t v) { return SimTime(v); }
  /// Construct from microseconds.
  static constexpr SimTime us(std::int64_t v) { return SimTime(v * 1000); }
  /// Construct from milliseconds.
  static constexpr SimTime ms(std::int64_t v) { return SimTime(v * 1000000); }
  /// Construct from (possibly fractional) seconds.
  static constexpr SimTime seconds(double v) {
    return SimTime(static_cast<std::int64_t>(v * 1e9));
  }
  /// Largest representable time (used as "never" sentinel).
  static constexpr SimTime max() {
    return SimTime(INT64_MAX);
  }

  [[nodiscard]] constexpr std::int64_t nanos() const { return ns_; }
  [[nodiscard]] constexpr double to_seconds() const {
    return static_cast<double>(ns_) * 1e-9;
  }
  [[nodiscard]] constexpr double to_millis() const {
    return static_cast<double>(ns_) * 1e-6;
  }

  constexpr SimTime operator+(SimTime o) const { return SimTime(ns_ + o.ns_); }
  constexpr SimTime operator-(SimTime o) const { return SimTime(ns_ - o.ns_); }
  constexpr SimTime& operator+=(SimTime o) {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr SimTime operator*(double f) const {
    return SimTime(static_cast<std::int64_t>(static_cast<double>(ns_) * f));
  }
  constexpr auto operator<=>(const SimTime&) const = default;

 private:
  constexpr explicit SimTime(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << t.to_seconds() << "s";
}

/// Clock abstraction so rate meters / controllers can run on either wall
/// time or the simulator's virtual time.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time.
  [[nodiscard]] virtual SimTime now() const = 0;
};

/// Wall clock backed by std::chrono::steady_clock.
class SteadyClock final : public Clock {
 public:
  SteadyClock() : epoch_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] SimTime now() const override {
    const auto d = std::chrono::steady_clock::now() - epoch_;
    return SimTime::ns(
        std::chrono::duration_cast<std::chrono::nanoseconds>(d).count());
  }

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Manually-advanced clock (unit tests, discrete-event simulation).
class ManualClock final : public Clock {
 public:
  [[nodiscard]] SimTime now() const override { return now_; }
  /// Move the clock forward (or set it backward in tests).
  void set(SimTime t) { now_ = t; }
  void advance(SimTime d) { now_ += d; }

 private:
  SimTime now_;
};

}  // namespace strato::common
