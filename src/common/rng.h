// Deterministic pseudo-random number generation.
//
// Everything in this project that needs randomness — corpus generators,
// simulated bandwidth fluctuation, workload schedules — draws from these
// seeded generators so every experiment is exactly reproducible. We use
// splitmix64 for seeding and xoshiro256** as the workhorse generator
// (both public-domain algorithms, re-implemented here).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace strato::common {

/// splitmix64: tiny, high-quality stream used to expand a single 64-bit
/// seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64 random bits.
  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast general-purpose PRNG with 256-bit state.
/// Satisfies the UniformRandomBitGenerator concept.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5EEDC0FFEEULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return (*this)() % n; }

  /// Standard normal variate (Marsaglia polar method).
  double gaussian() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return u * m;
  }

  /// Normal variate with the given mean and standard deviation.
  double gaussian(double mean, double stddev) {
    return mean + stddev * gaussian();
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace strato::common
