// Clang thread-safety annotation macros.
//
// These expand to Clang's capability attributes so that a Clang build with
// -Wthread-safety turns "touched a GUARDED_BY member without its mutex"
// into a compile error; under GCC (and anything else) they expand to
// nothing and cost nothing. The only classes that should carry CAPABILITY /
// SCOPED_CAPABILITY are the wrappers in common/mutex.h — everything else
// annotates its members with STRATO_GUARDED_BY and its private helpers
// with STRATO_REQUIRES.
//
// This header is the single place where the analysis may be suppressed
// (STRATO_NO_THREAD_SAFETY_ANALYSIS); using that macro anywhere outside
// common/mutex.h fails review and strato-lint.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__)
#define STRATO_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define STRATO_THREAD_ANNOTATION(x)  // no-op on GCC/MSVC
#endif

/// Class is a lockable capability (mutexes only).
#define STRATO_CAPABILITY(x) STRATO_THREAD_ANNOTATION(capability(x))

/// RAII class that acquires a capability in its constructor and releases
/// it in its destructor (MutexLock).
#define STRATO_SCOPED_CAPABILITY STRATO_THREAD_ANNOTATION(scoped_lockable)

/// Data member may only be touched while `x` is held.
#define STRATO_GUARDED_BY(x) STRATO_THREAD_ANNOTATION(guarded_by(x))

/// Pointed-to data may only be touched while `x` is held.
#define STRATO_PT_GUARDED_BY(x) STRATO_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the listed capabilities to be held on entry (and
/// leaves them held).
#define STRATO_REQUIRES(...) \
  STRATO_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on return).
#define STRATO_ACQUIRE(...) \
  STRATO_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (must be held on entry).
#define STRATO_RELEASE(...) \
  STRATO_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability when it returns `b`.
#define STRATO_TRY_ACQUIRE(b, ...) \
  STRATO_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Caller must NOT hold the listed capabilities (non-reentrancy).
#define STRATO_EXCLUDES(...) \
  STRATO_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the capability guarding its result.
#define STRATO_RETURN_CAPABILITY(x) \
  STRATO_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: skip analysis of this function. Only common/mutex.h may
/// use it (the CondVar wait shuffles lock ownership in ways the analysis
/// cannot follow).
#define STRATO_NO_THREAD_SAFETY_ANALYSIS \
  STRATO_THREAD_ANNOTATION(no_thread_safety_analysis)
