#include "common/buffer_pool.h"

#include <cstdlib>
#include <cstring>
#include <utility>

// AddressSanitizer detection for both GCC (__SANITIZE_ADDRESS__) and Clang
// (__has_feature). When active, released pool memory is shadow-poisoned so
// a stale span dereference aborts with use-after-poison instead of reading
// the kPoisonByte pattern.
#if defined(__SANITIZE_ADDRESS__)
#define STRATO_POOL_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define STRATO_POOL_ASAN 1
#endif
#endif

#if defined(STRATO_POOL_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace strato::common {

namespace {

void asan_poison_region(const Bytes& buf) {
#if defined(STRATO_POOL_ASAN)
  if (buf.capacity() != 0) {
    __asan_poison_memory_region(buf.data(), buf.capacity());
  }
#else
  (void)buf;
#endif
}

void asan_unpoison_region(const Bytes& buf) {
#if defined(STRATO_POOL_ASAN)
  if (buf.capacity() != 0) {
    __asan_unpoison_memory_region(buf.data(), buf.capacity());
  }
#else
  (void)buf;
#endif
}

/// Build default (STRATO_POOL_POISON_DEFAULT_ON in Debug/sanitizer
/// builds), overridden by STRATO_POOL_POISON=0/1 in the environment.
bool default_poison() {
#if defined(STRATO_POOL_POISON_DEFAULT_ON)
  bool on = true;
#else
  bool on = false;
#endif
  if (const char* env = std::getenv("STRATO_POOL_POISON")) {
    on = !(env[0] == '0' && env[1] == '\0');
  }
  return on;
}

std::size_t default_quarantine() {
  if (const char* env = std::getenv("STRATO_POOL_QUARANTINE")) {
    return static_cast<std::size_t>(std::strtoul(env, nullptr, 10));
  }
  return 0;
}

}  // namespace

BufferPool::BufferPool(std::size_t max_buffers)
    : max_buffers_(max_buffers == 0 ? 1 : max_buffers),
      poison_(default_poison()),
      quarantine_depth_(default_quarantine()) {
  // Locked even though the pool is not yet shared: the analysis (and the
  // guarded_by contract) make no constructor exception.
  MutexLock lk(mu_);
  free_.reserve(max_buffers_);
}

BufferPool::~BufferPool() {
  // Poisoned shadow must not outlive the allocations: unpoison everything
  // still parked here before the vectors free their storage. No lock:
  // destruction implies exclusive access (Clang's analysis likewise
  // leaves destructors unchecked), and a static-duration pool — e.g.
  // shared() — is destroyed during exit teardown, after this thread's
  // TLS (and with it the LockGraph held-stack) is already gone.
  for (Bytes& buf : free_) asan_unpoison_region(buf);
  for (Bytes& buf : quarantine_) asan_unpoison_region(buf);
}

Bytes BufferPool::acquire(std::size_t min_capacity) {
  Bytes buf;
  {
    MutexLock lk(mu_);
    ++acquires_;
    if (free_.empty()) drain_quarantine_locked();
    if (!free_.empty()) {
      // Prefer a buffer that is already large enough so steady-state reuse
      // never re-reserves; otherwise grow the last one.
      std::size_t pick = free_.size() - 1;
      for (std::size_t i = 0; i < free_.size(); ++i) {
        if (free_[i].capacity() >= min_capacity) {
          pick = i;
          break;
        }
      }
      buf = std::move(free_[pick]);
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(pick));
      ++reuses_;
      if (poison_) {
        unpoison_locked(buf);
        if (buf.capacity() < min_capacity) {
          // The reserve below reallocates: the tracked address dies here,
          // so drop its tag rather than let a recycled address inherit it.
          gen_.erase(buf.data());
        }
      }
    }
  }
  buf.clear();
  buf.reserve(min_capacity);
  return buf;
}

void BufferPool::release(Bytes buf) {
  MutexLock lk(mu_);
  if (poison_) poison_locked(buf);
  quarantine_.push_back(std::move(buf));
  drain_quarantine_locked();
}

void BufferPool::poison_locked(Bytes& buf) {
  if (buf.capacity() == 0) return;
  // Stamp the bytes a stale span would read, tag the new generation, then
  // (under ASan) make the whole region inaccessible until re-acquired.
  if (buf.size() != 0) std::memset(buf.data(), kPoisonByte, buf.size());
  ++gen_[buf.data()];
  ++generations_;
  ++poisons_;
  asan_poison_region(buf);
}

void BufferPool::unpoison_locked(Bytes& buf) {
  if (buf.capacity() == 0) return;
  asan_unpoison_region(buf);
  ++unpoisons_;
}

void BufferPool::drain_quarantine_locked() {
  while (quarantine_.size() > quarantine_depth_) {
    Bytes buf = std::move(quarantine_.front());
    quarantine_.pop_front();
    if (free_.size() >= max_buffers_) {
      ++drops_;
      // The allocation is about to be freed: shadow and tag die with it.
      asan_unpoison_region(buf);
      gen_.erase(buf.data());
      continue;  // buf freed on loop scope exit
    }
    free_.push_back(std::move(buf));
  }
}

void BufferPool::set_poison(bool enabled) {
  MutexLock lk(mu_);
  if (poison_ && !enabled) {
    // Buffers poisoned while the mode was on must become readable again —
    // later acquires would otherwise skip the unpoison step.
    for (Bytes& buf : free_) asan_unpoison_region(buf);
    for (Bytes& buf : quarantine_) asan_unpoison_region(buf);
  }
  poison_ = enabled;
}

bool BufferPool::poison_enabled() const {
  MutexLock lk(mu_);
  return poison_;
}

void BufferPool::set_quarantine(std::size_t depth) {
  MutexLock lk(mu_);
  quarantine_depth_ = depth;
  drain_quarantine_locked();
}

std::uint64_t BufferPool::generation(const void* data) const {
  MutexLock lk(mu_);
  auto it = gen_.find(data);
  return it == gen_.end() ? 0 : it->second;
}

BufferPool::Stats BufferPool::stats() const {
  MutexLock lk(mu_);
  Stats s;
  s.acquires = acquires_;
  s.reuses = reuses_;
  s.drops = drops_;
  s.free_buffers = free_.size();
  s.poisons = poisons_;
  s.unpoisons = unpoisons_;
  s.quarantined = quarantine_.size();
  s.generations = generations_;
  return s;
}

BufferPool& BufferPool::shared() {
  static BufferPool pool(64);
  return pool;
}

}  // namespace strato::common
