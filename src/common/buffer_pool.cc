#include "common/buffer_pool.h"

#include <utility>

namespace strato::common {

BufferPool::BufferPool(std::size_t max_buffers)
    : max_buffers_(max_buffers == 0 ? 1 : max_buffers) {
  // Locked even though the pool is not yet shared: the analysis (and the
  // guarded_by contract) make no constructor exception.
  MutexLock lk(mu_);
  free_.reserve(max_buffers_);
}

Bytes BufferPool::acquire(std::size_t min_capacity) {
  Bytes buf;
  {
    MutexLock lk(mu_);
    ++acquires_;
    if (!free_.empty()) {
      // Prefer a buffer that is already large enough so steady-state reuse
      // never re-reserves; otherwise grow the last one.
      std::size_t pick = free_.size() - 1;
      for (std::size_t i = 0; i < free_.size(); ++i) {
        if (free_[i].capacity() >= min_capacity) {
          pick = i;
          break;
        }
      }
      buf = std::move(free_[pick]);
      free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(pick));
      ++reuses_;
    }
  }
  buf.clear();
  buf.reserve(min_capacity);
  return buf;
}

void BufferPool::release(Bytes buf) {
  MutexLock lk(mu_);
  if (free_.size() >= max_buffers_) {
    ++drops_;
    return;  // buf freed on scope exit
  }
  free_.push_back(std::move(buf));
}

BufferPool::Stats BufferPool::stats() const {
  MutexLock lk(mu_);
  return {acquires_, reuses_, drops_, free_.size()};
}

BufferPool& BufferPool::shared() {
  static BufferPool pool(64);
  return pool;
}

}  // namespace strato::common
