// Bounded single-producer / single-consumer queue.
//
// Used by the Jeannot-style FIFO-occupancy baseline policy (the decision
// signal there *is* the queue fill level) and by the dataflow executor to
// hand blocks between a producing task thread and a channel writer thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace strato::common {

/// Blocking bounded FIFO. Thread-safe for any number of producers and
/// consumers (mutex-based; the SPSC name reflects its intended usage
/// pattern, not a lock-free restriction).
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Push, blocking while full. Returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock lk(mu_);
    not_full_.wait(lk, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lk.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed.
  bool try_push(T item) {
    std::lock_guard lk(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Pop, blocking while empty. Empty optional means closed-and-drained.
  std::optional<T> pop() {
    std::unique_lock lk(mu_);
    not_empty_.wait(lk, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.erase(items_.begin());
    lk.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard lk(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.erase(items_.begin());
    not_full_.notify_one();
    return item;
  }

  /// Close the queue: pending pops drain, further pushes fail.
  void close() {
    {
      std::lock_guard lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lk(mu_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Fill level in [0,1] — the decision signal of the queue-based policy.
  [[nodiscard]] double fill() const {
    std::lock_guard lk(mu_);
    return static_cast<double>(items_.size()) /
           static_cast<double>(capacity_);
  }
  [[nodiscard]] bool closed() const {
    std::lock_guard lk(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace strato::common
