// Bounded single-producer / single-consumer queue.
//
// Used by the Jeannot-style FIFO-occupancy baseline policy (the decision
// signal there *is* the queue fill level) and by the dataflow executor to
// hand blocks between a producing task thread and a channel writer thread.
#pragma once

#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace strato::common {

/// Blocking bounded FIFO. Thread-safe for any number of producers and
/// consumers (mutex-based; the SPSC name reflects its intended usage
/// pattern, not a lock-free restriction).
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Push, blocking while full. Returns false if the queue was closed.
  bool push(T item) {
    {
      MutexLock lk(mu_);
      while (items_.size() >= capacity_ && !closed_) not_full_.wait(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed.
  [[nodiscard]] bool try_push(T item) {
    {
      MutexLock lk(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Pop, blocking while empty. Empty optional means closed-and-drained.
  [[nodiscard]] std::optional<T> pop() {
    std::optional<T> item;
    {
      MutexLock lk(mu_);
      while (items_.empty() && !closed_) not_empty_.wait(mu_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.erase(items_.begin());
    }
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  [[nodiscard]] std::optional<T> try_pop() {
    std::optional<T> item;
    {
      MutexLock lk(mu_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.erase(items_.begin());
    }
    not_full_.notify_one();
    return item;
  }

  /// Close the queue: pending pops drain, further pushes fail.
  void close() {
    {
      MutexLock lk(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    MutexLock lk(mu_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Fill level in [0,1] — the decision signal of the queue-based policy.
  [[nodiscard]] double fill() const {
    MutexLock lk(mu_);
    return static_cast<double>(items_.size()) /
           static_cast<double>(capacity_);
  }
  [[nodiscard]] bool closed() const {
    MutexLock lk(mu_);
    return closed_;
  }

 private:
  mutable Mutex mu_{"SpscRing::mu_"};
  CondVar not_full_;
  CondVar not_empty_;
  std::vector<T> items_ STRATO_GUARDED_BY(mu_);
  std::size_t capacity_;
  bool closed_ STRATO_GUARDED_BY(mu_) = false;
};

}  // namespace strato::common
