// Byte-buffer primitives shared by every module.
//
// All binary interfaces in this project exchange data as spans over
// `std::byte`-free plain `uint8_t` storage: compression codecs, channel
// framing and checksums all operate on `ByteSpan` / `MutableByteSpan`.
// Little-endian field encoding is used throughout the on-wire formats.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/lifetime_annotations.h"

namespace strato::common {

/// Immutable view over raw bytes.
using ByteSpan = std::span<const std::uint8_t>;
/// Mutable view over raw bytes.
using MutableByteSpan = std::span<std::uint8_t>;
/// Owning byte buffer.
using Bytes = std::vector<std::uint8_t>;

/// Reinterpret a string's contents as bytes (no copy). The span borrows
/// `s`'s storage — calling this on a temporary string dangles, and a
/// Clang build says so at compile time.
inline ByteSpan as_bytes(std::string_view s STRATO_LIFETIME_BOUND) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Read view over an owning buffer (no copy). Borrows `b` — the span dies
/// with the buffer (or its next reallocation), which matters doubly for
/// pooled buffers whose release() poisons the storage.
inline ByteSpan span_of(const Bytes& b STRATO_LIFETIME_BOUND) {
  return {b.data(), b.size()};
}

/// Writable view over an owning buffer (no copy); same borrow rules.
inline MutableByteSpan span_of(Bytes& b STRATO_LIFETIME_BOUND) {
  return {b.data(), b.size()};
}

/// Copy a byte span into a std::string (for tests / debugging).
inline std::string to_string(ByteSpan b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

/// Store a 16-bit value little-endian at `p`.
inline void store_le16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

/// Store a 32-bit value little-endian at `p`.
inline void store_le32(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

/// Store a 64-bit value little-endian at `p`.
inline void store_le64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

/// Load a 16-bit little-endian value from `p`.
inline std::uint16_t load_le16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

/// Load a 32-bit little-endian value from `p`.
inline std::uint32_t load_le32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// Load a 64-bit little-endian value from `p`.
inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// Unaligned 64-bit native-endian read used by hashing/LZ match loops.
inline std::uint64_t load_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

/// Unaligned 32-bit native-endian read used by hashing/LZ match loops.
inline std::uint32_t load_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace strato::common
