// XXH64-compatible checksum.
//
// Every framed compression block (see compress/framing.h) carries an XXH64
// digest of its *payload after decompression* so a receiver can detect
// corruption introduced anywhere in the channel. The implementation below
// follows the public xxHash64 specification and is validated against the
// reference test vectors in tests/common_checksum_test.cc.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"

namespace strato::common {

/// One-shot XXH64 over `data` with the given seed.
std::uint64_t xxh64(ByteSpan data, std::uint64_t seed = 0);

/// Streaming XXH64 state; feed arbitrary-size chunks via update().
class Xxh64State {
 public:
  explicit Xxh64State(std::uint64_t seed = 0) { reset(seed); }

  /// Re-initialise the state for a new message.
  void reset(std::uint64_t seed = 0);

  /// Absorb `data` into the running hash.
  void update(ByteSpan data);

  /// Finalise and return the digest. The state remains valid; further
  /// update() calls continue the same message.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  std::uint64_t acc_[4]{};
  std::uint8_t buf_[32]{};
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
  std::uint64_t seed_ = 0;
};

}  // namespace strato::common
