// Annotated mutex wrapper — the project's only sanctioned lock.
//
// Every lock in src/ goes through common::Mutex so that (a) a Clang build
// with -Wthread-safety can prove at compile time that STRATO_GUARDED_BY
// members are only touched under their lock, and (b) debug/sanitizer
// builds feed every acquisition into the common::LockGraph lock-order
// detector, which flags AB/BA inversions online before they ever deadlock.
// strato-lint bans raw std::mutex / std::lock_guard / std::unique_lock /
// std::condition_variable everywhere in src/ outside this wrapper and the
// detector it feeds.
//
// Usage pattern (compile-checked under Clang):
//
//   class Queue {
//    public:
//     void push(Item it) {
//       {
//         common::MutexLock lk(mu_);
//         while (items_.size() >= cap_) not_full_.wait(mu_);
//         items_.push_back(std::move(it));
//       }
//       not_empty_.notify_one();
//     }
//    private:
//     common::Mutex mu_{"Queue::mu_"};
//     common::CondVar not_empty_, not_full_;
//     std::deque<Item> items_ STRATO_GUARDED_BY(mu_);
//   };
//
// Predicate waits are written as explicit `while (!pred) cv.wait(mu)`
// loops rather than wait(lock, lambda): the analysis cannot see through a
// lambda, and the explicit loop keeps the guarded reads inside the locked
// scope it can check.
#pragma once

#include <condition_variable>  // strato-lint: allow(raw-mutex)
#include <mutex>               // strato-lint: allow(raw-mutex)

#include "common/lock_graph.h"
#include "common/thread_annotations.h"

namespace strato::common {

/// Standard-layout exclusive mutex with Clang capability annotations and
/// LockGraph instrumentation. The optional label names the lock in
/// lock-order reports ("ThreadPool::mu_" beats 0x7f...).
class STRATO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(const char* name) : name_(name) {}
  ~Mutex() { LockGraph::instance().forget(this); }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() STRATO_ACQUIRE() {
    // Record the ordering edge BEFORE blocking so that even a schedule
    // that really deadlocks has already logged the offending edge.
    LockGraph::instance().on_acquire(this, name_);
    mu_.lock();  // strato-lint: allow(raw-mutex)
  }

  void unlock() STRATO_RELEASE() {
    LockGraph::instance().on_release(this);
    mu_.unlock();  // strato-lint: allow(raw-mutex)
  }

  [[nodiscard]] bool try_lock() STRATO_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;  // strato-lint: allow(raw-mutex)
    // A failed try cannot deadlock, so the edge is only recorded on
    // success (after the fact is fine: nothing blocked).
    LockGraph::instance().on_acquire(this, name_);
    return true;
  }

  [[nodiscard]] const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex mu_;  // strato-lint: allow(raw-mutex)
  const char* name_ = "mutex";
};

/// RAII scoped lock over Mutex (the project's std::lock_guard).
class STRATO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) STRATO_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() STRATO_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. wait() atomically releases the
/// caller-held Mutex and re-acquires it before returning; callers re-check
/// their predicate in a while loop (spurious wakeups happen).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Requires `mu` held (usually via an enclosing MutexLock). The wait
  /// adopts the underlying native mutex directly; LockGraph keeps the
  /// mutex on the waiter's held stack across the wait, which is sound —
  /// a blocked waiter cannot acquire anything else meanwhile.
  void wait(Mutex& mu) STRATO_REQUIRES(mu) STRATO_NO_THREAD_SAFETY_ANALYSIS {
    std::unique_lock<std::mutex> lk(  // strato-lint: allow(raw-mutex)
        mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();  // ownership stays with the caller's MutexLock
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // strato-lint: allow(raw-mutex)
};

}  // namespace strato::common
