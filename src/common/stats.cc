#include "common/stats.h"

#include <cmath>
#include <sstream>

namespace strato::common {

double RunningStats::stddev() const { return std::sqrt(variance()); }

const std::vector<double>& Sample::sorted() const {
  if (!sorted_valid_ || sorted_.size() != xs_.size()) {
    sorted_ = xs_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  return sorted_;
}

double Sample::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Sample::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : xs_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs_.size() - 1));
}

double Sample::min() const { return xs_.empty() ? 0.0 : sorted().front(); }
double Sample::max() const { return xs_.empty() ? 0.0 : sorted().back(); }

double Sample::quantile(double q) const {
  const auto& s = sorted();
  if (s.empty()) return 0.0;
  if (s.size() == 1) return s[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(s.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= s.size()) return s.back();
  return s[idx] * (1.0 - frac) + s[idx + 1] * frac;
}

FiveNumber Sample::five_number() const {
  FiveNumber f;
  if (xs_.empty()) return f;
  f.min = min();
  f.q1 = quantile(0.25);
  f.median = quantile(0.5);
  f.q3 = quantile(0.75);
  f.max = max();
  const double iqr = f.q3 - f.q1;
  const double lo = f.q1 - 1.5 * iqr;
  const double hi = f.q3 + 1.5 * iqr;
  for (double x : xs_) {
    if (x < lo || x > hi) ++f.outliers;
  }
  return f;
}

void Sample::merge(const Sample& other) {
  xs_.insert(xs_.end(), other.xs_.begin(), other.xs_.end());
  sorted_valid_ = false;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets == 0 ? 1 : buckets, 0) {}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  std::size_t i = 0;
  if (span > 0.0) {
    const double rel = (x - lo_) / span;
    const auto n = static_cast<double>(counts_.size());
    i = static_cast<std::size_t>(std::clamp(rel * n, 0.0, n - 1.0));
  }
  ++counts_[i];
  ++total_;
}

bool Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size()) {
    return false;
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  total_ += other.total_;
  return true;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    os << "[" << bucket_lo(i) << ", " << bucket_lo(i + 1) << ") "
       << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace strato::common
