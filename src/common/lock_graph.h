// Online lock-order (potential-deadlock) detector.
//
// TSan only reports the lock-order inversions a given schedule happens to
// execute; this registry catches them on ANY schedule that merely exercises
// both orders, even seconds apart and on different thread pairs. Every
// common::Mutex acquisition records edges held-lock -> acquiring-lock into
// a process-wide directed graph; an edge that closes a cycle is a potential
// deadlock (some interleaving of those threads can block forever) and is
// reported immediately with both mutex labels, before any real deadlock
// has to happen.
//
// The detector is runtime-gated: it defaults to ON in Debug and sanitizer
// builds (STRATO_LOCK_GRAPH_DEFAULT_ON, set by CMake) and OFF in release
// builds, where each lock/unlock pays only one relaxed atomic load. Tests
// flip it with set_enabled() regardless of build type.
//
// Limitations (it is a debug net, not a proof): edges are keyed by mutex
// address, so ABBA on mutexes that never coexist is invisible after
// forget(); condition-variable waits keep the mutex on the waiter's held
// stack (the waiter cannot acquire anything else meanwhile, so no false
// edges result).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace strato::common {

class Mutex;

class LockGraph {
 public:
  /// A lock-order inversion: `acquiring` was requested while `held` was
  /// held, but the graph already proves `acquiring` precedes `held`.
  struct Violation {
    std::string held;       ///< label of the already-held mutex
    std::string acquiring;  ///< label of the mutex being acquired
    std::string report;     ///< human-readable edge description
  };

  static LockGraph& instance();

  /// Whether the build defaulted the detector on (Debug / sanitizer).
  static constexpr bool compiled_default() {
#if defined(STRATO_LOCK_GRAPH_DEFAULT_ON)
    return true;
#else
    return false;
#endif
  }

  void set_enabled(bool on);
  [[nodiscard]] bool enabled() const;

  /// Hook called by Mutex immediately before a (possibly blocking)
  /// acquisition: records held->m edges, checks for a cycle, and pushes
  /// `m` onto the calling thread's held stack.
  void on_acquire(const Mutex* m, const char* name);

  /// Hook called by Mutex before releasing: pops `m` from the calling
  /// thread's held stack (locks may be released in any order).
  void on_release(const Mutex* m);

  /// Drop every edge touching `m` (called by ~Mutex so a recycled address
  /// cannot inherit a dead mutex's ordering constraints).
  void forget(const Mutex* m);

  /// Inversions recorded since construction / the last reset(), oldest
  /// first. Each unique (held, acquiring) mutex pair is reported once.
  [[nodiscard]] std::vector<Violation> violations() const;
  [[nodiscard]] std::size_t violation_count() const;

  /// Clear the graph and the recorded violations (tests).
  void reset();

 private:
  LockGraph() = default;

  struct Impl;
  Impl& impl() const;
};

}  // namespace strato::common
