#include "common/checksum.h"

#include <cstring>

namespace strato::common {
namespace {

constexpr std::uint64_t kPrime1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kPrime2 = 0xC2B2AE3D27D4EB4FULL;
constexpr std::uint64_t kPrime3 = 0x165667B19E3779F9ULL;
constexpr std::uint64_t kPrime4 = 0x85EBCA77C2B2AE63ULL;
constexpr std::uint64_t kPrime5 = 0x27D4EB2F165667C5ULL;

inline std::uint64_t rotl(std::uint64_t v, int r) {
  return (v << r) | (v >> (64 - r));
}

inline std::uint64_t round1(std::uint64_t acc, std::uint64_t input) {
  acc += input * kPrime2;
  acc = rotl(acc, 31);
  acc *= kPrime1;
  return acc;
}

inline std::uint64_t merge_round(std::uint64_t acc, std::uint64_t val) {
  acc ^= round1(0, val);
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

// Finalisation over the <32-byte tail shared by one-shot and streaming paths.
std::uint64_t finalize(std::uint64_t h, const std::uint8_t* p,
                       std::size_t len) {
  while (len >= 8) {
    h ^= round1(0, load_u64(p));
    h = rotl(h, 27) * kPrime1 + kPrime4;
    p += 8;
    len -= 8;
  }
  if (len >= 4) {
    h ^= static_cast<std::uint64_t>(load_u32(p)) * kPrime1;
    h = rotl(h, 23) * kPrime2 + kPrime3;
    p += 4;
    len -= 4;
  }
  while (len > 0) {
    h ^= (*p) * kPrime5;
    h = rotl(h, 11) * kPrime1;
    ++p;
    --len;
  }
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace

std::uint64_t xxh64(ByteSpan data, std::uint64_t seed) {
  const std::uint8_t* p = data.data();
  std::size_t len = data.size();
  std::uint64_t h;
  if (len >= 32) {
    std::uint64_t v1 = seed + kPrime1 + kPrime2;
    std::uint64_t v2 = seed + kPrime2;
    std::uint64_t v3 = seed;
    std::uint64_t v4 = seed - kPrime1;
    const std::uint8_t* limit = p + len - 32;
    do {
      v1 = round1(v1, load_u64(p));
      v2 = round1(v2, load_u64(p + 8));
      v3 = round1(v3, load_u64(p + 16));
      v4 = round1(v4, load_u64(p + 24));
      p += 32;
    } while (p <= limit);
    h = rotl(v1, 1) + rotl(v2, 7) + rotl(v3, 12) + rotl(v4, 18);
    h = merge_round(h, v1);
    h = merge_round(h, v2);
    h = merge_round(h, v3);
    h = merge_round(h, v4);
  } else {
    h = seed + kPrime5;
  }
  h += static_cast<std::uint64_t>(data.size());
  const std::size_t consumed = static_cast<std::size_t>(p - data.data());
  return finalize(h, p, data.size() - consumed);
}

void Xxh64State::reset(std::uint64_t seed) {
  seed_ = seed;
  acc_[0] = seed + kPrime1 + kPrime2;
  acc_[1] = seed + kPrime2;
  acc_[2] = seed;
  acc_[3] = seed - kPrime1;
  buf_len_ = 0;
  total_len_ = 0;
}

void Xxh64State::update(ByteSpan data) {
  if (data.empty()) return;  // empty spans carry a null data() — no-op
  const std::uint8_t* p = data.data();
  std::size_t len = data.size();
  total_len_ += len;

  if (buf_len_ + len < 32) {
    std::memcpy(buf_ + buf_len_, p, len);
    buf_len_ += len;
    return;
  }
  if (buf_len_ > 0) {
    const std::size_t fill = 32 - buf_len_;
    std::memcpy(buf_ + buf_len_, p, fill);
    acc_[0] = round1(acc_[0], load_u64(buf_));
    acc_[1] = round1(acc_[1], load_u64(buf_ + 8));
    acc_[2] = round1(acc_[2], load_u64(buf_ + 16));
    acc_[3] = round1(acc_[3], load_u64(buf_ + 24));
    p += fill;
    len -= fill;
    buf_len_ = 0;
  }
  // Keep the accumulators in registers across the whole bulk, striding two
  // stripes per iteration: a chunked 128 KB block verify then re-reads the
  // lane state from memory once per update() call instead of once per
  // 32-byte stripe, and the unroll keeps the load ports busy. Streaming
  // digests stay bit-identical to the one-shot path (spec order is
  // preserved).
  std::uint64_t v1 = acc_[0];
  std::uint64_t v2 = acc_[1];
  std::uint64_t v3 = acc_[2];
  std::uint64_t v4 = acc_[3];
  while (len >= 64) {
    v1 = round1(v1, load_u64(p));
    v2 = round1(v2, load_u64(p + 8));
    v3 = round1(v3, load_u64(p + 16));
    v4 = round1(v4, load_u64(p + 24));
    v1 = round1(v1, load_u64(p + 32));
    v2 = round1(v2, load_u64(p + 40));
    v3 = round1(v3, load_u64(p + 48));
    v4 = round1(v4, load_u64(p + 56));
    p += 64;
    len -= 64;
  }
  if (len >= 32) {
    v1 = round1(v1, load_u64(p));
    v2 = round1(v2, load_u64(p + 8));
    v3 = round1(v3, load_u64(p + 16));
    v4 = round1(v4, load_u64(p + 24));
    p += 32;
    len -= 32;
  }
  acc_[0] = v1;
  acc_[1] = v2;
  acc_[2] = v3;
  acc_[3] = v4;
  if (len > 0) {
    // The sub-stripe remainder is buffered with one wide copy (not a
    // byte-at-a-time tail): the next update() or digest() consumes it via
    // 8-byte loads from buf_.
    std::memcpy(buf_, p, len);
    buf_len_ = len;
  }
}

std::uint64_t Xxh64State::digest() const {
  std::uint64_t h;
  if (total_len_ >= 32) {
    h = rotl(acc_[0], 1) + rotl(acc_[1], 7) + rotl(acc_[2], 12) +
        rotl(acc_[3], 18);
    h = merge_round(h, acc_[0]);
    h = merge_round(h, acc_[1]);
    h = merge_round(h, acc_[2]);
    h = merge_round(h, acc_[3]);
  } else {
    h = seed_ + kPrime5;
  }
  h += total_len_;
  return finalize(h, buf_, buf_len_);
}

}  // namespace strato::common
