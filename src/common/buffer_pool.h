// Reusable block-buffer pool.
//
// Every 128 KB channel block used to cost at least two short-lived
// std::vector allocations on the hot path: the frame the codec writes into
// and, with the parallel pipeline, the raw copy handed to a worker. At
// link-saturating rates those allocations (and the page faults behind
// freshly mapped pages) show up prominently in profiles. BufferPool keeps a
// bounded free list of Bytes buffers so steady-state compression recycles
// the same few blocks of memory instead of round-tripping the allocator.
//
// Thread-safe: the parallel pipeline's workers acquire/release frames
// concurrently with the submitting thread recycling raw-block copies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace strato::common {

/// Bounded free list of reusable byte buffers.
class BufferPool {
 public:
  /// @param max_buffers free-list bound; released buffers beyond it are
  ///                    dropped (freed) instead of retained.
  explicit BufferPool(std::size_t max_buffers = 32);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A buffer with capacity >= min_capacity and size 0. Reuses a pooled
  /// buffer when one is available, preferring one already large enough.
  [[nodiscard]] Bytes acquire(std::size_t min_capacity);

  /// Return a buffer to the pool. Contents are irrelevant; the buffer is
  /// dropped when the free list is full.
  void release(Bytes buf);

  /// Counters for tests and benches.
  struct Stats {
    std::uint64_t acquires = 0;  ///< total acquire() calls
    std::uint64_t reuses = 0;    ///< acquires served from the free list
    std::uint64_t drops = 0;     ///< releases dropped because the list was full
    std::size_t free_buffers = 0;
  };
  [[nodiscard]] Stats stats() const;

  /// Process-wide pool used by the serial compression paths (the parallel
  /// pipeline owns a private pool sized to its reorder window).
  static BufferPool& shared();

 private:
  mutable Mutex mu_{"BufferPool::mu_"};
  std::vector<Bytes> free_ STRATO_GUARDED_BY(mu_);
  std::size_t max_buffers_;
  std::uint64_t acquires_ STRATO_GUARDED_BY(mu_) = 0;
  std::uint64_t reuses_ STRATO_GUARDED_BY(mu_) = 0;
  std::uint64_t drops_ STRATO_GUARDED_BY(mu_) = 0;
};

/// RAII lease: acquire on construction, release on scope exit.
class PooledBuffer {
 public:
  PooledBuffer(BufferPool& pool, std::size_t min_capacity)
      : pool_(&pool), buf_(pool.acquire(min_capacity)) {}
  ~PooledBuffer() {
    if (pool_ != nullptr) pool_->release(std::move(buf_));
  }

  PooledBuffer(PooledBuffer&& other) noexcept
      : pool_(other.pool_), buf_(std::move(other.buf_)) {
    other.pool_ = nullptr;
  }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  PooledBuffer& operator=(PooledBuffer&&) = delete;

  [[nodiscard]] Bytes& operator*() { return buf_; }
  [[nodiscard]] Bytes* operator->() { return &buf_; }

 private:
  BufferPool* pool_;
  Bytes buf_;
};

}  // namespace strato::common
