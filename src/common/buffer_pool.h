// Reusable block-buffer pool.
//
// Every 128 KB channel block used to cost at least two short-lived
// std::vector allocations on the hot path: the frame the codec writes into
// and, with the parallel pipeline, the raw copy handed to a worker. At
// link-saturating rates those allocations (and the page faults behind
// freshly mapped pages) show up prominently in profiles. BufferPool keeps a
// bounded free list of Bytes buffers so steady-state compression recycles
// the same few blocks of memory instead of round-tripping the allocator.
//
// Lifetime discipline (DESIGN.md section 14): every span handed out over a
// pooled buffer is a borrow that dies with the buffer's lease. The borrow
// is machine-checked at three layers — STRATO_LIFETIME_BOUND annotations
// (compile time, Clang), the strato-lint `lifetime` flow rule (lint time),
// and this pool's debug mode (run time): when poisoning is enabled
// (default-on in Debug and sanitizer builds, STRATO_POOL_POISON=0/1
// overrides), release() stamps the buffer with kPoisonByte, bumps its
// generation tag, optionally parks it in a quarantine FIFO to delay reuse,
// and — under AddressSanitizer — poisons the memory region so any stale
// span dereference aborts deterministically instead of shipping a corrupt
// frame. acquire() unpoisons before handing the buffer back out.
//
// Thread-safe: the parallel pipeline's workers acquire/release frames
// concurrently with the submitting thread recycling raw-block copies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/lifetime_annotations.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace strato::common {

/// Bounded free list of reusable byte buffers.
class BufferPool {
 public:
  /// Pattern stamped over released bytes in poison mode: a stale span read
  /// observes 0xA5 instead of the frame that used to live there.
  static constexpr std::uint8_t kPoisonByte = 0xA5;

  /// @param max_buffers free-list bound; released buffers beyond it are
  ///                    dropped (freed) instead of retained.
  explicit BufferPool(std::size_t max_buffers = 32);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// A buffer with capacity >= min_capacity and size 0. Reuses a pooled
  /// buffer when one is available, preferring one already large enough.
  [[nodiscard]] Bytes acquire(std::size_t min_capacity);

  /// Return a buffer to the pool. Contents are irrelevant; the buffer is
  /// dropped when the free list is full. In poison mode the contents are
  /// stamped with kPoisonByte and the buffer's generation tag is bumped
  /// before it becomes reusable — any span still pointing into it is dead.
  void release(Bytes buf);

  /// Poison-on-release debug mode. Defaults to the build-wide setting
  /// (STRATO_POOL_POISON_DEFAULT_ON in Debug/sanitizer builds) overridden
  /// by the STRATO_POOL_POISON=0/1 environment variable; this call
  /// overrides both for this pool.
  void set_poison(bool enabled);
  [[nodiscard]] bool poison_enabled() const;

  /// Quarantine FIFO depth: released buffers pass through a FIFO of this
  /// many buffers before re-entering the free list, so a stale span keeps
  /// pointing at poisoned (ASan: inaccessible) memory for longer instead
  /// of silently aliasing the next acquire. 0 disables (default; the
  /// STRATO_POOL_QUARANTINE environment variable sets the initial depth).
  void set_quarantine(std::size_t depth);

  /// Generation tag of the pooled allocation starting at `data`: bumped on
  /// every release of that buffer, so a lease-holder can assert its span
  /// is still current. 0 = unknown allocation (never pooled here, or
  /// dropped). Tags are tracked only while poison mode is enabled.
  [[nodiscard]] std::uint64_t generation(const void* data) const;

  /// Counters for tests and benches.
  struct Stats {
    std::uint64_t acquires = 0;  ///< total acquire() calls
    std::uint64_t reuses = 0;    ///< acquires served from the free list
    std::uint64_t drops = 0;     ///< releases dropped because the list was full
    std::size_t free_buffers = 0;
    std::uint64_t poisons = 0;      ///< releases that stamped kPoisonByte
    std::uint64_t unpoisons = 0;    ///< acquires that unpoisoned a buffer
    std::size_t quarantined = 0;    ///< buffers currently parked in the FIFO
    std::uint64_t generations = 0;  ///< sum of all generation bumps
  };
  [[nodiscard]] Stats stats() const;

  /// Process-wide pool used by the serial compression paths (the parallel
  /// pipeline owns a private pool sized to its reorder window).
  static BufferPool& shared();

 private:
  /// Stamp + tag + ASan-poison under mu_; returns false when the buffer
  /// has no backing allocation (capacity 0 — nothing to poison).
  void poison_locked(Bytes& buf) STRATO_REQUIRES(mu_);
  /// Undo the ASan poisoning and drop the quarantine hold before a buffer
  /// is handed out or freed.
  void unpoison_locked(Bytes& buf) STRATO_REQUIRES(mu_);
  /// Move quarantined buffers whose hold expired onto the free list (or
  /// drop them when the list is full).
  void drain_quarantine_locked() STRATO_REQUIRES(mu_);

  mutable Mutex mu_{"BufferPool::mu_"};
  std::vector<Bytes> free_ STRATO_GUARDED_BY(mu_);
  std::size_t max_buffers_;
  bool poison_ STRATO_GUARDED_BY(mu_);
  std::size_t quarantine_depth_ STRATO_GUARDED_BY(mu_);
  std::deque<Bytes> quarantine_ STRATO_GUARDED_BY(mu_);
  /// data() pointer -> generation tag. Populated only in poison mode;
  /// entries die when their buffer is dropped from the pool.
  std::unordered_map<const void*, std::uint64_t> gen_ STRATO_GUARDED_BY(mu_);
  std::uint64_t acquires_ STRATO_GUARDED_BY(mu_) = 0;
  std::uint64_t reuses_ STRATO_GUARDED_BY(mu_) = 0;
  std::uint64_t drops_ STRATO_GUARDED_BY(mu_) = 0;
  std::uint64_t poisons_ STRATO_GUARDED_BY(mu_) = 0;
  std::uint64_t unpoisons_ STRATO_GUARDED_BY(mu_) = 0;
  std::uint64_t generations_ STRATO_GUARDED_BY(mu_) = 0;
};

/// RAII lease: acquire on construction, release (poison) on scope exit.
/// Spans taken from the lease are borrows of the lease object — annotated
/// so a Clang build rejects keeping one past the lease's death.
class PoolLease {
 public:
  PoolLease(BufferPool& pool, std::size_t min_capacity)
      : pool_(&pool), buf_(pool.acquire(min_capacity)) {}
  ~PoolLease() {
    if (pool_ != nullptr) pool_->release(std::move(buf_));
  }

  PoolLease(PoolLease&& other) noexcept
      : pool_(other.pool_), buf_(std::move(other.buf_)) {
    other.pool_ = nullptr;
  }
  PoolLease(const PoolLease&) = delete;
  PoolLease& operator=(const PoolLease&) = delete;
  PoolLease& operator=(PoolLease&&) = delete;

  [[nodiscard]] Bytes& operator*() STRATO_LIFETIME_BOUND { return buf_; }
  [[nodiscard]] Bytes* operator->() STRATO_LIFETIME_BOUND { return &buf_; }
  /// Read view of the leased bytes; dies with the lease.
  [[nodiscard]] ByteSpan span() const STRATO_LIFETIME_BOUND {
    return {buf_.data(), buf_.size()};
  }
  /// Writable view of the leased bytes; dies with the lease.
  [[nodiscard]] MutableByteSpan mutable_span() STRATO_LIFETIME_BOUND {
    return {buf_.data(), buf_.size()};
  }

 private:
  BufferPool* pool_;
  Bytes buf_;
};

}  // namespace strato::common
