// Vectorized single-core kernel layer: the ONLY file in the tree where
// CPU intrinsics and the __builtin_ctz family may appear (enforced by the
// strato-lint `simd` rule). Everything above this header — LZ match loops,
// wild copies, bulk hashing — calls through the dispatched `Kernels` table
// so exactly one place knows about SSE2/AVX2/NEON.
//
// Contracts (identical across every ISA, including the scalar fallback):
//
//   * match_length(a, b, limit): length of the common prefix of [a, limit)
//     and [b, ...), b < a. Never reads at or past `limit`. Pure function —
//     all ISAs return the same value, so match choices (and therefore the
//     wire bytes) cannot depend on the dispatched level.
//   * wild_copy(dst, src, len): copies len bytes in full-register strides;
//     may write up to kWildCopyPad - 1 bytes past dst + len and read the
//     same margin past src + len. Callers guarantee both margins
//     (over-allocated scratch on the encode side).
//   * copy_match(dst, dist, len, wild_end): LZ77 match expansion — the
//     byte-serial semantics dst[i] = dst[i - dist] for i in [0, len),
//     overlap-correct for any dist >= 1 via the overlap-widening idiom
//     (see below). Never writes at or past wild_end; when the wild margin
//     does not fit it degrades to an exact byte loop, so exact-size decode
//     buffers need no padding.
//   * hash4_bulk(src, count, bits, out): out[j] = hash of the 4-byte group
//     at src + j (the multiplicative LZ hash, identical to
//     compress::detail::lz_hash32). Reads src[0 .. count + 2].
//
// Only the bytes [dst, dst + len) of a copy are specified; the wild margin
// may receive ISA-dependent garbage. Every caller either over-allocates
// scratch it never reads back (encode) or overwrites the margin with the
// next sequence before it can be observed (decode), which is what keeps
// the wire and the decoded payload byte-identical across ISAs.
//
// Dispatch happens once, on first use: compile-time capability (this
// build's target + -DSTRATO_SIMD), runtime capability (cpuid / platform
// baseline), then the STRATO_SIMD environment override (OFF|scalar|sse2|
// avx2|neon) for A/B runs. Tests force a level in-process via force_isa().
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string_view>

#if !defined(STRATO_SIMD_DISABLED) && (defined(__x86_64__) || defined(_M_X64))
#define STRATO_SIMD_X86 1
#include <immintrin.h>
#endif
#if !defined(STRATO_SIMD_DISABLED) && defined(__aarch64__)
#define STRATO_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace strato::common::simd {

/// Wild copies may overshoot a copy's nominal length by up to this many
/// bytes (one 32-byte register). Encode-side scratch is over-allocated by
/// at least this much; decode-side kernels take an explicit wild_end.
inline constexpr std::size_t kWildCopyPad = 32;

/// Instruction-set level of a kernel table, in increasing preference.
enum class Isa : std::uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2, kNeon = 3 };

inline const char* to_string(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kSse2: return "sse2";
    case Isa::kAvx2: return "avx2";
    case Isa::kNeon: return "neon";
  }
  return "?";
}

/// Count of trailing zero bits; v must be nonzero.
inline int ctz64(std::uint64_t v) { return __builtin_ctzll(v); }
inline int ctz32(std::uint32_t v) {
  return __builtin_ctz(v);  // strato-lint: allow(simd) — this IS simd.h
}

/// One resolved kernel set. Fetch once per block (kernels()) and call
/// through the members — the indirection is hoisted out of the hot loops.
struct Kernels {
  Isa isa;
  std::size_t (*match_length)(const std::uint8_t* a, const std::uint8_t* b,
                              const std::uint8_t* limit);
  void (*wild_copy)(std::uint8_t* dst, const std::uint8_t* src,
                    std::size_t len);
  void (*copy_match)(std::uint8_t* dst, std::size_t dist, std::size_t len,
                     std::uint8_t* wild_end);
  void (*hash4_bulk)(const std::uint8_t* src, std::size_t count, int bits,
                     std::uint32_t* out);
};

namespace detail {

/// The multiplicative LZ hash (kept in lock-step with
/// compress::detail::lz_hash32; hash4_bulk's unit test pins the identity).
inline std::uint32_t hash_u32(std::uint32_t v, int bits) {
  return (v * 2654435761u) >> (32 - bits);
}

inline std::uint32_t load32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
inline std::uint64_t load64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

// ---------------------------------------------------------------------
// Scalar reference kernels (the semantics every vector path must match).
// ---------------------------------------------------------------------

inline std::size_t scalar_match_length(const std::uint8_t* a,
                                       const std::uint8_t* b,
                                       const std::uint8_t* limit) {
  const std::uint8_t* start = a;
  while (a + 8 <= limit) {
    const std::uint64_t diff = load64(a) ^ load64(b);
    if (diff != 0) {
      return static_cast<std::size_t>(a - start) +
             static_cast<std::size_t>(ctz64(diff) >> 3);
    }
    a += 8;
    b += 8;
  }
  while (a < limit && *a == *b) {
    ++a;
    ++b;
  }
  return static_cast<std::size_t>(a - start);
}

inline void scalar_wild_copy(std::uint8_t* dst, const std::uint8_t* src,
                             std::size_t len) {
  // 16-byte memcpy strides: the compiler lowers each to two word moves
  // (or one vector move when the baseline allows) without intrinsics.
  std::size_t i = 0;
  do {
    std::memcpy(dst + i, src + i, 16);
    i += 16;
  } while (i < len);
}

/// Exact (non-wild) overlap-correct byte copy — the tail/fallback path of
/// every copy_match kernel and the semantic definition of a match copy.
inline void exact_copy_match(std::uint8_t* dst, std::size_t dist,
                             std::size_t len) {
  const std::uint8_t* src = dst - dist;
  if (dist >= 8) {
    std::size_t i = 0;
    for (; i + 8 <= len; i += 8) std::memcpy(dst + i, src + i, 8);
    for (; i < len; ++i) dst[i] = src[i];
  } else {
    for (std::size_t i = 0; i < len; ++i) dst[i] = src[i];
  }
}

/// Overlap-widening idiom, shared by every vector kernel: a match at
/// distance dist < stride cannot be copied in stride-byte blocks directly
/// (source and destination overlap within one block). But the match source
/// is periodic with period dist, so reading at any multiple of dist yields
/// the same bytes. Byte-copy a short prefix to push the cursor forward,
/// then copy the rest at the widened distance
///     D = dist * ceil(stride / dist)  (>= stride)
/// which is overlap-free for stride-byte blocks. The prefix is D - dist
/// bytes (< stride + dist <= 2 * stride), so the scalar work is bounded by
/// two registers' worth regardless of len.
///
/// This helper performs the scalar prefix and returns the widened
/// distance; each ISA's copy_match runs its own strided loop from
/// dst + *pos at that distance (lambdas cannot carry target attributes,
/// so the strided loop cannot be shared).
inline std::size_t widen_overlap(std::uint8_t* dst, std::size_t dist,
                                 std::size_t len, std::size_t stride,
                                 std::size_t* pos) {
  *pos = 0;
  if (dist >= stride) return dist;
  const std::size_t wide = dist * ((stride + dist - 1) / dist);
  const std::size_t prefix = wide - dist;  // makes dst - wide a valid source
  const std::uint8_t* src = dst - dist;
  std::size_t p = 0;
  for (; p < prefix && p < len; ++p) dst[p] = src[p];
  *pos = p;
  return wide;
}

inline void scalar_copy_match(std::uint8_t* dst, std::size_t dist,
                              std::size_t len, std::uint8_t* wild_end) {
  if (dst + len + 16 > wild_end) {
    exact_copy_match(dst, dist, len);
    return;
  }
  std::size_t pos = 0;
  const std::size_t wide = widen_overlap(dst, dist, len, 16, &pos);
  const std::uint8_t* src = dst - wide;
  while (pos < len) {
    std::memcpy(dst + pos, src + pos, 16);
    pos += 16;
  }
}

inline void scalar_hash4_bulk(const std::uint8_t* src, std::size_t count,
                              int bits, std::uint32_t* out) {
  for (std::size_t j = 0; j < count; ++j) {
    out[j] = hash_u32(load32(src + j), bits);
  }
}

inline constexpr Kernels kScalarKernels{Isa::kScalar, scalar_match_length,
                                        scalar_wild_copy, scalar_copy_match,
                                        scalar_hash4_bulk};

// ---------------------------------------------------------------------
// x86: SSE2 baseline + AVX2 (runtime-detected, target-attributed so the
// rest of the TU stays at the build's baseline ISA).
// ---------------------------------------------------------------------
#if STRATO_SIMD_X86

inline std::size_t sse2_match_length(const std::uint8_t* a,
                                     const std::uint8_t* b,
                                     const std::uint8_t* limit) {
  const std::uint8_t* start = a;
  while (a + 16 <= limit) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
    const std::uint32_t eq = static_cast<std::uint32_t>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(va, vb)));
    if (eq != 0xFFFFu) {
      return static_cast<std::size_t>(a - start) +
             static_cast<std::size_t>(ctz32(~eq & 0xFFFFu));
    }
    a += 16;
    b += 16;
  }
  return static_cast<std::size_t>(a - start) + scalar_match_length(a, b, limit);
}

inline void sse2_wild_copy(std::uint8_t* dst, const std::uint8_t* src,
                           std::size_t len) {
  std::size_t i = 0;
  do {
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst + i),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i)));
    i += 16;
  } while (i < len);
}

inline void sse2_copy_match(std::uint8_t* dst, std::size_t dist,
                            std::size_t len, std::uint8_t* wild_end) {
  if (dst + len + 16 > wild_end) {
    exact_copy_match(dst, dist, len);
    return;
  }
  std::size_t pos = 0;
  const std::size_t wide = widen_overlap(dst, dist, len, 16, &pos);
  const std::uint8_t* src = dst - wide;
  while (pos < len) {
    _mm_storeu_si128(
        reinterpret_cast<__m128i*>(dst + pos),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + pos)));
    pos += 16;
  }
}

inline constexpr Kernels kSse2Kernels{Isa::kSse2, sse2_match_length,
                                      sse2_wild_copy, sse2_copy_match,
                                      scalar_hash4_bulk};

__attribute__((target("avx2"))) inline std::size_t avx2_match_length(
    const std::uint8_t* a, const std::uint8_t* b, const std::uint8_t* limit) {
  const std::uint8_t* start = a;
  while (a + 32 <= limit) {
    const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
    const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
    const std::uint32_t eq = static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb)));
    if (eq != 0xFFFFFFFFu) {
      return static_cast<std::size_t>(a - start) +
             static_cast<std::size_t>(ctz32(~eq));
    }
    a += 32;
    b += 32;
  }
  return static_cast<std::size_t>(a - start) + sse2_match_length(a, b, limit);
}

__attribute__((target("avx2"))) inline void avx2_wild_copy(
    std::uint8_t* dst, const std::uint8_t* src, std::size_t len) {
  std::size_t i = 0;
  do {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i)));
    i += 32;
  } while (i < len);
}

__attribute__((target("avx2"))) inline void avx2_copy_match(
    std::uint8_t* dst, std::size_t dist, std::size_t len,
    std::uint8_t* wild_end) {
  if (dst + len + 32 > wild_end) {
    exact_copy_match(dst, dist, len);
    return;
  }
  std::size_t pos = 0;
  const std::size_t wide = widen_overlap(dst, dist, len, 32, &pos);
  const std::uint8_t* src = dst - wide;
  while (pos < len) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + pos),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + pos)));
    pos += 32;
  }
}

/// 4 consecutive 4-byte windows per step: one 16-byte load covers bytes
/// [j, j+7); an SSSE3 shuffle fans them out into the lanes {j..j+3},
/// {j+1..j+4}, {j+2..j+5}, {j+3..j+6}, then a SIMD multiply + shift
/// applies the multiplicative hash to all four at once. (AVX2 implies
/// SSSE3/SSE4.1, so the 128-bit ops are safe inside this target.)
__attribute__((target("avx2"))) inline void avx2_hash4_bulk(
    const std::uint8_t* src, std::size_t count, int bits,
    std::uint32_t* out) {
  const __m128i mul = _mm_set1_epi32(static_cast<int>(2654435761u));
  const __m128i fan = _mm_setr_epi8(0, 1, 2, 3, 1, 2, 3, 4,  //
                                    2, 3, 4, 5, 3, 4, 5, 6);
  const int shift = 32 - bits;
  std::size_t j = 0;
  // Each step's 8-byte load reads src[j .. j+7]; stopping at j + 5 <= count
  // keeps the furthest read at src[count+2], the same bound the scalar
  // tail needs (position count-1 reads src[count+2]).
  for (; j + 5 <= count; j += 4) {
    const __m128i raw =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + j));
    const __m128i windows = _mm_shuffle_epi8(raw, fan);
    const __m128i hashed =
        _mm_srli_epi32(_mm_mullo_epi32(windows, mul), shift);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + j), hashed);
  }
  for (; j < count; ++j) out[j] = hash_u32(load32(src + j), bits);
}

inline constexpr Kernels kAvx2Kernels{Isa::kAvx2, avx2_match_length,
                                      avx2_wild_copy, avx2_copy_match,
                                      avx2_hash4_bulk};
#endif  // STRATO_SIMD_X86

// ---------------------------------------------------------------------
// aarch64 NEON (baseline on that platform, no runtime probe needed).
// ---------------------------------------------------------------------
#if STRATO_SIMD_NEON

inline std::size_t neon_match_length(const std::uint8_t* a,
                                     const std::uint8_t* b,
                                     const std::uint8_t* limit) {
  const std::uint8_t* start = a;
  while (a + 16 <= limit) {
    const uint8x16_t va = vld1q_u8(a);
    const uint8x16_t vb = vld1q_u8(b);
    const uint8x16_t ne = veorq_u8(va, vb);
    // Narrow the 128-bit compare to 64 bits (4 bits per byte lane), then
    // ctz picks the first differing byte.
    const std::uint64_t mask = vget_lane_u64(
        vreinterpret_u64_u8(vshrn_n_u16(vreinterpretq_u16_u8(ne), 4)), 0);
    if (mask != 0) {
      return static_cast<std::size_t>(a - start) +
             static_cast<std::size_t>(ctz64(mask) >> 2);
    }
    a += 16;
    b += 16;
  }
  return static_cast<std::size_t>(a - start) + scalar_match_length(a, b, limit);
}

inline void neon_wild_copy(std::uint8_t* dst, const std::uint8_t* src,
                           std::size_t len) {
  std::size_t i = 0;
  do {
    vst1q_u8(dst + i, vld1q_u8(src + i));
    i += 16;
  } while (i < len);
}

inline void neon_copy_match(std::uint8_t* dst, std::size_t dist,
                            std::size_t len, std::uint8_t* wild_end) {
  if (dst + len + 16 > wild_end) {
    exact_copy_match(dst, dist, len);
    return;
  }
  std::size_t pos = 0;
  const std::size_t wide = widen_overlap(dst, dist, len, 16, &pos);
  const std::uint8_t* src = dst - wide;
  while (pos < len) {
    vst1q_u8(dst + pos, vld1q_u8(src + pos));
    pos += 16;
  }
}

inline constexpr Kernels kNeonKernels{Isa::kNeon, neon_match_length,
                                      neon_wild_copy, neon_copy_match,
                                      scalar_hash4_bulk};
#endif  // STRATO_SIMD_NEON

/// Best kernel table this build + CPU supports.
inline const Kernels& best_supported() {
#if STRATO_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return kAvx2Kernels;
  return kSse2Kernels;
#elif STRATO_SIMD_NEON
  return kNeonKernels;
#else
  return kScalarKernels;
#endif
}

/// Table for an explicitly requested level; nullptr when this build/CPU
/// cannot honor it.
inline const Kernels* table_for(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return &kScalarKernels;
    case Isa::kSse2:
#if STRATO_SIMD_X86
      return &kSse2Kernels;
#else
      return nullptr;
#endif
    case Isa::kAvx2:
#if STRATO_SIMD_X86
      return __builtin_cpu_supports("avx2") ? &kAvx2Kernels : nullptr;
#else
      return nullptr;
#endif
    case Isa::kNeon:
#if STRATO_SIMD_NEON
      return &kNeonKernels;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

/// One-time initial dispatch: capability, then the STRATO_SIMD env
/// override (OFF and scalar force the fallback; sse2/avx2/neon request a
/// specific level and fall back to the best supported when unavailable).
inline const Kernels& initial_dispatch() {
  const char* env = std::getenv("STRATO_SIMD");
  if (env != nullptr && *env != '\0') {
    const std::string_view v(env);
    if (v == "OFF" || v == "off" || v == "0" || v == "scalar") {
      return kScalarKernels;
    }
    const Kernels* forced = nullptr;
    if (v == "sse2") forced = table_for(Isa::kSse2);
    if (v == "avx2") forced = table_for(Isa::kAvx2);
    if (v == "neon") forced = table_for(Isa::kNeon);
    if (forced != nullptr) return *forced;
  }
  return best_supported();
}

inline std::atomic<const Kernels*>& active_table() {
  static std::atomic<const Kernels*> table{&initial_dispatch()};
  return table;
}

}  // namespace detail

/// The dispatched kernel table. Cache the reference at block scope; the
/// table never changes mid-run outside of test force_isa() calls.
inline const Kernels& kernels() {
  return *detail::active_table().load(std::memory_order_relaxed);
}

/// Best ISA this build + CPU can run (ignores env override / forcing).
inline Isa detected_isa() { return detail::best_supported().isa; }

/// Currently active ISA.
inline Isa active_isa() { return kernels().isa; }

/// Test hook: force a specific kernel table (e.g. scalar-vs-simd identity
/// checks in one process). Returns false, leaving the dispatch unchanged,
/// when this build/CPU cannot run `isa`. Not intended for concurrent use
/// with in-flight compression.
inline bool force_isa(Isa isa) {
  const Kernels* t = detail::table_for(isa);
  if (t == nullptr) return false;
  detail::active_table().store(t, std::memory_order_relaxed);
  return true;
}

/// RAII forcing for tests: restores the previously active table.
class ScopedIsa {
 public:
  explicit ScopedIsa(Isa isa)
      : prev_(&kernels()), ok_(force_isa(isa)) {}
  ~ScopedIsa() { detail::active_table().store(prev_, std::memory_order_relaxed); }
  ScopedIsa(const ScopedIsa&) = delete;
  ScopedIsa& operator=(const ScopedIsa&) = delete;
  /// False when the requested ISA is unsupported (table left unchanged).
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  const Kernels* prev_;
  bool ok_;
};

}  // namespace strato::common::simd
