// Clang lifetime annotation macros — the borrow-checking sibling of
// thread_annotations.h.
//
// The zero-copy wire path hands out non-owning views into pooled memory
// everywhere: FrameView payloads point into receive segments,
// recv_span() exposes writable segment tails, next_block() leases a
// pooled output buffer until the next call. None of that is visible to
// the type system — a span outliving its segment's lease compiles
// silently and corrupts wires at runtime. STRATO_LIFETIME_BOUND marks
// the parameter (or the implicit object parameter, when placed after the
// cv-qualifiers of a member function) that the returned reference/span
// borrows from, so a Clang build diagnoses "call on a temporary, result
// kept" and "returned borrow of a dead local" at compile time. Under GCC
// the macro expands to nothing and costs nothing.
//
// The annotation is one of three layers (DESIGN.md section 14):
//   compile time  STRATO_LIFETIME_BOUND + -Werror on the dangling
//                 diagnostics (scripts/check_static.sh, Clang leg)
//   lint time     the strato-lint `lifetime` flow rule (pooled spans may
//                 not be stored to members/globals or used across a
//                 release()/commit() point without an allow())
//   run time      BufferPool poison-on-release + generation tags
//                 (STRATO_POOL_POISON), fatal under the ASan gate
//
// Usage:
//   ByteSpan span() const STRATO_LIFETIME_BOUND;          // borrows *this
//   ByteSpan as_bytes(std::string_view s STRATO_LIFETIME_BOUND);
//
// Reference: https://clang.llvm.org/docs/AttributeReference.html#lifetimebound
#pragma once

#if defined(__clang__)
#define STRATO_LIFETIME_BOUND [[clang::lifetimebound]]
#else
#define STRATO_LIFETIME_BOUND  // no-op on GCC/MSVC
#endif
