#include "common/logging.h"

#include <atomic>

namespace strato::common {
namespace {
std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mu;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel log_threshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_threshold.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard lk(g_mu);
  std::cerr << "[" << level_name(level) << "] " << msg << "\n";
}

}  // namespace strato::common
