#include "common/logging.h"

#include <atomic>

#include "common/mutex.h"

namespace strato::common {
namespace {
std::atomic<int> g_threshold{static_cast<int>(LogLevel::kWarn)};
Mutex g_mu{"logging::g_mu"};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel log_threshold() {
  return static_cast<LogLevel>(g_threshold.load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) {
  g_threshold.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& msg) {
  if (static_cast<int>(level) < g_threshold.load(std::memory_order_relaxed)) {
    return;
  }
  MutexLock lk(g_mu);
  std::cerr << "[" << level_name(level) << "] " << msg << "\n";
}

}  // namespace strato::common
