#include "common/chaos.h"

#include <algorithm>

#include "common/rng.h"

namespace strato::common {

ChaosSchedule ChaosSchedule::scripted(std::vector<ChaosEvent> events) {
  ChaosSchedule s;
  s.events_ = std::move(events);
  std::stable_sort(s.events_.begin(), s.events_.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at < b.at;
                   });
  return s;
}

ChaosSchedule ChaosSchedule::random(const RandomSpec& spec,
                                    std::uint64_t seed) {
  Xoshiro256 rng(seed ^ 0xC4A05C0000000001ULL);
  std::vector<ChaosEvent> events;
  const std::uint64_t range = spec.range == 0 ? 1 : spec.range;
  for (int i = 0; i < spec.stalls; ++i) {
    ChaosEvent ev;
    ev.kind = ChaosKind::kStall;
    ev.at = rng.below(range);
    // Exponential-ish spread around the mean keeps stalls heterogeneous.
    ev.stall_ns = 1 + static_cast<std::uint64_t>(
                          static_cast<double>(spec.mean_stall_ns) *
                          (0.25 + 1.5 * rng.uniform()));
    events.push_back(ev);
  }
  for (int i = 0; i < spec.drops; ++i) {
    ChaosEvent ev;
    ev.kind = ChaosKind::kDrop;
    ev.at = rng.below(range);
    ev.span = 1 + rng.below(std::max<std::uint64_t>(1, spec.max_drop_span));
    events.push_back(ev);
  }
  for (int i = 0; i < spec.corruptions; ++i) {
    ChaosEvent ev;
    ev.kind = ChaosKind::kCorrupt;
    ev.at = rng.below(range);
    ev.xor_mask = static_cast<std::uint8_t>(1 + rng.below(255));
    events.push_back(ev);
  }
  return scripted(std::move(events));
}

double ChaosSchedule::capacity_factor(std::uint64_t now_ns) const {
  double f = 1.0;
  for (const auto& ev : events_) {
    if (ev.kind != ChaosKind::kBlackout) continue;
    if (ev.at > now_ns) break;  // sorted: no later window can cover now
    if (now_ns < ev.at + ev.span) {
      f *= std::clamp(ev.factor, 0.0, 1.0);
    }
  }
  return f;
}

}  // namespace strato::common
