// Minimal fixed-size thread pool.
//
// The dataflow executor runs each task vertex on a pool thread; benches use
// it to run independent experiment repetitions concurrently.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace strato::common {

/// Fixed-size pool executing std::function jobs FIFO.
///
/// Shutdown semantics (relied on by compress::ParallelBlockPipeline): every
/// job accepted by submit() runs to completion before shutdown() returns —
/// queued jobs are drained, never discarded — and submit() after shutdown
/// throws instead of silently enqueueing work that would never run (which
/// used to surface as a broken-promise future at some later get()).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job; returns a future for its completion. Exceptions thrown
  /// by the job are captured into the future; the worker survives.
  /// @throws std::runtime_error after shutdown().
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    auto fut = task->get_future();
    {
      MutexLock lk(mu_);
      if (stop_) {
        throw std::runtime_error("thread pool: submit after shutdown");
      }
      jobs_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Drain all queued jobs, then join the workers. Idempotent; invoked by
  /// the destructor. Further submit() calls throw.
  void shutdown();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  Mutex mu_{"ThreadPool::mu_"};
  CondVar cv_;
  std::deque<std::function<void()>> jobs_ STRATO_GUARDED_BY(mu_);
  std::vector<std::thread> workers_;
  bool stop_ STRATO_GUARDED_BY(mu_) = false;
};

}  // namespace strato::common
