// Minimal fixed-size thread pool.
//
// The dataflow executor runs each task vertex on a pool thread; benches use
// it to run independent experiment repetitions concurrently.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace strato::common {

/// Fixed-size pool executing std::function jobs FIFO.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job; returns a future for its completion.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    auto fut = task->get_future();
    {
      std::lock_guard lk(mu_);
      jobs_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> jobs_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace strato::common
