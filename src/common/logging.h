// Tiny leveled logger.
//
// Benches and examples narrate their progress through this; the library
// itself stays quiet below WARN by default.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace strato::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

/// Emit one line (thread-safe).
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, os_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace strato::common

#define STRATO_LOG(level) \
  ::strato::common::detail::LogMessage(::strato::common::LogLevel::level)
