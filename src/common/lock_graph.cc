#include "common/lock_graph.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>  // strato-lint: allow(raw-mutex) — the detector's own lock
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace strato::common {

namespace {

/// One acquisition on some thread's held stack.
struct Held {
  const Mutex* m;
  const char* name;
};

/// Per-thread stack of currently-held mutexes, wrapped so the detector
/// can tell when the stack has been torn down: TLS destructors run
/// before static destructors on the main thread, so a static-duration
/// Mutex locked during exit teardown must see "stack is dead" instead of
/// pushing into a vector whose heap buffer was already freed.
struct HeldStack {
  std::vector<Held> stack;
  bool dead = false;
  ~HeldStack() {
    dead = true;
    stack = {};
  }
};

/// Function-local so the thread_local is constructed on first use per
/// thread; nullptr once this thread's TLS has been destroyed.
std::vector<Held>* held_stack() {
  thread_local HeldStack tls;
  return tls.dead ? nullptr : &tls.stack;
}

}  // namespace

struct LockGraph::Impl {
  // The detector's internal lock must be a raw std::mutex: a common::Mutex
  // here would re-enter the hooks and deadlock on itself.
  mutable std::mutex mu;  // strato-lint: allow(raw-mutex)

  struct Node {
    const char* name = "mutex";
    std::unordered_set<const void*> out;  // "acquired before" successors
  };
  std::unordered_map<const void*, Node> nodes;

  // Unique (held, acquiring) pairs already reported, to cap log volume.
  std::unordered_set<std::uint64_t> reported;
  std::vector<Violation> violations;

  std::atomic<bool> enabled{LockGraph::compiled_default()};

  /// True when `to` is reachable from `from` along recorded edges.
  bool reachable(const void* from, const void* to) const {
    std::vector<const void*> frontier{from};
    std::unordered_set<const void*> seen{from};
    while (!frontier.empty()) {
      const void* cur = frontier.back();
      frontier.pop_back();
      if (cur == to) return true;
      const auto it = nodes.find(cur);
      if (it == nodes.end()) continue;
      for (const void* next : it->second.out) {
        if (seen.insert(next).second) frontier.push_back(next);
      }
    }
    return false;
  }

  static std::uint64_t pair_key(const void* a, const void* b) {
    const auto ha = reinterpret_cast<std::uintptr_t>(a);
    const auto hb = reinterpret_cast<std::uintptr_t>(b);
    // Order-sensitive mix: (A,B) and (B,A) are distinct inversions.
    return (static_cast<std::uint64_t>(ha) * 0x9E3779B97F4A7C15ull) ^
           static_cast<std::uint64_t>(hb);
  }
};

LockGraph& LockGraph::instance() {
  static LockGraph g;
  return g;
}

LockGraph::Impl& LockGraph::impl() const {
  static Impl i;
  return i;
}

void LockGraph::set_enabled(bool on) {
  impl().enabled.store(on, std::memory_order_relaxed);
}

bool LockGraph::enabled() const {
  return impl().enabled.load(std::memory_order_relaxed);
}

void LockGraph::on_acquire(const Mutex* m, const char* name) {
  Impl& im = impl();
  if (!im.enabled.load(std::memory_order_relaxed)) return;
  auto* held_tls = held_stack();
  if (held_tls == nullptr) return;  // exit teardown: this thread's TLS died
  auto& held = *held_tls;
  if (!held.empty()) {
    std::lock_guard lk(im.mu);  // strato-lint: allow(raw-mutex)
    for (const Held& h : held) {
      if (h.m == m) continue;  // relocking is a different bug (UB), not ours
      Impl::Node& from = im.nodes[h.m];
      from.name = h.name;
      im.nodes[m].name = name;
      if (!from.out.insert(m).second) continue;  // edge already known
      // Adding h.m -> m closes a cycle iff h.m is already reachable FROM m:
      // some other thread acquired m before (eventually) h.m.
      if (im.reachable(m, h.m) &&
          im.reported.insert(Impl::pair_key(h.m, m)).second) {
        Violation v;
        v.held = h.name;
        v.acquiring = name;
        v.report = std::string("lock-order inversion: acquiring \"") + name +
                   "\" while holding \"" + h.name + "\", but \"" + name +
                   "\" has previously been acquired before \"" + h.name +
                   "\" — an interleaving of these threads can deadlock";
        im.violations.push_back(v);
        std::fprintf(stderr, "[lockgraph] %s\n", v.report.c_str());
      }
    }
  }
  held.push_back({m, name});
}

void LockGraph::on_release(const Mutex* m) {
  // Unwind unconditionally (even when disabled) so toggling the detector
  // mid-flight cannot leave phantom held locks behind. Locks may be
  // released in any order; search from the most recent acquisition.
  auto* held_tls = held_stack();
  if (held_tls == nullptr) return;  // exit teardown: this thread's TLS died
  auto& held = *held_tls;
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->m == m) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

void LockGraph::forget(const Mutex* m) {
  Impl& im = impl();
  std::lock_guard lk(im.mu);  // strato-lint: allow(raw-mutex)
  if (im.nodes.empty()) return;
  im.nodes.erase(m);
  for (auto& [addr, node] : im.nodes) {
    (void)addr;
    node.out.erase(m);
  }
}

std::vector<LockGraph::Violation> LockGraph::violations() const {
  Impl& im = impl();
  std::lock_guard lk(im.mu);  // strato-lint: allow(raw-mutex)
  return im.violations;
}

std::size_t LockGraph::violation_count() const {
  Impl& im = impl();
  std::lock_guard lk(im.mu);  // strato-lint: allow(raw-mutex)
  return im.violations.size();
}

void LockGraph::reset() {
  Impl& im = impl();
  std::lock_guard lk(im.mu);  // strato-lint: allow(raw-mutex)
  im.nodes.clear();
  im.reported.clear();
  im.violations.clear();
}

}  // namespace strato::common
