// Compressibility probes.
//
// A cheap Shannon byte-entropy estimate plus a tiny LZ probe. Not used by
// the paper's decision model (which deliberately avoids data inspection),
// but used by tests to validate the corpus generators and by the
// metric-driven baseline policy from related work.
#pragma once

#include <cstddef>

#include "common/bytes.h"

namespace strato::corpus {

/// Shannon entropy of the byte distribution, in bits per byte (0..8).
double shannon_entropy(common::ByteSpan data);

/// Fraction of positions whose 4-byte group reoccurs earlier within a
/// 64 KiB window — a fast proxy for LZ-compressibility in [0,1]
/// (1 = highly repetitive).
double lz_repetitiveness(common::ByteSpan data);

}  // namespace strato::corpus
