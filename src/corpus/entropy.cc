#include "corpus/entropy.h"

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

namespace strato::corpus {

double shannon_entropy(common::ByteSpan data) {
  if (data.empty()) return 0.0;
  std::array<std::uint64_t, 256> counts{};
  for (auto b : data) ++counts[b];
  const auto n = static_cast<double>(data.size());
  double h = 0.0;
  for (auto c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    h -= p * std::log2(p);
  }
  return h;
}

double lz_repetitiveness(common::ByteSpan data) {
  if (data.size() < 8) return 0.0;
  constexpr std::size_t kTableBits = 16;
  constexpr std::size_t kWindow = 64 * 1024;
  std::vector<std::int64_t> table(1u << kTableBits, -1);
  std::size_t hits = 0;
  const std::size_t end = data.size() - 4;
  for (std::size_t i = 0; i < end; ++i) {
    const std::uint32_t v = common::load_u32(data.data() + i);
    const std::uint32_t h = (v * 2654435761u) >> (32 - kTableBits);
    const std::int64_t prev = table[h];
    table[h] = static_cast<std::int64_t>(i);
    if (prev >= 0 &&
        static_cast<std::size_t>(i - prev) <= kWindow &&
        common::load_u32(data.data() + prev) == v) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(end);
}

}  // namespace strato::corpus
