#include "corpus/generator.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace strato::corpus {

const char* to_string(Compressibility c) {
  switch (c) {
    case Compressibility::kHigh:
      return "HIGH";
    case Compressibility::kModerate:
      return "MODERATE";
    case Compressibility::kLow:
      return "LOW";
  }
  return "?";
}

common::Bytes take(Generator& gen, std::size_t n) {
  common::Bytes out(n);
  gen.generate(out);
  return out;
}

// ---------------------------------------------------------------------------
// FaxGenerator
// ---------------------------------------------------------------------------

namespace {
// One scanline of a 1728-pixel bilevel page = 216 bytes.
constexpr std::size_t kLineWidth = 216;
// Fresh random bytes overlaid per emitted line ("halftone noise"). The
// noise is transient — it does not persist into the next line — so every
// noisy position causes two inter-line differences (appear + revert).
// Together with the run drift this pins the LIGHT-codec ratio in the
// paper's 10-15 % band for ptt5-class data.
constexpr std::size_t kNoisePerLine = 1;
constexpr std::size_t kRunCount = 4;
}  // namespace

FaxGenerator::FaxGenerator(std::uint64_t seed) { reset(seed); }

void FaxGenerator::reset(std::uint64_t seed) {
  seed_ = seed;
  rng_ = common::Xoshiro256(seed ^ 0xFA80000000000001ULL);
  runs_.clear();
  for (std::size_t r = 0; r < kRunCount; ++r) {
    runs_.push_back({rng_.below(kLineWidth - 16), 2 + rng_.below(8)});
  }
  line_.assign(kLineWidth, 0x00);
  line_pos_ = 0;
  next_line();
}

void FaxGenerator::next_line() {
  // Rebuild the scanline from the run structure: long white (0x00) runs
  // with a handful of black (0xFF) runs whose edges drift line to line —
  // the shape of a bilevel fax page.
  std::fill(line_.begin(), line_.end(), 0x00);
  for (auto& run : runs_) {
    if (rng_.uniform() < 0.5) {
      const std::size_t step = rng_.below(3);  // 0,1,2 -> -1,0,+1
      run.start = std::min<std::size_t>(
          kLineWidth - 16,
          std::max<std::size_t>(1, run.start + step) - 1);
    }
    if (rng_.uniform() < 0.15) {
      run.len = 2 + (run.len - 1) % 10;  // slow length wobble
    }
    const std::size_t end = std::min(kLineWidth, run.start + run.len);
    for (std::size_t i = run.start; i < end; ++i) line_[i] = 0xFF;
  }
  // Transient halftone noise.
  for (std::size_t i = 0; i < kNoisePerLine; ++i) {
    line_[rng_.below(kLineWidth)] = static_cast<std::uint8_t>(rng_());
  }
  line_pos_ = 0;
}

void FaxGenerator::generate(common::MutableByteSpan out) {
  std::size_t done = 0;
  while (done < out.size()) {
    if (line_pos_ >= line_.size()) next_line();
    const std::size_t n =
        std::min(out.size() - done, line_.size() - line_pos_);
    std::memcpy(out.data() + done, line_.data() + line_pos_, n);
    done += n;
    line_pos_ += n;
  }
}

// ---------------------------------------------------------------------------
// TextGenerator
// ---------------------------------------------------------------------------

namespace {
constexpr std::size_t kVocabSize = 800;
constexpr double kZipfExponent = 1.05;
}  // namespace

TextGenerator::TextGenerator(std::uint64_t seed) {
  // The vocabulary is the "language" and stays fixed across seeds so two
  // streams with different seeds still share word shapes (like two English
  // texts do); the seed only controls word order.
  common::Xoshiro256 vocab_rng(0xA11CE29ULL);
  vocab_.reserve(kVocabSize);
  for (std::size_t i = 0; i < kVocabSize; ++i) {
    const std::size_t len = 2 + vocab_rng.below(8);
    std::string w;
    w.reserve(len);
    for (std::size_t j = 0; j < len; ++j) {
      w.push_back(static_cast<char>('a' + vocab_rng.below(26)));
    }
    vocab_.push_back(std::move(w));
  }
  // Zipf CDF over ranks.
  zipf_cdf_.resize(kVocabSize);
  double acc = 0.0;
  for (std::size_t i = 0; i < kVocabSize; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), kZipfExponent);
    zipf_cdf_[i] = acc;
  }
  for (auto& v : zipf_cdf_) v /= acc;
  reset(seed);
}

void TextGenerator::reset(std::uint64_t seed) {
  seed_ = seed;
  rng_ = common::Xoshiro256(seed ^ 0x7E870000000000A5ULL);
  pending_.clear();
  pending_pos_ = 0;
  line_len_ = 0;
}

void TextGenerator::refill() {
  pending_.clear();
  pending_pos_ = 0;
  // Emit a sentence-sized chunk of words.
  const std::size_t words = 6 + rng_.below(12);
  for (std::size_t w = 0; w < words; ++w) {
    const double u = rng_.uniform();
    const auto it =
        std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
    std::string word = vocab_[static_cast<std::size_t>(
        std::distance(zipf_cdf_.begin(), it))];
    if (w == 0) word[0] = static_cast<char>(word[0] - 'a' + 'A');
    pending_ += word;
    line_len_ += word.size() + 1;
    if (w + 1 == words) {
      pending_ += rng_.uniform() < 0.85 ? ". " : "! ";
    } else if (rng_.uniform() < 0.08) {
      pending_ += ", ";
    } else {
      pending_ += ' ';
    }
    if (line_len_ > 68) {
      pending_ += '\n';
      line_len_ = 0;
    }
  }
}

void TextGenerator::generate(common::MutableByteSpan out) {
  std::size_t done = 0;
  while (done < out.size()) {
    if (pending_pos_ >= pending_.size()) refill();
    const std::size_t n =
        std::min(out.size() - done, pending_.size() - pending_pos_);
    std::memcpy(out.data() + done, pending_.data() + pending_pos_, n);
    done += n;
    pending_pos_ += n;
  }
}

// ---------------------------------------------------------------------------
// EntropyGenerator
// ---------------------------------------------------------------------------

namespace {
constexpr std::size_t kMarkerLen = 48;
// Random-byte gap between markers; ~8 % of the stream is marker content,
// which is what keeps the achievable ratio in the 90-95 % band instead of
// ~100 %.
constexpr std::size_t kMinGap = 400;
constexpr std::size_t kMaxGap = 800;
}  // namespace

EntropyGenerator::EntropyGenerator(std::uint64_t seed) { reset(seed); }

void EntropyGenerator::reset(std::uint64_t seed) {
  seed_ = seed;
  rng_ = common::Xoshiro256(seed ^ 0x1A6E000000000077ULL);
  // Fixed pseudo-JPEG marker/structure segment (same across the stream so
  // it is LZ-matchable).
  common::Xoshiro256 marker_rng(0xCAFED00DULL);
  marker_.resize(kMarkerLen);
  for (auto& b : marker_) b = static_cast<std::uint8_t>(marker_rng());
  until_marker_ = kMinGap + rng_.below(kMaxGap - kMinGap);
  marker_pos_ = kMarkerLen;  // not emitting a marker right now
}

void EntropyGenerator::generate(common::MutableByteSpan out) {
  std::size_t done = 0;
  while (done < out.size()) {
    if (marker_pos_ < kMarkerLen) {
      // Emitting the fixed marker.
      const std::size_t n =
          std::min(out.size() - done, kMarkerLen - marker_pos_);
      std::memcpy(out.data() + done, marker_.data() + marker_pos_, n);
      done += n;
      marker_pos_ += n;
      if (marker_pos_ == kMarkerLen) {
        until_marker_ = kMinGap + rng_.below(kMaxGap - kMinGap);
      }
      continue;
    }
    if (until_marker_ == 0) {
      marker_pos_ = 0;
      continue;
    }
    const std::size_t n = std::min(out.size() - done, until_marker_);
    for (std::size_t i = 0; i < n; ++i) {
      out[done + i] = static_cast<std::uint8_t>(rng_());
    }
    done += n;
    until_marker_ -= n;
  }
}

// ---------------------------------------------------------------------------
// LogGenerator
// ---------------------------------------------------------------------------

namespace {
constexpr const char* kLogLevels[] = {"INFO", "INFO", "INFO", "DEBUG",
                                      "WARN", "ERROR"};
constexpr const char* kComponents[] = {
    "scheduler", "channel-mgr", "compressor", "io-layer", "heartbeat",
    "task-runner"};
constexpr const char* kMessages[] = {
    "accepted block of %u bytes",
    "window closed, application rate %u KB/s",
    "switching compression level to %u",
    "flushed %u buffers to network channel",
    "vertex %u finished successfully",
    "retrying connection, attempt %u"};
}  // namespace

LogGenerator::LogGenerator(std::uint64_t seed) { reset(seed); }

void LogGenerator::reset(std::uint64_t seed) {
  seed_ = seed;
  rng_ = common::Xoshiro256(seed ^ 0x10660000000000EEULL);
  pending_.clear();
  pending_pos_ = 0;
  time_ms_ = 1'600'000'000'000ULL;  // an epoch-ish base
}

void LogGenerator::refill() {
  pending_.clear();
  pending_pos_ = 0;
  char line[256];
  for (int i = 0; i < 16; ++i) {
    time_ms_ += rng_.below(150);
    char msg[128];
    std::snprintf(msg, sizeof msg, kMessages[rng_.below(6)],
                  static_cast<unsigned>(rng_.below(1000000)));
    std::snprintf(line, sizeof line,
                  "%llu %-5s [%s] req=%08llx %s\n",
                  static_cast<unsigned long long>(time_ms_),
                  kLogLevels[rng_.below(6)], kComponents[rng_.below(6)],
                  static_cast<unsigned long long>(rng_() & 0xFFFFFFFFu),
                  msg);
    pending_ += line;
  }
}

void LogGenerator::generate(common::MutableByteSpan out) {
  std::size_t done = 0;
  while (done < out.size()) {
    if (pending_pos_ >= pending_.size()) refill();
    const std::size_t n =
        std::min(out.size() - done, pending_.size() - pending_pos_);
    std::memcpy(out.data() + done, pending_.data() + pending_pos_, n);
    done += n;
    pending_pos_ += n;
  }
}

// ---------------------------------------------------------------------------
// ColumnarGenerator
// ---------------------------------------------------------------------------

ColumnarGenerator::ColumnarGenerator(std::uint64_t seed) { reset(seed); }

void ColumnarGenerator::reset(std::uint64_t seed) {
  seed_ = seed;
  rng_ = common::Xoshiro256(seed ^ 0xC01000000000AB1EULL);
  pending_.clear();
  pending_pos_ = 0;
  row_id_ = 1000000;
  time_us_ = 0;
  gauge_ = 100.0;
}

void ColumnarGenerator::refill() {
  // One column group of 256 rows: ids (u64, slowly increasing),
  // timestamps (u64, monotone), gauges (doubles on a random walk) and an
  // enum byte — written column-wise like a columnar page.
  constexpr int kRows = 256;
  pending_.clear();
  pending_pos_ = 0;
  pending_.resize(kRows * (8 + 8 + 8 + 1));
  std::uint8_t* p = pending_.data();
  std::uint64_t id = row_id_;
  for (int r = 0; r < kRows; ++r, p += 8) {
    id += 1 + rng_.below(3);
    common::store_le64(p, id);
  }
  row_id_ = id;
  std::uint64_t t = time_us_;
  for (int r = 0; r < kRows; ++r, p += 8) {
    t += 100 + rng_.below(50);
    common::store_le64(p, t);
  }
  time_us_ = t;
  for (int r = 0; r < kRows; ++r, p += 8) {
    gauge_ += rng_.gaussian(0.0, 0.5);
    std::uint64_t bits;
    std::memcpy(&bits, &gauge_, sizeof bits);
    common::store_le64(p, bits);
  }
  for (int r = 0; r < kRows; ++r, p += 1) {
    *p = static_cast<std::uint8_t>(rng_.below(5));
  }
}

void ColumnarGenerator::generate(common::MutableByteSpan out) {
  std::size_t done = 0;
  while (done < out.size()) {
    if (pending_pos_ >= pending_.size()) refill();
    const std::size_t n =
        std::min(out.size() - done, pending_.size() - pending_pos_);
    std::memcpy(out.data() + done, pending_.data() + pending_pos_, n);
    done += n;
    pending_pos_ += n;
  }
}

// ---------------------------------------------------------------------------
// SegmentedGenerator
// ---------------------------------------------------------------------------

SegmentedGenerator::SegmentedGenerator(std::unique_ptr<Generator> a,
                                       std::unique_ptr<Generator> b,
                                       std::uint64_t segment_bytes)
    : segment_bytes_(segment_bytes == 0 ? 1 : segment_bytes) {
  gens_[0] = std::move(a);
  gens_[1] = std::move(b);
}

void SegmentedGenerator::generate(common::MutableByteSpan out) {
  std::size_t done = 0;
  while (done < out.size()) {
    if (emitted_in_segment_ >= segment_bytes_) {
      emitted_in_segment_ = 0;
      active_ = 1 - active_;
    }
    const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(
        out.size() - done, segment_bytes_ - emitted_in_segment_));
    gens_[active_]->generate(out.subspan(done, n));
    done += n;
    emitted_in_segment_ += n;
  }
}

void SegmentedGenerator::reset(std::uint64_t seed) {
  gens_[0]->reset(seed);
  gens_[1]->reset(seed ^ 0x5E65ULL);
  emitted_in_segment_ = 0;
  active_ = 0;
}

std::string SegmentedGenerator::name() const {
  return "segmented(" + gens_[0]->name() + "<->" + gens_[1]->name() + ")";
}

std::unique_ptr<Generator> make_generator(Compressibility c,
                                          std::uint64_t seed) {
  switch (c) {
    case Compressibility::kHigh:
      return std::make_unique<FaxGenerator>(seed);
    case Compressibility::kModerate:
      return std::make_unique<TextGenerator>(seed);
    case Compressibility::kLow:
      return std::make_unique<EntropyGenerator>(seed);
  }
  return nullptr;
}

}  // namespace strato::corpus
