// Synthetic corpus generators — the Canterbury-corpus substitution.
//
// The paper drives its evaluation with three files of distinct
// compressibility (Section IV-A):
//   * `ptt5` (bilevel fax, HIGH):        compresses to 10–15 %
//   * `alice29.txt` (English, MODERATE): compresses to 30–50 %
//   * `image.jpg` (JPEG, LOW):           compresses to 90–95 %
//
// We replace the files with deterministic generators tuned (and unit-tested)
// to land in the same ratio bands with our codecs. Only the ratio band and
// block-level stationarity matter to the adaptive algorithm, not the exact
// byte content.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/rng.h"

namespace strato::corpus {

/// The three compressibility classes of the paper's evaluation.
enum class Compressibility {
  kHigh,      // ptt5-like: ratio 0.10-0.15
  kModerate,  // alice29.txt-like: ratio 0.30-0.50
  kLow,       // image.jpg-like: ratio 0.90-0.95
};

/// Human-readable label matching the paper's tables ("HIGH", ...).
const char* to_string(Compressibility c);

/// Infinite deterministic byte stream.
class Generator {
 public:
  virtual ~Generator() = default;

  /// Fill `out` with the next bytes of the stream.
  virtual void generate(common::MutableByteSpan out) = 0;

  /// Restart the stream from the beginning with a (new) seed.
  virtual void reset(std::uint64_t seed) = 0;

  /// Short description for logs and bench output.
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Convenience: materialise `n` bytes from a generator.
common::Bytes take(Generator& gen, std::size_t n);

/// Bilevel-fax-like stream (HIGH): scanlines that are mostly long white
/// runs with occasional black bursts, each line strongly correlated with
/// the previous one — the structure that lets LZ codecs reach ~10-15 %.
class FaxGenerator final : public Generator {
 public:
  explicit FaxGenerator(std::uint64_t seed = 1);
  void generate(common::MutableByteSpan out) override;
  void reset(std::uint64_t seed) override;
  [[nodiscard]] std::string name() const override { return "fax(HIGH)"; }

 private:
  struct Run {
    std::size_t start;
    std::size_t len;
  };

  void next_line();

  common::Xoshiro256 rng_;
  std::vector<Run> runs_;    // black runs; drift without accumulating noise
  common::Bytes line_;       // emitted scanline = runs + transient noise
  std::size_t line_pos_ = 0; // emit cursor within line_
  std::uint64_t seed_;
};

/// Zipf-vocabulary English-like text (MODERATE): words drawn from a fixed
/// synthetic vocabulary under a Zipf law with punctuation and line breaks;
/// repetition gives LZ some traction but per-word entropy keeps the ratio
/// in the 30-50 % band.
class TextGenerator final : public Generator {
 public:
  explicit TextGenerator(std::uint64_t seed = 1);
  void generate(common::MutableByteSpan out) override;
  void reset(std::uint64_t seed) override;
  [[nodiscard]] std::string name() const override { return "text(MODERATE)"; }

 private:
  void refill();

  common::Xoshiro256 rng_;
  std::vector<std::string> vocab_;
  std::vector<double> zipf_cdf_;
  std::string pending_;
  std::size_t pending_pos_ = 0;
  std::size_t line_len_ = 0;
  std::uint64_t seed_;
};

/// JPEG-like high-entropy stream (LOW): PRNG bytes interleaved with sparse
/// repeated marker/structure segments so codecs shave only 5-10 %.
class EntropyGenerator final : public Generator {
 public:
  explicit EntropyGenerator(std::uint64_t seed = 1);
  void generate(common::MutableByteSpan out) override;
  void reset(std::uint64_t seed) override;
  [[nodiscard]] std::string name() const override { return "entropy(LOW)"; }

 private:
  common::Xoshiro256 rng_;
  common::Bytes marker_;
  std::size_t until_marker_ = 0;  // random bytes to emit before next marker
  std::size_t marker_pos_ = 0;    // 0 => not currently emitting a marker
  std::uint64_t seed_;
};

/// Structured service-log stream: timestamped lines with a small set of
/// level/component templates, realistic numeric fields and occasional
/// request ids. Compressibility sits between MODERATE and HIGH (logs are
/// template-heavy) — the workload of the log-shipper example.
class LogGenerator final : public Generator {
 public:
  explicit LogGenerator(std::uint64_t seed = 1);
  void generate(common::MutableByteSpan out) override;
  void reset(std::uint64_t seed) override;
  [[nodiscard]] std::string name() const override { return "logs"; }

 private:
  void refill();

  common::Xoshiro256 rng_;
  std::string pending_;
  std::size_t pending_pos_ = 0;
  std::uint64_t time_ms_ = 0;
  std::uint64_t seed_;
};

/// Columnar binary table: rows of (id delta, timestamp, gauge double,
/// enum byte) fields written column-group-wise — the mixed-entropy shape
/// of analytics shuffle data.
class ColumnarGenerator final : public Generator {
 public:
  explicit ColumnarGenerator(std::uint64_t seed = 1);
  void generate(common::MutableByteSpan out) override;
  void reset(std::uint64_t seed) override;
  [[nodiscard]] std::string name() const override { return "columnar"; }

 private:
  void refill();

  common::Xoshiro256 rng_;
  common::Bytes pending_;
  std::size_t pending_pos_ = 0;
  std::uint64_t row_id_ = 0;
  std::uint64_t time_us_ = 0;
  double gauge_ = 100.0;
  std::uint64_t seed_;
};

/// Alternates between two generators every `segment_bytes` — the Fig. 6
/// workload (HIGH <-> LOW every 10 GB).
class SegmentedGenerator final : public Generator {
 public:
  SegmentedGenerator(std::unique_ptr<Generator> a, std::unique_ptr<Generator> b,
                     std::uint64_t segment_bytes);
  void generate(common::MutableByteSpan out) override;
  void reset(std::uint64_t seed) override;
  [[nodiscard]] std::string name() const override;

  /// Which underlying generator is currently active (0 or 1).
  [[nodiscard]] int active() const { return active_; }

 private:
  std::unique_ptr<Generator> gens_[2];
  std::uint64_t segment_bytes_;
  std::uint64_t emitted_in_segment_ = 0;
  int active_ = 0;
};

/// Factory for the paper's three workloads.
std::unique_ptr<Generator> make_generator(Compressibility c,
                                          std::uint64_t seed = 1);

}  // namespace strato::corpus
