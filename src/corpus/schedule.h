// Compressibility schedules — generalized Fig. 6 workloads.
//
// The paper switches between two files every 10 GB; real applications
// move through arbitrary phases (load a compressed archive, emit text
// logs, shuffle binary columns, ...). A schedule is a list of
// (class, bytes) segments, parsable from a compact spec string like
//
//   "HIGH:10G,LOW:5G,MODERATE:512M"
//
// and usable both by the simulator (per-offset class lookup) and as a
// real byte stream (ScheduledGenerator).
#pragma once

#include <string_view>
#include <vector>

#include "corpus/generator.h"

namespace strato::corpus {

/// One phase of a scheduled workload.
struct Segment {
  Compressibility data = Compressibility::kHigh;
  std::uint64_t bytes = 0;
};

/// Parse "CLASS:SIZE[,CLASS:SIZE...]" where CLASS is HIGH/MODERATE/LOW
/// and SIZE takes K/M/G suffixes (powers of ten, like the paper's GB).
/// @throws std::invalid_argument on malformed specs.
std::vector<Segment> parse_schedule(std::string_view spec);

/// Class at `offset` bytes into the schedule; the schedule repeats
/// cyclically past its total length. Empty schedules yield `fallback`.
Compressibility class_at(const std::vector<Segment>& schedule,
                         std::uint64_t offset,
                         Compressibility fallback = Compressibility::kHigh);

/// Total bytes of one schedule pass (0 for an empty schedule).
std::uint64_t schedule_length(const std::vector<Segment>& schedule);

/// Byte stream walking a schedule (cyclically), backed by one generator
/// per class.
class ScheduledGenerator final : public Generator {
 public:
  ScheduledGenerator(std::vector<Segment> schedule, std::uint64_t seed = 1);
  void generate(common::MutableByteSpan out) override;
  void reset(std::uint64_t seed) override;
  [[nodiscard]] std::string name() const override { return "scheduled"; }

 private:
  std::vector<Segment> schedule_;
  std::unique_ptr<Generator> gens_[3];
  std::uint64_t offset_ = 0;
};

}  // namespace strato::corpus
