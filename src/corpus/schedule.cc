#include "corpus/schedule.h"

#include <cstdlib>
#include <stdexcept>
#include <string>

namespace strato::corpus {

namespace {

Compressibility parse_class(std::string_view token) {
  if (token == "HIGH") return Compressibility::kHigh;
  if (token == "MODERATE") return Compressibility::kModerate;
  if (token == "LOW") return Compressibility::kLow;
  throw std::invalid_argument("schedule: unknown class '" +
                              std::string(token) + "'");
}

std::uint64_t parse_size(std::string_view token) {
  if (token.empty()) throw std::invalid_argument("schedule: empty size");
  std::uint64_t scale = 1;
  switch (token.back()) {
    case 'K':
      scale = 1000ULL;
      token.remove_suffix(1);
      break;
    case 'M':
      scale = 1000'000ULL;
      token.remove_suffix(1);
      break;
    case 'G':
      scale = 1000'000'000ULL;
      token.remove_suffix(1);
      break;
    default:
      break;
  }
  if (token.empty()) throw std::invalid_argument("schedule: empty size");
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      throw std::invalid_argument("schedule: bad size digit");
    }
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (value == 0) throw std::invalid_argument("schedule: zero-length segment");
  return value * scale;
}

int class_index(Compressibility c) {
  switch (c) {
    case Compressibility::kHigh:
      return 0;
    case Compressibility::kModerate:
      return 1;
    case Compressibility::kLow:
      return 2;
  }
  return 0;
}

}  // namespace

std::vector<Segment> parse_schedule(std::string_view spec) {
  std::vector<Segment> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string_view part =
        spec.substr(pos, comma == std::string_view::npos ? spec.size() - pos
                                                         : comma - pos);
    const std::size_t colon = part.find(':');
    if (colon == std::string_view::npos) {
      throw std::invalid_argument("schedule: segment needs CLASS:SIZE");
    }
    out.push_back(
        {parse_class(part.substr(0, colon)), parse_size(part.substr(colon + 1))});
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  if (out.empty()) throw std::invalid_argument("schedule: empty spec");
  return out;
}

std::uint64_t schedule_length(const std::vector<Segment>& schedule) {
  std::uint64_t total = 0;
  for (const auto& s : schedule) total += s.bytes;
  return total;
}

Compressibility class_at(const std::vector<Segment>& schedule,
                         std::uint64_t offset, Compressibility fallback) {
  const std::uint64_t total = schedule_length(schedule);
  if (total == 0) return fallback;
  std::uint64_t pos = offset % total;
  for (const auto& s : schedule) {
    if (pos < s.bytes) return s.data;
    pos -= s.bytes;
  }
  return schedule.back().data;  // unreachable, but keeps the compiler calm
}

ScheduledGenerator::ScheduledGenerator(std::vector<Segment> schedule,
                                       std::uint64_t seed)
    : schedule_(std::move(schedule)) {
  reset(seed);
}

void ScheduledGenerator::reset(std::uint64_t seed) {
  gens_[0] = make_generator(Compressibility::kHigh, seed);
  gens_[1] = make_generator(Compressibility::kModerate, seed ^ 0x3331);
  gens_[2] = make_generator(Compressibility::kLow, seed ^ 0x7772);
  offset_ = 0;
}

void ScheduledGenerator::generate(common::MutableByteSpan out) {
  std::size_t done = 0;
  const std::uint64_t total = schedule_length(schedule_);
  while (done < out.size()) {
    const Compressibility cls = class_at(schedule_, offset_);
    // Bytes left in the current segment (bounded chunk).
    std::uint64_t pos = total == 0 ? 0 : offset_ % total;
    std::uint64_t left = out.size() - done;
    for (const auto& s : schedule_) {
      if (pos < s.bytes) {
        left = std::min<std::uint64_t>(left, s.bytes - pos);
        break;
      }
      pos -= s.bytes;
    }
    gens_[class_index(cls)]->generate(
        out.subspan(done, static_cast<std::size_t>(left)));
    done += static_cast<std::size_t>(left);
    offset_ += left;
  }
}

}  // namespace strato::corpus
