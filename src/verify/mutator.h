// Seeded, replayable corruption of framed wire streams.
//
// The chaos half of the verification story: take a well-formed sequence of
// framed blocks and damage it the way a hostile channel would — bit flips,
// truncations, tampered length/codec-id/checksum fields, reordered,
// duplicated or dropped frames. Every mutation is drawn from a seeded
// Xoshiro256, so a failing case is reproducible from (seed, step) alone.
// The correctness contract the minifuzz runner asserts on top: a mutated
// stream is either *cleanly rejected* (CodecError) or every block that
// does decode is byte-identical to a block that was originally encoded —
// never UB, out-of-bounds access, or silent data change.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"

namespace strato::verify {

/// The corruption classes the mutator can apply.
enum class MutationKind : std::uint8_t {
  kBitFlip = 0,      ///< flip one random bit anywhere in the stream
  kByteSet,          ///< overwrite one random byte with a random value
  kTruncateTail,     ///< cut the stream short
  kExtendTail,       ///< append random garbage
  kRawSizeTamper,    ///< rewrite a frame's raw-size field
  kCompSizeTamper,   ///< rewrite a frame's compressed-size field
  kCodecIdTamper,    ///< rewrite a frame's codec id
  kLevelTamper,      ///< rewrite a frame's level byte
  kChecksumTamper,   ///< flip bits in a frame's checksum
  kMagicTamper,      ///< damage a frame's magic
  kReservedTamper,   ///< set the reserved header bytes
  kReorderFrames,    ///< swap two whole frames
  kDuplicateFrame,   ///< insert a copy of one frame
  kDropFrame,        ///< remove one whole frame
  kCount,
};

/// Name of a mutation kind (failure messages).
const char* to_string(MutationKind kind);

/// Description of one applied mutation, sufficient to understand a repro.
struct Mutation {
  MutationKind kind = MutationKind::kBitFlip;
  std::string description;
};

/// Applies seeded random mutations to a framed wire stream in place.
class StreamMutator {
 public:
  explicit StreamMutator(std::uint64_t seed) : rng_(seed) {}

  /// Apply one random mutation to `wire`. `frame_offsets` are the start
  /// offsets of each frame inside `wire` (pre-mutation layout); frame-
  /// structured kinds fall back to byte-level kinds when the stream has
  /// no usable frame. Returns what was done.
  Mutation mutate(common::Bytes& wire,
                  const std::vector<std::size_t>& frame_offsets);

 private:
  common::Xoshiro256 rng_;
};

}  // namespace strato::verify
