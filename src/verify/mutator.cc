#include "verify/mutator.h"

#include <algorithm>
#include <sstream>

#include "common/bytes.h"
#include "compress/framing.h"

namespace strato::verify {

const char* to_string(MutationKind kind) {
  switch (kind) {
    case MutationKind::kBitFlip: return "bit-flip";
    case MutationKind::kByteSet: return "byte-set";
    case MutationKind::kTruncateTail: return "truncate-tail";
    case MutationKind::kExtendTail: return "extend-tail";
    case MutationKind::kRawSizeTamper: return "raw-size-tamper";
    case MutationKind::kCompSizeTamper: return "comp-size-tamper";
    case MutationKind::kCodecIdTamper: return "codec-id-tamper";
    case MutationKind::kLevelTamper: return "level-tamper";
    case MutationKind::kChecksumTamper: return "checksum-tamper";
    case MutationKind::kMagicTamper: return "magic-tamper";
    case MutationKind::kReservedTamper: return "reserved-tamper";
    case MutationKind::kReorderFrames: return "reorder-frames";
    case MutationKind::kDuplicateFrame: return "duplicate-frame";
    case MutationKind::kDropFrame: return "drop-frame";
    case MutationKind::kCount: break;
  }
  return "?";
}

namespace {

/// [start, end) spans of each frame, derived from the offset table.
std::vector<std::pair<std::size_t, std::size_t>> frame_spans(
    const common::Bytes& wire, const std::vector<std::size_t>& offsets) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    const std::size_t start = offsets[i];
    const std::size_t end =
        i + 1 < offsets.size() ? offsets[i + 1] : wire.size();
    if (start < end && end <= wire.size()) spans.emplace_back(start, end);
  }
  return spans;
}

}  // namespace

Mutation StreamMutator::mutate(common::Bytes& wire,
                               const std::vector<std::size_t>& frame_offsets) {
  using compress::kFrameHeaderSize;
  auto kind = static_cast<MutationKind>(
      rng_.below(static_cast<std::uint64_t>(MutationKind::kCount)));

  const auto spans = frame_spans(wire, frame_offsets);
  // Frames with a complete header still inside the (possibly shorter) wire.
  std::vector<std::size_t> headered;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].first + kFrameHeaderSize <= wire.size()) headered.push_back(i);
  }

  // Degrade structured kinds gracefully on streams that cannot host them.
  if (wire.empty()) {
    kind = MutationKind::kExtendTail;
  } else {
    switch (kind) {
      case MutationKind::kRawSizeTamper:
      case MutationKind::kCompSizeTamper:
      case MutationKind::kCodecIdTamper:
      case MutationKind::kLevelTamper:
      case MutationKind::kChecksumTamper:
      case MutationKind::kMagicTamper:
      case MutationKind::kReservedTamper:
        if (headered.empty()) kind = MutationKind::kBitFlip;
        break;
      case MutationKind::kReorderFrames:
        if (spans.size() < 2) kind = MutationKind::kBitFlip;
        break;
      case MutationKind::kDuplicateFrame:
      case MutationKind::kDropFrame:
        if (spans.empty()) kind = MutationKind::kBitFlip;
        break;
      default:
        break;
    }
  }

  std::ostringstream desc;
  switch (kind) {
    case MutationKind::kBitFlip: {
      const std::size_t pos = rng_.below(wire.size());
      const int bit = static_cast<int>(rng_.below(8));
      wire[pos] ^= static_cast<std::uint8_t>(1u << bit);
      desc << "bit " << bit << " at byte " << pos;
      break;
    }
    case MutationKind::kByteSet: {
      const std::size_t pos = rng_.below(wire.size());
      wire[pos] = static_cast<std::uint8_t>(rng_());
      desc << "byte " << pos;
      break;
    }
    case MutationKind::kTruncateTail: {
      const std::size_t keep = rng_.below(wire.size() + 1);
      wire.resize(keep);
      desc << "kept " << keep << " bytes";
      break;
    }
    case MutationKind::kExtendTail: {
      const std::size_t n = 1 + rng_.below(64);
      for (std::size_t i = 0; i < n; ++i) {
        wire.push_back(static_cast<std::uint8_t>(rng_()));
      }
      desc << "appended " << n << " bytes";
      break;
    }
    case MutationKind::kRawSizeTamper:
    case MutationKind::kCompSizeTamper: {
      const std::size_t f = headered[rng_.below(headered.size())];
      const std::size_t field =
          spans[f].first + (kind == MutationKind::kRawSizeTamper ? 8 : 12);
      // Mix small deltas (off-by-one) with wild values (overflow bait).
      std::uint32_t v = common::load_le32(wire.data() + field);
      switch (rng_.below(3)) {
        case 0: v += 1; break;
        case 1: v = v == 0 ? 1 : v - 1; break;
        default: v = static_cast<std::uint32_t>(rng_()); break;
      }
      common::store_le32(wire.data() + field, v);
      desc << "frame " << f << " -> " << v;
      break;
    }
    case MutationKind::kCodecIdTamper: {
      const std::size_t f = headered[rng_.below(headered.size())];
      wire[spans[f].first + 5] = static_cast<std::uint8_t>(rng_());
      desc << "frame " << f;
      break;
    }
    case MutationKind::kLevelTamper: {
      const std::size_t f = headered[rng_.below(headered.size())];
      wire[spans[f].first + 4] = static_cast<std::uint8_t>(rng_());
      desc << "frame " << f;
      break;
    }
    case MutationKind::kChecksumTamper: {
      const std::size_t f = headered[rng_.below(headered.size())];
      const std::size_t pos = spans[f].first + 16 + rng_.below(8);
      wire[pos] ^= static_cast<std::uint8_t>(1 + rng_.below(255));
      desc << "frame " << f << " byte " << pos;
      break;
    }
    case MutationKind::kMagicTamper: {
      const std::size_t f = headered[rng_.below(headered.size())];
      const std::size_t pos = spans[f].first + rng_.below(4);
      wire[pos] ^= static_cast<std::uint8_t>(1 + rng_.below(255));
      desc << "frame " << f;
      break;
    }
    case MutationKind::kReservedTamper: {
      const std::size_t f = headered[rng_.below(headered.size())];
      wire[spans[f].first + 6 + rng_.below(2)] =
          static_cast<std::uint8_t>(1 + rng_.below(255));
      desc << "frame " << f;
      break;
    }
    case MutationKind::kReorderFrames: {
      const std::size_t a = rng_.below(spans.size());
      std::size_t b = rng_.below(spans.size());
      if (b == a) b = (a + 1) % spans.size();
      common::Bytes out;
      out.reserve(wire.size());
      for (std::size_t i = 0; i < spans.size(); ++i) {
        const auto& s = spans[i == a ? b : (i == b ? a : i)];
        out.insert(out.end(), wire.begin() + static_cast<std::ptrdiff_t>(s.first),
                   wire.begin() + static_cast<std::ptrdiff_t>(s.second));
      }
      wire = std::move(out);
      desc << "swapped frames " << a << " and " << b;
      break;
    }
    case MutationKind::kDuplicateFrame: {
      const std::size_t f = rng_.below(spans.size());
      const common::Bytes copy(
          wire.begin() + static_cast<std::ptrdiff_t>(spans[f].first),
          wire.begin() + static_cast<std::ptrdiff_t>(spans[f].second));
      wire.insert(wire.begin() + static_cast<std::ptrdiff_t>(spans[f].second),
                  copy.begin(), copy.end());
      desc << "frame " << f;
      break;
    }
    case MutationKind::kDropFrame: {
      const std::size_t f = rng_.below(spans.size());
      wire.erase(wire.begin() + static_cast<std::ptrdiff_t>(spans[f].first),
                 wire.begin() + static_cast<std::ptrdiff_t>(spans[f].second));
      desc << "frame " << f;
      break;
    }
    case MutationKind::kCount:
      break;
  }
  return {kind, std::string(to_string(kind)) + " (" + desc.str() + ")"};
}

}  // namespace strato::verify
