#include "verify/oracle.h"

#include <algorithm>
#include <sstream>

#include "common/simd.h"
#include "compress/decode_pipeline.h"
#include "compress/framing.h"
#include "compress/pipeline.h"

namespace strato::verify {

std::string OracleReport::summary() const {
  std::ostringstream os;
  os << checks << " checks, " << failures.size() << " failures";
  for (const auto& f : failures) os << "\n  " << f;
  return os.str();
}

namespace {

/// First divergence between two buffers, for failure context.
std::string diff_context(common::ByteSpan a, common::ByteSpan b) {
  std::ostringstream os;
  if (a.size() != b.size()) {
    os << "size " << a.size() << " vs " << b.size();
    return os.str();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      os << "first diff at byte " << i << " (0x" << std::hex
         << static_cast<int>(a[i]) << " vs 0x" << static_cast<int>(b[i])
         << ")";
      return os.str();
    }
  }
  return "identical";
}

}  // namespace

void Oracle::check_roundtrip(common::ByteSpan data, const std::string& tag,
                             OracleReport& report) const {
  for (std::size_t l = 0; l < registry_.level_count(); ++l) {
    const auto& rung = registry_.level(l);
    const compress::Codec& codec = *rung.codec;
    const std::string where = tag + " level=" + rung.label;

    // Raw codec round-trip + worst-case bound.
    ++report.checks;
    common::Bytes comp;
    try {
      comp = codec.compress(data);
    } catch (const std::exception& e) {
      report.failures.push_back(where + ": compress threw: " + e.what());
      continue;
    }
    if (comp.size() > codec.max_compressed_size(data.size())) {
      report.failures.push_back(
          where + ": compressed size " + std::to_string(comp.size()) +
          " exceeds max_compressed_size bound " +
          std::to_string(codec.max_compressed_size(data.size())));
    }
    ++report.checks;
    try {
      const common::Bytes back = codec.decompress(comp, data.size());
      if (!std::equal(back.begin(), back.end(), data.begin(), data.end())) {
        report.failures.push_back(where + ": raw round-trip diverged (" +
                                  diff_context(back, data) + ")");
      }
    } catch (const std::exception& e) {
      report.failures.push_back(where +
                                ": decompress of own output threw: " +
                                e.what());
    }

    // Framed path: encode_block applies the stored fallback and checksum.
    ++report.checks;
    try {
      const common::Bytes frame = compress::encode_block(
          codec, static_cast<std::uint8_t>(rung.level), data);
      const common::Bytes back = compress::decode_block(frame, registry_);
      if (!std::equal(back.begin(), back.end(), data.begin(), data.end())) {
        report.failures.push_back(where + ": framed round-trip diverged (" +
                                  diff_context(back, data) + ")");
      }
    } catch (const std::exception& e) {
      report.failures.push_back(where + ": framed round-trip threw: " +
                                e.what());
    }
  }
}

void Oracle::check_simd_identity(common::ByteSpan data, const std::string& tag,
                                 OracleReport& report) const {
  namespace simd = common::simd;
  constexpr simd::Isa kCandidates[] = {simd::Isa::kSse2, simd::Isa::kAvx2,
                                       simd::Isa::kNeon};
  for (std::size_t l = 0; l < registry_.level_count(); ++l) {
    const auto& rung = registry_.level(l);
    const compress::Codec& codec = *rung.codec;
    const std::string where = tag + " level=" + rung.label;

    // Scalar reference wire — the fallback table is always available, so
    // this also pins what a -DSTRATO_SIMD=OFF build would emit.
    common::Bytes reference;
    {
      simd::ScopedIsa scalar(simd::Isa::kScalar);
      ++report.checks;
      try {
        reference = codec.compress(data);
      } catch (const std::exception& e) {
        report.failures.push_back(where + " isa=scalar: compress threw: " +
                                  e.what());
        continue;
      }
    }

    for (const simd::Isa isa : kCandidates) {
      simd::ScopedIsa forced(isa);
      if (!forced.ok()) continue;  // this build/CPU cannot run it
      const std::string isa_where =
          where + " isa=" + simd::to_string(isa);
      // Encode-side identity: the vectorized kernels must emit the exact
      // scalar wire, byte for byte.
      ++report.checks;
      try {
        const common::Bytes wire = codec.compress(data);
        if (wire != reference) {
          report.failures.push_back(isa_where +
                                    ": wire diverges from scalar (" +
                                    diff_context(wire, reference) + ")");
        }
      } catch (const std::exception& e) {
        report.failures.push_back(isa_where + ": compress threw: " + e.what());
      }
      // Decode-side identity: the scalar wire must decode under the
      // vectorized copy/refill kernels back to the original bytes.
      ++report.checks;
      try {
        const common::Bytes back = codec.decompress(reference, data.size());
        if (!std::equal(back.begin(), back.end(), data.begin(), data.end())) {
          report.failures.push_back(isa_where +
                                    ": decode of scalar wire diverged (" +
                                    diff_context(back, data) + ")");
        }
      } catch (const std::exception& e) {
        report.failures.push_back(isa_where + ": decompress threw: " +
                                  e.what());
      }
    }
  }
}

common::Bytes Oracle::serial_wire(const std::vector<common::Bytes>& payloads,
                                  const std::vector<int>& levels) const {
  const int max_level = static_cast<int>(registry_.level_count()) - 1;
  common::Bytes wire;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    const int level =
        std::clamp(i < levels.size() ? levels[i] : 0, 0, max_level);
    const auto& rung = registry_.level(static_cast<std::size_t>(level));
    const common::Bytes frame = compress::encode_block(
        *rung.codec, static_cast<std::uint8_t>(level), payloads[i]);
    wire.insert(wire.end(), frame.begin(), frame.end());
  }
  return wire;
}

void Oracle::check_pipeline_identity(
    const std::vector<common::Bytes>& payloads, const std::vector<int>& levels,
    const std::vector<std::size_t>& worker_counts,
    OracleReport& report) const {
  const common::Bytes reference = serial_wire(payloads, levels);
  for (const std::size_t workers : worker_counts) {
    const std::string where = "workers=" + std::to_string(workers);
    common::Bytes wire;
    {
      compress::PipelineConfig cfg;
      cfg.worker_count = workers;
      compress::ParallelBlockPipeline pipeline(
          registry_, cfg,
          [&wire](common::ByteSpan frame, std::size_t, int) {
            wire.insert(wire.end(), frame.begin(), frame.end());
          });
      for (std::size_t i = 0; i < payloads.size(); ++i) {
        pipeline.submit(i < levels.size() ? levels[i] : 0, payloads[i]);
      }
      pipeline.flush();
    }
    ++report.checks;
    if (wire != reference) {
      report.failures.push_back(where + ": wire differs from serial path (" +
                                diff_context(wire, reference) + ")");
      continue;  // decoding a divergent wire would double-report
    }
    // Decode the parallel wire end to end: payload sequence must survive.
    ++report.checks;
    compress::FrameAssembler assembler(registry_);
    assembler.feed(wire);
    std::size_t got = 0;
    try {
      while (auto block = assembler.next_block()) {
        if (got >= payloads.size()) {
          report.failures.push_back(where + ": decoded more blocks than "
                                            "submitted");
          break;
        }
        if (*block != payloads[got]) {
          report.failures.push_back(where + ": block " + std::to_string(got) +
                                    " diverged after decode (" +
                                    diff_context(*block, payloads[got]) + ")");
        }
        ++got;
      }
    } catch (const std::exception& e) {
      report.failures.push_back(where + ": decode of pipeline wire threw: " +
                                e.what());
    }
    if (got != payloads.size()) {
      report.failures.push_back(where + ": decoded " + std::to_string(got) +
                                " of " + std::to_string(payloads.size()) +
                                " blocks");
    }
  }
}

namespace {

/// Outcome of decoding one wire end to end: the delivered blocks plus the
/// error (if any) that ended the stream.
struct DecodeRun {
  std::vector<common::Bytes> blocks;
  std::string error;  // empty = clean
};

}  // namespace

void Oracle::check_decode_identity(
    common::ByteSpan wire, const std::vector<std::size_t>& worker_counts,
    const std::vector<std::size_t>& chunk_sizes, OracleReport& report) const {
  // Serial reference: the FrameAssembler defines the observable contract
  // (block sequence, and which error after how many good blocks).
  DecodeRun reference;
  {
    compress::FrameAssembler assembler(registry_);
    assembler.feed(wire);
    try {
      while (auto block = assembler.next_block()) {
        reference.blocks.push_back(std::move(*block));
      }
    } catch (const std::exception& e) {
      reference.error = e.what();
    }
  }

  for (const std::size_t workers : worker_counts) {
    for (const std::size_t chunk : chunk_sizes) {
      const std::string where = "decode workers=" + std::to_string(workers) +
                                " chunk=" + std::to_string(chunk);
      DecodeRun run;
      {
        compress::DecodePipelineConfig cfg;
        cfg.worker_count = workers;
        compress::ParallelBlockDecodePipeline pipeline(registry_, cfg);
        try {
          // Feed in chunks, draining between feeds — exercises partial
          // frames, the reorder window, and segment wraparound.
          std::size_t off = 0;
          while (off < wire.size()) {
            const std::size_t n = std::min(chunk, wire.size() - off);
            pipeline.feed(wire.subspan(off, n));
            off += n;
            while (auto block = pipeline.next_block()) {
              run.blocks.emplace_back(block->data.begin(), block->data.end());
            }
          }
        } catch (const std::exception& e) {
          run.error = e.what();
        }
      }
      ++report.checks;
      if (run.error != reference.error) {
        report.failures.push_back(where + ": error mismatch (\"" + run.error +
                                  "\" vs serial \"" + reference.error + "\")");
        continue;
      }
      ++report.checks;
      if (run.blocks.size() != reference.blocks.size()) {
        report.failures.push_back(
            where + ": delivered " + std::to_string(run.blocks.size()) +
            " blocks, serial delivered " +
            std::to_string(reference.blocks.size()));
        continue;
      }
      ++report.checks;
      for (std::size_t i = 0; i < run.blocks.size(); ++i) {
        if (run.blocks[i] != reference.blocks[i]) {
          report.failures.push_back(
              where + ": block " + std::to_string(i) + " diverged (" +
              diff_context(run.blocks[i], reference.blocks[i]) + ")");
          break;
        }
      }
    }
  }
}

}  // namespace strato::verify
