#include "verify/minifuzz.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/checksum.h"
#include "common/rng.h"
#include "compress/framing.h"
#include "verify/mutator.h"

namespace strato::verify {

namespace {

/// Adversarial payload mix: runs, random noise, self-copies, ramps — the
/// same classes of structure the property tests use, inlined here so the
/// fuzz corpus is independent of the corpus generators.
common::Bytes fuzz_payload(common::Xoshiro256& rng, std::size_t target) {
  common::Bytes data;
  while (data.size() < target) {
    switch (rng.below(6)) {
      case 0:
        data.insert(data.end(), 1 + rng.below(300),
                    static_cast<std::uint8_t>(rng()));
        break;
      case 1: {
        const std::size_t n = 1 + rng.below(200);
        for (std::size_t i = 0; i < n; ++i) {
          data.push_back(static_cast<std::uint8_t>(rng()));
        }
        break;
      }
      case 2: {
        if (data.empty()) break;
        const std::size_t start = rng.below(data.size());
        const std::size_t n =
            std::min<std::size_t>(1 + rng.below(400), data.size() - start);
        for (std::size_t i = 0; i < n; ++i) data.push_back(data[start + i]);
        break;
      }
      case 3: {
        const std::size_t n = 1 + rng.below(128);
        for (std::size_t i = 0; i < n; ++i) {
          data.push_back(static_cast<std::uint8_t>(i));
        }
        break;
      }
      case 4: {
        // Small-period run: decodes as overlapped match copies at
        // distances 1..64, the wild-copy widening hazard class. The
        // resize below truncates the last run at the payload tail, so
        // these copies also routinely end within the final 32 bytes of
        // the exact-size decode scratch.
        const std::size_t period = 1 + rng.below(64);
        for (std::size_t i = 0; i < period; ++i) {
          data.push_back(static_cast<std::uint8_t>(rng()));
        }
        const std::size_t start = data.size() - period;
        const std::size_t n = period + rng.below(300);
        for (std::size_t i = 0; i < n; ++i) data.push_back(data[start + i]);
        break;
      }
      default:
        data.push_back(static_cast<std::uint8_t>(rng()));
    }
  }
  data.resize(target);
  return data;
}

/// Order-sensitive digest accumulator (FNV-1a over outcome words).
void fold(std::uint64_t& fp, std::uint64_t word) {
  fp ^= word;
  fp *= 1099511628211ULL;
}

/// Decode a (possibly mutated) wire stream and classify the outcome.
/// `originals` holds the XXH64 of every payload that was legally encoded.
enum class Outcome : std::uint64_t {
  kIntact = 1,     ///< no error; every decoded block was an original
  kRejected = 2,   ///< CodecError — clean rejection
  kCorrupted = 3,  ///< decoded bytes that were never encoded
};

Outcome classify(const compress::CodecRegistry& registry,
                 const common::Bytes& wire,
                 const std::set<std::uint64_t>& originals,
                 std::string& detail) {
  compress::FrameAssembler assembler(registry);
  assembler.feed(wire);
  bool threw = false;
  int decoded = 0;
  try {
    // A mutated stream holds at most a handful of frames (groups are
    // small; duplication adds a few) — a higher count means the parser
    // lost its mind, which the bound turns into a visible failure.
    while (decoded < 64) {
      auto block = assembler.next_block();
      if (!block) break;
      if (originals.find(common::xxh64(*block)) == originals.end()) {
        detail = "decoded a block that was never encoded (size " +
                 std::to_string(block->size()) + ")";
        return Outcome::kCorrupted;
      }
      ++decoded;
    }
    if (decoded >= 64) {
      detail = "assembler produced >= 64 blocks from a tiny stream";
      return Outcome::kCorrupted;
    }
  } catch (const compress::CodecError&) {
    threw = true;
  }
  return threw ? Outcome::kRejected : Outcome::kIntact;
}

}  // namespace

std::string MinifuzzResult::summary() const {
  std::ostringstream os;
  os << iterations << " mutations: " << rejected << " rejected, " << intact
     << " intact, " << failures.size() << " FAILURES (fingerprint 0x"
     << std::hex << fingerprint << ")";
  for (const auto& f : failures) os << "\n  " << f;
  return os.str();
}

MinifuzzResult run_frame_minifuzz(const compress::CodecRegistry& registry,
                                  std::size_t level,
                                  const MinifuzzConfig& config) {
  MinifuzzResult result;
  const auto& rung = registry.level(level);
  const int per_stream = std::max(1, config.mutations_per_stream);
  std::uint64_t group = 0;
  while (result.iterations < static_cast<std::uint64_t>(config.iterations)) {
    // One group: encode 1-3 blocks, then re-mutate fresh copies of the
    // wire many times. Group seeds derive from the base seed alone, so
    // the whole run replays from STRATO_FUZZ_SEED.
    const std::uint64_t group_seed =
        common::SplitMix64(config.seed ^ (0x9E3779B97F4A7C15ULL * (group + 1)))
            .next();
    ++group;
    common::Xoshiro256 rng(group_seed);

    const std::size_t blocks = 1 + rng.below(3);
    common::Bytes wire;
    std::vector<std::size_t> offsets;
    std::set<std::uint64_t> originals;
    for (std::size_t b = 0; b < blocks; ++b) {
      const common::Bytes payload =
          fuzz_payload(rng, rng.below(config.max_payload + 1));
      offsets.push_back(wire.size());
      const common::Bytes frame = compress::encode_block(
          *rung.codec, static_cast<std::uint8_t>(rung.level), payload);
      wire.insert(wire.end(), frame.begin(), frame.end());
      originals.insert(common::xxh64(payload));
    }

    for (int m = 0;
         m < per_stream &&
         result.iterations < static_cast<std::uint64_t>(config.iterations);
         ++m) {
      const std::uint64_t mut_seed =
          common::SplitMix64(group_seed ^ static_cast<std::uint64_t>(m + 1))
              .next();
      StreamMutator mutator(mut_seed);
      common::Bytes damaged = wire;
      std::vector<std::string> applied;
      // 1-3 stacked mutations; only the first sees valid frame offsets
      // (structural mutations invalidate the layout).
      common::Xoshiro256 depth_rng(mut_seed ^ 0xDEF7);
      const int depth = 1 + static_cast<int>(depth_rng.below(3));
      for (int d = 0; d < depth; ++d) {
        applied.push_back(
            mutator.mutate(damaged, d == 0 ? offsets : std::vector<std::size_t>{})
                .description);
      }

      std::string detail;
      const Outcome outcome = classify(registry, damaged, originals, detail);
      ++result.iterations;
      fold(result.fingerprint, static_cast<std::uint64_t>(outcome));
      fold(result.fingerprint, common::xxh64(damaged));
      switch (outcome) {
        case Outcome::kIntact: ++result.intact; break;
        case Outcome::kRejected: ++result.rejected; break;
        case Outcome::kCorrupted: {
          std::ostringstream os;
          os << "level=" << rung.label << " group_seed=" << group_seed
             << " mutation_seed=" << mut_seed << " [";
          for (std::size_t i = 0; i < applied.size(); ++i) {
            os << (i ? "; " : "") << applied[i];
          }
          os << "]: " << detail;
          result.failures.push_back(os.str());
          break;
        }
      }
    }
  }
  return result;
}

MinifuzzResult run_garbage_minifuzz(const compress::CodecRegistry& registry,
                                    const MinifuzzConfig& config) {
  MinifuzzResult result;
  common::Xoshiro256 rng(config.seed ^ 0x6A3BA6E0ULL);
  while (result.iterations < static_cast<std::uint64_t>(config.iterations)) {
    common::Bytes garbage(1 + rng.below(config.max_payload));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng());
    // Half the time, make it look like a frame so parsing gets further.
    if (rng.below(2) == 0 && garbage.size() >= compress::kFrameHeaderSize) {
      common::store_le32(garbage.data(), compress::kFrameMagic);
    }

    // Raw decompress of garbage through every codec.
    for (std::size_t l = 0; l < registry.level_count(); ++l) {
      common::Bytes out(1 + rng.below(2 * config.max_payload));
      try {
        registry.level(l).codec->decompress(garbage, out);
        fold(result.fingerprint, 1);
      } catch (const compress::CodecError&) {
        fold(result.fingerprint, 2);
        ++result.rejected;
      }
      // Anything else (segfault, other exception) escapes and fails the
      // caller loudly — exactly what we want.
    }

    // Assembler over the same garbage.
    std::string detail;
    const Outcome outcome = classify(registry, garbage, {}, detail);
    if (outcome == Outcome::kCorrupted) {
      result.failures.push_back("garbage stream decoded to a block: " +
                                detail);
    } else if (outcome == Outcome::kRejected) {
      ++result.rejected;
    } else {
      ++result.intact;  // never completed a header+payload — also fine
    }
    fold(result.fingerprint, static_cast<std::uint64_t>(outcome));
    ++result.iterations;
  }
  return result;
}

}  // namespace strato::verify
