// Replayable test seeds.
//
// Every randomized test in this repository draws its base seed through
// seed_from_env(), so a red run is replayable with a single environment
// variable (e.g. STRATO_FUZZ_SEED=12345 ctest -R minifuzz) and the seed in
// use is always printed up front.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace strato::verify {

/// Base seed for a randomized test: the env var when set (decimal, or 0x
/// hex), `fallback` otherwise.
inline std::uint64_t seed_from_env(const char* var, std::uint64_t fallback) {
  const char* v = std::getenv(var);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 0);
}

/// Print the seed a test is about to use so any failure is replayable.
/// Returns the seed for inline use.
inline std::uint64_t announce_seed(const char* var, std::uint64_t seed) {
  std::fprintf(stderr, "[seed] %s=%llu (export %s to replay)\n", var,
               static_cast<unsigned long long>(seed), var);
  return seed;
}

}  // namespace strato::verify
