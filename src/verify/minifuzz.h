// Deterministic in-process fuzzing ("minifuzz").
//
// A fixed-seed, fixed-budget fuzz loop that runs as an ordinary ctest
// target: encode a group of framed blocks with the codec under test, apply
// seeded mutations (verify::StreamMutator), feed the damaged stream to the
// decode path and assert the correctness contract — every mutated stream
// is either cleanly rejected with CodecError or every block that decodes
// is byte-identical to an originally encoded block. Same seed => same
// byte-for-byte run, summarised in an order-sensitive fingerprint so a CI
// failure names the exact (seed, step) to replay. The optional libFuzzer
// entry points under fuzz/ (-DSTRATO_FUZZ=ON, Clang) explore the same
// properties coverage-guided.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compress/registry.h"

namespace strato::verify {

/// Budget and seeding of one minifuzz run.
struct MinifuzzConfig {
  std::uint64_t seed = 0xC0DEC5EEDULL;  ///< base seed (env: STRATO_FUZZ_SEED)
  int iterations = 10000;               ///< mutations to apply per run
  int mutations_per_stream = 40;        ///< re-mutations of one encoded group
  std::size_t max_payload = 8192;       ///< payload size cap per block
};

/// Outcome tallies. ok() is the pass/fail verdict; `fingerprint` is an
/// order-sensitive digest of every individual outcome — two runs with the
/// same config must produce identical fingerprints (determinism check).
struct MinifuzzResult {
  std::uint64_t iterations = 0;  ///< mutations actually applied
  std::uint64_t rejected = 0;    ///< streams cleanly rejected (CodecError)
  std::uint64_t intact = 0;      ///< streams that still decoded correctly
  std::uint64_t fingerprint = 0;
  std::vector<std::string> failures;  ///< replayable (seed, step, mutation)

  [[nodiscard]] bool ok() const { return failures.empty(); }
  [[nodiscard]] std::string summary() const;
};

/// Fuzz the framed decode path for one ladder rung: encode groups of
/// blocks with `registry.level(level)`, mutate, decode, assert the
/// contract. Deterministic in (config, registry, level).
MinifuzzResult run_frame_minifuzz(const compress::CodecRegistry& registry,
                                  std::size_t level,
                                  const MinifuzzConfig& config);

/// Feed pure garbage (random bytes, random declared sizes) to every
/// codec's decompress() and to the FrameAssembler: nothing may do anything
/// but throw CodecError or ask for more input.
MinifuzzResult run_garbage_minifuzz(const compress::CodecRegistry& registry,
                                    const MinifuzzConfig& config);

}  // namespace strato::verify
