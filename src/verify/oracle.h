// Differential verification oracle.
//
// The paper's correctness contract (Section III-B) is that every framed
// block is self-contained and decodes to exactly the bytes the application
// wrote, whatever codec the policy picked and however many pipeline
// workers produced it. The Oracle checks that contract differentially:
//
//   * round-trip identity of every registered codec on the same input,
//     including the worst-case output-size bound and the framed path;
//   * wire identity of compress::ParallelBlockPipeline against the serial
//     encoder at arbitrary worker counts — on the wire the two must be
//     byte-indistinguishable.
//
// Failures are collected (not thrown) with enough context to replay, so a
// single run reports every divergence at once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "compress/registry.h"

namespace strato::verify {

/// Accumulated verdict of one or more oracle checks.
struct OracleReport {
  std::uint64_t checks = 0;            ///< individual assertions evaluated
  std::vector<std::string> failures;   ///< one replayable line per failure

  [[nodiscard]] bool ok() const { return failures.empty(); }
  /// Human-readable digest ("N checks, M failures" + each failure line).
  [[nodiscard]] std::string summary() const;
};

class Oracle {
 public:
  explicit Oracle(const compress::CodecRegistry& registry)
      : registry_(registry) {}

  /// Differential round-trip of `data` through every level of the
  /// registry: raw codec round-trip, max_compressed_size bound, and the
  /// framed encode/decode path. `tag` labels failures (e.g. the seed).
  void check_roundtrip(common::ByteSpan data, const std::string& tag,
                       OracleReport& report) const;

  /// Serial reference wire: each payload framed at its level (clamped to
  /// the ladder), concatenated in order.
  [[nodiscard]] common::Bytes serial_wire(
      const std::vector<common::Bytes>& payloads,
      const std::vector<int>& levels) const;

  /// Byte-identity of the parallel pipeline against serial_wire() at each
  /// worker count, plus full decode of the parallel wire back to the
  /// submitted payload sequence.
  void check_pipeline_identity(const std::vector<common::Bytes>& payloads,
                               const std::vector<int>& levels,
                               const std::vector<std::size_t>& worker_counts,
                               OracleReport& report) const;

  /// Kernel-dispatch wire identity: compress `data` at every level under
  /// every ISA this build/CPU can force (scalar always; sse2/avx2/neon
  /// when available) and require the wire bytes to be identical to the
  /// scalar reference, and the scalar wire to decode correctly under
  /// every ISA. This is the contract that lets -DSTRATO_SIMD and the
  /// STRATO_SIMD env override vary freely without wire-format drift.
  void check_simd_identity(common::ByteSpan data, const std::string& tag,
                           OracleReport& report) const;

  /// Receive-side mirror: decode `wire` through the serial FrameAssembler
  /// (the reference) and through ParallelBlockDecodePipeline at each
  /// worker count x feed-chunk size. The delivered block sequence must be
  /// byte-identical, and if the wire is malformed the SAME error must
  /// surface after the SAME number of good blocks, in every configuration.
  void check_decode_identity(common::ByteSpan wire,
                             const std::vector<std::size_t>& worker_counts,
                             const std::vector<std::size_t>& chunk_sizes,
                             OracleReport& report) const;

 private:
  const compress::CodecRegistry& registry_;
};

}  // namespace strato::verify
