#include "compress/registry.h"

#include "compress/deflate_lz.h"
#include "compress/heavy_lz.h"
#include "compress/lz77.h"

namespace strato::compress {

void CodecRegistry::add_level(std::string label,
                              std::unique_ptr<Codec> codec) {
  CompressionLevel lvl;
  lvl.level = static_cast<int>(levels_.size());
  lvl.label = std::move(label);
  lvl.codec = codec.get();
  levels_.push_back(std::move(lvl));
  owned_.push_back(std::move(codec));
}

const Codec& CodecRegistry::codec_by_id(std::uint8_t id) const {
  static const NullCodec null_codec;
  if (id == kCodecNull) return null_codec;
  for (const auto& c : owned_) {
    if (c->id() == id) return *c;
  }
  throw CodecError("unknown codec id " + std::to_string(id));
}

const CodecRegistry& CodecRegistry::standard() {
  static const CodecRegistry* registry = [] {
    auto* r = new CodecRegistry();
    r->add_level("NO", std::make_unique<NullCodec>());
    r->add_level("LIGHT", std::make_unique<FastLz>());
    r->add_level("MEDIUM", std::make_unique<MediumLz>());
    r->add_level("HEAVY", std::make_unique<HeavyLz>());
    return r;
  }();
  return *registry;
}

const CodecRegistry& CodecRegistry::extended() {
  static const CodecRegistry* registry = [] {
    auto* r = new CodecRegistry();
    r->add_level("NO", std::make_unique<NullCodec>());
    r->add_level("LIGHT", std::make_unique<FastLz>());
    r->add_level("MEDIUM", std::make_unique<MediumLz>());
    r->add_level("DEFLATE", std::make_unique<DeflateLz>());
    r->add_level("HEAVY", std::make_unique<HeavyLz>());
    return r;
  }();
  return *registry;
}

}  // namespace strato::compress
