// Ordered compression-level registry.
//
// The paper (Section III): "we assume that our adaptive compression
// algorithm can choose between a fixed set of n compression levels ...
// ordered by their respective time/compression ratio. Compression level 0
// stands for no compression." The default registry reproduces the paper's
// four levels: NO, LIGHT (QuickLZ-fast analogue), MEDIUM (QuickLZ-ratio
// analogue), HEAVY (LZMA analogue).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "compress/codec.h"

namespace strato::compress {

/// One rung of the ladder.
struct CompressionLevel {
  int level = 0;
  std::string label;            // "NO", "LIGHT", ...
  const Codec* codec = nullptr; // owned by the registry
};

/// Holds the ordered set of levels and resolves codec ids from frames.
class CodecRegistry {
 public:
  CodecRegistry() = default;

  /// Append a level (must be registered in increasing time/ratio order).
  void add_level(std::string label, std::unique_ptr<Codec> codec);

  [[nodiscard]] std::size_t level_count() const { return levels_.size(); }
  [[nodiscard]] const CompressionLevel& level(std::size_t i) const {
    return levels_.at(i);
  }

  /// Codec for a frame's codec id (any registered codec, plus NullCodec
  /// id 0 which is always resolvable). @throws CodecError if unknown.
  [[nodiscard]] const Codec& codec_by_id(std::uint8_t id) const;

  /// The paper's ladder: NO / LIGHT(FastLz) / MEDIUM(MediumLz) /
  /// HEAVY(HeavyLz).
  static const CodecRegistry& standard();

  /// A five-rung ladder inserting DEFLATE (DeflateLz) between MEDIUM and
  /// HEAVY — Algorithm 1 is agnostic to the number of levels; the
  /// ladder-generality experiments use this.
  static const CodecRegistry& extended();

 private:
  std::vector<CompressionLevel> levels_;
  std::vector<std::unique_ptr<Codec>> owned_;
};

}  // namespace strato::compress
