#include "compress/heavy_lz.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <memory>
#include <vector>

#include "common/simd.h"
#include "compress/lz_common.h"
#include "compress/range_coder.h"
#include "compress/suffix_match.h"

namespace strato::compress {
namespace {

namespace simd = common::simd;

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxLen = 259;        // kMinMatch + 255 (8-bit tree)
constexpr std::size_t kMaxDist = (1u << 24) - 1;
constexpr int kHashBits = 17;
constexpr int kChainDepth = 96;
// Stop the chain walk once a match this long is found: the serial
// prev-pointer chase is the dominant encode cost, and a 128-byte match is
// almost never displaced by a longer one further down the chain.
constexpr std::size_t kNiceLen = 96;

constexpr std::uint8_t kMarkerCoded = 0;
constexpr std::uint8_t kMarkerStored = 1;

inline std::uint32_t hash32(std::uint32_t v) {
  return detail::lz_hash32(v, kHashBits);
}

/// The per-block adaptive model set. Reset per block (self-contained).
struct Models {
  BitModel is_match[2];     // context: previous symbol was a match
  BitTree<8> literal[8];    // context: previous byte >> 5
  BitTree<8> length;        // match length - kMinMatch
  BitTree<5> dist_nbits;    // bit-width of distance, minus one
};

void encode_distance(RangeEncoder& enc, Models& m, std::uint32_t dist) {
  const int nbits = std::bit_width(dist);  // dist >= 1 -> nbits >= 1
  m.dist_nbits.encode(enc, static_cast<std::uint32_t>(nbits - 1));
  if (nbits > 1) {
    // Low bits after the implicit leading one.
    enc.encode_direct(dist & ((1u << (nbits - 1)) - 1u), nbits - 1);
  }
}

std::uint32_t decode_distance(RangeDecoder& dec, Models& m) {
  const int nbits = static_cast<int>(m.dist_nbits.decode(dec)) + 1;
  std::uint32_t dist = 1u << (nbits - 1);
  if (nbits > 1) dist |= dec.decode_direct(nbits - 1);
  return dist;
}

struct Match {
  std::size_t len = 0;
  std::size_t dist = 0;
};

/// Deep hash-chain match finder over the whole block. Chain arrays come
/// from the per-thread MatchScratch (no allocation per block); the prefix
/// scan is the dispatched simd match_length kernel instead of
/// byte-at-a-time, which is where the deep-chain HEAVY search spends most
/// of its time.
class ChainFinder {
 public:
  ChainFinder(common::ByteSpan src, detail::MatchScratch& scratch,
              const simd::Kernels& kernels)
      : src_(src.data()), n_(src.size()), scratch_(scratch),
        kernels_(kernels) {
    scratch_.prepare(kHashBits, src.size());
  }

  Match find(std::size_t i) const {
    Match best;
    if (i + kMinMatch > n_) return best;
    const std::uint8_t* limit = src_ + n_;
    // i + kMinMatch <= n_ makes the 4-byte loads below safe (c < i).
    const std::uint32_t cur = common::load_u32(src_ + i);
    std::uint32_t cand = scratch_.head[hash32(cur)];
    int depth = kChainDepth;
    while (cand != detail::kLzNoPos && depth-- > 0) {
      const std::size_t c = cand;
      if (i - c > kMaxDist) break;
      // Cheap rejects before the full prefix scan: a candidate must
      // match at offset best.len to beat the best (exact — a mismatch
      // there caps its prefix at best.len) and must match the first four
      // bytes to reach kMinMatch at all. The best.len probe stays
      // in-bounds because the loop exits once best spans to the block
      // end.
      if (src_[c + best.len] == src_[i + best.len] &&
          common::load_u32(src_ + c) == cur) {
        const std::size_t len =
            kernels_.match_length(src_ + i, src_ + c, limit);
        if (len > best.len) {
          best.len = len;
          best.dist = i - c;
          if (len >= kNiceLen) break;  // long enough, stop searching
          if (i + len >= n_) break;    // spans to block end; unbeatable
        }
      }
      cand = scratch_.prev[c];
    }
    best.len = std::min(best.len, kMaxLen);
    return best;
  }

  void insert(std::size_t i) {
    if (i + kMinMatch > n_) return;
    const std::uint32_t h = hash32(load_tail(i));
    scratch_.prev[i] = scratch_.head[h];
    scratch_.head[h] = static_cast<std::uint32_t>(i);
  }

  /// insert() for every position in [begin, end), bulk-hashing the run in
  /// one kernel pass. Positions within kMinMatch - 1 of the block end are
  /// skipped exactly as insert() skips them.
  void insert_range(std::size_t begin, std::size_t end) {
    const std::size_t cap = n_ >= kMinMatch ? n_ - (kMinMatch - 1) : 0;
    end = std::min(end, cap);
    if (end <= begin) return;
    const std::size_t count = end - begin;
    if (count < 16) {
      // Bulk staging doesn't pay for itself on short runs.
      for (std::size_t j = begin; j < end; ++j) insert(j);
      return;
    }
    auto& tmp = scratch_.hash_tmp;
    if (tmp.size() < count) tmp.resize(count);
    kernels_.hash4_bulk(src_ + begin, count, kHashBits, tmp.data());
    for (std::size_t j = 0; j < count; ++j) {
      // Staged hashes expose the head-table indices ahead of time;
      // prefetch hides the random-index line fetch.
      if (j + 8 < count) __builtin_prefetch(&scratch_.head[tmp[j + 8]]);
      const std::uint32_t h = tmp[j];
      scratch_.prev[begin + j] = scratch_.head[h];
      scratch_.head[h] = static_cast<std::uint32_t>(begin + j);
    }
  }

 private:
  /// 4-byte load that is safe near the end of the block.
  std::uint32_t load_tail(std::size_t i) const {
    if (i + 4 <= n_) return common::load_u32(src_ + i);
    std::uint32_t v = 0;
    std::memcpy(&v, src_ + i, n_ - i);
    return v;
  }

  const std::uint8_t* src_;
  std::size_t n_;
  detail::MatchScratch& scratch_;
  const simd::Kernels& kernels_;
};

/// The HEAVY symbol loop, generic over match finding. `find(i)` returns
/// the match to take at i (len < kMinMatch means literal); `advance(i,
/// len, is_match)` lets stateful finders register consumed positions (the
/// suffix-array finder has no such bookkeeping).
template <typename FindFn, typename AdvanceFn>
void encode_symbols(common::ByteSpan src, RangeEncoder& enc, Models& models,
                    FindFn&& find, AdvanceFn&& advance) {
  std::size_t i = 0;
  std::uint32_t prev_byte = 0;
  std::uint32_t last_was_match = 0;
  while (i < src.size()) {
    const Match m = find(i);
    if (m.len >= kMinMatch) {
      enc.encode_bit(models.is_match[last_was_match], 1);
      models.length.encode(enc, static_cast<std::uint32_t>(m.len - kMinMatch));
      encode_distance(enc, models, static_cast<std::uint32_t>(m.dist));
      advance(i, m.len, true);
      i += m.len;
      prev_byte = src[i - 1];
      last_was_match = 1;
    } else {
      enc.encode_bit(models.is_match[last_was_match], 0);
      models.literal[prev_byte >> 5].encode(enc, src[i]);
      advance(i, 1, false);
      prev_byte = src[i];
      ++i;
      last_was_match = 0;
    }
  }
}

}  // namespace

std::size_t HeavyLz::compress(common::ByteSpan src,
                              common::MutableByteSpan dst) const {
  if (dst.size() < max_compressed_size(src.size())) {
    throw CodecError("heavylz: destination too small");
  }
  if (src.empty()) {
    dst[0] = kMarkerStored;
    return 1;
  }

  RangeEncoder enc;
  auto models = std::make_unique<Models>();
  if (finder_ == HeavyFinder::kSuffixArray) {
    SuffixMatcher matcher;
    matcher.build(src);
    encode_symbols(
        src, enc, *models,
        [&](std::size_t i) {
          const SuffixMatcher::Match m = matcher.find(i, kMaxLen, kMaxDist);
          return Match{m.len, m.dist};
        },
        [](std::size_t, std::size_t, bool) {});
  } else {
    ChainFinder finder(src, detail::match_scratch(), simd::kernels());
    encode_symbols(
        src, enc, *models, [&](std::size_t i) { return finder.find(i); },
        [&](std::size_t i, std::size_t len, bool is_match) {
          if (is_match) {
            finder.insert_range(i, i + len);
          } else {
            finder.insert(i);
          }
        });
  }
  enc.finish();

  const common::Bytes& coded = enc.bytes();
  if (coded.size() + 1 >= src.size()) {
    // Entropy coding lost; store raw (keeps the worst-case bound tight).
    dst[0] = kMarkerStored;
    if (!src.empty()) std::memcpy(dst.data() + 1, src.data(), src.size());
    return src.size() + 1;
  }
  dst[0] = kMarkerCoded;
  std::memcpy(dst.data() + 1, coded.data(), coded.size());
  return coded.size() + 1;
}

std::size_t HeavyLz::decompress(common::ByteSpan src,
                                common::MutableByteSpan dst) const {
  if (src.empty()) throw CodecError("heavylz: empty input");
  const std::uint8_t marker = src[0];
  common::ByteSpan body = src.subspan(1);
  if (marker == kMarkerStored) {
    if (body.size() != dst.size()) {
      throw CodecError("heavylz: stored size mismatch");
    }
    if (!body.empty()) std::memcpy(dst.data(), body.data(), body.size());
    return dst.size();
  }
  if (marker != kMarkerCoded) throw CodecError("heavylz: bad marker");
  if (dst.empty()) return 0;

  RangeDecoder dec(body);
  auto models = std::make_unique<Models>();
  const simd::Kernels& kernels = simd::kernels();
  std::uint8_t* out = dst.data();
  std::uint8_t* const out_end = out + dst.size();
  std::uint32_t prev_byte = 0;
  std::uint32_t last_was_match = 0;

  while (out < out_end) {
    if (dec.decode_bit(models->is_match[last_was_match])) {
      const std::size_t len = models->length.decode(dec) + kMinMatch;
      const std::size_t dist = decode_distance(dec, *models);
      if (dist > static_cast<std::size_t>(out - dst.data())) {
        throw CodecError("heavylz: distance before block start");
      }
      if (len > static_cast<std::size_t>(out_end - out)) {
        throw CodecError("heavylz: match overrun");
      }
      // Overlap-correct for any dist >= 1; exact copy within kWildCopyPad
      // of the block end (decode buffers are exact-size).
      kernels.copy_match(out, dist, len, out_end);
      out += len;
      prev_byte = out[-1];
      last_was_match = 1;
    } else {
      *out = static_cast<std::uint8_t>(
          models->literal[prev_byte >> 5].decode(dec));
      prev_byte = *out;
      ++out;
      last_was_match = 0;
    }
  }
  return dst.size();
}

}  // namespace strato::compress
