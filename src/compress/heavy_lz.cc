#include "compress/heavy_lz.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <memory>
#include <vector>

#include "compress/lz_common.h"
#include "compress/range_coder.h"

namespace strato::compress {
namespace {

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxLen = 259;        // kMinMatch + 255 (8-bit tree)
constexpr std::size_t kMaxDist = (1u << 24) - 1;
constexpr int kHashBits = 17;
constexpr int kChainDepth = 96;

constexpr std::uint8_t kMarkerCoded = 0;
constexpr std::uint8_t kMarkerStored = 1;

inline std::uint32_t hash32(std::uint32_t v) {
  return detail::lz_hash32(v, kHashBits);
}

/// The per-block adaptive model set. Reset per block (self-contained).
struct Models {
  BitModel is_match[2];     // context: previous symbol was a match
  BitTree<8> literal[8];    // context: previous byte >> 5
  BitTree<8> length;        // match length - kMinMatch
  BitTree<5> dist_nbits;    // bit-width of distance, minus one
};

void encode_distance(RangeEncoder& enc, Models& m, std::uint32_t dist) {
  const int nbits = std::bit_width(dist);  // dist >= 1 -> nbits >= 1
  m.dist_nbits.encode(enc, static_cast<std::uint32_t>(nbits - 1));
  if (nbits > 1) {
    // Low bits after the implicit leading one.
    enc.encode_direct(dist & ((1u << (nbits - 1)) - 1u), nbits - 1);
  }
}

std::uint32_t decode_distance(RangeDecoder& dec, Models& m) {
  const int nbits = static_cast<int>(m.dist_nbits.decode(dec)) + 1;
  std::uint32_t dist = 1u << (nbits - 1);
  if (nbits > 1) dist |= dec.decode_direct(nbits - 1);
  return dist;
}

struct Match {
  std::size_t len = 0;
  std::size_t dist = 0;
};

/// Deep hash-chain match finder over the whole block. Chain arrays come
/// from the per-thread MatchScratch (no allocation per block); the prefix
/// scan is word-at-a-time (lz_match_length) instead of byte-at-a-time,
/// which is where the deep-chain HEAVY search spends most of its time.
class ChainFinder {
 public:
  ChainFinder(common::ByteSpan src, detail::MatchScratch& scratch)
      : src_(src.data()), n_(src.size()), scratch_(scratch) {
    scratch_.prepare(kHashBits, src.size());
  }

  Match find(std::size_t i) const {
    Match best;
    if (i + kMinMatch > n_) return best;
    const std::uint8_t* limit = src_ + n_;
    std::uint32_t cand = scratch_.head[hash32(load_tail(i))];
    int depth = kChainDepth;
    while (cand != detail::kLzNoPos && depth-- > 0) {
      const std::size_t c = cand;
      if (i - c > kMaxDist) break;
      const std::size_t len =
          detail::lz_match_length(src_ + i, src_ + c, limit);
      if (len >= kMinMatch && len > best.len) {
        best.len = len;
        best.dist = i - c;
        if (len >= kMaxLen) break;  // long enough, stop searching
      }
      cand = scratch_.prev[c];
    }
    best.len = std::min(best.len, kMaxLen);
    return best;
  }

  void insert(std::size_t i) {
    if (i + kMinMatch > n_) return;
    const std::uint32_t h = hash32(load_tail(i));
    scratch_.prev[i] = scratch_.head[h];
    scratch_.head[h] = static_cast<std::uint32_t>(i);
  }

 private:
  /// 4-byte load that is safe near the end of the block.
  std::uint32_t load_tail(std::size_t i) const {
    if (i + 4 <= n_) return common::load_u32(src_ + i);
    std::uint32_t v = 0;
    std::memcpy(&v, src_ + i, n_ - i);
    return v;
  }

  const std::uint8_t* src_;
  std::size_t n_;
  detail::MatchScratch& scratch_;
};

}  // namespace

std::size_t HeavyLz::compress(common::ByteSpan src,
                              common::MutableByteSpan dst) const {
  if (dst.size() < max_compressed_size(src.size())) {
    throw CodecError("heavylz: destination too small");
  }
  if (src.empty()) {
    dst[0] = kMarkerStored;
    return 1;
  }

  RangeEncoder enc;
  auto models = std::make_unique<Models>();
  ChainFinder finder(src, detail::match_scratch());

  std::size_t i = 0;
  std::uint32_t prev_byte = 0;
  std::uint32_t last_was_match = 0;
  while (i < src.size()) {
    Match m = finder.find(i);
    if (m.len >= kMinMatch) {
      enc.encode_bit(models->is_match[last_was_match], 1);
      models->length.encode(enc, static_cast<std::uint32_t>(m.len - kMinMatch));
      encode_distance(enc, *models, static_cast<std::uint32_t>(m.dist));
      for (std::size_t j = i; j < i + m.len; ++j) finder.insert(j);
      i += m.len;
      prev_byte = src[i - 1];
      last_was_match = 1;
    } else {
      enc.encode_bit(models->is_match[last_was_match], 0);
      models->literal[prev_byte >> 5].encode(enc, src[i]);
      finder.insert(i);
      prev_byte = src[i];
      ++i;
      last_was_match = 0;
    }
  }
  enc.finish();

  const common::Bytes& coded = enc.bytes();
  if (coded.size() + 1 >= src.size()) {
    // Entropy coding lost; store raw (keeps the worst-case bound tight).
    dst[0] = kMarkerStored;
    std::memcpy(dst.data() + 1, src.data(), src.size());
    return src.size() + 1;
  }
  dst[0] = kMarkerCoded;
  std::memcpy(dst.data() + 1, coded.data(), coded.size());
  return coded.size() + 1;
}

std::size_t HeavyLz::decompress(common::ByteSpan src,
                                common::MutableByteSpan dst) const {
  if (src.empty()) throw CodecError("heavylz: empty input");
  const std::uint8_t marker = src[0];
  common::ByteSpan body = src.subspan(1);
  if (marker == kMarkerStored) {
    if (body.size() != dst.size()) {
      throw CodecError("heavylz: stored size mismatch");
    }
    std::memcpy(dst.data(), body.data(), body.size());
    return dst.size();
  }
  if (marker != kMarkerCoded) throw CodecError("heavylz: bad marker");
  if (dst.empty()) return 0;

  RangeDecoder dec(body);
  auto models = std::make_unique<Models>();
  std::uint8_t* out = dst.data();
  std::uint8_t* const out_end = out + dst.size();
  std::uint32_t prev_byte = 0;
  std::uint32_t last_was_match = 0;

  while (out < out_end) {
    if (dec.decode_bit(models->is_match[last_was_match])) {
      const std::size_t len = models->length.decode(dec) + kMinMatch;
      const std::size_t dist = decode_distance(dec, *models);
      if (dist > static_cast<std::size_t>(out - dst.data())) {
        throw CodecError("heavylz: distance before block start");
      }
      if (len > static_cast<std::size_t>(out_end - out)) {
        throw CodecError("heavylz: match overrun");
      }
      const std::uint8_t* from = out - dist;
      for (std::size_t k = 0; k < len; ++k) out[k] = from[k];
      out += len;
      prev_byte = out[-1];
      last_was_match = 1;
    } else {
      *out = static_cast<std::uint8_t>(
          models->literal[prev_byte >> 5].decode(dec));
      prev_byte = *out;
      ++out;
      last_was_match = 0;
    }
  }
  return dst.size();
}

}  // namespace strato::compress
