#include "compress/lz77.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/simd.h"
#include "compress/lz_common.h"

namespace strato::compress {
namespace {

namespace simd = common::simd;

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxOffset = 65535;
// The final kTailLiterals bytes of a block are always literals; match
// search stops kMatchGuard before the end so forward extension can use
// wide compares without running past the buffer.
constexpr std::size_t kTailLiterals = 5;
constexpr std::size_t kMatchGuard = 12;
// Parse heuristics: stop the chain walk once a match reaches kNiceLen
// (the serial prev-pointer chase is the dominant search cost and such a
// match is almost never displaced), and skip the lazy one-ahead search
// when the current match is already kLazyCutoff or longer (a strictly
// better match one byte later would have to beat it by 2, which long
// matches essentially never see).
constexpr std::size_t kNiceLen = 64;
constexpr std::size_t kLazyCutoff = 32;

using detail::kLzNoPos;
using detail::lz_hash32;

/// Output cursor with LZ4-style token emission. Literal runs whose source
/// has kWildCopyPad bytes of in-buffer margin go through the wild-copy
/// kernel (full-register strides); the destination always has margin
/// because lz77_max_compressed_size over-allocates by kWildCopyPad + 16.
class SeqWriter {
 public:
  SeqWriter(common::MutableByteSpan dst, const std::uint8_t* src_end,
            const simd::Kernels& kernels)
      : dst_(dst), src_end_(src_end), kernels_(kernels) {}

  /// Emit one sequence: literals [lit, lit+lit_len) followed by a match of
  /// `match_len` (0 = final literal-only sequence) at distance `offset`.
  void emit(const std::uint8_t* lit, std::size_t lit_len,
            std::size_t match_len, std::size_t offset) {
    const std::size_t ml_code = match_len == 0 ? 0 : match_len - kMinMatch;
    std::uint8_t token =
        static_cast<std::uint8_t>(std::min<std::size_t>(lit_len, 15) << 4);
    token |= static_cast<std::uint8_t>(std::min<std::size_t>(ml_code, 15));
    put(token);
    if (lit_len >= 15) put_ext(lit_len - 15);
    if (lit_len != 0) {
      std::uint8_t* d = dst_.data() + pos_;
      if (lit + lit_len + simd::kWildCopyPad <= src_end_) {
        if (lit_len <= 16) {
          std::memcpy(d, lit, 16);  // wild fixed-size copy, inlined
        } else {
          kernels_.wild_copy(d, lit, lit_len);
        }
      } else {
        std::memcpy(d, lit, lit_len);
      }
      pos_ += lit_len;
    }
    if (match_len == 0) return;
    common::store_le16(dst_.data() + pos_, static_cast<std::uint16_t>(offset));
    pos_ += 2;
    if (ml_code >= 15) put_ext(ml_code - 15);
  }

  [[nodiscard]] std::size_t written() const { return pos_; }

 private:
  void put(std::uint8_t b) { dst_[pos_++] = b; }
  void put_ext(std::size_t rem) {
    while (rem >= 255) {
      put(255);
      rem -= 255;
    }
    put(static_cast<std::uint8_t>(rem));
  }

  common::MutableByteSpan dst_;
  const std::uint8_t* src_end_;
  const simd::Kernels& kernels_;
  std::size_t pos_ = 0;
};

struct Match {
  std::size_t len = 0;
  std::size_t offset = 0;
};

/// Hash-chain match finder over one block. chain_depth 0 degrades to a
/// single-probe table (the FAST path). The head/prev arrays live in the
/// per-thread MatchScratch, so compressing a block allocates nothing.
class MatchFinder {
 public:
  MatchFinder(common::ByteSpan src, const Lz77Params& p,
              detail::MatchScratch& scratch, const simd::Kernels& kernels)
      : src_(src.data()),
        n_(src.size()),
        params_(p),
        use_chain_(p.chain_depth > 0),
        scratch_(scratch),
        kernels_(kernels) {
    scratch_.prepare(p.hash_bits, use_chain_ ? src.size() : 0);
  }

  /// Best match at position i (i + kMatchGuard <= n). Returns len 0 if none.
  Match find(std::size_t i) const {
    const std::uint32_t h =
        lz_hash32(common::load_u32(src_ + i), params_.hash_bits);
    std::uint32_t cand = scratch_.head[h];
    Match best;
    const std::uint8_t* limit = src_ + n_ - kTailLiterals;
    int depth = std::max(1, params_.chain_depth);
    const std::uint32_t cur = common::load_u32(src_ + i);
    while (cand != kLzNoPos && depth-- > 0) {
      const std::size_t c = cand;
      if (i - c > kMaxOffset) break;
      // A candidate can only beat `best` if it extends past best.len, so
      // one byte there rejects most of the chain without a full scan
      // (exact: a mismatch at best.len caps the prefix at best.len).
      // best.len never exceeds limit - (src_ + i), so the probe is
      // in-bounds.
      if (src_[c + best.len] == src_[i + best.len] &&
          common::load_u32(src_ + c) == cur) {
        const std::size_t len =
            kernels_.match_length(src_ + i, src_ + c, limit);
        if (len >= kMinMatch && len > best.len) {
          best.len = len;
          best.offset = i - c;
          if (len >= kNiceLen) break;  // long enough, stop searching
        }
      }
      if (!use_chain_) break;
      cand = scratch_.prev[c];
    }
    return best;
  }

  /// Register position i in the hash structures.
  void insert(std::size_t i) {
    const std::uint32_t h =
        lz_hash32(common::load_u32(src_ + i), params_.hash_bits);
    if (use_chain_) scratch_.prev[i] = scratch_.head[h];
    scratch_.head[h] = static_cast<std::uint32_t>(i);
  }

  /// Register every position in [begin, end): hash the whole run in one
  /// bulk-kernel pass, then do the (serial by nature) chain-pointer
  /// updates. Identical to calling insert() for each position in
  /// ascending order. Requires end + 3 <= n (4-byte loads).
  void insert_range(std::size_t begin, std::size_t end) {
    if (end <= begin) return;
    const std::size_t count = end - begin;
    if (count < 16) {
      // Bulk staging doesn't pay for itself on short runs.
      for (std::size_t j = begin; j < end; ++j) insert(j);
      return;
    }
    auto& tmp = scratch_.hash_tmp;
    if (tmp.size() < count) tmp.resize(count);
    kernels_.hash4_bulk(src_ + begin, count, params_.hash_bits, tmp.data());
    if (use_chain_) {
      for (std::size_t j = 0; j < count; ++j) {
        // The staged hashes make the head-table access pattern visible a
        // few iterations ahead; prefetching hides the (random-index)
        // table line fetch behind the serial chain updates.
        if (j + 8 < count) __builtin_prefetch(&scratch_.head[tmp[j + 8]]);
        const std::uint32_t h = tmp[j];
        scratch_.prev[begin + j] = scratch_.head[h];
        scratch_.head[h] = static_cast<std::uint32_t>(begin + j);
      }
    } else {
      for (std::size_t j = 0; j < count; ++j) {
        if (j + 8 < count) __builtin_prefetch(&scratch_.head[tmp[j + 8]]);
        scratch_.head[tmp[j]] = static_cast<std::uint32_t>(begin + j);
      }
    }
  }

 private:
  const std::uint8_t* src_;
  std::size_t n_;
  Lz77Params params_;
  bool use_chain_;
  detail::MatchScratch& scratch_;
  const simd::Kernels& kernels_;
};

}  // namespace

std::size_t lz77_compress(common::ByteSpan src, common::MutableByteSpan dst,
                          const Lz77Params& params) {
  return lz77_compress_with_history(src, 0, dst, params);
}

std::size_t lz77_compress_with_history(common::ByteSpan buffer,
                                       std::size_t history_len,
                                       common::MutableByteSpan dst,
                                       const Lz77Params& params) {
  const simd::Kernels& kernels = simd::kernels();
  SeqWriter out(dst, buffer.data() + buffer.size(), kernels);
  const std::size_t n = buffer.size();
  const std::size_t h = std::min(history_len, n);
  const std::size_t block = n - h;
  if (block < kMatchGuard + kTailLiterals) {
    out.emit(buffer.data() + h, block, 0, 0);
    return out.written();
  }

  MatchFinder finder(buffer, params, detail::match_scratch(), kernels);
  // Pre-warm the hash structures with the retained window so matches can
  // reach back into previous blocks.
  if (h > 0 && n >= 4) {
    const std::size_t warm_end = std::min(h, n - 3);
    finder.insert_range(0, warm_end);
  }
  const std::size_t search_end = n - kMatchGuard;
  std::size_t anchor = h;
  std::size_t i = h;
  std::size_t misses = 0;
  const common::ByteSpan src = buffer;

  Match carried;  // lazy step's find(i + 1), reused as the next find(i)
  bool have_carried = false;

  while (i < search_end) {
    Match m;
    if (have_carried) {
      m = carried;
      have_carried = false;
    } else {
      m = finder.find(i);
    }
    finder.insert(i);
    if (m.len == 0) {
      // Skip acceleration: advance faster the longer we fail to match.
      ++misses;
      i += 1 + (params.chain_depth == 0 ? (misses >> params.skip_shift) : 0);
      continue;
    }
    // Lazy matching: if the next position has a strictly better match,
    // emit this byte as a literal instead. The search result carries over
    // to the next iteration verbatim: i is already inserted and i + 1 is
    // not until the next iteration runs, so repeating find(i + 1) there
    // would walk identical chains.
    if (params.lazy && m.len < kLazyCutoff && i + 1 < search_end) {
      Match m2 = finder.find(i + 1);
      if (m2.len > m.len + 1) {
        ++i;
        carried = m2;
        have_carried = true;
        continue;  // i+1 gets inserted on the next loop iteration
      }
    }
    misses = 0;
    // Extend the match backward over pending literals.
    while (i > anchor && m.offset < i && src[i - 1] == src[i - 1 - m.offset]) {
      --i;
      ++m.len;
    }
    out.emit(src.data() + anchor, i - anchor, m.len, m.offset);
    // Register a few positions inside the match so later data can match
    // into it (cheap partial insertion keeps the fast path fast).
    const std::size_t match_end = std::min(i + m.len, search_end);
    if (params.chain_depth > 0) {
      finder.insert_range(i + 1, match_end);
    } else if (i + 2 < match_end) {
      finder.insert(i + 2);
    }
    i += m.len;
    anchor = i;
  }
  out.emit(src.data() + anchor, n - anchor, 0, 0);
  return out.written();
}

std::size_t lz77_decompress(common::ByteSpan src,
                            common::MutableByteSpan dst) {
  return lz77_decompress_with_history(src, dst, 0, dst.size());
}

std::size_t lz77_decompress_with_history(common::ByteSpan src,
                                         common::MutableByteSpan buffer,
                                         std::size_t history_len,
                                         std::size_t raw_size) {
  if (history_len + raw_size > buffer.size()) {
    throw CodecError("lz77: history buffer too small");
  }
  const simd::Kernels& kernels = simd::kernels();
  const std::uint8_t* in = src.data();
  const std::uint8_t* in_end = in + src.size();
  std::uint8_t* const base = buffer.data();
  std::uint8_t* out = base + history_len;
  std::uint8_t* out_end = out + raw_size;

  auto read_ext = [&](std::size_t base) -> std::size_t {
    std::size_t v = base;
    std::uint8_t b;
    do {
      if (in >= in_end) throw CodecError("lz77: truncated length");
      b = *in++;
      v += b;
    } while (b == 255);
    return v;
  };

  if (src.empty()) {
    if (raw_size != 0) throw CodecError("lz77: empty input, nonempty output");
    return 0;
  }

  for (;;) {
    if (in >= in_end) throw CodecError("lz77: truncated block");
    const std::uint8_t token = *in++;
    std::size_t lit_len = token >> 4;
    if (lit_len == 15) lit_len = read_ext(15);
    if (lit_len > static_cast<std::size_t>(in_end - in) ||
        lit_len > static_cast<std::size_t>(out_end - out)) {
      throw CodecError("lz77: literal overrun");
    }
    if (lit_len != 0) {
      // Wild literal copy when both the compressed input (read side) and
      // the block (write side) have a full pad of margin; the garbage
      // written past out + lit_len is overwritten by the next sequence
      // before anything can observe it.
      if (lit_len + simd::kWildCopyPad <=
              static_cast<std::size_t>(in_end - in) &&
          lit_len + simd::kWildCopyPad <=
              static_cast<std::size_t>(out_end - out)) {
        kernels.wild_copy(out, in, lit_len);
      } else {
        std::memcpy(out, in, lit_len);
      }
      in += lit_len;
      out += lit_len;
    }
    if (in == in_end) break;  // final literal-only sequence

    if (in + 2 > in_end) throw CodecError("lz77: truncated offset");
    const std::size_t offset = common::load_le16(in);
    in += 2;
    if (offset == 0) throw CodecError("lz77: zero offset");
    std::size_t match_len = (token & 15) + kMinMatch;
    if ((token & 15) == 15) match_len = read_ext(15 + kMinMatch);
    if (offset > static_cast<std::size_t>(out - base)) {
      throw CodecError("lz77: offset before window start");
    }
    if (match_len > static_cast<std::size_t>(out_end - out)) {
      throw CodecError("lz77: match overrun");
    }
    // Overlap-correct for any offset >= 1 (overlap-widening inside the
    // kernel); degrades to an exact copy within kWildCopyPad of out_end.
    kernels.copy_match(out, offset, match_len, out_end);
    out += match_len;
  }
  if (out != out_end) throw CodecError("lz77: short output");
  return raw_size;
}

std::size_t FastLz::compress(common::ByteSpan src,
                             common::MutableByteSpan dst) const {
  Lz77Params p;
  p.hash_bits = 14;
  p.chain_depth = 0;
  p.lazy = false;
  return lz77_compress(src, dst, p);
}

std::size_t FastLz::decompress(common::ByteSpan src,
                               common::MutableByteSpan dst) const {
  return lz77_decompress(src, dst);
}

std::size_t MediumLz::compress(common::ByteSpan src,
                               common::MutableByteSpan dst) const {
  Lz77Params p;
  p.hash_bits = 16;
  p.chain_depth = 8;
  p.lazy = true;
  return lz77_compress(src, dst, p);
}

std::size_t MediumLz::decompress(common::ByteSpan src,
                                 common::MutableByteSpan dst) const {
  return lz77_decompress(src, dst);
}

}  // namespace strato::compress
