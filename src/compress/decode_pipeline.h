// Parallel receive-side block-decompression pipeline.
//
// The mirror image of compress::ParallelBlockPipeline: because every
// framed block is self-contained (Section III-B), received frames can be
// decoded independently. The feeding thread appends wire bytes into pooled
// receive segments, parses frame boundaries in place (zero-copy: each
// frame's payload is a span into the segment it arrived in), dispatches
// complete frames out of order to common::ThreadPool workers for
// decompress + checksum verify, and delivers decoded blocks strictly in
// wire order through the same bounded slot/state reorder window the send
// side uses. The delivered byte stream — including which error is thrown,
// and when — is identical to the serial FrameAssembler path at every
// worker count.
//
// Threading contract:
//   * feed()/next_block() are called from ONE thread (the channel reader);
//   * workers only decode and verify; they never touch segments' layout,
//     the parse cursor, or delivery state;
//   * worker_count <= 1 runs no threads at all — frames decode inline at
//     dispatch, through the same slot machinery, so there is exactly one
//     code path to test.
//
// Zero-copy ownership rules (DESIGN.md section 9):
//   * wire bytes are copied ONCE, into the active receive segment; frames
//     never straddle segments, so a payload span never needs re-assembly;
//   * a segment's data() never moves: appends stop at reserved capacity
//     and open a fresh segment instead (the partial-frame tail is the only
//     bytes ever re-copied — wraparound-only compaction);
//   * a segment is recycled through the pool only when every frame parsed
//     from it has finished decoding and delivery has moved past it;
//   * the span returned by next_block() is a lease on the slot's pooled
//     output buffer, valid until the next next_block() call.
//
// Error determinism: a malformed header poisons the stream at the exact
// frame where the serial parser would have thrown; the error is rethrown
// once every preceding frame has been delivered, and is sticky. Decode and
// checksum failures are captured per slot and rethrown when that block
// reaches the head of the window, without advancing — exactly the serial
// observable order, independent of worker count and feed chunking.
#pragma once

#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <optional>
#include <vector>

#include "common/buffer_pool.h"
#include "common/bytes.h"
#include "common/lifetime_annotations.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "compress/framing.h"
#include "compress/registry.h"

namespace strato::compress {

/// Sizing knobs (surfaced as DecompressionSpec::worker_count on streams).
struct DecodePipelineConfig {
  /// Decode worker threads. <= 1 decodes inline on the feeding thread
  /// (no threads are created) — the serial baseline.
  std::size_t worker_count = 1;
  /// Reorder-window depth = max blocks decoding at once; 0 = 2 * workers.
  std::size_t depth = 0;
  /// Receive-segment reserve size; 0 = kDefaultDecodeSegmentSize. Frames
  /// larger than a segment get a dedicated segment sized to fit.
  std::size_t segment_size = 0;
};

/// Default receive-segment size: four default blocks plus header slack, so
/// steady-state 128 KB traffic seals a segment every few frames.
inline constexpr std::size_t kDefaultDecodeSegmentSize =
    4 * (kDefaultBlockSize + kFrameHeaderSize);

/// One decoded block, delivered in wire order. `data` is a lease into the
/// pipeline's pooled output buffer: valid until the next next_block() call
/// (or pipeline destruction), whichever comes first.
struct DecodedBlock {
  common::ByteSpan data;
  FrameHeader header;
};

class ParallelBlockDecodePipeline {
 public:
  ParallelBlockDecodePipeline(const CodecRegistry& registry,
                              DecodePipelineConfig config);
  ~ParallelBlockDecodePipeline();

  ParallelBlockDecodePipeline(const ParallelBlockDecodePipeline&) = delete;
  ParallelBlockDecodePipeline& operator=(const ParallelBlockDecodePipeline&) =
      delete;

  /// Append received wire bytes (one copy, into the active segment) and
  /// start decoding any frames they complete. Never blocks on workers.
  void feed(common::ByteSpan data);

  /// Zero-copy receive path: writable space inside the active pooled
  /// segment, at least `min_bytes` long. A socket reader recv()s directly
  /// into the span and then calls commit() with the byte count actually
  /// written — the wire bytes land in the segment the frames are parsed
  /// from, so the feed()-path copy disappears entirely. Calling feed(),
  /// next_block() or recv_span() again before commit() invalidates the
  /// span. On a poisoned stream the span points at scratch the parser
  /// will never look at (drain-and-discard). The span borrows pipeline-
  /// owned pooled storage (lifetimebound): storing it anywhere that
  /// outlives the commit() is a lifetime bug the strato-lint `lifetime`
  /// rule flags and pool poisoning catches at run time.
  [[nodiscard]] common::MutableByteSpan recv_span(std::size_t min_bytes)
      STRATO_LIFETIME_BOUND;

  /// Account `n` bytes written into the last recv_span() and parse/
  /// dispatch any frames they complete. @param n must be <= the span's
  /// size; 0 is a no-op.
  void commit(std::size_t n);

  /// Deliver the next block in wire order, or nullopt if more bytes are
  /// needed. Blocks only while the head frame is still decoding. The
  /// returned view invalidates the previous one (the block's `data` span
  /// borrows the pipeline's pooled lease — lifetimebound). @throws
  /// CodecError with the same error, at the same block position, as the
  /// serial path.
  [[nodiscard]] std::optional<DecodedBlock> next_block() STRATO_LIFETIME_BOUND;

  /// Header of the most recently delivered block.
  [[nodiscard]] const FrameHeader& last_header() const STRATO_LIFETIME_BOUND {
    return last_;
  }

  /// Wire bytes fed but not yet delivered as decoded blocks.
  [[nodiscard]] std::size_t pending() const {
    return wire_fed_ - wire_delivered_;
  }

  [[nodiscard]] std::size_t worker_count() const {
    return workers_ == nullptr ? 0 : workers_->size();
  }
  [[nodiscard]] std::size_t depth() const { return depth_; }
  [[nodiscard]] std::uint64_t blocks_parsed() const { return parsed_seq_; }
  [[nodiscard]] std::uint64_t blocks_delivered() const {
    return deliver_seq_;
  }
  /// Bytes re-copied by wraparound tail moves — the ONLY wire bytes that
  /// ever move twice. Tests pin this to < one frame per sealed segment.
  [[nodiscard]] std::uint64_t tail_bytes_copied() const {
    return tail_bytes_copied_;
  }
  [[nodiscard]] std::uint64_t segments_sealed() const {
    return segments_sealed_;
  }
  /// Buffer-recycling counters of the private pool (segments + outputs).
  [[nodiscard]] common::BufferPool::Stats pool_stats() const {
    return pool_.stats();
  }

 private:
  /// Pooled receive segment. data() is stable for the segment's lifetime:
  /// it is resized to its full capacity once at acquire, and `fill` marks
  /// how much of it holds wire bytes — the tail [fill, size) is the
  /// writable space recv_span() hands to socket readers. Only the feeding
  /// thread touches layout; `outstanding` (frames parsed from the segment
  /// whose decode has not finished) is the one field workers update,
  /// under mu_.
  struct Segment {
    common::Bytes data;          // pooled; never reallocates after acquire
    std::size_t fill = 0;        // wire bytes present: [0, fill)
    std::size_t parse_off = 0;   // feeding-thread parse cursor
    std::uint32_t outstanding = 0;  // under mu_ once workers exist
    bool sealed = false;         // no further appends

    /// Writable space past the wire bytes — the recv_span()/append target.
    /// Borrows the segment's pooled storage; dead once the segment is
    /// retired to the pool.
    [[nodiscard]] common::MutableByteSpan writable_tail()
        STRATO_LIFETIME_BOUND {
      return {data.data() + fill, data.size() - fill};
    }
    /// Wire bytes at the parse cursor not yet consumed as frames.
    [[nodiscard]] common::ByteSpan unparsed() const STRATO_LIFETIME_BOUND {
      return {data.data() + parse_off, fill - parse_off};
    }
  };

  /// A parsed frame waiting for a free reorder-window slot. The payload
  /// span borrows from `segment`; `outstanding` was already incremented.
  struct ParsedFrame {
    FrameHeader header;
    common::ByteSpan payload;
    Segment* segment = nullptr;
    std::size_t frame_size = 0;
  };

  struct Slot {
    enum class State { kFree, kPending, kReady };
    State state = State::kFree;
    FrameHeader header;
    common::ByteSpan payload;    // into the segment; worker-owned in kPending
    Segment* segment = nullptr;
    std::size_t frame_size = 0;
    common::Bytes out;           // pooled: decoded block (valid when kReady)
    std::exception_ptr error;
  };

  /// Active segment with >= n bytes of writable tail, sealing + opening
  /// segments on wraparound so no frame ever straddles two segments.
  Segment* ensure_free(std::size_t n);
  /// Copy wire bytes into the active segment (the feed() path).
  void append_wire(common::ByteSpan data);
  /// Parse every complete frame at the cursor into parsed_; on a malformed
  /// header, record the poison and stop (order-exact with serial).
  void parse_available();
  /// Move parsed frames into free slots and start their decodes.
  void dispatch_available();
  void decode_slot(std::uint64_t seq);
  /// Release fully-drained front segments back to the pool.
  void retire_segments();
  void drop_lease();

  const CodecRegistry& registry_;
  std::size_t depth_;
  std::size_t segment_size_;

  common::Mutex mu_{"ParallelBlockDecodePipeline::mu_"};
  common::CondVar ready_cv_;
  // Not GUARDED_BY(mu_): slots are handed off by protocol — a kPending
  // slot belongs to its worker, a kReady slot to the feeding thread; only
  // the state transition itself (and Segment::outstanding) happens under
  // mu_. Mirrors ParallelBlockPipeline.
  std::vector<Slot> slots_;        // ring indexed by seq % depth_
  std::uint64_t next_seq_ = 0;     // next sequence number to dispatch
  std::uint64_t deliver_seq_ = 0;  // next sequence number to deliver
  std::uint64_t parsed_seq_ = 0;   // frames parsed off the wire so far

  // Feeding-thread state: receive segments (deque => stable element
  // addresses for the Segment* held by slots), parsed-frame queue, and the
  // once-per-frame header cache shared with FrameAssembler's design.
  std::deque<Segment> segments_;
  std::deque<ParsedFrame> parsed_;
  std::size_t pending_frame_size_ = 0;
  FrameHeader pending_hdr_;
  bool poisoned_ = false;
  std::exception_ptr parse_error_;
  Segment* recv_seg_ = nullptr;    // segment behind the outstanding recv_span
  common::Bytes poison_scratch_;   // recv_span target once poisoned

  FrameHeader last_;
  bool lease_active_ = false;
  common::Bytes lease_;            // the buffer behind the delivered view

  std::uint64_t wire_fed_ = 0;
  std::uint64_t wire_delivered_ = 0;
  std::uint64_t tail_bytes_copied_ = 0;
  std::uint64_t segments_sealed_ = 0;

  common::BufferPool pool_;
  std::unique_ptr<common::ThreadPool> workers_;  // last: joins before state
};

}  // namespace strato::compress
