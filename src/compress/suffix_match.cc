#include "compress/suffix_match.h"

#include <algorithm>
#include <cassert>

#include "common/simd.h"

namespace strato::compress {
namespace {

/// Core SA-IS over an integer sequence that ends with a unique smallest
/// sentinel (s.back() == 0, occurring exactly once). K is the alphabet
/// size. Produces the full suffix array of s, sentinel suffix included
/// (always sa[0]).
void sais_int(const std::vector<std::int32_t>& s,
              std::vector<std::int32_t>& sa, std::int32_t K) {
  const std::size_t n = s.size();
  sa.assign(n, -1);
  if (n == 1) {
    sa[0] = 0;
    return;
  }

  // L/S type classification, right to left. The sentinel is S; a position
  // is S when its suffix is lexicographically smaller than its successor.
  std::vector<std::uint8_t> stype(n);
  stype[n - 1] = 1;
  for (std::size_t i = n - 1; i-- > 0;) {
    stype[i] =
        (s[i] < s[i + 1] || (s[i] == s[i + 1] && stype[i + 1])) ? 1 : 0;
  }
  auto is_lms = [&](std::int32_t i) {
    return i > 0 && stype[i] && !stype[i - 1];
  };

  std::vector<std::int32_t> count(K, 0);
  for (const auto c : s) ++count[c];
  std::vector<std::int32_t> bkt(K);
  auto bucket_starts = [&] {
    std::int32_t sum = 0;
    for (std::int32_t c = 0; c < K; ++c) {
      bkt[c] = sum;
      sum += count[c];
    }
  };
  auto bucket_ends = [&] {
    std::int32_t sum = 0;
    for (std::int32_t c = 0; c < K; ++c) {
      sum += count[c];
      bkt[c] = sum;
    }
  };

  // Induce L suffixes left to right from sorted (LMS or final) seeds,
  // then S suffixes right to left. This is the standard two-pass
  // induction; it both sorts LMS substrings in stage 1 and completes the
  // suffix array in stage 2.
  auto induce = [&] {
    bucket_starts();
    for (std::size_t r = 0; r < n; ++r) {
      const std::int32_t j = sa[r] - 1;
      if (sa[r] > 0 && !stype[j]) sa[bkt[s[j]]++] = j;
    }
    bucket_ends();
    for (std::size_t r = n; r-- > 0;) {
      const std::int32_t j = sa[r] - 1;
      if (sa[r] > 0 && stype[j]) sa[--bkt[s[j]]] = j;
    }
  };

  // Stage 1: drop LMS positions at their bucket ends in arbitrary order
  // and induce — this sorts the LMS *substrings*.
  bucket_ends();
  for (std::size_t i = 1; i < n; ++i) {
    if (is_lms(static_cast<std::int32_t>(i))) {
      sa[--bkt[s[i]]] = static_cast<std::int32_t>(i);
    }
  }
  induce();

  // Name LMS substrings in their induced order. Two LMS substrings get
  // the same name iff they are byte- and type-identical up to and
  // including their closing LMS position.
  std::vector<std::int32_t> lms;  // LMS positions in text order
  lms.reserve(n / 2 + 1);
  for (std::size_t i = 1; i < n; ++i) {
    if (is_lms(static_cast<std::int32_t>(i))) {
      lms.push_back(static_cast<std::int32_t>(i));
    }
  }
  const std::size_t m = lms.size();

  auto lms_equal = [&](std::int32_t a, std::int32_t b) {
    if (a == b) return true;
    for (std::int32_t k = 0;; ++k) {
      const bool a_end = k > 0 && is_lms(a + k);
      const bool b_end = k > 0 && is_lms(b + k);
      if (a_end && b_end) return true;
      if (a_end != b_end) return false;
      // The unique sentinel bounds the walk: if either side reaches it,
      // the byte compare below fails before running past the array.
      if (s[a + k] != s[b + k] || stype[a + k] != stype[b + k]) {
        return false;
      }
    }
  };

  std::vector<std::int32_t> name_of(n, -1);
  std::int32_t names = 0;
  std::int32_t prev = -1;
  for (std::size_t r = 0; r < n; ++r) {
    const std::int32_t p = sa[r];
    if (p <= 0 || !is_lms(p)) continue;
    if (prev >= 0 && lms_equal(prev, p)) {
      name_of[p] = names - 1;
    } else {
      name_of[p] = names++;
    }
    prev = p;
  }

  // Reduced problem: the sequence of LMS names in text order. It ends
  // with the sentinel's name 0 (lexicographically smallest, unique), so
  // the recursion precondition holds.
  std::vector<std::int32_t> sa1;
  if (names == static_cast<std::int32_t>(m)) {
    // All names unique: the reduced suffix array is the inverse mapping.
    sa1.assign(m, 0);
    for (std::size_t k = 0; k < m; ++k) {
      sa1[name_of[lms[k]]] = static_cast<std::int32_t>(k);
    }
  } else {
    std::vector<std::int32_t> s1(m);
    for (std::size_t k = 0; k < m; ++k) s1[k] = name_of[lms[k]];
    sais_int(s1, sa1, names);
  }

  // Stage 2: place LMS suffixes in their now-final relative order (from
  // the back so each bucket fills right to left) and induce once more.
  std::fill(sa.begin(), sa.end(), -1);
  bucket_ends();
  for (std::size_t k = m; k-- > 0;) {
    const std::int32_t p = lms[sa1[k]];
    sa[--bkt[s[p]]] = p;
  }
  induce();
}

}  // namespace

namespace detail {

std::vector<std::int32_t> suffix_array_sais(common::ByteSpan s) {
  const std::size_t n = s.size();
  assert(n < (1u << 30));
  if (n == 0) return {};
  // Shift the alphabet up and append the unique smallest sentinel the
  // core requires; its suffix sorts first and is dropped from the result.
  std::vector<std::int32_t> t(n + 1);
  for (std::size_t i = 0; i < n; ++i) t[i] = s[i] + 1;
  t[n] = 0;
  std::vector<std::int32_t> sa;
  sais_int(t, sa, 257);
  return {sa.begin() + 1, sa.end()};
}

}  // namespace detail

void SuffixMatcher::build(common::ByteSpan src) {
  src_ = src.data();
  n_ = src.size();
  sa_ = detail::suffix_array_sais(src);
  psv_.assign(n_, -1);
  nsv_.assign(n_, -1);
  // PSV/NSV over the suffix array sequence: walking ranks in order with a
  // monotone stack of text positions yields, for every position, its
  // nearest lexicographic neighbours among smaller text positions — the
  // only two candidates the longest previous factor can come from.
  std::vector<std::int32_t> stack;
  stack.reserve(64);
  for (std::size_t r = 0; r < n_; ++r) {
    const std::int32_t i = sa_[r];
    while (!stack.empty() && stack.back() > i) {
      nsv_[stack.back()] = i;
      stack.pop_back();
    }
    psv_[i] = stack.empty() ? -1 : stack.back();
    stack.push_back(i);
  }
}

SuffixMatcher::Match SuffixMatcher::find(std::size_t i, std::size_t max_len,
                                         std::size_t max_dist) const {
  const common::simd::Kernels& kernels = common::simd::kernels();
  const std::uint8_t* const limit = src_ + n_;
  Match best;
  const std::int32_t cands[2] = {psv_[i], nsv_[i]};
  for (const std::int32_t c : cands) {
    if (c < 0) continue;
    const std::size_t dist = i - static_cast<std::size_t>(c);
    if (dist > max_dist) continue;
    std::size_t len = kernels.match_length(src_ + i, src_ + c, limit);
    if (len > max_len) len = max_len;
    if (len > best.len || (len == best.len && len > 0 && dist < best.dist)) {
      best.len = len;
      best.dist = dist;
    }
  }
  return best;
}

}  // namespace strato::compress
