#include "compress/codec.h"

#include <cstring>

namespace strato::compress {

common::Bytes Codec::compress(common::ByteSpan src) const {
  common::Bytes out(max_compressed_size(src.size()));
  const std::size_t n = compress(src, out);
  out.resize(n);
  return out;
}

common::Bytes Codec::decompress(common::ByteSpan src,
                                std::size_t raw_size) const {
  common::Bytes out(raw_size);
  const std::size_t n = decompress(src, out);
  out.resize(n);
  return out;
}

std::size_t NullCodec::compress(common::ByteSpan src,
                                common::MutableByteSpan dst) const {
  if (dst.size() < src.size()) {
    throw CodecError("null codec: destination too small");
  }
  if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size());
  return src.size();
}

std::size_t NullCodec::decompress(common::ByteSpan src,
                                  common::MutableByteSpan dst) const {
  if (dst.size() != src.size()) {
    throw CodecError("null codec: size mismatch");
  }
  if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size());
  return src.size();
}

}  // namespace strato::compress
