// DeflateLz: LZ77 + canonical Huffman coding (a deflate-style codec).
//
// An additional rung between the byte-aligned MEDIUM format and the
// range-coded HEAVY codec: the same hash-chain LZ77 parse as MediumLz,
// but literals/lengths/distances are entropy-coded with per-block
// canonical Huffman tables. Roughly MediumLz's speed class with a
// distinctly better ratio — used by the ladder-generality experiments
// (the paper's Algorithm 1 takes any number of ordered levels).
//
// Stream layout per block:
//   byte 0      marker: 0 = coded, 1 = stored raw
//   coded:      275 + 16 code lengths (4 bits each, packed LSB-first),
//               then the Huffman bit stream terminated by EOB.
// All tables are per block; blocks stay self-contained.
#pragma once

#include "compress/codec.h"

namespace strato::compress {

/// Extra codec id (the paper ladder uses 0-3).
inline constexpr std::uint8_t kCodecDeflateLz = 4;

class DeflateLz final : public Codec {
 public:
  [[nodiscard]] std::uint8_t id() const override { return kCodecDeflateLz; }
  [[nodiscard]] std::string name() const override { return "deflatelz"; }
  [[nodiscard]] std::size_t max_compressed_size(std::size_t n) const override {
    return n + 16;
  }
  std::size_t compress(common::ByteSpan src,
                       common::MutableByteSpan dst) const override;
  std::size_t decompress(common::ByteSpan src,
                         common::MutableByteSpan dst) const override;
  using Codec::compress;
  using Codec::decompress;
};

}  // namespace strato::compress
