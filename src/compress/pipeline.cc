#include "compress/pipeline.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "compress/framing.h"

namespace strato::compress {

namespace {

std::size_t coerce_workers(std::size_t n) { return n == 0 ? 1 : n; }

std::size_t coerce_depth(const PipelineConfig& cfg) {
  const std::size_t d =
      cfg.depth == 0 ? 2 * coerce_workers(cfg.worker_count) : cfg.depth;
  return d == 0 ? 1 : d;
}

}  // namespace

ParallelBlockPipeline::ParallelBlockPipeline(const CodecRegistry& registry,
                                             PipelineConfig config,
                                             FrameSink sink)
    : registry_(registry),
      sink_(std::move(sink)),
      depth_(coerce_depth(config)),
      slots_(depth_),
      // raw + frame per in-flight block, both usually back in the free
      // list while a block is between acquire points.
      pool_(2 * depth_ + 2),
      workers_(coerce_workers(config.worker_count)) {}

ParallelBlockPipeline::~ParallelBlockPipeline() {
  // ThreadPool's destructor (member order: constructed last, destroyed
  // first) drains every accepted job, so no worker can touch slots_ after
  // this body runs. Undelivered frames are simply dropped.
  workers_.shutdown();
}

void ParallelBlockPipeline::submit(int level, common::ByteSpan payload) {
  // Opportunistically drain ready frames, then make room in the window.
  deliver_ready(false);
  while (next_seq_ - deliver_seq_ >= depth_) {
    deliver_ready(true);
  }

  const int max_level = static_cast<int>(registry_.level_count()) - 1;
  const std::uint64_t seq = next_seq_++;
  Slot& slot = slots_[seq % depth_];
  slot.state = Slot::State::kPending;
  slot.level = std::clamp(level, 0, max_level);
  slot.raw_size = payload.size();
  slot.error = nullptr;
  slot.raw = pool_.acquire(payload.size());
  slot.raw.resize(payload.size());
  if (!payload.empty()) {
    std::memcpy(slot.raw.data(), payload.data(), payload.size());
  }

  workers_.submit([this, seq] { compress_slot(seq); });
}

void ParallelBlockPipeline::compress_slot(std::uint64_t seq) {
  Slot& slot = slots_[seq % depth_];
  std::exception_ptr error;
  common::Bytes frame = pool_.acquire(
      kFrameHeaderSize + slot.raw_size + slot.raw_size / 128 + 64);
  try {
    const Codec& codec =
        *registry_.level(static_cast<std::size_t>(slot.level)).codec;
    encode_block_into(codec, static_cast<std::uint8_t>(slot.level),
                      slot.raw, frame);
  } catch (...) {
    error = std::current_exception();
  }
  {
    common::MutexLock lk(mu_);
    slot.frame = std::move(frame);
    slot.error = error;
    slot.state = Slot::State::kReady;
  }
  ready_cv_.notify_all();
}

void ParallelBlockPipeline::deliver_ready(bool wait_for_one) {
  for (;;) {
    if (deliver_seq_ == next_seq_) return;  // nothing outstanding
    Slot& slot = slots_[deliver_seq_ % depth_];
    {
      common::MutexLock lk(mu_);
      while (slot.state != Slot::State::kReady) {
        if (!wait_for_one) return;
        ready_cv_.wait(mu_);
      }
    }
    // Past this point the slot belongs to the submitting thread again: the
    // worker finished (kReady) and no new submit can reuse it before
    // deliver_seq_ advances.
    common::Bytes frame = std::move(slot.frame);
    common::Bytes raw = std::move(slot.raw);
    const std::size_t raw_size = slot.raw_size;
    const int level = slot.level;
    const std::exception_ptr error = slot.error;
    slot = Slot{};
    ++deliver_seq_;
    pool_.release(std::move(raw));
    if (error != nullptr) {
      pool_.release(std::move(frame));
      std::rethrow_exception(error);
    }
    sink_(frame, raw_size, level);
    pool_.release(std::move(frame));
    if (wait_for_one) return;  // made room; caller decides whether to loop
  }
}

void ParallelBlockPipeline::flush() {
  while (deliver_seq_ != next_seq_) {
    deliver_ready(true);
  }
}

}  // namespace strato::compress
