// Suffix-array match finder for the HEAVY codec (opt-in).
//
// Builds the suffix array of a block with SA-IS (induced sorting, linear
// time over the byte alphabet), then derives for every text position its
// two lexicographic-neighbour candidates with a smaller text position
// (PSV/NSV over the suffix array). The longest previous factor at i is
// the longer of the common prefixes with exactly those two candidates
// (Crochemore–Ilie), so find() is two simd match-length scans — no hash
// chains, no probe-depth cutoff, and the answer is the true longest
// match, not a heuristic one.
//
// Trade-offs vs. the hash-chain finder in heavy_lz.cc: build() costs an
// O(n) pass with a noticeably larger constant (the SA-IS recursion) and
// ~13 bytes of scratch per input byte, in exchange for an optimal greedy
// parse and fully history-independent determinism. The parse differs from
// the chain finder's; the wire format does not — streams it produces
// decode with the unchanged HEAVY decoder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace strato::compress {

class SuffixMatcher {
 public:
  struct Match {
    std::size_t len = 0;
    std::size_t dist = 0;
  };

  /// Index one block. O(n); n must fit in int32 (blocks are well under
  /// 2 GiB). The span must stay alive and unchanged while find() is used.
  void build(common::ByteSpan src);

  /// Longest match at position i against any position j < i, capped at
  /// max_len bytes and max_dist distance. Ties between the two candidates
  /// prefer the smaller distance. Returns len 0 when i has no previous
  /// occurrence (the caller applies its own minimum-match threshold).
  [[nodiscard]] Match find(std::size_t i, std::size_t max_len,
                           std::size_t max_dist) const;

  /// The suffix array of the indexed block (exposed for tests).
  [[nodiscard]] const std::vector<std::int32_t>& suffix_array() const {
    return sa_;
  }

 private:
  const std::uint8_t* src_ = nullptr;
  std::size_t n_ = 0;
  std::vector<std::int32_t> sa_;
  std::vector<std::int32_t> psv_;  // nearest lex. predecessor with pos < i
  std::vector<std::int32_t> nsv_;  // nearest lex. successor with pos < i
};

namespace detail {

/// SA-IS suffix array of `s` (positions sorted by lexicographic order of
/// their suffixes). Exposed so tests can cross-check against brute force.
std::vector<std::int32_t> suffix_array_sais(common::ByteSpan s);

}  // namespace detail

}  // namespace strato::compress
