// LSB-first bit stream used by the Huffman-coded codec.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "compress/codec.h"

namespace strato::compress {

/// Appends bits least-significant-first into a byte vector.
///
/// Bits accumulate in a 64-bit register and spill four bytes at a time:
/// with write() capped at 32 bits, filled_ stays below 32 after each
/// spill, so the accumulator never overflows, and the output sees one
/// word store per ~4 emitted bytes instead of a push_back per byte.
class BitWriter {
 public:
  explicit BitWriter(common::Bytes& out) : out_(out) {}

  /// Write the low `nbits` bits of `value` (nbits <= 32).
  void write(std::uint32_t value, int nbits) {
    acc_ |= static_cast<std::uint64_t>(value & mask(nbits)) << filled_;
    filled_ += nbits;
    if (filled_ >= 32) {
      const std::size_t sz = out_.size();
      out_.resize(sz + 4);
      common::store_le32(out_.data() + sz, static_cast<std::uint32_t>(acc_));
      acc_ >>= 32;
      filled_ -= 32;
    }
  }

  /// Flush the remaining whole and partial bytes (zero-padded).
  void finish() {
    while (filled_ > 0) {
      out_.push_back(static_cast<std::uint8_t>(acc_));
      acc_ >>= 8;
      filled_ -= 8;
    }
    acc_ = 0;
    filled_ = 0;
  }

 private:
  static constexpr std::uint32_t mask(int nbits) {
    return nbits >= 32 ? 0xFFFFFFFFu : ((1u << nbits) - 1u);
  }

  common::Bytes& out_;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

/// Reads bits least-significant-first from a span. Reading past the end
/// yields zero bits (trailing padding); structural errors are caught by
/// the caller's symbol/length validation.
///
/// Refill is branchless while at least 8 input bytes remain: one
/// unaligned 64-bit little-endian load tops the accumulator up to >= 56
/// bits, and the cursor advances by exactly the number of whole bytes
/// that fit — no per-byte loop, no data-dependent branches. Every
/// read/peek of up to 32 bits is covered by one refill.
class BitReader {
 public:
  explicit BitReader(common::ByteSpan in) : in_(in) {}

  /// Read `nbits` bits (nbits <= 32).
  std::uint32_t read(int nbits) {
    if (filled_ < nbits) fill();
    const auto v = static_cast<std::uint32_t>(
        acc_ & ((nbits >= 32 ? ~0ULL : ((1ULL << nbits) - 1))));
    acc_ >>= nbits;
    filled_ -= nbits;
    return v;
  }

  /// Peek up to `nbits` bits without consuming (nbits <= 32).
  std::uint32_t peek(int nbits) {
    if (filled_ < nbits) fill();
    return static_cast<std::uint32_t>(
        acc_ & ((nbits >= 32 ? ~0ULL : ((1ULL << nbits) - 1))));
  }

  /// Consume `nbits` previously peeked bits.
  void skip(int nbits) {
    acc_ >>= nbits;
    filled_ -= nbits;
  }

  /// Bytes fetched from the input so far (including buffered bits).
  [[nodiscard]] std::size_t consumed() const { return pos_; }

 private:
  /// Top the accumulator up to >= 56 bits. Callers gate on filled_ so the
  /// common already-full probe pays one compare, and a single refill then
  /// covers several 10-bit LUT probes.
  void fill() {
    if (pos_ + 8 <= in_.size()) {
      // The load overlaps the filled_/8 bytes already buffered; shifting
      // by filled_ drops exactly those, and the cursor advances by the
      // (63 - filled_) >> 3 fresh bytes that fit. filled_ |= 56 lands on
      // filled_ + 8 * bytes_consumed without computing it.
      acc_ |= common::load_le64(in_.data() + pos_) << filled_;
      pos_ += static_cast<std::size_t>((63 - filled_) >> 3);
      filled_ |= 56;
      return;
    }
    while (filled_ < 56 && pos_ < in_.size()) {
      acc_ |= static_cast<std::uint64_t>(in_[pos_++]) << filled_;
      filled_ += 8;
    }
    // Exhausted input: the high accumulator bits are already zero, so
    // declaring them present yields the documented zero padding.
    if (filled_ < 56) filled_ = 56;
  }

  common::ByteSpan in_;
  std::size_t pos_ = 0;
  std::uint64_t acc_ = 0;
  int filled_ = 0;
};

}  // namespace strato::compress
